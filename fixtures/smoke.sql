create table t (k int primary key, v float);
insert into t values (1, 10.5);
insert into t values (2, 20.0);
insert into t values (3, 7.25);

create function dbl(float x) returns float as
begin
  return x * 2.0;
end

select k, dbl(v) from t where k <= 2;
.mode iterative
select k, dbl(v) from t where k <= 2;
.mode rewrite
select k, dbl(v) from t where k <= 2;
.stats
