package udfsql_test

// The differential corpus replayed through the standard library interface:
// every corpus query must produce the same row multiset through
// sql.DB/sql.Rows — on the row and vectorized executors, at parallelism 1
// and 4 — as the iterative row engine queried directly. Plus driver-level
// context-cancellation semantics (mid-stream cancel returns the context
// error, restores worker slots, leaks no goroutines) and DSN parsing.

import (
	"bytes"
	"context"
	"database/sql"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	udfsql "udfdecorr/driver"
	"udfdecorr/internal/bench"
	"udfdecorr/internal/engine"
	"udfdecorr/internal/exec"
	"udfdecorr/internal/repl"
	"udfdecorr/internal/server"
	"udfdecorr/internal/sqltypes"
	"udfdecorr/internal/storage"
)

// canonicalRows is the shared multiset canonicalization (floats at 9
// significant digits; see bench.CanonicalRows).
func canonicalRows(rows [][]string) string { return bench.CanonicalRows(rows) }

// renderValue matches sqltypes.Value.String() for driver.Value payloads.
func renderValue(v any) string {
	switch x := v.(type) {
	case nil:
		return "NULL"
	case int64:
		return strconv.FormatInt(x, 10)
	case float64:
		return sqltypes.NewFloat(x).String()
	case string:
		return sqltypes.NewString(x).String()
	case bool:
		return sqltypes.NewBool(x).String()
	default:
		return fmt.Sprintf("%v", x)
	}
}

func engineRowsToStrings(rows []storage.Row) [][]string {
	out := make([][]string, len(rows))
	for i, r := range rows {
		cells := make([]string, len(r))
		for j, v := range r {
			cells[j] = v.String()
		}
		out[i] = cells
	}
	return out
}

func dbQueryStrings(t *testing.T, db *sql.DB, sqlText string) [][]string {
	t.Helper()
	rows, err := db.Query(sqlText)
	if err != nil {
		t.Fatalf("db.Query: %v", err)
	}
	defer rows.Close()
	cols, err := rows.Columns()
	if err != nil {
		t.Fatal(err)
	}
	var out [][]string
	for rows.Next() {
		vals := make([]any, len(cols))
		ptrs := make([]any, len(cols))
		for i := range vals {
			ptrs[i] = &vals[i]
		}
		if err := rows.Scan(ptrs...); err != nil {
			t.Fatal(err)
		}
		cells := make([]string, len(cols))
		for i, v := range vals {
			cells[i] = renderValue(v)
		}
		out = append(out, cells)
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

func newBenchService(t testing.TB) *server.Service {
	t.Helper()
	boot, err := bench.NewEngine(engine.SYS1, engine.ModeRewrite, bench.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := boot.ExecScript(bench.ExtraUDFs); err != nil {
		t.Fatal(err)
	}
	return server.NewServiceFromEngine(boot, server.Options{CacheSize: 64, MaxConcurrent: 8})
}

func TestDriverDifferentialCorpus(t *testing.T) {
	// Shrink morsels so parallelism 4 really fans out over the small
	// fixture instead of clamping to one worker.
	defer func(old int) { exec.MorselRows = old }(exec.MorselRows)
	exec.MorselRows = 64

	svc := newBenchService(t)
	// Ground truth: the iterative row engine over the same shared data.
	truth := engine.NewShared(svc.Catalog(), svc.Store(), engine.SYS1, engine.ModeIterative)

	combos := []struct {
		name string
		opts udfsql.Options
	}{
		{"row/serial", udfsql.Options{Mode: engine.ModeRewrite, Profile: engine.SYS1}},
		{"vec/serial", udfsql.Options{Mode: engine.ModeRewrite, Profile: engine.SYS1, Vectorized: true, Parallelism: 1}},
		{"vec/parallel4", udfsql.Options{Mode: engine.ModeRewrite, Profile: engine.SYS1, Vectorized: true, Parallelism: 4}},
		{"row/iterative", udfsql.Options{Mode: engine.ModeIterative, Profile: engine.SYS2}},
	}
	for _, combo := range combos {
		combo := combo
		t.Run(combo.name, func(t *testing.T) {
			db := sql.OpenDB(udfsql.NewConnector(svc, combo.opts))
			defer db.Close()
			for _, q := range bench.Corpus {
				want, err := truth.Query(q.SQL)
				if err != nil {
					t.Fatalf("%s: ground truth: %v", q.Name, err)
				}
				got := dbQueryStrings(t, db, q.SQL)
				if canonicalRows(got) != canonicalRows(engineRowsToStrings(want.Rows)) {
					t.Fatalf("%s: rows through database/sql differ from engine ground truth", q.Name)
				}
			}
		})
	}
}

func TestDriverStreamingCancel(t *testing.T) {
	defer func(old int) { exec.MorselRows = old }(exec.MorselRows)
	exec.MorselRows = 64

	boot := engine.New(engine.SYS1, engine.ModeRewrite)
	if err := boot.ExecScript(`create table big (k int, v int);`); err != nil {
		t.Fatal(err)
	}
	const n = 30_000
	rows := make([][]int64, n)
	for i := range rows {
		rows[i] = []int64{int64(i), int64(i % 11)}
	}
	boot.MustLoadInts("big", rows)
	svc := server.NewServiceFromEngine(boot, server.Options{CacheSize: 16, MaxConcurrent: 4})

	for _, parallel := range []int{0, 4} {
		parallel := parallel
		t.Run(fmt.Sprintf("parallelism=%d", parallel), func(t *testing.T) {
			opts := udfsql.Options{Mode: engine.ModeRewrite, Profile: engine.SYS1}
			if parallel > 0 {
				opts.Vectorized = true
				opts.Parallelism = parallel
			}
			db := sql.OpenDB(udfsql.NewConnector(svc, opts))
			defer db.Close()

			baseline := runtime.NumGoroutine()
			ctx, cancel := context.WithCancel(context.Background())
			sqlRows, err := db.QueryContext(ctx, "select k from big where v >= 0")
			if err != nil {
				cancel()
				t.Fatal(err)
			}
			if !sqlRows.Next() {
				t.Fatalf("no first row: %v", sqlRows.Err())
			}
			cancel()
			got := 1
			for sqlRows.Next() {
				got++
			}
			if err := sqlRows.Err(); !errors.Is(err, context.Canceled) {
				t.Fatalf("Err() = %v, want context.Canceled", err)
			}
			if got >= n {
				t.Fatalf("scanned all %d rows despite cancellation", got)
			}
			sqlRows.Close()

			// Workers unwind; goroutine count returns to baseline (the
			// database/sql pool goroutines are included in the baseline).
			deadline := time.Now().Add(5 * time.Second)
			for runtime.NumGoroutine() > baseline {
				if time.Now().After(deadline) {
					t.Fatalf("goroutines leaked: %d running, baseline %d",
						runtime.NumGoroutine(), baseline)
				}
				time.Sleep(5 * time.Millisecond)
			}

			// The connection and service stay usable.
			var count int64
			if err := db.QueryRow("select count(*) from big").Scan(&count); err != nil {
				t.Fatal(err)
			}
			if count != n {
				t.Fatalf("count(*) = %d, want %d", count, n)
			}
		})
	}
	if c := svc.Stats().QueriesCancelled; c < 2 {
		t.Fatalf("queries_cancelled = %d, want >= 2", c)
	}
}

func TestDriverDSNAndRegistry(t *testing.T) {
	svc := newBenchService(t)
	udfsql.RegisterService("dsn-test", svc)

	db, err := sql.Open("udfsql", "dsn-test?mode=costbased&profile=sys2&vectorized=on&parallelism=2&timeout=30s")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	var one int64
	if err := db.QueryRow("select count(*) from customer").Scan(&one); err != nil {
		t.Fatal(err)
	}
	if one != int64(bench.SmallConfig().Customers) {
		t.Fatalf("count = %d", one)
	}

	for _, bad := range []string{
		"unregistered",
		"dsn-test?mode=nope",
		"dsn-test?bogus=1",
		"dsn-test?timeout=-3s",
	} {
		db, err := sql.Open("udfsql", bad)
		if err == nil {
			// Open defers driver errors to first use for non-DriverContext
			// drivers; ours surfaces them at Open. Either way Ping must fail.
			if perr := db.Ping(); perr == nil {
				t.Fatalf("DSN %q unexpectedly usable", bad)
			}
			db.Close()
		}
	}
}

func TestDriverExecDDLAndTimeout(t *testing.T) {
	boot := engine.New(engine.SYS1, engine.ModeRewrite)
	svc := server.NewServiceFromEngine(boot, server.DefaultOptions())
	db := sql.OpenDB(udfsql.NewConnector(svc, udfsql.Options{
		Mode: engine.ModeIterative, Profile: engine.SYS1, Timeout: 40 * time.Millisecond}))
	defer db.Close()

	if _, err := db.Exec(`
create table t (k int);
insert into t values (1);
create function spin(int n) returns int as
begin
  int i = 0;
  while i < n
  begin
    i = i + 1;
  end
  return i;
end
`); err != nil {
		t.Fatal(err)
	}
	var k int64
	if err := db.QueryRow("select k from t").Scan(&k); err != nil || k != 1 {
		t.Fatalf("scan after DDL: k=%d err=%v", k, err)
	}
	// The DSN timeout applies per statement.
	err := db.QueryRow("select spin(100000000) from t").Scan(&k)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("runaway UDF through driver returned %v, want context.DeadlineExceeded", err)
	}
}

// TestDriverTransactions: database/sql Tx pins the connection, so BEGIN,
// the statements, and COMMIT/ROLLBACK all address one service session —
// uncommitted rows stay invisible to other connections.
func TestDriverTransactions(t *testing.T) {
	boot := engine.New(engine.SYS1, engine.ModeRewrite)
	svc := server.NewServiceFromEngine(boot, server.DefaultOptions())
	db := sql.OpenDB(udfsql.NewConnector(svc, udfsql.Options{
		Mode: engine.ModeIterative, Profile: engine.SYS1}))
	defer db.Close()

	if _, err := db.Exec("create table t (k int primary key);"); err != nil {
		t.Fatal(err)
	}

	count := func() int64 {
		var n int64
		if err := db.QueryRow("select count(*) from t").Scan(&n); err != nil {
			t.Fatal(err)
		}
		return n
	}

	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("insert into t values (1);"); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("insert into t values (2);"); err != nil {
		t.Fatal(err)
	}
	// Another connection from the pool must not see the uncommitted rows.
	if n := count(); n != 0 {
		t.Fatalf("uncommitted rows visible outside the tx: %d", n)
	}
	// The tx's own reads see them.
	var n int64
	if err := tx.QueryRow("select count(*) from t").Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("tx sees %d of its own rows", n)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if n := count(); n != 2 {
		t.Fatalf("rows after commit = %d", n)
	}

	tx, err = db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("insert into t values (3);"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if n := count(); n != 2 {
		t.Fatalf("rows after rollback = %d", n)
	}
}

// TestDriverTraceAndExplainAnalyze covers the trace DSN label (each query
// gets a "<label>-<n>" trace ID, visible in the server's slow-query log) and
// the EXPLAIN ANALYZE interception (one "plan" column, per-operator stats).
func TestDriverTraceAndExplainAnalyze(t *testing.T) {
	var logBuf safeBuffer
	boot, err := bench.NewEngine(engine.SYS1, engine.ModeRewrite, bench.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := boot.ExecScript(bench.ExtraUDFs); err != nil {
		t.Fatal(err)
	}
	opts := server.DefaultOptions()
	opts.SlowQueryThreshold = time.Nanosecond // every query logs
	opts.Logger = slog.New(slog.NewTextHandler(&logBuf, nil))
	svc := server.NewServiceFromEngine(boot, opts)
	udfsql.RegisterService("trace-test", svc)

	db, err := sql.Open("udfsql", "trace-test?trace=myjob")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	var n int64
	if err := db.QueryRow("select count(*) from customer").Scan(&n); err != nil {
		t.Fatal(err)
	}
	if logged := logBuf.String(); !strings.Contains(logged, "trace_id=myjob-1") {
		t.Errorf("slow-query log missing driver trace ID:\n%s", logged)
	}

	rows, err := db.Query("EXPLAIN ANALYZE select custkey, lvl(custkey) from customer where custkey < 10")
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	cols, err := rows.Columns()
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 1 || cols[0] != "plan" {
		t.Fatalf("columns = %v, want [plan]", cols)
	}
	var plan strings.Builder
	for rows.Next() {
		var line string
		if err := rows.Scan(&line); err != nil {
			t.Fatal(err)
		}
		plan.WriteString(line + "\n")
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"rows=", "time="} {
		if !strings.Contains(plan.String(), want) {
			t.Errorf("EXPLAIN ANALYZE plan missing %q:\n%s", want, plan.String())
		}
	}
}

// safeBuffer is a mutex-guarded bytes.Buffer (the slog handler may be
// written from query goroutines while the test reads it).
type safeBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *safeBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *safeBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestDriverLeaderFollow: a write rejected by a read-only replica whose
// structured leader hint names a registered service is replayed on the
// leader transparently; reads stay on the replica; transactions do not
// redirect; and a hint pointing at another read-only service fails with the
// typed error instead of hopping again (depth-1 guard).
func TestDriverLeaderFollow(t *testing.T) {
	mkSvc := func() *server.Service {
		e := engine.New(engine.SYS1, engine.ModeRewrite)
		if err := e.ExecScript("create table kv (k int primary key, v varchar); insert into kv values (1, 'a');"); err != nil {
			t.Fatal(err)
		}
		return server.NewServiceFromEngine(e, server.DefaultOptions())
	}
	leader, replica := mkSvc(), mkSvc()
	replica.SetFollower("follow-leader", func() repl.Status { return repl.Status{} })
	udfsql.RegisterService("follow-leader", leader)
	udfsql.RegisterService("follow-replica", replica)

	db, err := sql.Open("udfsql", "follow-replica")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	// One pooled connection so the redirect companion is provably reused.
	db.SetMaxOpenConns(1)

	if _, err := db.Exec("insert into kv values (2, 'b');"); err != nil {
		t.Fatalf("redirected write failed: %v", err)
	}
	if _, err := db.Exec("insert into kv values (3, 'c');"); err != nil {
		t.Fatalf("second redirected write failed: %v", err)
	}

	// The writes landed on the leader; the replica's store is untouched and
	// reads through the DSN still come from it.
	ldb, err := sql.Open("udfsql", "follow-leader")
	if err != nil {
		t.Fatal(err)
	}
	defer ldb.Close()
	if got := dbQueryStrings(t, ldb, "select count(*) from kv"); got[0][0] != "3" {
		t.Fatalf("leader row count = %v, want 3", got)
	}
	if got := dbQueryStrings(t, db, "select count(*) from kv"); got[0][0] != "1" {
		t.Fatalf("replica read = %v, want the replica's own 1 row", got)
	}

	// Transactions stay typed rejections: BEGIN pins the follower session.
	if _, err := db.Begin(); !errors.Is(err, server.ErrReadOnly) {
		t.Fatalf("Begin on replica = %v, want ErrReadOnly", err)
	}

	// A hint naming another read-only service must fail typed, not loop.
	second := mkSvc()
	second.SetFollower("follow-replica", func() repl.Status { return repl.Status{} })
	udfsql.RegisterService("follow-second", second)
	sdb, err := sql.Open("udfsql", "follow-second")
	if err != nil {
		t.Fatal(err)
	}
	defer sdb.Close()
	if _, err := sdb.Exec("insert into kv values (9, 'z');"); !errors.Is(err, server.ErrReadOnly) {
		t.Fatalf("follower-to-follower hint = %v, want ErrReadOnly", err)
	}

	// An unregistered hint surfaces the original rejection.
	third := mkSvc()
	third.SetFollower("http://nowhere:1", func() repl.Status { return repl.Status{} })
	udfsql.RegisterService("follow-third", third)
	tdb, err := sql.Open("udfsql", "follow-third")
	if err != nil {
		t.Fatal(err)
	}
	defer tdb.Close()
	if _, err := tdb.Exec("insert into kv values (9, 'z');"); !errors.Is(err, server.ErrReadOnly) {
		t.Fatalf("unresolvable hint = %v, want ErrReadOnly", err)
	}
}
