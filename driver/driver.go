// Package udfsql is a database/sql driver over the in-process concurrent
// query service, so ordinary Go programs get prepared statements, streaming
// rows and context cancellation/timeouts through the standard library
// interface:
//
//	svc := server.NewServiceFromEngine(boot, server.DefaultOptions())
//	udfsql.RegisterService("main", svc)
//	db, _ := sql.Open("udfsql", "main?mode=rewrite&vectorized=on&parallelism=4")
//	rows, _ := db.QueryContext(ctx, "select custkey, lvl(custkey) from customer")
//
// Each sql connection is one service session (created on connect, closed
// with the connection), so per-session settings — mode, profile, executor,
// parallelism, statement timeout — come from the DSN and apply to every
// statement on that connection. Query results stream: rows are pulled from
// the executing plan as the caller scans, and cancelling the context stops
// execution at the next row/batch boundary. The SQL dialect has no
// placeholder parameters, so statements take no arguments.
//
// DSN grammar: "<service>[?key=value&...]" with keys
//
//	mode        iterative | rewrite | costbased      (default rewrite)
//	profile     sys1 | sys2                          (default sys1)
//	vectorized  on | off | true | false | 1 | 0      (default off)
//	parallelism intra-query worker degree            (default server's)
//	timeout     per-statement timeout, Go duration   (default none)
//	trace       trace-ID label: each query gets a "<label>-<n>" trace
//	            ID, grep-able in the server's slow-query log (default:
//	            server-generated IDs)
//
// The <service> name must have been registered with RegisterService; tests
// and embedded uses can skip the registry (and the driver name) entirely
// with sql.OpenDB(udfsql.NewConnector(svc, opts)).
//
// A query starting with EXPLAIN ANALYZE executes the statement and returns
// the annotated per-operator plan instead of its rows: one "plan" column,
// one row per line.
//
// Writes against a read-only replica follow the structured leader hint: when
// Exec is rejected with a *server.ReadOnlyError whose Leader names another
// registered service, the connection opens a companion session there (same
// Options) and replays the statement, so "point the app at the nearest
// replica" works for reads and writes alike. The redirect is depth-1 — a
// hinted leader that itself rejects writes fails rather than hop again — and
// transactions never redirect: BEGIN pins the follower session, which
// rejects it with the same typed error for the caller to handle.
package udfsql

import (
	"context"
	"database/sql"
	"database/sql/driver"
	"errors"
	"fmt"
	"io"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"udfdecorr/internal/engine"
	"udfdecorr/internal/server"
)

func init() {
	sql.Register("udfsql", &Driver{})
}

// registry maps DSN service names to running services.
var registry sync.Map // string -> *server.Service

// RegisterService makes a service reachable through sql.Open("udfsql",
// "<name>?..."). Re-registering a name replaces the previous service for
// future connections.
func RegisterService(name string, svc *server.Service) {
	registry.Store(name, svc)
}

// Driver implements database/sql/driver.Driver (and DriverContext, so the
// DSN is parsed once per sql.DB rather than once per connection).
type Driver struct{}

// Open implements driver.Driver.
func (d *Driver) Open(dsn string) (driver.Conn, error) {
	c, err := d.OpenConnector(dsn)
	if err != nil {
		return nil, err
	}
	return c.Connect(context.Background())
}

// OpenConnector implements driver.DriverContext.
func (d *Driver) OpenConnector(dsn string) (driver.Connector, error) {
	name, rawQuery, _ := strings.Cut(dsn, "?")
	v, ok := registry.Load(name)
	if !ok {
		return nil, fmt.Errorf("udfsql: no service registered as %q (call udfsql.RegisterService first)", name)
	}
	opts := Options{Mode: engine.ModeRewrite, Profile: engine.SYS1}
	if rawQuery != "" {
		params, err := url.ParseQuery(rawQuery)
		if err != nil {
			return nil, fmt.Errorf("udfsql: bad DSN params: %w", err)
		}
		for key, vals := range params {
			val := vals[len(vals)-1]
			switch key {
			case "mode":
				m, err := server.ParseMode(val)
				if err != nil {
					return nil, fmt.Errorf("udfsql: %w", err)
				}
				opts.Mode = m
			case "profile":
				p, err := server.ParseProfile(val)
				if err != nil {
					return nil, fmt.Errorf("udfsql: %w", err)
				}
				opts.Profile = p
			case "vectorized":
				switch strings.ToLower(val) {
				case "on", "true", "1":
					opts.Vectorized = true
				case "off", "false", "0":
					opts.Vectorized = false
				default:
					return nil, fmt.Errorf("udfsql: bad vectorized value %q", val)
				}
			case "parallelism":
				n, err := strconv.Atoi(val)
				if err != nil || n < 0 {
					return nil, fmt.Errorf("udfsql: bad parallelism value %q", val)
				}
				opts.Parallelism = n
			case "timeout":
				dur, err := time.ParseDuration(val)
				if err != nil || dur < 0 {
					return nil, fmt.Errorf("udfsql: bad timeout value %q", val)
				}
				opts.Timeout = dur
			case "trace":
				opts.Trace = val
			default:
				return nil, fmt.Errorf("udfsql: unknown DSN parameter %q", key)
			}
		}
	}
	return NewConnector(v.(*server.Service), opts), nil
}

// Options are the per-connection (session) settings.
type Options struct {
	Mode        engine.Mode
	Profile     engine.Profile
	Vectorized  bool
	Parallelism int           // 0 adopts the service default
	Timeout     time.Duration // per-statement; 0 = none
	// Trace labels this connection's queries with "<Trace>-<n>" trace IDs
	// (grep-able in the server's slow-query log). Empty means the server
	// generates IDs.
	Trace string
}

// Connector binds a service to session options; use with sql.OpenDB to
// skip the DSN registry.
type Connector struct {
	svc  *server.Service
	opts Options
}

// NewConnector builds a Connector over a running service.
func NewConnector(svc *server.Service, opts Options) *Connector {
	return &Connector{svc: svc, opts: opts}
}

// Connect implements driver.Connector: one connection = one session. The
// Options executor fields only layer on top of the profile when set, so a
// caller-supplied profile that already enables vectorized/parallel
// execution keeps its settings.
func (c *Connector) Connect(context.Context) (driver.Conn, error) {
	profile := c.opts.Profile
	if profile.Name == "" {
		profile = engine.SYS1
	}
	if c.opts.Vectorized {
		profile.Vectorized = true
	}
	if c.opts.Parallelism > 0 {
		profile.Parallelism = c.opts.Parallelism
	}
	if profile.Parallelism == 0 {
		profile.Parallelism = c.svc.DefaultParallelism()
	}
	sess := c.svc.CreateSession(profile, c.opts.Mode)
	if c.opts.Timeout > 0 {
		sess.SetTimeout(c.opts.Timeout)
	}
	return &conn{svc: c.svc, sess: sess, opts: c.opts, trace: c.opts.Trace}, nil
}

// Driver implements driver.Connector.
func (c *Connector) Driver() driver.Driver { return &Driver{} }

// conn is one driver connection backed by a service session.
type conn struct {
	svc   *server.Service
	sess  *server.Session
	opts  Options
	trace string       // trace-ID label from Options.Trace ("" = server IDs)
	seq   atomic.Int64 // per-connection trace sequence

	// Leader-follow state: the lazily opened companion connection writes are
	// replayed on after a follower's typed rejection. redirected marks a
	// connection that is itself a redirect target (depth-1 guard).
	mu         sync.Mutex
	leader     *conn
	redirected bool
}

// traceContext attaches the connection's next "<label>-<n>" trace ID, unless
// the caller already put an explicit one on the context.
func (c *conn) traceContext(ctx context.Context) context.Context {
	if c.trace == "" {
		return ctx
	}
	if _, ok := server.TraceIDFrom(ctx); ok {
		return ctx
	}
	return server.WithTraceID(ctx, fmt.Sprintf("%s-%d", c.trace, c.seq.Add(1)))
}

// Prepare implements driver.Conn. Planning is deferred to execution, where
// the service's shared plan cache makes repeated statements cheap anyway.
func (c *conn) Prepare(query string) (driver.Stmt, error) {
	return &stmt{c: c, sql: query}, nil
}

// Close implements driver.Conn, dropping the session (and the redirect
// companion's, when a write was followed to the leader).
func (c *conn) Close() error {
	c.mu.Lock()
	leader := c.leader
	c.leader = nil
	c.mu.Unlock()
	if leader != nil {
		_ = leader.Close()
	}
	c.svc.CloseSession(c.sess.ID)
	return nil
}

// Begin implements driver.Conn over the session's transaction state:
// database/sql pins the connection for the Tx's lifetime, so BEGIN, the
// statements and COMMIT/ROLLBACK all address one service session.
func (c *conn) Begin() (driver.Tx, error) {
	if err := c.svc.Exec(c.sess, "begin;"); err != nil {
		return nil, err
	}
	return &tx{c: c}, nil
}

type tx struct{ c *conn }

func (t *tx) Commit() error   { return t.c.svc.Exec(t.c.sess, "commit;") }
func (t *tx) Rollback() error { return t.c.svc.Exec(t.c.sess, "rollback;") }

// QueryContext implements driver.QueryerContext: SELECTs stream through the
// service's cursor API.
func (c *conn) QueryContext(ctx context.Context, query string, args []driver.NamedValue) (driver.Rows, error) {
	if len(args) > 0 {
		return nil, fmt.Errorf("udfsql: the dialect has no placeholder parameters (got %d args)", len(args))
	}
	ctx = c.traceContext(ctx)
	if inner, ok := cutExplainAnalyze(query); ok {
		out, err := c.svc.ExplainAnalyze(ctx, c.sess, inner)
		if err != nil {
			return nil, err
		}
		return &planRows{lines: strings.Split(strings.TrimRight(out, "\n"), "\n")}, nil
	}
	st, err := c.svc.QueryStream(ctx, c.sess, query)
	if err != nil {
		return nil, err
	}
	return &rows{st: st}, nil
}

// cutExplainAnalyze strips a leading EXPLAIN ANALYZE (case-insensitive),
// returning the statement to analyze.
func cutExplainAnalyze(query string) (string, bool) {
	trimmed := strings.TrimSpace(query)
	const kw = "explain analyze"
	if len(trimmed) > len(kw) && strings.EqualFold(trimmed[:len(kw)], kw) {
		switch trimmed[len(kw)] {
		case ' ', '\t', '\n', '\r':
			return strings.TrimSpace(trimmed[len(kw):]), true
		}
	}
	return "", false
}

// ExecContext implements driver.ExecerContext: DDL/DML scripts (CREATE
// TABLE / CREATE FUNCTION / INSERT) run under the exclusive DDL gate.
func (c *conn) ExecContext(ctx context.Context, query string, args []driver.NamedValue) (driver.Result, error) {
	if len(args) > 0 {
		return nil, fmt.Errorf("udfsql: the dialect has no placeholder parameters (got %d args)", len(args))
	}
	if err := c.svc.ExecContext(ctx, c.sess, query); err != nil {
		if lc := c.leaderConn(err); lc != nil {
			return lc.ExecContext(ctx, query, args)
		}
		return nil, err
	}
	return driver.ResultNoRows, nil
}

// leaderConn resolves the connection to replay a rejected write on: the
// error must be a follower's *server.ReadOnlyError whose leader hint names a
// registered service. The companion connection is opened once and reused;
// it is marked redirected so a mis-pointed "leader" that also rejects
// writes fails with its own typed error instead of hopping again.
func (c *conn) leaderConn(err error) *conn {
	var roe *server.ReadOnlyError
	if c.redirected || !errors.As(err, &roe) || roe.Leader == "" {
		return nil
	}
	v, ok := registry.Load(roe.Leader)
	if !ok {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.leader == nil {
		dc, cerr := NewConnector(v.(*server.Service), c.opts).Connect(context.Background())
		if cerr != nil {
			return nil
		}
		lc := dc.(*conn)
		lc.redirected = true
		c.leader = lc
	}
	return c.leader
}

// planRows serves an EXPLAIN ANALYZE result: a single "plan" column with one
// row per line of the annotated operator tree.
type planRows struct {
	lines []string
	pos   int
}

// Columns implements driver.Rows.
func (p *planRows) Columns() []string { return []string{"plan"} }

// Close implements driver.Rows.
func (p *planRows) Close() error { return nil }

// Next implements driver.Rows.
func (p *planRows) Next(dest []driver.Value) error {
	if p.pos >= len(p.lines) {
		return io.EOF
	}
	dest[0] = p.lines[p.pos]
	p.pos++
	return nil
}

// stmt is a prepared statement (text held per connection; the compiled plan
// lives in the service's shared cache).
type stmt struct {
	c   *conn
	sql string
}

// Close implements driver.Stmt.
func (s *stmt) Close() error { return nil }

// NumInput implements driver.Stmt: the dialect has no placeholders.
func (s *stmt) NumInput() int { return 0 }

// Exec implements driver.Stmt.
func (s *stmt) Exec(args []driver.Value) (driver.Result, error) {
	return s.c.ExecContext(context.Background(), s.sql, nil)
}

// Query implements driver.Stmt.
func (s *stmt) Query(args []driver.Value) (driver.Rows, error) {
	return s.c.QueryContext(context.Background(), s.sql, nil)
}

// QueryContext implements driver.StmtQueryContext.
func (s *stmt) QueryContext(ctx context.Context, args []driver.NamedValue) (driver.Rows, error) {
	return s.c.QueryContext(ctx, s.sql, args)
}

// ExecContext implements driver.StmtExecContext.
func (s *stmt) ExecContext(ctx context.Context, args []driver.NamedValue) (driver.Result, error) {
	return s.c.ExecContext(ctx, s.sql, args)
}

// rows adapts the service's streaming cursor to driver.Rows.
type rows struct {
	st *server.Stream
}

// Columns implements driver.Rows.
func (r *rows) Columns() []string { return r.st.Rows.Columns() }

// Close implements driver.Rows, releasing the stream's worker slots and
// DDL-gate hold.
func (r *rows) Close() error { return r.st.Rows.Close() }

// Next implements driver.Rows, pulling one row from the executing plan.
// Cancellation surfaces as the context's error (not io.EOF), so callers see
// why the stream stopped short.
func (r *rows) Next(dest []driver.Value) error {
	if !r.st.Rows.Next() {
		if err := r.st.Rows.Err(); err != nil {
			return err
		}
		return io.EOF
	}
	row := r.st.Rows.Row()
	for i, v := range row {
		dest[i] = driver.Value(v.Go())
	}
	return nil
}
