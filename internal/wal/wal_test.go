package wal

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"udfdecorr/internal/sqltypes"
)

// collect opens dir and gathers the replayed records.
func collect(t *testing.T, dir string, opts Options) (*Log, []Record, RecoveryStats) {
	t.Helper()
	var recs []Record
	l, st, err := Open(dir, opts, func(r Record) error {
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return l, recs, st
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, recs, _ := collect(t, dir, Options{Sync: SyncNone})
	if len(recs) != 0 {
		t.Fatalf("fresh dir replayed %d records", len(recs))
	}
	want := []Record{
		DDLRecord("create table kv (k int primary key, v varchar);"),
		IndexRecord("kv", "v"),
		InsertRecord("kv", [][]sqltypes.Value{
			{sqltypes.NewInt(1), sqltypes.NewString("a")},
			{sqltypes.NewInt(-7), sqltypes.Null},
			{sqltypes.NewFloat(2.5), sqltypes.NewBool(true)},
		}),
	}
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	_, got, st := collect(t, dir, Options{Sync: SyncNone})
	if st.WALRecords != int64(len(want)) {
		t.Fatalf("replayed %d records, want %d", st.WALRecords, len(want))
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replay mismatch:\n got %+v\nwant %+v", got, want)
	}

	// Typed decoding survives the round trip.
	if sql, err := got[0].DDL(); err != nil || sql != "create table kv (k int primary key, v varchar);" {
		t.Fatalf("DDL() = %q, %v", sql, err)
	}
	if tb, col, err := got[1].Index(); err != nil || tb != "kv" || col != "v" {
		t.Fatalf("Index() = %q,%q,%v", tb, col, err)
	}
	tb, rows, err := got[2].Insert()
	if err != nil || tb != "kv" || len(rows) != 3 {
		t.Fatalf("Insert() = %q, %d rows, %v", tb, len(rows), err)
	}
	if rows[1][1].Kind() != sqltypes.KindNull || rows[2][0].Kind() != sqltypes.KindFloat {
		t.Fatalf("value kinds not preserved: %+v", rows)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := collect(t, dir, Options{Sync: SyncNone, SegmentBytes: 256})
	for i := 0; i < 50; i++ {
		if err := l.Append(DDLRecord("create table t (k int); -- padding padding padding")); err != nil {
			t.Fatal(err)
		}
	}
	if seg := l.Stats().Segment; seg < 2 {
		t.Fatalf("expected rotation past segment 1, at %d", seg)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs, st := collect(t, dir, Options{Sync: SyncNone, SegmentBytes: 256})
	if len(recs) != 50 {
		t.Fatalf("replayed %d records across %d segments, want 50", len(recs), st.Segments)
	}
	if st.Segments < 2 {
		t.Fatalf("expected multiple segments, scanned %d", st.Segments)
	}
}

func TestTornFinalRecordTruncated(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := collect(t, dir, Options{Sync: SyncNone})
	for i := 0; i < 3; i++ {
		if err := l.Append(DDLRecord("statement;")); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	seg := filepath.Join(dir, segName(1))
	fi, _ := os.Stat(seg)
	sizes := []int64{
		fi.Size() - 1,               // payload cut by one byte
		fi.Size() - 10,              // cut into the middle of the last frame
		fi.Size()/3*2 + frameHeader, // header present, body missing
	}
	for _, sz := range sizes {
		if err := os.Truncate(seg, sz); err != nil {
			t.Fatal(err)
		}
		l2, recs, st := collect(t, dir, Options{Sync: SyncNone})
		if len(recs) >= 3 {
			t.Fatalf("truncate to %d: torn record replayed (got %d records)", sz, len(recs))
		}
		if st.TornBytes == 0 {
			t.Fatalf("truncate to %d: torn bytes not reported", sz)
		}
		// The log must be appendable after truncation.
		if err := l2.Append(DDLRecord("after;")); err != nil {
			t.Fatal(err)
		}
		l2.Close()
		l3, recs2, st2 := collect(t, dir, Options{Sync: SyncNone})
		l3.Close()
		if len(recs2) != len(recs)+1 || st2.TornBytes != 0 {
			t.Fatalf("truncate to %d: append-after-truncate broken (%d -> %d records, torn %d)",
				sz, len(recs), len(recs2), st2.TornBytes)
		}
		// The next iteration's truncate re-cuts the same segment, so the
		// appended record does not leak across cases.
	}
}

func TestCRCCorruptionMidLogFails(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := collect(t, dir, Options{Sync: SyncNone})
	for i := 0; i < 3; i++ {
		if err := l.Append(DDLRecord("statement number one with some length;")); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	seg := filepath.Join(dir, segName(1))
	buf, _ := os.ReadFile(seg)
	buf[frameHeader+5] ^= 0x01 // flip a payload bit in the FIRST record
	if err := os.WriteFile(seg, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := Open(dir, Options{Sync: SyncNone}, func(Record) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupted mid-log record: err = %v, want ErrCorrupt", err)
	}
}

func TestTornTailInNonFinalSegmentFails(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := collect(t, dir, Options{Sync: SyncNone, SegmentBytes: 64})
	for i := 0; i < 10; i++ {
		if err := l.Append(DDLRecord("some statement that forces rotation;")); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	// Cut the FIRST segment short: that hole cannot be a torn append.
	seg1 := filepath.Join(dir, segName(1))
	fi, _ := os.Stat(seg1)
	if err := os.Truncate(seg1, fi.Size()-3); err != nil {
		t.Fatal(err)
	}
	_, _, err := Open(dir, Options{Sync: SyncNone, SegmentBytes: 64}, func(Record) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("short non-final segment: err = %v, want ErrCorrupt", err)
	}
}

func TestEmptySegmentIsValid(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := collect(t, dir, Options{Sync: SyncNone})
	l.Close()
	// Simulate a crash right after rotation created an empty next segment.
	if err := os.WriteFile(filepath.Join(dir, segName(2)), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, recs, _ := collect(t, dir, Options{Sync: SyncNone})
	if len(recs) != 0 {
		t.Fatalf("empty segments replayed %d records", len(recs))
	}
	if err := l2.Append(DDLRecord("after;")); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	_, recs, _ = collect(t, dir, Options{Sync: SyncNone})
	if len(recs) != 1 {
		t.Fatalf("append after empty segment lost: %d records", len(recs))
	}
}

func TestCheckpointTruncatesAndBounds(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := collect(t, dir, Options{Sync: SyncNone, SegmentBytes: 128})
	for i := 0; i < 20; i++ {
		if err := l.Append(DDLRecord("pre-checkpoint statement with padding;")); err != nil {
			t.Fatal(err)
		}
	}
	snapshotState := []Record{DDLRecord("state summary;")}
	if err := l.Checkpoint(func(write func(Record) error) error {
		for _, r := range snapshotState {
			if err := write(r); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(DDLRecord("post-checkpoint;")); err != nil {
		t.Fatal(err)
	}
	l.Close()

	_, recs, st := collect(t, dir, Options{Sync: SyncNone, SegmentBytes: 128})
	if st.SnapshotRecords != 1 {
		t.Fatalf("snapshot records = %d, want 1", st.SnapshotRecords)
	}
	// Only the post-checkpoint tail replays from segments.
	if st.WALRecords != 1 {
		t.Fatalf("wal records = %d, want 1 (pre-checkpoint history must be gone)", st.WALRecords)
	}
	want := append(append([]Record{}, snapshotState...), DDLRecord("post-checkpoint;"))
	if !reflect.DeepEqual(recs, want) {
		t.Fatalf("replay after checkpoint:\n got %+v\nwant %+v", recs, want)
	}
}

// TestCheckpointCrashWindows walks the two crash points around a checkpoint:
// before the snapshot rename (old state must win) and after the rename but
// before old-segment deletion (new snapshot must win, stale segments must be
// ignored and cleaned).
func TestCheckpointCrashWindows(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := collect(t, dir, Options{Sync: SyncNone})
	if err := l.Append(DDLRecord("history;")); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Crash before rename: a leftover temp snapshot must be ignored.
	if err := os.WriteFile(filepath.Join(dir, snapTempName), []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	l2, recs, _ := collect(t, dir, Options{Sync: SyncNone})
	if len(recs) != 1 {
		t.Fatalf("temp snapshot changed replay: %d records", len(recs))
	}
	if _, err := os.Stat(filepath.Join(dir, snapTempName)); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("temp snapshot not cleaned up")
	}

	// Crash after rename, before deletion: write a real snapshot naming
	// segment 2 as the boundary, keep the stale segment 1 on disk.
	if err := writeSnapshot(dir, 2, func(write func(Record) error) error {
		return write(DDLRecord("snapshot state;"))
	}); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	_, recs, st := collect(t, dir, Options{Sync: SyncNone})
	if st.SnapshotRecords != 1 || st.WALRecords != 0 {
		t.Fatalf("stale segment replayed: snap=%d wal=%d", st.SnapshotRecords, st.WALRecords)
	}
	if len(recs) != 1 || string(recs[0].Payload) != "snapshot state;" {
		t.Fatalf("wrong winner after crashed checkpoint: %+v", recs)
	}
	if _, err := os.Stat(filepath.Join(dir, segName(1))); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("stale pre-checkpoint segment not removed")
	}
}

func TestMissingBoundarySegmentFails(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := collect(t, dir, Options{Sync: SyncNone})
	if err := l.Append(DDLRecord("pre;")); err != nil {
		t.Fatal(err)
	}
	if err := l.Checkpoint(func(write func(Record) error) error {
		return write(DDLRecord("state;"))
	}); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(DDLRecord("post;")); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Deleting the boundary segment (the one the snapshot names) loses its
	// committed records; recovery must refuse, not silently skip ahead.
	if err := os.Remove(filepath.Join(dir, segName(2))); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, segName(3)), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := Open(dir, Options{Sync: SyncNone}, func(Record) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("missing boundary segment: err = %v, want ErrCorrupt", err)
	}

	// Same refusal when the snapshot is deleted but post-checkpoint
	// segments remain: replay can no longer start from scratch.
	dir2 := t.TempDir()
	l2, _, _ := collect(t, dir2, Options{Sync: SyncNone})
	if err := l2.Checkpoint(func(write func(Record) error) error { return nil }); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	if err := os.Remove(filepath.Join(dir2, snapName)); err != nil {
		t.Fatal(err)
	}
	_, _, err = Open(dir2, Options{Sync: SyncNone}, func(Record) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("deleted snapshot with live post-checkpoint segments: err = %v, want ErrCorrupt", err)
	}
}

func TestDirLockExcludesSecondOpen(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := collect(t, dir, Options{Sync: SyncNone})
	if _, _, err := Open(dir, Options{Sync: SyncNone}, func(Record) error { return nil }); err == nil {
		t.Fatal("second Open succeeded while the first process holds the directory")
	}
	if err := l.Append(DDLRecord("still mine;")); err != nil {
		t.Fatalf("lock-holder append after contended open: %v", err)
	}
	l.Close()
	// Close releases the lock: the directory is reopenable.
	l2, recs, _ := collect(t, dir, Options{Sync: SyncNone})
	if len(recs) != 1 {
		t.Fatalf("replay after lock release: %d records", len(recs))
	}
	l2.Close()
}

func TestOversizedRecordRejected(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := collect(t, dir, Options{Sync: SyncNone})
	defer l.Close()
	big := Record{Type: RecDDL, Payload: make([]byte, maxRecordBody)}
	if err := l.Append(big); err == nil {
		t.Fatal("oversized append accepted — it would be unreadable on recovery")
	}
	// The refusal must leave the log consistent and appendable.
	if err := l.Append(DDLRecord("ok;")); err != nil {
		t.Fatal(err)
	}
	if err := l.Checkpoint(func(write func(Record) error) error {
		return write(big)
	}); err == nil {
		t.Fatal("oversized snapshot record accepted")
	}
	l.Close()
	_, recs, _ := collect(t, dir, Options{Sync: SyncNone})
	if len(recs) != 1 || string(recs[0].Payload) != "ok;" {
		t.Fatalf("log inconsistent after rejected records: %+v", recs)
	}
}

func TestIncompleteSnapshotFails(t *testing.T) {
	dir := t.TempDir()
	// A snapshot missing its end marker (truncated rename target — should be
	// impossible with atomic rename, but refuse loudly if it happens).
	frame := appendFrame(nil, Record{Type: recSnapBegin, Payload: make([]byte, 8)})
	frame = appendFrame(frame, DDLRecord("state;"))
	if err := os.WriteFile(filepath.Join(dir, snapName), frame, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := Open(dir, Options{Sync: SyncNone}, func(Record) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("incomplete snapshot: err = %v, want ErrCorrupt", err)
	}
}

func TestSyncPolicies(t *testing.T) {
	for _, tc := range []struct {
		in       string
		policy   SyncPolicy
		interval time.Duration
		wantErr  bool
	}{
		{"always", SyncAlways, 0, false},
		{"", SyncAlways, 0, false},
		{"none", SyncNone, 0, false},
		{"off", SyncNone, 0, false},
		{"250ms", SyncInterval, 250 * time.Millisecond, false},
		{"2s", SyncInterval, 2 * time.Second, false},
		{"sometimes", 0, 0, true},
		{"-1s", 0, 0, true},
	} {
		p, d, err := ParseSyncPolicy(tc.in)
		if tc.wantErr != (err != nil) {
			t.Fatalf("ParseSyncPolicy(%q): err = %v", tc.in, err)
		}
		if err == nil && (p != tc.policy || d != tc.interval) {
			t.Fatalf("ParseSyncPolicy(%q) = %v,%v", tc.in, p, d)
		}
	}

	// Appends under each policy must be replayable.
	for _, opts := range []Options{
		{Sync: SyncAlways},
		{Sync: SyncNone},
		{Sync: SyncInterval, SyncInterval: time.Millisecond},
	} {
		dir := t.TempDir()
		l, _, _ := collect(t, dir, opts)
		for i := 0; i < 5; i++ {
			if err := l.Append(DDLRecord("x;")); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Sync(); err != nil {
			t.Fatal(err)
		}
		l.Close()
		_, recs, _ := collect(t, dir, opts)
		if len(recs) != 5 {
			t.Fatalf("policy %v: replayed %d/5", opts.Sync, len(recs))
		}
	}
}
