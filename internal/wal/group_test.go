package wal

import (
	"fmt"
	"sync"
	"testing"

	"udfdecorr/internal/sqltypes"
)

// TestGroupCommitConcurrentAppends: many goroutines appending under the
// group policy must all be acknowledged, everything must be on disk when the
// last Append returns, and batching should have saved fsyncs (strictly
// fewer syncs than records — with 32 concurrent committers parked on one
// flusher, collapses are essentially guaranteed).
func TestGroupCommitConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := collect(t, dir, Options{Sync: SyncGroup})
	const (
		writers = 32
		each    = 20
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				rec := InsertRecord("kv", [][]sqltypes.Value{
					{sqltypes.NewInt(int64(w)), sqltypes.NewInt(int64(i))},
				})
				if err := l.Append(rec); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := l.Stats()
	if st.Records != writers*each {
		t.Fatalf("records = %d, want %d", st.Records, writers*each)
	}
	if st.GroupSyncs == 0 {
		t.Fatal("group policy performed no group syncs")
	}
	if st.GroupSyncs >= writers*each {
		t.Fatalf("no batching: %d syncs for %d records", st.GroupSyncs, writers*each)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	_, got, _ := collect(t, dir, Options{Sync: SyncNone})
	if len(got) != writers*each {
		t.Fatalf("replayed %d records, want %d", len(got), writers*each)
	}
}

// TestGroupCommitSurvivesRotation: group-synced appends crossing segment
// rotation must all replay.
func TestGroupCommitSurvivesRotation(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := collect(t, dir, Options{Sync: SyncGroup, SegmentBytes: 256})
	const n = 50
	for i := 0; i < n; i++ {
		rec := InsertRecord("kv", [][]sqltypes.Value{
			{sqltypes.NewInt(int64(i)), sqltypes.NewString("padding-padding")},
		})
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, got, _ := collect(t, dir, Options{Sync: SyncNone})
	if len(got) != n {
		t.Fatalf("replayed %d records, want %d", len(got), n)
	}
}

// TestAppendAllContiguous: a multi-record append lands as one contiguous
// run, in order, even interleaved with other appenders.
func TestAppendAllContiguous(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := collect(t, dir, Options{Sync: SyncGroup})
	const txns = 16
	var wg sync.WaitGroup
	for w := 0; w < txns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			txid := uint64(w + 1)
			err := l.AppendAll(
				BeginRecord(txid),
				TxnInsertRecord(txid, "kv", [][]sqltypes.Value{{sqltypes.NewInt(int64(w))}}),
				CommitRecord(txid),
			)
			if err != nil {
				t.Errorf("txn %d: %v", w, err)
			}
		}(w)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	_, got, _ := collect(t, dir, Options{Sync: SyncNone})
	if len(got) != txns*3 {
		t.Fatalf("replayed %d records, want %d", len(got), txns*3)
	}
	// Each transaction's three records must be adjacent and ordered.
	for i := 0; i < len(got); i += 3 {
		if got[i].Type != RecBegin || got[i+1].Type != RecTxnInsert || got[i+2].Type != RecCommit {
			t.Fatalf("record run %d not contiguous: %d %d %d",
				i, got[i].Type, got[i+1].Type, got[i+2].Type)
		}
		id0, _ := got[i].Txid()
		id1, _, _, err := got[i+1].TxnInsert()
		if err != nil {
			t.Fatal(err)
		}
		id2, _ := got[i+2].Txid()
		if id0 != id1 || id1 != id2 {
			t.Fatalf("record run %d mixes txids %d/%d/%d", i, id0, id1, id2)
		}
	}
}

// TestTxnRecordRoundTrip pins the txn record encodings.
func TestTxnRecordRoundTrip(t *testing.T) {
	for _, rec := range []Record{BeginRecord(42), CommitRecord(42), RollbackRecord(42)} {
		id, err := rec.Txid()
		if err != nil {
			t.Fatal(err)
		}
		if id != 42 {
			t.Fatalf("txid = %d", id)
		}
	}
	rows := [][]sqltypes.Value{
		{sqltypes.NewInt(7), sqltypes.NewString("a"), sqltypes.Null},
		{sqltypes.NewFloat(1.5), sqltypes.NewBool(false), sqltypes.NewInt(-1)},
	}
	rec := TxnInsertRecord(9, "orders", rows)
	id, table, got, err := rec.TxnInsert()
	if err != nil {
		t.Fatal(err)
	}
	if id != 9 || table != "orders" {
		t.Fatalf("decoded txid=%d table=%q", id, table)
	}
	if fmt.Sprint(got) != fmt.Sprint(rows) {
		t.Fatalf("rows mismatch:\n got %v\nwant %v", got, rows)
	}
	if _, err := DDLRecord("x").Txid(); err == nil {
		t.Fatal("Txid on a DDL record must fail")
	}
	if _, _, err := rec.Insert(); err == nil {
		t.Fatal("Insert on a TxnInsert record must fail")
	}
}
