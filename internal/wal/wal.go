// Package wal implements the durability substrate under the engine: a
// segmented append-only write-ahead log of CRC-framed records, plus an
// atomically-replaced snapshot file written by checkpoints. The package
// knows nothing about SQL — records carry opaque typed payloads (DDL text,
// index declarations, encoded insert batches) that the engine's durability
// layer produces and replays.
//
// On-disk layout of a data directory:
//
//	wal-00000001.seg   append-only record segments, replayed in order
//	wal-00000002.seg
//	checkpoint.snap    latest snapshot (same record framing; names the
//	                   first segment that post-dates it)
//
// Crash semantics: every record is framed with a length and a CRC32 of its
// body. A record whose frame runs past the end of the final segment is a
// torn tail — the bytes of an append cut short by a crash — and is silently
// truncated on open. A complete frame whose CRC does not match, or a short
// frame in any segment other than the last, cannot be explained by a torn
// append and fails recovery with ErrCorrupt: silently dropping it would
// hide real data loss. Snapshots are written to a temp file, fsynced, and
// renamed over checkpoint.snap, so a crash mid-checkpoint leaves the
// previous snapshot + segments fully intact.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// fsyncObserver, when set, receives the wall-clock latency of every
// log-file fsync (see SetFsyncObserver).
var fsyncObserver atomic.Pointer[func(time.Duration)]

// SetFsyncObserver registers fn to receive the latency of each WAL
// log-file fsync — the syncs that gate append acknowledgement, not the
// checkpoint temp-file syncs. Pass nil to clear. The hook is process-wide
// (one durable engine per process in practice) and must be fast and
// non-blocking: it runs with the log lock held.
func SetFsyncObserver(fn func(time.Duration)) {
	if fn == nil {
		fsyncObserver.Store(nil)
		return
	}
	fsyncObserver.Store(&fn)
}

// syncLogFile fsyncs the live log segment, reporting the latency to the
// registered observer (error or not — a slow failed fsync is still signal).
func syncLogFile(f *os.File) error {
	start := time.Now()
	err := f.Sync()
	if ob := fsyncObserver.Load(); ob != nil {
		(*ob)(time.Since(start))
	}
	return err
}

// ErrCorrupt reports unrecoverable log damage: a CRC mismatch on a complete
// record frame, or a torn record in a segment that is not the last. Torn
// final records are NOT corruption — they are truncated silently.
var ErrCorrupt = errors.New("wal: corrupt record")

// SyncPolicy selects when appends reach stable storage.
type SyncPolicy uint8

// Sync policies.
const (
	// SyncAlways fsyncs after every append: an acknowledged write survives
	// kill -9 and power loss. The default.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs at most once per Options.SyncInterval (checked on
	// append): bounded data loss, much cheaper under write bursts.
	SyncInterval
	// SyncNone never fsyncs; the OS decides. Survives process crashes
	// (kill -9) but not power loss.
	SyncNone
	// SyncGroup fsyncs every append, but amortizes the fsync over the batch
	// of concurrent appenders: committers park on a shared flush, one of
	// them syncs everything written so far, and every covered waiter acks.
	// Same durability as SyncAlways (an acknowledged append survives power
	// loss), a fraction of the fsyncs under concurrent writers.
	SyncGroup
)

// ParseSyncPolicy maps the -fsync flag surface onto a policy: "always",
// "group", "none"/"off", or a duration like "250ms" (interval mode).
func ParseSyncPolicy(s string) (SyncPolicy, time.Duration, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "always":
		return SyncAlways, 0, nil
	case "group":
		return SyncGroup, 0, nil
	case "none", "off", "never":
		return SyncNone, 0, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil || d <= 0 {
		return 0, 0, fmt.Errorf("fsync policy %q: want always|none|<interval duration>", s)
	}
	return SyncInterval, d, nil
}

// String names the policy.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNone:
		return "none"
	case SyncGroup:
		return "group"
	default:
		return "?"
	}
}

// Options configures a Log.
type Options struct {
	// Sync is the fsync policy for appends (default SyncAlways).
	Sync SyncPolicy
	// SyncInterval is the maximum staleness under SyncInterval.
	SyncInterval time.Duration
	// SegmentBytes rotates to a fresh segment once the current one exceeds
	// this size. <=0 means 4 MiB.
	SegmentBytes int64
	// RetainSegments keeps that many sealed segments below each checkpoint's
	// replay boundary instead of deleting them immediately, so a replica
	// catching up from an older snapshot can still stream them. 0 restores
	// the delete-at-checkpoint behavior. Retained segments are dead weight
	// for recovery (they predate the snapshot) and are cleaned up on the
	// next Open.
	RetainSegments int
}

const (
	defaultSegmentBytes = 4 << 20
	segPrefix           = "wal-"
	segSuffix           = ".seg"
	snapName            = "checkpoint.snap"
	snapTempName        = "checkpoint.snap.tmp"
	lockName            = "LOCK"
)

func segName(seq uint64) string { return fmt.Sprintf("%s%08d%s", segPrefix, seq, segSuffix) }

func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	var seq uint64
	_, err := fmt.Sscanf(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix), "%d", &seq)
	return seq, err == nil
}

// RecoveryStats reports what Open replayed.
type RecoveryStats struct {
	// SnapshotRecords is the number of records loaded from checkpoint.snap
	// (0 when no snapshot exists).
	SnapshotRecords int64
	// WALRecords is the number of log records replayed from segments.
	WALRecords int64
	// Segments is the number of segment files scanned.
	Segments int
	// TornBytes is the size of the torn tail truncated from the final
	// segment (0 on a clean shutdown).
	TornBytes int64
}

// Log is an open write-ahead log. Append is safe for concurrent use;
// Checkpoint requires the caller to exclude concurrent Appends (the query
// service holds its DDL write gate around checkpoints).
type Log struct {
	dir  string
	opts Options
	lock *os.File // flock-held LOCK file; released on Close (or process exit)

	mu       sync.Mutex
	f        *os.File
	seg      uint64 // current segment seq
	segBytes int64  // bytes in the current segment
	bytes    int64  // total bytes across live segments
	records  int64  // records appended this process
	lastSync time.Time

	// Replication-stream state: the durable tip (what may be shipped to a
	// replica), per-segment cumulative record counts (lag is computed in
	// records, in one coordinate system), and the tip-watch channel closed
	// whenever the durable tip advances (long-polling readers wait on it).
	oldestSeg  uint64           // smallest on-disk segment seq (incl. retained)
	logRecords int64            // cumulative records in this log lineage (replayed + appended)
	segStart   map[uint64]int64 // logRecords value at each live segment's start
	tipCh      chan struct{}

	// Group-commit state (SyncGroup policy). Batches are numbered: every
	// append under mu takes the next writeGen ticket; a group flush observes
	// the writeGen at sync time and advances syncGen to it, releasing every
	// waiter whose ticket it covers. One flusher runs at a time; appenders
	// arriving mid-flush park and the first of them becomes the next
	// flusher — the classic two-generation group commit.
	gmu      sync.Mutex // guards the fields below (never held across a sync)
	gcond    *sync.Cond
	writeGen uint64
	syncGen  uint64
	syncing  bool
	syncErr  error // sticky: a failed group flush poisons the log (fail-stop)

	// syncedSegBytes is the durable prefix of the current segment (guarded
	// by mu); a failed group flush truncates back to it, since the batched
	// frames of several writers cannot be selectively dropped.
	syncedSegBytes int64
	groupSyncs     int64 // group flushes performed (telemetry)
}

// Open replays the durable state in dir (snapshot first, then every live
// segment in order) through apply, then returns a log positioned to append.
// A missing or empty directory is a valid empty log. The final segment's
// torn tail, if any, is truncated before appending resumes.
func Open(dir string, opts Options, apply func(Record) error) (*Log, RecoveryStats, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, RecoveryStats{}, err
	}
	// Exclusive-lock the directory before touching anything: a second
	// process replaying here would truncate the live log's in-flight tail
	// as "torn" and interleave appends. The flock releases automatically if
	// the process dies, so kill -9 never wedges the directory.
	lock, err := acquireDirLock(filepath.Join(dir, lockName))
	if err != nil {
		return nil, RecoveryStats{}, err
	}
	ok := false
	defer func() {
		if !ok {
			lock.Close()
		}
	}()
	var stats RecoveryStats

	firstSeg := uint64(1)
	snapRecords, snapFirstSeg, err := readSnapshot(filepath.Join(dir, snapName), apply)
	if err != nil {
		return nil, stats, err
	}
	stats.SnapshotRecords = snapRecords
	if snapFirstSeg > 0 {
		firstSeg = snapFirstSeg
	}
	// A crash between snapshot rename and temp cleanup leaves the temp file;
	// it is dead weight either way.
	_ = os.Remove(filepath.Join(dir, snapTempName))

	segs, err := listSegments(dir)
	if err != nil {
		return nil, stats, err
	}
	// Segments older than the snapshot boundary were checkpointed away; a
	// crash between snapshot rename and segment deletion can leave them.
	live := segs[:0]
	for _, seq := range segs {
		if seq < firstSeg {
			_ = os.Remove(filepath.Join(dir, segName(seq)))
			continue
		}
		live = append(live, seq)
	}
	segs = live

	// Live segments must form a contiguous run starting exactly at the
	// snapshot boundary: a missing boundary or interior segment means
	// committed records are gone, which recovery must refuse to paper over.
	// (No live segments at all is legitimate — the crash window between a
	// checkpoint's snapshot rename and its new-segment creation.)
	if len(segs) > 0 && segs[0] != firstSeg {
		return nil, stats, fmt.Errorf("%w: first live segment is %d, snapshot boundary is %d (segment missing or stale snapshot deleted)",
			ErrCorrupt, segs[0], firstSeg)
	}
	l := &Log{dir: dir, opts: opts, lock: lock, lastSync: time.Now(),
		segStart: map[uint64]int64{}, tipCh: make(chan struct{})}
	l.gcond = sync.NewCond(&l.gmu)
	for i, seq := range segs {
		if i > 0 && seq != segs[i-1]+1 {
			return nil, stats, fmt.Errorf("%w: segment gap between %d and %d", ErrCorrupt, segs[i-1], seq)
		}
		last := i == len(segs)-1
		l.segStart[seq] = l.logRecords
		n, kept, torn, err := replaySegment(filepath.Join(dir, segName(seq)), last, apply)
		if err != nil {
			return nil, stats, err
		}
		stats.WALRecords += n
		stats.Segments++
		stats.TornBytes += torn
		l.bytes += kept
		l.logRecords += n
		if last {
			l.seg = seq
			l.segBytes = kept
		}
	}

	if l.seg == 0 {
		// Fresh log (or everything was checkpointed away): start at the
		// snapshot boundary so older stray segments stay dead.
		if err := l.createSegmentLocked(firstSeg); err != nil {
			return nil, stats, err
		}
	} else {
		f, err := os.OpenFile(filepath.Join(dir, segName(l.seg)), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, stats, err
		}
		l.f = f
	}
	// Whatever survived recovery is the durable prefix by definition.
	l.syncedSegBytes = l.segBytes
	l.oldestSeg = l.seg
	if len(segs) > 0 {
		l.oldestSeg = segs[0]
	}
	ok = true
	return l, stats, nil
}

// acquireDirLock takes a non-blocking exclusive flock on path, failing fast
// when another process holds the directory. The holder records itself in the
// LOCK file, so a double-open error can name who owns the directory — the
// classic way to hit this is pointing a follower at its leader's live data
// dir, which must fail loudly rather than with a bare EWOULDBLOCK.
func acquireDirLock(path string) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		holder := "holder unknown"
		if b, rerr := os.ReadFile(path); rerr == nil && len(strings.TrimSpace(string(b))) > 0 {
			holder = "held by " + strings.TrimSpace(string(b))
		}
		f.Close()
		return nil, fmt.Errorf("wal: data directory %q is locked by another process (%s): %w — a follower must use its leader's /repl endpoints, never its data dir",
			filepath.Dir(path), holder, err)
	}
	// Best-effort holder stamp: truncate any stale owner's note first.
	if err := f.Truncate(0); err == nil {
		_, _ = f.WriteAt([]byte(fmt.Sprintf("pid %d since %s", os.Getpid(), time.Now().UTC().Format(time.RFC3339))), 0)
	}
	return f, nil
}

// LockDir takes the same exclusive flock a Log holds on its data directory
// and returns it for the caller to Close. Promotion uses it to prove a dead
// leader really is dead before draining its WAL tail from the filesystem: if
// the leader still runs, the flock fails with the holder's identity.
func LockDir(dir string) (*os.File, error) {
	return acquireDirLock(filepath.Join(dir, lockName))
}

// listSegments returns the segment sequence numbers in dir, sorted.
func listSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []uint64
	for _, e := range entries {
		if seq, ok := parseSegName(e.Name()); ok {
			segs = append(segs, seq)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	return segs, nil
}

// createSegmentLocked opens a fresh segment for writing (caller holds mu or
// has exclusive access) and fsyncs the directory so the file entry is
// durable.
func (l *Log) createSegmentLocked(seq uint64) error {
	f, err := os.OpenFile(filepath.Join(l.dir, segName(seq)), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if err := syncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.seg = seq
	l.segBytes = 0
	l.syncedSegBytes = 0
	if l.segStart != nil {
		l.segStart[seq] = l.logRecords
	}
	if l.oldestSeg == 0 {
		l.oldestSeg = seq
	}
	l.advanceTipLocked() // the previous segment (if any) is sealed: fully readable
	return nil
}

// advanceTipLocked wakes every long-polling stream reader: the durable tip
// moved (a sync completed or a segment sealed). Caller holds mu.
func (l *Log) advanceTipLocked() {
	if l.tipCh != nil {
		close(l.tipCh)
		l.tipCh = make(chan struct{})
	}
}

// Append frames rec, writes it to the current segment (rotating first if the
// segment is full), and syncs per the configured policy. An acknowledged
// Append is durable to the extent the policy promises.
func (l *Log) Append(rec Record) error { return l.AppendAll(rec) }

// AppendAll appends records contiguously under one lock hold — no other
// append interleaves between them — then syncs once per the policy. The
// durability layer relies on the contiguity to keep a transaction's
// Begin/insert/Commit run together, so neither a concurrent append nor a
// crash can split a committed transaction from its commit record.
func (l *Log) AppendAll(recs ...Record) error {
	if len(recs) == 0 {
		return nil
	}
	for _, rec := range recs {
		if 1+len(rec.Payload) > maxRecordBody {
			return fmt.Errorf("wal: record body %d bytes exceeds the %d limit", 1+len(rec.Payload), maxRecordBody)
		}
	}
	var frame []byte
	l.mu.Lock()
	if l.f == nil {
		l.mu.Unlock()
		return errors.New("wal: log is closed")
	}
	// written/frames track this call's footprint in the CURRENT segment so
	// a failure can roll it back; a mid-call rotation resets them (frames
	// sealed into the previous segment were synced by the rotation and
	// cannot be unwritten — for transaction batches the missing commit
	// record makes replay discard them anyway).
	var written, frames int64
	fail := func(err error) error {
		l.discardLocked(written, frames)
		l.mu.Unlock()
		return err
	}
	for _, rec := range recs {
		frame = appendFrame(frame[:0], rec)
		if l.segBytes > 0 && l.segBytes+int64(len(frame)) > l.opts.SegmentBytes {
			if err := l.rotateLocked(); err != nil {
				return fail(err)
			}
			written, frames = 0, 0
		}
		if _, err := l.f.Write(frame); err != nil {
			// A partial frame must not linger mid-segment: later successful
			// appends after it would make the log unopenable (mid-log CRC
			// failure).
			return fail(err)
		}
		l.segBytes += int64(len(frame))
		l.bytes += int64(len(frame))
		l.records++
		l.logRecords++
		written += int64(len(frame))
		frames++
	}
	switch l.opts.Sync {
	case SyncAlways:
		if err := syncLogFile(l.f); err != nil {
			// The caller will report this mutation as failed and veto it, so
			// the record must not resurrect on replay.
			return fail(err)
		}
		l.syncedSegBytes = l.segBytes
		l.advanceTipLocked()
	case SyncInterval:
		if time.Since(l.lastSync) >= l.opts.SyncInterval {
			l.lastSync = time.Now()
			if err := syncLogFile(l.f); err != nil {
				return fail(err)
			}
			l.syncedSegBytes = l.segBytes
			l.advanceTipLocked()
		}
	case SyncNone:
		// No durability promise: the shippable tip is simply what was written.
		l.advanceTipLocked()
	case SyncGroup:
		l.gmu.Lock()
		l.writeGen++
		ticket := l.writeGen
		l.gmu.Unlock()
		l.mu.Unlock()
		return l.groupWait(ticket)
	}
	l.mu.Unlock()
	return nil
}

// groupWait blocks until the append holding ticket is durably synced (nil)
// or a group flush covering it failed. The first parked appender that finds
// no flush in progress becomes the flusher for everything written so far;
// appenders arriving mid-flush park for the next generation.
func (l *Log) groupWait(ticket uint64) error {
	l.gmu.Lock()
	defer l.gmu.Unlock()
	for l.syncGen < ticket && l.syncErr == nil {
		if !l.syncing {
			l.syncing = true
			l.gmu.Unlock()
			covered, err := l.groupFlush()
			l.gmu.Lock()
			l.syncing = false
			if err != nil {
				l.syncErr = err // sticky: the log is fail-stopped
			} else if covered > l.syncGen {
				l.syncGen = covered
			}
			l.gcond.Broadcast()
			continue
		}
		l.gcond.Wait()
	}
	if l.syncGen >= ticket {
		return nil // covered by a successful flush, even if a later one failed
	}
	return l.syncErr
}

// groupFlush syncs the current segment, covering every append ticketed
// before the sync, and returns the covered write generation. A failed sync
// cannot selectively drop one writer's frames from the batch, so it rolls
// the segment back to the durable prefix and closes the log (fail-stop):
// every waiter in the batch errors and vetoes its mutation consistently.
func (l *Log) groupFlush() (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return 0, errors.New("wal: log is closed")
	}
	l.gmu.Lock()
	covered := l.writeGen
	l.gmu.Unlock()
	if err := syncLogFile(l.f); err != nil {
		if terr := l.f.Truncate(l.syncedSegBytes); terr == nil {
			l.bytes -= l.segBytes - l.syncedSegBytes
			l.segBytes = l.syncedSegBytes
		}
		l.f.Close()
		l.f = nil
		return 0, err
	}
	l.syncedSegBytes = l.segBytes
	l.lastSync = time.Now()
	l.groupSyncs++
	l.advanceTipLocked()
	return covered, nil
}

// discardLocked rolls the current segment back by n bytes / k records (plus
// any trailing partial frame) after a failed write or sync. If the truncate
// fails too, the log is closed (fail-stop): acknowledging further appends
// on top of undefined bytes would risk silent corruption.
func (l *Log) discardLocked(n, k int64) {
	if l.f == nil {
		return
	}
	if terr := l.f.Truncate(l.segBytes - n); terr != nil {
		l.f.Close()
		l.f = nil
		return
	}
	l.segBytes -= n
	l.bytes -= n
	l.records -= k
	l.logRecords -= k
}

// rotateLocked seals the current segment and starts the next one. A sync
// failure leaves the current segment in place (nothing moved); any failure
// past that point leaves the log closed — fail-stop, never inconsistent.
func (l *Log) rotateLocked() error {
	if err := syncLogFile(l.f); err != nil {
		return err
	}
	seq := l.seg
	err := l.f.Close()
	l.f = nil
	if err != nil {
		return err
	}
	return l.createSegmentLocked(seq + 1)
}

// Sync forces buffered appends to stable storage regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	l.lastSync = time.Now()
	if err := syncLogFile(l.f); err != nil {
		return err
	}
	l.syncedSegBytes = l.segBytes
	l.advanceTipLocked()
	return nil
}

// Checkpoint writes a snapshot and truncates the log: emit is called with a
// writer that frames each snapshot record; once the snapshot is durable, all
// segments preceding the checkpoint are deleted and appends continue in a
// fresh segment. The caller must exclude concurrent Appends AND guarantee
// the emitted records capture all appends acknowledged so far.
func (l *Log) Checkpoint(emit func(write func(Record) error) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return errors.New("wal: log is closed")
	}
	oldSeg := l.seg
	newSeg := oldSeg + 1

	// Rotate FIRST, snapshot second: once the snapshot durably names newSeg
	// as the replay boundary, every later acknowledged append must land in a
	// segment >= newSeg. Rotating first guarantees that even if the snapshot
	// write (or this whole process) fails right after the rename — the
	// failure mode where appends continuing in oldSeg would be silently
	// deleted on the next open. If the rotation itself fails the log is left
	// unusable (appends error) rather than inconsistent.
	if err := l.rotateLocked(); err != nil {
		return err
	}
	if err := writeSnapshot(l.dir, newSeg, emit); err != nil {
		// The old snapshot still pairs correctly with the full segment run;
		// only the truncation was lost.
		return err
	}
	// Superseded segments are deleted, except the newest RetainSegments of
	// them: a replica still streaming from before this checkpoint can catch
	// up through the retained run instead of being forced to re-bootstrap.
	cutoff := newSeg
	if r := uint64(l.opts.RetainSegments); r > 0 {
		if r >= cutoff {
			cutoff = 0
		} else {
			cutoff -= r
		}
	}
	removed := int64(0)
	segs, err := listSegments(l.dir)
	if err == nil {
		l.oldestSeg = newSeg
		for _, seq := range segs {
			if seq < cutoff {
				if fi, err := os.Stat(filepath.Join(l.dir, segName(seq))); err == nil {
					removed += fi.Size()
				}
				_ = os.Remove(filepath.Join(l.dir, segName(seq)))
				delete(l.segStart, seq)
			} else if seq < l.oldestSeg {
				l.oldestSeg = seq
			}
		}
	}
	l.bytes -= removed
	if l.bytes < 0 {
		l.bytes = 0
	}
	return nil
}

// Stats is a point-in-time size snapshot of the log.
type Stats struct {
	// Bytes is the total size of live segments (appended minus truncated).
	Bytes int64
	// Records is the number of records appended by this process.
	Records int64
	// Segment is the current segment sequence number.
	Segment uint64
	// OldestSegment is the smallest segment still on disk (retained segments
	// included) — the earliest position a replica can stream from.
	OldestSegment uint64
	// NewestSegment equals Segment (the open segment); named for symmetry in
	// /stats output.
	NewestSegment uint64
	// GroupSyncs is the number of shared fsync batches flushed under the
	// SyncGroup policy (0 for other policies). Records appended minus
	// GroupSyncs approximates the fsyncs saved by batching.
	GroupSyncs int64
}

// Stats snapshots the log counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{Bytes: l.bytes, Records: l.records, Segment: l.seg,
		OldestSegment: l.oldestSeg, NewestSegment: l.seg, GroupSyncs: l.groupSyncs}
}

// Close syncs and closes the current segment and releases the directory
// lock. Further Appends fail.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	var err error
	if l.f != nil {
		err = l.f.Sync()
		if cerr := l.f.Close(); err == nil {
			err = cerr
		}
		l.f = nil
	}
	if l.lock != nil {
		if cerr := l.lock.Close(); err == nil {
			err = cerr
		}
		l.lock = nil
	}
	l.advanceTipLocked() // wake long-polling readers so they observe the close
	return err
}

// ---------------------------------------------------------------------------
// Record framing
// ---------------------------------------------------------------------------

// frame: u32 bodyLen | u32 crc32(body) | body, where body = type byte +
// payload.
const frameHeader = 8

// maxRecordBody bounds a record's body on BOTH sides: readFrame rejects
// larger frames as corruption, so the writers must refuse to produce them —
// otherwise an acknowledged oversized append would poison the log forever.
const maxRecordBody = 1 << 30

var crcTable = crc32.MakeTable(crc32.Castagnoli)

func appendFrame(dst []byte, rec Record) []byte {
	bodyLen := 1 + len(rec.Payload)
	var hdr [frameHeader]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(bodyLen))
	crc := crc32.Update(0, crcTable, []byte{rec.Type})
	crc = crc32.Update(crc, crcTable, rec.Payload)
	binary.BigEndian.PutUint32(hdr[4:8], crc)
	dst = append(dst, hdr[:]...)
	dst = append(dst, rec.Type)
	return append(dst, rec.Payload...)
}

// readFrame decodes one record from buf. It returns the record, the number
// of bytes consumed, and ok=false when buf holds only a partial frame (a
// torn tail if at end of the final segment). A complete frame with a CRC
// mismatch returns ErrCorrupt.
func readFrame(buf []byte) (Record, int, bool, error) {
	if len(buf) < frameHeader {
		return Record{}, 0, false, nil
	}
	bodyLen := int(binary.BigEndian.Uint32(buf[0:4]))
	if bodyLen < 1 || bodyLen > maxRecordBody {
		// An absurd length is indistinguishable from garbage; treat it as a
		// CRC-level failure, not a torn tail, unless the header itself could
		// be partial (it is not: we have all 8 bytes).
		return Record{}, 0, false, fmt.Errorf("%w: implausible record length %d", ErrCorrupt, bodyLen)
	}
	if len(buf) < frameHeader+bodyLen {
		return Record{}, 0, false, nil
	}
	body := buf[frameHeader : frameHeader+bodyLen]
	want := binary.BigEndian.Uint32(buf[4:8])
	if crc32.Checksum(body, crcTable) != want {
		return Record{}, 0, false, fmt.Errorf("%w: crc mismatch", ErrCorrupt)
	}
	payload := make([]byte, bodyLen-1)
	copy(payload, body[1:])
	return Record{Type: body[0], Payload: payload}, frameHeader + bodyLen, true, nil
}

// replaySegment streams a segment's records through apply. For the last
// segment a trailing partial frame is truncated from the file (torn-tail
// recovery); anywhere else it is corruption.
func replaySegment(path string, last bool, apply func(Record) error) (records, kept, torn int64, err error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, 0, err
	}
	off := 0
	for off < len(buf) {
		rec, n, ok, err := readFrame(buf[off:])
		if err != nil {
			return records, int64(off), 0, fmt.Errorf("%s at offset %d: %w", path, off, err)
		}
		if !ok {
			if !last {
				return records, int64(off), 0, fmt.Errorf("%w: %s: torn record at offset %d of a non-final segment", ErrCorrupt, path, off)
			}
			torn = int64(len(buf) - off)
			if err := os.Truncate(path, int64(off)); err != nil {
				return records, int64(off), torn, err
			}
			return records, int64(off), torn, nil
		}
		if err := apply(rec); err != nil {
			return records, int64(off), 0, fmt.Errorf("%s at offset %d: replay: %w", path, off, err)
		}
		records++
		off += n
	}
	return records, int64(off), 0, nil
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

// Snapshot files reuse the record framing: a begin record naming the first
// segment that post-dates the snapshot, the engine-supplied state records,
// and an end marker proving the file is complete. The rename-over-old write
// makes checkpoint.snap atomic, so a file missing its end marker can only
// mean tampering or disk corruption — recovery refuses it.

// writeSnapshot writes dir/checkpoint.snap atomically.
func writeSnapshot(dir string, firstSeg uint64, emit func(write func(Record) error) error) error {
	tmp := filepath.Join(dir, snapTempName)
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	defer func() {
		if f != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()

	var scratch []byte
	write := func(rec Record) error {
		if 1+len(rec.Payload) > maxRecordBody {
			return fmt.Errorf("wal: snapshot record body %d bytes exceeds the %d limit", 1+len(rec.Payload), maxRecordBody)
		}
		scratch = appendFrame(scratch[:0], rec)
		_, werr := f.Write(scratch)
		return werr
	}
	var seg [8]byte
	binary.BigEndian.PutUint64(seg[:], firstSeg)
	if err := write(Record{Type: recSnapBegin, Payload: seg[:]}); err != nil {
		return err
	}
	if err := emit(write); err != nil {
		return err
	}
	if err := write(Record{Type: recSnapEnd}); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		f = nil
		os.Remove(tmp)
		return err
	}
	f = nil
	if err := os.Rename(tmp, filepath.Join(dir, snapName)); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(dir)
}

// readSnapshot replays a snapshot file through apply. A missing file is an
// empty snapshot. Returns the record count and the first live segment.
func readSnapshot(path string, apply func(Record) error) (int64, uint64, error) {
	buf, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, 0, nil
	}
	if err != nil {
		return 0, 0, err
	}
	records, firstSeg, err := ParseSnapshot(buf, apply)
	if err != nil {
		return records, 0, fmt.Errorf("snapshot %s: %w", path, err)
	}
	return records, firstSeg, nil
}

// ParseSnapshot replays an in-memory snapshot image (the byte-for-byte
// contents of checkpoint.snap, e.g. as fetched from a leader's /repl/snapshot
// endpoint) through apply. It returns the number of state records applied and
// the first WAL segment that post-dates the snapshot — the position a replica
// resumes streaming from.
func ParseSnapshot(buf []byte, apply func(Record) error) (int64, uint64, error) {
	var records int64
	var firstSeg uint64
	sawBegin, sawEnd := false, false
	off := 0
	for off < len(buf) {
		rec, n, ok, err := readFrame(buf[off:])
		if err != nil || !ok {
			if err == nil {
				err = io.ErrUnexpectedEOF
			}
			return records, 0, fmt.Errorf("%w: at offset %d: %v", ErrCorrupt, off, err)
		}
		off += n
		switch rec.Type {
		case recSnapBegin:
			if len(rec.Payload) != 8 {
				return records, 0, fmt.Errorf("%w: bad begin record", ErrCorrupt)
			}
			firstSeg = binary.BigEndian.Uint64(rec.Payload)
			sawBegin = true
		case recSnapEnd:
			sawEnd = true
		default:
			if err := apply(rec); err != nil {
				return records, 0, fmt.Errorf("replay: %w", err)
			}
			records++
		}
		if sawEnd {
			break
		}
	}
	if !sawBegin || !sawEnd {
		return records, 0, fmt.Errorf("%w: incomplete snapshot (begin=%v end=%v)", ErrCorrupt, sawBegin, sawEnd)
	}
	return records, firstSeg, nil
}
