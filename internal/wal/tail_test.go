// Replication-stream tests: a reader tailing a live log must see exactly the
// appended records, in order, cut only at frame boundaries — no matter how it
// races appends, group-commit fsyncs and segment rotations. Run under -race.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

// tailAll drains the log from (1,0) until n records arrive or the deadline
// passes, verifying every chunk is a whole-frame run.
func tailAll(t *testing.T, l *Log, n int, deadline time.Duration) []Record {
	t.Helper()
	var got []Record
	seg, off := uint64(1), int64(0)
	timeout := time.After(deadline)
	for len(got) < n {
		select {
		case <-timeout:
			t.Fatalf("tail stalled: %d/%d records (at segment %d offset %d)", len(got), n, seg, off)
		default:
		}
		watch := l.TipWatch()
		data, sealed, err := l.ReadSegment(seg, off, 4096)
		if err != nil {
			t.Fatalf("ReadSegment(%d,%d): %v", seg, off, err)
		}
		recs, consumed, err := ScanFrames(data, func(r Record) error {
			got = append(got, r)
			return nil
		})
		if err != nil {
			t.Fatalf("ScanFrames at segment %d offset %d: %v", seg, off, err)
		}
		if consumed != int64(len(data)) {
			t.Fatalf("ReadSegment returned a partial frame: consumed %d of %d bytes", consumed, len(data))
		}
		off += consumed
		if sealed {
			seg, off = seg+1, 0
			continue
		}
		if recs == 0 {
			select {
			case <-watch:
			case <-time.After(50 * time.Millisecond):
			}
		}
	}
	return got
}

// TestTailRacesGroupCommitAndRotation is the live-tail race test: concurrent
// writers under group-commit fsync with aggressive rotation, one reader
// tailing from the start. The reader must observe every acknowledged record
// exactly once, each writer's records in order, and only whole CRC-valid
// frames (ScanFrames fails the test on any torn or corrupt chunk).
func TestTailRacesGroupCommitAndRotation(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := collect(t, dir, Options{Sync: SyncGroup, SegmentBytes: 2048})
	defer l.Close()

	const writers, perWriter = 4, 100
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				rec := DDLRecord(fmt.Sprintf("writer %d record %d -- padding to make frames non-trivial", w, i))
				if err := l.AppendAll(rec); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}

	got := tailAll(t, l, writers*perWriter, 30*time.Second)
	wg.Wait()

	// Every record exactly once, and per-writer order preserved.
	nextPerWriter := make([]int, writers)
	seen := map[string]bool{}
	for _, r := range got {
		sql, err := r.DDL()
		if err != nil {
			t.Fatalf("unexpected record type %d", r.Type)
		}
		if seen[sql] {
			t.Fatalf("record observed twice: %q", sql)
		}
		seen[sql] = true
		var w, i int
		if _, err := fmt.Sscanf(sql, "writer %d record %d", &w, &i); err != nil {
			t.Fatalf("unparseable record %q", sql)
		}
		if i != nextPerWriter[w] {
			t.Fatalf("writer %d records out of order: got %d, want %d", w, i, nextPerWriter[w])
		}
		nextPerWriter[w]++
	}
	if st := l.Stats(); st.Segment < 2 {
		t.Fatalf("test did not exercise rotation (still at segment %d)", st.Segment)
	}
}

// TestTailNeverSeesUnsyncedBytes: under group commit the durable tip trails
// the written bytes; a reader must never be handed bytes that have not been
// fsynced (they could vanish in a crash, forking the replica's history).
func TestTailNeverSeesUnsyncedBytes(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := collect(t, dir, Options{Sync: SyncAlways})
	defer l.Close()
	if err := l.AppendAll(DDLRecord("one;")); err != nil {
		t.Fatal(err)
	}
	tip := l.StreamTip()
	if tip.Records != 1 {
		t.Fatalf("tip records = %d, want 1", tip.Records)
	}
	data, sealed, err := l.ReadSegment(tip.Segment, 0, 1<<20)
	if err != nil || sealed {
		t.Fatalf("ReadSegment: %v sealed=%v", err, sealed)
	}
	if int64(len(data)) != tip.Offset {
		t.Fatalf("read %d bytes, durable tip is %d", len(data), tip.Offset)
	}
	// A reader positioned exactly at the tip gets nothing (and no error).
	data, sealed, err = l.ReadSegment(tip.Segment, tip.Offset, 1<<20)
	if err != nil || sealed || len(data) != 0 {
		t.Fatalf("read at tip: %d bytes, sealed=%v, err=%v", len(data), sealed, err)
	}
}

// TestReadSegmentCutsAtFrameBoundary: a maxBytes that lands mid-frame must
// shorten the chunk to whole frames, never split one.
func TestReadSegmentCutsAtFrameBoundary(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := collect(t, dir, Options{Sync: SyncAlways})
	defer l.Close()
	payload := strings.Repeat("x", 100)
	for i := 0; i < 5; i++ {
		if err := l.AppendAll(DDLRecord(payload)); err != nil {
			t.Fatal(err)
		}
	}
	frame := frameHeader + 1 + 100 // header + type byte + payload
	data, sealed, err := l.ReadSegment(1, 0, frame+frame/2)
	if err != nil {
		t.Fatal(err)
	}
	if sealed {
		t.Fatal("truncated read reported sealed")
	}
	if len(data) != frame {
		t.Fatalf("read %d bytes, want exactly one %d-byte frame", len(data), frame)
	}
	if n, _, err := ScanFrames(data, func(Record) error { return nil }); err != nil || n != 1 {
		t.Fatalf("ScanFrames on cut chunk: %d records, %v", n, err)
	}
}

// TestRetentionKeepsCatchUpWindow: RetainSegments sealed segments survive a
// checkpoint; older ones are deleted and report ErrSegmentGone; wal.Stats
// exposes the oldest/newest bounds.
func TestRetentionKeepsCatchUpWindow(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := collect(t, dir, Options{Sync: SyncNone, SegmentBytes: 256, RetainSegments: 2})
	for i := 0; i < 60; i++ {
		if err := l.AppendAll(DDLRecord("padding padding padding padding padding;")); err != nil {
			t.Fatal(err)
		}
	}
	before := l.Stats()
	if before.Segment < 4 {
		t.Fatalf("need several segments to test retention, got %d", before.Segment)
	}
	if err := l.Checkpoint(func(write func(Record) error) error { return nil }); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.NewestSegment != before.Segment+1 {
		t.Fatalf("newest segment %d, want %d", st.NewestSegment, before.Segment+1)
	}
	wantOldest := st.NewestSegment - 2
	if st.OldestSegment != wantOldest {
		t.Fatalf("oldest segment %d, want %d (retain 2)", st.OldestSegment, wantOldest)
	}
	segs, err := SegmentFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if segs[0] != wantOldest {
		t.Fatalf("on-disk oldest segment %d, want %d", segs[0], wantOldest)
	}
	// Retained segments are readable; below the horizon is ErrSegmentGone.
	if _, _, err := l.ReadSegment(wantOldest, 0, 1<<20); err != nil {
		t.Fatalf("reading retained segment: %v", err)
	}
	if _, _, err := l.ReadSegment(wantOldest-1, 0, 1<<20); !errors.Is(err, ErrSegmentGone) {
		t.Fatalf("reading dropped segment: err=%v, want ErrSegmentGone", err)
	}
	l.Close()

	// Retained (pre-checkpoint) segments must not replay on reopen: the
	// snapshot boundary wins, and the stale run below it is cleaned up.
	l2, recs, _ := collect(t, dir, Options{Sync: SyncNone, SegmentBytes: 256, RetainSegments: 2})
	defer l2.Close()
	if len(recs) != 0 {
		t.Fatalf("retained segments replayed %d records; snapshot boundary ignored", len(recs))
	}
}

// TestNoRetentionDeletesImmediately preserves the pre-retention behavior:
// RetainSegments 0 leaves only the fresh post-checkpoint segment.
func TestNoRetentionDeletesImmediately(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := collect(t, dir, Options{Sync: SyncNone, SegmentBytes: 256})
	defer l.Close()
	for i := 0; i < 30; i++ {
		if err := l.AppendAll(DDLRecord("padding padding padding padding;")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Checkpoint(func(write func(Record) error) error { return nil }); err != nil {
		t.Fatal(err)
	}
	segs, err := SegmentFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if len(segs) != 1 || segs[0] != st.Segment {
		t.Fatalf("segments on disk after checkpoint: %v, want just %d", segs, st.Segment)
	}
	if st.OldestSegment != st.NewestSegment {
		t.Fatalf("stats bounds %d..%d, want equal", st.OldestSegment, st.NewestSegment)
	}
}

// TestLockErrorNamesDirAndHolder: the double-open error must say which
// directory is locked and by whom, so a follower misconfigured to open its
// leader's data dir fails with an actionable message.
func TestLockErrorNamesDirAndHolder(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := collect(t, dir, Options{Sync: SyncNone})
	defer l.Close()
	_, _, err := Open(dir, Options{Sync: SyncNone}, func(Record) error { return nil })
	if err == nil {
		t.Fatal("second Open succeeded; flock not held")
	}
	msg := err.Error()
	if !strings.Contains(msg, dir) {
		t.Fatalf("lock error does not name the directory: %q", msg)
	}
	if !strings.Contains(msg, "pid ") {
		t.Fatalf("lock error does not hint at the holder: %q", msg)
	}
	if !strings.Contains(msg, "locked by another process") {
		t.Fatalf("lock error is not explicit about the cause: %q", msg)
	}
	// LockDir (promotion's liveness probe) fails the same way while the
	// holder lives...
	if _, err := LockDir(dir); err == nil {
		t.Fatal("LockDir succeeded while the log holds the flock")
	}
	// ...and succeeds once it is gone.
	l.Close()
	lock, err := LockDir(dir)
	if err != nil {
		t.Fatalf("LockDir after close: %v", err)
	}
	lock.Close()
}

// TestScanFramesTornTail: a buffer ending mid-frame (a dead leader's final
// segment) applies the whole prefix and stops cleanly; flipping a bit in a
// complete frame is ErrCorrupt, never a silent skip.
func TestScanFramesTornTail(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := collect(t, dir, Options{Sync: SyncNone})
	for i := 0; i < 3; i++ {
		if err := l.AppendAll(DDLRecord(fmt.Sprintf("statement %d;", i))); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	buf, err := os.ReadFile(SegmentFilePath(dir, 1))
	if err != nil {
		t.Fatal(err)
	}

	// Torn tail: cut the last frame short at every possible boundary.
	frame := len(buf) / 3
	for cut := len(buf) - 1; cut > 2*frame; cut-- {
		n, consumed, err := ScanFrames(buf[:cut], func(Record) error { return nil })
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if n != 2 || consumed != int64(2*frame) {
			t.Fatalf("cut %d: applied %d records / %d bytes, want 2 / %d", cut, n, consumed, 2*frame)
		}
	}

	// Corrupt a complete middle frame's payload: must be ErrCorrupt.
	bad := append([]byte(nil), buf...)
	bad[frame+frameHeader+2] ^= 0xFF
	if _, _, err := ScanFrames(bad, func(Record) error { return nil }); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt frame: err=%v, want ErrCorrupt", err)
	}
}

// TestStreamRecordCoordinates: logRecords/segStart stay consistent across
// rotations so lag math (tip − segment base − frames applied) is exact.
func TestStreamRecordCoordinates(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := collect(t, dir, Options{Sync: SyncNone, SegmentBytes: 256})
	defer l.Close()
	const n = 40
	for i := 0; i < n; i++ {
		if err := l.AppendAll(DDLRecord("padding padding padding padding;")); err != nil {
			t.Fatal(err)
		}
	}
	tip := l.StreamTip()
	if tip.Records != n {
		t.Fatalf("tip records = %d, want %d", tip.Records, n)
	}
	// Walk the segments: each start count plus its frame count must chain to
	// the next segment's start count.
	var counted int64
	for seq := uint64(1); seq <= tip.Segment; seq++ {
		base, ok := l.SegmentStartRecords(seq)
		if !ok {
			t.Fatalf("segment %d has no start-record entry", seq)
		}
		if base != counted {
			t.Fatalf("segment %d starts at record %d, want %d", seq, base, counted)
		}
		buf, err := os.ReadFile(SegmentFilePath(dir, seq))
		if err != nil {
			t.Fatal(err)
		}
		frames, _, err := ScanFrames(buf, func(Record) error { return nil })
		if err != nil {
			t.Fatal(err)
		}
		counted += frames
	}
	if counted != n {
		t.Fatalf("segments hold %d records, want %d", counted, n)
	}
}

// TestTipWatchWakesOnAppendAndClose: the long-poll primitive must fire on
// tip advances and on Close (so pollers never hang on a shut-down log).
func TestTipWatchWakesOnAppendAndClose(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := collect(t, dir, Options{Sync: SyncAlways})
	watch := l.TipWatch()
	done := make(chan struct{})
	go func() {
		<-watch
		close(done)
	}()
	if err := l.AppendAll(DDLRecord("wake;")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("TipWatch did not fire on append")
	}
	watch = l.TipWatch()
	l.Close()
	select {
	case <-watch:
	case <-time.After(5 * time.Second):
		t.Fatal("TipWatch did not fire on close")
	}
}

// sanity: wholeFrames agrees with the frame codec on hand-built buffers.
func TestWholeFramesPrefix(t *testing.T) {
	mk := func(n int) []byte {
		body := make([]byte, 1+n) // type byte + payload
		body[0] = RecDDL
		frame := make([]byte, frameHeader+len(body))
		binary.BigEndian.PutUint32(frame, uint32(len(body)))
		binary.BigEndian.PutUint32(frame[4:], crc32.Checksum(body, crcTable))
		copy(frame[frameHeader:], body)
		return frame
	}
	a, b := mk(10), mk(300)
	buf := append(append([]byte{}, a...), b...)
	for cut := 0; cut <= len(buf); cut++ {
		want := 0
		if cut >= len(a) {
			want = len(a)
		}
		if cut == len(buf) {
			want = len(buf)
		}
		if got := len(wholeFrames(buf[:cut])); got != want {
			t.Fatalf("cut %d: wholeFrames kept %d bytes, want %d", cut, got, want)
		}
	}
}
