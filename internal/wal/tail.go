// Streaming reads over sealed and live segments: the leader side of WAL
// shipping. A replica reads framed records at (segment, offset); the log
// serves only whole frames from the durable prefix (what an acknowledged
// append is promised to survive), so a tailing reader can never observe a
// torn or unsynced frame no matter how it races appends, group commits and
// rotations. TipWatch provides the long-poll primitive: a channel closed
// whenever the durable tip advances.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// ErrSegmentGone reports a read of a segment that was checkpointed away (or
// never existed below the retention horizon). A replica seeing it has fallen
// too far behind the leader's retention window and must re-bootstrap from a
// fresh snapshot.
var ErrSegmentGone = errors.New("wal: segment no longer on disk (checkpointed past the retention window)")

// StreamPos is a position in the replication stream: a byte offset within a
// segment, plus the cumulative record count at that position (both sides of
// a replication pair compute lag in the same record coordinate system).
type StreamPos struct {
	Segment uint64
	Offset  int64
	Records int64
}

// StreamTip returns the durable tip of the log: the position up to which
// bytes may be shipped to a replica. Under the always/group/interval sync
// policies that is the fsynced prefix — a replica can never get ahead of
// what the leader promised to keep; under SyncNone (no durability promise)
// it is simply everything written.
func (l *Log) StreamTip() StreamPos {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.streamTipLocked()
}

func (l *Log) streamTipLocked() StreamPos {
	off := l.syncedSegBytes
	if l.opts.Sync == SyncNone {
		off = l.segBytes
	}
	return StreamPos{Segment: l.seg, Offset: off, Records: l.logRecords}
}

// SegmentStartRecords returns the cumulative record count at the start of a
// live segment (false when the segment is not on disk). A replica at byte
// offset K of segment N that has applied R frames within N is exactly
// SegmentStartRecords(N)+R records into the stream.
func (l *Log) SegmentStartRecords(seq uint64) (int64, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	n, ok := l.segStart[seq]
	return n, ok
}

// TipWatch returns a channel closed the next time the durable tip advances
// (or the log closes). Long-polling readers that found no data re-check the
// tip after it fires; a fresh channel must be fetched for each wait.
func (l *Log) TipWatch() <-chan struct{} {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.tipCh
}

// ReadSegment returns up to maxBytes of whole record frames from segment seq
// starting at byte offset off, and whether the segment is sealed (a sealed
// segment read to its end means the reader advances to segment seq+1, offset
// 0). An empty result from an unsealed segment means the reader is at the
// durable tip and should wait on TipWatch. Reads never return a partial
// frame: the result is always a concatenation of complete frames, cut at a
// frame boundary.
func (l *Log) ReadSegment(seq uint64, off int64, maxBytes int) (data []byte, sealed bool, err error) {
	if maxBytes <= 0 {
		maxBytes = 1 << 20
	}
	l.mu.Lock()
	cur := l.seg
	oldest := l.oldestSeg
	tip := l.streamTipLocked()
	closed := l.f == nil && l.lock == nil
	l.mu.Unlock()

	if seq < oldest {
		return nil, false, ErrSegmentGone
	}
	if seq > cur {
		if closed {
			return nil, false, errors.New("wal: log is closed")
		}
		// Not created yet (reader raced a rotation announcement): nothing to
		// read, not sealed — the caller waits and retries.
		return nil, false, nil
	}

	limit := int64(-1) // -1: whole file (sealed segment)
	if seq == cur {
		// tip was captured under the same lock hold as cur, so it names this
		// segment; its offset is the durable (shippable) prefix.
		sealed = false
		limit = tip.Offset
	} else {
		sealed = true
	}

	f, ferr := os.Open(filepath.Join(l.dir, segName(seq)))
	if ferr != nil {
		if os.IsNotExist(ferr) {
			// Deleted by a checkpoint after the horizon check above.
			return nil, false, ErrSegmentGone
		}
		return nil, false, ferr
	}
	defer f.Close()
	if limit < 0 {
		fi, serr := f.Stat()
		if serr != nil {
			return nil, false, serr
		}
		limit = fi.Size()
	}
	if off > limit {
		if sealed {
			return nil, false, fmt.Errorf("wal: offset %d beyond sealed segment %d (%d bytes)", off, seq, limit)
		}
		// An unsealed segment can legitimately hold unsynced bytes past the
		// durable tip; a reader positioned there waits for the tip.
		return nil, false, nil
	}
	avail := limit - off
	if avail > int64(maxBytes) {
		avail = int64(maxBytes)
		sealed = false // more bytes remain; the reader is not at the seal yet
	}
	if avail == 0 {
		return nil, sealed, nil
	}
	buf := make([]byte, avail)
	n, rerr := f.ReadAt(buf, off)
	if rerr != nil && n < len(buf) {
		return nil, false, rerr
	}
	whole := wholeFrames(buf[:n])
	if int64(len(whole)) < avail {
		sealed = false // the cut frame completes in bytes past maxBytes
	}
	return whole, sealed, nil
}

// wholeFrames returns the prefix of buf holding only complete frames.
func wholeFrames(buf []byte) []byte {
	off := 0
	for off+frameHeader <= len(buf) {
		bodyLen := int(binary.BigEndian.Uint32(buf[off : off+4]))
		if bodyLen < 1 || bodyLen > maxRecordBody || off+frameHeader+bodyLen > len(buf) {
			break
		}
		off += frameHeader + bodyLen
	}
	return buf[:off]
}

// ScanFrames decodes whole CRC-checked frames from buf through apply,
// stopping cleanly at a trailing partial frame (the torn tail of a dead
// leader's final segment, or a chunk boundary). It returns the records
// applied and the bytes consumed; a CRC mismatch on a complete frame is
// ErrCorrupt, never silently skipped.
func ScanFrames(buf []byte, apply func(Record) error) (records int64, consumed int64, err error) {
	off := 0
	for off < len(buf) {
		rec, n, ok, err := readFrame(buf[off:])
		if err != nil {
			return records, int64(off), fmt.Errorf("at offset %d: %w", off, err)
		}
		if !ok {
			break
		}
		if err := apply(rec); err != nil {
			return records, int64(off), fmt.Errorf("at offset %d: apply: %w", off, err)
		}
		records++
		off += n
	}
	return records, int64(off), nil
}

// SnapshotPath returns the checkpoint snapshot file a data directory holds
// (the image /repl/snapshot serves).
func SnapshotPath(dir string) string { return filepath.Join(dir, snapName) }

// SegmentFiles lists the segment sequence numbers present in a data
// directory, sorted ascending. Promotion uses it to drain a dead leader's
// tail straight from the filesystem.
func SegmentFiles(dir string) ([]uint64, error) { return listSegments(dir) }

// SegmentFilePath returns the on-disk path of segment seq in dir.
func SegmentFilePath(dir string, seq uint64) string { return filepath.Join(dir, segName(seq)) }
