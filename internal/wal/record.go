// Typed records: the engine's durability layer logs three kinds of change —
// DDL statements (as SQL text, re-parsed on replay), secondary-index
// declarations (API-only DDL with no SQL surface), and INSERT batches (rows
// in a kind-preserving binary codec; sqltypes.EncodeKey is unsuitable here
// because it deliberately collapses INT and FLOAT for join keys).
package wal

import (
	"encoding/binary"
	"fmt"
	"math"

	"udfdecorr/internal/sqltypes"
)

// Record is one framed log entry.
type Record struct {
	Type    byte
	Payload []byte
}

// Record types.
const (
	// RecDDL carries a CREATE TABLE / CREATE FUNCTION statement as SQL text.
	RecDDL byte = 1
	// RecIndex carries a secondary-index declaration (table, column).
	RecIndex byte = 2
	// RecInsert carries an acknowledged batch of rows for one table.
	RecInsert byte = 3
	// RecBegin opens a multi-statement transaction. Replay buffers the
	// transaction's RecTxnInsert records and applies nothing until the
	// matching RecCommit; a Begin for an already-pending txid resets it
	// (stale leftovers from a txid reused across restarts).
	RecBegin byte = 4
	// RecCommit seals a transaction: replay applies its buffered inserts.
	// A transaction whose commit record never made it to disk is discarded
	// wholesale — uncommitted suffixes do not resurrect.
	RecCommit byte = 5
	// RecRollback abandons a pending transaction's buffered records.
	RecRollback byte = 6
	// RecTxnInsert carries one table's row batch inside a transaction
	// (txid + the RecInsert payload).
	RecTxnInsert byte = 7
	// RecSegment carries one column-major chunk of a table: the checkpoint
	// snapshot format for columnar storage (values grouped by column, so
	// recovery installs them as segments without pivoting). Recovery also
	// accepts legacy row-major RecInsert snapshots, upgrading checkpoints
	// written by earlier binaries on replay.
	RecSegment byte = 8

	// snapshot structural records (internal to this package)
	recSnapBegin byte = 100
	recSnapEnd   byte = 101
)

// DDLRecord wraps a DDL statement's SQL text.
func DDLRecord(sql string) Record { return Record{Type: RecDDL, Payload: []byte(sql)} }

// DDL returns the SQL text of a RecDDL record.
func (r Record) DDL() (string, error) {
	if r.Type != RecDDL {
		return "", fmt.Errorf("wal: record type %d is not DDL", r.Type)
	}
	return string(r.Payload), nil
}

// IndexRecord wraps a secondary-index declaration.
func IndexRecord(table, col string) Record {
	p := appendString(nil, table)
	p = appendString(p, col)
	return Record{Type: RecIndex, Payload: p}
}

// Index decodes a RecIndex record.
func (r Record) Index() (table, col string, err error) {
	if r.Type != RecIndex {
		return "", "", fmt.Errorf("wal: record type %d is not an index declaration", r.Type)
	}
	buf := r.Payload
	table, buf, err = readString(buf)
	if err != nil {
		return "", "", err
	}
	col, buf, err = readString(buf)
	if err != nil {
		return "", "", err
	}
	if len(buf) != 0 {
		return "", "", fmt.Errorf("wal: trailing bytes in index record")
	}
	return table, col, nil
}

// InsertRecord encodes a batch of rows appended to one table.
func InsertRecord(table string, rows [][]sqltypes.Value) Record {
	return Record{Type: RecInsert, Payload: encodeInsert(nil, table, rows)}
}

// BeginRecord opens transaction txid.
func BeginRecord(txid uint64) Record {
	return Record{Type: RecBegin, Payload: binary.BigEndian.AppendUint64(nil, txid)}
}

// CommitRecord seals transaction txid.
func CommitRecord(txid uint64) Record {
	return Record{Type: RecCommit, Payload: binary.BigEndian.AppendUint64(nil, txid)}
}

// RollbackRecord abandons transaction txid.
func RollbackRecord(txid uint64) Record {
	return Record{Type: RecRollback, Payload: binary.BigEndian.AppendUint64(nil, txid)}
}

// Txid decodes the transaction id of a RecBegin/RecCommit/RecRollback
// record.
func (r Record) Txid() (uint64, error) {
	switch r.Type {
	case RecBegin, RecCommit, RecRollback:
	default:
		return 0, fmt.Errorf("wal: record type %d carries no transaction id", r.Type)
	}
	if len(r.Payload) != 8 {
		return 0, fmt.Errorf("wal: malformed transaction record (payload %d bytes)", len(r.Payload))
	}
	return binary.BigEndian.Uint64(r.Payload), nil
}

// TxnInsertRecord encodes one table's row batch inside transaction txid.
func TxnInsertRecord(txid uint64, table string, rows [][]sqltypes.Value) Record {
	p := binary.BigEndian.AppendUint64(nil, txid)
	return Record{Type: RecTxnInsert, Payload: encodeInsert(p, table, rows)}
}

// TxnInsert decodes a RecTxnInsert record.
func (r Record) TxnInsert() (txid uint64, table string, rows [][]sqltypes.Value, err error) {
	if r.Type != RecTxnInsert {
		return 0, "", nil, fmt.Errorf("wal: record type %d is not a transactional insert", r.Type)
	}
	if len(r.Payload) < 8 {
		return 0, "", nil, fmt.Errorf("wal: truncated transactional insert record")
	}
	txid = binary.BigEndian.Uint64(r.Payload)
	table, rows, err = decodeInsert(r.Payload[8:])
	return txid, table, rows, err
}

// SegmentRecord encodes nrows of column-major data for one table: each of
// cols contributes its first nrows values, column after column.
func SegmentRecord(table string, cols [][]sqltypes.Value, nrows int) Record {
	p := appendString(nil, table)
	p = binary.BigEndian.AppendUint16(p, uint16(len(cols)))
	p = binary.BigEndian.AppendUint32(p, uint32(nrows))
	for _, col := range cols {
		for _, v := range col[:nrows] {
			p = appendValue(p, v)
		}
	}
	return Record{Type: RecSegment, Payload: p}
}

// Segment decodes a RecSegment record into freshly allocated column vectors
// (safe for the caller to install as storage segments).
func (r Record) Segment() (table string, cols [][]sqltypes.Value, nrows int, err error) {
	if r.Type != RecSegment {
		return "", nil, 0, fmt.Errorf("wal: record type %d is not a column segment", r.Type)
	}
	buf := r.Payload
	table, buf, err = readString(buf)
	if err != nil {
		return "", nil, 0, err
	}
	if len(buf) < 6 {
		return "", nil, 0, fmt.Errorf("wal: truncated segment record")
	}
	ncols := int(binary.BigEndian.Uint16(buf))
	nrows = int(binary.BigEndian.Uint32(buf[2:]))
	buf = buf[6:]
	cols = make([][]sqltypes.Value, ncols)
	for c := range cols {
		col := make([]sqltypes.Value, nrows)
		for i := range col {
			col[i], buf, err = readValue(buf)
			if err != nil {
				return "", nil, 0, fmt.Errorf("wal: segment record col %d row %d: %w", c, i, err)
			}
		}
		cols[c] = col
	}
	if len(buf) != 0 {
		return "", nil, 0, fmt.Errorf("wal: trailing bytes in segment record")
	}
	return table, cols, nrows, nil
}

func encodeInsert(p []byte, table string, rows [][]sqltypes.Value) []byte {
	p = appendString(p, table)
	p = binary.BigEndian.AppendUint32(p, uint32(len(rows)))
	for _, row := range rows {
		p = binary.BigEndian.AppendUint16(p, uint16(len(row)))
		for _, v := range row {
			p = appendValue(p, v)
		}
	}
	return p
}

// Insert decodes a RecInsert record.
func (r Record) Insert() (table string, rows [][]sqltypes.Value, err error) {
	if r.Type != RecInsert {
		return "", nil, fmt.Errorf("wal: record type %d is not an insert batch", r.Type)
	}
	return decodeInsert(r.Payload)
}

func decodeInsert(buf []byte) (table string, rows [][]sqltypes.Value, err error) {
	table, buf, err = readString(buf)
	if err != nil {
		return "", nil, err
	}
	if len(buf) < 4 {
		return "", nil, fmt.Errorf("wal: truncated insert record")
	}
	n := binary.BigEndian.Uint32(buf)
	buf = buf[4:]
	rows = make([][]sqltypes.Value, 0, n)
	for i := uint32(0); i < n; i++ {
		if len(buf) < 2 {
			return "", nil, fmt.Errorf("wal: truncated insert record row %d", i)
		}
		arity := binary.BigEndian.Uint16(buf)
		buf = buf[2:]
		row := make([]sqltypes.Value, arity)
		for j := range row {
			row[j], buf, err = readValue(buf)
			if err != nil {
				return "", nil, fmt.Errorf("wal: insert record row %d col %d: %w", i, j, err)
			}
		}
		rows = append(rows, row)
	}
	if len(buf) != 0 {
		return "", nil, fmt.Errorf("wal: trailing bytes in insert record")
	}
	return table, rows, nil
}

// ---------------------------------------------------------------------------
// value codec (kind-preserving, unlike sqltypes.EncodeKey)
// ---------------------------------------------------------------------------

func appendValue(dst []byte, v sqltypes.Value) []byte {
	dst = append(dst, byte(v.Kind()))
	switch v.Kind() {
	case sqltypes.KindNull:
	case sqltypes.KindInt:
		dst = binary.BigEndian.AppendUint64(dst, uint64(v.Int()))
	case sqltypes.KindFloat:
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(v.Float()))
	case sqltypes.KindString:
		dst = appendString(dst, v.Str())
	case sqltypes.KindBool:
		if v.Bool() {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	}
	return dst
}

func readValue(buf []byte) (sqltypes.Value, []byte, error) {
	if len(buf) < 1 {
		return sqltypes.Null, nil, fmt.Errorf("truncated value")
	}
	kind := sqltypes.Kind(buf[0])
	buf = buf[1:]
	switch kind {
	case sqltypes.KindNull:
		return sqltypes.Null, buf, nil
	case sqltypes.KindInt:
		if len(buf) < 8 {
			return sqltypes.Null, nil, fmt.Errorf("truncated int")
		}
		return sqltypes.NewInt(int64(binary.BigEndian.Uint64(buf))), buf[8:], nil
	case sqltypes.KindFloat:
		if len(buf) < 8 {
			return sqltypes.Null, nil, fmt.Errorf("truncated float")
		}
		return sqltypes.NewFloat(math.Float64frombits(binary.BigEndian.Uint64(buf))), buf[8:], nil
	case sqltypes.KindString:
		s, rest, err := readString(buf)
		if err != nil {
			return sqltypes.Null, nil, err
		}
		return sqltypes.NewString(s), rest, nil
	case sqltypes.KindBool:
		if len(buf) < 1 {
			return sqltypes.Null, nil, fmt.Errorf("truncated bool")
		}
		return sqltypes.NewBool(buf[0] != 0), buf[1:], nil
	default:
		return sqltypes.Null, nil, fmt.Errorf("unknown value kind %d", kind)
	}
}

func appendString(dst []byte, s string) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(s)))
	return append(dst, s...)
}

func readString(buf []byte) (string, []byte, error) {
	if len(buf) < 4 {
		return "", nil, fmt.Errorf("truncated string length")
	}
	n := int(binary.BigEndian.Uint32(buf))
	buf = buf[4:]
	if len(buf) < n {
		return "", nil, fmt.Errorf("truncated string payload")
	}
	return string(buf[:n]), buf[n:], nil
}
