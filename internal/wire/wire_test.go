package wire

import (
	"encoding/json"
	"errors"
	"net/http/httptest"
	"testing"
)

// TestGoldenEnvelopes pins the exact v1 wire bytes. These are a protocol
// contract shared with routers and load clients that may be one release
// ahead or behind — any diff here is a breaking wire change and must ship
// with a version bump, not silently.
func TestGoldenEnvelopes(t *testing.T) {
	cases := []struct {
		name string
		env  *Envelope
		want string
	}{
		{
			name: "success",
			env:  mustOK(t, map[string]any{"ok": true}, "leader", "", "tr-1"),
			want: `{"v":1,"result":{"ok":true},"role":"leader","trace_id":"tr-1"}`,
		},
		{
			name: "read_only_with_leader_hint",
			env:  Fail(CodeReadOnly, "writes, DDL and transactions must go to the leader", "follower", "http://127.0.0.1:8091", "tr-2"),
			want: `{"v":1,"error":{"code":"READ_ONLY","message":"writes, DDL and transactions must go to the leader"},"role":"follower","leader_hint":"http://127.0.0.1:8091","trace_id":"tr-2"}`,
		},
		{
			name: "unshardable",
			env:  Fail(CodeUnshardable, "UDF service_level reads sharded table orders", "", "", ""),
			want: `{"v":1,"error":{"code":"UNSHARDABLE","message":"UDF service_level reads sharded table orders"}}`,
		},
		{
			name: "partial_failure",
			env:  Fail(CodePartialFailure, "shard 2 (http://127.0.0.1:9103) failed mid-scatter", "", "", ""),
			want: `{"v":1,"error":{"code":"PARTIAL_FAILURE","message":"shard 2 (http://127.0.0.1:9103) failed mid-scatter"}}`,
		},
	}
	for _, tc := range cases {
		raw, err := json.Marshal(tc.env)
		if err != nil {
			t.Fatalf("%s: marshal: %v", tc.name, err)
		}
		if string(raw) != tc.want {
			t.Errorf("%s: wire bytes changed\n got: %s\nwant: %s", tc.name, raw, tc.want)
		}
	}
}

func mustOK(t *testing.T, result any, role, hint, trace string) *Envelope {
	t.Helper()
	env, err := OK(result, role, hint, trace)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestDecodeV1(t *testing.T) {
	env := Fail(CodeReadOnly, "read-only replica", "follower", "http://leader:1", "")
	raw, _ := json.Marshal(env)
	err := Decode(raw, 403, nil)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("want RemoteError, got %v", err)
	}
	if re.Code != CodeReadOnly || re.LeaderHint != "http://leader:1" {
		t.Fatalf("decoded %+v", re)
	}

	ok := mustOK(t, map[string]int{"n": 7}, "", "", "")
	raw, _ = json.Marshal(ok)
	var out struct {
		N int `json:"n"`
	}
	if err := Decode(raw, 200, &out); err != nil || out.N != 7 {
		t.Fatalf("decode success: %v %+v", err, out)
	}
}

// TestDecodeLegacy keeps the v0 compatibility path honest: plain result
// bodies and {"error": ...} bodies decode the way PR 2-era clients expect.
func TestDecodeLegacy(t *testing.T) {
	var out struct {
		Session string `json:"session"`
	}
	if err := Decode([]byte(`{"session":"s1"}`), 200, &out); err != nil || out.Session != "s1" {
		t.Fatalf("legacy success: %v %+v", err, out)
	}
	err := Decode([]byte(`{"error":"unknown session"}`), 404, nil)
	var re *RemoteError
	if !errors.As(err, &re) || re.Message != "unknown session" {
		t.Fatalf("legacy error: %v", err)
	}
}

func TestVersionNegotiation(t *testing.T) {
	r := httptest.NewRequest("POST", "/query", nil)
	if got := Version(r); got != V0 {
		t.Fatalf("default version = %d, want v0", got)
	}
	r.Header.Set("Accept", V1Accept)
	if got := Version(r); got != V1 {
		t.Fatalf("Accept negotiation = %d, want v1", got)
	}
	r = httptest.NewRequest("POST", "/query", nil)
	r.Header.Set(VersionHeader, "1")
	if got := Version(r); got != V1 {
		t.Fatalf("header negotiation = %d, want v1", got)
	}
}
