// Package wire defines the versioned JSON envelope every udfdecorr HTTP
// response rides in, and the typed error codes clients route on.
//
// Two wire versions coexist:
//
//   - v0 (legacy): the ad-hoc per-endpoint shapes the daemon has served
//     since PR 2 — bare result objects on success, {"error": "..."} on
//     failure, with hints (like the leader address on a read-only follower)
//     embedded in the error string. v0 remains the default so existing
//     clients and CI scripts keep working unchanged; it is kept exactly one
//     release behind and will be dropped once the router fleet is upgraded.
//
//   - v1: one envelope for every endpoint —
//     {"v":1, "result":..., "role":"leader", "trace_id":"..."} on success,
//     {"v":1, "error":{"code":"READ_ONLY","message":"..."},
//     "leader_hint":"http://...", ...} on failure. Clients select it with
//     an Accept-style knob: `Accept: application/vnd.udfd.v1+json` (or the
//     X-Udfd-Wire: 1 header for clients that cannot reach Accept).
//
// The envelope exists because a router cannot compose string-matched
// errors: scatter/gather needs to distinguish "this query is unshardable"
// from "shard 2 is down" from "you are talking to a follower, the leader
// is over there" without parsing prose.
package wire

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
)

// Wire protocol versions.
const (
	V0 = 0 // legacy per-endpoint shapes
	V1 = 1 // enveloped
)

// V1Accept is the Accept header media type that selects wire v1.
const V1Accept = "application/vnd.udfd.v1+json"

// VersionHeader is the fallback request header selecting a wire version
// ("1"), for clients whose HTTP stack makes Accept awkward.
const VersionHeader = "X-Udfd-Wire"

// Code classifies an error for programmatic routing. Codes are part of the
// v1 wire contract: renaming one is a breaking change.
type Code string

// Typed error codes.
const (
	// CodeBadRequest: the request itself is malformed (bad JSON, missing
	// fields, unparsable SQL, unknown mode/profile).
	CodeBadRequest Code = "BAD_REQUEST"
	// CodeUnknownSession: the session id does not exist (expired or bogus).
	CodeUnknownSession Code = "UNKNOWN_SESSION"
	// CodeReadOnly: a write/DDL/transaction hit a read-only follower. The
	// envelope's leader_hint carries the leader base URL when known.
	CodeReadOnly Code = "READ_ONLY"
	// CodeUnshardable: the router's feasibility pass rejected the statement;
	// the message names the unsupported shape.
	CodeUnshardable Code = "UNSHARDABLE"
	// CodeShardUnavailable: a shard could not be reached at all.
	CodeShardUnavailable Code = "SHARD_UNAVAILABLE"
	// CodePartialFailure: a scatter was interrupted mid-flight — some shards
	// answered, at least one failed; no partial results were returned.
	CodePartialFailure Code = "PARTIAL_FAILURE"
	// CodeInternal: everything else (execution errors, storage faults).
	CodeInternal Code = "INTERNAL"
)

// Error is the structured error member of a v1 envelope.
type Error struct {
	Code    Code   `json:"code"`
	Message string `json:"message"`
}

// Envelope is the single v1 response shape. Exactly one of Result / Error
// is set. Role and LeaderHint describe the responding node's replication
// position; TraceID echoes the request's trace for log correlation.
type Envelope struct {
	V          int             `json:"v"`
	Result     json.RawMessage `json:"result,omitempty"`
	Error      *Error          `json:"error,omitempty"`
	Role       string          `json:"role,omitempty"`
	LeaderHint string          `json:"leader_hint,omitempty"`
	TraceID    string          `json:"trace_id,omitempty"`
}

// OK wraps a result payload in a success envelope.
func OK(result any, role, leaderHint, traceID string) (*Envelope, error) {
	raw, err := json.Marshal(result)
	if err != nil {
		return nil, err
	}
	return &Envelope{V: V1, Result: raw, Role: role, LeaderHint: leaderHint, TraceID: traceID}, nil
}

// Fail wraps a typed error in an error envelope.
func Fail(code Code, msg, role, leaderHint, traceID string) *Envelope {
	return &Envelope{
		V:          V1,
		Error:      &Error{Code: code, Message: msg},
		Role:       role,
		LeaderHint: leaderHint,
		TraceID:    traceID,
	}
}

// Version returns the wire version a request negotiated: V1 when the Accept
// header includes V1Accept or the X-Udfd-Wire header says "1", else V0.
func Version(r *http.Request) int {
	if strings.Contains(r.Header.Get("Accept"), V1Accept) {
		return V1
	}
	if r.Header.Get(VersionHeader) == "1" {
		return V1
	}
	return V0
}

// RemoteError is the client-side view of a decoded error envelope (or of a
// legacy v0 error body). It implements error; callers route on Code and
// follow LeaderHint instead of string-matching Message.
type RemoteError struct {
	Code       Code
	Message    string
	LeaderHint string
}

// Error implements the error interface.
func (e *RemoteError) Error() string {
	if e.Code == "" || e.Code == CodeInternal {
		return e.Message
	}
	return fmt.Sprintf("%s: %s", e.Code, e.Message)
}

// Decode interprets a response body in either wire version. On a success
// envelope it unmarshals the result into out (when out != nil) and returns
// nil. On an error envelope (or a v0 {"error": ...} body with httpStatus
// >= 400) it returns a *RemoteError. Legacy success bodies (no envelope)
// unmarshal directly into out.
func Decode(body []byte, httpStatus int, out any) error {
	var env Envelope
	if err := json.Unmarshal(body, &env); err == nil && env.V == V1 {
		if env.Error != nil {
			return &RemoteError{Code: env.Error.Code, Message: env.Error.Message, LeaderHint: env.LeaderHint}
		}
		if out == nil || len(env.Result) == 0 {
			return nil
		}
		return json.Unmarshal(env.Result, out)
	}
	// Legacy v0 shapes.
	if httpStatus >= 400 {
		var legacy struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &legacy); err == nil && legacy.Error != "" {
			return &RemoteError{Code: CodeInternal, Message: legacy.Error}
		}
		return &RemoteError{Code: CodeInternal, Message: fmt.Sprintf("HTTP %d: %s", httpStatus, strings.TrimSpace(string(body)))}
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(body, out)
}
