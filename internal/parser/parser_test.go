package parser

import (
	"strings"
	"testing"

	"udfdecorr/internal/ast"
	"udfdecorr/internal/sqltypes"
)

// Paper Example 1: scalar UDF with branching.
const example1UDF = `
create function service_level(int ckey) returns char(10) as
begin
  float totalbusiness; string level;
  select sum(totalprice) into :totalbusiness
    from orders where custkey = :ckey;
  if (totalbusiness > 1000000)
    level = 'Platinum';
  else if (totalbusiness > 500000)
    level = 'Gold';
  else level = 'Regular';
  return level;
end
`

// Paper Example 5: UDF with a cursor loop.
const example5UDF = `
create function totalloss(int pkey) returns int as
begin
  int total_loss = 0;
  int cost = getcost(pkey);
  declare c cursor for
    select price, qty, disc from lineitem where partkey = :pkey;
  open c;
  fetch next from c into @price, @qty, @disc;
  while @@FETCH_STATUS = 0
  begin
    int profit = (@price - @disc) - (cost * @qty);
    if (profit < 0)
      total_loss = total_loss - profit;
    fetch next from c into @price, @qty, @disc;
  end
  close c; deallocate c;
  return total_loss;
end
`

func TestLexBasics(t *testing.T) {
	toks, err := lex("SELECT a.b, 'it''s', 1.5, :v, @@fetch_status <> 3 -- comment\n/* block */ FROM t")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokKind
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
	}
	want := []tokKind{tokKeyword, tokIdent, tokSymbol, tokIdent, tokSymbol,
		tokString, tokSymbol, tokNumber, tokSymbol, tokParam, tokSymbol,
		tokAtAt, tokSymbol, tokNumber, tokKeyword, tokIdent, tokEOF}
	if len(kinds) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(kinds), len(want), toks)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("token %d: got kind %d, want %d (%q)", i, kinds[i], want[i], toks[i].text)
		}
	}
	if toks[5].text != "it's" {
		t.Errorf("string literal = %q", toks[5].text)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"'unterminated", "/* unterminated", "a ~ b", "@ ", ": "} {
		if _, err := lex(src); err == nil {
			t.Errorf("lex(%q) should fail", src)
		}
	}
}

func TestParseSimpleQuery(t *testing.T) {
	q, err := ParseQuery("select custkey, service_level(custkey) from customer")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Items) != 2 {
		t.Fatalf("items = %d", len(q.Items))
	}
	if _, ok := q.Items[0].Expr.(*ast.ColName); !ok {
		t.Errorf("item 0 should be column, got %T", q.Items[0].Expr)
	}
	fc, ok := q.Items[1].Expr.(*ast.FuncCall)
	if !ok || fc.Name != "service_level" || len(fc.Args) != 1 {
		t.Errorf("item 1 should be UDF call, got %v", q.Items[1].Expr)
	}
	tn, ok := q.From[0].(*ast.TableName)
	if !ok || tn.Name != "customer" {
		t.Errorf("from = %v", q.From[0])
	}
}

func TestParseNestedSubquery(t *testing.T) {
	src := `select suppkey, partkey from partsupp p1
	        where supplycost = (select min(supplycost) from partsupp p2
	                            where p1.partkey = p2.partkey)`
	q, err := ParseQuery(src)
	if err != nil {
		t.Fatal(err)
	}
	be, ok := q.Where.(*ast.BinExpr)
	if !ok || be.Op != ast.BinEQ {
		t.Fatalf("where = %v", q.Where)
	}
	sq, ok := be.R.(*ast.SubqueryExpr)
	if !ok {
		t.Fatalf("rhs should be subquery, got %T", be.R)
	}
	inner, ok := sq.Select.Where.(*ast.BinExpr)
	if !ok {
		t.Fatal("inner where missing")
	}
	lcol, ok := inner.L.(*ast.ColName)
	if !ok || lcol.Qual != "p1" {
		t.Errorf("correlation column = %v", inner.L)
	}
}

func TestParseJoins(t *testing.T) {
	q, err := ParseQuery(`select * from a join b on a.x = b.x
	                      left outer join c on b.y = c.y, d`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.From) != 2 {
		t.Fatalf("from entries = %d", len(q.From))
	}
	j, ok := q.From[0].(*ast.JoinRef)
	if !ok || j.Kind != ast.JoinLeftOuter {
		t.Fatalf("outer join ref = %v", q.From[0])
	}
	inner, ok := j.L.(*ast.JoinRef)
	if !ok || inner.Kind != ast.JoinInner {
		t.Errorf("inner join ref = %v", j.L)
	}
}

func TestParseGroupByHavingOrderTop(t *testing.T) {
	q, err := ParseQuery(`select top 5 custkey, sum(totalprice) as total
	                      from orders group by custkey
	                      having sum(totalprice) > 100
	                      order by total desc, custkey`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Top == nil || len(q.GroupBy) != 1 || q.Having == nil || len(q.OrderBy) != 2 {
		t.Fatalf("clause parsing broken: %+v", q)
	}
	if !q.OrderBy[0].Desc || q.OrderBy[1].Desc {
		t.Error("order directions")
	}
}

func TestParseCaseExpr(t *testing.T) {
	e, err := ParseExpr("case when a > 1 then 'x' when b = 2 then 'y' else 'z' end")
	if err != nil {
		t.Fatal(err)
	}
	c, ok := e.(*ast.CaseExpr)
	if !ok || len(c.Whens) != 2 || c.Else == nil {
		t.Fatalf("case = %v", e)
	}
}

func TestParsePrecedence(t *testing.T) {
	e, err := ParseExpr("a + b * c = d and not e or f")
	if err != nil {
		t.Fatal(err)
	}
	// ((a + (b*c)) = d AND (NOT e)) OR f
	or, ok := e.(*ast.BinExpr)
	if !ok || or.Op != ast.BinOr {
		t.Fatalf("top should be OR: %v", e.SQL())
	}
	and, ok := or.L.(*ast.BinExpr)
	if !ok || and.Op != ast.BinAnd {
		t.Fatalf("left of OR should be AND: %v", or.L.SQL())
	}
	eq, ok := and.L.(*ast.BinExpr)
	if !ok || eq.Op != ast.BinEQ {
		t.Fatalf("left of AND should be =: %v", and.L.SQL())
	}
	add, ok := eq.L.(*ast.BinExpr)
	if !ok || add.Op != ast.BinAdd {
		t.Fatalf("lhs of = should be +: %v", eq.L.SQL())
	}
	if mul, ok := add.R.(*ast.BinExpr); !ok || mul.Op != ast.BinMul {
		t.Fatalf("rhs of + should be *: %v", add.R.SQL())
	}
}

func TestParseInBetweenIsNull(t *testing.T) {
	if e, err := ParseExpr("x in (1, 2, 3)"); err != nil {
		t.Fatal(err)
	} else if in, ok := e.(*ast.InExpr); !ok || len(in.List) != 3 {
		t.Errorf("in list = %v", e)
	}
	if e, err := ParseExpr("x not in (select y from t)"); err != nil {
		t.Fatal(err)
	} else if in, ok := e.(*ast.InExpr); !ok || !in.Neg || in.Select == nil {
		t.Errorf("not in subquery = %v", e)
	}
	if e, err := ParseExpr("x between 1 and 10"); err != nil {
		t.Fatal(err)
	} else if b, ok := e.(*ast.BinExpr); !ok || b.Op != ast.BinAnd {
		t.Errorf("between = %v", e)
	}
	if e, err := ParseExpr("x is not null"); err != nil {
		t.Fatal(err)
	} else if n, ok := e.(*ast.IsNullExpr); !ok || !n.Neg {
		t.Errorf("is not null = %v", e)
	}
	if e, err := ParseExpr("exists (select 1 from t)"); err != nil {
		t.Fatal(err)
	} else if _, ok := e.(*ast.ExistsExpr); !ok {
		t.Errorf("exists = %v", e)
	}
}

func TestParseExample1UDF(t *testing.T) {
	script, err := ParseScript(example1UDF)
	if err != nil {
		t.Fatal(err)
	}
	if len(script.Functions) != 1 {
		t.Fatalf("functions = %d", len(script.Functions))
	}
	f := script.Functions[0]
	if f.Name != "service_level" || f.ReturnType != sqltypes.KindString {
		t.Errorf("signature: %s returns %v", f.Name, f.ReturnType)
	}
	if len(f.Params) != 1 || f.Params[0].Name != "ckey" || f.Params[0].Type != sqltypes.KindInt {
		t.Errorf("params: %+v", f.Params)
	}
	// Body: declare, declare, select-into, if, return.
	if len(f.Body) != 5 {
		t.Fatalf("body statements = %d: %v", len(f.Body), f.Body)
	}
	if _, ok := f.Body[0].(*ast.DeclareStmt); !ok {
		t.Errorf("stmt 0 = %T", f.Body[0])
	}
	si, ok := f.Body[2].(*ast.SelectIntoStmt)
	if !ok || len(si.Select.Into) != 1 || si.Select.Into[0] != "totalbusiness" {
		t.Errorf("stmt 2 = %#v", f.Body[2])
	}
	ifst, ok := f.Body[3].(*ast.IfStmt)
	if !ok {
		t.Fatalf("stmt 3 = %T", f.Body[3])
	}
	if len(ifst.Else) != 1 {
		t.Fatalf("else chain = %d", len(ifst.Else))
	}
	if _, ok := ifst.Else[0].(*ast.IfStmt); !ok {
		t.Errorf("nested else-if = %T", ifst.Else[0])
	}
	if _, ok := f.Body[4].(*ast.ReturnStmt); !ok {
		t.Errorf("stmt 4 = %T", f.Body[4])
	}
}

func TestParseExample5CursorLoop(t *testing.T) {
	script, err := ParseScript(example5UDF)
	if err != nil {
		t.Fatal(err)
	}
	f := script.Functions[0]
	var cursor *ast.DeclareCursorStmt
	var while *ast.WhileStmt
	for _, s := range f.Body {
		switch st := s.(type) {
		case *ast.DeclareCursorStmt:
			cursor = st
		case *ast.WhileStmt:
			while = st
		}
	}
	if cursor == nil || cursor.Name != "c" {
		t.Fatal("cursor declaration missing")
	}
	if while == nil {
		t.Fatal("while loop missing")
	}
	pr, ok := while.Cond.(*ast.BinExpr)
	if !ok {
		t.Fatalf("while cond = %T", while.Cond)
	}
	if ref, ok := pr.L.(*ast.ParamRef); !ok || ref.Name != "@@fetch_status" {
		t.Errorf("fetch status ref = %v", pr.L)
	}
	// Loop body: declare profit, if, fetch.
	if len(while.Body) != 3 {
		t.Fatalf("loop body = %d stmts", len(while.Body))
	}
	if _, ok := while.Body[2].(*ast.FetchStmt); !ok {
		t.Errorf("last loop stmt = %T", while.Body[2])
	}
}

func TestParseCreateTable(t *testing.T) {
	script, err := ParseScript(`create table customer (
	  custkey int primary key, name varchar, category int, nationkey int)`)
	if err != nil {
		t.Fatal(err)
	}
	tbl := script.Tables[0]
	if tbl.Name != "customer" || len(tbl.Cols) != 4 {
		t.Fatalf("table = %+v", tbl)
	}
	if !tbl.Cols[0].PrimaryKey || tbl.Cols[1].PrimaryKey {
		t.Error("primary key flags")
	}
}

func TestParseTableValuedFunction(t *testing.T) {
	src := `
create function topcust(minbiz int) returns table tt (ckey int, total float) as
begin
  declare c cursor for select custkey, totalprice from orders;
  open c;
  fetch next from c into @ck, @tp;
  while @@FETCH_STATUS = 0
  begin
    if (@tp > minbiz)
      insert into tt values (@ck, @tp);
    fetch next from c into @ck, @tp;
  end
  close c;
  return tt;
end
select * from topcust(100) t
`
	script, err := ParseScript(src)
	if err != nil {
		t.Fatal(err)
	}
	f := script.Functions[0]
	if f.TableName != "tt" || len(f.TableCols) != 2 {
		t.Fatalf("table function header: %+v", f)
	}
	last := f.Body[len(f.Body)-1].(*ast.ReturnStmt)
	if cn, ok := last.Expr.(*ast.ColName); !ok || cn.Name != "tt" {
		t.Errorf("return expr = %v", last.Expr)
	}
	q := script.Queries[0]
	fr, ok := q.From[0].(*ast.FuncRef)
	if !ok || fr.Name != "topcust" || fr.Alias != "t" {
		t.Errorf("from func ref = %+v", q.From[0])
	}
}

func TestParseReturnSelect(t *testing.T) {
	src := `create function totalbusiness(int ckey) returns int as
	begin
	  return select sum(totalprice) from orders where custkey = :ckey;
	end`
	script, err := ParseScript(src)
	if err != nil {
		t.Fatal(err)
	}
	ret := script.Functions[0].Body[0].(*ast.ReturnStmt)
	if _, ok := ret.Expr.(*ast.SubqueryExpr); !ok {
		t.Errorf("return expr = %T", ret.Expr)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"select",
		"select a from",
		"select a from t where",
		"create table t",
		"create function f() returns int as begin return 1",             // no END
		"create function f() returns int as begin select 1 from t; end", // SELECT w/o INTO
		"select a from t group by",
		"case when 1 then 2", // not a query
	}
	for _, src := range bad {
		if _, err := ParseScript(src); err == nil {
			t.Errorf("ParseScript(%q) should fail", src)
		}
	}
}

func TestSQLRoundTripParses(t *testing.T) {
	// Rendering a parsed tree back to SQL must itself parse.
	sources := []string{
		"select custkey, service_level(custkey) from customer",
		"select top 3 a, b as c from t where x > 1 and y < 2 group by a, b having count(*) > 1 order by a desc",
		"select o.a from orders o left outer join customer c on o.k = c.k where exists (select 1 from t)",
	}
	for _, src := range sources {
		q, err := ParseQuery(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		again, err := ParseQuery(q.SQL())
		if err != nil {
			t.Fatalf("round trip of %q -> %q: %v", src, q.SQL(), err)
		}
		if !strings.EqualFold(again.SQL(), q.SQL()) {
			t.Errorf("unstable round trip: %q vs %q", q.SQL(), again.SQL())
		}
	}
}

func TestParseScriptMixed(t *testing.T) {
	script, err := ParseScript(example1UDF + "\nselect custkey, service_level(custkey) from customer;")
	if err != nil {
		t.Fatal(err)
	}
	if len(script.Functions) != 1 || len(script.Queries) != 1 {
		t.Fatalf("script contents: %d funcs, %d queries", len(script.Functions), len(script.Queries))
	}
}

func TestParseTopLevelInsert(t *testing.T) {
	script, err := ParseScript(`
create table t (k int primary key, v float);
insert into t values (1, 10.5), (2, 20.5);
insert into t values (3, 0.25);`)
	if err != nil {
		t.Fatal(err)
	}
	if len(script.Inserts) != 3 {
		t.Fatalf("inserts = %d, want 3 (one per row)", len(script.Inserts))
	}
	if script.Inserts[0].Table != "t" || len(script.Inserts[0].Values) != 2 {
		t.Errorf("insert 0 = %+v", script.Inserts[0])
	}
}
