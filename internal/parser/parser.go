package parser

import (
	"fmt"
	"strconv"
	"strings"

	"udfdecorr/internal/ast"
	"udfdecorr/internal/sqltypes"
)

// Parser is a recursive-descent parser over a token stream.
type Parser struct {
	toks []token
	i    int
}

// New creates a Parser for the given source text.
func New(src string) (*Parser, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	return &Parser{toks: toks}, nil
}

// ParseScript parses a whole script of CREATE TABLE, CREATE FUNCTION,
// INSERT, SELECT and transaction-control (BEGIN/COMMIT/ROLLBACK)
// statements, preserving their source order in Script.Stmts.
func ParseScript(src string) (*ast.Script, error) {
	p, err := New(src)
	if err != nil {
		return nil, err
	}
	script := &ast.Script{}
	for !p.at(tokEOF) {
		switch {
		case p.atKeyword("CREATE"):
			p.advance()
			switch {
			case p.atKeyword("TABLE"):
				t, err := p.parseCreateTable()
				if err != nil {
					return nil, err
				}
				script.Tables = append(script.Tables, t)
				script.Stmts = append(script.Stmts, t)
			case p.atKeyword("FUNCTION"):
				f, err := p.parseCreateFunction()
				if err != nil {
					return nil, err
				}
				script.Functions = append(script.Functions, f)
				script.Stmts = append(script.Stmts, f)
			default:
				return nil, p.errf("expected TABLE or FUNCTION after CREATE")
			}
		case p.atKeyword("SELECT"):
			q, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			script.Queries = append(script.Queries, q)
			script.Stmts = append(script.Stmts, q)
		case p.atKeyword("INSERT"):
			ins, err := p.parseInsertRows()
			if err != nil {
				return nil, err
			}
			script.Inserts = append(script.Inserts, ins...)
			for _, i := range ins {
				script.Stmts = append(script.Stmts, i)
			}
		case p.atKeyword("BEGIN"):
			p.advance()
			p.eatKeyword("TRANSACTION")
			p.eatKeyword("WORK")
			script.Stmts = append(script.Stmts, &ast.TxnStmt{Kind: ast.TxnBegin})
		case p.atKeyword("COMMIT"):
			p.advance()
			p.eatKeyword("TRANSACTION")
			p.eatKeyword("WORK")
			script.Stmts = append(script.Stmts, &ast.TxnStmt{Kind: ast.TxnCommit})
		case p.atKeyword("ROLLBACK"):
			p.advance()
			p.eatKeyword("TRANSACTION")
			p.eatKeyword("WORK")
			script.Stmts = append(script.Stmts, &ast.TxnStmt{Kind: ast.TxnRollback})
		default:
			return nil, p.errf("expected CREATE, INSERT, SELECT, BEGIN, COMMIT or ROLLBACK at top level, got %q", p.cur().text)
		}
		p.eatSymbol(";")
	}
	return script, nil
}

// ParseQuery parses a single SELECT statement.
func ParseQuery(src string) (*ast.SelectStmt, error) {
	p, err := New(src)
	if err != nil {
		return nil, err
	}
	if !p.atKeyword("SELECT") {
		return nil, p.errf("expected SELECT")
	}
	q, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	p.eatSymbol(";")
	if !p.at(tokEOF) {
		return nil, p.errf("trailing input after query: %q", p.cur().text)
	}
	return q, nil
}

// ParseExpr parses a single scalar expression.
func ParseExpr(src string) (ast.Expr, error) {
	p, err := New(src)
	if err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF) {
		return nil, p.errf("trailing input after expression: %q", p.cur().text)
	}
	return e, nil
}

// ---------------------------------------------------------------------------
// token helpers
// ---------------------------------------------------------------------------

func (p *Parser) cur() token { return p.toks[p.i] }

func (p *Parser) at(k tokKind) bool { return p.cur().kind == k }

func (p *Parser) atKeyword(kw string) bool {
	t := p.cur()
	return t.kind == tokKeyword && t.text == kw
}

func (p *Parser) atSymbol(s string) bool {
	t := p.cur()
	return t.kind == tokSymbol && t.text == s
}

func (p *Parser) advance() token {
	t := p.cur()
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *Parser) eatKeyword(kw string) bool {
	if p.atKeyword(kw) {
		p.advance()
		return true
	}
	return false
}

func (p *Parser) eatSymbol(s string) bool {
	if p.atSymbol(s) {
		p.advance()
		return true
	}
	return false
}

func (p *Parser) expectKeyword(kw string) error {
	if !p.eatKeyword(kw) {
		return p.errf("expected %s, got %q", kw, p.cur().text)
	}
	return nil
}

func (p *Parser) expectSymbol(s string) error {
	if !p.eatSymbol(s) {
		return p.errf("expected %q, got %q", s, p.cur().text)
	}
	return nil
}

func (p *Parser) expectIdent() (string, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return "", p.errf("expected identifier, got %q", t.text)
	}
	p.advance()
	return t.text, nil
}

func (p *Parser) errf(format string, args ...any) error {
	return fmt.Errorf("line %d: %s", p.cur().line, fmt.Sprintf(format, args...))
}

// typeKeywords maps type keywords to value kinds.
var typeKeywords = map[string]sqltypes.Kind{
	"INT": sqltypes.KindInt, "INTEGER": sqltypes.KindInt,
	"FLOAT": sqltypes.KindFloat, "REAL": sqltypes.KindFloat,
	"CHAR": sqltypes.KindString, "VARCHAR": sqltypes.KindString,
	"STRING":  sqltypes.KindString,
	"BOOLEAN": sqltypes.KindBool, "BOOL": sqltypes.KindBool,
}

// atType reports whether the current token starts a type.
func (p *Parser) atType() bool {
	t := p.cur()
	if t.kind != tokKeyword {
		return false
	}
	_, ok := typeKeywords[t.text]
	return ok
}

// parseType parses a type keyword with an optional ignored length, e.g.
// CHAR(10).
func (p *Parser) parseType() (sqltypes.Kind, error) {
	t := p.cur()
	k, ok := typeKeywords[t.text]
	if t.kind != tokKeyword || !ok {
		return 0, p.errf("expected type, got %q", t.text)
	}
	p.advance()
	if p.eatSymbol("(") {
		if !p.at(tokNumber) {
			return 0, p.errf("expected length in type")
		}
		p.advance()
		if err := p.expectSymbol(")"); err != nil {
			return 0, err
		}
	}
	return k, nil
}

// ---------------------------------------------------------------------------
// DDL
// ---------------------------------------------------------------------------

func (p *Parser) parseCreateTable() (*ast.CreateTableStmt, error) {
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	stmt := &ast.CreateTableStmt{Name: name}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		typ, err := p.parseType()
		if err != nil {
			return nil, err
		}
		cd := ast.ColDef{Name: col, Type: typ}
		if p.eatKeyword("PRIMARY") {
			if err := p.expectKeyword("KEY"); err != nil {
				return nil, err
			}
			cd.PrimaryKey = true
		}
		stmt.Cols = append(stmt.Cols, cd)
		if p.eatSymbol(",") {
			continue
		}
		break
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	if p.eatKeyword("SHARD") {
		if err := p.expectKeyword("KEY"); err != nil {
			return nil, err
		}
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		found := false
		for _, cd := range stmt.Cols {
			if strings.EqualFold(cd.Name, col) {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("shard key column %q is not a column of table %s", col, stmt.Name)
		}
		stmt.ShardKey = col
	}
	return stmt, nil
}

func (p *Parser) parseCreateFunction() (*ast.CreateFunctionStmt, error) {
	if err := p.expectKeyword("FUNCTION"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	f := &ast.CreateFunctionStmt{Name: name}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	if !p.atSymbol(")") {
		for {
			// Accept both "name TYPE" and "TYPE name" parameter syntax.
			var pname string
			var ptype sqltypes.Kind
			if p.atType() {
				ptype, err = p.parseType()
				if err != nil {
					return nil, err
				}
				pname, err = p.expectIdent()
				if err != nil {
					return nil, err
				}
			} else {
				pname, err = p.expectIdent()
				if err != nil {
					return nil, err
				}
				ptype, err = p.parseType()
				if err != nil {
					return nil, err
				}
			}
			f.Params = append(f.Params, ast.ParamDef{Name: pname, Type: ptype})
			if p.eatSymbol(",") {
				continue
			}
			break
		}
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("RETURNS"); err != nil {
		return nil, err
	}
	if p.eatKeyword("TABLE") {
		tname, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		f.TableName = tname
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		for {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			typ, err := p.parseType()
			if err != nil {
				return nil, err
			}
			f.TableCols = append(f.TableCols, ast.ColDef{Name: col, Type: typ})
			if p.eatSymbol(",") {
				continue
			}
			break
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
	} else {
		typ, err := p.parseType()
		if err != nil {
			return nil, err
		}
		f.ReturnType = typ
	}
	if err := p.expectKeyword("AS"); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	f.Body = body
	return f, nil
}

// parseBlock parses BEGIN stmt... END.
func (p *Parser) parseBlock() ([]ast.Stmt, error) {
	if err := p.expectKeyword("BEGIN"); err != nil {
		return nil, err
	}
	var stmts []ast.Stmt
	for !p.atKeyword("END") {
		if p.at(tokEOF) {
			return nil, p.errf("unexpected EOF inside block")
		}
		ss, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, ss...)
	}
	p.advance() // END
	return stmts, nil
}

// ---------------------------------------------------------------------------
// Procedural statements
// ---------------------------------------------------------------------------

func (p *Parser) parseStmt() ([]ast.Stmt, error) {
	switch {
	case p.atSymbol(";"):
		p.advance()
		return nil, nil

	case p.atKeyword("DECLARE"):
		return p.parseDeclare()

	case p.atType():
		// C-style declaration: "int a = 0;" or "float x, y;" (paper
		// syntax, possibly declaring several variables).
		typ, err := p.parseType()
		if err != nil {
			return nil, err
		}
		var out []ast.Stmt
		for {
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			d := &ast.DeclareStmt{Name: name, Type: typ}
			if p.eatSymbol("=") {
				d.Init, err = p.parseExpr()
				if err != nil {
					return nil, err
				}
			}
			out = append(out, d)
			if p.eatSymbol(",") {
				continue
			}
			break
		}
		p.eatSymbol(";")
		return out, nil

	case p.atKeyword("SET"):
		p.advance()
		s, err := p.parseAssignTail()
		if err != nil {
			return nil, err
		}
		return []ast.Stmt{s}, nil

	case p.atKeyword("IF"):
		s, err := p.parseIf()
		if err != nil {
			return nil, err
		}
		return []ast.Stmt{s}, nil

	case p.atKeyword("WHILE"):
		p.advance()
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		body, err := p.parseStmtOrBlock()
		if err != nil {
			return nil, err
		}
		return []ast.Stmt{&ast.WhileStmt{Cond: cond, Body: body}}, nil

	case p.atKeyword("RETURN"):
		p.advance()
		// Note: "RETURN tt;" where tt is the function's table variable is
		// parsed as a plain expression; the interpreter and algebrizer
		// recognize the table return semantically.
		if p.atKeyword("SELECT") {
			q, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			p.eatSymbol(";")
			return []ast.Stmt{&ast.ReturnStmt{Expr: &ast.SubqueryExpr{Select: q}}}, nil
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		p.eatSymbol(";")
		return []ast.Stmt{&ast.ReturnStmt{Expr: e}}, nil

	case p.atKeyword("SELECT"):
		q, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		p.eatSymbol(";")
		if len(q.Into) == 0 {
			return nil, p.errf("SELECT inside a function body must have INTO")
		}
		return []ast.Stmt{&ast.SelectIntoStmt{Select: q}}, nil

	case p.atKeyword("OPEN"):
		p.advance()
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		p.eatSymbol(";")
		return []ast.Stmt{&ast.OpenStmt{Cursor: name}}, nil

	case p.atKeyword("FETCH"):
		p.advance()
		p.eatKeyword("NEXT")
		if err := p.expectKeyword("FROM"); err != nil {
			return nil, err
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("INTO"); err != nil {
			return nil, err
		}
		var into []string
		for {
			t := p.cur()
			if t.kind != tokParam && t.kind != tokIdent {
				return nil, p.errf("expected variable in FETCH INTO, got %q", t.text)
			}
			p.advance()
			into = append(into, t.text)
			if p.eatSymbol(",") {
				continue
			}
			break
		}
		p.eatSymbol(";")
		return []ast.Stmt{&ast.FetchStmt{Cursor: name, Into: into}}, nil

	case p.atKeyword("CLOSE"):
		p.advance()
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		p.eatSymbol(";")
		return []ast.Stmt{&ast.CloseStmt{Cursor: name}}, nil

	case p.atKeyword("DEALLOCATE"):
		p.advance()
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		p.eatSymbol(";")
		return []ast.Stmt{&ast.DeallocateStmt{Cursor: name}}, nil

	case p.atKeyword("INSERT"):
		p.advance()
		if err := p.expectKeyword("INTO"); err != nil {
			return nil, err
		}
		tbl, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("VALUES"); err != nil {
			return nil, err
		}
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var vals []ast.Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			vals = append(vals, e)
			if p.eatSymbol(",") {
				continue
			}
			break
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		p.eatSymbol(";")
		return []ast.Stmt{&ast.InsertStmt{Table: tbl, Values: vals}}, nil

	case p.at(tokIdent) || p.at(tokParam):
		// Bare assignment: "v = e;" or "@v = e;".
		s, err := p.parseAssignTail()
		if err != nil {
			return nil, err
		}
		return []ast.Stmt{s}, nil

	default:
		return nil, p.errf("unexpected token %q in function body", p.cur().text)
	}
}

// parseAssignTail parses "name = expr;" (the name token is current).
func (p *Parser) parseAssignTail() (ast.Stmt, error) {
	t := p.cur()
	if t.kind != tokIdent && t.kind != tokParam {
		return nil, p.errf("expected variable name, got %q", t.text)
	}
	p.advance()
	if err := p.expectSymbol("="); err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	p.eatSymbol(";")
	return &ast.AssignStmt{Name: t.text, Expr: e}, nil
}

func (p *Parser) parseDeclare() ([]ast.Stmt, error) {
	p.advance() // DECLARE
	t := p.cur()
	if t.kind != tokIdent && t.kind != tokParam {
		return nil, p.errf("expected name after DECLARE, got %q", t.text)
	}
	name := t.text
	p.advance()
	if p.eatKeyword("CURSOR") {
		if err := p.expectKeyword("FOR"); err != nil {
			return nil, err
		}
		if !p.atKeyword("SELECT") {
			return nil, p.errf("expected SELECT after CURSOR FOR")
		}
		q, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		p.eatSymbol(";")
		return []ast.Stmt{&ast.DeclareCursorStmt{Name: name, Select: q}}, nil
	}
	typ, err := p.parseType()
	if err != nil {
		return nil, err
	}
	d := &ast.DeclareStmt{Name: name, Type: typ}
	if p.eatSymbol("=") {
		d.Init, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	out := []ast.Stmt{d}
	for p.eatSymbol(",") {
		n2, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		d2 := &ast.DeclareStmt{Name: n2, Type: typ}
		if p.eatSymbol("=") {
			d2.Init, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		out = append(out, d2)
	}
	p.eatSymbol(";")
	return out, nil
}

func (p *Parser) parseIf() (ast.Stmt, error) {
	p.advance() // IF
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	then, err := p.parseStmtOrBlock()
	if err != nil {
		return nil, err
	}
	st := &ast.IfStmt{Cond: cond, Then: then}
	if p.eatKeyword("ELSE") {
		if p.atKeyword("IF") {
			inner, err := p.parseIf()
			if err != nil {
				return nil, err
			}
			st.Else = []ast.Stmt{inner}
		} else {
			st.Else, err = p.parseStmtOrBlock()
			if err != nil {
				return nil, err
			}
		}
	}
	return st, nil
}

// parseStmtOrBlock parses either a BEGIN..END block or a single statement.
func (p *Parser) parseStmtOrBlock() ([]ast.Stmt, error) {
	if p.atKeyword("BEGIN") {
		return p.parseBlock()
	}
	return p.parseStmt()
}

// ---------------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------------

func (p *Parser) parseSelect() (*ast.SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	q := &ast.SelectStmt{}
	if p.eatKeyword("TOP") {
		e, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		q.Top = e
	}
	if p.eatKeyword("DISTINCT") {
		q.Distinct = true
	}
	// Select list.
	for {
		if p.atSymbol("*") {
			p.advance()
			q.Items = append(q.Items, ast.SelectItem{Star: true})
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := ast.SelectItem{Expr: e}
			if p.eatKeyword("AS") {
				a, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				item.Alias = a
			} else if p.at(tokIdent) {
				item.Alias = p.advance().text
			}
			q.Items = append(q.Items, item)
		}
		if p.eatSymbol(",") {
			continue
		}
		break
	}
	if p.eatKeyword("INTO") {
		for {
			t := p.cur()
			if t.kind != tokParam && t.kind != tokIdent {
				return nil, p.errf("expected variable in INTO list, got %q", t.text)
			}
			p.advance()
			q.Into = append(q.Into, t.text)
			if p.eatSymbol(",") {
				continue
			}
			break
		}
	}
	if p.eatKeyword("FROM") {
		for {
			tr, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			q.From = append(q.From, tr)
			if p.eatSymbol(",") {
				continue
			}
			break
		}
	}
	if p.eatKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		q.Where = e
	}
	if p.eatKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			q.GroupBy = append(q.GroupBy, e)
			if p.eatSymbol(",") {
				continue
			}
			break
		}
	}
	if p.eatKeyword("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		q.Having = e
	}
	if p.eatKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := ast.OrderItem{Expr: e}
			if p.eatKeyword("DESC") {
				item.Desc = true
			} else {
				p.eatKeyword("ASC")
			}
			q.OrderBy = append(q.OrderBy, item)
			if p.eatSymbol(",") {
				continue
			}
			break
		}
	}
	if p.eatKeyword("LIMIT") {
		e, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		q.Top = e
	}
	return q, nil
}

func (p *Parser) parseTableRef() (ast.TableRef, error) {
	left, err := p.parseTablePrimary()
	if err != nil {
		return nil, err
	}
	for {
		var kind ast.JoinKind
		switch {
		case p.atKeyword("JOIN"):
			p.advance()
			kind = ast.JoinInner
		case p.atKeyword("INNER"):
			p.advance()
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			kind = ast.JoinInner
		case p.atKeyword("LEFT"):
			p.advance()
			p.eatKeyword("OUTER")
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			kind = ast.JoinLeftOuter
		case p.atKeyword("CROSS"):
			p.advance()
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			kind = ast.JoinCross
		default:
			return left, nil
		}
		right, err := p.parseTablePrimary()
		if err != nil {
			return nil, err
		}
		j := &ast.JoinRef{Kind: kind, L: left, R: right}
		if kind != ast.JoinCross {
			if err := p.expectKeyword("ON"); err != nil {
				return nil, err
			}
			j.On, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		left = j
	}
}

func (p *Parser) parseTablePrimary() (ast.TableRef, error) {
	if p.atSymbol("(") {
		p.advance()
		if !p.atKeyword("SELECT") {
			return nil, p.errf("expected SELECT in derived table")
		}
		q, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		p.eatKeyword("AS")
		alias, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &ast.SubqueryRef{Select: q, Alias: alias}, nil
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	// Table-valued function reference: name(args).
	if p.atSymbol("(") {
		p.advance()
		fr := &ast.FuncRef{Name: name}
		if !p.atSymbol(")") {
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				fr.Args = append(fr.Args, e)
				if p.eatSymbol(",") {
					continue
				}
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		if p.eatKeyword("AS") {
			fr.Alias, err = p.expectIdent()
			if err != nil {
				return nil, err
			}
		} else if p.at(tokIdent) {
			fr.Alias = p.advance().text
		}
		return fr, nil
	}
	tn := &ast.TableName{Name: name}
	if p.eatKeyword("AS") {
		tn.Alias, err = p.expectIdent()
		if err != nil {
			return nil, err
		}
	} else if p.at(tokIdent) {
		tn.Alias = p.advance().text
	}
	return tn, nil
}

// ---------------------------------------------------------------------------
// Expressions (precedence climbing)
// ---------------------------------------------------------------------------

func (p *Parser) parseExpr() (ast.Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (ast.Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("OR") {
		p.advance()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &ast.BinExpr{Op: ast.BinOr, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseAnd() (ast.Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("AND") {
		p.advance()
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &ast.BinExpr{Op: ast.BinAnd, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseNot() (ast.Expr, error) {
	if p.atKeyword("NOT") {
		p.advance()
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &ast.UnaryExpr{Op: "NOT", E: e}, nil
	}
	return p.parseComparison()
}

var cmpOps = map[string]ast.BinOp{
	"=": ast.BinEQ, "<>": ast.BinNE, "<": ast.BinLT,
	"<=": ast.BinLE, ">": ast.BinGT, ">=": ast.BinGE,
}

func (p *Parser) parseComparison() (ast.Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.kind == tokSymbol {
		if op, ok := cmpOps[t.text]; ok {
			p.advance()
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &ast.BinExpr{Op: op, L: l, R: r}, nil
		}
	}
	if p.atKeyword("IS") {
		p.advance()
		neg := p.eatKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &ast.IsNullExpr{Neg: neg, E: l}, nil
	}
	neg := false
	if p.atKeyword("NOT") && p.i+1 < len(p.toks) &&
		p.toks[p.i+1].kind == tokKeyword &&
		(p.toks[p.i+1].text == "IN" || p.toks[p.i+1].text == "BETWEEN") {
		p.advance()
		neg = true
	}
	if p.atKeyword("IN") {
		p.advance()
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		in := &ast.InExpr{Neg: neg, E: l}
		if p.atKeyword("SELECT") {
			q, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			in.Select = q
		} else {
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				in.List = append(in.List, e)
				if p.eatSymbol(",") {
					continue
				}
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return in, nil
	}
	if p.atKeyword("BETWEEN") {
		p.advance()
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		between := &ast.BinExpr{Op: ast.BinAnd,
			L: &ast.BinExpr{Op: ast.BinGE, L: l, R: lo},
			R: &ast.BinExpr{Op: ast.BinLE, L: l, R: hi}}
		if neg {
			return &ast.UnaryExpr{Op: "NOT", E: between}, nil
		}
		return between, nil
	}
	return l, nil
}

func (p *Parser) parseAdditive() (ast.Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tokSymbol {
			return l, nil
		}
		var op ast.BinOp
		switch t.text {
		case "+":
			op = ast.BinAdd
		case "-":
			op = ast.BinSub
		case "||":
			op = ast.BinConcat
		default:
			return l, nil
		}
		p.advance()
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &ast.BinExpr{Op: op, L: l, R: r}
	}
}

func (p *Parser) parseMultiplicative() (ast.Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tokSymbol {
			return l, nil
		}
		var op ast.BinOp
		switch t.text {
		case "*":
			op = ast.BinMul
		case "/":
			op = ast.BinDiv
		case "%":
			op = ast.BinMod
		default:
			return l, nil
		}
		p.advance()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &ast.BinExpr{Op: op, L: l, R: r}
	}
}

func (p *Parser) parseUnary() (ast.Expr, error) {
	if p.atSymbol("-") {
		p.advance()
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &ast.UnaryExpr{Op: "-", E: e}, nil
	}
	if p.atSymbol("+") {
		p.advance()
		return p.parseUnary()
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (ast.Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.advance()
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errf("bad number %q", t.text)
			}
			return &ast.Lit{Val: sqltypes.NewFloat(f)}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.text)
		}
		return &ast.Lit{Val: sqltypes.NewInt(n)}, nil

	case tokString:
		p.advance()
		return &ast.Lit{Val: sqltypes.NewString(t.text)}, nil

	case tokParam:
		p.advance()
		return &ast.ParamRef{Name: t.text}, nil

	case tokAtAt:
		p.advance()
		// @@FETCH_STATUS and friends become parameters with the @@ prefix
		// preserved in the name so they can't collide with user variables.
		return &ast.ParamRef{Name: "@@" + strings.ToLower(t.text)}, nil

	case tokKeyword:
		switch t.text {
		case "NULL":
			p.advance()
			return &ast.Lit{Val: sqltypes.Null}, nil
		case "TRUE":
			p.advance()
			return &ast.Lit{Val: sqltypes.NewBool(true)}, nil
		case "FALSE":
			p.advance()
			return &ast.Lit{Val: sqltypes.NewBool(false)}, nil
		case "CASE":
			return p.parseCase()
		case "EXISTS":
			p.advance()
			if err := p.expectSymbol("("); err != nil {
				return nil, err
			}
			q, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return &ast.ExistsExpr{Select: q}, nil
		case "NOT":
			p.advance()
			if err := p.expectKeyword("EXISTS"); err != nil {
				return nil, err
			}
			if err := p.expectSymbol("("); err != nil {
				return nil, err
			}
			q, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return &ast.ExistsExpr{Neg: true, Select: q}, nil
		}
		return nil, p.errf("unexpected keyword %q in expression", t.text)

	case tokSymbol:
		switch t.text {
		case "(":
			p.advance()
			if p.atKeyword("SELECT") {
				q, err := p.parseSelect()
				if err != nil {
					return nil, err
				}
				if err := p.expectSymbol(")"); err != nil {
					return nil, err
				}
				return &ast.SubqueryExpr{Select: q}, nil
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return e, nil
		case "?":
			p.advance()
			return &ast.ParamRef{Name: "?"}, nil
		}
		return nil, p.errf("unexpected symbol %q in expression", t.text)

	case tokIdent:
		p.advance()
		name := t.text
		// Function call.
		if p.atSymbol("(") {
			p.advance()
			fc := &ast.FuncCall{Name: name}
			if p.atSymbol("*") {
				p.advance()
				fc.Star = true
			} else if !p.atSymbol(")") {
				if p.eatKeyword("DISTINCT") {
					fc.Distinct = true
				}
				for {
					e, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					fc.Args = append(fc.Args, e)
					if p.eatSymbol(",") {
						continue
					}
					break
				}
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return fc, nil
		}
		// Qualified column.
		if p.atSymbol(".") {
			p.advance()
			if p.atSymbol("*") {
				p.advance()
				return &ast.ColName{Qual: name, Name: "*"}, nil
			}
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			return &ast.ColName{Qual: name, Name: col}, nil
		}
		return &ast.ColName{Name: name}, nil
	}
	return nil, p.errf("unexpected token %q in expression", t.text)
}

func (p *Parser) parseCase() (ast.Expr, error) {
	p.advance() // CASE
	c := &ast.CaseExpr{}
	for p.atKeyword("WHEN") {
		p.advance()
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("THEN"); err != nil {
			return nil, err
		}
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, ast.When{Cond: cond, Then: then})
	}
	if len(c.Whens) == 0 {
		return nil, p.errf("CASE requires at least one WHEN")
	}
	if p.eatKeyword("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	return c, nil
}

// parseInsertRows parses a top-level INSERT INTO t VALUES (...), (...) into
// one InsertStmt per row.
func (p *Parser) parseInsertRows() ([]*ast.InsertStmt, error) {
	p.advance() // INSERT
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	tbl, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	var out []*ast.InsertStmt
	for {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var vals []ast.Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			vals = append(vals, e)
			if p.eatSymbol(",") {
				continue
			}
			break
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		out = append(out, &ast.InsertStmt{Table: tbl, Values: vals})
		if p.eatSymbol(",") {
			continue
		}
		break
	}
	p.eatSymbol(";")
	return out, nil
}
