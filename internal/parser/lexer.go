// Package parser implements a hand-written lexer and recursive-descent
// parser for the SQL dialect used by the rewrite tool: CREATE TABLE,
// CREATE FUNCTION with procedural bodies, and SELECT queries with joins,
// grouping, and subqueries.
package parser

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind enumerates lexical token kinds.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokParam  // :name or @name
	tokAtAt   // @@NAME pseudo-variable
	tokSymbol // punctuation and operators
)

// token is one lexical token with its source position.
type token struct {
	kind tokKind
	text string // canonical text (keywords upper-cased, params without sigil)
	pos  int    // byte offset in input
	line int
}

// keywords recognized by the lexer; identifiers matching these (case
// insensitively) become tokKeyword with upper-case text.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "ASC": true, "DESC": true, "TOP": true,
	"DISTINCT": true, "AS": true, "AND": true, "OR": true, "NOT": true,
	"NULL": true, "TRUE": true, "FALSE": true, "IS": true, "IN": true,
	"EXISTS": true, "BETWEEN": true, "LIKE": true, "CASE": true, "WHEN": true,
	"THEN": true, "ELSE": true, "END": true, "JOIN": true, "INNER": true,
	"LEFT": true, "OUTER": true, "CROSS": true, "ON": true, "INTO": true,
	"CREATE": true, "TABLE": true, "FUNCTION": true, "RETURNS": true,
	"RETURN": true, "BEGIN": true, "DECLARE": true, "SET": true, "IF": true,
	"WHILE": true, "CURSOR": true, "FOR": true, "OPEN": true, "FETCH": true,
	"NEXT": true, "CLOSE": true, "DEALLOCATE": true, "INSERT": true,
	"VALUES": true, "PRIMARY": true, "KEY": true, "SHARD": true, "INT": true,
	"INTEGER": true, "FLOAT": true, "REAL": true, "CHAR": true,
	"VARCHAR": true, "STRING": true, "BOOLEAN": true, "BOOL": true,
	"LIMIT": true, "UNION": true, "ALL": true,
	"COMMIT": true, "ROLLBACK": true, "TRANSACTION": true, "WORK": true,
}

// lexer tokenizes an input string.
type lexer struct {
	src  string
	pos  int
	line int
	toks []token
}

// lex tokenizes src, returning the token stream or a lexical error.
func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1}
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, t)
		if t.kind == tokEOF {
			return l.toks, nil
		}
	}
}

func (l *lexer) errf(format string, args ...any) error {
	return fmt.Errorf("line %d: %s", l.line, fmt.Sprintf(format, args...))
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				return l.errf("unterminated block comment")
			}
			l.line += strings.Count(l.src[l.pos:l.pos+2+end+2], "\n")
			l.pos += 2 + end + 2
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

func (l *lexer) next() (token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return token{}, err
	}
	start := l.pos
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: start, line: l.line}, nil
	}
	c := l.src[l.pos]
	switch {
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		word := l.src[start:l.pos]
		upper := strings.ToUpper(word)
		if keywords[upper] {
			return token{kind: tokKeyword, text: upper, pos: start, line: l.line}, nil
		}
		return token{kind: tokIdent, text: strings.ToLower(word), pos: start, line: l.line}, nil

	case c >= '0' && c <= '9' || c == '.' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9':
		seenDot := false
		for l.pos < len(l.src) {
			ch := l.src[l.pos]
			if ch >= '0' && ch <= '9' {
				l.pos++
			} else if ch == '.' && !seenDot {
				// Don't treat "1.." or "1.x" (qualified) as float.
				if l.pos+1 < len(l.src) && isIdentStart(l.src[l.pos+1]) {
					break
				}
				seenDot = true
				l.pos++
			} else if (ch == 'e' || ch == 'E') && l.pos+1 < len(l.src) &&
				(l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' || l.src[l.pos+1] == '-' || l.src[l.pos+1] == '+') {
				seenDot = true
				l.pos += 2
			} else {
				break
			}
		}
		return token{kind: tokNumber, text: l.src[start:l.pos], pos: start, line: l.line}, nil

	case c == '\'':
		l.pos++
		var b strings.Builder
		for {
			if l.pos >= len(l.src) {
				return token{}, l.errf("unterminated string literal")
			}
			ch := l.src[l.pos]
			if ch == '\'' {
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
					b.WriteByte('\'')
					l.pos += 2
					continue
				}
				l.pos++
				break
			}
			if ch == '\n' {
				l.line++
			}
			b.WriteByte(ch)
			l.pos++
		}
		return token{kind: tokString, text: b.String(), pos: start, line: l.line}, nil

	case c == ':' || c == '@':
		if c == '@' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '@' {
			l.pos += 2
			vs := l.pos
			for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
				l.pos++
			}
			if l.pos == vs {
				return token{}, l.errf("expected identifier after @@")
			}
			return token{kind: tokAtAt, text: strings.ToUpper(l.src[vs:l.pos]), pos: start, line: l.line}, nil
		}
		l.pos++
		vs := l.pos
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		if l.pos == vs {
			return token{}, l.errf("expected identifier after %q", string(c))
		}
		return token{kind: tokParam, text: strings.ToLower(l.src[vs:l.pos]), pos: start, line: l.line}, nil

	default:
		// Multi-byte operators first.
		two := ""
		if l.pos+1 < len(l.src) {
			two = l.src[l.pos : l.pos+2]
		}
		switch two {
		case "<>", "!=", "<=", ">=", "||":
			l.pos += 2
			if two == "!=" {
				two = "<>"
			}
			return token{kind: tokSymbol, text: two, pos: start, line: l.line}, nil
		}
		switch c {
		case '(', ')', ',', ';', '.', '*', '+', '-', '/', '%', '=', '<', '>', '?':
			l.pos++
			return token{kind: tokSymbol, text: string(c), pos: start, line: l.line}, nil
		}
		return token{}, l.errf("unexpected character %q", string(c))
	}
}
