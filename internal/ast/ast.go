// Package ast defines the abstract syntax tree for the SQL dialect accepted
// by the rewrite tool: queries (SELECT with joins, grouping, subqueries) and
// the procedural statements that appear in UDF bodies (DECLARE, SET, IF/ELSE,
// RETURN, SELECT INTO, cursor loops, INSERT into table variables).
package ast

import (
	"strings"

	"udfdecorr/internal/sqltypes"
)

// Node is implemented by every AST node.
type Node interface {
	// SQL renders the node back to dialect syntax (used for error messages
	// and round-trip tests; the production deparser lives in sqlgen).
	SQL() string
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

// Expr is a scalar expression node.
type Expr interface {
	Node
	exprNode()
}

// ColName references a column, optionally qualified by a table name or alias.
type ColName struct {
	Qual string // optional qualifier ("" when absent)
	Name string
}

// ParamRef references a host variable, UDF formal parameter, or local
// variable (written :name or @name in source).
type ParamRef struct {
	Name string
}

// Lit is a literal constant.
type Lit struct {
	Val sqltypes.Value
}

// BinOp enumerates binary operators in expressions.
type BinOp uint8

// Binary operators.
const (
	BinAdd BinOp = iota
	BinSub
	BinMul
	BinDiv
	BinMod
	BinConcat
	BinEQ
	BinNE
	BinLT
	BinLE
	BinGT
	BinGE
	BinAnd
	BinOr
)

// String returns the SQL spelling of the operator.
func (op BinOp) String() string {
	switch op {
	case BinAdd:
		return "+"
	case BinSub:
		return "-"
	case BinMul:
		return "*"
	case BinDiv:
		return "/"
	case BinMod:
		return "%"
	case BinConcat:
		return "||"
	case BinEQ:
		return "="
	case BinNE:
		return "<>"
	case BinLT:
		return "<"
	case BinLE:
		return "<="
	case BinGT:
		return ">"
	case BinGE:
		return ">="
	case BinAnd:
		return "AND"
	case BinOr:
		return "OR"
	default:
		return "?"
	}
}

// IsComparison reports whether the operator is a comparison.
func (op BinOp) IsComparison() bool { return op >= BinEQ && op <= BinGE }

// IsArith reports whether the operator is arithmetic.
func (op BinOp) IsArith() bool { return op <= BinMod }

// BinExpr is a binary expression.
type BinExpr struct {
	Op   BinOp
	L, R Expr
}

// UnaryExpr is NOT e or -e.
type UnaryExpr struct {
	Op string // "NOT" or "-"
	E  Expr
}

// IsNullExpr is e IS [NOT] NULL.
type IsNullExpr struct {
	Neg bool
	E   Expr
}

// When is one WHEN cond THEN result arm of a CASE expression.
type When struct {
	Cond Expr
	Then Expr
}

// CaseExpr is a searched CASE expression.
type CaseExpr struct {
	Whens []When
	Else  Expr // may be nil (NULL)
}

// FuncCall is a function invocation: scalar builtin, aggregate, or UDF.
type FuncCall struct {
	Name     string
	Args     []Expr
	Star     bool // COUNT(*)
	Distinct bool // COUNT(DISTINCT x)
}

// SubqueryExpr is a scalar subquery used as an expression.
type SubqueryExpr struct {
	Select *SelectStmt
}

// ExistsExpr is [NOT] EXISTS (subquery).
type ExistsExpr struct {
	Neg    bool
	Select *SelectStmt
}

// InExpr is e [NOT] IN (subquery) or e [NOT] IN (list...).
type InExpr struct {
	Neg    bool
	E      Expr
	Select *SelectStmt // exactly one of Select/List is set
	List   []Expr
}

func (*ColName) exprNode()      {}
func (*ParamRef) exprNode()     {}
func (*Lit) exprNode()          {}
func (*BinExpr) exprNode()      {}
func (*UnaryExpr) exprNode()    {}
func (*IsNullExpr) exprNode()   {}
func (*CaseExpr) exprNode()     {}
func (*FuncCall) exprNode()     {}
func (*SubqueryExpr) exprNode() {}
func (*ExistsExpr) exprNode()   {}
func (*InExpr) exprNode()       {}

// SQL implements Node.
func (e *ColName) SQL() string {
	if e.Qual != "" {
		return e.Qual + "." + e.Name
	}
	return e.Name
}

// SQL implements Node.
func (e *ParamRef) SQL() string {
	// @@FETCH_STATUS-style pseudo-variables carry their sigil in the name;
	// prefixing ":" would produce text the parser rejects.
	if strings.HasPrefix(e.Name, "@@") || e.Name == "?" {
		return e.Name
	}
	return ":" + e.Name
}

// SQL implements Node.
func (e *Lit) SQL() string { return e.Val.String() }

// SQL implements Node.
func (e *BinExpr) SQL() string {
	return "(" + e.L.SQL() + " " + e.Op.String() + " " + e.R.SQL() + ")"
}

// SQL implements Node.
func (e *UnaryExpr) SQL() string {
	if e.Op == "NOT" {
		return "(NOT " + e.E.SQL() + ")"
	}
	return "(" + e.Op + e.E.SQL() + ")"
}

// SQL implements Node.
func (e *IsNullExpr) SQL() string {
	if e.Neg {
		return "(" + e.E.SQL() + " IS NOT NULL)"
	}
	return "(" + e.E.SQL() + " IS NULL)"
}

// SQL implements Node.
func (e *CaseExpr) SQL() string {
	var b strings.Builder
	b.WriteString("CASE")
	for _, w := range e.Whens {
		b.WriteString(" WHEN " + w.Cond.SQL() + " THEN " + w.Then.SQL())
	}
	if e.Else != nil {
		b.WriteString(" ELSE " + e.Else.SQL())
	}
	b.WriteString(" END")
	return b.String()
}

// SQL implements Node.
func (e *FuncCall) SQL() string {
	if e.Star {
		return e.Name + "(*)"
	}
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.SQL()
	}
	inner := strings.Join(args, ", ")
	if e.Distinct {
		inner = "DISTINCT " + inner
	}
	return e.Name + "(" + inner + ")"
}

// SQL implements Node.
func (e *SubqueryExpr) SQL() string { return "(" + e.Select.SQL() + ")" }

// SQL implements Node.
func (e *ExistsExpr) SQL() string {
	p := "EXISTS "
	if e.Neg {
		p = "NOT EXISTS "
	}
	return p + "(" + e.Select.SQL() + ")"
}

// SQL implements Node.
func (e *InExpr) SQL() string {
	op := " IN "
	if e.Neg {
		op = " NOT IN "
	}
	if e.Select != nil {
		return e.E.SQL() + op + "(" + e.Select.SQL() + ")"
	}
	parts := make([]string, len(e.List))
	for i, x := range e.List {
		parts[i] = x.SQL()
	}
	return e.E.SQL() + op + "(" + strings.Join(parts, ", ") + ")"
}

// ---------------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------------

// SelectItem is one item of the SELECT list.
type SelectItem struct {
	Star  bool   // SELECT *
	Expr  Expr   // nil when Star
	Alias string // optional AS alias
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// JoinKind enumerates join syntax kinds in the FROM clause.
type JoinKind uint8

// Join kinds.
const (
	JoinInner JoinKind = iota
	JoinLeftOuter
	JoinCross
)

// String returns the SQL spelling of the join kind.
func (k JoinKind) String() string {
	switch k {
	case JoinInner:
		return "JOIN"
	case JoinLeftOuter:
		return "LEFT OUTER JOIN"
	case JoinCross:
		return "CROSS JOIN"
	default:
		return "?"
	}
}

// TableRef is an entry of the FROM clause.
type TableRef interface {
	Node
	tableRef()
}

// TableName references a base table (or table-valued UDF result) by name.
type TableName struct {
	Name  string
	Alias string // optional
}

// JoinRef is an explicit join between two table refs.
type JoinRef struct {
	Kind JoinKind
	L, R TableRef
	On   Expr // nil for CROSS JOIN
}

// SubqueryRef is a derived table: (SELECT ...) AS alias.
type SubqueryRef struct {
	Select *SelectStmt
	Alias  string
}

// FuncRef is a table-valued function invocation in FROM.
type FuncRef struct {
	Name  string
	Args  []Expr
	Alias string
}

func (*TableName) tableRef()   {}
func (*JoinRef) tableRef()     {}
func (*SubqueryRef) tableRef() {}
func (*FuncRef) tableRef()     {}

// SQL implements Node.
func (t *TableName) SQL() string {
	if t.Alias != "" {
		return t.Name + " " + t.Alias
	}
	return t.Name
}

// SQL implements Node.
func (t *JoinRef) SQL() string {
	s := t.L.SQL() + " " + t.Kind.String() + " " + t.R.SQL()
	if t.On != nil {
		s += " ON " + t.On.SQL()
	}
	return s
}

// SQL implements Node.
func (t *SubqueryRef) SQL() string { return "(" + t.Select.SQL() + ") " + t.Alias }

// SQL implements Node.
func (t *FuncRef) SQL() string {
	args := make([]string, len(t.Args))
	for i, a := range t.Args {
		args[i] = a.SQL()
	}
	s := t.Name + "(" + strings.Join(args, ", ") + ")"
	if t.Alias != "" {
		s += " " + t.Alias
	}
	return s
}

// SelectStmt is a (possibly nested) SELECT query. Into is non-empty only for
// SELECT ... INTO :v statements inside UDF bodies.
type SelectStmt struct {
	Top      Expr // optional TOP n
	Distinct bool
	Items    []SelectItem
	Into     []string // local variable targets for SELECT INTO
	From     []TableRef
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
}

// SQL implements Node.
func (s *SelectStmt) SQL() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.Top != nil {
		b.WriteString("TOP " + s.Top.SQL() + " ")
	}
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		if it.Star {
			b.WriteString("*")
			continue
		}
		b.WriteString(it.Expr.SQL())
		if it.Alias != "" {
			b.WriteString(" AS " + it.Alias)
		}
	}
	if len(s.Into) > 0 {
		b.WriteString(" INTO :" + strings.Join(s.Into, ", :"))
	}
	if len(s.From) > 0 {
		b.WriteString(" FROM ")
		for i, f := range s.From {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(f.SQL())
		}
	}
	if s.Where != nil {
		b.WriteString(" WHERE " + s.Where.SQL())
	}
	if len(s.GroupBy) > 0 {
		parts := make([]string, len(s.GroupBy))
		for i, g := range s.GroupBy {
			parts[i] = g.SQL()
		}
		b.WriteString(" GROUP BY " + strings.Join(parts, ", "))
	}
	if s.Having != nil {
		b.WriteString(" HAVING " + s.Having.SQL())
	}
	if len(s.OrderBy) > 0 {
		parts := make([]string, len(s.OrderBy))
		for i, o := range s.OrderBy {
			parts[i] = o.Expr.SQL()
			if o.Desc {
				parts[i] += " DESC"
			}
		}
		b.WriteString(" ORDER BY " + strings.Join(parts, ", "))
	}
	return b.String()
}
