package ast

import (
	"strings"

	"udfdecorr/internal/sqltypes"
)

// ---------------------------------------------------------------------------
// Procedural statements (UDF bodies)
// ---------------------------------------------------------------------------

// Stmt is a procedural statement inside a UDF body.
type Stmt interface {
	Node
	stmtNode()
}

// DeclareStmt declares a local variable, optionally with an initializer.
type DeclareStmt struct {
	Name string
	Type sqltypes.Kind
	Init Expr // nil means uninitialized (⊥, i.e. NULL)
}

// AssignStmt assigns an expression to a local variable (SET v = e or v = e).
type AssignStmt struct {
	Name string
	Expr Expr
}

// IfStmt is a conditional block with optional ELSE.
type IfStmt struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
}

// ReturnStmt returns a scalar expression (which may be a scalar subquery)
// or, in table-valued UDFs, the result table (Expr nil, Table set).
type ReturnStmt struct {
	Expr  Expr
	Table string // table variable name for RETURN tt
}

// SelectIntoStmt executes a query and assigns its single row to variables.
type SelectIntoStmt struct {
	Select *SelectStmt // Select.Into names the targets
}

// DeclareCursorStmt declares a cursor over a query.
type DeclareCursorStmt struct {
	Name   string
	Select *SelectStmt
}

// OpenStmt opens a cursor.
type OpenStmt struct{ Cursor string }

// FetchStmt fetches the next row from a cursor into variables. The fetch
// status is observable via the @@FETCH_STATUS pseudo-variable.
type FetchStmt struct {
	Cursor string
	Into   []string
}

// WhileStmt is a loop; in cursor loops the condition is
// @@FETCH_STATUS = 0.
type WhileStmt struct {
	Cond Expr
	Body []Stmt
}

// CloseStmt closes a cursor.
type CloseStmt struct{ Cursor string }

// DeallocateStmt deallocates a cursor.
type DeallocateStmt struct{ Cursor string }

// InsertStmt inserts a row of values into a table variable (used by
// table-valued UDFs).
type InsertStmt struct {
	Table  string
	Values []Expr
}

func (*DeclareStmt) stmtNode()       {}
func (*AssignStmt) stmtNode()        {}
func (*IfStmt) stmtNode()            {}
func (*ReturnStmt) stmtNode()        {}
func (*SelectIntoStmt) stmtNode()    {}
func (*DeclareCursorStmt) stmtNode() {}
func (*OpenStmt) stmtNode()          {}
func (*FetchStmt) stmtNode()         {}
func (*WhileStmt) stmtNode()         {}
func (*CloseStmt) stmtNode()         {}
func (*DeallocateStmt) stmtNode()    {}
func (*InsertStmt) stmtNode()        {}

// SQL implements Node.
func (s *DeclareStmt) SQL() string {
	out := "DECLARE " + s.Name + " " + s.Type.String()
	if s.Init != nil {
		out += " = " + s.Init.SQL()
	}
	return out + ";"
}

// SQL implements Node.
func (s *AssignStmt) SQL() string { return "SET " + s.Name + " = " + s.Expr.SQL() + ";" }

// SQL implements Node.
func (s *IfStmt) SQL() string {
	var b strings.Builder
	b.WriteString("IF " + s.Cond.SQL() + " BEGIN ")
	for _, st := range s.Then {
		b.WriteString(st.SQL() + " ")
	}
	b.WriteString("END")
	if len(s.Else) > 0 {
		b.WriteString(" ELSE BEGIN ")
		for _, st := range s.Else {
			b.WriteString(st.SQL() + " ")
		}
		b.WriteString("END")
	}
	return b.String()
}

// SQL implements Node.
func (s *ReturnStmt) SQL() string {
	if s.Table != "" {
		return "RETURN " + s.Table + ";"
	}
	return "RETURN " + s.Expr.SQL() + ";"
}

// SQL implements Node.
func (s *SelectIntoStmt) SQL() string { return s.Select.SQL() + ";" }

// SQL implements Node.
func (s *DeclareCursorStmt) SQL() string {
	return "DECLARE " + s.Name + " CURSOR FOR " + s.Select.SQL() + ";"
}

// SQL implements Node.
func (s *OpenStmt) SQL() string { return "OPEN " + s.Cursor + ";" }

// SQL implements Node.
func (s *FetchStmt) SQL() string {
	return "FETCH NEXT FROM " + s.Cursor + " INTO @" + strings.Join(s.Into, ", @") + ";"
}

// SQL implements Node.
func (s *WhileStmt) SQL() string {
	var b strings.Builder
	b.WriteString("WHILE " + s.Cond.SQL() + " BEGIN ")
	for _, st := range s.Body {
		b.WriteString(st.SQL() + " ")
	}
	b.WriteString("END")
	return b.String()
}

// SQL implements Node.
func (s *CloseStmt) SQL() string { return "CLOSE " + s.Cursor + ";" }

// SQL implements Node.
func (s *DeallocateStmt) SQL() string { return "DEALLOCATE " + s.Cursor + ";" }

// SQL implements Node.
func (s *InsertStmt) SQL() string {
	parts := make([]string, len(s.Values))
	for i, v := range s.Values {
		parts[i] = v.SQL()
	}
	return "INSERT INTO " + s.Table + " VALUES (" + strings.Join(parts, ", ") + ");"
}

// ---------------------------------------------------------------------------
// DDL
// ---------------------------------------------------------------------------

// ColDef is a column definition in CREATE TABLE or RETURNS TABLE.
type ColDef struct {
	Name       string
	Type       sqltypes.Kind
	PrimaryKey bool
}

// CreateTableStmt is CREATE TABLE.
type CreateTableStmt struct {
	Name string
	Cols []ColDef
	// ShardKey names the column the sharded query tier hash-partitions the
	// table by (CREATE TABLE ... SHARD KEY (col)). Empty means the table is
	// replicated to every shard. Single-node engines store but ignore it.
	ShardKey string
}

// ParamDef is a UDF formal parameter.
type ParamDef struct {
	Name string
	Type sqltypes.Kind
}

// CreateFunctionStmt is CREATE FUNCTION, either scalar (ReturnType set) or
// table-valued (TableName and TableCols set).
type CreateFunctionStmt struct {
	Name       string
	Params     []ParamDef
	ReturnType sqltypes.Kind
	TableName  string   // non-empty for table-valued functions
	TableCols  []ColDef // schema of the returned table
	Body       []Stmt
}

func (*CreateTableStmt) stmtNode()    {}
func (*CreateFunctionStmt) stmtNode() {}

// SQL implements Node.
func (s *CreateTableStmt) SQL() string {
	parts := make([]string, len(s.Cols))
	for i, c := range s.Cols {
		parts[i] = c.Name + " " + c.Type.String()
		if c.PrimaryKey {
			parts[i] += " PRIMARY KEY"
		}
	}
	ddl := "CREATE TABLE " + s.Name + " (" + strings.Join(parts, ", ") + ")"
	if s.ShardKey != "" {
		ddl += " SHARD KEY (" + s.ShardKey + ")"
	}
	return ddl + ";"
}

// SQL implements Node.
func (s *CreateFunctionStmt) SQL() string {
	var b strings.Builder
	b.WriteString("CREATE FUNCTION " + s.Name + "(")
	for i, p := range s.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(p.Name + " " + p.Type.String())
	}
	b.WriteString(") RETURNS ")
	if s.TableName != "" {
		cols := make([]string, len(s.TableCols))
		for i, c := range s.TableCols {
			cols[i] = c.Name + " " + c.Type.String()
		}
		b.WriteString("TABLE " + s.TableName + " (" + strings.Join(cols, ", ") + ")")
	} else {
		b.WriteString(s.ReturnType.String())
	}
	b.WriteString(" AS BEGIN ")
	for _, st := range s.Body {
		b.WriteString(st.SQL() + " ")
	}
	b.WriteString("END")
	return b.String()
}

// TxnKind enumerates transaction-control statements.
type TxnKind uint8

// Transaction-control kinds.
const (
	TxnBegin TxnKind = iota
	TxnCommit
	TxnRollback
)

// TxnStmt is a top-level BEGIN / COMMIT / ROLLBACK statement.
type TxnStmt struct {
	Kind TxnKind
}

// SQL renders the statement.
func (s *TxnStmt) SQL() string {
	switch s.Kind {
	case TxnBegin:
		return "BEGIN TRANSACTION"
	case TxnCommit:
		return "COMMIT"
	default:
		return "ROLLBACK"
	}
}

// ScriptStmt is any statement that may appear at the top level of a script.
type ScriptStmt interface {
	scriptStmt()
}

func (*CreateTableStmt) scriptStmt()    {}
func (*CreateFunctionStmt) scriptStmt() {}
func (*SelectStmt) scriptStmt()         {}
func (*InsertStmt) scriptStmt()         {}
func (*TxnStmt) scriptStmt()            {}

// Script is a parsed sequence of top-level statements. Stmts preserves
// source order across statement kinds (BEGIN/INSERT/COMMIT sequencing
// matters); the per-kind slices are retained views for callers that only
// care about one kind.
type Script struct {
	Stmts     []ScriptStmt
	Tables    []*CreateTableStmt
	Functions []*CreateFunctionStmt
	Queries   []*SelectStmt
	Inserts   []*InsertStmt
}
