package bench

// ExtraUDFs carries the UDF shapes from internal/core/udf_test.go fixtures
// that the bench schema does not already define: the single-expression UDF
// (disc), the branching UDF over a threshold (lvl), the conditional cursor
// accumulation (tl), and a table-valued function (bigorders). The
// differential suite, the concurrent server smoke and the udfserverd load
// client all install them on top of Schema+UDFs.
const ExtraUDFs = `
create function disc(float amount) returns float as
begin
  return amount * 0.15;
end

create function lvl(int k) returns varchar as
begin
  float tb; string level;
  select sum(totalprice) into :tb from orders where custkey = :k;
  if (tb > 100000) level = 'Big'; else level = 'Small';
  return level;
end

create function tl(int pkey) returns int as
begin
  int total = 0;
  declare c cursor for select price, qty from lineitem where partkey = :pkey;
  open c;
  fetch next from c into @p, @q;
  while @@FETCH_STATUS = 0
  begin
    if (@p > 10) total = total + @q;
    fetch next from c into @p, @q;
  end
  close c; deallocate c;
  return total;
end

create function bigorders(minprice float) returns table tt (ckey int, price float) as
begin
  declare c cursor for select custkey, totalprice from orders;
  open c;
  fetch next from c into @ck, @tp;
  while @@FETCH_STATUS = 0
  begin
    if (@tp > minprice)
      insert into tt values (@ck, @tp * 1.0);
    fetch next from c into @ck, @tp;
  end
  close c; deallocate c;
  return tt;
end
`

// CorpusQuery is one entry of the shared differential/load corpus.
type CorpusQuery struct {
	Name string
	SQL  string
	// WantRewrite: the decorrelator must fully remove the Apply operators.
	WantRewrite bool
}

// Corpus is the query corpus shared by the differential test harness, the
// concurrent server smoke and the udfserverd load client. Every UDF defined
// by the bench harness (service_level, discount, partcount, getcost,
// totalloss) and by ExtraUDFs (disc, lvl, tl, bigorders) is invoked at least
// once.
// ShardClass is the expected route class of each corpus query when the
// schema is partitioned per ShardKeys (values match plan.ShardKind.String()).
// The differential verify client asserts routable queries match the
// single-node baseline and rejected ones fail with a typed UNSHARDABLE
// error; internal/plan pins the same table against the classifier.
var ShardClass = map[string]string{
	"straight-line expression UDF":                   "scatter-concat",
	"branching UDF (service_level)":                  "rejected", // UDF body reads orders
	"branching UDF (lvl)":                            "rejected", // UDF body reads orders
	"two scalar queries (discount)":                  "scatter-concat",
	"cursor loop (partcount)":                        "single-shard",
	"cursor loop with nested call (totalloss)":       "rejected", // UDF body reads lineitem
	"cursor accumulation (tl)":                       "rejected", // UDF body reads lineitem
	"nested scalar call (getcost)":                   "single-shard",
	"UDF in predicate":                               "scatter-concat",
	"table-valued UDF":                               "rejected", // TVF body reads orders
	"TVF joined to base table":                       "rejected",
	"correlated scalar subquery (min-cost supplier)": "single-shard",
	"UDF over aggregated input":                      "rejected",
	"plain group by (no UDF)":                        "scatter-merge",
	"scalar aggregate (no UDF)":                      "scatter-merge",
}

var Corpus = []CorpusQuery{
	{"straight-line expression UDF", "select orderkey, disc(totalprice) from orders where orderkey <= 120", true},
	{"branching UDF (service_level)", "select custkey, service_level(custkey) from customer where custkey <= 60", true},
	{"branching UDF (lvl)", "select custkey, lvl(custkey) from customer where custkey <= 40", true},
	{"two scalar queries (discount)", "select orderkey, discount(totalprice, custkey) from orders where orderkey <= 100", true},
	{"cursor loop (partcount)", "select categorykey, partcount(categorykey) from category where categorykey <= 12", true},
	{"cursor loop with nested call (totalloss)", "select partkey, totalloss(partkey) from partsupp where partkey <= 80", true},
	{"cursor accumulation (tl)", "select partkey, tl(partkey) from partsupp where partkey <= 60", true},
	{"nested scalar call (getcost)", "select partkey, getcost(partkey) from partcost where partkey <= 90", true},
	{"UDF in predicate", "select orderkey from orders where disc(totalprice) > 20000", true},
	{"table-valued UDF", "select ckey, price from bigorders(180000.0) b", true},
	{"TVF joined to base table",
		"select c.name, b.price from bigorders(190000.0) b join customer c on c.custkey = b.ckey", true},
	{"correlated scalar subquery (min-cost supplier)",
		`select partsuppkey from partsupp p1
		 where supplycost = (select min(supplycost) from partsupp p2
		                     where p2.partkey = p1.partkey)`, true},
	{"UDF over aggregated input",
		"select category, service_level(category) from customer where custkey <= 50", true},
	{"plain group by (no UDF)",
		"select custkey, count(*), sum(totalprice) from orders where custkey <= 40 group by custkey", false},
	{"scalar aggregate (no UDF)",
		"select count(*), sum(totalprice), min(totalprice), max(totalprice) from orders", false},
}
