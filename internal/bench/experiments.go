package bench

import (
	"fmt"
	"io"
	"time"

	"udfdecorr/internal/engine"
)

// Point is one measurement of an experiment sweep.
type Point struct {
	N         int           // number of UDF invocations
	Original  time.Duration // iterative plan
	Rewritten time.Duration // decorrelated plan
	OrigRows  int
	RewrRows  int
}

// Experiment is one figure of the paper's evaluation.
type Experiment struct {
	ID      string // "exp1" ...
	Figure  string // "Figure 10" ...
	Title   string
	Query   func(n int) string
	Sweep   []int
	Profile engine.Profile
}

// Experiments returns the three experiments of Section X, scaled by the
// config (sweep sizes are clamped to the dataset).
func Experiments(cfg Config) []Experiment {
	clamp := func(sizes []int, max int) []int {
		out := make([]int, 0, len(sizes))
		for _, s := range sizes {
			if s <= max {
				out = append(out, s)
			}
		}
		if len(out) == 0 || out[len(out)-1] != max {
			out = append(out, max)
		}
		return out
	}
	orderCount := cfg.Customers * cfg.OrdersPerCustomer * 9 / 10
	return []Experiment{
		{
			ID:     "exp1",
			Figure: "Figure 10",
			Title:  "Straight-line UDF with two scalar queries (Example 8)",
			Query: func(n int) string {
				return fmt.Sprintf(
					"select top %d orderkey, discount(totalprice, custkey) from orders", n)
			},
			Sweep: clamp([]int{10, 50, 100, 500, 1000, 5000, 10_000, 50_000, 100_000, 500_000}, orderCount),
		},
		{
			ID:     "exp2",
			Figure: "Figure 11",
			Title:  "UDF with branching and a scalar query (Example 1)",
			Query: func(n int) string {
				return fmt.Sprintf(
					"select custkey, service_level(custkey) from customer where custkey <= %d", n)
			},
			Sweep: clamp([]int{10, 50, 100, 500, 1000, 5000, 10_000, 50_000, 100_000}, cfg.Customers),
		},
		{
			ID:     "exp3",
			Figure: "Figure 12",
			Title:  "UDF with a cursor loop: parts per category and ancestors",
			Query: func(n int) string {
				return fmt.Sprintf(
					"select categorykey, partcount(categorykey) from category where categorykey <= %d", n)
			},
			Sweep: clamp([]int{5, 10, 50, 100, 500, 1000}, cfg.Categories),
		},
	}
}

// Run executes one experiment on the given profile, returning the sweep.
// Both engines share nothing; each query runs once after a warm-up of the
// smallest size (indexes and statistics are built lazily on first use).
func Run(exp Experiment, profile engine.Profile, cfg Config) ([]Point, error) {
	iter, err := NewEngine(profile, engine.ModeIterative, cfg)
	if err != nil {
		return nil, err
	}
	rewr, err := NewEngine(profile, engine.ModeRewrite, cfg)
	if err != nil {
		return nil, err
	}
	// Warm up storage-side indexes so timings measure execution.
	if _, err := iter.Query(exp.Query(1)); err != nil {
		return nil, err
	}
	if _, err := rewr.Query(exp.Query(1)); err != nil {
		return nil, err
	}
	// timed runs a query twice and reports the faster run (smoothing GC and
	// allocator noise) together with the result.
	timed := func(e *engine.Engine, q string) (*engine.Result, time.Duration, error) {
		best := time.Duration(0)
		var res *engine.Result
		for i := 0; i < 2; i++ {
			t0 := time.Now()
			r, err := e.Query(q)
			if err != nil {
				return nil, 0, err
			}
			d := time.Since(t0)
			if res == nil || d < best {
				res, best = r, d
			}
			if d > 2*time.Second {
				break // big runs are stable enough; don't double the cost
			}
		}
		return res, best, nil
	}

	var out []Point
	for _, n := range exp.Sweep {
		q := exp.Query(n)
		r1, dOrig, err := timed(iter, q)
		if err != nil {
			return nil, fmt.Errorf("%s iterative n=%d: %w", exp.ID, n, err)
		}
		r2, dRewr, err := timed(rewr, q)
		if err != nil {
			return nil, fmt.Errorf("%s rewritten n=%d: %w", exp.ID, n, err)
		}
		if !r2.Rewritten {
			return nil, fmt.Errorf("%s: query was not decorrelated", exp.ID)
		}
		if len(r1.Rows) != len(r2.Rows) {
			return nil, fmt.Errorf("%s n=%d: row counts differ (%d vs %d)",
				exp.ID, n, len(r1.Rows), len(r2.Rows))
		}
		out = append(out, Point{N: n, Original: dOrig, Rewritten: dRewr,
			OrigRows: len(r1.Rows), RewrRows: len(r2.Rows)})
	}
	return out, nil
}

// Report prints one experiment's sweep in the paper's series format.
func Report(w io.Writer, exp Experiment, profile engine.Profile, points []Point) {
	fmt.Fprintf(w, "%s (%s) — %s — Database: %s\n", exp.ID, exp.Figure, exp.Title, profile.Name)
	fmt.Fprintf(w, "%12s %18s %18s %10s\n", "invocations", "original", "rewritten", "speedup")
	for _, p := range points {
		speedup := float64(p.Original) / float64(p.Rewritten)
		fmt.Fprintf(w, "%12d %18s %18s %9.1fx\n", p.N, p.Original.Round(time.Microsecond),
			p.Rewritten.Round(time.Microsecond), speedup)
	}
}
