package bench

import (
	"fmt"
	"runtime"
	"time"

	"udfdecorr/internal/engine"
)

// ParallelBenchResult is the serial-vs-parallel vectorized comparison
// emitted as BENCH_parallel.json by `experiments -parallelbench`. Speedup
// is parallel QPS over serial QPS; GOMAXPROCS is recorded because the
// speedup is bounded by the cores actually available (a 1-core container
// cannot show one).
type ParallelBenchResult struct {
	Query         string  `json:"query"`
	DatasetRows   int     `json:"dataset_rows"`
	Groups        int     `json:"groups"`
	Parallelism   int     `json:"parallelism"`
	GOMAXPROCS    int     `json:"gomaxprocs"`
	SerialMSPerQ  float64 `json:"serial_ms_per_query"`
	ParallelMSPer float64 `json:"parallel_ms_per_query"`
	SerialQPS     float64 `json:"serial_qps"`
	ParallelQPS   float64 `json:"parallel_qps"`
	Speedup       float64 `json:"speedup"`
}

// parallelBenchQuery is a scan-heavy grouped aggregation: wide scan, cheap
// predicate-free pipeline into a grouped sum/count/min — the shape the
// decorrelated UDF rewrites produce and the one intra-query parallelism
// targets first.
const parallelBenchQuery = "select custkey, count(*), sum(totalprice), max(totalprice) from orders group by custkey"

// ParallelBenchConfig is the dataset for the parallel benchmark: enough
// order rows that a query runs tens of milliseconds serially, and few
// enough groups that the serial merge phase stays a small fraction of the
// scan work.
func ParallelBenchConfig() Config {
	return Config{
		Customers:         2_000,
		OrdersPerCustomer: 150, // 300k order rows
		Parts:             100,
		LineitemsPerPart:  1,
		Categories:        10,
		Seed:              20140331,
	}
}

// timeQuery runs a prepared plan repeatedly for at least minWall (and at
// least 3 iterations), returning the best per-query duration.
func timeQuery(e *engine.Engine, prep *engine.Prepared, minWall time.Duration) (time.Duration, int, error) {
	best := time.Duration(0)
	iters := 0
	rows := 0
	start := time.Now()
	for iters < 3 || time.Since(start) < minWall {
		t0 := time.Now()
		res, err := e.Run(prep)
		if err != nil {
			return 0, 0, err
		}
		d := time.Since(t0)
		if best == 0 || d < best {
			best = d
			rows = len(res.Rows)
		}
		iters++
	}
	return best, rows, nil
}

// RunParallelBench measures serial vs parallel vectorized execution of the
// grouped-aggregation benchmark over one shared dataset.
func RunParallelBench(cfg Config, degree int) (*ParallelBenchResult, error) {
	if degree < 2 {
		degree = 4
	}
	boot, err := NewEngine(engine.SYS1, engine.ModeIterative, cfg)
	if err != nil {
		return nil, err
	}
	serialProfile := engine.SYS1
	serialProfile.Vectorized = true
	serial := engine.NewShared(boot.Cat, boot.Store, serialProfile, engine.ModeIterative)
	parProfile := serialProfile
	parProfile.Parallelism = degree
	parallel := engine.NewShared(boot.Cat, boot.Store, parProfile, engine.ModeIterative)

	serialPrep, err := serial.Prepare(parallelBenchQuery)
	if err != nil {
		return nil, err
	}
	parallelPrep, err := parallel.Prepare(parallelBenchQuery)
	if err != nil {
		return nil, err
	}
	// Warm up (index/statistics builds, allocator steady state).
	if _, err := serial.Run(serialPrep); err != nil {
		return nil, err
	}
	if _, err := parallel.Run(parallelPrep); err != nil {
		return nil, err
	}

	const minWall = 2 * time.Second
	serialBest, serialGroups, err := timeQuery(serial, serialPrep, minWall)
	if err != nil {
		return nil, err
	}
	parallelBest, parallelGroups, err := timeQuery(parallel, parallelPrep, minWall)
	if err != nil {
		return nil, err
	}
	if serialGroups != parallelGroups {
		return nil, fmt.Errorf("parallel bench: group counts differ (%d vs %d)", serialGroups, parallelGroups)
	}

	orders := cfg.Customers * cfg.OrdersPerCustomer
	res := &ParallelBenchResult{
		Query:         parallelBenchQuery,
		DatasetRows:   orders,
		Groups:        serialGroups,
		Parallelism:   degree,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		SerialMSPerQ:  float64(serialBest.Microseconds()) / 1000,
		ParallelMSPer: float64(parallelBest.Microseconds()) / 1000,
		SerialQPS:     1 / serialBest.Seconds(),
		ParallelQPS:   1 / parallelBest.Seconds(),
	}
	res.Speedup = res.ParallelQPS / res.SerialQPS
	return res, nil
}
