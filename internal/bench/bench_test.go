package bench

import (
	"strings"
	"testing"

	"udfdecorr/internal/engine"
)

func TestGeneratorRowCounts(t *testing.T) {
	cfg := SmallConfig()
	e, err := NewEngine(engine.SYS1, engine.ModeIterative, cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, tbl := range []string{"customer", "orders", "part", "lineitem",
		"category", "categoryancestor", "categorydiscount", "partcost", "partsupp"} {
		st, ok := e.Store.Table(tbl)
		if !ok {
			t.Fatalf("missing table %s", tbl)
		}
		counts[tbl] = st.RowCount()
	}
	if counts["customer"] != cfg.Customers {
		t.Errorf("customers = %d", counts["customer"])
	}
	// 10% of customers have no orders.
	wantOrders := (cfg.Customers - cfg.Customers/10) * cfg.OrdersPerCustomer
	if counts["orders"] != wantOrders {
		t.Errorf("orders = %d, want %d", counts["orders"], wantOrders)
	}
	if counts["part"] != cfg.Parts || counts["category"] != cfg.Categories {
		t.Errorf("parts/categories = %d/%d", counts["part"], counts["category"])
	}
	if counts["categoryancestor"] < cfg.Categories {
		t.Errorf("ancestor closure too small: %d", counts["categoryancestor"])
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	cfg := SmallConfig()
	e1, err := NewEngine(engine.SYS1, engine.ModeIterative, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := NewEngine(engine.SYS1, engine.ModeIterative, cfg)
	if err != nil {
		t.Fatal(err)
	}
	q := "select custkey, totalprice from orders where orderkey <= 50"
	r1, err := e1.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e2.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Format() != r2.Format() {
		t.Error("generator is not deterministic")
	}
}

// TestExperimentsAgree runs every experiment at small scale on both
// profiles and verifies the iterative and rewritten plans agree — the
// correctness backbone of the evaluation.
func TestExperimentsAgree(t *testing.T) {
	cfg := SmallConfig()
	for _, exp := range Experiments(cfg) {
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			points, err := Run(exp, engine.SYS1, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(points) == 0 {
				t.Fatal("no points")
			}
			var sb strings.Builder
			Report(&sb, exp, engine.SYS1, points)
			if !strings.Contains(sb.String(), exp.Figure) {
				t.Error("report should name the figure")
			}
		})
	}
}

func TestExperimentsSYS2Profile(t *testing.T) {
	cfg := SmallConfig()
	exps := Experiments(cfg)
	if _, err := Run(exps[1], engine.SYS2, cfg); err != nil {
		t.Fatal(err)
	}
}
