// Package bench holds the evaluation harness: a deterministic TPC-H-subset
// data generator (with the paper's augmented attributes) and the three
// experiments of Section X, each reproducing one figure of the paper.
package bench

import (
	"fmt"
	"math/rand"
	"strings"

	"udfdecorr/internal/engine"
	"udfdecorr/internal/parser"
	"udfdecorr/internal/sqltypes"
	"udfdecorr/internal/storage"
)

// Config scales the generated dataset. The paper used TPC-H 10 GB
// (customer 1.5M, orders 15M); the defaults here are laptop-scale with the
// same shape (10 orders per customer, skewless keys).
type Config struct {
	Customers         int
	OrdersPerCustomer int
	Parts             int
	LineitemsPerPart  int
	Categories        int
	Seed              int64
}

// DefaultConfig is the laptop-scale dataset used by the experiment driver.
func DefaultConfig() Config {
	return Config{
		Customers:         50_000,
		OrdersPerCustomer: 10,
		Parts:             200_000,
		LineitemsPerPart:  3,
		Categories:        1000,
		Seed:              20140331, // ICDE 2014
	}
}

// SmallConfig is used by tests and the quickstart example.
func SmallConfig() Config {
	return Config{
		Customers:         500,
		OrdersPerCustomer: 4,
		Parts:             800,
		LineitemsPerPart:  3,
		Categories:        50,
		Seed:              7,
	}
}

// Schema is the TPC-H subset with the paper's augmented attributes
// (customer.category, categorydiscount, part.category and the category
// hierarchy used by Experiment 3).
const Schema = `
create table customer (custkey int primary key, name varchar, category int, nationkey int);
create table orders (orderkey int primary key, custkey int, totalprice float);
create table lineitem (lineitemkey int primary key, partkey int, price float, qty int, disc float);
create table partsupp (partsuppkey int primary key, partkey int, suppkey int, supplycost float);
create table categorydiscount (category int primary key, frac_discount float);
create table partcost (partkey int primary key, cost float);
create table part (partkey int primary key, name varchar, category int);
create table category (categorykey int primary key, parent int);
create table categoryancestor (rowid int primary key, category int, ancestor int);
`

// UDFs are the workload functions of the three experiments.
const UDFs = `
create function service_level(int ckey) returns char(10) as
begin
  float totalbusiness; string level;
  select sum(totalprice) into :totalbusiness
    from orders where custkey = :ckey;
  if (totalbusiness > 1000000)
    level = 'Platinum';
  else if (totalbusiness > 500000)
    level = 'Gold';
  else level = 'Regular';
  return level;
end

create function discount(float amt, int ckey) returns float as
begin
  int custcat; float catdisct, totaldiscount;
  select category into :custcat from customer where custkey = :ckey;
  select frac_discount into :catdisct from categorydiscount where category = :custcat;
  totaldiscount = catdisct * amt;
  return totaldiscount;
end

create function partcount(int cat) returns int as
begin
  int total = 0;
  declare c cursor for
    select p.partkey from part p, categoryancestor a
    where a.category = :cat and p.category = a.ancestor;
  open c;
  fetch next from c into @pk;
  while @@FETCH_STATUS = 0
  begin
    total = total + 1;
    fetch next from c into @pk;
  end
  close c; deallocate c;
  return total;
end

create function getcost(int pkey) returns float as
begin
  return select cost from partcost where partkey = :pkey;
end

create function totalloss(int pkey) returns int as
begin
  int total_loss = 0;
  float cost = getcost(:pkey);
  declare c cursor for
    select price, qty, disc from lineitem where partkey = :pkey;
  open c;
  fetch next from c into @price, @qty, @disc;
  while @@FETCH_STATUS = 0
  begin
    float profit = (@price - @disc) - (cost * @qty);
    if (profit < 0)
      total_loss = total_loss - profit;
    fetch next from c into @price, @qty, @disc;
  end
  close c; deallocate c;
  return total_loss;
end
`

// NewEngine builds an engine with schema, UDFs, secondary indexes and data.
func NewEngine(profile engine.Profile, mode engine.Mode, cfg Config) (*engine.Engine, error) {
	e := engine.New(profile, mode)
	if err := Populate(e, cfg); err != nil {
		return nil, err
	}
	return e, nil
}

// Populate installs the bench schema, UDFs, secondary indexes and generated
// data on an existing (possibly durable) engine.
func Populate(e *engine.Engine, cfg Config) error {
	if err := e.ExecScript(Schema + UDFs); err != nil {
		return err
	}
	for _, ix := range [][2]string{
		{"orders", "custkey"},
		{"lineitem", "partkey"},
		{"part", "category"},
		{"categoryancestor", "category"},
		{"customer", "category"},
	} {
		if err := e.CreateIndex(ix[0], ix[1]); err != nil {
			return err
		}
	}
	return Load(e, cfg)
}

// TableData is one generated table's rows, in insertion order.
type TableData struct {
	Name string
	Rows []storage.Row
}

// ShardKeys is the hash-partitioning the sharded tier uses for this schema:
// the two large fact tables partition by the key their workload correlates
// on (orders per customer, lineitem per part); every other table is small
// reference data and is replicated to all shards.
var ShardKeys = map[string]string{
	"orders":   "custkey",
	"lineitem": "partkey",
}

// ShardedSchema is Schema re-rendered with SHARD KEY declarations from
// ShardKeys, for loading through the shard router. Parsing and re-rendering
// (rather than string surgery) keeps it correct if Schema changes.
func ShardedSchema() (string, error) {
	script, err := parser.ParseScript(Schema)
	if err != nil {
		return "", fmt.Errorf("bench schema does not parse: %w", err)
	}
	var b strings.Builder
	for _, t := range script.Tables {
		if key, ok := ShardKeys[t.Name]; ok {
			t.ShardKey = key
		}
		b.WriteString(t.SQL())
		b.WriteString("\n")
	}
	return b.String(), nil
}

// Load fills all tables deterministically from the config.
func Load(e *engine.Engine, cfg Config) error {
	for _, t := range Generate(cfg) {
		if err := e.Load(t.Name, t.Rows); err != nil {
			return err
		}
	}
	return nil
}

// Generate produces the deterministic dataset as rows per table, in load
// order. It is shared by Load (single node, rows straight into storage) and
// the shard router's load client (same rows rendered as INSERT literals), so
// a sharded cluster and a single-node baseline hold bit-identical data.
func Generate(cfg Config) []TableData {
	rng := rand.New(rand.NewSource(cfg.Seed))

	customers := make([]storage.Row, 0, cfg.Customers)
	orders := make([]storage.Row, 0, cfg.Customers*cfg.OrdersPerCustomer)
	orderKey := int64(0)
	for c := 1; c <= cfg.Customers; c++ {
		customers = append(customers, storage.Row{
			sqltypes.NewInt(int64(c)),
			sqltypes.NewString(fmt.Sprintf("Customer#%09d", c)),
			sqltypes.NewInt(int64(c % cfg.Categories)),
			sqltypes.NewInt(int64(c % 25)),
		})
		if c%10 == 0 {
			continue // ~10% of customers place no orders
		}
		for o := 0; o < cfg.OrdersPerCustomer; o++ {
			orderKey++
			orders = append(orders, storage.Row{
				sqltypes.NewInt(orderKey),
				sqltypes.NewInt(int64(c)),
				sqltypes.NewFloat(float64(rng.Intn(200_000)) + float64(rng.Intn(100))/100),
			})
		}
	}
	cats := make([]storage.Row, 0, cfg.Categories)
	ancestors := make([]storage.Row, 0, cfg.Categories*8)
	ancRow := int64(0)
	for cat := 1; cat <= cfg.Categories; cat++ {
		parent := cat / 2 // binary hierarchy; category 1 is the root
		cats = append(cats, storage.Row{
			sqltypes.NewInt(int64(cat)),
			sqltypes.NewInt(int64(parent)),
		})
		// Closure: cat's ancestors including itself.
		for a := cat; a >= 1; a /= 2 {
			ancRow++
			ancestors = append(ancestors, storage.Row{
				sqltypes.NewInt(ancRow),
				sqltypes.NewInt(int64(cat)),
				sqltypes.NewInt(int64(a)),
			})
			if a == 1 {
				break
			}
		}
	}
	catDiscounts := make([]storage.Row, 0, cfg.Categories)
	for cat := 0; cat < cfg.Categories; cat++ {
		catDiscounts = append(catDiscounts, storage.Row{
			sqltypes.NewInt(int64(cat)),
			sqltypes.NewFloat(0.01 + float64(cat%20)/100),
		})
	}
	parts := make([]storage.Row, 0, cfg.Parts)
	partcosts := make([]storage.Row, 0, cfg.Parts)
	partsupps := make([]storage.Row, 0, cfg.Parts)
	lineitems := make([]storage.Row, 0, cfg.Parts*cfg.LineitemsPerPart)
	liKey := int64(0)
	for p := 1; p <= cfg.Parts; p++ {
		parts = append(parts, storage.Row{
			sqltypes.NewInt(int64(p)),
			sqltypes.NewString(fmt.Sprintf("Part#%09d", p)),
			sqltypes.NewInt(int64(1 + p%cfg.Categories)),
		})
		partcosts = append(partcosts, storage.Row{
			sqltypes.NewInt(int64(p)),
			sqltypes.NewFloat(float64(5 + rng.Intn(95))),
		})
		partsupps = append(partsupps, storage.Row{
			sqltypes.NewInt(int64(p)),
			sqltypes.NewInt(int64(p)),
			sqltypes.NewInt(int64(p % 100)),
			sqltypes.NewFloat(float64(rng.Intn(1000)) / 10),
		})
		if p%11 == 0 {
			continue // parts that never sold
		}
		for l := 0; l < cfg.LineitemsPerPart; l++ {
			liKey++
			lineitems = append(lineitems, storage.Row{
				sqltypes.NewInt(liKey),
				sqltypes.NewInt(int64(p)),
				sqltypes.NewFloat(float64(50 + rng.Intn(500))),
				sqltypes.NewInt(int64(1 + rng.Intn(6))),
				sqltypes.NewFloat(float64(rng.Intn(40))),
			})
		}
	}
	return []TableData{
		{"customer", customers},
		{"orders", orders},
		{"category", cats},
		{"categoryancestor", ancestors},
		{"categorydiscount", catDiscounts},
		{"part", parts},
		{"partcost", partcosts},
		{"partsupp", partsupps},
		{"lineitem", lineitems},
	}
}
