package bench

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// CanonicalCell normalizes one rendered (SQL-literal-syntax) cell for
// result comparison: every numeric rounds to 9 significant digits, because
// parallel aggregation may re-associate float additions across worker
// partials. The renderer prints whole-valued floats without a decimal point
// (12345.0 becomes "12345"), so integers and floats are indistinguishable
// here and ALL in-range numerics must canonicalize the same way for both
// sides of a comparison to agree; integers beyond float53 precision stay
// exact strings (a float could not have produced them losslessly). String
// literals arrive quoted and are left alone.
func CanonicalCell(s string) string {
	if s == "" || strings.HasPrefix(s, "'") {
		return s
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil || math.Abs(f) >= 1<<53 {
		return s
	}
	return fmt.Sprintf("f:%.9g", f)
}

// CanonicalRows renders a rendered-row multiset order-insensitively for
// comparison (shared by the udfserverd load client and the database/sql
// driver differential tests, so their float tolerance cannot drift apart).
func CanonicalRows(rows [][]string) string {
	keys := make([]string, len(rows))
	for i, r := range rows {
		cells := make([]string, len(r))
		for j, c := range r {
			cells[j] = CanonicalCell(c)
		}
		keys[i] = strings.Join(cells, "\x1f")
	}
	sort.Strings(keys)
	return strings.Join(keys, "\x1e")
}
