// Package engine is the database facade: it owns the catalog, storage, the
// planner and the UDF interpreter, and exposes Query/Explain entry points
// with three execution modes — iterative UDF invocation (the paper's
// baseline), forced decorrelation (the paper's rewrite tool), and
// cost-based choice between the two (the integration the paper argues for).
package engine

import (
	"fmt"
	"strings"

	"udfdecorr/internal/algebra"
	"udfdecorr/internal/ast"
	"udfdecorr/internal/catalog"
	"udfdecorr/internal/core"
	"udfdecorr/internal/exec"
	"udfdecorr/internal/parser"
	"udfdecorr/internal/plan"
	"udfdecorr/internal/sqltypes"
	"udfdecorr/internal/storage"
)

// Mode selects how queries with UDF invocations execute.
type Mode uint8

// Execution modes.
const (
	// ModeIterative never rewrites: UDFs run tuple-at-a-time through the
	// interpreter.
	ModeIterative Mode = iota
	// ModeRewrite always decorrelates when the rules fully remove the
	// Apply operators, else falls back to iterative execution.
	ModeRewrite
	// ModeCostBased plans both forms and picks the cheaper estimate.
	ModeCostBased
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeIterative:
		return "iterative"
	case ModeRewrite:
		return "rewrite"
	case ModeCostBased:
		return "cost-based"
	default:
		return "?"
	}
}

// Profile models the two commercial systems of the paper's evaluation.
// SYS1 caches embedded-statement plans inside UDFs; SYS2 re-plans every
// embedded query on each invocation, modelling a system with heavier
// per-invocation overhead (see DESIGN.md).
type Profile struct {
	Name       string
	CachePlans bool
	// Vectorized selects the batch execution path: operators exchange
	// column-vector batches instead of single rows, and scalar expressions
	// evaluate batch-at-a-time. Results are identical to the row engine
	// (the differential suite asserts this); only throughput changes.
	Vectorized bool
}

// Profiles.
var (
	SYS1 = Profile{Name: "SYS1", CachePlans: true}
	SYS2 = Profile{Name: "SYS2", CachePlans: false}
)

// Engine is an in-memory SQL engine with procedural UDF support.
type Engine struct {
	Cat     *catalog.Catalog
	Store   *storage.Store
	Interp  *exec.Interp
	Planner *plan.Planner
	Mode    Mode
	Profile Profile
}

// New creates an empty engine.
func New(profile Profile, mode Mode) *Engine {
	e := &Engine{
		Cat:     catalog.New(),
		Store:   storage.NewStore(),
		Mode:    mode,
		Profile: profile,
	}
	e.Interp = exec.NewInterp(e.Cat, e.planEmbedded, profile.CachePlans)
	e.Planner = plan.New(e.Cat, e.Store, e.Interp)
	e.Planner.Vectorized = profile.Vectorized
	return e
}

// SetVectorized toggles the batch execution path at runtime (both for
// top-level queries and for embedded statements planned after the call).
func (e *Engine) SetVectorized(on bool) {
	e.Profile.Vectorized = on
	e.Planner.Vectorized = on
}

// planEmbedded algebrizes and plans a query embedded in a UDF body. The
// normalization pass gives embedded queries the ordinary optimizations
// (predicate pushdown into joins) a commercial system performs.
func (e *Engine) planEmbedded(sel *ast.SelectStmt) (exec.Node, error) {
	alg := core.NewAlgebrizer(e.Cat)
	rel, err := alg.Query(sel)
	if err != nil {
		return nil, err
	}
	return e.Planner.Build(core.Normalize(e.Cat, rel))
}

// ExecScript runs DDL: CREATE TABLE and CREATE FUNCTION statements.
// Any SELECT statements in the script are ignored (use Query).
func (e *Engine) ExecScript(src string) error {
	script, err := parser.ParseScript(src)
	if err != nil {
		return err
	}
	for _, t := range script.Tables {
		meta, err := e.Cat.AddTableFromAST(t)
		if err != nil {
			return err
		}
		if _, err := e.Store.CreateTable(meta); err != nil {
			return err
		}
	}
	for _, f := range script.Functions {
		if _, err := e.Cat.AddFunction(f); err != nil {
			return err
		}
	}
	for _, ins := range script.Inserts {
		if err := e.execInsert(ins); err != nil {
			return err
		}
	}
	return nil
}

// execInsert evaluates a top-level INSERT's value expressions (constants
// and pure scalar expressions) and appends the row.
func (e *Engine) execInsert(ins *ast.InsertStmt) error {
	meta, ok := e.Cat.Table(ins.Table)
	if !ok {
		return fmt.Errorf("unknown table %q", ins.Table)
	}
	if len(ins.Values) != len(meta.Cols) {
		return fmt.Errorf("INSERT into %s: %d values for %d columns",
			ins.Table, len(ins.Values), len(meta.Cols))
	}
	ctx := exec.NewCtx(e.Interp)
	row := make(storage.Row, len(ins.Values))
	for i, expr := range ins.Values {
		v, err := e.Interp.EvalProcExpr(ctx, expr)
		if err != nil {
			return fmt.Errorf("INSERT into %s: %w", ins.Table, err)
		}
		row[i] = v
	}
	return e.Load(ins.Table, []storage.Row{row})
}

// CreateIndex declares a secondary hash index on a column.
func (e *Engine) CreateIndex(table, col string) error {
	meta, ok := e.Cat.Table(table)
	if !ok {
		return fmt.Errorf("unknown table %q", table)
	}
	if meta.ColIndex(col) < 0 {
		return fmt.Errorf("table %q has no column %q", table, col)
	}
	meta.Indexes = append(meta.Indexes, col)
	return nil
}

// Load appends rows to a table.
func (e *Engine) Load(table string, rows []storage.Row) error {
	t, ok := e.Store.Table(table)
	if !ok {
		return fmt.Errorf("unknown table %q", table)
	}
	return t.Append(rows...)
}

// Result is a materialized query result.
type Result struct {
	Cols []string
	Rows []storage.Row
	// Counters are the execution metrics (UDF invocations etc.).
	Counters exec.Counters
	// Rewritten reports whether the decorrelated form was executed.
	Rewritten bool
}

// Format renders the result as an aligned text table.
func (r *Result) Format() string {
	var b strings.Builder
	b.WriteString(strings.Join(r.Cols, "\t"))
	b.WriteString("\n")
	for _, row := range r.Rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = v.Display()
		}
		b.WriteString(strings.Join(parts, "\t"))
		b.WriteString("\n")
	}
	return b.String()
}

// prepare parses, algebrizes and (depending on mode) rewrites a query,
// returning the plan to execute.
func (e *Engine) prepare(sql string) (exec.Node, bool, []string, error) {
	sel, err := parser.ParseQuery(sql)
	if err != nil {
		return nil, false, nil, err
	}
	alg := core.NewAlgebrizer(e.Cat)
	rel, err := alg.Query(sel)
	if err != nil {
		return nil, false, nil, err
	}

	useRewrite := false
	var rewritten algebra.Rel
	if e.Mode != ModeIterative {
		d := core.NewDecorrelator(e.Cat)
		res, err := d.Rewrite(rel)
		if err != nil {
			return nil, false, nil, err
		}
		if res.Decorrelated && len(res.InlinedUDFs) >= 0 {
			rewritten = res.Rel
			useRewrite = true
			for _, agg := range res.NewAggs {
				if _, exists := e.Cat.Aggregate(agg.Name); !exists {
					if err := e.Cat.AddAggregate(agg); err != nil {
						return nil, false, nil, err
					}
				}
			}
		}
	}
	if useRewrite && e.Mode == ModeCostBased {
		// Correlated evaluation remains an alternative: compare cost
		// estimates of the two forms. The iterative form streams the outer
		// rows and pays a per-invocation penalty (embedded statements).
		origCost := e.Planner.CostOf(rel) + e.Planner.Estimate(rel)*iterativeRowCost
		rewCost := e.Planner.CostOf(rewritten)
		if origCost < rewCost {
			useRewrite = false
		}
	}

	target := rel
	if useRewrite {
		target = rewritten
	}
	target = core.Normalize(e.Cat, target)
	node, choices, err := e.Planner.BuildExplain(target)
	if err != nil {
		return nil, false, nil, err
	}
	return node, useRewrite, choices, nil
}

// iterativeRowCost is the assumed per-row cost multiplier of invoking a UDF
// iteratively (each invocation runs at least one embedded query).
const iterativeRowCost = 50

// Query executes a SELECT statement.
func (e *Engine) Query(sql string) (*Result, error) {
	node, rewrote, _, err := e.prepare(sql)
	if err != nil {
		return nil, err
	}
	ctx := exec.NewCtx(e.Interp)
	rows, err := exec.Drain(node, ctx)
	if err != nil {
		return nil, err
	}
	cols := make([]string, len(node.Schema()))
	for i, c := range node.Schema() {
		cols[i] = c.Name
	}
	return &Result{Cols: cols, Rows: rows, Counters: *ctx.Counters, Rewritten: rewrote}, nil
}

// Explain returns a description of the chosen plan: whether the query was
// rewritten and which physical operators were selected.
func (e *Engine) Explain(sql string) (string, error) {
	_, rewrote, choices, err := e.prepare(sql)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	executor := "row"
	if e.Profile.Vectorized {
		executor = "vectorized"
	}
	fmt.Fprintf(&b, "mode: %s\nexecutor: %s\nrewritten: %v\n", e.Mode, executor, rewrote)
	for _, c := range choices {
		fmt.Fprintf(&b, "  %s\n", c)
	}
	return b.String(), nil
}

// RewriteSQL runs only the rewrite pipeline and reports the decorrelated
// algebra (for the udfrewrite tool and tests).
func (e *Engine) RewriteSQL(sql string) (*core.Result, error) {
	sel, err := parser.ParseQuery(sql)
	if err != nil {
		return nil, err
	}
	alg := core.NewAlgebrizer(e.Cat)
	rel, err := alg.Query(sel)
	if err != nil {
		return nil, err
	}
	return core.NewDecorrelator(e.Cat).Rewrite(rel)
}

// MustLoadInts is a test helper: loads rows given as int64 matrices.
func (e *Engine) MustLoadInts(table string, rows [][]int64) {
	out := make([]storage.Row, len(rows))
	for i, r := range rows {
		row := make(storage.Row, len(r))
		for j, v := range r {
			row[j] = sqltypes.NewInt(v)
		}
		out[i] = row
	}
	if err := e.Load(table, out); err != nil {
		panic(err)
	}
}
