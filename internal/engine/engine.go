// Package engine is the database facade: it owns the catalog, storage, the
// planner and the UDF interpreter, and exposes Query/Explain entry points
// with three execution modes — iterative UDF invocation (the paper's
// baseline), forced decorrelation (the paper's rewrite tool), and
// cost-based choice between the two (the integration the paper argues for).
package engine

import (
	"context"
	"fmt"
	"strings"

	"udfdecorr/internal/algebra"
	"udfdecorr/internal/ast"
	"udfdecorr/internal/catalog"
	"udfdecorr/internal/core"
	"udfdecorr/internal/exec"
	"udfdecorr/internal/parser"
	"udfdecorr/internal/plan"
	"udfdecorr/internal/sqltypes"
	"udfdecorr/internal/storage"
)

// Mode selects how queries with UDF invocations execute.
type Mode uint8

// Execution modes.
const (
	// ModeIterative never rewrites: UDFs run tuple-at-a-time through the
	// interpreter.
	ModeIterative Mode = iota
	// ModeRewrite always decorrelates when the rules fully remove the
	// Apply operators, else falls back to iterative execution.
	ModeRewrite
	// ModeCostBased plans both forms and picks the cheaper estimate.
	ModeCostBased
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeIterative:
		return "iterative"
	case ModeRewrite:
		return "rewrite"
	case ModeCostBased:
		return "cost-based"
	default:
		return "?"
	}
}

// Profile models the two commercial systems of the paper's evaluation.
// SYS1 caches embedded-statement plans inside UDFs; SYS2 re-plans every
// embedded query on each invocation, modelling a system with heavier
// per-invocation overhead (see DESIGN.md).
type Profile struct {
	Name       string
	CachePlans bool
	// Vectorized selects the batch execution path: operators exchange
	// column-vector batches instead of single rows, and scalar expressions
	// evaluate batch-at-a-time. Results are identical to the row engine
	// (the differential suite asserts this); only throughput changes.
	Vectorized bool
	// Parallelism is the intra-query worker degree for vectorized plans
	// (<= 1 disables): pipeline segments run morsel-driven on N workers and
	// aggregations build per-worker partial states. Parallel plans may emit
	// rows in any order and may re-associate floating-point aggregation, so
	// results are multiset-equal (exactly equal for integer aggregates) to
	// the serial executor's.
	Parallelism int
}

// Profiles.
var (
	SYS1 = Profile{Name: "SYS1", CachePlans: true}
	SYS2 = Profile{Name: "SYS2", CachePlans: false}
)

// Engine is an in-memory SQL engine with procedural UDF support.
//
// Concurrency: Query, Explain, Prepare, Run and RewriteSQL are safe to call
// concurrently from many goroutines on one Engine, PROVIDED no DDL or data
// load runs concurrently (ExecScript, CreateIndex and Load require exclusive
// access — the query service serializes them behind a write lock). The
// Mode/Profile fields and SetVectorized are configuration, not runtime
// switches: mutate them only while no queries are in flight. Sessions that
// need distinct settings over the same data use NewShared to get independent
// engine views of one catalog+store.
type Engine struct {
	Cat     *catalog.Catalog
	Store   *storage.Store
	Interp  *exec.Interp
	Planner *plan.Planner
	Mode    Mode
	Profile Profile
	// Durable is the write-ahead-log/checkpoint state of an engine opened
	// with OpenDurable; nil for volatile engines (New / NewShared).
	Durable *Durability
}

// New creates an empty engine.
func New(profile Profile, mode Mode) *Engine {
	return NewShared(catalog.New(), storage.NewStore(), profile, mode)
}

// NewShared creates an engine view over an existing catalog and store. Each
// view has its own interpreter (and therefore its own embedded-plan cache)
// and planner settings, so concurrent sessions with different modes,
// profiles or executors can share one dataset.
func NewShared(cat *catalog.Catalog, store *storage.Store, profile Profile, mode Mode) *Engine {
	e := &Engine{
		Cat:     cat,
		Store:   store,
		Mode:    mode,
		Profile: profile,
	}
	e.Interp = exec.NewInterp(e.Cat, e.planEmbedded, profile.CachePlans)
	e.Planner = plan.New(e.Cat, e.Store, e.Interp)
	e.Planner.Vectorized = profile.Vectorized
	e.Planner.Parallelism = profile.Parallelism
	return e
}

// SetVectorized toggles the batch execution path at runtime (both for
// top-level queries and for embedded statements planned after the call).
func (e *Engine) SetVectorized(on bool) {
	e.Profile.Vectorized = on
	e.Planner.Vectorized = on
}

// SetParallelism sets the intra-query worker degree for subsequent
// top-level vectorized plans (<= 1 disables).
func (e *Engine) SetParallelism(n int) {
	e.Profile.Parallelism = n
	e.Planner.Parallelism = n
}

// planEmbedded algebrizes and plans a query embedded in a UDF body. The
// normalization pass gives embedded queries the ordinary optimizations
// (predicate pushdown into joins) a commercial system performs.
func (e *Engine) planEmbedded(sel *ast.SelectStmt) (exec.Node, error) {
	alg := core.NewAlgebrizer(e.Cat)
	rel, err := alg.Query(sel)
	if err != nil {
		return nil, err
	}
	// Embedded statements execute once per UDF invocation: plan them
	// serially (worker fan-out per invocation would only add overhead).
	return e.Planner.BuildSerial(core.Normalize(e.Cat, rel))
}

// ExecScript runs DDL: CREATE TABLE and CREATE FUNCTION statements.
// Any SELECT statements in the script are ignored (use Query).
func (e *Engine) ExecScript(src string) error {
	return e.ExecScriptContext(context.Background(), src)
}

// ExecScriptContext is ExecScript honoring cancellation between statements
// (and inside INSERT value evaluation, which may invoke UDFs).
func (e *Engine) ExecScriptContext(ctx context.Context, src string) error {
	script, err := parser.ParseScript(src)
	if err != nil {
		return err
	}
	return e.ExecParsedContext(ctx, script)
}

// ExecParsedContext executes an already-parsed script's statements in source
// order. BEGIN/COMMIT/ROLLBACK delimit script-local transactions: INSERTs
// inside one are buffered and published atomically at COMMIT. A transaction
// left open at end of script (or abandoned by an error) is rolled back.
// Sessions that span transactions across requests manage engine.Txn
// themselves and must not send BEGIN through here with statements split
// across calls.
func (e *Engine) ExecParsedContext(ctx context.Context, script *ast.Script) error {
	if ctx == nil {
		ctx = context.Background()
	}
	var txn *Txn
	defer func() {
		if txn != nil {
			txn.Rollback()
		}
	}()
	for _, stmt := range script.Stmts {
		if err := ctx.Err(); err != nil {
			return err
		}
		switch s := stmt.(type) {
		case *ast.CreateTableStmt:
			meta, err := e.Cat.AddTableFromAST(s)
			if err != nil {
				return err
			}
			if _, err := e.Store.CreateTable(meta); err != nil {
				return err
			}
		case *ast.CreateFunctionStmt:
			if _, err := e.Cat.AddFunction(s); err != nil {
				return err
			}
		case *ast.InsertStmt:
			if txn != nil {
				if err := txn.Insert(ctx, s); err != nil {
					return err
				}
			} else if err := e.ExecInsert(ctx, s); err != nil {
				return err
			}
		case *ast.TxnStmt:
			switch s.Kind {
			case ast.TxnBegin:
				if txn != nil {
					return fmt.Errorf("BEGIN: transaction already in progress")
				}
				txn = e.Begin()
			case ast.TxnCommit:
				if txn == nil {
					return fmt.Errorf("COMMIT: no transaction in progress")
				}
				err := txn.Commit()
				txn = nil
				if err != nil {
					return err
				}
			case ast.TxnRollback:
				if txn == nil {
					return fmt.Errorf("ROLLBACK: no transaction in progress")
				}
				txn.Rollback()
				txn = nil
			}
		case *ast.SelectStmt:
			// Scripts ignore bare SELECTs (use Query).
		}
	}
	return nil
}

// ExecInsert evaluates a top-level INSERT's value expressions (constants
// and pure scalar expressions) and appends the row.
func (e *Engine) ExecInsert(goctx context.Context, ins *ast.InsertStmt) error {
	ctx := exec.NewCtxContext(goctx, e.Interp)
	row, err := e.evalInsertRow(ctx, ins)
	if err != nil {
		return err
	}
	return e.Load(ins.Table, []storage.Row{row})
}

// evalInsertRow checks arity against the catalog and evaluates the value
// expressions under ctx (whose snapshot, if set, scopes any UDF reads).
func (e *Engine) evalInsertRow(ctx *exec.Ctx, ins *ast.InsertStmt) (storage.Row, error) {
	meta, ok := e.Cat.Table(ins.Table)
	if !ok {
		return nil, fmt.Errorf("unknown table %q", ins.Table)
	}
	if len(ins.Values) != len(meta.Cols) {
		return nil, fmt.Errorf("INSERT into %s: %d values for %d columns",
			ins.Table, len(ins.Values), len(meta.Cols))
	}
	row := make(storage.Row, len(ins.Values))
	for i, expr := range ins.Values {
		v, err := e.Interp.EvalProcExpr(ctx, expr)
		if err != nil {
			return nil, fmt.Errorf("INSERT into %s: %w", ins.Table, err)
		}
		row[i] = v
	}
	return row, nil
}

// CreateIndex declares a secondary hash index on a column. This is DDL: it
// bumps the catalog schema version (invalidating cached plans) and must not
// run concurrently with queries.
func (e *Engine) CreateIndex(table, col string) error {
	return e.Cat.AddIndex(table, col)
}

// Load appends rows to a table.
func (e *Engine) Load(table string, rows []storage.Row) error {
	t, ok := e.Store.Table(table)
	if !ok {
		return fmt.Errorf("unknown table %q", table)
	}
	return t.Append(rows...)
}

// Result is a materialized query result.
type Result struct {
	Cols []string
	Rows []storage.Row
	// Counters are the execution metrics (UDF invocations etc.).
	Counters exec.Counters
	// Rewritten reports whether the decorrelated form was executed.
	Rewritten bool
}

// Format renders the result as an aligned text table.
func (r *Result) Format() string {
	var b strings.Builder
	b.WriteString(strings.Join(r.Cols, "\t"))
	b.WriteString("\n")
	for _, row := range r.Rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = v.Display()
		}
		b.WriteString(strings.Join(parts, "\t"))
		b.WriteString("\n")
	}
	return b.String()
}

// Prepared is a compiled query: the physical plan plus everything needed to
// execute or explain it. A Prepared is immutable and safe to execute
// concurrently (and from different engine views sharing the same catalog and
// store): all execution state flows through the per-call Ctx, so the query
// service caches Prepared values across sessions.
type Prepared struct {
	Node      exec.Node
	Cols      []string
	Rewritten bool
	Choices   []string
	// Parallelism is the plan's effective intra-query degree: the configured
	// degree when the parallel rewrite fired, 1 when the plan stayed serial
	// (no parallel-safe decomposition, or parallelism off). The choice log
	// names each parallel operator.
	Parallelism int
}

// Describe renders the plan description shown by EXPLAIN (shared by
// Engine.Explain and the query service's /explain endpoint, so the two
// surfaces cannot drift; the golden tests pin this format).
func (p *Prepared) Describe(mode Mode, vectorized bool) string {
	var b strings.Builder
	executor := "row"
	if vectorized {
		executor = "vectorized"
	}
	fmt.Fprintf(&b, "mode: %s\nexecutor: %s\nrewritten: %v\n", mode, executor, p.Rewritten)
	if p.Parallelism > 1 {
		fmt.Fprintf(&b, "parallelism: %d\n", p.Parallelism)
	}
	for _, c := range p.Choices {
		fmt.Fprintf(&b, "  %s\n", c)
	}
	return b.String()
}

// Prepare parses, algebrizes and (depending on mode) rewrites a query,
// returning the compiled plan. This is the per-invocation planning work the
// plan cache amortizes.
func (e *Engine) Prepare(sql string) (*Prepared, error) {
	return e.prepare(sql, false)
}

// PreparePartialAgg prepares sql in shard-local partial-aggregate mode: the
// plan's root must be a plain projection over an all-mergeable GROUP BY
// (the shape the shard router classifies as scatter-merge), and the
// prepared plan emits the GROUP BY's raw output — group keys followed by
// per-shard partial aggregate columns, with avg decomposed into sum+count —
// instead of the final projection. The router's gather merges those
// partials across shards and applies the original projection itself.
func (e *Engine) PreparePartialAgg(sql string) (*Prepared, error) {
	return e.prepare(sql, true)
}

func (e *Engine) prepare(sql string, partialAgg bool) (*Prepared, error) {
	sel, err := parser.ParseQuery(sql)
	if err != nil {
		return nil, err
	}
	alg := core.NewAlgebrizer(e.Cat)
	rel, err := alg.Query(sel)
	if err != nil {
		return nil, err
	}

	useRewrite := false
	var rewritten algebra.Rel
	if e.Mode != ModeIterative {
		d := core.NewDecorrelator(e.Cat)
		res, err := d.Rewrite(rel)
		if err != nil {
			return nil, err
		}
		if res.Decorrelated {
			rewritten = res.Rel
			useRewrite = true
			for _, agg := range res.NewAggs {
				// Auxiliary aggregates are content-addressed, so the
				// check-and-register is idempotent under concurrency.
				if err := e.Cat.EnsureAggregate(agg); err != nil {
					return nil, err
				}
			}
		}
	}
	if useRewrite && e.Mode == ModeCostBased {
		// Correlated evaluation remains an alternative: compare cost
		// estimates of the two forms. The iterative form streams the outer
		// rows and pays a per-invocation penalty (embedded statements).
		origCost := e.Planner.CostOf(rel) + e.Planner.Estimate(rel)*iterativeRowCost
		rewCost := e.Planner.CostOf(rewritten)
		if origCost < rewCost {
			useRewrite = false
		}
	}

	target := rel
	if useRewrite {
		target = rewritten
	}
	target = core.Normalize(e.Cat, target)
	if partialAgg {
		target, err = partialAggRewrite(target)
		if err != nil {
			return nil, err
		}
	}
	node, choices, degree, err := e.Planner.BuildExplain(target)
	if err != nil {
		return nil, err
	}
	cols := make([]string, len(node.Schema()))
	for i, c := range node.Schema() {
		cols[i] = c.Name
	}
	return &Prepared{Node: node, Cols: cols, Rewritten: useRewrite,
		Choices: choices, Parallelism: degree}, nil
}

// iterativeRowCost is the assumed per-row cost multiplier of invoking a UDF
// iteratively (each invocation runs at least one embedded query).
const iterativeRowCost = 50

// Run executes a prepared query under a fresh context, materializing the
// full result (a thin wrapper over the streaming RunContext). The Prepared
// may have been compiled by a different engine view over the same catalog
// and store (the shared plan cache path): UDF calls resolve through this
// engine's interpreter via the context.
func (e *Engine) Run(p *Prepared) (*Result, error) {
	return e.RunMaterialized(context.Background(), p)
}

// RunMaterialized executes a prepared query to completion under ctx,
// returning the materialized result (or ctx's error if cancelled mid-run).
func (e *Engine) RunMaterialized(ctx context.Context, p *Prepared) (*Result, error) {
	rows, err := e.RunContext(ctx, p)
	if err != nil {
		return nil, err
	}
	return rows.Materialize()
}

// Query executes a SELECT statement, materializing the full result.
func (e *Engine) Query(sql string) (*Result, error) {
	p, err := e.Prepare(sql)
	if err != nil {
		return nil, err
	}
	return e.Run(p)
}

// Explain returns a description of the chosen plan: whether the query was
// rewritten and which physical operators were selected.
func (e *Engine) Explain(sql string) (string, error) {
	p, err := e.Prepare(sql)
	if err != nil {
		return "", err
	}
	return p.Describe(e.Mode, e.Profile.Vectorized), nil
}

// QueryAnalyze executes sql with per-operator instrumentation, returning
// both the materialized result and the annotated plan tree (EXPLAIN
// ANALYZE). Instrumentation never changes results — the differential corpus
// asserts it.
func (e *Engine) QueryAnalyze(ctx context.Context, sql string) (*Result, string, error) {
	p, err := e.PrepareContext(ctx, sql)
	if err != nil {
		return nil, "", err
	}
	rows, err := e.RunContextAnalyze(ctx, p, nil, nil)
	if err != nil {
		return nil, "", err
	}
	res, err := rows.Materialize()
	if err != nil {
		return nil, "", err
	}
	return res, rows.Analyze(), nil
}

// ExplainAnalyze executes sql and returns only the annotated plan tree.
func (e *Engine) ExplainAnalyze(ctx context.Context, sql string) (string, error) {
	_, plan, err := e.QueryAnalyze(ctx, sql)
	return plan, err
}

// RewriteSQL runs only the rewrite pipeline and reports the decorrelated
// algebra (for the udfrewrite tool and tests).
func (e *Engine) RewriteSQL(sql string) (*core.Result, error) {
	sel, err := parser.ParseQuery(sql)
	if err != nil {
		return nil, err
	}
	alg := core.NewAlgebrizer(e.Cat)
	rel, err := alg.Query(sel)
	if err != nil {
		return nil, err
	}
	return core.NewDecorrelator(e.Cat).Rewrite(rel)
}

// MustLoadInts is a test helper: loads rows given as int64 matrices.
func (e *Engine) MustLoadInts(table string, rows [][]int64) {
	out := make([]storage.Row, len(rows))
	for i, r := range rows {
		row := make(storage.Row, len(r))
		for j, v := range r {
			row[j] = sqltypes.NewInt(v)
		}
		out[i] = row
	}
	if err := e.Load(table, out); err != nil {
		panic(err)
	}
}
