package engine_test

// Streaming API tests: Rows cursor semantics (Next/Scan/Columns/Err/Close),
// cancellation on the row path (mid-scan and inside a runaway UDF) and on
// the parallel vectorized path (mid-morsel at parallelism 4), asserting
// cancellation surfaces as context.Canceled within a row/batch boundary and
// that parallel workers do not leak goroutines.

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"udfdecorr/internal/engine"
	"udfdecorr/internal/exec"
)

// streamFixture builds an engine with one table t(k, v) of n rows
// (k = i, v = i % 97).
func streamFixture(t *testing.T, profile engine.Profile, mode engine.Mode, n int) *engine.Engine {
	t.Helper()
	e := engine.New(profile, mode)
	if err := e.ExecScript(`create table t (k int, v int);`); err != nil {
		t.Fatal(err)
	}
	rows := make([][]int64, n)
	for i := range rows {
		rows[i] = []int64{int64(i), int64(i % 97)}
	}
	e.MustLoadInts("t", rows)
	return e
}

func TestRowsCursorBasics(t *testing.T) {
	for _, vectorized := range []bool{false, true} {
		profile := engine.SYS1
		profile.Vectorized = vectorized
		e := streamFixture(t, profile, engine.ModeRewrite, 10)
		rows, err := e.QueryContext(context.Background(), "select k, v from t where k < 4")
		if err != nil {
			t.Fatal(err)
		}
		if got := rows.Columns(); len(got) != 2 || got[0] != "k" || got[1] != "v" {
			t.Fatalf("vectorized=%v: Columns() = %v", vectorized, got)
		}
		var ks []int64
		for rows.Next() {
			var k, v int64
			if err := rows.Scan(&k, &v); err != nil {
				t.Fatal(err)
			}
			if v != k%97 {
				t.Fatalf("vectorized=%v: bad row (%d, %d)", vectorized, k, v)
			}
			ks = append(ks, k)
		}
		if err := rows.Err(); err != nil {
			t.Fatalf("vectorized=%v: Err() = %v", vectorized, err)
		}
		if len(ks) != 4 {
			t.Fatalf("vectorized=%v: streamed %d rows, want 4", vectorized, len(ks))
		}
		// Close is idempotent, including after auto-close at end of stream.
		if err := rows.Close(); err != nil {
			t.Fatal(err)
		}
		if err := rows.Close(); err != nil {
			t.Fatal(err)
		}
		if rows.Next() {
			t.Fatalf("vectorized=%v: Next() after close returned true", vectorized)
		}
	}
}

func TestRowsEarlyCloseFiresOnCloseOnce(t *testing.T) {
	e := streamFixture(t, engine.SYS1, engine.ModeRewrite, 100)
	rows, err := e.QueryContext(context.Background(), "select k from t")
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	var closeErr error
	rows.OnClose(func(err error) { calls++; closeErr = err })
	if !rows.Next() {
		t.Fatal("no first row")
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	_ = rows.Close()
	if calls != 1 {
		t.Fatalf("OnClose fired %d times, want 1", calls)
	}
	if closeErr != nil {
		t.Fatalf("OnClose got %v for a clean early close", closeErr)
	}
}

func TestQueryContextCancelledBeforeRun(t *testing.T) {
	e := streamFixture(t, engine.SYS1, engine.ModeRewrite, 10)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.QueryContext(ctx, "select k from t"); !errors.Is(err, context.Canceled) {
		t.Fatalf("QueryContext on cancelled ctx = %v, want context.Canceled", err)
	}
}

func TestCancelMidScanRowPath(t *testing.T) {
	const n = 50_000
	e := streamFixture(t, engine.SYS1, engine.ModeRewrite, n)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rows, err := e.QueryContext(ctx, "select k from t where v >= 0")
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if !rows.Next() {
		t.Fatalf("no first row: %v", rows.Err())
	}
	cancel()
	got := 1
	for rows.Next() {
		got++
	}
	if !errors.Is(rows.Err(), context.Canceled) {
		t.Fatalf("Err() = %v, want context.Canceled", rows.Err())
	}
	// The row path checks per pull: at most one extra row after cancel.
	if got >= n {
		t.Fatalf("streamed all %d rows despite cancellation", got)
	}
}

func TestTimeoutCancelsRunawayUDF(t *testing.T) {
	e := streamFixture(t, engine.SYS1, engine.ModeIterative, 1)
	if err := e.ExecScript(`
create function spin(int n) returns int as
begin
  int i = 0;
  while i < n
  begin
    i = i + 1;
  end
  return i;
end
`); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	p, err := e.PrepareContext(ctx, "select spin(100000000) from t")
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.RunMaterialized(ctx, p)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("runaway UDF returned %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout took %s to take effect", elapsed)
	}
}

// waitGoroutines polls until the goroutine count drops back to the
// baseline (parallel workers unwind asynchronously after cancellation).
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d running, baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestCancelMidMorselParallelNoLeak(t *testing.T) {
	defer func(old int) { exec.MorselRows = old }(exec.MorselRows)
	exec.MorselRows = 64

	profile := engine.SYS1
	profile.Vectorized = true
	profile.Parallelism = 4
	const n = 20_000
	e := streamFixture(t, profile, engine.ModeRewrite, n)

	p, err := e.Prepare("select k from t where v >= 0")
	if err != nil {
		t.Fatal(err)
	}
	if p.Parallelism <= 1 {
		t.Fatalf("plan did not parallelize (degree %d); the test needs an Exchange", p.Parallelism)
	}

	baseline := runtime.NumGoroutine()
	for round := 0; round < 5; round++ {
		ctx, cancel := context.WithCancel(context.Background())
		rows, err := e.RunContext(ctx, p)
		if err != nil {
			cancel()
			t.Fatal(err)
		}
		if !rows.Next() {
			t.Fatalf("round %d: no first row: %v", round, rows.Err())
		}
		cancel()
		got := 1
		for rows.Next() {
			got++
		}
		if !errors.Is(rows.Err(), context.Canceled) {
			t.Fatalf("round %d: Err() = %v, want context.Canceled", round, rows.Err())
		}
		if err := rows.Close(); err != nil {
			t.Fatalf("round %d: Close: %v", round, err)
		}
		if got >= n {
			t.Fatalf("round %d: streamed all %d rows despite cancellation", round, got)
		}
	}
	waitGoroutines(t, baseline)
}

func TestParallelStreamCompletesAfterCancelledSiblings(t *testing.T) {
	// A cancelled parallel stream must not poison subsequent executions of
	// the same shared Prepared.
	defer func(old int) { exec.MorselRows = old }(exec.MorselRows)
	exec.MorselRows = 64

	profile := engine.SYS1
	profile.Vectorized = true
	profile.Parallelism = 4
	const n = 10_000
	e := streamFixture(t, profile, engine.ModeRewrite, n)
	p, err := e.Prepare("select k from t where v >= 0")
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	rows, err := e.RunContext(ctx, p)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	rows.Next()
	cancel()
	for rows.Next() {
	}
	rows.Close()

	res, err := e.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != n {
		t.Fatalf("post-cancel run returned %d rows, want %d", len(res.Rows), n)
	}
}
