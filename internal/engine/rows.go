// Streaming query API: Rows is a pull cursor over an executing plan, the
// context-aware counterpart of the materializing Query/Run entry points
// (which are now thin wrappers over it). A Rows lazily drives the underlying
// exec.Node — batch-wise when the plan has a native vectorized path, row-wise
// otherwise — so the first row is visible before the last is computed, and a
// cancelled or timed-out context stops execution at the next row/batch
// boundary with context.Canceled / context.DeadlineExceeded.
package engine

import (
	"context"
	"fmt"

	"udfdecorr/internal/exec"
	"udfdecorr/internal/sqltypes"
	"udfdecorr/internal/storage"
)

// Rows is a streaming query result cursor:
//
//	rows, err := eng.QueryContext(ctx, sql)
//	if err != nil { ... }
//	defer rows.Close()
//	for rows.Next() {
//	    var k int64
//	    var name string
//	    if err := rows.Scan(&k, &name); err != nil { ... }
//	}
//	if err := rows.Err(); err != nil { ... }
//
// A Rows is single-goroutine (like the plan's execution context). It closes
// itself when the stream ends or fails, so resources (and any OnClose hook)
// release promptly even without an explicit Close; Close stays idempotent
// and is still required when abandoning a cursor early.
type Rows struct {
	cols      []string
	rewritten bool
	ectx      *exec.Ctx

	it    exec.Iter      // row path (nil when the plan is batch-native)
	bit   exec.BatchIter // batch path
	batch *exec.Batch    // current batch (owned by bit, valid until next pull)
	bpos  int            // next live index in batch

	cur      storage.Row
	err      error
	closed   bool
	returned int64 // rows handed to the caller (Next/Materialize)
	onClose  func(err error)

	// EXPLAIN ANALYZE state: the profiler attached to ectx, the plan root it
	// measured, and the plan header (mode/executor/choices) captured at start.
	prof   *exec.Profiler
	root   exec.Node
	header string
}

// RunContext starts executing a prepared query under the given context,
// returning a pull cursor. Planning side-effects are the same as Run's; no
// rows are produced until Next is called (pipeline breakers — sorts,
// aggregations — still do their work on the first pull).
func (e *Engine) RunContext(ctx context.Context, p *Prepared) (*Rows, error) {
	return e.RunContextSnap(ctx, p, nil, nil)
}

// RunContextSnap is RunContext executing against an explicit storage
// snapshot (plus an optional uncommitted-row overlay, as when a session
// transaction reads its own writes). A nil snap pins the store's current
// consistent cut, so every statement is snapshot-consistent: concurrent
// commits never surface mid-scan.
func (e *Engine) RunContextSnap(ctx context.Context, p *Prepared, snap *storage.Snapshot, overlay map[*storage.Table][]storage.Row) (*Rows, error) {
	return e.runContextSnap(ctx, p, snap, overlay, false)
}

// RunContextAnalyze is RunContextSnap with per-operator instrumentation
// enabled (EXPLAIN ANALYZE): every operator edge is wrapped with a timing
// shim, and after the stream ends Analyze renders the annotated plan tree.
// Results are identical to an uninstrumented run.
func (e *Engine) RunContextAnalyze(ctx context.Context, p *Prepared, snap *storage.Snapshot, overlay map[*storage.Table][]storage.Row) (*Rows, error) {
	return e.runContextSnap(ctx, p, snap, overlay, true)
}

func (e *Engine) runContextSnap(ctx context.Context, p *Prepared, snap *storage.Snapshot, overlay map[*storage.Table][]storage.Row, analyze bool) (*Rows, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ectx := exec.NewCtxContext(ctx, e.Interp)
	if snap == nil {
		snap = e.Store.Snapshot()
	}
	ectx.SetSnapshot(snap, overlay)
	r := &Rows{cols: p.Cols, rewritten: p.Rewritten, ectx: ectx}
	if analyze {
		r.prof = ectx.EnableProfiling()
		r.root = p.Node
		r.header = p.Describe(e.Mode, e.Profile.Vectorized)
	}
	if _, ok := p.Node.(exec.BatchNode); ok {
		bit, err := exec.OpenBatches(p.Node, ectx)
		if err != nil {
			return nil, err
		}
		r.bit = bit
	} else {
		it, err := exec.OpenRows(p.Node, ectx)
		if err != nil {
			return nil, err
		}
		r.it = it
	}
	return r, nil
}

// PrepareContext is Prepare honoring cancellation (planning is CPU-bound
// and brief; the check brackets it rather than interleaving).
func (e *Engine) PrepareContext(ctx context.Context, sql string) (*Prepared, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	return e.Prepare(sql)
}

// QueryContext parses, plans and starts a SELECT, returning the streaming
// cursor.
func (e *Engine) QueryContext(ctx context.Context, sql string) (*Rows, error) {
	p, err := e.PrepareContext(ctx, sql)
	if err != nil {
		return nil, err
	}
	return e.RunContext(ctx, p)
}

// Columns returns the output column names.
func (r *Rows) Columns() []string { return r.cols }

// Rewritten reports whether the decorrelated form is executing.
func (r *Rows) Rewritten() bool { return r.rewritten }

// Next advances to the next row, reporting false at end of stream or on
// error (distinguish with Err).
func (r *Rows) Next() bool {
	if r.closed || r.err != nil {
		return false
	}
	if err := r.ectx.Cancelled(); err != nil {
		r.fail(err)
		return false
	}
	if r.it != nil {
		row, ok, err := r.it.Next()
		if err != nil {
			r.fail(err)
			return false
		}
		if !ok {
			r.finish()
			return false
		}
		r.cur = row
		r.returned++
		return true
	}
	for {
		if r.batch != nil && r.bpos < r.batch.Len() {
			r.cur = r.batch.Row(r.batch.LiveAt(r.bpos))
			r.bpos++
			r.returned++
			return true
		}
		b, ok, err := r.bit.NextBatch(exec.DefaultBatchSize)
		if err != nil {
			r.fail(err)
			return false
		}
		if !ok {
			r.finish()
			return false
		}
		r.batch, r.bpos = b, 0
	}
}

// Row returns the current row (valid until the next Next call).
func (r *Rows) Row() storage.Row { return r.cur }

// Scan copies the current row into dest, one target per column. Supported
// targets: *sqltypes.Value, *any, *int64, *float64, *string, *bool (numeric
// targets convert between int and float; NULL only scans into *sqltypes.Value
// or *any).
func (r *Rows) Scan(dest ...any) error {
	if r.cur == nil {
		return fmt.Errorf("engine: Scan called without a current row")
	}
	if len(dest) != len(r.cur) {
		return fmt.Errorf("engine: Scan got %d targets for %d columns", len(dest), len(r.cur))
	}
	for i, d := range dest {
		v := r.cur[i]
		switch t := d.(type) {
		case *sqltypes.Value:
			*t = v
		case *any:
			*t = v.Go()
		case *int64:
			iv, ok := v.AsInt()
			if !ok {
				return fmt.Errorf("engine: column %d (%s) is %s, not scannable into int64", i, r.cols[i], v.Kind())
			}
			*t = iv
		case *float64:
			fv, ok := v.AsFloat()
			if !ok {
				return fmt.Errorf("engine: column %d (%s) is %s, not scannable into float64", i, r.cols[i], v.Kind())
			}
			*t = fv
		case *string:
			if v.Kind() != sqltypes.KindString {
				return fmt.Errorf("engine: column %d (%s) is %s, not scannable into string", i, r.cols[i], v.Kind())
			}
			*t = v.Str()
		case *bool:
			if v.Kind() != sqltypes.KindBool {
				return fmt.Errorf("engine: column %d (%s) is %s, not scannable into bool", i, r.cols[i], v.Kind())
			}
			*t = v.Bool()
		default:
			return fmt.Errorf("engine: unsupported Scan target %T for column %d", d, i)
		}
	}
	return nil
}

// Err returns the error that terminated the stream, if any. End of stream
// is not an error; cancellation surfaces as context.Canceled (or
// DeadlineExceeded) from the offending pull.
func (r *Rows) Err() error { return r.err }

// Counters snapshots the execution counters. Parallel workers' counters are
// absorbed when their operator drains or closes, so read after the stream
// finished (Next returned false) or after Close for complete numbers.
func (r *Rows) Counters() exec.Counters { return *r.ectx.Counters }

// RowsReturned reports how many rows the caller has consumed so far (the
// final count once the stream ends). The slow-query log records it.
func (r *Rows) RowsReturned() int64 { return r.returned }

// Analyze renders the annotated per-operator plan tree of a cursor started
// with RunContextAnalyze ("" otherwise). Call after the stream finished —
// parallel workers' stats are absorbed on close, and operator times keep
// accumulating until then.
func (r *Rows) Analyze() string {
	if r.prof == nil {
		return ""
	}
	return r.header + exec.FormatTree(r.root, r.prof)
}

// OnClose registers a hook invoked exactly once when the cursor closes
// (explicitly, at end of stream, or on error), receiving the terminal error
// (nil on clean completion). The query service uses it to release worker
// slots and the DDL gate as soon as a stream ends.
func (r *Rows) OnClose(fn func(err error)) {
	if r.closed {
		fn(r.err)
		return
	}
	r.onClose = fn
}

// fail records the terminal error and releases resources.
func (r *Rows) fail(err error) {
	r.err = err
	r.cur = nil
	_ = r.Close()
}

// finish marks clean end of stream and releases resources.
func (r *Rows) finish() {
	r.cur = nil
	_ = r.Close()
}

// Close releases the cursor's resources: it stops and drains any parallel
// workers (absorbing their counters) and fires the OnClose hook. Closing a
// cursor abandoned under a cancelled context records the context error so
// Err (and the hook) see the cancellation. Idempotent.
func (r *Rows) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	var cerr error
	if r.it != nil {
		cerr = r.it.Close()
	} else if r.bit != nil {
		cerr = r.bit.Close()
	}
	if r.err == nil {
		if err := r.ectx.Cancelled(); err != nil {
			r.err = err
		} else if cerr != nil {
			// A failed teardown is a failed query: Err and the OnClose hook
			// must agree with what Close returns.
			r.err = cerr
		}
	}
	if r.onClose != nil {
		fn := r.onClose
		r.onClose = nil
		fn(r.err)
	}
	return cerr
}

// Materialize drains the remaining stream into a Result and closes the
// cursor. On the batch path rows are carved out arena-wise per batch, so
// Run/Query keep their pre-streaming materialization cost.
func (r *Rows) Materialize() (*Result, error) {
	defer r.Close()
	if r.err != nil {
		return nil, r.err
	}
	var rows []storage.Row
	if r.bit != nil && !r.closed {
		// Remainder of a batch already pulled via Next, if any.
		for r.batch != nil && r.bpos < r.batch.Len() {
			rows = append(rows, r.batch.Row(r.batch.LiveAt(r.bpos)))
			r.bpos++
			r.returned++
		}
		for {
			if err := r.ectx.Cancelled(); err != nil {
				r.fail(err)
				return nil, err
			}
			b, ok, err := r.bit.NextBatch(exec.DefaultBatchSize)
			if err != nil {
				r.fail(err)
				return nil, err
			}
			if !ok {
				break
			}
			r.returned += int64(b.Len())
			rows = b.AppendTo(rows)
		}
	} else {
		for r.Next() {
			rows = append(rows, r.cur)
		}
		if r.err != nil {
			return nil, r.err
		}
	}
	// Close before snapshotting counters: parallel operators absorb worker
	// counters on close.
	if err := r.Close(); err != nil {
		return nil, err
	}
	if r.err != nil {
		return nil, r.err
	}
	return &Result{Cols: r.cols, Rows: rows, Counters: *r.ectx.Counters, Rewritten: r.rewritten}, nil
}
