package engine_test

// Columnar checkpoint tests: a checkpoint written by this binary snapshots
// table data as column-major RecSegment records, and recovery rebuilds the
// columnar store from them; a checkpoint written by a pre-columnar binary
// (row-major RecInsert snapshot records) still recovers, upgrading into
// column segments on replay.

import (
	"fmt"
	"testing"

	"udfdecorr/internal/engine"
	"udfdecorr/internal/sqltypes"
	"udfdecorr/internal/storage"
	"udfdecorr/internal/wal"
)

// fillTable appends n fixture rows (i, 2i) to a durable engine's table in
// misaligned batches so the data spans several column segments.
func fillTable(t *testing.T, e *engine.Engine, name string, n int) {
	t.Helper()
	st, ok := e.Store.Table(name)
	if !ok {
		t.Fatalf("table %s missing", name)
	}
	const per = 777
	for lo := 0; lo < n; lo += per {
		hi := lo + per
		if hi > n {
			hi = n
		}
		rows := make([]storage.Row, 0, hi-lo)
		for i := lo; i < hi; i++ {
			rows = append(rows, storage.Row{sqltypes.NewInt(int64(i)), sqltypes.NewInt(int64(2 * i))})
		}
		if err := st.Append(rows...); err != nil {
			t.Fatal(err)
		}
	}
}

// checkFixture verifies the recovered table holds exactly the n fixture
// rows in well-formed segments (every segment but the last full).
func checkFixture(t *testing.T, e *engine.Engine, name string, n int) {
	t.Helper()
	st, ok := e.Store.Table(name)
	if !ok {
		t.Fatalf("table %s missing after recovery", name)
	}
	v := st.Version()
	if v.RowCount() != n {
		t.Fatalf("table %s: %d rows after recovery, want %d", name, v.RowCount(), n)
	}
	segs := v.Segments()
	seen := map[int64]bool{}
	for si, sg := range segs {
		if si < len(segs)-1 && sg.Len() != storage.SegmentRows {
			t.Fatalf("recovered segment %d/%d has %d rows, want full %d",
				si, len(segs), sg.Len(), storage.SegmentRows)
		}
		for i := 0; i < sg.Len(); i++ {
			k := sg.Col(0)[i].Int()
			if sg.Col(1)[i].Int() != 2*k {
				t.Fatalf("recovered row k=%d has v=%d, want %d", k, sg.Col(1)[i].Int(), 2*k)
			}
			if seen[k] {
				t.Fatalf("recovered row k=%d duplicated", k)
			}
			seen[k] = true
		}
	}
	if len(seen) != n {
		t.Fatalf("recovered %d distinct rows, want %d", len(seen), n)
	}
}

// walRecordTypes replays a closed data directory and counts record types
// (snapshot and log tail together).
func walRecordTypes(t *testing.T, dir string) map[byte]int {
	t.Helper()
	counts := map[byte]int{}
	log, _, err := wal.Open(dir, wal.Options{Sync: wal.SyncNone}, func(rec wal.Record) error {
		counts[rec.Type]++
		return nil
	})
	if err != nil {
		t.Fatalf("reopening %s to inspect records: %v", dir, err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	return counts
}

func TestColumnarCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	e1 := openDurable(t, dir)
	if err := e1.ExecScript("create table ck (k int primary key, v int);"); err != nil {
		t.Fatal(err)
	}
	n := 2*storage.SegmentRows + 123
	fillTable(t, e1, "ck", n)
	if err := e1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := e1.Durable.Close(); err != nil {
		t.Fatal(err)
	}

	// The checkpoint snapshot must be column-major: RecSegment records
	// covering the data, no row-major RecInsert snapshot left behind.
	counts := walRecordTypes(t, dir)
	if counts[wal.RecSegment] < 3 { // two full segments + one partial
		t.Fatalf("checkpoint wrote %d RecSegment records, want >= 3 (types: %v)",
			counts[wal.RecSegment], counts)
	}
	if counts[wal.RecInsert] != 0 {
		t.Fatalf("checkpoint left %d row-major RecInsert records", counts[wal.RecInsert])
	}

	e2 := openDurable(t, dir)
	if e2.Durable.Stats().RecoveredRecords == 0 {
		t.Fatal("expected recovered records after reopen")
	}
	checkFixture(t, e2, "ck", n)
	res, err := e2.Query("select count(*) from ck where v = k + k")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].Int(); got != int64(n) {
		t.Fatalf("recovered query sees %d consistent rows, want %d", got, n)
	}
}

func TestLegacyRowMajorCheckpointUpgrade(t *testing.T) {
	// Hand-write a checkpoint in the pre-columnar format: DDL plus
	// row-major RecInsert snapshot records, exactly what an earlier binary
	// left on disk.
	dir := t.TempDir()
	log, _, err := wal.Open(dir, wal.Options{Sync: wal.SyncNone}, func(wal.Record) error {
		return fmt.Errorf("fresh dir must have no records")
	})
	if err != nil {
		t.Fatal(err)
	}
	n := storage.SegmentRows + 250
	err = log.Checkpoint(func(write func(wal.Record) error) error {
		if err := write(wal.DDLRecord("create table legacy (k int primary key, v int);")); err != nil {
			return err
		}
		const per = 512
		for lo := 0; lo < n; lo += per {
			hi := lo + per
			if hi > n {
				hi = n
			}
			rows := make([][]sqltypes.Value, 0, hi-lo)
			for i := lo; i < hi; i++ {
				rows = append(rows, []sqltypes.Value{sqltypes.NewInt(int64(i)), sqltypes.NewInt(int64(2 * i))})
			}
			if err := write(wal.InsertRecord("legacy", rows)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery pivots the legacy rows into columnar segments.
	e := openDurable(t, dir)
	checkFixture(t, e, "legacy", n)

	// A checkpoint taken by this binary rewrites the snapshot column-major:
	// the upgrade is complete and one-way.
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := e.Durable.Close(); err != nil {
		t.Fatal(err)
	}
	counts := walRecordTypes(t, dir)
	if counts[wal.RecSegment] < 2 || counts[wal.RecInsert] != 0 {
		t.Fatalf("post-upgrade checkpoint types: %v, want only RecSegment data", counts)
	}
	e2 := openDurable(t, dir)
	checkFixture(t, e2, "legacy", n)
	if err := e2.Durable.Close(); err != nil {
		t.Fatal(err)
	}
}
