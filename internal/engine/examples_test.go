package engine

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"udfdecorr/internal/sqltypes"
	"udfdecorr/internal/storage"
)

// Paper Example 3: single arithmetic expression.
const discountSimpleUDF = `
create function discount_simple(float amount) returns float as
begin
  return amount * 0.15;
end
`

// Paper Example 4: single SQL query.
const totalBusinessUDF = `
create function totalbusiness(int ckey) returns int as
begin
  return select sum(totalprice) from orders where custkey = :ckey;
end
`

// Paper Example 8 (Experiment 1): straight-line code with two scalar
// queries.
const discountUDF = `
create function discount(float amt, int ckey) returns float as
begin
  int custcat; float catdisct, totaldiscount;
  select category into :custcat from customer where custkey = :ckey;
  select frac_discount into :catdisct from categorydiscount where category = :custcat;
  totaldiscount = catdisct * amt;
  return totaldiscount;
end
`

// Paper Example 5: cursor loop with a cyclic data dependence.
const totalLossUDFs = `
create function getcost(int pkey) returns float as
begin
  return select cost from partcost where partkey = :pkey;
end

create function totalloss(int pkey) returns int as
begin
  int total_loss = 0;
  float cost = getcost(:pkey);
  declare c cursor for
    select price, qty, disc from lineitem where partkey = :pkey;
  open c;
  fetch next from c into @price, @qty, @disc;
  while @@FETCH_STATUS = 0
  begin
    float profit = (@price - @disc) - (cost * @qty);
    if (profit < 0)
      total_loss = total_loss - profit;
    fetch next from c into @price, @qty, @disc;
  end
  close c; deallocate c;
  return total_loss;
end
`

// Paper Example 7 shape: table-valued UDF with an insert-only cursor loop.
const bigOrdersUDF = `
create function bigorders(minprice float) returns table tt (ckey int, price float) as
begin
  declare c cursor for select custkey, totalprice from orders;
  open c;
  fetch next from c into @ck, @tp;
  while @@FETCH_STATUS = 0
  begin
    if (@tp > minprice)
      insert into tt values (@ck, @tp * 1.0);
    fetch next from c into @ck, @tp;
  end
  close c; deallocate c;
  return tt;
end
`

// fullEngine builds an engine with the paper schema, all example UDFs, and
// a deterministic dataset covering all tables.
func fullEngine(t *testing.T, mode Mode) *Engine {
	t.Helper()
	e := New(SYS1, mode)
	ddl := paperSchema + serviceLevelUDF + discountSimpleUDF + totalBusinessUDF +
		discountUDF + totalLossUDFs + bigOrdersUDF
	if err := e.ExecScript(ddl); err != nil {
		t.Fatal(err)
	}
	for _, ix := range [][2]string{{"orders", "custkey"}, {"lineitem", "partkey"}} {
		if err := e.CreateIndex(ix[0], ix[1]); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(42))
	var customers, orders, lineitems, partsupps, cats, partcosts []storage.Row
	const nCust, nPart, nCat = 40, 25, 5
	for c := 1; c <= nCust; c++ {
		customers = append(customers, storage.Row{
			sqltypes.NewInt(int64(c)),
			sqltypes.NewString(fmt.Sprintf("cust%d", c)),
			sqltypes.NewInt(int64(c % nCat)),
			sqltypes.NewInt(int64(c % 7)),
		})
		if c%9 == 0 {
			continue // customers without orders
		}
		for o := 0; o < 3; o++ {
			orders = append(orders, storage.Row{
				sqltypes.NewInt(int64(c*100 + o)),
				sqltypes.NewInt(int64(c)),
				sqltypes.NewFloat(float64(rng.Intn(600000)) + 0.25),
			})
		}
	}
	for cat := 0; cat < nCat; cat++ {
		cats = append(cats, storage.Row{
			sqltypes.NewInt(int64(cat)),
			sqltypes.NewFloat(0.05 * float64(cat+1)),
		})
	}
	li := 0
	for p := 1; p <= nPart; p++ {
		partcosts = append(partcosts, storage.Row{
			sqltypes.NewInt(int64(p)),
			sqltypes.NewFloat(float64(10 + p)),
		})
		partsupps = append(partsupps, storage.Row{
			sqltypes.NewInt(int64(p)),
			sqltypes.NewInt(int64(p)),
			sqltypes.NewInt(int64(p % 4)),
			sqltypes.NewFloat(float64(rng.Intn(100))),
		})
		if p%8 == 0 {
			continue // parts without lineitems
		}
		for l := 0; l < 4; l++ {
			li++
			lineitems = append(lineitems, storage.Row{
				sqltypes.NewInt(int64(li)),
				sqltypes.NewInt(int64(p)),
				sqltypes.NewFloat(float64(rng.Intn(300))),
				sqltypes.NewInt(int64(1 + rng.Intn(5))),
				sqltypes.NewFloat(float64(rng.Intn(20))),
			})
		}
	}
	for tbl, rows := range map[string][]storage.Row{
		"customer": customers, "orders": orders, "lineitem": lineitems,
		"partsupp": partsupps, "categorydiscount": cats, "partcost": partcosts,
	} {
		if err := e.Load(tbl, rows); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

// compareModes runs a query in iterative and rewrite modes and checks both
// that the rewrite decorrelated and that the results agree.
func compareModes(t *testing.T, query string, wantRewrite bool) (*Result, *Result) {
	t.Helper()
	it := fullEngine(t, ModeIterative)
	rw := fullEngine(t, ModeRewrite)
	rit, err := it.Query(query)
	if err != nil {
		t.Fatalf("iterative: %v", err)
	}
	rrw, err := rw.Query(query)
	if err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	if rrw.Rewritten != wantRewrite {
		res, _ := rw.RewriteSQL(query)
		extra := ""
		if res != nil {
			extra = "\ntrace: " + strings.Join(res.Trace, ", ")
		}
		t.Fatalf("rewritten = %v, want %v%s", rrw.Rewritten, wantRewrite, extra)
	}
	if wantRewrite && rrw.Counters.UDFCalls != 0 {
		t.Errorf("rewritten plan still made %d UDF calls", rrw.Counters.UDFCalls)
	}
	assertSameRows(t, rit.Rows, rrw.Rows)
	return rit, rrw
}

func TestExample3SingleExpression(t *testing.T) {
	compareModes(t, "select orderkey, discount_simple(totalprice) from orders", true)
}

func TestExample3WhereClause(t *testing.T) {
	rit, _ := compareModes(t, "select orderkey from orders where discount_simple(totalprice) > 50000", true)
	if len(rit.Rows) == 0 {
		t.Fatal("predicate selected nothing; test data too small")
	}
}

func TestExample4SingleQuery(t *testing.T) {
	compareModes(t, "select custkey, totalbusiness(custkey) from customer", true)
}

func TestExample8TwoQueries(t *testing.T) {
	compareModes(t, "select orderkey, discount(totalprice, custkey) from orders", true)
}

func TestExample5CursorLoop(t *testing.T) {
	rit, rrw := compareModes(t, "select partkey, totalloss(partkey) from partsupp", true)
	if len(rit.Rows) != 25 {
		t.Fatalf("rows = %d", len(rit.Rows))
	}
	// The decorrelated plan must have used an auxiliary aggregate.
	e := fullEngine(t, ModeRewrite)
	res, err := e.RewriteSQL("select partkey, totalloss(partkey) from partsupp")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.NewAggs) != 1 {
		t.Fatalf("aux aggregates = %d, want 1", len(res.NewAggs))
	}
	agg := res.NewAggs[0]
	if agg.Result != "total_loss" || len(agg.Params) != 1 || agg.Params[0] != "profit" {
		t.Errorf("aggregate signature: result=%s params=%v", agg.Result, agg.Params)
	}
	if len(agg.State) != 1 || !sqltypes.Equal(agg.State[0].Init, sqltypes.NewInt(0)) {
		t.Errorf("aggregate state: %+v", agg.State)
	}
	_ = rrw
}

func TestTableValuedUDF(t *testing.T) {
	compareModes(t, "select ckey, price from bigorders(300000) b", true)
}

func TestTableValuedUDFJoined(t *testing.T) {
	compareModes(t, `select c.name, b.price from bigorders(400000) b
	                 join customer c on c.custkey = b.ckey`, true)
}

func TestNestedSubqueryDecorrelation(t *testing.T) {
	// The min-cost-supplier query of Section II (plain SQL, no UDF).
	q := `select partsuppkey, partkey from partsupp p1
	      where supplycost = (select min(supplycost) from partsupp p2
	                          where p2.partkey = p1.partkey)`
	rit, _ := compareModes(t, q, true)
	if len(rit.Rows) == 0 {
		t.Fatal("min-cost supplier returned nothing")
	}
}

func TestUDFOnFilteredOuter(t *testing.T) {
	compareModes(t, "select custkey, service_level(custkey) from customer where custkey <= 15", true)
}

func TestCostBasedModeSmallPrefersIterative(t *testing.T) {
	e := fullEngine(t, ModeCostBased)
	res, err := e.Query("select custkey, service_level(custkey) from customer where custkey <= 2")
	if err != nil {
		t.Fatal(err)
	}
	// With a tiny outer, the iterative plan should win the cost race.
	if res.Rewritten {
		t.Log("cost model chose rewrite for small input (acceptable, but unexpected)")
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}
