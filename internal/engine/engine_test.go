package engine

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"udfdecorr/internal/sqltypes"
	"udfdecorr/internal/storage"
)

// paperSchema is the TPC-H subset used by the paper's examples, with the
// augmented attributes of Section X.
const paperSchema = `
create table customer (custkey int primary key, name varchar, category int, nationkey int);
create table orders (orderkey int primary key, custkey int, totalprice float);
create table lineitem (lineitemkey int primary key, partkey int, price float, qty int, disc float);
create table partsupp (partsuppkey int primary key, partkey int, suppkey int, supplycost float);
create table categorydiscount (category int primary key, frac_discount float);
create table partcost (partkey int primary key, cost float);
`

const serviceLevelUDF = `
create function service_level(int ckey) returns char(10) as
begin
  float totalbusiness; string level;
  select sum(totalprice) into :totalbusiness
    from orders where custkey = :ckey;
  if (totalbusiness > 1000000)
    level = 'Platinum';
  else if (totalbusiness > 500000)
    level = 'Gold';
  else level = 'Regular';
  return level;
end
`

// newTestEngine builds an engine with the paper schema and a small
// deterministic dataset.
func newTestEngine(t *testing.T, mode Mode, nCust, ordersPer int) *Engine {
	t.Helper()
	e := New(SYS1, mode)
	if err := e.ExecScript(paperSchema + serviceLevelUDF); err != nil {
		t.Fatal(err)
	}
	if err := e.CreateIndex("orders", "custkey"); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	var customers, orders []storage.Row
	for c := 1; c <= nCust; c++ {
		customers = append(customers, storage.Row{
			sqltypes.NewInt(int64(c)),
			sqltypes.NewString(fmt.Sprintf("cust%d", c)),
			sqltypes.NewInt(int64(c % 5)),
			sqltypes.NewInt(int64(c % 25)),
		})
		// Customer c gets ordersPer orders except multiples of 10 (none),
		// exercising the empty-group path.
		if c%10 == 0 {
			continue
		}
		for o := 0; o < ordersPer; o++ {
			orders = append(orders, storage.Row{
				sqltypes.NewInt(int64(c*1000 + o)),
				sqltypes.NewInt(int64(c)),
				sqltypes.NewFloat(float64(rng.Intn(400000)) + 0.5),
			})
		}
	}
	if err := e.Load("customer", customers); err != nil {
		t.Fatal(err)
	}
	if err := e.Load("orders", orders); err != nil {
		t.Fatal(err)
	}
	return e
}

const example1Query = `select custkey, service_level(custkey) from customer`

func TestExample1IterativeExecutes(t *testing.T) {
	e := newTestEngine(t, ModeIterative, 20, 3)
	res, err := e.Query(example1Query)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rewritten {
		t.Error("iterative mode must not rewrite")
	}
	if len(res.Rows) != 20 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Counters.UDFCalls != 20 {
		t.Errorf("UDF calls = %d, want 20 (one per tuple)", res.Counters.UDFCalls)
	}
	// Every level must be one of the three categories.
	for _, r := range res.Rows {
		lv := r[1].Display()
		if lv != "Platinum" && lv != "Gold" && lv != "Regular" {
			t.Errorf("bad level %q", lv)
		}
	}
}

func TestExample1RewriteDecorrelates(t *testing.T) {
	e := newTestEngine(t, ModeRewrite, 20, 3)
	res, err := e.RewriteSQL(example1Query)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Decorrelated {
		t.Fatalf("Example 1 must fully decorrelate; trace:\n%s", strings.Join(res.Trace, "\n"))
	}
	if len(res.InlinedUDFs) != 1 || res.InlinedUDFs[0] != "service_level" {
		t.Errorf("inlined = %v", res.InlinedUDFs)
	}
}

func TestExample1RewriteMatchesIterative(t *testing.T) {
	it := newTestEngine(t, ModeIterative, 30, 4)
	rw := newTestEngine(t, ModeRewrite, 30, 4)

	rit, err := it.Query(example1Query)
	if err != nil {
		t.Fatal(err)
	}
	rrw, err := rw.Query(example1Query)
	if err != nil {
		t.Fatal(err)
	}
	if !rrw.Rewritten {
		t.Fatal("rewrite mode should use the decorrelated plan")
	}
	if rrw.Counters.UDFCalls != 0 {
		t.Errorf("decorrelated plan made %d UDF calls", rrw.Counters.UDFCalls)
	}
	assertSameRows(t, rit.Rows, rrw.Rows)
}

// assertSameRows compares results as multisets (order-insensitive).
func assertSameRows(t *testing.T, a, b []storage.Row) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("row counts differ: %d vs %d", len(a), len(b))
	}
	count := map[string]int{}
	for _, r := range a {
		count[sqltypes.KeyOf(r...)]++
	}
	for _, r := range b {
		count[sqltypes.KeyOf(r...)]--
	}
	for k, v := range count {
		if v != 0 {
			t.Fatalf("row multiset mismatch (key %x: %+d)", k, v)
		}
	}
}
