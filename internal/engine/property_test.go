package engine

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"udfdecorr/internal/sqltypes"
	"udfdecorr/internal/storage"
)

// This file checks the pipeline's core equivalence property on *generated*
// UDFs: for random imperative bodies (assignments, arithmetic, nested
// conditionals, embedded scalar aggregates), iterative execution and the
// decorrelated rewrite must produce identical results.

// udfGen generates random side-effect-free UDF bodies.
type udfGen struct {
	rng  *rand.Rand
	vars []string // variables in scope
	seq  int      // name counter (never reused across scopes)
}

func (g *udfGen) expr(depth int) string {
	// Operands: parameter, declared variable, or literal.
	operand := func() string {
		switch g.rng.Intn(3) {
		case 0:
			return ":x"
		case 1:
			if len(g.vars) > 0 {
				return g.vars[g.rng.Intn(len(g.vars))]
			}
			return fmt.Sprintf("%d", g.rng.Intn(20))
		default:
			return fmt.Sprintf("%d", g.rng.Intn(20)+1)
		}
	}
	if depth <= 0 || g.rng.Intn(3) == 0 {
		return operand()
	}
	ops := []string{"+", "-", "*"}
	return fmt.Sprintf("(%s %s %s)", g.expr(depth-1), ops[g.rng.Intn(len(ops))], g.expr(depth-1))
}

func (g *udfGen) cond() string {
	cmps := []string{">", "<", ">=", "<=", "=", "<>"}
	return fmt.Sprintf("(%s %s %s)", g.expr(1), cmps[g.rng.Intn(len(cmps))], g.expr(1))
}

// stmts generates a well-scoped statement list: expressions only reference
// variables declared earlier on the same path, and branch-local
// declarations do not leak past their block.
func (g *udfGen) stmts(depth, n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		switch {
		case g.rng.Intn(4) == 0 && depth > 0:
			// Conditional block; inner declarations are scoped to it.
			cond := g.cond()
			save := len(g.vars)
			thenPart := g.stmts(depth-1, 1+g.rng.Intn(2))
			g.vars = g.vars[:save]
			b.WriteString(fmt.Sprintf("if %s begin %s end", cond, thenPart))
			if g.rng.Intn(2) == 0 {
				elsePart := g.stmts(depth-1, 1)
				g.vars = g.vars[:save]
				b.WriteString(fmt.Sprintf(" else begin %s end\n", elsePart))
			} else {
				b.WriteString("\n")
			}
		case g.rng.Intn(5) == 0:
			// Embedded scalar aggregate over orders.
			v := g.declare()
			b.WriteString(fmt.Sprintf("select sum(totalprice) into :%s from orders where custkey = :x;\n", v))
		default:
			if len(g.vars) > 0 && g.rng.Intn(2) == 0 {
				v := g.vars[g.rng.Intn(len(g.vars))]
				b.WriteString(fmt.Sprintf("%s = %s;\n", v, g.expr(2)))
			} else {
				// Initializer generated before the variable enters scope.
				init := g.expr(2)
				v := g.declare()
				b.WriteString(fmt.Sprintf("float %s = %s;\n", v, init))
			}
		}
	}
	return b.String()
}

func (g *udfGen) declare() string {
	g.seq++
	v := fmt.Sprintf("v%d", g.seq)
	g.vars = append(g.vars, v)
	return v
}

// generate returns a full CREATE FUNCTION for one random body.
func (g *udfGen) generate(name string) string {
	body := g.stmts(2, 2+g.rng.Intn(4))
	ret := ":x"
	if len(g.vars) > 0 {
		ret = g.vars[g.rng.Intn(len(g.vars))]
	}
	return fmt.Sprintf("create function %s(int x) returns float as begin\n%sreturn %s;\nend",
		name, body, ret)
}

func TestPropertyRandomUDFsAgree(t *testing.T) {
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("seed%d", trial), func(t *testing.T) {
			gen := &udfGen{rng: rand.New(rand.NewSource(int64(trial)))}
			udf := gen.generate("fuzzed")

			build := func(mode Mode) *Engine {
				e := New(SYS1, mode)
				if err := e.ExecScript(paperSchema); err != nil {
					t.Fatal(err)
				}
				if err := e.ExecScript(udf); err != nil {
					t.Fatalf("generated UDF failed to register: %v\n%s", err, udf)
				}
				if err := e.CreateIndex("orders", "custkey"); err != nil {
					t.Fatal(err)
				}
				rng := rand.New(rand.NewSource(99))
				var customers, orders []storage.Row
				for c := 1; c <= 25; c++ {
					customers = append(customers, storage.Row{
						sqltypes.NewInt(int64(c)), sqltypes.NewString("c"),
						sqltypes.NewInt(int64(c % 3)), sqltypes.NewInt(0),
					})
					for o := 0; o < c%4; o++ {
						orders = append(orders, storage.Row{
							sqltypes.NewInt(int64(c*10 + o)), sqltypes.NewInt(int64(c)),
							sqltypes.NewFloat(float64(rng.Intn(1000))),
						})
					}
				}
				e.Load("customer", customers)
				e.Load("orders", orders)
				return e
			}

			q := "select custkey, fuzzed(custkey) from customer"
			it := build(ModeIterative)
			rw := build(ModeRewrite)
			r1, err := it.Query(q)
			if err != nil {
				t.Fatalf("iterative failed: %v\n%s", err, udf)
			}
			r2, err := rw.Query(q)
			if err != nil {
				t.Fatalf("rewrite failed: %v\n%s", err, udf)
			}
			if !r2.Rewritten {
				// Not all generated bodies must decorrelate, but for this
				// generator's statement mix they all should.
				t.Fatalf("expected decorrelation for:\n%s", udf)
			}
			if len(r1.Rows) != len(r2.Rows) {
				t.Fatalf("row count mismatch %d vs %d for:\n%s", len(r1.Rows), len(r2.Rows), udf)
			}
			count := map[string]int{}
			for _, r := range r1.Rows {
				count[sqltypes.KeyOf(r...)]++
			}
			for _, r := range r2.Rows {
				count[sqltypes.KeyOf(r...)]--
			}
			for _, v := range count {
				if v != 0 {
					t.Fatalf("iterative and rewritten disagree for:\n%s", udf)
				}
			}
		})
	}
}
