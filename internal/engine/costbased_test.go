package engine

import "testing"

// TestCostBasedCrossover pins the cost-based arbitration: small outer
// cardinalities run iteratively, large ones through the rewrite.
func TestCostBasedCrossover(t *testing.T) {
	e := fullEngine(t, ModeCostBased)
	small, err := e.Query("select custkey, service_level(custkey) from customer where custkey <= 2")
	if err != nil {
		t.Fatal(err)
	}
	if small.Rewritten {
		t.Error("tiny outer should run iteratively under cost-based mode")
	}
	large, err := e.Query("select custkey, service_level(custkey) from customer")
	if err != nil {
		t.Fatal(err)
	}
	if !large.Rewritten {
		t.Error("full-table query should run decorrelated under cost-based mode")
	}
}
