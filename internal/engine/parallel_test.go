package engine_test

// Parallel-executor differential harness: the whole corpus must agree with
// the iterative row-engine ground truth when executed on the parallel
// vectorized path, for parallelism 1 and 4 (run under -race in CI). Two
// relaxations versus the serial differential suite, both inherent to
// parallel execution: row order is worker-interleaved (multiset compare, as
// everywhere), and floating-point aggregation may re-associate across
// worker partials, so floats compare at 9 significant digits instead of
// bit-for-bit. Integer results stay exact.
//
// The batch-contract property test rides the same corpus: a hook wraps
// every iterator handed across an operator edge — including inside parallel
// worker pipelines — and checks both contract clauses (see exec/contract.go):
// NextBatch(max) never yields more than max live rows, for max ∈ {1, 2, 3,
// 7, 1024}; and no operator reads a batch past its validity window (each
// handed-out batch is poisoned when the window closes, so retained-batch
// aliasing surfaces as a result mismatch against an unchecked run). This is
// the test that makes the hash-join hot-key and the scan-buffer-reuse bug
// classes unrepresentable for future operators.

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"udfdecorr/internal/bench"
	"udfdecorr/internal/engine"
	"udfdecorr/internal/exec"
	"udfdecorr/internal/sqltypes"
	"udfdecorr/internal/storage"
)

// canonicalValue renders a value for comparison, rounding floats to 9
// significant digits (parallel aggregation may re-associate additions).
func canonicalValue(v sqltypes.Value) string {
	if v.Kind() == sqltypes.KindFloat {
		f, _ := v.AsFloat()
		return fmt.Sprintf("f:%.9g", f)
	}
	return v.String()
}

// assertApproxMultiset compares row multisets with float tolerance.
func assertApproxMultiset(t *testing.T, label string, want, got []storage.Row) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: row counts differ: want %d, got %d", label, len(want), len(got))
	}
	key := func(r storage.Row) string {
		parts := make([]string, len(r))
		for i, v := range r {
			parts[i] = canonicalValue(v)
		}
		return strings.Join(parts, "\x1f")
	}
	count := map[string]int{}
	for _, r := range want {
		count[key(r)]++
	}
	for _, r := range got {
		count[key(r)]--
	}
	for k, v := range count {
		if v != 0 {
			t.Fatalf("%s: row multiset mismatch (%q: %+d)", label, k, v)
		}
	}
}

// TestDifferentialParallel runs the full corpus on the parallel vectorized
// path at parallelism 1 and 4, in both iterative and rewrite modes, against
// the iterative row-engine ground truth.
func TestDifferentialParallel(t *testing.T) {
	// Shrink morsels so the small fixture really fans out across workers
	// (at the default morsel size every small table fits in one morsel and
	// the clamp would run a single worker).
	defer func(old int) { exec.MorselRows = old }(exec.MorselRows)
	exec.MorselRows = 64

	cfg := bench.SmallConfig()
	truth := diffEngine(t, engine.SYS1, engine.ModeIterative, cfg)
	for _, degree := range []int{1, 4} {
		for _, mode := range []engine.Mode{engine.ModeIterative, engine.ModeRewrite} {
			profile := engine.SYS1
			profile.Vectorized = true
			profile.Parallelism = degree
			par := diffEngine(t, profile, mode, cfg)
			for _, q := range differentialCorpus {
				q := q
				t.Run(fmt.Sprintf("p=%d/%s/%s", degree, mode, q.Name), func(t *testing.T) {
					want, err := truth.Query(q.SQL)
					if err != nil {
						t.Fatalf("ground truth: %v", err)
					}
					got, err := par.Query(q.SQL)
					if err != nil {
						t.Fatalf("parallel executor: %v", err)
					}
					assertApproxMultiset(t, "row-iterative vs parallel-vectorized",
						want.Rows, got.Rows)
				})
			}
		}
	}
}

// TestBatchContractProperty wraps every BatchIter edge of every corpus plan
// (serial and parallel) with a contract checker and drives the roots with
// adversarial batch sizes.
func TestBatchContractProperty(t *testing.T) {
	var mu sync.Mutex
	var violations []string
	hook := func(in exec.BatchIter) exec.BatchIter {
		return exec.NewContractChecker(in, func(got, max int) {
			mu.Lock()
			violations = append(violations, fmt.Sprintf("inner edge: %d live rows for max %d", got, max))
			mu.Unlock()
		})
	}
	defer exec.SetBatchContractHook(nil)
	defer func(old int) { exec.MorselRows = old }(exec.MorselRows)
	exec.MorselRows = 64

	cfg := bench.SmallConfig()
	for _, degree := range []int{1, 4} {
		profile := engine.SYS1
		profile.Vectorized = true
		profile.Parallelism = degree
		eng := diffEngine(t, profile, engine.ModeRewrite, cfg)
		for _, q := range differentialCorpus {
			prep, err := eng.Prepare(q.SQL)
			if err != nil {
				t.Fatalf("%s: %v", q.Name, err)
			}
			// Ground truth from the same plan with the hook disarmed: the
			// checked runs below must reproduce it exactly. The checker
			// poisons every handed-out batch at the end of its validity
			// window, so any operator that retains a batch (or its column
			// vectors) past the contract reads sentinels and this
			// comparison fails — that is the retained-batch-aliasing half
			// of the property.
			exec.SetBatchContractHook(nil)
			want, err := exec.DrainBatches(prep.Node, exec.NewCtx(eng.Interp))
			if err != nil {
				t.Fatalf("%s (unchecked): %v", q.Name, err)
			}
			exec.SetBatchContractHook(hook)
			for _, max := range []int{1, 2, 3, 7, 1024} {
				ctx := exec.NewCtx(eng.Interp)
				bi, err := exec.OpenBatches(prep.Node, ctx)
				if err != nil {
					t.Fatalf("%s: %v", q.Name, err)
				}
				var got []storage.Row
				for {
					b, ok, err := bi.NextBatch(max)
					if err != nil {
						bi.Close()
						t.Fatalf("%s (max=%d): %v", q.Name, max, err)
					}
					if !ok {
						break
					}
					if b.Len() > max {
						mu.Lock()
						violations = append(violations,
							fmt.Sprintf("%s root: %d live rows for max %d", q.Name, b.Len(), max))
						mu.Unlock()
					}
					got = b.AppendTo(got)
				}
				bi.Close()
				assertApproxMultiset(t,
					fmt.Sprintf("%s (p=%d, max=%d) checked vs unchecked", q.Name, degree, max),
					want, got)
			}
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(violations) > 0 {
		t.Fatalf("batch-size contract violated %d times; first: %s",
			len(violations), violations[0])
	}
}

// TestExplainShowsParallelism pins the EXPLAIN surface for parallel plans:
// the configured degree and the parallel operator notes.
func TestExplainShowsParallelism(t *testing.T) {
	profile := engine.SYS1
	profile.Vectorized = true
	profile.Parallelism = 4
	eng := diffEngine(t, profile, engine.ModeIterative, bench.SmallConfig())
	out, err := eng.Explain("select custkey, count(*), sum(totalprice) from orders group by custkey")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "parallelism: 4") {
		t.Fatalf("EXPLAIN missing parallelism line:\n%s", out)
	}
	if !strings.Contains(out, "degree=4") {
		t.Fatalf("EXPLAIN missing parallel operator note:\n%s", out)
	}

	// The serial engine's EXPLAIN is unchanged (golden tests pin the exact
	// serial format; this guards the conditional here).
	serial := diffEngine(t, engine.SYS1, engine.ModeIterative, bench.SmallConfig())
	out, err = serial.Explain("select custkey, count(*) from orders group by custkey")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "parallelism") {
		t.Fatalf("serial EXPLAIN mentions parallelism:\n%s", out)
	}
}
