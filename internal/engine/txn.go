// Multi-statement transactions. A Txn pins a store-wide snapshot at Begin
// and buffers INSERTs; queries run inside the transaction read the pinned
// snapshot plus the buffered rows (read-your-writes), and Commit publishes
// every buffered table atomically — no snapshot anywhere can observe half a
// transaction. On durable engines Commit write-ahead-logs the transaction
// as one contiguous Begin/insert/Commit record run, so recovery either
// replays all of it or (when the commit record never reached disk) none.
// INSERT is the only DML the engine has, so transactions are append-only
// and snapshot-isolation write conflicts cannot arise.
package engine

import (
	"context"
	"errors"
	"fmt"

	"udfdecorr/internal/ast"
	"udfdecorr/internal/exec"
	"udfdecorr/internal/storage"
)

// Txn is one in-flight transaction. It is single-client state (like a
// session): not safe for concurrent use, though any number of transactions
// may run concurrently with each other and with queries.
type Txn struct {
	eng    *Engine
	snap   *storage.Snapshot
	order  []*storage.Table // first-write order, for deterministic logging
	writes map[*storage.Table][]storage.Row
	done   bool
}

// Begin starts a transaction reading from the current consistent cut.
func (e *Engine) Begin() *Txn {
	return &Txn{eng: e, snap: e.Store.Snapshot(), writes: map[*storage.Table][]storage.Row{}}
}

// Snapshot returns the transaction's pinned read snapshot.
func (t *Txn) Snapshot() *storage.Snapshot { return t.snap }

// Overlay returns the buffered uncommitted rows per table, in the shape
// exec.Ctx.SetSnapshot consumes.
func (t *Txn) Overlay() map[*storage.Table][]storage.Row { return t.writes }

// Pending reports the number of buffered rows.
func (t *Txn) Pending() int {
	n := 0
	for _, rows := range t.writes {
		n += len(rows)
	}
	return n
}

// Insert evaluates an INSERT's value expressions (constants and pure scalar
// expressions; UDF calls inside them read through the transaction snapshot)
// and buffers the row until Commit.
func (t *Txn) Insert(goctx context.Context, ins *ast.InsertStmt) error {
	if t.done {
		return errors.New("engine: transaction already committed or rolled back")
	}
	st, ok := t.eng.Store.Table(ins.Table)
	if !ok {
		return fmt.Errorf("unknown table %q", ins.Table)
	}
	ectx := exec.NewCtxContext(goctx, t.eng.Interp)
	ectx.SetSnapshot(t.snap, t.writes)
	row, err := t.eng.evalInsertRow(ectx, ins)
	if err != nil {
		return err
	}
	if _, buffered := t.writes[st]; !buffered {
		t.order = append(t.order, st)
	}
	t.writes[st] = append(t.writes[st], row)
	return nil
}

// Commit publishes every buffered row atomically. On durable engines the
// transaction is logged (and fsynced per the log's policy) before anything
// becomes visible; a logging error vetoes the whole transaction. Commit
// finishes the transaction either way.
func (t *Txn) Commit() error {
	if t.done {
		return errors.New("engine: transaction already committed or rolled back")
	}
	t.done = true
	if len(t.order) == 0 {
		return nil
	}
	writes := make([]storage.TableWrite, 0, len(t.order))
	for _, st := range t.order {
		writes = append(writes, storage.TableWrite{Table: st, Rows: t.writes[st]})
	}
	var hook func() error
	if t.eng.Durable != nil {
		hook = func() error { return t.eng.Durable.logTxn(writes) }
	}
	return t.eng.Store.AppendBatch(writes, hook)
}

// Rollback discards the buffered writes. Nothing was logged or published,
// so there is nothing to undo.
func (t *Txn) Rollback() {
	t.done = true
	t.writes = nil
	t.order = nil
}
