package engine

import (
	"testing"

	"udfdecorr/internal/sqlgen"
)

// TestGeneratedSQLRoundTrip is the rewrite tool's end-to-end contract: the
// SQL text emitted for a decorrelated query must itself parse, plan and
// produce the same result as the original query when executed against the
// same database (with the auxiliary aggregates installed).
func TestGeneratedSQLRoundTrip(t *testing.T) {
	queries := []string{
		"select custkey, service_level(custkey) from customer",
		"select orderkey, discount_simple(totalprice) from orders",
		"select orderkey, discount(totalprice, custkey) from orders",
		"select custkey, totalbusiness(custkey) from customer",
		"select partkey, totalloss(partkey) from partsupp",
		"select orderkey from orders where discount_simple(totalprice) > 50000",
		"select ckey, price from bigorders(300000) b",
		`select partsuppkey, partkey from partsupp p1
		 where supplycost = (select min(supplycost) from partsupp p2
		                     where p2.partkey = p1.partkey)`,
	}
	for _, q := range queries {
		q := q
		t.Run(q[:24], func(t *testing.T) {
			e := fullEngine(t, ModeIterative)
			orig, err := e.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			res, err := e.RewriteSQL(q)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Decorrelated {
				t.Fatal("expected decorrelation")
			}
			sql, err := sqlgen.Generate(res.Rel)
			if err != nil {
				t.Fatal(err)
			}
			// Install aux aggregates, then run the emitted SQL verbatim.
			for _, agg := range res.NewAggs {
				if err := e.Cat.AddAggregate(agg); err != nil {
					t.Fatal(err)
				}
			}
			again, err := e.Query(sql)
			if err != nil {
				t.Fatalf("generated SQL failed to execute: %v\n%s", err, sql)
			}
			assertSameRows(t, orig.Rows, again.Rows)
		})
	}
}
