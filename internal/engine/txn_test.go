package engine_test

// Transaction tests: BEGIN/COMMIT/ROLLBACK through scripts and the Txn API,
// snapshot isolation (read-your-writes inside, invisibility outside until
// commit, all-or-nothing across tables), and the durability contract —
// committed transactions survive restart, uncommitted log suffixes are
// discarded.

import (
	"context"
	"testing"

	"udfdecorr/internal/ast"
	"udfdecorr/internal/engine"
	"udfdecorr/internal/parser"
	"udfdecorr/internal/sqltypes"
	"udfdecorr/internal/wal"
)

const txnSchema = `
create table acct (id int primary key, bal int);
create table audit (id int primary key, note varchar);
`

func txnEngine(t *testing.T) *engine.Engine {
	t.Helper()
	e := engine.New(engine.SYS1, engine.ModeRewrite)
	if err := e.ExecScript(txnSchema); err != nil {
		t.Fatal(err)
	}
	return e
}

func countOf(t *testing.T, e *engine.Engine, table string) int64 {
	t.Helper()
	res, err := e.Query("select count(*) from " + table)
	if err != nil {
		t.Fatal(err)
	}
	n, _ := res.Rows[0][0].AsInt()
	return n
}

func TestScriptTxnCommit(t *testing.T) {
	e := txnEngine(t)
	err := e.ExecScript(`
begin transaction;
insert into acct values (1, 100);
insert into audit values (1, 'open');
commit;
`)
	if err != nil {
		t.Fatal(err)
	}
	if n := countOf(t, e, "acct"); n != 1 {
		t.Fatalf("acct rows = %d", n)
	}
	if n := countOf(t, e, "audit"); n != 1 {
		t.Fatalf("audit rows = %d", n)
	}
}

func TestScriptTxnRollback(t *testing.T) {
	e := txnEngine(t)
	err := e.ExecScript(`
begin;
insert into acct values (1, 100);
rollback;
insert into acct values (2, 50);
`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Query("select id from acct")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("acct rows = %d", len(res.Rows))
	}
	if id, _ := res.Rows[0][0].AsInt(); id != 2 {
		t.Fatalf("surviving id = %d", id)
	}
}

func TestScriptTxnDanglingBeginRollsBack(t *testing.T) {
	e := txnEngine(t)
	if err := e.ExecScript("begin; insert into acct values (1, 1);"); err != nil {
		t.Fatal(err)
	}
	if n := countOf(t, e, "acct"); n != 0 {
		t.Fatalf("dangling BEGIN published %d rows", n)
	}
}

func TestScriptTxnErrors(t *testing.T) {
	e := txnEngine(t)
	if err := e.ExecScript("commit;"); err == nil {
		t.Fatal("COMMIT without BEGIN must fail")
	}
	if err := e.ExecScript("rollback;"); err == nil {
		t.Fatal("ROLLBACK without BEGIN must fail")
	}
	if err := e.ExecScript("begin; begin;"); err == nil {
		t.Fatal("nested BEGIN must fail")
	}
}

// TestTxnInvisibleUntilCommit: statements run while a Txn is open must not
// see its rows; statements run through the Txn's snapshot+overlay must.
func TestTxnInvisibleUntilCommit(t *testing.T) {
	e := txnEngine(t)
	txn := e.Begin()
	script, err := parser.ParseScript("insert into acct values (1, 100);")
	if err != nil {
		t.Fatal(err)
	}
	ins := script.Inserts[0]
	if err := txn.Insert(context.Background(), ins); err != nil {
		t.Fatal(err)
	}

	// Outside: invisible.
	if n := countOf(t, e, "acct"); n != 0 {
		t.Fatalf("uncommitted row visible outside the txn: %d", n)
	}

	// Inside (snapshot + overlay): read-your-writes.
	p, err := e.Prepare("select count(*) from acct")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := e.RunContextSnap(context.Background(), p, txn.Snapshot(), txn.Overlay())
	if err != nil {
		t.Fatal(err)
	}
	res, err := rows.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := res.Rows[0][0].AsInt(); n != 1 {
		t.Fatalf("txn does not see its own write: count=%d", n)
	}

	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if n := countOf(t, e, "acct"); n != 1 {
		t.Fatalf("committed row missing: %d", n)
	}
}

// TestTxnSnapshotIgnoresConcurrentCommits: a Txn keeps reading its Begin-time
// snapshot even after another writer commits.
func TestTxnSnapshotIgnoresConcurrentCommits(t *testing.T) {
	e := txnEngine(t)
	if err := e.ExecScript("insert into acct values (1, 10);"); err != nil {
		t.Fatal(err)
	}
	txn := e.Begin()
	if err := e.ExecScript("insert into acct values (2, 20);"); err != nil {
		t.Fatal(err)
	}
	p, err := e.Prepare("select count(*) from acct")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := e.RunContextSnap(context.Background(), p, txn.Snapshot(), txn.Overlay())
	if err != nil {
		t.Fatal(err)
	}
	res, err := rows.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := res.Rows[0][0].AsInt(); n != 1 {
		t.Fatalf("snapshot saw a post-Begin commit: count=%d", n)
	}
	txn.Rollback()
	if n := countOf(t, e, "acct"); n != 2 {
		t.Fatalf("store rows = %d", n)
	}
}

func TestTxnFinishedIsDead(t *testing.T) {
	e := txnEngine(t)
	txn := e.Begin()
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); err == nil {
		t.Fatal("double commit must fail")
	}
	script, _ := parser.ParseScript("insert into acct values (1, 1);")
	if err := txn.Insert(context.Background(), script.Inserts[0]); err == nil {
		t.Fatal("insert after commit must fail")
	}
}

// TestDurableTxnCommitSurvivesRestart: a committed multi-table transaction
// replays whole after reopen.
func TestDurableTxnCommitSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	e := openDurable(t, dir)
	if err := e.ExecScript(txnSchema); err != nil {
		t.Fatal(err)
	}
	err := e.ExecScript(`
begin;
insert into acct values (1, 100);
insert into audit values (1, 'open');
commit;
begin;
insert into acct values (2, 200);
rollback;
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Durable.Close(); err != nil {
		t.Fatal(err)
	}

	re := openDurable(t, dir)
	if n := countOf(t, re, "acct"); n != 1 {
		t.Fatalf("recovered acct rows = %d", n)
	}
	if n := countOf(t, re, "audit"); n != 1 {
		t.Fatalf("recovered audit rows = %d", n)
	}
}

// TestDurableUncommittedSuffixDiscarded: a transaction whose commit record
// never reached the log (crash mid-transaction) must vanish on recovery,
// while everything acknowledged before it survives.
func TestDurableUncommittedSuffixDiscarded(t *testing.T) {
	dir := t.TempDir()
	e := openDurable(t, dir)
	if err := e.ExecScript(txnSchema); err != nil {
		t.Fatal(err)
	}
	if err := e.ExecScript("insert into acct values (1, 10);"); err != nil {
		t.Fatal(err)
	}
	if err := e.Durable.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash window by appending the transaction's prefix
	// straight to the log without its commit record (the engine never does
	// this — that's the point of the recovery test).
	log, _, err := wal.Open(dir, wal.Options{Sync: wal.SyncNone}, func(wal.Record) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := log.AppendAll(
		wal.BeginRecord(99),
		wal.TxnInsertRecord(99, "acct", [][]sqltypes.Value{
			{sqltypes.NewInt(2), sqltypes.NewInt(20)},
		}),
	); err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	re := openDurable(t, dir)
	res, err := re.Query("select id from acct")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("recovered %d rows; the uncommitted suffix must be discarded", len(res.Rows))
	}
	if id, _ := res.Rows[0][0].AsInt(); id != 1 {
		t.Fatalf("recovered id = %d", id)
	}

	// A fresh transaction on the recovered engine gets a txid past the
	// discarded one's, and a clean commit works.
	if err := re.ExecScript("begin; insert into acct values (3, 30); commit;"); err != nil {
		t.Fatal(err)
	}
	if n := countOf(t, re, "acct"); n != 2 {
		t.Fatalf("post-recovery commit rows = %d", n)
	}
}

// TestExecParsedContextOrdering: parsed scripts execute in source order
// across statement kinds (table created, row inserted, txn committed — all
// interleaved).
func TestExecParsedContextOrdering(t *testing.T) {
	e := engine.New(engine.SYS1, engine.ModeRewrite)
	script, err := parser.ParseScript(`
create table a (x int primary key);
insert into a values (1);
begin;
insert into a values (2);
commit;
create table b (y int primary key);
insert into b values (7);
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(script.Stmts) != 7 {
		t.Fatalf("parsed %d ordered statements", len(script.Stmts))
	}
	if _, ok := script.Stmts[2].(*ast.TxnStmt); !ok {
		t.Fatalf("statement 2 is %T, want TxnStmt", script.Stmts[2])
	}
	if err := e.ExecParsedContext(context.Background(), script); err != nil {
		t.Fatal(err)
	}
	if n := countOf(t, e, "a"); n != 2 {
		t.Fatalf("a rows = %d", n)
	}
	if n := countOf(t, e, "b"); n != 1 {
		t.Fatalf("b rows = %d", n)
	}
}
