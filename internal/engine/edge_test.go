package engine

import (
	"strings"
	"testing"

	"udfdecorr/internal/sqltypes"
	"udfdecorr/internal/storage"
)

// TestSelfTableAliasCapture is a regression test: a UDF querying the SAME
// table as the outer query (same default alias) must not capture the
// outer's qualifier during merging — "where t.k = :k" with :k bound to the
// outer t.k once turned into the tautology "t.k = t.k".
func TestSelfTableAliasCapture(t *testing.T) {
	build := func(mode Mode) *Engine {
		e := New(SYS1, mode)
		if err := e.ExecScript(`
create table t (k int primary key, v float);
insert into t values (1, 10.5), (2, 20.5), (3, 7.25);
create function keysum(int k) returns float as
begin
  return select sum(v) from t where k = :k;
end`); err != nil {
			t.Fatal(err)
		}
		return e
	}
	it := build(ModeIterative)
	rw := build(ModeRewrite)
	q := "select k, keysum(k) from t"
	r1, err := it.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := rw.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Rewritten {
		t.Fatal("expected decorrelation")
	}
	assertSameRows(t, r1.Rows, r2.Rows)
	// Concretely: k=1 must map to 10.5, not the grand total.
	for _, r := range r2.Rows {
		k, _ := r[0].AsInt()
		if k == 1 {
			if v, _ := r[1].AsFloat(); v != 10.5 {
				t.Fatalf("keysum(1) = %v, want 10.5 (alias capture!)", r[1])
			}
		}
	}
}

func TestExistsAndNotExists(t *testing.T) {
	for _, q := range []string{
		"select custkey from customer c where exists (select 1 from orders o where o.custkey = c.custkey)",
		"select custkey from customer c where not exists (select 1 from orders o where o.custkey = c.custkey)",
	} {
		rit, rrw := compareModes(t, q, true)
		if len(rit.Rows) == 0 {
			t.Errorf("query %q returned nothing", q)
		}
		_ = rrw
	}
}

func TestInSubquery(t *testing.T) {
	compareModes(t, "select name from customer where custkey in (select custkey from orders)", true)
	compareModes(t, "select name from customer where custkey not in (select custkey from orders)", true)
}

func TestUDFCallingUDF(t *testing.T) {
	e := fullEngine(t, ModeRewrite)
	err := e.ExecScript(`
create function double_business(int ckey) returns float as
begin
  return totalbusiness(:ckey) * 2;
end`)
	if err != nil {
		t.Fatal(err)
	}
	it := fullEngine(t, ModeIterative)
	if err := it.ExecScript(`
create function double_business(int ckey) returns float as
begin
  return totalbusiness(:ckey) * 2;
end`); err != nil {
		t.Fatal(err)
	}
	q := "select custkey, double_business(custkey) from customer"
	r1, err := it.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Rewritten {
		t.Fatal("nested UDF call should still decorrelate")
	}
	if r2.Counters.UDFCalls != 0 {
		t.Errorf("decorrelated plan made %d UDF calls", r2.Counters.UDFCalls)
	}
	assertSameRows(t, r1.Rows, r2.Rows)
}

func TestEmptyOuterTable(t *testing.T) {
	e := New(SYS1, ModeRewrite)
	if err := e.ExecScript(paperSchema + serviceLevelUDF); err != nil {
		t.Fatal(err)
	}
	res, err := e.Query(example1Query)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Errorf("empty customer table should give no rows, got %d", len(res.Rows))
	}
}

func TestNullParameterThroughUDF(t *testing.T) {
	it := fullEngine(t, ModeIterative)
	rw := fullEngine(t, ModeRewrite)
	// A customer row with NULL category exercises NULL propagation through
	// the discount UDF's second lookup.
	null := storage.Row{sqltypes.NewInt(9999), sqltypes.NewString("nil"),
		sqltypes.Null, sqltypes.NewInt(0)}
	for _, e := range []*Engine{it, rw} {
		if err := e.Load("customer", []storage.Row{null}); err != nil {
			t.Fatal(err)
		}
		if err := e.Load("orders", []storage.Row{{
			sqltypes.NewInt(999900), sqltypes.NewInt(9999), sqltypes.NewFloat(100),
		}}); err != nil {
			t.Fatal(err)
		}
	}
	q := "select orderkey, discount(totalprice, custkey) from orders where orderkey = 999900"
	r1, err := it.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := rw.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Rows) != 1 || len(r2.Rows) != 1 {
		t.Fatalf("rows: %d vs %d", len(r1.Rows), len(r2.Rows))
	}
	if !r1.Rows[0][1].IsNull() || !r2.Rows[0][1].IsNull() {
		t.Errorf("NULL category should yield NULL discount: %v vs %v", r1.Rows[0][1], r2.Rows[0][1])
	}
}

func TestExplainOutput(t *testing.T) {
	e := fullEngine(t, ModeRewrite)
	out, err := e.Explain("select custkey, service_level(custkey) from customer")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "rewritten: true") {
		t.Errorf("explain should report the rewrite:\n%s", out)
	}
	if !strings.Contains(out, "Join") {
		t.Errorf("explain should show join choices:\n%s", out)
	}
	it := fullEngine(t, ModeIterative)
	out2, err := it.Explain("select custkey, service_level(custkey) from customer")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out2, "rewritten: false") {
		t.Errorf("iterative explain:\n%s", out2)
	}
}

func TestSYS2ProfileAgrees(t *testing.T) {
	it := fullEngine(t, ModeIterative)
	sys2 := New(SYS2, ModeIterative)
	if err := sys2.ExecScript(paperSchema + serviceLevelUDF); err != nil {
		t.Fatal(err)
	}
	// Mirror the data into the SYS2 engine.
	for _, tbl := range []string{"customer", "orders"} {
		src, _ := it.Store.Table(tbl)
		if err := sys2.Load(tbl, src.Rows()); err != nil {
			t.Fatal(err)
		}
	}
	r1, err := it.Query(example1Query)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sys2.Query(example1Query)
	if err != nil {
		t.Fatal(err)
	}
	assertSameRows(t, r1.Rows, r2.Rows)
	// SYS2 re-plans per embedded execution.
	if r2.Counters.PlanBuilds < r2.Counters.QueryExecs {
		t.Errorf("SYS2 should re-plan per execution: %d plans for %d execs",
			r2.Counters.PlanBuilds, r2.Counters.QueryExecs)
	}
	if r1.Counters.PlanBuilds >= r1.Counters.QueryExecs && r1.Counters.QueryExecs > 1 {
		t.Errorf("SYS1 should cache plans: %d plans for %d execs",
			r1.Counters.PlanBuilds, r1.Counters.QueryExecs)
	}
}

func TestCostBasedLargePrefersRewrite(t *testing.T) {
	e := fullEngine(t, ModeCostBased)
	res, err := e.Query("select custkey, service_level(custkey) from customer")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rewritten {
		t.Error("cost-based mode should decorrelate the full-table query")
	}
}

func TestTopLimitsUDFInvocations(t *testing.T) {
	e := fullEngine(t, ModeIterative)
	res, err := e.Query("select top 7 custkey, service_level(custkey) from customer")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Counters.UDFCalls != 7 {
		t.Errorf("pipelined TOP should invoke the UDF exactly 7 times, got %d", res.Counters.UDFCalls)
	}
}

func TestWhereAndSelectUDFTogether(t *testing.T) {
	compareModes(t,
		`select custkey, service_level(custkey) from customer
		 where totalbusiness(custkey) > 100000`, true)
}

func TestDistinctOverUDF(t *testing.T) {
	compareModes(t, "select distinct service_level(custkey) from customer", true)
}

func TestOrderByOverUDFResult(t *testing.T) {
	it := fullEngine(t, ModeIterative)
	rw := fullEngine(t, ModeRewrite)
	q := "select custkey, totalbusiness(custkey) tb from customer order by custkey desc"
	r1, err := it.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := rw.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Rewritten {
		t.Fatal("expected rewrite")
	}
	// Order-sensitive comparison.
	if len(r1.Rows) != len(r2.Rows) {
		t.Fatalf("row counts differ")
	}
	for i := range r1.Rows {
		if sqltypes.KeyOf(r1.Rows[i]...) != sqltypes.KeyOf(r2.Rows[i]...) {
			t.Fatalf("row %d differs: %v vs %v", i, r1.Rows[i], r2.Rows[i])
		}
	}
}
