// Durability: the glue between the volatile engine and internal/wal. A
// durable engine logs every schema mutation and acknowledged insert batch
// write-ahead (via the catalog/storage commit hooks), checkpoints the full
// catalog+store into a snapshot that truncates the log, and on open replays
// snapshot + log tail into a consistent engine. Volatile engines (New /
// NewShared) are completely unaffected: they have a nil Durable and no
// hooks installed.
package engine

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"udfdecorr/internal/ast"
	"udfdecorr/internal/catalog"
	"udfdecorr/internal/parser"
	"udfdecorr/internal/sqltypes"
	"udfdecorr/internal/storage"
	"udfdecorr/internal/wal"
)

// DurabilityOptions configures a durable engine.
type DurabilityOptions struct {
	// Sync is the WAL fsync policy (default wal.SyncAlways).
	Sync wal.SyncPolicy
	// SyncInterval bounds staleness under wal.SyncInterval.
	SyncInterval time.Duration
	// SegmentBytes is the WAL segment rotation threshold (<=0: wal default).
	SegmentBytes int64
	// RetainSegments keeps that many sealed WAL segments past each
	// checkpoint's replay boundary so catching-up replicas can still stream
	// them (0: delete superseded segments immediately).
	RetainSegments int
	// SnapshotBatchRows is retained for configuration compatibility; columnar
	// snapshots chunk by segment and byte size instead.
	SnapshotBatchRows int
}

// Durability owns a durable engine's write-ahead log and checkpoint state.
// It is shared by every engine view over the same catalog+store (the query
// service attaches it once).
type Durability struct {
	dir   string
	log   *wal.Log
	cat   *catalog.Catalog
	store *storage.Store
	opts  DurabilityOptions

	checkpoints      atomic.Int64
	recoveredRecords int64 // fixed after open
	recoveredTorn    int64

	// nextTxid issues transaction ids for logged commits. Seeded past the
	// largest txid seen during replay so ids stay unique within one log
	// generation (BEGIN resets any stale pending state on reuse anyway).
	nextTxid atomic.Uint64
}

// DurabilityStats is the operational snapshot exposed through /stats.
type DurabilityStats struct {
	// Dir is the data directory.
	Dir string `json:"dir"`
	// WALBytes is the current size of the live log segments.
	WALBytes int64 `json:"wal_bytes"`
	// WALRecords counts records appended since open.
	WALRecords int64 `json:"wal_records"`
	// Segment is the current WAL segment sequence number.
	Segment uint64 `json:"segment"`
	// OldestSegment is the smallest WAL segment still on disk (checkpoint
	// retention keeps sealed segments for catching-up replicas).
	OldestSegment uint64 `json:"oldest_segment"`
	// NewestSegment is the open segment (same as Segment; the pair makes the
	// retained window readable at a glance in /stats).
	NewestSegment uint64 `json:"newest_segment"`
	// Checkpoints counts checkpoints taken since open.
	Checkpoints int64 `json:"checkpoints"`
	// RecoveredRecords is the number of snapshot + log records replayed when
	// the engine opened (0 for a fresh directory).
	RecoveredRecords int64 `json:"recovered_records"`
	// TornBytes is the size of the torn log tail truncated during recovery.
	TornBytes int64 `json:"torn_bytes"`
	// GroupSyncs counts shared fsync batches flushed under the group
	// policy; records/group_syncs approximates the fsyncs saved.
	GroupSyncs int64 `json:"group_syncs"`
	// SyncPolicy names the fsync policy.
	SyncPolicy string `json:"sync_policy"`
}

// OpenDurable opens (or creates) the durable engine rooted at dir: it
// replays the checkpoint snapshot and the write-ahead-log tail into a fresh
// catalog+store, attaches the commit hooks so subsequent DDL and inserts are
// logged write-ahead, and returns the engine. The resulting engine behaves
// exactly like a volatile one for queries; only mutations pay the log.
func OpenDurable(dir string, profile Profile, mode Mode, opts DurabilityOptions) (*Engine, error) {
	cat := catalog.New()
	store := storage.NewStore()

	rp := &replayer{cat: cat, store: store, pending: map[uint64][]pendingInsert{}}
	log, rstats, err := wal.Open(dir, wal.Options{
		Sync:           opts.Sync,
		SyncInterval:   opts.SyncInterval,
		SegmentBytes:   opts.SegmentBytes,
		RetainSegments: opts.RetainSegments,
	}, rp.apply)
	if err != nil {
		return nil, fmt.Errorf("opening data dir %s: %w", dir, err)
	}
	// Transactions whose commit record never reached disk are discarded:
	// rp.pending leftovers at end-of-log were never acknowledged.

	d := &Durability{dir: dir, log: log, cat: cat, store: store, opts: opts}
	d.recoveredRecords = rstats.SnapshotRecords + rstats.WALRecords
	d.recoveredTorn = rstats.TornBytes
	d.nextTxid.Store(rp.maxTxid)

	// Recovery replay is complete: from here on, every mutation is logged
	// before it commits.
	cat.SetChangeHook(d.onCatalogChange)
	store.SetAppendHook(d.onAppend)

	e := NewShared(cat, store, profile, mode)
	e.Durable = d
	return e, nil
}

// Checkpoint snapshots the engine's catalog+store and truncates the log.
// The caller must exclude concurrent mutations (the query service holds its
// DDL write gate); concurrent read-only queries are safe.
func (e *Engine) Checkpoint() error {
	if e.Durable == nil {
		return errors.New("engine is volatile: no data directory configured")
	}
	return e.Durable.Checkpoint()
}

// Stats snapshots the durability counters.
func (d *Durability) Stats() DurabilityStats {
	ls := d.log.Stats()
	return DurabilityStats{
		Dir:              d.dir,
		WALBytes:         ls.Bytes,
		WALRecords:       ls.Records,
		Segment:          ls.Segment,
		OldestSegment:    ls.OldestSegment,
		NewestSegment:    ls.NewestSegment,
		Checkpoints:      d.checkpoints.Load(),
		RecoveredRecords: d.recoveredRecords,
		TornBytes:        d.recoveredTorn,
		GroupSyncs:       ls.GroupSyncs,
		SyncPolicy:       d.opts.Sync.String(),
	}
}

// Close seals the log. The engine remains usable for queries but further
// mutations fail.
func (d *Durability) Close() error { return d.log.Close() }

// WAL exposes the underlying log for the replication stream server (reads
// only: sealed/live segment chunks, the durable tip, the tip watch).
func (d *Durability) WAL() *wal.Log { return d.log }

// Dir returns the data directory (the replication snapshot endpoint serves
// its checkpoint file).
func (d *Durability) Dir() string { return d.dir }

// Checkpoint writes a snapshot of the catalog and every table's rows, then
// truncates the log. See Engine.Checkpoint for the locking contract.
func (d *Durability) Checkpoint() error {
	err := d.log.Checkpoint(func(write func(wal.Record) error) error {
		// DDL first (tables before the rows that need them, functions in one
		// pass since they only bind at planning time), then data, then the
		// index declarations.
		tables := d.cat.Tables()
		for _, t := range tables {
			if err := write(wal.DDLRecord(TableDDL(t))); err != nil {
				return err
			}
		}
		for _, f := range d.cat.Functions() {
			if err := write(wal.DDLRecord(f.Def.SQL())); err != nil {
				return err
			}
		}
		for _, t := range tables {
			st, ok := d.store.Table(t.Name)
			if !ok {
				continue
			}
			// Snapshot data is written column-major, one RecSegment per
			// published storage segment: replay re-installs segment-aligned
			// chunks without pivoting (see storage.Table.AppendCols). Wide
			// segments are cut into sub-ranges so no record exceeds the log's
			// size limit; sub-slicing columns is free, the values alias the
			// immutable segment.
			const chunkByteTarget = 4 << 20
			for _, sg := range st.Version().Segments() {
				n := sg.Len()
				if n == 0 {
					continue
				}
				pieces := int(sg.Bytes()/chunkByteTarget) + 1
				per := (n + pieces - 1) / pieces
				cols := make([][]sqltypes.Value, sg.Width())
				for lo := 0; lo < n; lo += per {
					hi := lo + per
					if hi > n {
						hi = n
					}
					for c := range cols {
						cols[c] = sg.Col(c)[lo:hi]
					}
					if err := write(wal.SegmentRecord(t.Name, cols, hi-lo)); err != nil {
						return err
					}
				}
			}
		}
		for _, t := range tables {
			for _, col := range t.Indexes {
				if err := write(wal.IndexRecord(t.Name, col)); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	d.checkpoints.Add(1)
	return nil
}

// onCatalogChange is the catalog commit hook: render the mutation as a log
// record and append it write-ahead.
func (d *Durability) onCatalogChange(ch catalog.Change) error {
	switch {
	case ch.Table != nil:
		return d.log.Append(wal.DDLRecord(TableDDL(ch.Table)))
	case ch.Function != nil:
		return d.log.Append(wal.DDLRecord(ch.Function.SQL()))
	case ch.IndexTable != "":
		return d.log.Append(wal.IndexRecord(ch.IndexTable, ch.IndexCol))
	default:
		return fmt.Errorf("durability: empty catalog change")
	}
}

// onAppend is the storage commit hook: log the batch before it is visible.
func (d *Durability) onAppend(meta *catalog.Table, rows []storage.Row) error {
	vals := make([][]sqltypes.Value, len(rows))
	for i, r := range rows {
		vals[i] = r
	}
	return d.log.Append(wal.InsertRecord(meta.Name, vals))
}

// logTxn logs a multi-table transaction as one contiguous record run:
// BEGIN, one TxnInsert per table, COMMIT. AppendAll keeps the run
// contiguous in the log (and inside one segment's rollback window), so
// recovery sees either the whole transaction with its commit record or an
// uncommitted prefix it discards. Called as the AppendBatch commit hook,
// before any row becomes visible.
func (d *Durability) logTxn(writes []storage.TableWrite) error {
	txid := d.nextTxid.Add(1)
	recs := make([]wal.Record, 0, len(writes)+2)
	recs = append(recs, wal.BeginRecord(txid))
	for _, w := range writes {
		vals := make([][]sqltypes.Value, len(w.Rows))
		for i, r := range w.Rows {
			vals[i] = r
		}
		recs = append(recs, wal.TxnInsertRecord(txid, w.Table.Meta.Name, vals))
	}
	recs = append(recs, wal.CommitRecord(txid))
	return d.log.AppendAll(recs...)
}

// pendingInsert is one buffered TxnInsert awaiting its commit record.
type pendingInsert struct {
	table string
	rows  [][]sqltypes.Value
}

// replayer applies snapshot + log records during recovery, buffering
// transactional inserts until their commit record proves the transaction
// was acknowledged. Uncommitted leftovers (crash between BEGIN and COMMIT
// reaching disk) are simply dropped.
type replayer struct {
	cat     *catalog.Catalog
	store   *storage.Store
	pending map[uint64][]pendingInsert
	maxTxid uint64
}

func (rp *replayer) apply(rec wal.Record) error {
	switch rec.Type {
	case wal.RecBegin:
		txid, err := rec.Txid()
		if err != nil {
			return err
		}
		if txid > rp.maxTxid {
			rp.maxTxid = txid
		}
		// Reset, don't merge: a reused txid from an earlier log generation
		// must not leak stale buffered inserts into this transaction.
		rp.pending[txid] = nil
		return nil
	case wal.RecTxnInsert:
		txid, table, rows, err := rec.TxnInsert()
		if err != nil {
			return err
		}
		rp.pending[txid] = append(rp.pending[txid], pendingInsert{table: table, rows: rows})
		return nil
	case wal.RecCommit:
		txid, err := rec.Txid()
		if err != nil {
			return err
		}
		inserts := rp.pending[txid]
		delete(rp.pending, txid)
		if len(inserts) == 0 {
			return nil
		}
		// Publish the transaction's tables in one atomic batch, exactly as
		// the original commit did: a replica applying this mid-traffic must
		// never expose a state where one table committed and another has not.
		// Records for the same table merge into one write (AppendBatch locks
		// per table, so a table must not appear twice).
		byTable := map[string]int{}
		writes := make([]storage.TableWrite, 0, len(inserts))
		for _, ins := range inserts {
			rows := make([]storage.Row, len(ins.rows))
			for i, r := range ins.rows {
				rows[i] = r
			}
			if idx, ok := byTable[ins.table]; ok {
				writes[idx].Rows = append(writes[idx].Rows, rows...)
				continue
			}
			st, ok := rp.store.Table(ins.table)
			if !ok {
				return fmt.Errorf("insert into unknown table %q", ins.table)
			}
			byTable[ins.table] = len(writes)
			writes = append(writes, storage.TableWrite{Table: st, Rows: rows})
		}
		return rp.store.AppendBatch(writes, nil)
	case wal.RecRollback:
		txid, err := rec.Txid()
		if err != nil {
			return err
		}
		delete(rp.pending, txid)
		return nil
	}
	return applyRecord(rp.cat, rp.store, rec)
}

// applyInsert appends decoded rows to a table during replay.
func applyInsert(store *storage.Store, table string, rows [][]sqltypes.Value) error {
	st, ok := store.Table(table)
	if !ok {
		return fmt.Errorf("insert into unknown table %q", table)
	}
	batch := make([]storage.Row, len(rows))
	for i, r := range rows {
		batch[i] = r
	}
	return st.Append(batch...)
}

// applyRecord replays one snapshot or log record into the catalog+store.
// The hooks are not yet attached during recovery, so nothing is re-logged.
func applyRecord(cat *catalog.Catalog, store *storage.Store, rec wal.Record) error {
	switch rec.Type {
	case wal.RecDDL:
		sql, err := rec.DDL()
		if err != nil {
			return err
		}
		return applyDDL(cat, store, sql)
	case wal.RecIndex:
		table, col, err := rec.Index()
		if err != nil {
			return err
		}
		return cat.AddIndex(table, col)
	case wal.RecInsert:
		// Live appends, and the snapshot data format of checkpoints written
		// by pre-columnar binaries: replaying one pivots the rows into the
		// columnar store, upgrading old checkpoints in place.
		table, rows, err := rec.Insert()
		if err != nil {
			return err
		}
		return applyInsert(store, table, rows)
	case wal.RecSegment:
		table, cols, nrows, err := rec.Segment()
		if err != nil {
			return err
		}
		st, ok := store.Table(table)
		if !ok {
			return fmt.Errorf("segment for unknown table %q", table)
		}
		return st.AppendCols(cols, nrows)
	default:
		return fmt.Errorf("unknown record type %d", rec.Type)
	}
}

// applyDDL re-parses and registers a logged DDL statement. Only CREATE
// TABLE / CREATE FUNCTION appear in the log (inserts are binary records).
func applyDDL(cat *catalog.Catalog, store *storage.Store, sql string) error {
	script, err := parser.ParseScript(sql)
	if err != nil {
		return fmt.Errorf("re-parsing logged DDL: %w\n%s", err, sql)
	}
	if len(script.Inserts) > 0 {
		return fmt.Errorf("unexpected INSERT in logged DDL record: %s", sql)
	}
	for _, t := range script.Tables {
		meta, err := cat.AddTableFromAST(t)
		if err != nil {
			return err
		}
		if _, err := store.CreateTable(meta); err != nil {
			return err
		}
	}
	for _, f := range script.Functions {
		if _, err := cat.AddFunction(f); err != nil {
			return err
		}
	}
	return nil
}

// Replayer is the incremental WAL applier a read replica feeds: the same
// txid-buffered logic recovery uses, applied record-by-record against a live
// catalog+store. Transactional inserts buffer until their commit record
// arrives and then publish atomically, so a replica's visible state is
// always transaction-consistent — an uncommitted txn suffix (a leader that
// died between BEGIN and COMMIT reaching the stream) is simply never
// applied. Records apply strictly in stream order from one tail loop, but
// PendingTxns is polled from health/metrics goroutines, so the wrapper
// serializes access to the underlying single-threaded replayer.
type Replayer struct {
	mu sync.Mutex
	rp *replayer
}

// NewReplayer builds an applier over the replica's catalog and store.
func NewReplayer(cat *catalog.Catalog, store *storage.Store) *Replayer {
	return &Replayer{rp: &replayer{cat: cat, store: store, pending: map[uint64][]pendingInsert{}}}
}

// Apply installs one WAL record (snapshot or stream) into the replica.
func (r *Replayer) Apply(rec wal.Record) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rp.apply(rec)
}

// PendingTxns reports transactions with buffered inserts awaiting a commit
// record — nonzero while the stream sits mid-transaction.
func (r *Replayer) PendingTxns() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.rp.pending)
}

// IsDDL reports whether a record mutates the schema; the replica applies
// those under its query service's exclusive DDL gate (and invalidates
// cached plans), exactly as a leader-side DDL statement would.
func IsDDL(rec wal.Record) bool {
	return rec.Type == wal.RecDDL || rec.Type == wal.RecIndex
}

// TableDDL renders a catalog table back into the CREATE TABLE statement that
// reproduces it (minus secondary indexes, which are separate log records).
func TableDDL(t *catalog.Table) string {
	pk := make(map[string]bool, len(t.PKCols))
	for _, c := range t.PKCols {
		pk[c] = true
	}
	stmt := &ast.CreateTableStmt{Name: t.Name, ShardKey: t.ShardKey}
	for _, c := range t.Cols {
		stmt.Cols = append(stmt.Cols, ast.ColDef{Name: c.Name, Type: c.Type, PrimaryKey: pk[c.Name]})
	}
	return stmt.SQL()
}
