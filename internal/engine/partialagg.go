// Shard-local partial aggregation: the plan rewrite behind
// Engine.PreparePartialAgg. A shard executing the scatter-merge half of a
// distributed GROUP BY must not finalize its aggregates — AVG in
// particular cannot be averaged across shards — so the root
// Project-over-GroupBy is replaced by a bare GroupBy whose schema is the
// canonical merge layout: group keys first, then one column per partial
// (avg contributes its sum and its non-NULL count). The router's gather
// merges these with exec's mergeState machinery and applies the original
// projection order itself.
package engine

import (
	"fmt"
	"strings"

	"udfdecorr/internal/algebra"
)

// MergeableAggFuncs is the set of builtin aggregates whose per-shard
// results combine losslessly (DISTINCT forms excluded — a value may appear
// on several shards). It mirrors exec.AggSpec.Mergeable and is exported so
// the shard feasibility pass and this rewrite cannot drift apart.
var MergeableAggFuncs = map[string]bool{
	"sum": true, "count": true, "min": true, "max": true, "avg": true,
}

// PartialSumSuffix / PartialCountSuffix name the two columns an avg
// decomposes into (visible in EXPLAIN output of partial plans).
const (
	PartialSumSuffix   = "__psum"
	PartialCountSuffix = "__pcnt"
)

// partialAggRewrite rewrites the normalized algebra for shard-local partial
// aggregation, or explains why the plan shape does not support it.
func partialAggRewrite(rel algebra.Rel) (algebra.Rel, error) {
	proj, ok := rel.(*algebra.Project)
	if !ok {
		return nil, fmt.Errorf("shard partial aggregation: plan root is %s, want projection over GROUP BY", rel.Describe())
	}
	if proj.Dedup {
		return nil, fmt.Errorf("shard partial aggregation: DISTINCT projection cannot be merged across shards")
	}
	gb, ok := proj.In.(*algebra.GroupBy)
	if !ok {
		return nil, fmt.Errorf("shard partial aggregation: projection input is %s, want GROUP BY (HAVING and post-aggregate operators are not mergeable)", proj.In.Describe())
	}
	aggs := make([]algebra.AggCall, 0, len(gb.Aggs)+1)
	for _, a := range gb.Aggs {
		fn := strings.ToLower(a.Func)
		if a.Distinct || !MergeableAggFuncs[fn] {
			return nil, fmt.Errorf("shard partial aggregation: aggregate %s is not mergeable across shards", a.String())
		}
		if fn == "avg" {
			// A shard-local average loses its weight; ship the numerator and
			// the non-NULL denominator instead. count(args) (not count(*))
			// keeps NULL handling identical to single-node avg.
			aggs = append(aggs,
				algebra.AggCall{Func: "sum", Args: a.Args, As: a.As + PartialSumSuffix},
				algebra.AggCall{Func: "count", Args: a.Args, As: a.As + PartialCountSuffix},
			)
			continue
		}
		aggs = append(aggs, a)
	}
	return &algebra.GroupBy{Keys: gb.Keys, Aggs: aggs, In: gb.In}, nil
}
