package engine

// Golden EXPLAIN ANALYZE tests: the annotated operator trees for
// representative queries are snapshotted on the row, vectorized, and
// parallel (degree 4) executors. Row/batch counts and plan shape must stay
// stable run to run; wall times are scrubbed. Regenerate alongside the
// EXPLAIN goldens with:
//
//	go test ./internal/engine -run TestExplainAnalyzeGolden -update

import (
	"context"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"udfdecorr/internal/exec"
)

// analyzeTimeScrub blanks the measured durations — the only run-varying
// fields in the output.
var analyzeTimeScrub = regexp.MustCompile(`(worker_time|time)=[^ \n]+`)

var analyzeCorpus = []struct {
	name string
	sql  string
}{
	{"example1_service_level", "select custkey, service_level(custkey) from customer"},
	{"plain_join_group_by", `select c.category, count(*), sum(o.totalprice)
	      from customer c join orders o on o.custkey = c.custkey
	      where c.custkey <= 30 group by c.category`},
	{"min_cost_supplier_subquery", `select partsuppkey, partkey from partsupp p1
	      where supplycost = (select min(supplycost) from partsupp p2
	                          where p2.partkey = p1.partkey)`},
}

func TestExplainAnalyzeGolden(t *testing.T) {
	// Shrink morsels so the tiny test tables split into enough morsels that a
	// degree-4 Exchange deterministically launches all 4 workers.
	defer func(n int) { exec.MorselRows = n }(exec.MorselRows)
	exec.MorselRows = 8

	for _, q := range analyzeCorpus {
		q := q
		t.Run(q.name, func(t *testing.T) {
			var b strings.Builder
			b.WriteString("query: " + strings.Join(strings.Fields(q.sql), " ") + "\n")
			run := func(tag string, configure func(*Engine)) {
				e := fullEngine(t, ModeRewrite)
				configure(e)
				out, err := e.ExplainAnalyze(context.Background(), q.sql)
				if err != nil {
					t.Fatalf("%s explain analyze: %v", tag, err)
				}
				b.WriteString("\n-- " + tag + " --\n")
				b.WriteString(analyzeTimeScrub.ReplaceAllString(out, "${1}=<t>"))
			}
			run("row", func(e *Engine) {})
			run("vectorized", func(e *Engine) { e.SetVectorized(true) })
			run("parallel-4", func(e *Engine) { e.SetVectorized(true); e.SetParallelism(4) })
			got := b.String()

			path := filepath.Join("testdata", "explain_analyze", q.name+".golden")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file %s (run with -update to create): %v", path, err)
			}
			if got != string(want) {
				t.Errorf("EXPLAIN ANALYZE drift for %s\n--- got ---\n%s--- want ---\n%s", q.name, got, want)
			}
		})
	}
}

// TestExplainAnalyzeParallelWorkers pins the structural guarantees that do
// not depend on golden bytes: every executor reports per-operator rows and
// time, and the parallel plan's Exchange absorbs its workers' stats.
func TestExplainAnalyzeParallelWorkers(t *testing.T) {
	defer func(n int) { exec.MorselRows = n }(exec.MorselRows)
	exec.MorselRows = 8

	// The rewritten form is a hash join whose probe pipeline segmentizes into
	// an Exchange; the IndexNLJoin plans keep their serial form.
	const sql = "select custkey, service_level(custkey) from customer"
	e := fullEngine(t, ModeRewrite)
	e.SetVectorized(true)
	e.SetParallelism(4)
	out, err := e.ExplainAnalyze(context.Background(), sql)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"rows=", "time=", "workers=4", "worker_rows=", "worker_time="} {
		if !strings.Contains(out, want) {
			t.Errorf("parallel EXPLAIN ANALYZE missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "Exchange(") {
		t.Errorf("parallel plan did not use an Exchange:\n%s", out)
	}
}
