package engine

// Golden EXPLAIN tests: the physical plan choices for representative queries
// are snapshotted pre-rewrite (iterative) and post-rewrite (decorrelated),
// so a planner or rewriter change that silently alters a plan shows up as a
// reviewable testdata diff. Regenerate with:
//
//	go test ./internal/engine -run TestExplainGolden -update

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden EXPLAIN files")

// explainCorpus names the representative queries. The file name keys the
// snapshot; each snapshot holds the iterative and rewrite explains.
var explainCorpus = []struct {
	name string
	sql  string
}{
	{"example1_service_level", "select custkey, service_level(custkey) from customer"},
	{"example1_filtered_outer", "select custkey, service_level(custkey) from customer where custkey <= 15"},
	{"example3_simple_expression", "select orderkey, discount_simple(totalprice) from orders"},
	{"example3_udf_in_predicate", "select orderkey from orders where discount_simple(totalprice) > 50000"},
	{"example4_single_query", "select custkey, totalbusiness(custkey) from customer"},
	{"example5_cursor_loop", "select partkey, totalloss(partkey) from partsupp"},
	{"example7_table_valued", "select ckey, price from bigorders(300000) b"},
	{"example7_tvf_joined", `select c.name, b.price from bigorders(400000) b
	                 join customer c on c.custkey = b.ckey`},
	{"example8_two_queries", "select orderkey, discount(totalprice, custkey) from orders"},
	{"min_cost_supplier_subquery", `select partsuppkey, partkey from partsupp p1
	      where supplycost = (select min(supplycost) from partsupp p2
	                          where p2.partkey = p1.partkey)`},
	{"plain_join_group_by", `select c.category, count(*), sum(o.totalprice)
	      from customer c join orders o on o.custkey = c.custkey
	      where c.custkey <= 30 group by c.category`},
}

func TestExplainGolden(t *testing.T) {
	for _, q := range explainCorpus {
		q := q
		t.Run(q.name, func(t *testing.T) {
			var b strings.Builder
			b.WriteString("query: " + strings.Join(strings.Fields(q.sql), " ") + "\n")
			for _, mode := range []Mode{ModeIterative, ModeRewrite} {
				e := fullEngine(t, mode)
				out, err := e.Explain(q.sql)
				if err != nil {
					t.Fatalf("%s explain: %v", mode, err)
				}
				b.WriteString("\n-- " + mode.String() + " --\n")
				b.WriteString(out)
			}
			got := b.String()

			path := filepath.Join("testdata", "explain", q.name+".golden")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file %s (run with -update to create): %v", path, err)
			}
			if got != string(want) {
				t.Errorf("EXPLAIN drift for %s\n--- got ---\n%s--- want ---\n%s", q.name, got, want)
			}
		})
	}
}

// TestExplainGoldenVectorizedHeader pins the executor line: the vectorized
// knob must be visible in EXPLAIN output without changing plan choices.
func TestExplainGoldenVectorizedHeader(t *testing.T) {
	e := fullEngine(t, ModeRewrite)
	rowOut, err := e.Explain(example1Query)
	if err != nil {
		t.Fatal(err)
	}
	e.SetVectorized(true)
	vecOut, err := e.Explain(example1Query)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rowOut, "executor: row") || !strings.Contains(vecOut, "executor: vectorized") {
		t.Fatalf("executor header missing:\n%s\n%s", rowOut, vecOut)
	}
	if strings.ReplaceAll(rowOut, "executor: row", "executor: vectorized") != vecOut {
		t.Errorf("vectorization changed plan choices:\n--- row ---\n%s--- vectorized ---\n%s", rowOut, vecOut)
	}
}
