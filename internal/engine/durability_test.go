package engine_test

// Durability tests: a durable engine must recover — from a clean close, a
// checkpoint + log tail, and a torn log tail — to a state on which the full
// differential corpus produces exactly the rows a never-restarted volatile
// engine produces.

import (
	"errors"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"

	"udfdecorr/internal/bench"
	"udfdecorr/internal/engine"
	"udfdecorr/internal/wal"
)

// openDurable opens a durable engine in dir with test-friendly options
// (no fsync: tests care about logical consistency, not power loss).
func openDurable(t *testing.T, dir string) *engine.Engine {
	t.Helper()
	e, err := engine.OpenDurable(dir, engine.SYS1, engine.ModeRewrite,
		engine.DurabilityOptions{Sync: wal.SyncNone})
	if err != nil {
		t.Fatalf("OpenDurable(%s): %v", dir, err)
	}
	return e
}

// populateDurable fills a durable engine with the bench dataset + extra UDFs.
func populateDurable(t *testing.T, e *engine.Engine) {
	t.Helper()
	if err := bench.Populate(e, bench.SmallConfig()); err != nil {
		t.Fatal(err)
	}
	if err := e.ExecScript(bench.ExtraUDFs); err != nil {
		t.Fatal(err)
	}
}

// assertCorpusEqual runs the full differential corpus on both engines and
// compares row multisets.
func assertCorpusEqual(t *testing.T, want, got *engine.Engine) {
	t.Helper()
	for _, q := range bench.Corpus {
		w, err := want.Query(q.SQL)
		if err != nil {
			t.Fatalf("%s on reference engine: %v", q.Name, err)
		}
		g, err := got.Query(q.SQL)
		if err != nil {
			t.Fatalf("%s on recovered engine: %v", q.Name, err)
		}
		assertSameRowMultiset(t, q.Name, w.Rows, g.Rows)
	}
}

// stateFingerprint summarizes an engine's durable state: table names, row
// counts, index declarations, function names.
func stateFingerprint(e *engine.Engine) string {
	var parts []string
	for _, tb := range e.Cat.Tables() {
		st, ok := e.Store.Table(tb.Name)
		n := 0
		if ok {
			n = st.RowCount()
		}
		ix := append([]string(nil), tb.Indexes...)
		sort.Strings(ix)
		parts = append(parts, tb.Name+":"+strings.Join(ix, ",")+":"+strconv.Itoa(n))
	}
	for _, f := range e.Cat.Functions() {
		parts = append(parts, "fn:"+f.Def.Name)
	}
	return strings.Join(parts, ";")
}

func TestDurableRecoveryMatchesVolatile(t *testing.T) {
	dir := t.TempDir()
	e1 := openDurable(t, dir)
	populateDurable(t, e1)

	// Reference: a volatile engine with identical data that never restarts.
	ref := diffEngine(t, engine.SYS1, engine.ModeRewrite, bench.SmallConfig())

	assertCorpusEqual(t, ref, e1)
	if err := e1.Durable.Close(); err != nil {
		t.Fatal(err)
	}

	e2 := openDurable(t, dir)
	if got := e2.Durable.Stats().RecoveredRecords; got == 0 {
		t.Fatal("expected recovered records after reopen")
	}
	if f1, f2 := stateFingerprint(e1), stateFingerprint(e2); f1 != f2 {
		t.Fatalf("state fingerprint changed across restart:\n pre: %s\npost: %s", f1, f2)
	}
	assertCorpusEqual(t, ref, e2)
}

func TestDurableCheckpointTruncatesAndRecovers(t *testing.T) {
	dir := t.TempDir()
	e1 := openDurable(t, dir)
	populateDurable(t, e1)

	preBytes := e1.Durable.Stats().WALBytes
	if preBytes == 0 {
		t.Fatal("expected a non-empty WAL after populate")
	}
	if err := e1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st := e1.Durable.Stats()
	if st.Checkpoints != 1 {
		t.Fatalf("checkpoints = %d, want 1", st.Checkpoints)
	}
	if st.WALBytes >= preBytes {
		t.Fatalf("checkpoint did not truncate the log: %d -> %d bytes", preBytes, st.WALBytes)
	}

	// Mutations after the checkpoint land in the log tail.
	if err := e1.ExecScript("insert into customer values (99001, 'post-ckpt', 1, 1);"); err != nil {
		t.Fatal(err)
	}
	if err := e1.Durable.Close(); err != nil {
		t.Fatal(err)
	}

	e2 := openDurable(t, dir)
	res, err := e2.Query("select name from customer where custkey = 99001")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "post-ckpt" {
		t.Fatalf("post-checkpoint insert lost: %v", res.Rows)
	}
	if f1, f2 := stateFingerprint(e1), stateFingerprint(e2); f1 != f2 {
		t.Fatalf("fingerprint mismatch after checkpoint+tail recovery:\n pre: %s\npost: %s", f1, f2)
	}
}

// TestDurableRecoveryIdempotent: running recovery twice (open, close, open)
// must converge — replaying the same snapshot + tail into a fresh engine
// yields the same state, with no duplicated rows or DDL.
func TestDurableRecoveryIdempotent(t *testing.T) {
	dir := t.TempDir()
	e1 := openDurable(t, dir)
	populateDurable(t, e1)
	if err := e1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := e1.ExecScript("insert into customer values (99002, 'tail', 2, 1);"); err != nil {
		t.Fatal(err)
	}
	if err := e1.Durable.Close(); err != nil {
		t.Fatal(err)
	}
	want := stateFingerprint(e1)

	for i := 0; i < 2; i++ {
		e := openDurable(t, dir)
		if got := stateFingerprint(e); got != want {
			t.Fatalf("open #%d diverged:\nwant: %s\n got: %s", i+1, want, got)
		}
		if err := e.Durable.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDurableIndexesSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	e1 := openDurable(t, dir)
	if err := e1.ExecScript("create table kv (k int primary key, v varchar);"); err != nil {
		t.Fatal(err)
	}
	if err := e1.CreateIndex("kv", "v"); err != nil {
		t.Fatal(err)
	}
	if err := e1.Durable.Close(); err != nil {
		t.Fatal(err)
	}

	e2 := openDurable(t, dir)
	tb, ok := e2.Cat.Table("kv")
	if !ok {
		t.Fatal("table kv not recovered")
	}
	if len(tb.Indexes) != 1 || tb.Indexes[0] != "v" {
		t.Fatalf("index not recovered: %v", tb.Indexes)
	}
}

// TestDurableTornTail simulates a kill -9 mid-append: the final record of
// the last segment is cut short, recovery must keep everything before it.
func TestDurableTornTail(t *testing.T) {
	dir := t.TempDir()
	e1 := openDurable(t, dir)
	if err := e1.ExecScript(`create table kv (k int primary key, v varchar);
		insert into kv values (1, 'a');
		insert into kv values (2, 'b');`); err != nil {
		t.Fatal(err)
	}
	if err := e1.Durable.Close(); err != nil {
		t.Fatal(err)
	}

	seg := lastSegment(t, dir)
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Cut into the final record's frame (the second insert).
	if err := os.Truncate(seg, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	e2 := openDurable(t, dir)
	if torn := e2.Durable.Stats().TornBytes; torn == 0 {
		t.Fatal("expected a truncated torn tail to be reported")
	}
	res, err := e2.Query("select k from kv")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 1 {
		t.Fatalf("torn-tail recovery kept wrong rows: %v", res.Rows)
	}
	// The truncated log must append cleanly again.
	if err := e2.ExecScript("insert into kv values (3, 'c');"); err != nil {
		t.Fatal(err)
	}
	if err := e2.Durable.Close(); err != nil {
		t.Fatal(err)
	}
	e3 := openDurable(t, dir)
	res, err = e3.Query("select count(*) from kv")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 2 {
		t.Fatalf("post-torn append lost: count = %v", res.Rows[0][0])
	}
}

// TestDurableCorruptLogFails: a CRC-corrupted record mid-log is real damage,
// not a torn tail — recovery must refuse rather than silently drop data.
func TestDurableCorruptLogFails(t *testing.T) {
	dir := t.TempDir()
	e1 := openDurable(t, dir)
	if err := e1.ExecScript(`create table kv (k int primary key, v varchar);
		insert into kv values (1, 'a');
		insert into kv values (2, 'b');`); err != nil {
		t.Fatal(err)
	}
	if err := e1.Durable.Close(); err != nil {
		t.Fatal(err)
	}

	seg := lastSegment(t, dir)
	buf, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)/2] ^= 0xff // flip a bit mid-log
	if err := os.WriteFile(seg, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = engine.OpenDurable(dir, engine.SYS1, engine.ModeRewrite,
		engine.DurabilityOptions{Sync: wal.SyncNone})
	if err == nil {
		t.Fatal("expected corruption error")
	}
	if !errors.Is(err, wal.ErrCorrupt) {
		t.Fatalf("error %v is not wal.ErrCorrupt", err)
	}
}

func TestVolatileCheckpointErrors(t *testing.T) {
	e := engine.New(engine.SYS1, engine.ModeRewrite)
	if err := e.Checkpoint(); err == nil {
		t.Fatal("expected an error checkpointing a volatile engine")
	}
}

func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments in %s (err=%v)", dir, err)
	}
	sort.Strings(segs)
	return segs[len(segs)-1]
}
