package ddg

import (
	"reflect"
	"testing"

	"udfdecorr/internal/ast"
	"udfdecorr/internal/parser"
)

func parseBody(t *testing.T, body string) []ast.Stmt {
	t.Helper()
	script, err := parser.ParseScript("create function w() returns int as begin " + body + " end")
	if err != nil {
		t.Fatal(err)
	}
	return script.Functions[0].Body
}

func TestReadsWrites(t *testing.T) {
	stmts := parseBody(t, `
	  int profit = (@price - @disc) - (cost * @qty);
	  if (profit < 0) total_loss = total_loss - profit;
	  select sum(totalprice) into :tb from orders where custkey = :ckey;
	`)
	r0, w0 := ReadsWrites(stmts[0])
	if !reflect.DeepEqual(r0.Sorted(), []string{"cost", "disc", "price", "qty"}) {
		t.Errorf("reads(decl) = %v", r0.Sorted())
	}
	if !reflect.DeepEqual(w0.Sorted(), []string{"profit"}) {
		t.Errorf("writes(decl) = %v", w0.Sorted())
	}
	r1, w1 := ReadsWrites(stmts[1])
	if !r1["profit"] || !r1["total_loss"] {
		t.Errorf("reads(if) = %v", r1.Sorted())
	}
	if !w1["total_loss"] {
		t.Errorf("writes(if) = %v", w1.Sorted())
	}
	r2, w2 := ReadsWrites(stmts[2])
	if !r2["ckey"] {
		t.Errorf("reads(select into) should include the query parameter: %v", r2.Sorted())
	}
	if !w2["tb"] {
		t.Errorf("writes(select into) = %v", w2.Sorted())
	}
}

func TestFetchStatusWrite(t *testing.T) {
	stmts := parseBody(t, `
	  declare c cursor for select price from lineitem;
	  open c;
	  fetch next from c into @p;
	  return 1;
	`)
	_, w := ReadsWrites(stmts[2])
	if !w["p"] || !w["@@fetch_status"] {
		t.Errorf("fetch writes = %v", w.Sorted())
	}
}

func TestCyclicDependence(t *testing.T) {
	// Example 5's loop body (without the trailing fetch).
	body := parseBody(t, `
	  int profit = (@price - @disc) - (cost * @qty);
	  if (profit < 0) total_loss = total_loss - profit;
	`)
	g := Build(body)
	cyc := g.CyclicStmts()
	if cyc[0] {
		t.Error("profit computation is not cyclic")
	}
	if !cyc[1] {
		t.Error("total_loss accumulation is cyclic (self-dependence)")
	}
	if g.FirstCyclic() != 1 {
		t.Errorf("first cyclic = %d", g.FirstCyclic())
	}
}

func TestNoCycle(t *testing.T) {
	body := parseBody(t, `
	  int a = @x + 1;
	  int b = a * 2;
	`)
	g := Build(body)
	if g.FirstCyclic() != -1 {
		t.Errorf("acyclic body reported cycle at %d", g.FirstCyclic())
	}
	// Flow edge a -> b exists.
	found := false
	for _, j := range g.Edges[0] {
		if j == 1 {
			found = true
		}
	}
	if !found {
		t.Error("flow dependence 0 -> 1 missing")
	}
}

func TestMutualCycle(t *testing.T) {
	body := parseBody(t, `
	  a = b + 1;
	  b = a * 2;
	`)
	g := Build(body)
	cyc := g.CyclicStmts()
	if !cyc[0] || !cyc[1] {
		t.Errorf("mutual dependence should make both cyclic: %v", cyc)
	}
	if g.FirstCyclic() != 0 {
		t.Errorf("first cyclic = %d", g.FirstCyclic())
	}
}
