// Package ddg builds the data-dependence graph of Section VII: per-statement
// read/write sets over procedural variables, flow-dependence edges including
// loop-carried dependences, and detection of the first statement
// participating in a dependence cycle — the split point for auxiliary
// aggregate extraction.
package ddg

import (
	"sort"

	"udfdecorr/internal/ast"
)

// VarSet is a set of variable names.
type VarSet map[string]bool

// Add inserts a name.
func (s VarSet) Add(name string) { s[name] = true }

// Union merges another set.
func (s VarSet) Union(o VarSet) {
	for k := range o {
		s[k] = true
	}
}

// Sorted returns names in order (for deterministic output).
func (s VarSet) Sorted() []string {
	out := make([]string, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// exprReads collects variable reads from a procedural-scope expression:
// unqualified column names and parameter references. Inside embedded
// queries only parameter references count (bare names there are table
// columns).
func exprReads(e ast.Expr, out VarSet) {
	switch x := e.(type) {
	case nil:
		return
	case *ast.ColName:
		if x.Qual == "" {
			out.Add(x.Name)
		}
	case *ast.ParamRef:
		out.Add(x.Name)
	case *ast.Lit:
	case *ast.BinExpr:
		exprReads(x.L, out)
		exprReads(x.R, out)
	case *ast.UnaryExpr:
		exprReads(x.E, out)
	case *ast.IsNullExpr:
		exprReads(x.E, out)
	case *ast.CaseExpr:
		for _, w := range x.Whens {
			exprReads(w.Cond, out)
			exprReads(w.Then, out)
		}
		exprReads(x.Else, out)
	case *ast.FuncCall:
		for _, a := range x.Args {
			exprReads(a, out)
		}
	case *ast.SubqueryExpr:
		queryReads(x.Select, out)
	case *ast.ExistsExpr:
		queryReads(x.Select, out)
	case *ast.InExpr:
		exprReads(x.E, out)
		if x.Select != nil {
			queryReads(x.Select, out)
		}
		for _, le := range x.List {
			exprReads(le, out)
		}
	}
}

// queryReads collects parameter references from an embedded query.
func queryReads(sel *ast.SelectStmt, out VarSet) {
	var visitExpr func(e ast.Expr)
	visitExpr = func(e ast.Expr) {
		switch x := e.(type) {
		case nil:
		case *ast.ParamRef:
			out.Add(x.Name)
		case *ast.BinExpr:
			visitExpr(x.L)
			visitExpr(x.R)
		case *ast.UnaryExpr:
			visitExpr(x.E)
		case *ast.IsNullExpr:
			visitExpr(x.E)
		case *ast.CaseExpr:
			for _, w := range x.Whens {
				visitExpr(w.Cond)
				visitExpr(w.Then)
			}
			visitExpr(x.Else)
		case *ast.FuncCall:
			for _, a := range x.Args {
				visitExpr(a)
			}
		case *ast.SubqueryExpr:
			queryReads(x.Select, out)
		case *ast.ExistsExpr:
			queryReads(x.Select, out)
		case *ast.InExpr:
			visitExpr(x.E)
			if x.Select != nil {
				queryReads(x.Select, out)
			}
			for _, le := range x.List {
				visitExpr(le)
			}
		}
	}
	for _, it := range sel.Items {
		visitExpr(it.Expr)
	}
	visitExpr(sel.Where)
	for _, g := range sel.GroupBy {
		visitExpr(g)
	}
	visitExpr(sel.Having)
	for _, tr := range sel.From {
		if sr, ok := tr.(*ast.SubqueryRef); ok {
			queryReads(sr.Select, out)
		}
		if fr, ok := tr.(*ast.FuncRef); ok {
			for _, a := range fr.Args {
				visitExpr(a)
			}
		}
		if jr, ok := tr.(*ast.JoinRef); ok {
			visitExpr(jr.On)
		}
	}
}

// ReadsWrites computes the read and write sets of a statement (treating
// if-blocks and loops as units).
func ReadsWrites(s ast.Stmt) (reads, writes VarSet) {
	reads, writes = VarSet{}, VarSet{}
	collect(s, reads, writes)
	return reads, writes
}

func collect(s ast.Stmt, reads, writes VarSet) {
	switch n := s.(type) {
	case *ast.DeclareStmt:
		exprReads(n.Init, reads)
		writes.Add(n.Name)
	case *ast.AssignStmt:
		exprReads(n.Expr, reads)
		writes.Add(n.Name)
	case *ast.IfStmt:
		exprReads(n.Cond, reads)
		for _, st := range n.Then {
			collect(st, reads, writes)
		}
		for _, st := range n.Else {
			collect(st, reads, writes)
		}
	case *ast.ReturnStmt:
		exprReads(n.Expr, reads)
	case *ast.SelectIntoStmt:
		queryReads(n.Select, reads)
		for _, t := range n.Select.Into {
			writes.Add(t)
		}
	case *ast.DeclareCursorStmt:
		queryReads(n.Select, reads)
	case *ast.FetchStmt:
		for _, t := range n.Into {
			writes.Add(t)
		}
		writes.Add("@@fetch_status")
	case *ast.WhileStmt:
		exprReads(n.Cond, reads)
		for _, st := range n.Body {
			collect(st, reads, writes)
		}
	case *ast.InsertStmt:
		for _, v := range n.Values {
			exprReads(v, reads)
		}
		writes.Add(n.Table)
	}
}

// Graph is the data-dependence graph of a loop body: Edges[i] lists the
// statements that depend on statement i (flow dependences, including
// loop-carried ones — in a loop, a write in one iteration reaches reads in
// the next regardless of statement order).
type Graph struct {
	Stmts []ast.Stmt
	Reads []VarSet
	Write []VarSet
	Edges [][]int
}

// Build constructs the dependence graph of a loop body.
func Build(stmts []ast.Stmt) *Graph {
	g := &Graph{Stmts: stmts}
	g.Reads = make([]VarSet, len(stmts))
	g.Write = make([]VarSet, len(stmts))
	for i, s := range stmts {
		g.Reads[i], g.Write[i] = ReadsWrites(s)
	}
	g.Edges = make([][]int, len(stmts))
	for i := range stmts {
		for j := range stmts {
			if i == j {
				// Self dependence: statement both reads and writes a var.
				dep := false
				for v := range g.Write[i] {
					if g.Reads[i][v] {
						dep = true
						break
					}
				}
				if dep {
					g.Edges[i] = append(g.Edges[i], i)
				}
				continue
			}
			dep := false
			for v := range g.Write[i] {
				if g.Reads[j][v] {
					dep = true
					break
				}
			}
			if dep {
				g.Edges[i] = append(g.Edges[i], j)
			}
		}
	}
	return g
}

// CyclicStmts returns the set of statement indexes that participate in a
// dependence cycle.
func (g *Graph) CyclicStmts() map[int]bool {
	// Tarjan-free approach: a statement is cyclic if it can reach itself.
	out := map[int]bool{}
	n := len(g.Stmts)
	reach := make([][]bool, n)
	for i := range reach {
		reach[i] = make([]bool, n)
		var stack []int
		stack = append(stack, g.Edges[i]...)
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if reach[i][x] {
				continue
			}
			reach[i][x] = true
			stack = append(stack, g.Edges[x]...)
		}
		if reach[i][i] {
			out[i] = true
		}
	}
	return out
}

// FirstCyclic returns the index of the first statement participating in a
// dependence cycle, or -1 when the loop body has no cyclic dependence.
func (g *Graph) FirstCyclic() int {
	cyc := g.CyclicStmts()
	first := -1
	for i := range cyc {
		if first < 0 || i < first {
			first = i
		}
	}
	return first
}
