// Package catalog holds schema metadata: tables, scalar and table-valued
// user-defined functions, and user-defined aggregate functions (both native
// and the auxiliary aggregates synthesized by the loop rewriter).
package catalog

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"udfdecorr/internal/ast"
	"udfdecorr/internal/sqltypes"
)

// Column is a named, typed column.
type Column struct {
	Name string
	Type sqltypes.Kind
}

// Table describes a base table.
//
// A *Table is effectively immutable once registered: the only mutation after
// registration is AddIndex, which the catalog serializes under its lock and
// which callers must not interleave with concurrent planning (the query
// service takes its DDL write lock around index creation).
type Table struct {
	Name    string
	Cols    []Column
	PKCols  []string // primary-key column names (may be empty)
	Indexes []string // columns with secondary hash indexes
	// ShardKey is the column the sharded query tier hash-partitions this
	// table by; empty means the table is replicated to every shard. The
	// single-node engine stores it only so DDL round-trips through the WAL
	// and the router can rebuild its placement map from forwarded DDL.
	ShardKey string
}

// ColIndex returns the ordinal of a column, or -1.
func (t *Table) ColIndex(name string) int {
	for i, c := range t.Cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Function is a user-defined function (scalar or table-valued).
type Function struct {
	Def *ast.CreateFunctionStmt
}

// IsTableValued reports whether the function returns a table.
func (f *Function) IsTableValued() bool { return f.Def.TableName != "" }

// ReturnCols returns the schema of a table-valued function's result.
func (f *Function) ReturnCols() []Column {
	cols := make([]Column, len(f.Def.TableCols))
	for i, c := range f.Def.TableCols {
		cols[i] = Column{Name: c.Name, Type: c.Type}
	}
	return cols
}

// AggStateVar is one state variable of a user-defined aggregate with its
// statically-determined initial value.
type AggStateVar struct {
	Name string
	Init sqltypes.Value
}

// Aggregate is a user-defined aggregate function in the
// initialize/accumulate/terminate style of Section VII (Example 6).
// Accumulate is a sequence of procedural statements executed once per input
// row with the parameters bound; Result names the state variable returned by
// terminate.
type Aggregate struct {
	Name   string
	State  []AggStateVar
	Params []string // accumulate parameter names, in call order
	Body   []ast.Stmt
	Result string
}

// SQL renders the aggregate definition in the paper's
// initialize/accumulate/terminate surface syntax for display by the rewrite
// tool.
func (a *Aggregate) SQL() string {
	var b strings.Builder
	fmt.Fprintf(&b, "CREATE AGGREGATE %s(%s) AS\n", a.Name, strings.Join(a.Params, ", "))
	b.WriteString("  INITIALIZE\n")
	for _, s := range a.State {
		fmt.Fprintf(&b, "    %s = %s;\n", s.Name, s.Init.String())
	}
	b.WriteString("  ACCUMULATE\n")
	for _, s := range a.Body {
		fmt.Fprintf(&b, "    %s\n", s.SQL())
	}
	fmt.Fprintf(&b, "  TERMINATE\n    RETURN %s;\n", a.Result)
	return b.String()
}

// Fingerprint renders the aggregate's full definition (everything except the
// name) for content comparison and content-addressed naming.
func (a *Aggregate) Fingerprint() string {
	var b strings.Builder
	for _, s := range a.State {
		fmt.Fprintf(&b, "S:%s=%s;", s.Name, s.Init.String())
	}
	fmt.Fprintf(&b, "P:%s;", strings.Join(a.Params, ","))
	for _, s := range a.Body {
		fmt.Fprintf(&b, "B:%s;", s.SQL())
	}
	fmt.Fprintf(&b, "R:%s", a.Result)
	return b.String()
}

// BuiltinAggregates is the set of aggregate function names the engine
// implements natively.
var BuiltinAggregates = map[string]bool{
	"sum": true, "count": true, "min": true, "max": true, "avg": true,
}

// Catalog is a named collection of tables, functions and aggregates.
//
// A Catalog is safe for concurrent use: lookups take a read lock and DDL
// registration takes a write lock. The schema version counter increments on
// every mutation that can change what plans a query text compiles to
// (CREATE TABLE, CREATE FUNCTION, index creation); the query service uses it
// to invalidate cached plans on DDL. Registering an auxiliary aggregate does
// NOT bump the version: auxiliary aggregates are content-addressed artifacts
// derived from existing functions and never invalidate an existing plan.
type Catalog struct {
	mu       sync.RWMutex
	version  int64
	tables   map[string]*Table
	funcs    map[string]*Function
	aggs     map[string]*Aggregate
	onChange func(Change) error
}

// Change is one durable schema mutation handed to the commit hook. Exactly
// one group of fields is set: Table for CREATE TABLE, Function for CREATE
// FUNCTION, or IndexTable/IndexCol for a secondary-index declaration.
// Auxiliary aggregates are NOT reported: they are content-addressed
// artifacts re-derived from the functions during planning, so logging them
// would be redundant state.
type Change struct {
	Table      *Table
	Function   *ast.CreateFunctionStmt
	IndexTable string
	IndexCol   string
}

// SetChangeHook installs the durability commit hook: fn runs under the
// catalog lock before each schema mutation commits, and an error from it
// vetoes the mutation (write-ahead). The hook must not call back into the
// catalog. The durability layer attaches it only after recovery replay, so
// replayed DDL is not re-logged.
func (c *Catalog) SetChangeHook(fn func(Change) error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onChange = fn
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{
		tables: map[string]*Table{},
		funcs:  map[string]*Function{},
		aggs:   map[string]*Aggregate{},
	}
}

// Version returns the schema version: it changes whenever a table or
// function is added or an index is declared.
func (c *Catalog) Version() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.version
}

// AddTable registers a table; it is an error to register the same name twice.
func (c *Catalog) AddTable(t *Table) error {
	name := strings.ToLower(t.Name)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.tables[name]; dup {
		return fmt.Errorf("table %q already exists", t.Name)
	}
	if c.onChange != nil {
		if err := c.onChange(Change{Table: t}); err != nil {
			return fmt.Errorf("table %q: commit hook: %w", t.Name, err)
		}
	}
	c.tables[name] = t
	c.version++
	return nil
}

// AddTableFromAST registers a table from a parsed CREATE TABLE.
func (c *Catalog) AddTableFromAST(stmt *ast.CreateTableStmt) (*Table, error) {
	t := &Table{Name: stmt.Name, ShardKey: stmt.ShardKey}
	for _, col := range stmt.Cols {
		t.Cols = append(t.Cols, Column{Name: col.Name, Type: col.Type})
		if col.PrimaryKey {
			t.PKCols = append(t.PKCols, col.Name)
		}
	}
	if err := c.AddTable(t); err != nil {
		return nil, err
	}
	return t, nil
}

// AddIndex declares a secondary hash index on a column and bumps the schema
// version (an index changes the physical plans the planner picks).
func (c *Catalog) AddIndex(table, col string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.tables[strings.ToLower(table)]
	if !ok {
		return fmt.Errorf("unknown table %q", table)
	}
	if t.ColIndex(col) < 0 {
		return fmt.Errorf("table %q has no column %q", table, col)
	}
	for _, existing := range t.Indexes {
		if existing == col {
			return nil
		}
	}
	if c.onChange != nil {
		if err := c.onChange(Change{IndexTable: table, IndexCol: col}); err != nil {
			return fmt.Errorf("index on %s(%s): commit hook: %w", table, col, err)
		}
	}
	t.Indexes = append(t.Indexes, col)
	c.version++
	return nil
}

// Table looks up a table by name (case-insensitive).
func (c *Catalog) Table(name string) (*Table, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[strings.ToLower(name)]
	return t, ok
}

// Tables returns all tables sorted by name.
func (c *Catalog) Tables() []*Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Table, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// AddFunction registers a UDF.
func (c *Catalog) AddFunction(def *ast.CreateFunctionStmt) (*Function, error) {
	name := strings.ToLower(def.Name)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.funcs[name]; dup {
		return nil, fmt.Errorf("function %q already exists", def.Name)
	}
	if c.onChange != nil {
		if err := c.onChange(Change{Function: def}); err != nil {
			return nil, fmt.Errorf("function %q: commit hook: %w", def.Name, err)
		}
	}
	f := &Function{Def: def}
	c.funcs[name] = f
	c.version++
	return f, nil
}

// Function looks up a UDF by name.
func (c *Catalog) Function(name string) (*Function, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	f, ok := c.funcs[strings.ToLower(name)]
	return f, ok
}

// Functions returns all UDFs sorted by name.
func (c *Catalog) Functions() []*Function {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Function, 0, len(c.funcs))
	for _, f := range c.funcs {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Def.Name < out[j].Def.Name })
	return out
}

// AddAggregate registers a user-defined aggregate.
func (c *Catalog) AddAggregate(a *Aggregate) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.addAggregateLocked(a)
}

func (c *Catalog) addAggregateLocked(a *Aggregate) error {
	name := strings.ToLower(a.Name)
	if BuiltinAggregates[name] {
		return fmt.Errorf("aggregate %q shadows a builtin", a.Name)
	}
	if _, dup := c.aggs[name]; dup {
		return fmt.Errorf("aggregate %q already exists", a.Name)
	}
	c.aggs[name] = a
	return nil
}

// EnsureAggregate registers an aggregate unless an identical definition is
// already present (the check and the insert are one atomic step, so
// concurrent rewrites of the same UDF can both call it). Auxiliary
// aggregates are content-addressed (see core's synthAggName), so a name
// collision with a different definition indicates corruption and fails.
func (c *Catalog) EnsureAggregate(a *Aggregate) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if existing, ok := c.aggs[strings.ToLower(a.Name)]; ok {
		if existing.Fingerprint() != a.Fingerprint() {
			return fmt.Errorf("aggregate %q already exists with a different definition", a.Name)
		}
		return nil
	}
	return c.addAggregateLocked(a)
}

// Aggregate looks up a user-defined aggregate by name.
func (c *Catalog) Aggregate(name string) (*Aggregate, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	a, ok := c.aggs[strings.ToLower(name)]
	return a, ok
}

// IsAggregate reports whether name refers to a builtin or user-defined
// aggregate.
func (c *Catalog) IsAggregate(name string) bool {
	n := strings.ToLower(name)
	if BuiltinAggregates[n] {
		return true
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, ok := c.aggs[n]
	return ok
}

// FreshName returns a name with the given prefix that collides with no
// table, function, or aggregate in the catalog.
func (c *Catalog) FreshName(prefix string) string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for i := 1; ; i++ {
		name := fmt.Sprintf("%s_%d", prefix, i)
		if _, ok := c.tables[name]; ok {
			continue
		}
		if _, ok := c.funcs[name]; ok {
			continue
		}
		if _, ok := c.aggs[name]; ok {
			continue
		}
		return name
	}
}
