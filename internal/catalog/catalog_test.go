package catalog

import (
	"strings"
	"testing"

	"udfdecorr/internal/ast"
	"udfdecorr/internal/sqltypes"
)

func TestAddTableAndLookup(t *testing.T) {
	c := New()
	tbl, err := c.AddTableFromAST(&ast.CreateTableStmt{
		Name: "Orders",
		Cols: []ast.ColDef{
			{Name: "orderkey", Type: sqltypes.KindInt, PrimaryKey: true},
			{Name: "totalprice", Type: sqltypes.KindFloat},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.PKCols) != 1 || tbl.PKCols[0] != "orderkey" {
		t.Errorf("pk = %v", tbl.PKCols)
	}
	if _, ok := c.Table("ORDERS"); !ok {
		t.Error("case-insensitive lookup failed")
	}
	if err := c.AddTable(&Table{Name: "orders"}); err == nil {
		t.Error("duplicate must fail")
	}
	if tbl.ColIndex("totalprice") != 1 || tbl.ColIndex("ghost") != -1 {
		t.Error("ColIndex")
	}
}

func TestFunctions(t *testing.T) {
	c := New()
	def := &ast.CreateFunctionStmt{Name: "f", ReturnType: sqltypes.KindInt}
	if _, err := c.AddFunction(def); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddFunction(def); err == nil {
		t.Error("duplicate function must fail")
	}
	f, ok := c.Function("F")
	if !ok || f.IsTableValued() {
		t.Error("scalar function lookup")
	}
	tv := &ast.CreateFunctionStmt{Name: "g", TableName: "tt",
		TableCols: []ast.ColDef{{Name: "a", Type: sqltypes.KindInt}}}
	c.AddFunction(tv)
	g, _ := c.Function("g")
	if !g.IsTableValued() || len(g.ReturnCols()) != 1 {
		t.Error("table function metadata")
	}
}

func TestAggregates(t *testing.T) {
	c := New()
	agg := &Aggregate{Name: "myagg", Result: "acc",
		State:  []AggStateVar{{Name: "acc", Init: sqltypes.NewInt(0)}},
		Params: []string{"x"}}
	if err := c.AddAggregate(agg); err != nil {
		t.Fatal(err)
	}
	if err := c.AddAggregate(agg); err == nil {
		t.Error("duplicate aggregate must fail")
	}
	if err := c.AddAggregate(&Aggregate{Name: "sum"}); err == nil {
		t.Error("shadowing a builtin must fail")
	}
	if !c.IsAggregate("SUM") || !c.IsAggregate("myagg") || c.IsAggregate("nope") {
		t.Error("IsAggregate")
	}
	sql := agg.SQL()
	for _, want := range []string{"CREATE AGGREGATE myagg(x)", "INITIALIZE", "acc = 0", "TERMINATE"} {
		if !strings.Contains(sql, want) {
			t.Errorf("aggregate SQL missing %q:\n%s", want, sql)
		}
	}
}

func TestFreshName(t *testing.T) {
	c := New()
	c.AddTable(&Table{Name: "aux_1"})
	n := c.FreshName("aux")
	if n == "aux_1" {
		t.Error("fresh name collided with a table")
	}
	if !strings.HasPrefix(n, "aux_") {
		t.Errorf("fresh name = %q", n)
	}
}
