package sqltypes

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull: "NULL", KindInt: "INT", KindFloat: "FLOAT",
		KindString: "VARCHAR", KindBool: "BOOLEAN",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestZeroValueIsNull(t *testing.T) {
	var v Value
	if !v.IsNull() {
		t.Fatal("zero Value must be NULL")
	}
	if v.Kind() != KindNull {
		t.Fatalf("zero Value kind = %v", v.Kind())
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if v := NewInt(42); v.Int() != 42 || v.Kind() != KindInt {
		t.Errorf("NewInt: %v", v)
	}
	if v := NewFloat(2.5); v.Float() != 2.5 || v.Kind() != KindFloat {
		t.Errorf("NewFloat: %v", v)
	}
	if v := NewString("hi"); v.Str() != "hi" || v.Kind() != KindString {
		t.Errorf("NewString: %v", v)
	}
	if v := NewBool(true); !v.Bool() || v.Kind() != KindBool {
		t.Errorf("NewBool(true): %v", v)
	}
	if v := NewBool(false); v.Bool() {
		t.Errorf("NewBool(false): %v", v)
	}
}

func TestAsFloatAsInt(t *testing.T) {
	if f, ok := NewInt(3).AsFloat(); !ok || f != 3.0 {
		t.Errorf("int AsFloat = %v,%v", f, ok)
	}
	if f, ok := NewFloat(3.5).AsFloat(); !ok || f != 3.5 {
		t.Errorf("float AsFloat = %v,%v", f, ok)
	}
	if _, ok := NewString("x").AsFloat(); ok {
		t.Error("string AsFloat should fail")
	}
	if _, ok := Null.AsFloat(); ok {
		t.Error("null AsFloat should fail")
	}
	if i, ok := NewFloat(3.9).AsInt(); !ok || i != 3 {
		t.Errorf("float AsInt = %v,%v", i, ok)
	}
	if i, ok := NewInt(-7).AsInt(); !ok || i != -7 {
		t.Errorf("int AsInt = %v,%v", i, ok)
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null, "NULL"},
		{NewInt(5), "5"},
		{NewFloat(1.5), "1.5"},
		{NewString("a'b"), "'a''b'"},
		{NewBool(true), "TRUE"},
		{NewBool(false), "FALSE"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", c.v.Kind(), got, c.want)
		}
	}
	if got := NewString("x").Display(); got != "x" {
		t.Errorf("Display = %q", got)
	}
}

func TestTriLogic(t *testing.T) {
	// Truth tables for SQL 3VL.
	and := [3][3]Tri{
		{False, False, False},
		{False, True, Unknown},
		{False, Unknown, Unknown},
	}
	or := [3][3]Tri{
		{False, True, Unknown},
		{True, True, True},
		{Unknown, True, Unknown},
	}
	vals := []Tri{False, True, Unknown}
	for i, a := range vals {
		for j, b := range vals {
			if got := a.And(b); got != and[i][j] {
				t.Errorf("%v AND %v = %v, want %v", a, b, got, and[i][j])
			}
			if got := a.Or(b); got != or[i][j] {
				t.Errorf("%v OR %v = %v, want %v", a, b, got, or[i][j])
			}
		}
	}
	if True.Not() != False || False.Not() != True || Unknown.Not() != Unknown {
		t.Error("Not truth table broken")
	}
}

func TestTriOfAndBack(t *testing.T) {
	if TriOf(Null) != Unknown {
		t.Error("TriOf(NULL)")
	}
	if TriOf(NewBool(true)) != True || TriOf(NewBool(false)) != False {
		t.Error("TriOf(bool)")
	}
	if TriOf(NewInt(7)) != True || TriOf(NewInt(0)) != False {
		t.Error("TriOf(int) coercion")
	}
	if !TriValue(Unknown).IsNull() {
		t.Error("TriValue(Unknown) should be NULL")
	}
	if !TriValue(True).Bool() || TriValue(False).Bool() {
		t.Error("TriValue bool round trip")
	}
}

func TestCompare(t *testing.T) {
	if _, ok := Compare(Null, NewInt(1)); ok {
		t.Error("NULL compares should fail")
	}
	if c, ok := Compare(NewInt(1), NewFloat(1.0)); !ok || c != 0 {
		t.Error("numeric promotion in compare")
	}
	if c, ok := Compare(NewInt(2), NewInt(3)); !ok || c != -1 {
		t.Error("int compare")
	}
	if c, ok := Compare(NewString("a"), NewString("b")); !ok || c >= 0 {
		t.Error("string compare")
	}
	if _, ok := Compare(NewString("a"), NewInt(1)); ok {
		t.Error("cross-kind compare should fail")
	}
	if c, ok := Compare(NewBool(false), NewBool(true)); !ok || c >= 0 {
		t.Error("bool compare")
	}
}

func TestTotalCompareIsTotalOrder(t *testing.T) {
	vals := []Value{Null, NewBool(false), NewBool(true), NewInt(-1), NewInt(0),
		NewFloat(0.5), NewInt(1), NewString(""), NewString("z")}
	for i := range vals {
		for j := range vals {
			c := TotalCompare(vals[i], vals[j])
			d := TotalCompare(vals[j], vals[i])
			if c != -d {
				t.Errorf("antisymmetry broken for %v,%v", vals[i], vals[j])
			}
			if i == j && c != 0 {
				t.Errorf("reflexivity broken for %v", vals[i])
			}
		}
	}
	// NULL sorts first.
	for _, v := range vals[1:] {
		if TotalCompare(Null, v) >= 0 {
			t.Errorf("NULL should sort before %v", v)
		}
	}
}

func TestArithIntAndFloat(t *testing.T) {
	cases := []struct {
		op   ArithOp
		a, b Value
		want Value
	}{
		{OpAdd, NewInt(2), NewInt(3), NewInt(5)},
		{OpSub, NewInt(2), NewInt(3), NewInt(-1)},
		{OpMul, NewInt(4), NewInt(3), NewInt(12)},
		{OpDiv, NewInt(7), NewInt(2), NewInt(3)},
		{OpMod, NewInt(7), NewInt(2), NewInt(1)},
		{OpAdd, NewInt(2), NewFloat(0.5), NewFloat(2.5)},
		{OpMul, NewFloat(1.5), NewInt(2), NewFloat(3)},
		{OpDiv, NewFloat(7), NewFloat(2), NewFloat(3.5)},
	}
	for _, c := range cases {
		got, err := Arith(c.op, c.a, c.b)
		if err != nil {
			t.Errorf("%v %v %v: %v", c.a, c.op, c.b, err)
			continue
		}
		if !Equal(got, c.want) {
			t.Errorf("%v %v %v = %v, want %v", c.a, c.op, c.b, got, c.want)
		}
	}
}

func TestArithNullPropagation(t *testing.T) {
	for _, op := range []ArithOp{OpAdd, OpSub, OpMul, OpDiv, OpMod} {
		if v, err := Arith(op, Null, NewInt(1)); err != nil || !v.IsNull() {
			t.Errorf("NULL %v 1 should be NULL", op)
		}
		if v, err := Arith(op, NewInt(1), Null); err != nil || !v.IsNull() {
			t.Errorf("1 %v NULL should be NULL", op)
		}
	}
}

func TestArithErrors(t *testing.T) {
	if _, err := Arith(OpDiv, NewInt(1), NewInt(0)); err == nil {
		t.Error("int division by zero should error")
	}
	if _, err := Arith(OpDiv, NewFloat(1), NewFloat(0)); err == nil {
		t.Error("float division by zero should error")
	}
	if _, err := Arith(OpMod, NewInt(1), NewInt(0)); err == nil {
		t.Error("modulo by zero should error")
	}
	if _, err := Arith(OpAdd, NewString("a"), NewInt(1)); err == nil {
		t.Error("string arithmetic should error")
	}
}

func TestNeg(t *testing.T) {
	if v, _ := Neg(NewInt(3)); !Equal(v, NewInt(-3)) {
		t.Error("neg int")
	}
	if v, _ := Neg(NewFloat(2.5)); !Equal(v, NewFloat(-2.5)) {
		t.Error("neg float")
	}
	if v, _ := Neg(Null); !v.IsNull() {
		t.Error("neg NULL")
	}
	if _, err := Neg(NewString("x")); err == nil {
		t.Error("neg string should error")
	}
}

func TestConcat(t *testing.T) {
	if v := Concat(NewString("a"), NewString("b")); v.Str() != "ab" {
		t.Error("concat strings")
	}
	if v := Concat(NewString("a"), NewInt(1)); v.Str() != "a1" {
		t.Error("concat mixed")
	}
	if v := Concat(Null, NewString("b")); !v.IsNull() {
		t.Error("concat NULL")
	}
}

func TestCmp(t *testing.T) {
	if Cmp(CmpEQ, NewInt(1), NewFloat(1)) != True {
		t.Error("1 = 1.0")
	}
	if Cmp(CmpLT, NewInt(1), NewInt(2)) != True {
		t.Error("1 < 2")
	}
	if Cmp(CmpGE, NewString("b"), NewString("a")) != True {
		t.Error("b >= a")
	}
	if Cmp(CmpNE, NewInt(1), NewInt(1)) != False {
		t.Error("1 <> 1")
	}
	if Cmp(CmpEQ, Null, NewInt(1)) != Unknown {
		t.Error("NULL = 1 should be Unknown")
	}
	if Cmp(CmpEQ, NewString("a"), NewInt(1)) != Unknown {
		t.Error("cross-kind compare should be Unknown")
	}
}

func TestCmpOpNegate(t *testing.T) {
	ops := []CmpOp{CmpEQ, CmpNE, CmpLT, CmpLE, CmpGT, CmpGE}
	for _, op := range ops {
		n := op.Negate()
		if n.Negate() != op {
			t.Errorf("double negation of %v", op)
		}
		// Semantics: for non-null comparable values, op and its negation
		// must produce opposite results.
		a, b := NewInt(3), NewInt(5)
		if Cmp(op, a, b) == Cmp(n, a, b) {
			t.Errorf("%v and %v agree on (3,5)", op, n)
		}
	}
}

func TestEncodeKeyDistinctness(t *testing.T) {
	vals := []Value{
		Null, NewBool(false), NewBool(true), NewInt(0), NewInt(1),
		NewFloat(0.5), NewString(""), NewString("a"), NewString("ab"),
	}
	seen := map[string]Value{}
	for _, v := range vals {
		k := KeyOf(v)
		if prev, dup := seen[k]; dup {
			t.Errorf("key collision between %v and %v", prev, v)
		}
		seen[k] = v
	}
	// Numeric promotion: 1 and 1.0 must encode the same.
	if KeyOf(NewInt(1)) != KeyOf(NewFloat(1)) {
		t.Error("1 and 1.0 should share a key")
	}
	// -0.0 and 0.0 normalize.
	if KeyOf(NewFloat(0)) != KeyOf(NewFloat(-0.0)) {
		t.Error("-0.0 should normalize")
	}
	// Tuple keys must not be ambiguous across boundaries.
	if KeyOf(NewString("a"), NewString("b")) == KeyOf(NewString("ab"), NewString("")) {
		t.Error("tuple key ambiguity")
	}
}

// randomValue generates an arbitrary Value for property tests.
func randomValue(r *rand.Rand) Value {
	switch r.Intn(5) {
	case 0:
		return Null
	case 1:
		return NewInt(int64(r.Intn(200) - 100))
	case 2:
		return NewFloat(float64(r.Intn(200)-100) / 4)
	case 3:
		return NewString(string(rune('a' + r.Intn(26))))
	default:
		return NewBool(r.Intn(2) == 0)
	}
}

type valuePair struct{ A, B Value }

// Generate implements quick.Generator.
func (valuePair) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(valuePair{randomValue(r), randomValue(r)})
}

func TestQuickCompareSymmetry(t *testing.T) {
	f := func(p valuePair) bool {
		c1, ok1 := Compare(p.A, p.B)
		c2, ok2 := Compare(p.B, p.A)
		if ok1 != ok2 {
			return false
		}
		return !ok1 || c1 == -c2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickKeyEqualsIffCompareEquals(t *testing.T) {
	f := func(p valuePair) bool {
		sameKey := KeyOf(p.A) == KeyOf(p.B)
		c, ok := Compare(p.A, p.B)
		if p.A.IsNull() && p.B.IsNull() {
			return sameKey // NULL keys group together
		}
		if !ok {
			return !sameKey || p.A.Kind() == p.B.Kind()
		}
		return sameKey == (c == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickTriDeMorgan(t *testing.T) {
	f := func(p valuePair) bool {
		a, b := TriOf(p.A), TriOf(p.B)
		return a.And(b).Not() == a.Not().Or(b.Not()) &&
			a.Or(b).Not() == a.Not().And(b.Not())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickArithCommutativity(t *testing.T) {
	f := func(p valuePair) bool {
		for _, op := range []ArithOp{OpAdd, OpMul} {
			x, errX := Arith(op, p.A, p.B)
			y, errY := Arith(op, p.B, p.A)
			if (errX == nil) != (errY == nil) {
				return false
			}
			if errX == nil && !(x.IsNull() && y.IsNull()) && !Equal(x, y) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
