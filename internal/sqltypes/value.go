// Package sqltypes implements the SQL value system used throughout the
// library: typed scalar values with SQL NULL semantics, three-valued logic,
// numeric promotion for arithmetic, a total ordering for sorting, and a
// stable binary encoding used as join and grouping keys.
package sqltypes

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates the runtime kinds a Value can take.
type Kind uint8

const (
	// KindNull is the SQL NULL marker; it carries no payload.
	KindNull Kind = iota
	// KindInt is a 64-bit signed integer.
	KindInt
	// KindFloat is a 64-bit IEEE float.
	KindFloat
	// KindString is a variable-length character string.
	KindString
	// KindBool is a boolean (the result of predicates).
	KindBool
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INT"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "VARCHAR"
	case KindBool:
		return "BOOLEAN"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a single SQL scalar value. The zero Value is NULL.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
}

// Null is the SQL NULL value.
var Null = Value{}

// NewInt returns an INT value.
func NewInt(v int64) Value { return Value{kind: KindInt, i: v} }

// NewFloat returns a FLOAT value.
func NewFloat(v float64) Value { return Value{kind: KindFloat, f: v} }

// NewString returns a VARCHAR value.
func NewString(v string) Value { return Value{kind: KindString, s: v} }

// NewBool returns a BOOLEAN value.
func NewBool(v bool) Value {
	if v {
		return Value{kind: KindBool, i: 1}
	}
	return Value{kind: KindBool, i: 0}
}

// Kind reports the runtime kind of the value.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is SQL NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Int returns the integer payload; callers must check Kind first.
func (v Value) Int() int64 { return v.i }

// Float returns the float payload; callers must check Kind first.
func (v Value) Float() float64 { return v.f }

// Str returns the string payload; callers must check Kind first.
func (v Value) Str() string { return v.s }

// Bool returns the boolean payload; callers must check Kind first.
func (v Value) Bool() bool { return v.i != 0 }

// AsFloat converts a numeric value to float64. NULL and non-numeric values
// return 0 and ok=false.
func (v Value) AsFloat() (float64, bool) {
	switch v.kind {
	case KindInt:
		return float64(v.i), true
	case KindFloat:
		return v.f, true
	default:
		return 0, false
	}
}

// AsInt converts a numeric value to int64 (floats are truncated toward zero).
func (v Value) AsInt() (int64, bool) {
	switch v.kind {
	case KindInt:
		return v.i, true
	case KindFloat:
		return int64(v.f), true
	default:
		return 0, false
	}
}

// IsNumeric reports whether the value is INT or FLOAT.
func (v Value) IsNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// Go maps the value onto the plain Go value space — int64, float64,
// string, bool, or nil for NULL (the shape Scan targets and database/sql
// driver.Value expect).
func (v Value) Go() any {
	switch v.kind {
	case KindInt:
		return v.i
	case KindFloat:
		return v.f
	case KindString:
		return v.s
	case KindBool:
		return v.i != 0
	default:
		return nil
	}
}

// String renders the value in SQL literal syntax (NULL unquoted, strings
// single-quoted).
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return "'" + strings.ReplaceAll(v.s, "'", "''") + "'"
	case KindBool:
		if v.i != 0 {
			return "TRUE"
		}
		return "FALSE"
	default:
		return "?"
	}
}

// Display renders the value for result tables (strings unquoted).
func (v Value) Display() string {
	if v.kind == KindString {
		return v.s
	}
	return v.String()
}

// Tri is the three-valued logic truth value of SQL predicates.
type Tri uint8

// Three-valued logic constants.
const (
	False Tri = iota
	True
	Unknown
)

// Not negates a three-valued truth value.
func (t Tri) Not() Tri {
	switch t {
	case True:
		return False
	case False:
		return True
	default:
		return Unknown
	}
}

// And combines two truth values with SQL AND semantics.
func (t Tri) And(o Tri) Tri {
	if t == False || o == False {
		return False
	}
	if t == True && o == True {
		return True
	}
	return Unknown
}

// Or combines two truth values with SQL OR semantics.
func (t Tri) Or(o Tri) Tri {
	if t == True || o == True {
		return True
	}
	if t == False && o == False {
		return False
	}
	return Unknown
}

// TriOf converts a BOOLEAN value to a Tri (NULL maps to Unknown).
func TriOf(v Value) Tri {
	if v.IsNull() {
		return Unknown
	}
	if v.kind == KindBool {
		if v.i != 0 {
			return True
		}
		return False
	}
	// Non-boolean non-null values are truthy when non-zero, mirroring the
	// permissive coercion some procedural dialects perform.
	if f, ok := v.AsFloat(); ok {
		if f != 0 {
			return True
		}
		return False
	}
	return Unknown
}

// TriValue converts a Tri back to a BOOLEAN Value (Unknown maps to NULL).
func TriValue(t Tri) Value {
	switch t {
	case True:
		return NewBool(true)
	case False:
		return NewBool(false)
	default:
		return Null
	}
}

// Compare orders two values with SQL comparison semantics. It returns
// (cmp, Unknown has no meaning here): ok=false when either side is NULL or
// the kinds are incomparable. Numeric kinds compare after promotion.
func Compare(a, b Value) (int, bool) {
	if a.IsNull() || b.IsNull() {
		return 0, false
	}
	if a.IsNumeric() && b.IsNumeric() {
		if a.kind == KindInt && b.kind == KindInt {
			switch {
			case a.i < b.i:
				return -1, true
			case a.i > b.i:
				return 1, true
			default:
				return 0, true
			}
		}
		af, _ := a.AsFloat()
		bf, _ := b.AsFloat()
		switch {
		case af < bf:
			return -1, true
		case af > bf:
			return 1, true
		default:
			return 0, true
		}
	}
	if a.kind == KindString && b.kind == KindString {
		return strings.Compare(a.s, b.s), true
	}
	if a.kind == KindBool && b.kind == KindBool {
		switch {
		case a.i < b.i:
			return -1, true
		case a.i > b.i:
			return 1, true
		default:
			return 0, true
		}
	}
	return 0, false
}

// TotalCompare is a total order over values used for sorting: NULL sorts
// first, then booleans, numbers, strings. It never fails.
func TotalCompare(a, b Value) int {
	ra, rb := totalRank(a), totalRank(b)
	if ra != rb {
		return ra - rb
	}
	if c, ok := Compare(a, b); ok {
		return c
	}
	return 0
}

func totalRank(v Value) int {
	switch v.kind {
	case KindNull:
		return 0
	case KindBool:
		return 1
	case KindInt, KindFloat:
		return 2
	case KindString:
		return 3
	default:
		return 4
	}
}

// Equal reports strict SQL equality (NULL = anything is not equal; this is
// the ok && cmp==0 shorthand).
func Equal(a, b Value) bool {
	c, ok := Compare(a, b)
	return ok && c == 0
}

// EncodeKey appends a stable binary encoding of v to dst. Distinct values
// get distinct encodings and numerically-equal INT/FLOAT values encode
// identically, so encodings can serve as hash-join and group-by keys.
func EncodeKey(dst []byte, v Value) []byte {
	switch v.kind {
	case KindNull:
		return append(dst, 0x00)
	case KindBool:
		if v.i != 0 {
			return append(dst, 0x01, 0x01)
		}
		return append(dst, 0x01, 0x00)
	case KindInt, KindFloat:
		// Encode all numerics as floats so 1 and 1.0 join.
		f, _ := v.AsFloat()
		bits := math.Float64bits(f)
		if f == 0 { // normalize -0.0
			bits = 0
		}
		dst = append(dst, 0x02)
		for shift := 56; shift >= 0; shift -= 8 {
			dst = append(dst, byte(bits>>uint(shift)))
		}
		return dst
	case KindString:
		dst = append(dst, 0x03)
		n := len(v.s)
		dst = append(dst, byte(n>>24), byte(n>>16), byte(n>>8), byte(n))
		return append(dst, v.s...)
	default:
		return append(dst, 0xff)
	}
}

// KeyOf encodes a tuple of values into a single string key.
func KeyOf(vals ...Value) string {
	var buf []byte
	for _, v := range vals {
		buf = EncodeKey(buf, v)
	}
	return string(buf)
}
