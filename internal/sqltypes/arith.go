package sqltypes

import "fmt"

// ArithOp enumerates binary arithmetic operators.
type ArithOp uint8

// Arithmetic operators.
const (
	OpAdd ArithOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod
)

// String returns the SQL spelling of the operator.
func (op ArithOp) String() string {
	switch op {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpMod:
		return "%"
	default:
		return "?"
	}
}

// Arith applies a binary arithmetic operator with SQL semantics:
// NULL operands yield NULL; INT op INT stays INT (division truncates, as in
// most commercial dialects); any FLOAT operand promotes to FLOAT.
// Division or modulo by zero is an error.
func Arith(op ArithOp, a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	if !a.IsNumeric() || !b.IsNumeric() {
		return Null, fmt.Errorf("arithmetic on non-numeric values %s %s %s", a, op, b)
	}
	if a.kind == KindInt && b.kind == KindInt {
		x, y := a.i, b.i
		switch op {
		case OpAdd:
			return NewInt(x + y), nil
		case OpSub:
			return NewInt(x - y), nil
		case OpMul:
			return NewInt(x * y), nil
		case OpDiv:
			if y == 0 {
				return Null, fmt.Errorf("division by zero")
			}
			return NewInt(x / y), nil
		case OpMod:
			if y == 0 {
				return Null, fmt.Errorf("modulo by zero")
			}
			return NewInt(x % y), nil
		}
	}
	x, _ := a.AsFloat()
	y, _ := b.AsFloat()
	switch op {
	case OpAdd:
		return NewFloat(x + y), nil
	case OpSub:
		return NewFloat(x - y), nil
	case OpMul:
		return NewFloat(x * y), nil
	case OpDiv:
		if y == 0 {
			return Null, fmt.Errorf("division by zero")
		}
		return NewFloat(x / y), nil
	case OpMod:
		if y == 0 {
			return Null, fmt.Errorf("modulo by zero")
		}
		return NewFloat(float64(int64(x) % int64(y))), nil
	}
	return Null, fmt.Errorf("unknown arithmetic operator")
}

// Neg returns the arithmetic negation of a numeric value.
func Neg(a Value) (Value, error) {
	switch a.kind {
	case KindNull:
		return Null, nil
	case KindInt:
		return NewInt(-a.i), nil
	case KindFloat:
		return NewFloat(-a.f), nil
	default:
		return Null, fmt.Errorf("negation of non-numeric value %s", a)
	}
}

// Concat concatenates two values as strings with NULL propagation.
func Concat(a, b Value) Value {
	if a.IsNull() || b.IsNull() {
		return Null
	}
	return NewString(a.Display() + b.Display())
}

// CmpOp enumerates comparison operators.
type CmpOp uint8

// Comparison operators.
const (
	CmpEQ CmpOp = iota
	CmpNE
	CmpLT
	CmpLE
	CmpGT
	CmpGE
)

// String returns the SQL spelling of the comparison operator.
func (op CmpOp) String() string {
	switch op {
	case CmpEQ:
		return "="
	case CmpNE:
		return "<>"
	case CmpLT:
		return "<"
	case CmpLE:
		return "<="
	case CmpGT:
		return ">"
	case CmpGE:
		return ">="
	default:
		return "?"
	}
}

// Negate returns the logical negation of the operator (e.g. = becomes <>).
func (op CmpOp) Negate() CmpOp {
	switch op {
	case CmpEQ:
		return CmpNE
	case CmpNE:
		return CmpEQ
	case CmpLT:
		return CmpGE
	case CmpLE:
		return CmpGT
	case CmpGT:
		return CmpLE
	case CmpGE:
		return CmpLT
	}
	return op
}

// Cmp evaluates a comparison with SQL semantics, returning a Tri
// (Unknown when either side is NULL or the kinds are incomparable).
func Cmp(op CmpOp, a, b Value) Tri {
	c, ok := Compare(a, b)
	if !ok {
		return Unknown
	}
	var r bool
	switch op {
	case CmpEQ:
		r = c == 0
	case CmpNE:
		r = c != 0
	case CmpLT:
		r = c < 0
	case CmpLE:
		r = c <= 0
	case CmpGT:
		r = c > 0
	case CmpGE:
		r = c >= 0
	}
	if r {
		return True
	}
	return False
}
