package cfg

import (
	"strings"
	"testing"

	"udfdecorr/internal/parser"
)

func parseBody(t *testing.T, body string) *Graph {
	t.Helper()
	script, err := parser.ParseScript("create function w() returns int as begin " + body + " end")
	if err != nil {
		t.Fatal(err)
	}
	return Build(script.Functions[0].Body)
}

func TestStraightLineCFG(t *testing.T) {
	g := parseBody(t, "int a = 1; int b = 2; return a;")
	if g.HasCycle() {
		t.Error("straight-line code has no cycle")
	}
	// Start, End, 3 statements.
	if len(g.Nodes) != 5 {
		t.Errorf("nodes = %d", len(g.Nodes))
	}
}

func TestBranchCFG(t *testing.T) {
	g := parseBody(t, "int a = 1; if (a > 0) a = 2; else a = 3; return a;")
	if g.HasCycle() {
		t.Error("if-else has no cycle")
	}
	branches := 0
	for _, n := range g.Nodes {
		if n.Kind == KindBranch {
			branches++
			if len(n.Succs) != 2 {
				t.Errorf("branch should have two successors, got %d", len(n.Succs))
			}
		}
	}
	if branches != 1 {
		t.Errorf("branches = %d", branches)
	}
}

func TestLoopCFGHasCycle(t *testing.T) {
	g := parseBody(t, `int i = 0;
	  while (i < 10)
	  begin
	    i = i + 1;
	  end
	  return i;`)
	if !g.HasCycle() {
		t.Error("while loop must produce a CFG cycle")
	}
}

func TestReturnTerminates(t *testing.T) {
	g := parseBody(t, "return 1;")
	// Return node links straight to End.
	var ret *Node
	for _, n := range g.Nodes {
		if n.Kind == KindStmt {
			ret = n
		}
	}
	if ret == nil {
		t.Fatal("no statement node")
	}
	found := false
	for _, s := range ret.Succs {
		if s == g.End {
			found = true
		}
	}
	if !found {
		t.Error("return should flow to End")
	}
}

func TestDotOutput(t *testing.T) {
	g := parseBody(t, "int a = 1; return a;")
	dot := g.Dot()
	for _, want := range []string{"digraph cfg", "Start", "End", "->"} {
		if !strings.Contains(dot, want) {
			t.Errorf("dot output missing %q", want)
		}
	}
}

func TestLogicalize(t *testing.T) {
	script, err := parser.ParseScript(`create function w() returns int as begin
	  int a = 1;
	  if (a > 0) a = 2; else if (a < -5) a = 3; else a = 4;
	  return a;
	end`)
	if err != nil {
		t.Fatal(err)
	}
	ls := Logicalize(script.Functions[0].Body)
	// a=1, if-block, return: three top-level logical nodes, no branching.
	if len(ls) != 3 {
		t.Fatalf("logical nodes = %d", len(ls))
	}
	ifb := ls[1].If
	if ifb == nil {
		t.Fatal("second node should be an if-block")
	}
	if len(ifb.Else) != 1 || ifb.Else[0].If == nil {
		t.Error("nested else-if should be a nested logical if-block")
	}
}
