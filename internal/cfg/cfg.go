// Package cfg builds control-flow graphs for UDF bodies (Section IV of the
// paper). The CFG has explicit Start and End nodes; if-then-else blocks are
// additionally grouped into logical nodes (the L-nodes of Figure 4) so that
// the top-level statement sequence is branch-free, which is the shape the
// expression-tree construction consumes.
package cfg

import (
	"fmt"
	"strings"

	"udfdecorr/internal/ast"
)

// NodeKind classifies CFG nodes.
type NodeKind uint8

// Node kinds.
const (
	KindStart NodeKind = iota
	KindEnd
	KindStmt
	KindBranch
)

// Node is one CFG vertex.
type Node struct {
	ID    int
	Kind  NodeKind
	Stmt  ast.Stmt // nil for Start/End; the branch condition owner for KindBranch
	Succs []*Node
}

// Label renders a short node description.
func (n *Node) Label() string {
	switch n.Kind {
	case KindStart:
		return "Start"
	case KindEnd:
		return "End"
	case KindBranch:
		return "if " + n.Stmt.(*ast.IfStmt).Cond.SQL()
	default:
		return n.Stmt.SQL()
	}
}

// Graph is a control-flow graph.
type Graph struct {
	Start, End *Node
	Nodes      []*Node
}

// Build constructs the CFG of a statement list.
func Build(body []ast.Stmt) *Graph {
	g := &Graph{}
	g.Start = g.newNode(KindStart, nil)
	g.End = g.newNode(KindEnd, nil)
	exits := g.seq(body, []*Node{g.Start})
	for _, e := range exits {
		e.Succs = append(e.Succs, g.End)
	}
	return g
}

func (g *Graph) newNode(kind NodeKind, s ast.Stmt) *Node {
	n := &Node{ID: len(g.Nodes), Kind: kind, Stmt: s}
	g.Nodes = append(g.Nodes, n)
	return n
}

// seq wires a statement list after the given predecessor nodes, returning
// the exit nodes of the sequence.
func (g *Graph) seq(body []ast.Stmt, preds []*Node) []*Node {
	cur := preds
	for _, s := range body {
		switch st := s.(type) {
		case *ast.IfStmt:
			br := g.newNode(KindBranch, st)
			link(cur, br)
			thenExits := g.seq(st.Then, []*Node{br})
			var elseExits []*Node
			if len(st.Else) > 0 {
				elseExits = g.seq(st.Else, []*Node{br})
			} else {
				elseExits = []*Node{br}
			}
			cur = append(thenExits, elseExits...)
		case *ast.WhileStmt:
			head := g.newNode(KindBranch, &ast.IfStmt{Cond: st.Cond})
			link(cur, head)
			bodyExits := g.seq(st.Body, []*Node{head})
			// Back edge: loop body exits return to the head.
			link(bodyExits, head)
			cur = []*Node{head}
		case *ast.ReturnStmt:
			n := g.newNode(KindStmt, s)
			link(cur, n)
			n.Succs = append(n.Succs, g.End)
			cur = nil // unreachable after return
		default:
			n := g.newNode(KindStmt, s)
			link(cur, n)
			cur = []*Node{n}
		}
	}
	return cur
}

func link(from []*Node, to *Node) {
	for _, f := range from {
		f.Succs = append(f.Succs, to)
	}
}

// HasCycle reports whether the CFG contains a cycle (i.e. the UDF has
// loops).
func (g *Graph) HasCycle() bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, len(g.Nodes))
	var visit func(n *Node) bool
	visit = func(n *Node) bool {
		color[n.ID] = gray
		for _, s := range n.Succs {
			switch color[s.ID] {
			case gray:
				return true
			case white:
				if visit(s) {
					return true
				}
			}
		}
		color[n.ID] = black
		return false
	}
	return visit(g.Start)
}

// Dot renders the CFG in Graphviz format (used by documentation and the
// rewrite tool's debug output).
func (g *Graph) Dot() string {
	var b strings.Builder
	b.WriteString("digraph cfg {\n")
	for _, n := range g.Nodes {
		fmt.Fprintf(&b, "  n%d [label=%q];\n", n.ID, n.Label())
		for _, s := range n.Succs {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", n.ID, s.ID)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// Logical is the paper's L-node: either a plain statement or an if-then-else
// block treated as a single unit with nested logical sequences.
type Logical struct {
	Stmt ast.Stmt // set for plain statements
	If   *IfBlock // set for conditional blocks
	Loop *ast.WhileStmt
}

// IfBlock is a logically-grouped conditional.
type IfBlock struct {
	Cond ast.Expr
	Then []Logical
	Else []Logical
}

// Logicalize groups a structured statement list into logical nodes: the
// resulting top-level sequence has no branching (Figure 4).
func Logicalize(body []ast.Stmt) []Logical {
	out := make([]Logical, 0, len(body))
	for _, s := range body {
		switch st := s.(type) {
		case *ast.IfStmt:
			out = append(out, Logical{If: &IfBlock{
				Cond: st.Cond,
				Then: Logicalize(st.Then),
				Else: Logicalize(st.Else),
			}})
		case *ast.WhileStmt:
			out = append(out, Logical{Loop: st})
		default:
			out = append(out, Logical{Stmt: s})
		}
	}
	return out
}
