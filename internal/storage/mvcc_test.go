package storage

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"udfdecorr/internal/catalog"
	"udfdecorr/internal/sqltypes"
)

func metaNamed(name string) *catalog.Table {
	return &catalog.Table{
		Name: name,
		Cols: []catalog.Column{
			{Name: "k", Type: sqltypes.KindInt},
			{Name: "v", Type: sqltypes.KindString},
		},
		PKCols: []string{"k"},
	}
}

func intRow(k int64) Row { return Row{sqltypes.NewInt(k), sqltypes.NewString("x")} }

// TestVersionImmutableUnderAppend pins the MVCC contract: a published
// version's rows, index and stats never change once obtained, no matter how
// many appends follow.
func TestVersionImmutableUnderAppend(t *testing.T) {
	tab := NewTable(metaNamed("t"))
	for i := int64(0); i < 10; i++ {
		if err := tab.Append(intRow(i)); err != nil {
			t.Fatal(err)
		}
	}
	ver := tab.Version()
	idx, err := ver.EnsureIndex("k")
	if err != nil {
		t.Fatal(err)
	}
	st, err := ver.Stats("k")
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(10); i < 1000; i++ {
		if err := tab.Append(intRow(i % 5)); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(ver.Rows()); got != 10 {
		t.Errorf("pinned version grew: %d rows", got)
	}
	if got := len(idx); got != 10 {
		t.Errorf("pinned index grew: %d buckets", got)
	}
	if st.DistinctCount != 10 {
		t.Errorf("pinned stats changed: distinct=%d", st.DistinctCount)
	}
	if got := tab.RowCount(); got != 1000 {
		t.Errorf("current version rows = %d", got)
	}
}

// TestConcurrentReadersDuringWrites is the lock-stall regression test: under
// -race, readers continuously scan, build indexes and compute stats while a
// writer appends. Every reader observation must be internally consistent
// (index entries in range of the version's rows; stats rows equal to the
// version length), and nothing may block or tear.
func TestConcurrentReadersDuringWrites(t *testing.T) {
	tab := NewTable(metaNamed("t"))
	const writerRows = 2000
	var stop atomic.Bool
	var wg sync.WaitGroup

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := int64(0); i < writerRows; i++ {
			if err := tab.Append(intRow(i % 97)); err != nil {
				t.Error(err)
				return
			}
		}
		stop.Store(true)
	}()

	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				ver := tab.Version()
				rows := ver.Rows()
				idx, err := ver.EnsureIndex("k")
				if err != nil {
					t.Error(err)
					return
				}
				total := 0
				for _, ords := range idx {
					total += len(ords)
					for _, o := range ords {
						if o >= len(rows) {
							t.Errorf("index ordinal %d out of range for %d rows", o, len(rows))
							return
						}
					}
				}
				if total != len(rows) {
					t.Errorf("index covers %d of %d rows", total, len(rows))
					return
				}
				st, err := ver.Stats("k")
				if err != nil {
					t.Error(err)
					return
				}
				if len(rows) > 0 && (st.DistinctCount < 1 || st.DistinctCount > int64(len(rows))) {
					t.Errorf("stats distinct=%d for a %d-row version", st.DistinctCount, len(rows))
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := tab.RowCount(); got != writerRows {
		t.Fatalf("final rows = %d, want %d", got, writerRows)
	}
}

// TestSnapshotIsConsistentCut asserts AppendBatch's atomicity: a writer
// appends the same keys to two tables in one batch, and no snapshot may
// ever observe the tables at different lengths.
func TestSnapshotIsConsistentCut(t *testing.T) {
	s := NewStore()
	a, err := s.CreateTable(metaNamed("a"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.CreateTable(metaNamed("b"))
	if err != nil {
		t.Fatal(err)
	}
	const batches = 500
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := int64(0); i < batches; i++ {
			err := s.AppendBatch([]TableWrite{
				{Table: a, Rows: []Row{intRow(i)}},
				{Table: b, Rows: []Row{intRow(i)}},
			}, nil)
			if err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 10000; j++ {
			snap := s.Snapshot()
			na, nb := len(snap.Rows(a)), len(snap.Rows(b))
			if na != nb {
				t.Errorf("torn snapshot: a=%d b=%d", na, nb)
				return
			}
		}
	}()
	wg.Wait()
	if a.RowCount() != batches || b.RowCount() != batches {
		t.Fatalf("final counts a=%d b=%d", a.RowCount(), b.RowCount())
	}
}

// TestAppendBatchVeto: a failing commit hook must publish nothing.
func TestAppendBatchVeto(t *testing.T) {
	s := NewStore()
	a, _ := s.CreateTable(metaNamed("a"))
	b, _ := s.CreateTable(metaNamed("b"))
	boom := errors.New("boom")
	err := s.AppendBatch([]TableWrite{
		{Table: a, Rows: []Row{intRow(1)}},
		{Table: b, Rows: []Row{intRow(1)}},
	}, func() error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if a.RowCount() != 0 || b.RowCount() != 0 {
		t.Fatalf("vetoed batch published rows: a=%d b=%d", a.RowCount(), b.RowCount())
	}
}

// TestAppendBatchArity: a bad row in any table vetoes the whole batch
// before the hook runs.
func TestAppendBatchArity(t *testing.T) {
	s := NewStore()
	a, _ := s.CreateTable(metaNamed("a"))
	b, _ := s.CreateTable(metaNamed("b"))
	hookRan := false
	err := s.AppendBatch([]TableWrite{
		{Table: a, Rows: []Row{intRow(1)}},
		{Table: b, Rows: []Row{{sqltypes.NewInt(1)}}}, // arity 1, want 2
	}, func() error { hookRan = true; return nil })
	if err == nil {
		t.Fatal("arity mismatch must fail")
	}
	if hookRan {
		t.Fatal("hook ran despite invalid batch")
	}
	if a.RowCount() != 0 {
		t.Fatalf("partial batch published: a=%d", a.RowCount())
	}
}

// TestConcurrentAppendersSameTable: appends from many goroutines must all
// land (the shared-backing-array fast path must not lose extensions).
func TestConcurrentAppendersSameTable(t *testing.T) {
	tab := NewTable(metaNamed("t"))
	const (
		writers = 8
		each    = 500
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := tab.Append(intRow(int64(w*each + i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	rows := tab.Rows()
	if len(rows) != writers*each {
		t.Fatalf("rows = %d, want %d", len(rows), writers*each)
	}
	seen := map[int64]bool{}
	for _, r := range rows {
		k, _ := r[0].AsInt()
		if seen[k] {
			t.Fatalf("duplicate key %d", k)
		}
		seen[k] = true
	}
}

// TestSnapshotFallsBackForUnknownTable: a table created after the snapshot
// resolves to its current version (snapshots cover the tables that existed
// at the cut).
func TestSnapshotFallsBackForUnknownTable(t *testing.T) {
	s := NewStore()
	snap := s.Snapshot()
	late, err := s.CreateTable(metaNamed("late"))
	if err != nil {
		t.Fatal(err)
	}
	if err := late.Append(intRow(1)); err != nil {
		t.Fatal(err)
	}
	if got := len(snap.Rows(late)); got != 1 {
		t.Fatalf("fallback rows = %d", got)
	}
}

// TestRacingIndexBuilds: many goroutines demanding the same index on one
// version must all get the same mapping (first install wins; the rest are
// discarded idempotently).
func TestRacingIndexBuilds(t *testing.T) {
	tab := NewTable(metaNamed("t"))
	for i := int64(0); i < 100; i++ {
		if err := tab.Append(intRow(i)); err != nil {
			t.Fatal(err)
		}
	}
	ver := tab.Version()
	var wg sync.WaitGroup
	results := make([]map[string][]int, 16)
	for g := range results {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			idx, err := ver.EnsureIndex("k")
			if err != nil {
				t.Error(err)
				return
			}
			results[g] = idx
		}(g)
	}
	wg.Wait()
	for g := 1; g < len(results); g++ {
		if fmt.Sprintf("%p", results[g]) == "" {
			t.Fatal("missing result")
		}
	}
	// All goroutines must share one installed map (pointer-identical).
	first := fmt.Sprintf("%p", results[0])
	for g := 1; g < len(results); g++ {
		if fmt.Sprintf("%p", results[g]) != first {
			t.Fatalf("goroutine %d got a different index instance", g)
		}
	}
}
