// Columnar table storage: the physical layout behind TableVersion.
//
// A published version is a list of immutable column-major segments. Every
// segment but the last holds exactly SegmentRows rows (so ordinal→segment
// arithmetic is two integer ops); the last may be partial. Successive
// versions share segments: an append only ever adds new segments or extends
// the open tail, and the tail trick mirrors the previous row-major design —
// the writer owns backing arrays of capacity SegmentRows per column, copies
// new values past every published length, and publishes a fresh Segment
// header bounding a longer prefix. Readers therefore never observe a
// mutation: slice headers in a published Segment are immutable, and backing
// array slots are written only before any header covering them exists.
//
// The vectorized executor scans these segments zero-copy (batch column
// vectors alias segment storage); the row executor reads through a lazily
// pivoted row-major view cached per version (see TableVersion.Rows).
package storage

import (
	"sync/atomic"

	"udfdecorr/internal/sqltypes"
)

// SegmentRows is the fixed segment size. Every published segment except a
// table's last is exactly this long, which keeps ordinal lookup O(1) and
// batch scans aligned. 4096 rows ≈ 4 vectorized batches per segment.
const SegmentRows = 4096

// Segment is one immutable column-major chunk of a table: one value vector
// per column, all of length Len. Segments are shared across table versions
// and must never be mutated after publication.
type Segment struct {
	cols [][]sqltypes.Value
	n    int
}

// NewSegment wraps column vectors as a segment, taking ownership of the
// slices (callers must not mutate them afterwards). All columns must share
// one length; n is the row count (passed explicitly so zero-column tables
// keep their cardinality).
func NewSegment(cols [][]sqltypes.Value, n int) *Segment {
	return &Segment{cols: cols, n: n}
}

// Len returns the segment's row count.
func (s *Segment) Len() int { return s.n }

// Width returns the column count.
func (s *Segment) Width() int { return len(s.cols) }

// Col returns column c's value vector. The slice aliases storage: callers
// may read it freely but must never write through it.
func (s *Segment) Col(c int) []sqltypes.Value { return s.cols[c] }

// AppendRowTo materializes row i of the segment onto dst.
func (s *Segment) AppendRowTo(dst Row, i int) Row {
	for _, c := range s.cols {
		dst = append(dst, c[i])
	}
	return dst
}

// Bytes estimates the segment's in-memory column bytes (value headers plus
// string payloads), for the storage gauges.
func (s *Segment) Bytes() int64 {
	const valueHeader = 40 // sqltypes.Value struct size (kind + int64 + float64 + string header)
	b := int64(s.n) * int64(len(s.cols)) * valueHeader
	for _, col := range s.cols {
		for _, v := range col {
			if v.Kind() == sqltypes.KindString {
				b += int64(len(v.Str()))
			}
		}
	}
	return b
}

// ---------------------------------------------------------------------------
// Scan-path metrics
// ---------------------------------------------------------------------------

// scanMetrics counts how table scans were served process-wide: zero-copy
// (batch vectors aliasing column segments) versus pivoted (a row-major
// materialization had to be built for the row executor). Exposed through
// /stats and /metrics as an observable guarantee that the hot path stays
// zero-copy.
var scanMetrics struct {
	zeroCopy atomic.Int64
	pivoted  atomic.Int64
}

// NoteZeroCopyScan records one scan served directly from column segments.
// The executor calls it when opening a zero-copy batch or morsel scan.
func NoteZeroCopyScan() { scanMetrics.zeroCopy.Add(1) }

// NotePivotedScan records one row-major pivot fallback (also called
// internally when a version materializes its row view).
func NotePivotedScan() { scanMetrics.pivoted.Add(1) }

// ZeroCopyScans returns the process-wide zero-copy scan count.
func ZeroCopyScans() int64 { return scanMetrics.zeroCopy.Load() }

// PivotedScans returns the process-wide pivot-fallback count.
func PivotedScans() int64 { return scanMetrics.pivoted.Load() }

// ---------------------------------------------------------------------------
// Writer-side appender
// ---------------------------------------------------------------------------

// colAppender builds a table's next version under the table's appendMu. It
// copies the shared segment prefix (cheap: one pointer per 4096 rows) and
// extends the writer-owned open tail, sealing full segments as they fill.
type colAppender struct {
	t    *Table
	segs []*Segment
	n    int
}

// newAppenderLocked starts an append against the current version. Caller
// holds t.appendMu. It re-syncs the writer's tail backing when the current
// version's partial tail was not produced by this writer (a table freshly
// built from checkpoint segments): the partial rows are copied once into
// fresh backing arrays, and appends proceed in place from there.
func (t *Table) newAppenderLocked() *colAppender {
	cur := t.version.Load()
	w := len(t.Meta.Cols)
	full := len(cur.segs)
	m := 0
	if cur.n%SegmentRows != 0 {
		full--
		m = cur.n - full*SegmentRows
	}
	if m == 0 {
		t.tail, t.tailLen = nil, 0
	} else if t.tail == nil || t.tailLen != m {
		// Single-writer discipline makes tailLen==m equivalent to "the
		// published tail aliases t.tail"; a mismatch means the version came
		// from elsewhere (recovery install) and the partial tail is copied.
		last := cur.segs[len(cur.segs)-1]
		t.tail = make([][]sqltypes.Value, w)
		for c := range t.tail {
			buf := make([]sqltypes.Value, m, SegmentRows)
			copy(buf, last.cols[c][:m])
			t.tail[c] = buf
		}
		t.tailLen = m
	}
	segs := make([]*Segment, full, full+2)
	copy(segs, cur.segs[:full])
	return &colAppender{t: t, segs: segs, n: full * SegmentRows}
}

func (a *colAppender) ensureTail() {
	t := a.t
	if t.tail == nil {
		w := len(t.Meta.Cols)
		t.tail = make([][]sqltypes.Value, w)
		for c := range t.tail {
			t.tail[c] = make([]sqltypes.Value, 0, SegmentRows)
		}
		t.tailLen = 0
	}
}

// seal publishes the full tail as an immutable segment and resets the tail
// (fresh backing arrays are allocated on the next append).
func (a *colAppender) seal() {
	t := a.t
	cols := make([][]sqltypes.Value, len(t.tail))
	for c := range cols {
		cols[c] = t.tail[c][:SegmentRows:SegmentRows]
	}
	a.segs = append(a.segs, NewSegment(cols, SegmentRows))
	a.n += SegmentRows
	t.tail, t.tailLen = nil, 0
}

// appendRows pivots rows into the open tail.
func (a *colAppender) appendRows(rows []Row) {
	t := a.t
	w := len(t.Meta.Cols)
	for _, r := range rows {
		a.ensureTail()
		for c := 0; c < w; c++ {
			t.tail[c] = append(t.tail[c], r[c])
		}
		t.tailLen++
		if t.tailLen == SegmentRows {
			a.seal()
		}
	}
}

// appendCols appends nrows of column-major data. When the tail is empty and
// the chunk is exactly one full segment, the vectors are installed as a
// segment directly — zero copy — which is the checkpoint-replay fast path
// (columnar snapshot records decode straight into published segments).
func (a *colAppender) appendCols(cols [][]sqltypes.Value, nrows int) {
	t := a.t
	if t.tailLen == 0 && nrows == SegmentRows {
		t.tail = nil
		a.segs = append(a.segs, NewSegment(cols, nrows))
		a.n += nrows
		return
	}
	off := 0
	for off < nrows {
		a.ensureTail()
		take := SegmentRows - t.tailLen
		if rem := nrows - off; rem < take {
			take = rem
		}
		for c := range t.tail {
			t.tail[c] = append(t.tail[c], cols[c][off:off+take]...)
		}
		t.tailLen += take
		off += take
		if t.tailLen == SegmentRows {
			a.seal()
		}
	}
}

// version publishes the appender's state as the next immutable version. A
// partial tail becomes a fresh Segment header bounding the writer's backing
// arrays at the current length; the backing is extended in place by later
// appends, past every published bound.
func (a *colAppender) version() *TableVersion {
	t := a.t
	segs, n := a.segs, a.n
	if t.tailLen > 0 {
		cols := make([][]sqltypes.Value, len(t.tail))
		for c := range cols {
			cols[c] = t.tail[c][:t.tailLen]
		}
		segs = append(segs, NewSegment(cols, t.tailLen))
		n += t.tailLen
	}
	return newVersion(t.Meta, segs, n)
}
