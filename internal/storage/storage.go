// Package storage implements in-memory row storage: tables, hash indexes
// for equality lookups, and lightweight column statistics (row counts and
// min/max) used by the cost-based planner.
package storage

import (
	"fmt"
	"strings"
	"sync"

	"udfdecorr/internal/catalog"
	"udfdecorr/internal/sqltypes"
)

// Row is one tuple.
type Row []sqltypes.Value

// Clone returns a copy of the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// ColStats holds per-column statistics for selectivity estimation.
type ColStats struct {
	Min, Max      sqltypes.Value
	DistinctCount int64 // approximate
}

// Table is an in-memory table with optional hash indexes.
//
// Concurrency: index and statistics caches are guarded by mu, so any number
// of concurrent readers (scans, index probes, stats lookups) are safe. The
// Rows slice itself is read lock-free by the scan operators for speed, so
// Append must not run concurrently with queries — the engine/query service
// serializes data loads behind a DDL/DML write lock.
type Table struct {
	Meta *catalog.Table
	Rows []Row

	mu      sync.RWMutex
	indexes map[string]map[string][]int // column -> key -> row ordinals
	stats   map[string]ColStats

	// onAppend is the durability commit hook (see Store.SetAppendHook): it
	// runs before the rows become visible, so an error vetoes the append.
	onAppend func(meta *catalog.Table, rows []Row) error
}

// NewTable creates an empty table for the given metadata.
func NewTable(meta *catalog.Table) *Table {
	return &Table{Meta: meta, indexes: map[string]map[string][]int{}, stats: map[string]ColStats{}}
}

// Append adds rows; indexes and statistics are invalidated and rebuilt
// lazily. When a commit hook is installed (durable stores) it runs first —
// write-ahead — so rows the hook could not make durable are never visible.
func (t *Table) Append(rows ...Row) error {
	for _, r := range rows {
		if len(r) != len(t.Meta.Cols) {
			return fmt.Errorf("table %s: row arity %d, want %d", t.Meta.Name, len(r), len(t.Meta.Cols))
		}
	}
	if t.onAppend != nil {
		if err := t.onAppend(t.Meta, rows); err != nil {
			return fmt.Errorf("table %s: commit hook: %w", t.Meta.Name, err)
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.Rows = append(t.Rows, rows...)
	t.indexes = map[string]map[string][]int{}
	t.stats = map[string]ColStats{}
	return nil
}

// RowCount returns the number of rows.
func (t *Table) RowCount() int { return len(t.Rows) }

// EnsureIndex builds (or reuses) a hash index on the named column and
// returns it.
func (t *Table) EnsureIndex(col string) (map[string][]int, error) {
	ord := t.Meta.ColIndex(col)
	if ord < 0 {
		return nil, fmt.Errorf("table %s: no column %q", t.Meta.Name, col)
	}
	t.mu.RLock()
	idx, ok := t.indexes[col]
	t.mu.RUnlock()
	if ok {
		return idx, nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if idx, ok := t.indexes[col]; ok {
		return idx, nil
	}
	idx = make(map[string][]int, len(t.Rows))
	var key []byte
	for i, r := range t.Rows {
		key = sqltypes.EncodeKey(key[:0], r[ord])
		idx[string(key)] = append(idx[string(key)], i)
	}
	t.indexes[col] = idx
	return idx, nil
}

// HasIndexableCol reports whether the column is declared indexed (primary
// key or listed secondary index).
func (t *Table) HasIndexableCol(col string) bool {
	for _, c := range t.Meta.PKCols {
		if c == col {
			return true
		}
	}
	for _, c := range t.Meta.Indexes {
		if c == col {
			return true
		}
	}
	return false
}

// Stats computes (and caches) statistics for a column.
func (t *Table) Stats(col string) (ColStats, error) {
	ord := t.Meta.ColIndex(col)
	if ord < 0 {
		return ColStats{}, fmt.Errorf("table %s: no column %q", t.Meta.Name, col)
	}
	t.mu.RLock()
	st, ok := t.stats[col]
	t.mu.RUnlock()
	if ok {
		return st, nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if st, ok := t.stats[col]; ok {
		return st, nil
	}
	distinct := map[string]bool{}
	var key []byte
	st = ColStats{Min: sqltypes.Null, Max: sqltypes.Null}
	for _, r := range t.Rows {
		v := r[ord]
		if v.IsNull() {
			continue
		}
		if st.Min.IsNull() || sqltypes.TotalCompare(v, st.Min) < 0 {
			st.Min = v
		}
		if st.Max.IsNull() || sqltypes.TotalCompare(v, st.Max) > 0 {
			st.Max = v
		}
		if len(distinct) < 100000 {
			key = sqltypes.EncodeKey(key[:0], v)
			distinct[string(key)] = true
		}
	}
	st.DistinctCount = int64(len(distinct))
	t.stats[col] = st
	return st, nil
}

// Store is a collection of tables.
type Store struct {
	mu       sync.RWMutex
	tables   map[string]*Table
	onAppend func(meta *catalog.Table, rows []Row) error
}

// NewStore creates an empty store.
func NewStore() *Store {
	return &Store{tables: map[string]*Table{}}
}

// SetAppendHook installs a commit hook on every table (existing and future):
// fn runs before each Append's rows become visible, and an error from it
// aborts the append. The durability layer uses this to emit write-ahead-log
// records; it is attached only after recovery replay, so replayed rows are
// not re-logged. The hook must not call back into the store.
func (s *Store) SetAppendHook(fn func(meta *catalog.Table, rows []Row) error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onAppend = fn
	for _, t := range s.tables {
		t.onAppend = fn
	}
}

// CreateTable registers an empty table for the metadata.
func (s *Store) CreateTable(meta *catalog.Table) (*Table, error) {
	name := strings.ToLower(meta.Name)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.tables[name]; dup {
		return nil, fmt.Errorf("table %q already has storage", meta.Name)
	}
	t := NewTable(meta)
	t.onAppend = s.onAppend
	s.tables[name] = t
	return t, nil
}

// Table looks a table up by name.
func (s *Store) Table(name string) (*Table, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[strings.ToLower(name)]
	return t, ok
}

// MustTable returns the table or panics; for use by tests and generators.
func (s *Store) MustTable(name string) *Table {
	t, ok := s.Table(name)
	if !ok {
		panic(fmt.Sprintf("no table %q", name))
	}
	return t
}
