// Package storage implements in-memory columnar table storage: immutable
// column-major segments, hash indexes for equality lookups, and lightweight
// column statistics (row counts and min/max) used by the cost-based planner.
//
// Concurrency model (MVCC): a table's state is an immutable published
// TableVersion reached through an atomic pointer. Readers pin a version (or
// a store-wide Snapshot) and scan it without any locking; writers build the
// next version and install it with a pointer swap. Index and statistics
// caches live on the version, so an Append can never invalidate them under
// a running query. Appends to the same table serialize on a per-table
// writer lock; version installs additionally serialize on a store-wide
// publish lock so Snapshot observes a consistent cut across tables (and a
// multi-table transaction commit is all-or-nothing to every snapshot).
//
// Physical layout: a version's data is a list of immutable column-major
// Segments (see columnar.go). The vectorized executor reads segment column
// vectors zero-copy; the row executor reads a per-version row-major pivot
// built lazily by Rows().
package storage

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"udfdecorr/internal/catalog"
	"udfdecorr/internal/sqltypes"
)

// Row is one tuple.
type Row []sqltypes.Value

// Clone returns a copy of the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// ColStats holds per-column statistics for selectivity estimation.
type ColStats struct {
	Min, Max      sqltypes.Value
	DistinctCount int64 // approximate
}

// TableVersion is one immutable published state of a table: a column-major
// segment list plus lazily built per-version index, statistics, and row-view
// caches. Successive versions share segments (and the open tail segment's
// backing arrays — writers extend the arrays strictly past every published
// segment bound), so publishing an append is O(batch), not O(table).
type TableVersion struct {
	meta *catalog.Table
	segs []*Segment
	n    int

	// mu guards only the cache fields below. The segment data needs no
	// lock: it is immutable for the lifetime of the version.
	mu        sync.RWMutex
	indexes   map[string]map[string][]int // column -> key -> row ordinals
	stats     map[string]ColStats
	rowview   []Row // lazily pivoted row-major view (row-executor fallback)
	rowsReady bool
}

func newVersion(meta *catalog.Table, segs []*Segment, n int) *TableVersion {
	return &TableVersion{meta: meta, segs: segs, n: n}
}

// NewVersionFromSegments builds a standalone version over pre-built
// segments; for tests that need to exercise layouts directly.
func NewVersionFromSegments(meta *catalog.Table, segs []*Segment) *TableVersion {
	n := 0
	for _, s := range segs {
		n += s.n
	}
	return newVersion(meta, segs, n)
}

// Segments returns the version's immutable column-major segments. Every
// segment except possibly the last holds exactly SegmentRows rows, so row
// ordinal o lives at segment o/SegmentRows, offset o%SegmentRows.
func (v *TableVersion) Segments() []*Segment { return v.segs }

// RowCount returns the number of rows in the version.
func (v *TableVersion) RowCount() int { return v.n }

// Rows returns a row-major view of the version, pivoting the column
// segments on first use and caching the result for the version's lifetime
// (first install wins, built outside the lock). This is the compatibility
// path for the row executor, the UDF interpreter, and result adapters; the
// vectorized scan path reads Segments directly and never pays this pivot.
func (v *TableVersion) Rows() []Row {
	v.mu.RLock()
	rv, ready := v.rowview, v.rowsReady
	v.mu.RUnlock()
	if ready {
		return rv
	}
	w := len(v.meta.Cols)
	rows := make([]Row, v.n)
	arena := make([]sqltypes.Value, v.n*w)
	for i := range rows {
		rows[i] = arena[i*w : (i+1)*w : (i+1)*w]
	}
	base := 0
	for _, seg := range v.segs {
		for c, col := range seg.cols {
			for i := 0; i < seg.n; i++ {
				arena[(base+i)*w+c] = col[i]
			}
		}
		base += seg.n
	}
	v.mu.Lock()
	if v.rowsReady {
		rows = v.rowview
	} else {
		v.rowview, v.rowsReady = rows, true
		NotePivotedScan()
	}
	v.mu.Unlock()
	return rows
}

// RowAt materializes row ordinal i. When the row view is already built it is
// served from there (no allocation); otherwise one row is pivoted out of its
// segment — index lookups touching a handful of ordinals never force a full
// table pivot.
func (v *TableVersion) RowAt(i int) Row {
	v.mu.RLock()
	if v.rowsReady {
		r := v.rowview[i]
		v.mu.RUnlock()
		return r
	}
	v.mu.RUnlock()
	seg := v.segs[i/SegmentRows]
	return seg.AppendRowTo(make(Row, 0, len(v.meta.Cols)), i%SegmentRows)
}

// forEachVal visits column ord of every row in ordinal order.
func (v *TableVersion) forEachVal(ord int, fn func(val sqltypes.Value)) {
	for _, seg := range v.segs {
		col := seg.cols[ord]
		for i := 0; i < seg.n; i++ {
			fn(col[i])
		}
	}
}

// EnsureIndex builds (or reuses) a hash index on the named column. The scan
// runs outside the lock — segments are immutable, so concurrent readers are
// never stalled behind an index build; two racing builds are idempotent and
// the first install wins.
func (v *TableVersion) EnsureIndex(col string) (map[string][]int, error) {
	ord := v.meta.ColIndex(col)
	if ord < 0 {
		return nil, fmt.Errorf("table %s: no column %q", v.meta.Name, col)
	}
	v.mu.RLock()
	idx, ok := v.indexes[col]
	v.mu.RUnlock()
	if ok {
		return idx, nil
	}
	idx = make(map[string][]int, v.n)
	var key []byte
	i := 0
	v.forEachVal(ord, func(val sqltypes.Value) {
		key = sqltypes.EncodeKey(key[:0], val)
		idx[string(key)] = append(idx[string(key)], i)
		i++
	})
	v.mu.Lock()
	if prior, ok := v.indexes[col]; ok {
		idx = prior
	} else {
		if v.indexes == nil {
			v.indexes = map[string]map[string][]int{}
		}
		v.indexes[col] = idx
	}
	v.mu.Unlock()
	return idx, nil
}

// Stats computes (and caches) statistics for a column. Like EnsureIndex,
// the column scan happens outside the lock.
func (v *TableVersion) Stats(col string) (ColStats, error) {
	ord := v.meta.ColIndex(col)
	if ord < 0 {
		return ColStats{}, fmt.Errorf("table %s: no column %q", v.meta.Name, col)
	}
	v.mu.RLock()
	st, ok := v.stats[col]
	v.mu.RUnlock()
	if ok {
		return st, nil
	}
	distinct := map[string]bool{}
	var key []byte
	st = ColStats{Min: sqltypes.Null, Max: sqltypes.Null}
	v.forEachVal(ord, func(val sqltypes.Value) {
		if val.IsNull() {
			return
		}
		if st.Min.IsNull() || sqltypes.TotalCompare(val, st.Min) < 0 {
			st.Min = val
		}
		if st.Max.IsNull() || sqltypes.TotalCompare(val, st.Max) > 0 {
			st.Max = val
		}
		if len(distinct) < 100000 {
			key = sqltypes.EncodeKey(key[:0], val)
			distinct[string(key)] = true
		}
	})
	st.DistinctCount = int64(len(distinct))
	v.mu.Lock()
	if prior, ok := v.stats[col]; ok {
		st = prior
	} else {
		if v.stats == nil {
			v.stats = map[string]ColStats{}
		}
		v.stats[col] = st
	}
	v.mu.Unlock()
	return st, nil
}

// Table is an in-memory table whose state is an atomically published
// immutable version. Readers are always lock-free: Rows/Version/RowCount
// pin whatever version is current. Append is safe to run concurrently with
// any number of readers.
type Table struct {
	Meta *catalog.Table

	version atomic.Pointer[TableVersion]

	// appendMu serializes writers to this table: the writer holding it owns
	// the open tail segment's backing arrays (tail/tailLen below), the right
	// to extend them past the published bounds, and the right to install the
	// next version.
	appendMu sync.Mutex

	// tail is the open tail segment's backing: one array of capacity
	// SegmentRows per column, of which the first tailLen values are
	// published. Guarded by appendMu; see columnar.go.
	tail    [][]sqltypes.Value
	tailLen int

	// pub is the publish lock shared by every table of the owning Store
	// (standalone tables get a private one): version installs take it
	// exclusively, Store.Snapshot takes it shared to read a consistent cut.
	pub *sync.RWMutex

	// onAppend is the durability commit hook (see Store.SetAppendHook): it
	// runs before the rows become visible, so an error vetoes the append.
	onAppend func(meta *catalog.Table, rows []Row) error
}

// NewTable creates an empty table for the given metadata.
func NewTable(meta *catalog.Table) *Table {
	t := &Table{Meta: meta, pub: &sync.RWMutex{}}
	t.version.Store(newVersion(meta, nil, 0))
	return t
}

// Version returns the currently published version.
func (t *Table) Version() *TableVersion { return t.version.Load() }

// Rows returns a row-major view of the currently published version (see
// TableVersion.Rows). Hold a Snapshot (or the returned version) to keep
// reading a consistent state across statements.
func (t *Table) Rows() []Row { return t.version.Load().Rows() }

// RowCount returns the number of currently published rows.
func (t *Table) RowCount() int { return t.version.Load().n }

// checkArity validates row shapes before anything is logged or published.
func (t *Table) checkArity(rows []Row) error {
	for _, r := range rows {
		if len(r) != len(t.Meta.Cols) {
			return fmt.Errorf("table %s: row arity %d, want %d", t.Meta.Name, len(r), len(t.Meta.Cols))
		}
	}
	return nil
}

// Append adds rows by publishing a new version; running queries keep the
// version they pinned. When a commit hook is installed (durable stores) it
// runs first — write-ahead — so rows the hook could not make durable are
// never visible. The hook runs outside the writer lock so concurrent
// appends to one table can share a group-commit fsync; replay order within
// a table may therefore differ from publish order, which is fine because
// tables are multisets (an acknowledged row is present, order is not part
// of the contract).
func (t *Table) Append(rows ...Row) error {
	if err := t.checkArity(rows); err != nil {
		return err
	}
	if t.onAppend != nil {
		if err := t.onAppend(t.Meta, rows); err != nil {
			return fmt.Errorf("table %s: commit hook: %w", t.Meta.Name, err)
		}
	}
	t.appendMu.Lock()
	defer t.appendMu.Unlock()
	nv := t.nextVersionLocked(rows)
	t.pub.Lock()
	t.version.Store(nv)
	t.pub.Unlock()
	return nil
}

// AppendCols adds nrows of column-major data (one vector per column) by
// publishing a new version. When the chunk aligns with a segment boundary
// the vectors are installed as published segments without copying, so
// columnar checkpoint replay rebuilds a table at memcpy-free cost; callers
// transfer ownership of the vectors either way.
func (t *Table) AppendCols(cols [][]sqltypes.Value, nrows int) error {
	if len(cols) != len(t.Meta.Cols) {
		return fmt.Errorf("table %s: column arity %d, want %d", t.Meta.Name, len(cols), len(t.Meta.Cols))
	}
	for c, col := range cols {
		if len(col) != nrows {
			return fmt.Errorf("table %s: column %d has %d values, want %d", t.Meta.Name, c, len(col), nrows)
		}
	}
	if t.onAppend != nil {
		rows := make([]Row, nrows)
		for i := range rows {
			r := make(Row, len(cols))
			for c := range cols {
				r[c] = cols[c][i]
			}
			rows[i] = r
		}
		if err := t.onAppend(t.Meta, rows); err != nil {
			return fmt.Errorf("table %s: commit hook: %w", t.Meta.Name, err)
		}
	}
	t.appendMu.Lock()
	defer t.appendMu.Unlock()
	a := t.newAppenderLocked()
	a.appendCols(cols, nrows)
	nv := a.version()
	t.pub.Lock()
	t.version.Store(nv)
	t.pub.Unlock()
	return nil
}

// nextVersionLocked builds the successor version holding the current data
// plus the batch. Caller holds appendMu: extending the tail backing arrays
// past the published bounds is invisible to every reader (their versions'
// segment headers do not cover the new slots).
func (t *Table) nextVersionLocked(rows []Row) *TableVersion {
	a := t.newAppenderLocked()
	a.appendRows(rows)
	return a.version()
}

// EnsureIndex builds (or reuses) a hash index on the named column of the
// current version.
func (t *Table) EnsureIndex(col string) (map[string][]int, error) {
	return t.version.Load().EnsureIndex(col)
}

// HasIndexableCol reports whether the column is declared indexed (primary
// key or listed secondary index).
func (t *Table) HasIndexableCol(col string) bool {
	for _, c := range t.Meta.PKCols {
		if c == col {
			return true
		}
	}
	for _, c := range t.Meta.Indexes {
		if c == col {
			return true
		}
	}
	return false
}

// Stats computes (and caches) statistics for a column of the current
// version.
func (t *Table) Stats(col string) (ColStats, error) {
	return t.version.Load().Stats(col)
}

// Store is a collection of tables.
type Store struct {
	mu       sync.RWMutex
	tables   map[string]*Table
	onAppend func(meta *catalog.Table, rows []Row) error

	// pub serializes version installs (exclusive) against snapshot capture
	// (shared): a Snapshot sees either all or none of any publish.
	pub sync.RWMutex
}

// NewStore creates an empty store.
func NewStore() *Store {
	return &Store{tables: map[string]*Table{}}
}

// SetAppendHook installs a commit hook on every table (existing and future):
// fn runs before each Append's rows become visible, and an error from it
// aborts the append. The durability layer uses this to emit write-ahead-log
// records; it is attached only after recovery replay, so replayed rows are
// not re-logged. The hook must not call back into the store.
func (s *Store) SetAppendHook(fn func(meta *catalog.Table, rows []Row) error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onAppend = fn
	for _, t := range s.tables {
		t.onAppend = fn
	}
}

// CreateTable registers an empty table for the metadata.
func (s *Store) CreateTable(meta *catalog.Table) (*Table, error) {
	name := strings.ToLower(meta.Name)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.tables[name]; dup {
		return nil, fmt.Errorf("table %q already has storage", meta.Name)
	}
	t := NewTable(meta)
	t.pub = &s.pub
	t.onAppend = s.onAppend
	s.tables[name] = t
	return t, nil
}

// Table looks a table up by name.
func (s *Store) Table(name string) (*Table, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[strings.ToLower(name)]
	return t, ok
}

// MustTable returns the table or panics; for use by tests and generators.
func (s *Store) MustTable(name string) *Table {
	t, ok := s.Table(name)
	if !ok {
		panic(fmt.Sprintf("no table %q", name))
	}
	return t
}

// StorageStats summarizes the store's physical state for the observability
// endpoints, plus the process-wide scan-path counters.
type StorageStats struct {
	Tables        int   `json:"tables"`
	Segments      int   `json:"segments"`
	Rows          int64 `json:"rows"`
	ColumnBytes   int64 `json:"column_bytes"`
	ZeroCopyScans int64 `json:"zero_copy_scans"`
	PivotedScans  int64 `json:"pivoted_scans"`
}

// StorageStats walks every table's current version and sums segment counts
// and estimated column bytes. The walk touches every string payload, so it
// is metered for observability polling, not hot paths.
func (s *Store) StorageStats() StorageStats {
	s.mu.RLock()
	tabs := make([]*Table, 0, len(s.tables))
	for _, t := range s.tables {
		tabs = append(tabs, t)
	}
	s.mu.RUnlock()
	st := StorageStats{
		Tables:        len(tabs),
		ZeroCopyScans: ZeroCopyScans(),
		PivotedScans:  PivotedScans(),
	}
	for _, t := range tabs {
		v := t.version.Load()
		st.Segments += len(v.segs)
		st.Rows += int64(v.n)
		for _, seg := range v.segs {
			st.ColumnBytes += seg.Bytes()
		}
	}
	return st
}

// Snapshot is a consistent read view over a store: one pinned version per
// table. Reading through a snapshot sees no writes published after capture.
// A nil *Snapshot is valid and resolves every table to its current version.
type Snapshot struct {
	versions map[*Table]*TableVersion
}

// Snapshot captures a consistent cut of every table's current version.
// Capture is cheap — one atomic load per table, no copying.
func (s *Store) Snapshot() *Snapshot {
	s.mu.RLock()
	tabs := make([]*Table, 0, len(s.tables))
	for _, t := range s.tables {
		tabs = append(tabs, t)
	}
	s.mu.RUnlock()
	sn := &Snapshot{versions: make(map[*Table]*TableVersion, len(tabs))}
	s.pub.RLock()
	for _, t := range tabs {
		sn.versions[t] = t.version.Load()
	}
	s.pub.RUnlock()
	return sn
}

// Version resolves a table to its pinned version, falling back to the
// current version for tables created after capture (new tables are only
// visible to readers once DDL completes, which the query service excludes
// from running queries anyway).
func (sn *Snapshot) Version(t *Table) *TableVersion {
	if sn != nil {
		if v, ok := sn.versions[t]; ok {
			return v
		}
	}
	return t.version.Load()
}

// Rows returns a row-major view of the pinned version for a table.
func (sn *Snapshot) Rows(t *Table) []Row { return sn.Version(t).Rows() }

// TableWrite is one table's buffered rows in a transaction commit.
type TableWrite struct {
	Table *Table
	Rows  []Row
}

// AppendBatch publishes appends to several tables atomically: commit (the
// durability hook; may be nil) runs first — write-ahead — and an error from
// it vetoes the whole batch; then every new version is installed under one
// publish-lock hold, so no snapshot can observe a partially applied
// transaction. Writer locks are taken in table-name order to avoid
// deadlocking with concurrent commits.
func (s *Store) AppendBatch(writes []TableWrite, commit func() error) error {
	for _, w := range writes {
		if err := w.Table.checkArity(w.Rows); err != nil {
			return err
		}
	}
	if commit != nil {
		if err := commit(); err != nil {
			return err
		}
	}
	sorted := make([]TableWrite, len(writes))
	copy(sorted, writes)
	sort.Slice(sorted, func(i, j int) bool {
		return sorted[i].Table.Meta.Name < sorted[j].Table.Meta.Name
	})
	for _, w := range sorted {
		w.Table.appendMu.Lock()
	}
	versions := make([]*TableVersion, len(sorted))
	for i, w := range sorted {
		versions[i] = w.Table.nextVersionLocked(w.Rows)
	}
	s.pub.Lock()
	for i, w := range sorted {
		w.Table.version.Store(versions[i])
	}
	s.pub.Unlock()
	for _, w := range sorted {
		w.Table.appendMu.Unlock()
	}
	return nil
}
