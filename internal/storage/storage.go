// Package storage implements in-memory row storage: tables, hash indexes
// for equality lookups, and lightweight column statistics (row counts and
// min/max) used by the cost-based planner.
//
// Concurrency model (MVCC): a table's state is an immutable published
// TableVersion reached through an atomic pointer. Readers pin a version (or
// a store-wide Snapshot) and scan it without any locking; writers build the
// next version and install it with a pointer swap. Index and statistics
// caches live on the version, so an Append can never invalidate them under
// a running query. Appends to the same table serialize on a per-table
// writer lock; version installs additionally serialize on a store-wide
// publish lock so Snapshot observes a consistent cut across tables (and a
// multi-table transaction commit is all-or-nothing to every snapshot).
package storage

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"udfdecorr/internal/catalog"
	"udfdecorr/internal/sqltypes"
)

// Row is one tuple.
type Row []sqltypes.Value

// Clone returns a copy of the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// ColStats holds per-column statistics for selectivity estimation.
type ColStats struct {
	Min, Max      sqltypes.Value
	DistinctCount int64 // approximate
}

// TableVersion is one immutable published state of a table: a row prefix
// plus lazily built per-version index and statistics caches. Successive
// versions share the backing row array (a version only ever exposes a
// length-bounded prefix, and writers extend the array strictly past every
// published length), so publishing an append is O(batch), not O(table).
type TableVersion struct {
	meta *catalog.Table
	rows []Row

	// mu guards only the cache maps. The row data needs no lock: it is
	// immutable for the lifetime of the version.
	mu      sync.RWMutex
	indexes map[string]map[string][]int // column -> key -> row ordinals
	stats   map[string]ColStats
}

func newVersion(meta *catalog.Table, rows []Row) *TableVersion {
	return &TableVersion{meta: meta, rows: rows}
}

// Rows returns the version's immutable rows.
func (v *TableVersion) Rows() []Row { return v.rows }

// RowCount returns the number of rows in the version.
func (v *TableVersion) RowCount() int { return len(v.rows) }

// EnsureIndex builds (or reuses) a hash index on the named column. The scan
// runs outside the lock — rows are immutable, so concurrent readers are
// never stalled behind an index build; two racing builds are idempotent and
// the first install wins.
func (v *TableVersion) EnsureIndex(col string) (map[string][]int, error) {
	ord := v.meta.ColIndex(col)
	if ord < 0 {
		return nil, fmt.Errorf("table %s: no column %q", v.meta.Name, col)
	}
	v.mu.RLock()
	idx, ok := v.indexes[col]
	v.mu.RUnlock()
	if ok {
		return idx, nil
	}
	idx = make(map[string][]int, len(v.rows))
	var key []byte
	for i, r := range v.rows {
		key = sqltypes.EncodeKey(key[:0], r[ord])
		idx[string(key)] = append(idx[string(key)], i)
	}
	v.mu.Lock()
	if prior, ok := v.indexes[col]; ok {
		idx = prior
	} else {
		if v.indexes == nil {
			v.indexes = map[string]map[string][]int{}
		}
		v.indexes[col] = idx
	}
	v.mu.Unlock()
	return idx, nil
}

// Stats computes (and caches) statistics for a column. Like EnsureIndex,
// the table scan happens outside the lock.
func (v *TableVersion) Stats(col string) (ColStats, error) {
	ord := v.meta.ColIndex(col)
	if ord < 0 {
		return ColStats{}, fmt.Errorf("table %s: no column %q", v.meta.Name, col)
	}
	v.mu.RLock()
	st, ok := v.stats[col]
	v.mu.RUnlock()
	if ok {
		return st, nil
	}
	distinct := map[string]bool{}
	var key []byte
	st = ColStats{Min: sqltypes.Null, Max: sqltypes.Null}
	for _, r := range v.rows {
		val := r[ord]
		if val.IsNull() {
			continue
		}
		if st.Min.IsNull() || sqltypes.TotalCompare(val, st.Min) < 0 {
			st.Min = val
		}
		if st.Max.IsNull() || sqltypes.TotalCompare(val, st.Max) > 0 {
			st.Max = val
		}
		if len(distinct) < 100000 {
			key = sqltypes.EncodeKey(key[:0], val)
			distinct[string(key)] = true
		}
	}
	st.DistinctCount = int64(len(distinct))
	v.mu.Lock()
	if prior, ok := v.stats[col]; ok {
		st = prior
	} else {
		if v.stats == nil {
			v.stats = map[string]ColStats{}
		}
		v.stats[col] = st
	}
	v.mu.Unlock()
	return st, nil
}

// Table is an in-memory table whose state is an atomically published
// immutable version. Readers are always lock-free: Rows/Version/RowCount
// pin whatever version is current. Append is safe to run concurrently with
// any number of readers.
type Table struct {
	Meta *catalog.Table

	version atomic.Pointer[TableVersion]

	// appendMu serializes writers to this table: the writer holding it owns
	// the right to extend the shared backing row array past the published
	// length and install the next version.
	appendMu sync.Mutex

	// pub is the publish lock shared by every table of the owning Store
	// (standalone tables get a private one): version installs take it
	// exclusively, Store.Snapshot takes it shared to read a consistent cut.
	pub *sync.RWMutex

	// onAppend is the durability commit hook (see Store.SetAppendHook): it
	// runs before the rows become visible, so an error vetoes the append.
	onAppend func(meta *catalog.Table, rows []Row) error
}

// NewTable creates an empty table for the given metadata.
func NewTable(meta *catalog.Table) *Table {
	t := &Table{Meta: meta, pub: &sync.RWMutex{}}
	t.version.Store(newVersion(meta, nil))
	return t
}

// Version returns the currently published version.
func (t *Table) Version() *TableVersion { return t.version.Load() }

// Rows returns the currently published rows. The slice is immutable; hold a
// Snapshot (or the returned version) to keep reading a consistent state
// across statements.
func (t *Table) Rows() []Row { return t.version.Load().rows }

// RowCount returns the number of currently published rows.
func (t *Table) RowCount() int { return len(t.version.Load().rows) }

// checkArity validates row shapes before anything is logged or published.
func (t *Table) checkArity(rows []Row) error {
	for _, r := range rows {
		if len(r) != len(t.Meta.Cols) {
			return fmt.Errorf("table %s: row arity %d, want %d", t.Meta.Name, len(r), len(t.Meta.Cols))
		}
	}
	return nil
}

// Append adds rows by publishing a new version; running queries keep the
// version they pinned. When a commit hook is installed (durable stores) it
// runs first — write-ahead — so rows the hook could not make durable are
// never visible. The hook runs outside the writer lock so concurrent
// appends to one table can share a group-commit fsync; replay order within
// a table may therefore differ from publish order, which is fine because
// tables are multisets (an acknowledged row is present, order is not part
// of the contract).
func (t *Table) Append(rows ...Row) error {
	if err := t.checkArity(rows); err != nil {
		return err
	}
	if t.onAppend != nil {
		if err := t.onAppend(t.Meta, rows); err != nil {
			return fmt.Errorf("table %s: commit hook: %w", t.Meta.Name, err)
		}
	}
	t.appendMu.Lock()
	defer t.appendMu.Unlock()
	nv := t.nextVersionLocked(rows)
	t.pub.Lock()
	t.version.Store(nv)
	t.pub.Unlock()
	return nil
}

// nextVersionLocked builds the successor version holding the current rows
// plus the batch. Caller holds appendMu: extending the backing array past
// the published length is invisible to every reader (they are bounded by
// their version's length).
func (t *Table) nextVersionLocked(rows []Row) *TableVersion {
	cur := t.version.Load()
	return newVersion(t.Meta, append(cur.rows, rows...))
}

// EnsureIndex builds (or reuses) a hash index on the named column of the
// current version.
func (t *Table) EnsureIndex(col string) (map[string][]int, error) {
	return t.version.Load().EnsureIndex(col)
}

// HasIndexableCol reports whether the column is declared indexed (primary
// key or listed secondary index).
func (t *Table) HasIndexableCol(col string) bool {
	for _, c := range t.Meta.PKCols {
		if c == col {
			return true
		}
	}
	for _, c := range t.Meta.Indexes {
		if c == col {
			return true
		}
	}
	return false
}

// Stats computes (and caches) statistics for a column of the current
// version.
func (t *Table) Stats(col string) (ColStats, error) {
	return t.version.Load().Stats(col)
}

// Store is a collection of tables.
type Store struct {
	mu       sync.RWMutex
	tables   map[string]*Table
	onAppend func(meta *catalog.Table, rows []Row) error

	// pub serializes version installs (exclusive) against snapshot capture
	// (shared): a Snapshot sees either all or none of any publish.
	pub sync.RWMutex
}

// NewStore creates an empty store.
func NewStore() *Store {
	return &Store{tables: map[string]*Table{}}
}

// SetAppendHook installs a commit hook on every table (existing and future):
// fn runs before each Append's rows become visible, and an error from it
// aborts the append. The durability layer uses this to emit write-ahead-log
// records; it is attached only after recovery replay, so replayed rows are
// not re-logged. The hook must not call back into the store.
func (s *Store) SetAppendHook(fn func(meta *catalog.Table, rows []Row) error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onAppend = fn
	for _, t := range s.tables {
		t.onAppend = fn
	}
}

// CreateTable registers an empty table for the metadata.
func (s *Store) CreateTable(meta *catalog.Table) (*Table, error) {
	name := strings.ToLower(meta.Name)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.tables[name]; dup {
		return nil, fmt.Errorf("table %q already has storage", meta.Name)
	}
	t := NewTable(meta)
	t.pub = &s.pub
	t.onAppend = s.onAppend
	s.tables[name] = t
	return t, nil
}

// Table looks a table up by name.
func (s *Store) Table(name string) (*Table, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[strings.ToLower(name)]
	return t, ok
}

// MustTable returns the table or panics; for use by tests and generators.
func (s *Store) MustTable(name string) *Table {
	t, ok := s.Table(name)
	if !ok {
		panic(fmt.Sprintf("no table %q", name))
	}
	return t
}

// Snapshot is a consistent read view over a store: one pinned version per
// table. Reading through a snapshot sees no writes published after capture.
// A nil *Snapshot is valid and resolves every table to its current version.
type Snapshot struct {
	versions map[*Table]*TableVersion
}

// Snapshot captures a consistent cut of every table's current version.
// Capture is cheap — one atomic load per table, no copying.
func (s *Store) Snapshot() *Snapshot {
	s.mu.RLock()
	tabs := make([]*Table, 0, len(s.tables))
	for _, t := range s.tables {
		tabs = append(tabs, t)
	}
	s.mu.RUnlock()
	sn := &Snapshot{versions: make(map[*Table]*TableVersion, len(tabs))}
	s.pub.RLock()
	for _, t := range tabs {
		sn.versions[t] = t.version.Load()
	}
	s.pub.RUnlock()
	return sn
}

// Version resolves a table to its pinned version, falling back to the
// current version for tables created after capture (new tables are only
// visible to readers once DDL completes, which the query service excludes
// from running queries anyway).
func (sn *Snapshot) Version(t *Table) *TableVersion {
	if sn != nil {
		if v, ok := sn.versions[t]; ok {
			return v
		}
	}
	return t.version.Load()
}

// Rows returns the pinned rows for a table.
func (sn *Snapshot) Rows(t *Table) []Row { return sn.Version(t).rows }

// TableWrite is one table's buffered rows in a transaction commit.
type TableWrite struct {
	Table *Table
	Rows  []Row
}

// AppendBatch publishes appends to several tables atomically: commit (the
// durability hook; may be nil) runs first — write-ahead — and an error from
// it vetoes the whole batch; then every new version is installed under one
// publish-lock hold, so no snapshot can observe a partially applied
// transaction. Writer locks are taken in table-name order to avoid
// deadlocking with concurrent commits.
func (s *Store) AppendBatch(writes []TableWrite, commit func() error) error {
	for _, w := range writes {
		if err := w.Table.checkArity(w.Rows); err != nil {
			return err
		}
	}
	if commit != nil {
		if err := commit(); err != nil {
			return err
		}
	}
	sorted := make([]TableWrite, len(writes))
	copy(sorted, writes)
	sort.Slice(sorted, func(i, j int) bool {
		return sorted[i].Table.Meta.Name < sorted[j].Table.Meta.Name
	})
	for _, w := range sorted {
		w.Table.appendMu.Lock()
	}
	versions := make([]*TableVersion, len(sorted))
	for i, w := range sorted {
		versions[i] = w.Table.nextVersionLocked(w.Rows)
	}
	s.pub.Lock()
	for i, w := range sorted {
		w.Table.version.Store(versions[i])
	}
	s.pub.Unlock()
	for _, w := range sorted {
		w.Table.appendMu.Unlock()
	}
	return nil
}
