package storage

import (
	"testing"

	"udfdecorr/internal/catalog"
	"udfdecorr/internal/sqltypes"
)

func testMeta() *catalog.Table {
	return &catalog.Table{
		Name: "t",
		Cols: []catalog.Column{
			{Name: "k", Type: sqltypes.KindInt},
			{Name: "v", Type: sqltypes.KindString},
		},
		PKCols:  []string{"k"},
		Indexes: []string{"v"},
	}
}

func TestAppendAndArity(t *testing.T) {
	tab := NewTable(testMeta())
	if err := tab.Append(Row{sqltypes.NewInt(1), sqltypes.NewString("a")}); err != nil {
		t.Fatal(err)
	}
	if err := tab.Append(Row{sqltypes.NewInt(1)}); err == nil {
		t.Fatal("arity mismatch must fail")
	}
	if tab.RowCount() != 1 {
		t.Errorf("rows = %d", tab.RowCount())
	}
}

func TestIndexLookupAndInvalidation(t *testing.T) {
	tab := NewTable(testMeta())
	for i := int64(0); i < 10; i++ {
		tab.Append(Row{sqltypes.NewInt(i % 3), sqltypes.NewString("x")})
	}
	idx, err := tab.EnsureIndex("k")
	if err != nil {
		t.Fatal(err)
	}
	key := sqltypes.KeyOf(sqltypes.NewInt(1))
	if got := len(idx[key]); got != 3 {
		t.Errorf("bucket size = %d", got)
	}
	// Appending invalidates; a rebuilt index sees the new row.
	tab.Append(Row{sqltypes.NewInt(1), sqltypes.NewString("y")})
	idx2, _ := tab.EnsureIndex("k")
	if got := len(idx2[key]); got != 4 {
		t.Errorf("rebuilt bucket size = %d", got)
	}
	if _, err := tab.EnsureIndex("nosuch"); err == nil {
		t.Error("unknown column must fail")
	}
}

func TestHasIndexableCol(t *testing.T) {
	tab := NewTable(testMeta())
	if !tab.HasIndexableCol("k") || !tab.HasIndexableCol("v") {
		t.Error("pk and declared index should be indexable")
	}
	if tab.HasIndexableCol("nope") {
		t.Error("unknown column is not indexable")
	}
}

func TestStats(t *testing.T) {
	tab := NewTable(testMeta())
	for i := int64(1); i <= 100; i++ {
		tab.Append(Row{sqltypes.NewInt(i), sqltypes.NewString("s")})
	}
	tab.Append(Row{sqltypes.Null, sqltypes.NewString("s")})
	st, err := tab.Stats("k")
	if err != nil {
		t.Fatal(err)
	}
	if mn, _ := st.Min.AsInt(); mn != 1 {
		t.Errorf("min = %v", st.Min)
	}
	if mx, _ := st.Max.AsInt(); mx != 100 {
		t.Errorf("max = %v", st.Max)
	}
	if st.DistinctCount != 100 {
		t.Errorf("distinct = %d", st.DistinctCount)
	}
	st2, _ := tab.Stats("v")
	if st2.DistinctCount != 1 {
		t.Errorf("distinct(v) = %d", st2.DistinctCount)
	}
}

func TestStore(t *testing.T) {
	s := NewStore()
	if _, err := s.CreateTable(testMeta()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateTable(testMeta()); err == nil {
		t.Error("duplicate table must fail")
	}
	if _, ok := s.Table("T"); !ok {
		t.Error("lookup should be case-insensitive")
	}
	if _, ok := s.Table("zzz"); ok {
		t.Error("missing table should not resolve")
	}
}
