package storage

// Columnar storage tests: segment shape invariants, immutability of
// published segments under concurrent append (run under -race in CI), the
// zero-copy AppendCols install path, and the lazy row-major pivot cache.

import (
	"fmt"
	"sync"
	"testing"

	"udfdecorr/internal/catalog"
	"udfdecorr/internal/sqltypes"
)

func intMeta(name string, cols ...string) *catalog.Table {
	m := &catalog.Table{Name: name}
	for _, c := range cols {
		m.Cols = append(m.Cols, catalog.Column{Name: c, Type: sqltypes.KindInt})
	}
	return m
}

func intRows(lo, hi int) []Row {
	rows := make([]Row, 0, hi-lo)
	for i := lo; i < hi; i++ {
		rows = append(rows, Row{sqltypes.NewInt(int64(i)), sqltypes.NewInt(int64(2 * i))})
	}
	return rows
}

// checkSegments asserts the structural invariant of a published version:
// every segment except the last is exactly full, lengths sum to the row
// count, and values match the i -> (i, 2i) fixture.
func checkSegments(t *testing.T, v *TableVersion, wantRows int) {
	t.Helper()
	segs := v.Segments()
	total := 0
	for si, sg := range segs {
		if si < len(segs)-1 && sg.Len() != SegmentRows {
			t.Fatalf("segment %d/%d has %d rows, want full %d", si, len(segs), sg.Len(), SegmentRows)
		}
		if sg.Len() == 0 || sg.Len() > SegmentRows {
			t.Fatalf("segment %d has invalid length %d", si, sg.Len())
		}
		for i := 0; i < sg.Len(); i++ {
			ord := total + i
			if got := sg.Col(0)[i].Int(); got != int64(ord) {
				t.Fatalf("segment %d row %d col 0 = %d, want %d", si, i, got, ord)
			}
			if got := sg.Col(1)[i].Int(); got != int64(2*ord) {
				t.Fatalf("segment %d row %d col 1 = %d, want %d", si, i, got, 2*ord)
			}
		}
		total += sg.Len()
	}
	if total != wantRows || v.RowCount() != wantRows {
		t.Fatalf("segments cover %d rows, RowCount %d, want %d", total, v.RowCount(), wantRows)
	}
}

func TestSegmentShapeInvariants(t *testing.T) {
	tab := NewTable(intMeta("t", "a", "b"))
	// Odd-sized batches that straddle segment boundaries repeatedly.
	sizes := []int{1, SegmentRows - 2, 5, SegmentRows, SegmentRows/2 + 3, 7}
	n := 0
	for _, sz := range sizes {
		if err := tab.Append(intRows(n, n+sz)...); err != nil {
			t.Fatal(err)
		}
		n += sz
		checkSegments(t, tab.Version(), n)
	}
}

func TestPublishedSegmentsImmutableUnderConcurrentAppend(t *testing.T) {
	tab := NewTable(intMeta("t", "a", "b"))
	const batches, per = 64, 257 // deliberately misaligned with SegmentRows
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := tab.Version()
				n := v.RowCount()
				// Re-walk the pinned version: every visible value must match
				// the fixture no matter how far the writer has advanced. The
				// race detector additionally proves no published slot is
				// written concurrently.
				seen := 0
				for _, sg := range v.Segments() {
					for i := 0; i < sg.Len(); i++ {
						if got := sg.Col(0)[i].Int(); got != int64(seen) {
							panic(fmt.Sprintf("pinned version mutated: row %d = %d", seen, got))
						}
						seen++
					}
				}
				if seen != n {
					panic(fmt.Sprintf("pinned version covers %d rows, RowCount %d", seen, n))
				}
			}
		}()
	}
	n := 0
	for b := 0; b < batches; b++ {
		if err := tab.Append(intRows(n, n+per)...); err != nil {
			t.Fatal(err)
		}
		n += per
	}
	close(stop)
	wg.Wait()
	checkSegments(t, tab.Version(), n)
}

func TestAppendColsZeroCopyInstall(t *testing.T) {
	tab := NewTable(intMeta("t", "a", "b"))
	cols := make([][]sqltypes.Value, 2)
	for c := range cols {
		cols[c] = make([]sqltypes.Value, SegmentRows)
	}
	for i := 0; i < SegmentRows; i++ {
		cols[0][i] = sqltypes.NewInt(int64(i))
		cols[1][i] = sqltypes.NewInt(int64(2 * i))
	}
	if err := tab.AppendCols(cols, SegmentRows); err != nil {
		t.Fatal(err)
	}
	segs := tab.Version().Segments()
	if len(segs) != 1 || segs[0].Len() != SegmentRows {
		t.Fatalf("want one full segment, got %d segments", len(segs))
	}
	// Segment-aligned install must alias the caller's vectors, not copy.
	if &segs[0].Col(0)[0] != &cols[0][0] {
		t.Fatal("aligned AppendCols copied the column vector instead of installing it")
	}
	checkSegments(t, tab.Version(), SegmentRows)
}

func TestAppendColsUnaligned(t *testing.T) {
	tab := NewTable(intMeta("t", "a", "b"))
	// Two chunks that individually misalign but together span >1 segment.
	sizes := []int{SegmentRows/2 + 1, SegmentRows}
	n := 0
	for _, sz := range sizes {
		cols := make([][]sqltypes.Value, 2)
		for c := range cols {
			cols[c] = make([]sqltypes.Value, sz)
		}
		for i := 0; i < sz; i++ {
			cols[0][i] = sqltypes.NewInt(int64(n + i))
			cols[1][i] = sqltypes.NewInt(int64(2 * (n + i)))
		}
		if err := tab.AppendCols(cols, sz); err != nil {
			t.Fatal(err)
		}
		n += sz
		checkSegments(t, tab.Version(), n)
	}
	// Arity errors are rejected before anything publishes.
	if err := tab.AppendCols(make([][]sqltypes.Value, 1), 0); err == nil {
		t.Fatal("column arity mismatch must fail")
	}
}

func TestRowPivotCacheAndRowAt(t *testing.T) {
	tab := NewTable(intMeta("t", "a", "b"))
	n := SegmentRows + 37
	if err := tab.Append(intRows(0, n)...); err != nil {
		t.Fatal(err)
	}
	v := tab.Version()
	// RowAt before any pivot serves straight from the segments.
	if got := v.RowAt(SegmentRows + 5)[0].Int(); got != int64(SegmentRows+5) {
		t.Fatalf("RowAt = %d", got)
	}
	pivotsBefore := PivotedScans()
	r1 := v.Rows()
	r2 := v.Rows()
	if len(r1) != n {
		t.Fatalf("Rows() = %d rows, want %d", len(r1), n)
	}
	if &r1[0] != &r2[0] {
		t.Fatal("Rows() rebuilt the pivot instead of serving the cache")
	}
	if got := PivotedScans() - pivotsBefore; got != 1 {
		t.Fatalf("pivot counter advanced %d times, want 1", got)
	}
	for i := 0; i < n; i += 111 {
		if r1[i][0].Int() != int64(i) || r1[i][1].Int() != int64(2*i) {
			t.Fatalf("pivoted row %d = %v", i, r1[i])
		}
	}
}

func TestStorageStatsCounts(t *testing.T) {
	s := NewStore()
	st1, err := s.CreateTable(intMeta("t1", "a", "b"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateTable(intMeta("t2", "a", "b")); err != nil {
		t.Fatal(err)
	}
	n := SegmentRows + 10
	if err := st1.Append(intRows(0, n)...); err != nil {
		t.Fatal(err)
	}
	got := s.StorageStats()
	if got.Tables != 2 {
		t.Fatalf("Tables = %d", got.Tables)
	}
	if got.Segments != 2 { // one full + one partial on t1, none on empty t2
		t.Fatalf("Segments = %d", got.Segments)
	}
	if got.Rows != int64(n) {
		t.Fatalf("Rows = %d", got.Rows)
	}
	if got.ColumnBytes <= 0 {
		t.Fatalf("ColumnBytes = %d", got.ColumnBytes)
	}
}
