package sqlgen

import (
	"strings"
	"testing"

	"udfdecorr/internal/algebra"
	"udfdecorr/internal/sqltypes"
)

func scan(table, alias string, cols ...string) *algebra.Scan {
	out := &algebra.Scan{Table: table, Alias: alias}
	for _, c := range cols {
		out.Cols = append(out.Cols, algebra.Column{Qual: alias, Name: c, Type: sqltypes.KindInt})
	}
	return out
}

func TestGenerateScanProjectSelect(t *testing.T) {
	rel := &algebra.Project{
		Cols: []algebra.ProjCol{
			{E: &algebra.ColRef{Qual: "o", Name: "orderkey"}, As: "orderkey"},
			{E: &algebra.Arith{Op: sqltypes.OpMul,
				L: &algebra.ColRef{Qual: "o", Name: "totalprice"},
				R: &algebra.Const{Val: sqltypes.NewFloat(0.15)}}, As: "d"},
		},
		In: &algebra.Select{
			Pred: &algebra.Cmp{Op: sqltypes.CmpGT,
				L: &algebra.ColRef{Qual: "o", Name: "totalprice"},
				R: &algebra.Const{Val: sqltypes.NewInt(100)}},
			In: scan("orders", "o", "orderkey", "totalprice"),
		},
	}
	sql, err := Generate(rel)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"SELECT", "o.orderkey AS orderkey", "(o.totalprice * 0.15) AS d",
		"FROM orders o", "WHERE (o.totalprice > 100)"} {
		if !strings.Contains(sql, want) {
			t.Errorf("missing %q in:\n%s", want, sql)
		}
	}
}

func TestGenerateLeftOuterJoinGroupBy(t *testing.T) {
	// The Example 2 shape: customer LOJ (group-by over orders).
	gb := &algebra.GroupBy{
		Keys: []*algebra.ColRef{{Qual: "orders", Name: "custkey"}},
		Aggs: []algebra.AggCall{{Func: "sum",
			Args: []algebra.Expr{&algebra.ColRef{Qual: "orders", Name: "totalprice"}},
			As:   "totalbusiness"}},
		In: scan("orders", "orders", "custkey", "totalprice"),
	}
	rel := &algebra.Project{
		Cols: []algebra.ProjCol{
			{E: &algebra.ColRef{Qual: "c", Name: "custkey"}, As: "custkey"},
			{E: &algebra.Case{
				Whens: []algebra.CaseWhen{{
					Cond: &algebra.Cmp{Op: sqltypes.CmpGT,
						L: &algebra.ColRef{Name: "totalbusiness"},
						R: &algebra.Const{Val: sqltypes.NewInt(1000000)}},
					Then: &algebra.Const{Val: sqltypes.NewString("Platinum")},
				}},
				Else: &algebra.Const{Val: sqltypes.NewString("Regular")},
			}, As: "level"},
		},
		In: &algebra.Join{
			Kind: algebra.LeftOuterJoin,
			Cond: &algebra.Cmp{Op: sqltypes.CmpEQ,
				L: &algebra.ColRef{Qual: "c", Name: "custkey"},
				R: &algebra.ColRef{Qual: "orders", Name: "custkey"}},
			L: scan("customer", "c", "custkey", "name"),
			R: gb,
		},
	}
	sql, err := Generate(rel)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"LEFT OUTER JOIN", "GROUP BY", "sum(", "CASE WHEN", "'Platinum'"} {
		if !strings.Contains(sql, want) {
			t.Errorf("missing %q in:\n%s", want, sql)
		}
	}
	// The derived table boundary must rename orders.custkey references.
	if strings.Contains(sql, "ON (c.custkey = orders.custkey)") {
		t.Errorf("join condition must reference the derived-table alias:\n%s", sql)
	}
}

func TestGenerateSemiAnti(t *testing.T) {
	inner := &algebra.Select{
		Pred: &algebra.Cmp{Op: sqltypes.CmpEQ,
			L: &algebra.ColRef{Qual: "o", Name: "custkey"},
			R: &algebra.ColRef{Qual: "c", Name: "custkey"}},
		In: scan("orders", "o", "custkey"),
	}
	for _, kind := range []algebra.JoinKind{algebra.SemiJoin, algebra.AntiJoin} {
		rel := &algebra.Join{Kind: kind, L: scan("customer", "c", "custkey"), R: inner}
		sql, err := Generate(rel)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(sql, "EXISTS") {
			t.Errorf("%v should render EXISTS:\n%s", kind, sql)
		}
		if kind == algebra.AntiJoin && !strings.Contains(sql, "NOT EXISTS") {
			t.Errorf("antijoin should render NOT EXISTS:\n%s", sql)
		}
	}
}

func TestGenerateRejectsApply(t *testing.T) {
	rel := &algebra.Apply{Kind: algebra.CrossJoin,
		L: scan("customer", "c", "custkey"), R: &algebra.Single{}}
	if _, err := Generate(rel); err == nil {
		t.Fatal("apply must be rejected")
	}
}

func TestGenerateLimitSortDistinct(t *testing.T) {
	rel := &algebra.Limit{N: 5, In: &algebra.Sort{
		Keys: []algebra.SortKey{{E: &algebra.ColRef{Qual: "c", Name: "custkey"}, Desc: true}},
		In: &algebra.Project{
			Cols:  []algebra.ProjCol{{E: &algebra.ColRef{Qual: "c", Name: "custkey"}, As: "custkey"}},
			Dedup: true,
			In:    scan("customer", "c", "custkey"),
		},
	}}
	sql, err := Generate(rel)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"DISTINCT", "ORDER BY", "DESC", "LIMIT 5"} {
		if !strings.Contains(sql, want) {
			t.Errorf("missing %q in:\n%s", want, sql)
		}
	}
}

func TestGenerateUnionAll(t *testing.T) {
	p1 := &algebra.Project{Cols: []algebra.ProjCol{{E: &algebra.Const{Val: sqltypes.NewInt(1)}, As: "x"}}, In: &algebra.Single{}}
	p2 := &algebra.Project{Cols: []algebra.ProjCol{{E: &algebra.Const{Val: sqltypes.NewInt(2)}, As: "x"}}, In: &algebra.Single{}}
	sql, err := Generate(&algebra.UnionAll{L: p1, R: p2})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql, "UNION ALL") {
		t.Errorf("missing UNION ALL:\n%s", sql)
	}
}
