// Package sqlgen renders logical algebra trees back to SQL text: the output
// phase of the paper's query rewrite tool (Figure 9). Decorrelated trees
// become flat SELECT statements with joins, grouped derived tables and CASE
// expressions.
//
// Name management: every derived table exports its columns under their bare
// (unqualified) schema names, and the generator substitutes references in
// enclosing clauses accordingly, so the emitted SQL is self-consistent.
package sqlgen

import (
	"fmt"
	"strings"

	"udfdecorr/internal/algebra"
)

// Generate renders a relational tree as a SQL SELECT statement.
func Generate(rel algebra.Rel) (string, error) {
	g := &generator{}
	q, err := g.toQuery(rel)
	if err != nil {
		return "", err
	}
	return q.SQL(0), nil
}

type generator struct {
	aliasSeq int
}

func (g *generator) freshAlias(prefix string) string {
	g.aliasSeq++
	return fmt.Sprintf("%s_%d", prefix, g.aliasSeq)
}

// orderKey is a pending ORDER BY key kept as an expression so that
// derived-table wrapping can rewrite its references.
type orderKey struct {
	e    algebra.Expr
	desc bool
}

// query is a SQL SELECT under construction.
type query struct {
	selectList []string
	distinct   bool
	from       []string
	where      []string
	groupBy    []string
	orderBy    []orderKey
	limit      string
	// passthrough is true while the select list merely re-exports base
	// columns; computed select lists force derived-table wrapping before
	// further clauses can be layered on.
	passthrough bool
	// renames rewrites references to columns whose source became a derived
	// table within this query (e.g. a grouped join input); operators
	// layering further clauses onto this query must apply it.
	renames renameMap
}

// SQL renders the query with the given indentation depth.
func (q *query) SQL(depth int) string {
	g := &generator{}
	s, err := g.render(q, depth)
	if err != nil {
		return "-- sqlgen error: " + err.Error()
	}
	return s
}

// render produces the SQL text of a query.
func (g *generator) render(q *query, depth int) (string, error) {
	pad := strings.Repeat("  ", depth)
	var b strings.Builder
	b.WriteString(pad + "SELECT ")
	if q.distinct {
		b.WriteString("DISTINCT ")
	}
	if len(q.selectList) == 0 {
		b.WriteString("1")
	} else {
		b.WriteString(strings.Join(q.selectList, ", "))
	}
	if len(q.from) > 0 {
		b.WriteString("\n" + pad + "FROM " + strings.Join(q.from, "\n"+pad+"     "))
	}
	if len(q.where) > 0 {
		b.WriteString("\n" + pad + "WHERE " + strings.Join(q.where, " AND "))
	}
	if len(q.groupBy) > 0 {
		b.WriteString("\n" + pad + "GROUP BY " + strings.Join(q.groupBy, ", "))
	}
	if len(q.orderBy) > 0 {
		parts := make([]string, len(q.orderBy))
		for i, k := range q.orderBy {
			s, err := g.expr(k.e)
			if err != nil {
				return "", err
			}
			parts[i] = s
			if k.desc {
				parts[i] += " DESC"
			}
		}
		b.WriteString("\n" + pad + "ORDER BY " + strings.Join(parts, ", "))
	}
	if q.limit != "" {
		b.WriteString("\n" + pad + "LIMIT " + q.limit)
	}
	return b.String(), nil
}

func (q *query) simpleEnough() bool {
	return q.passthrough && len(q.groupBy) == 0 && !q.distinct && q.limit == "" && len(q.orderBy) == 0
}

// renameMap maps (qual, name) column references to replacement expressions.
type renameMap = map[algebra.Ref]algebra.Expr

// subst applies a rename map to an expression.
func subst(e algebra.Expr, m renameMap) algebra.Expr {
	if len(m) == 0 || e == nil {
		return e
	}
	return algebra.MapExpr(e, func(x algebra.Expr) algebra.Expr {
		if c, ok := x.(*algebra.ColRef); ok {
			if repl, ok := m[algebra.Ref{Qual: c.Qual, Name: c.Name}]; ok {
				return repl
			}
		}
		return x
	}, func(sub algebra.Rel) algebra.Rel {
		return algebra.MapExprsDeep(sub, func(x algebra.Expr) algebra.Expr {
			if c, ok := x.(*algebra.ColRef); ok {
				if repl, ok := m[algebra.Ref{Qual: c.Qual, Name: c.Name}]; ok {
					return repl
				}
			}
			return x
		})
	})
}

// exportRenames builds the substitution for wrapping rel under alias: its
// schema columns become alias.name references.
func exportRenames(rel algebra.Rel, alias string) renameMap {
	m := renameMap{}
	for _, c := range rel.Schema() {
		m[algebra.Ref{Qual: c.Qual, Name: c.Name}] = &algebra.ColRef{Qual: alias, Name: c.Name}
		// Unqualified references to the same name also resolve here.
		if c.Qual != "" {
			m[algebra.Ref{Name: c.Name}] = &algebra.ColRef{Qual: alias, Name: c.Name}
		}
	}
	return m
}

// wrap turns a query into a derived-table source and returns the rename map
// callers must apply to references into it.
func (g *generator) wrap(q *query, rel algebra.Rel) (*query, renameMap) {
	alias := g.freshAlias("t")
	m := exportRenames(rel, alias)
	// ORDER BY does not survive inside a derived table; hoist pending keys
	// to the wrapper with their references rewritten.
	hoisted := q.orderBy
	q.orderBy = nil
	out := &query{from: []string{"(" + q.SQL(1) + ") " + alias}, passthrough: true, renames: m}
	for _, k := range hoisted {
		out.orderBy = append(out.orderBy, orderKey{e: subst(k.e, m), desc: k.desc})
	}
	for _, c := range rel.Schema() {
		out.selectList = append(out.selectList, alias+"."+c.Name+" AS "+c.Name)
	}
	return out, m
}

// toQuery converts a relational tree to a query. The invariant maintained
// throughout: the produced query's select list exports rel's schema columns
// aliased by their bare names, in order, while references *within* the query
// still use the original qualifiers.
func (g *generator) toQuery(rel algebra.Rel) (*query, error) {
	switch n := rel.(type) {
	case *algebra.Scan:
		src := n.Table
		if n.Alias != "" && n.Alias != n.Table {
			src += " " + n.Alias
		}
		q := &query{from: []string{src}, passthrough: true}
		for _, c := range n.Cols {
			q.selectList = append(q.selectList, c.String()+" AS "+c.Name)
		}
		return q, nil

	case *algebra.Single:
		return &query{selectList: []string{"1 AS single_dummy"}, passthrough: true}, nil

	case *algebra.Select:
		q, err := g.toQuery(n.In)
		if err != nil {
			return nil, err
		}
		pred := n.Pred
		if !q.simpleEnough() {
			var m renameMap
			q, m = g.wrap(q, n.In)
			pred = subst(pred, m)
		} else {
			pred = subst(pred, q.renames)
		}
		s, err := g.expr(pred)
		if err != nil {
			return nil, err
		}
		q.where = append(q.where, s)
		return q, nil

	case *algebra.Project:
		q, err := g.toQuery(n.In)
		if err != nil {
			return nil, err
		}
		m := q.renames
		if len(q.groupBy) > 0 || q.distinct || !q.passthrough || len(q.orderBy) > 0 {
			q, m = g.wrap(q, n.In)
		}
		q.selectList = nil
		pure := true
		for _, c := range n.Cols {
			s, err := g.expr(subst(c.E, m))
			if err != nil {
				return nil, err
			}
			if _, isRef := c.E.(*algebra.ColRef); !isRef {
				pure = false
			}
			q.selectList = append(q.selectList, s+" AS "+c.As)
		}
		q.distinct = n.Dedup
		q.passthrough = pure && !n.Dedup
		if q.passthrough {
			// A pure renaming projection may be collapsed by enclosing
			// operators (GROUP BY replaces the select list entirely), so its
			// output aliases must substitute back to their source columns.
			ren := renameMap{}
			for k, v := range m {
				ren[k] = v
			}
			outCols := n.Schema()
			for i, c := range n.Cols {
				repl := subst(c.E, m)
				ren[algebra.Ref{Qual: outCols[i].Qual, Name: outCols[i].Name}] = repl
				if outCols[i].Qual != "" {
					ren[algebra.Ref{Name: outCols[i].Name}] = repl
				}
			}
			q.renames = ren
		}
		return q, nil

	case *algebra.Join:
		return g.joinQuery(n)

	case *algebra.GroupBy:
		q, err := g.toQuery(n.In)
		if err != nil {
			return nil, err
		}
		m := q.renames
		if !q.simpleEnough() {
			q, m = g.wrap(q, n.In)
		}
		q.selectList = nil
		for _, k := range n.Keys {
			ks, err := g.expr(subst(k, m))
			if err != nil {
				return nil, err
			}
			q.selectList = append(q.selectList, ks+" AS "+k.Name)
			q.groupBy = append(q.groupBy, ks)
		}
		for _, a := range n.Aggs {
			args := make([]string, len(a.Args))
			for i, arg := range a.Args {
				s, err := g.expr(subst(arg, m))
				if err != nil {
					return nil, err
				}
				args[i] = s
			}
			inner := strings.Join(args, ", ")
			if len(a.Args) == 0 {
				inner = "*"
			}
			if a.Distinct {
				inner = "DISTINCT " + inner
			}
			q.selectList = append(q.selectList, fmt.Sprintf("%s(%s) AS %s", a.Func, inner, a.As))
		}
		q.passthrough = false
		return q, nil

	case *algebra.UnionAll:
		lq, err := g.toQuery(n.L)
		if err != nil {
			return nil, err
		}
		rq, err := g.toQuery(n.R)
		if err != nil {
			return nil, err
		}
		alias := g.freshAlias("u")
		src := "(" + lq.SQL(1) + "\n UNION ALL\n" + rq.SQL(1) + ") " + alias
		q := &query{from: []string{src}, passthrough: true}
		for _, c := range n.Schema() {
			q.selectList = append(q.selectList, alias+"."+c.Name+" AS "+c.Name)
		}
		return q, nil

	case *algebra.Limit:
		q, err := g.toQuery(n.In)
		if err != nil {
			return nil, err
		}
		if q.limit != "" {
			q, _ = g.wrap(q, n.In)
		}
		q.limit = fmt.Sprintf("%d", n.N)
		return q, nil

	case *algebra.Sort:
		q, err := g.toQuery(n.In)
		if err != nil {
			return nil, err
		}
		m := q.renames
		if q.limit != "" || q.distinct {
			q, m = g.wrap(q, n.In)
		}
		for _, k := range n.Keys {
			q.orderBy = append(q.orderBy, orderKey{e: subst(k.E, m), desc: k.Desc})
		}
		return q, nil

	case *algebra.TableFunc:
		args := make([]string, len(n.Args))
		for i, a := range n.Args {
			s, err := g.expr(a)
			if err != nil {
				return nil, err
			}
			args[i] = s
		}
		alias := ""
		if len(n.Cols) > 0 && n.Cols[0].Qual != "" {
			alias = " " + n.Cols[0].Qual
		}
		q := &query{from: []string{n.Name + "(" + strings.Join(args, ", ") + ")" + alias}, passthrough: true}
		for _, c := range n.Cols {
			q.selectList = append(q.selectList, c.String()+" AS "+c.Name)
		}
		return q, nil

	case *algebra.Apply, *algebra.ApplyMerge, *algebra.CondApplyMerge:
		return nil, fmt.Errorf("sqlgen: %s cannot be rendered; the tree is not decorrelated", rel.Describe())
	}
	return nil, fmt.Errorf("sqlgen: unsupported operator %T", rel)
}

// source renders a relation as a FROM-clause source, returning the rename
// substitution enclosing clauses must apply.
func (g *generator) source(rel algebra.Rel) (string, renameMap, error) {
	switch n := rel.(type) {
	case *algebra.Scan:
		if n.Alias != "" && n.Alias != n.Table {
			return n.Table + " " + n.Alias, nil, nil
		}
		return n.Table, nil, nil
	default:
		q, err := g.toQuery(rel)
		if err != nil {
			return "", nil, err
		}
		alias := g.freshAlias("d")
		return "(" + q.SQL(1) + ") " + alias, exportRenames(rel, alias), nil
	}
}

// joinQuery renders a join node.
func (g *generator) joinQuery(n *algebra.Join) (*query, error) {
	lsrc, lren, err := g.source(n.L)
	if err != nil {
		return nil, err
	}
	cond := n.Cond
	cond = subst(cond, lren)

	q := &query{passthrough: true}
	addCols := func(rel algebra.Rel, ren renameMap) error {
		for _, c := range rel.Schema() {
			var e algebra.Expr = &algebra.ColRef{Qual: c.Qual, Name: c.Name}
			e = subst(e, ren)
			s, err := g.expr(e)
			if err != nil {
				return err
			}
			q.selectList = append(q.selectList, s+" AS "+c.Name)
		}
		return nil
	}

	switch n.Kind {
	case algebra.SemiJoin, algebra.AntiJoin:
		neg := ""
		if n.Kind == algebra.AntiJoin {
			neg = "NOT "
		}
		inner, err := g.toQuery(n.R)
		if err != nil {
			return nil, err
		}
		if cond != nil {
			s, err := g.expr(cond)
			if err != nil {
				return nil, err
			}
			inner.where = append(inner.where, s)
		}
		q.from = []string{lsrc}
		if err := addCols(n.L, lren); err != nil {
			return nil, err
		}
		q.where = append(q.where, neg+"EXISTS (\n"+inner.SQL(1)+"\n)")
		q.renames = lren
		return q, nil
	}

	rsrc, rren, err := g.source(n.R)
	if err != nil {
		return nil, err
	}
	cond = subst(cond, rren)
	var condStr string
	if cond != nil {
		condStr, err = g.expr(cond)
		if err != nil {
			return nil, err
		}
	}
	switch n.Kind {
	case algebra.CrossJoin:
		q.from = []string{lsrc, "CROSS JOIN " + rsrc}
		if condStr != "" {
			q.where = append(q.where, condStr)
		}
	case algebra.InnerJoin:
		if condStr == "" {
			condStr = "TRUE"
		}
		q.from = []string{lsrc, "JOIN " + rsrc + " ON " + condStr}
	case algebra.LeftOuterJoin:
		if condStr == "" {
			condStr = "TRUE"
		}
		q.from = []string{lsrc, "LEFT OUTER JOIN " + rsrc + " ON " + condStr}
	}
	if err := addCols(n.L, lren); err != nil {
		return nil, err
	}
	if err := addCols(n.R, rren); err != nil {
		return nil, err
	}
	q.renames = renameMap{}
	for k, v := range lren {
		q.renames[k] = v
	}
	for k, v := range rren {
		q.renames[k] = v
	}
	return q, nil
}

// expr renders a scalar expression as SQL.
func (g *generator) expr(e algebra.Expr) (string, error) {
	switch x := e.(type) {
	case *algebra.ColRef:
		if x.Qual != "" {
			return x.Qual + "." + x.Name, nil
		}
		return x.Name, nil
	case *algebra.ParamRef:
		return ":" + x.Name, nil
	case *algebra.Const:
		return x.Val.String(), nil
	case *algebra.Arith:
		return g.binary(x.L, x.Op.String(), x.R)
	case *algebra.Cmp:
		return g.binary(x.L, x.Op.String(), x.R)
	case *algebra.Logic:
		return g.binary(x.L, x.Op.String(), x.R)
	case *algebra.Not:
		s, err := g.expr(x.E)
		if err != nil {
			return "", err
		}
		return "(NOT " + s + ")", nil
	case *algebra.IsNull:
		s, err := g.expr(x.E)
		if err != nil {
			return "", err
		}
		if x.Neg {
			return "(" + s + " IS NOT NULL)", nil
		}
		return "(" + s + " IS NULL)", nil
	case *algebra.Case:
		var b strings.Builder
		b.WriteString("CASE")
		for _, w := range x.Whens {
			c, err := g.expr(w.Cond)
			if err != nil {
				return "", err
			}
			t, err := g.expr(w.Then)
			if err != nil {
				return "", err
			}
			b.WriteString(" WHEN " + c + " THEN " + t)
		}
		if x.Else != nil {
			el, err := g.expr(x.Else)
			if err != nil {
				return "", err
			}
			b.WriteString(" ELSE " + el)
		}
		b.WriteString(" END")
		return b.String(), nil
	case *algebra.Call:
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			s, err := g.expr(a)
			if err != nil {
				return "", err
			}
			args[i] = s
		}
		return x.Name + "(" + strings.Join(args, ", ") + ")", nil
	case *algebra.Subquery:
		q, err := g.toQuery(x.Rel)
		if err != nil {
			return "", err
		}
		return "(\n" + q.SQL(1) + "\n)", nil
	case *algebra.Exists:
		q, err := g.toQuery(x.Rel)
		if err != nil {
			return "", err
		}
		neg := ""
		if x.Neg {
			neg = "NOT "
		}
		return neg + "EXISTS (\n" + q.SQL(1) + "\n)", nil
	}
	return "", fmt.Errorf("sqlgen: unsupported expression %T", e)
}

func (g *generator) binary(l algebra.Expr, op string, r algebra.Expr) (string, error) {
	ls, err := g.expr(l)
	if err != nil {
		return "", err
	}
	rs, err := g.expr(r)
	if err != nil {
		return "", err
	}
	return "(" + ls + " " + op + " " + rs + ")", nil
}
