package server_test

// End-to-end tests of the /stream NDJSON endpoint: wire format (header,
// row lines, trailer), and client-disconnect cancellation observable in
// /stats as a cancelled (not errored) query with the server still healthy.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"udfdecorr/internal/engine"
	"udfdecorr/internal/server"
)

type streamLine struct {
	Cols     []string `json:"cols"`
	Row      []string `json:"row"`
	Done     bool     `json:"done"`
	RowCount int      `json:"row_count"`
	Error    string   `json:"error"`
}

func postStream(t *testing.T, ctx context.Context, url, body string) *http.Response {
	t.Helper()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestHTTPStreamWireFormat(t *testing.T) {
	svc := newBenchService(t, server.DefaultOptions())
	ts := httptest.NewServer(server.NewHandler(svc))
	defer ts.Close()

	resp := postStream(t, context.Background(), ts.URL+"/stream",
		`{"sql":"select custkey, lvl(custkey) from customer where custkey < 5"}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	var lines []streamLine
	for sc.Scan() {
		var l streamLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, l)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) < 2 {
		t.Fatalf("stream had %d lines, want header + rows + trailer", len(lines))
	}
	header, trailer, rows := lines[0], lines[len(lines)-1], lines[1:len(lines)-1]
	if len(header.Cols) != 2 || header.Cols[0] != "custkey" {
		t.Fatalf("header = %+v", header)
	}
	if !trailer.Done || trailer.Error != "" {
		t.Fatalf("trailer = %+v", trailer)
	}
	if trailer.RowCount != len(rows) {
		t.Fatalf("trailer row_count %d != %d streamed rows", trailer.RowCount, len(rows))
	}
	if len(rows) != 4 { // custkeys are 1-based: 1..4
		t.Fatalf("streamed %d rows, want 4", len(rows))
	}
	for _, r := range rows {
		if len(r.Row) != 2 {
			t.Fatalf("row line %+v has %d cells", r, len(r.Row))
		}
	}
}

func TestHTTPStreamQueryErrorInTrailer(t *testing.T) {
	svc := newBenchService(t, server.DefaultOptions())
	ts := httptest.NewServer(server.NewHandler(svc))
	defer ts.Close()

	// A planning error is rejected before streaming starts (plain JSON 400).
	resp := postStream(t, context.Background(), ts.URL+"/stream", `{"sql":"select nope from nowhere"}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400 for a planning error", resp.StatusCode)
	}
}

func TestHTTPStreamClientDisconnectCancelsQuery(t *testing.T) {
	svc := newStreamHTTPService(t, 200_000)
	ts := httptest.NewServer(server.NewHandler(svc))
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	resp := postStream(t, ctx, ts.URL+"/stream", `{"sql":"select k from t where v >= 0"}`)
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("no header line: %v", sc.Err())
	}
	if !sc.Scan() {
		t.Fatalf("no first row: %v", sc.Err())
	}
	// Hang up mid-stream: the request context on the server cancels the
	// query at the next row boundary.
	cancel()
	resp.Body.Close()

	deadline := time.Now().Add(10 * time.Second)
	for {
		st := svc.Stats()
		if st.QueriesCancelled >= 1 {
			if st.QueryErrors != 0 {
				t.Fatalf("disconnect counted as error: %+v", st)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never recorded the cancelled stream: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Server stays healthy: a fresh query on the same service succeeds.
	resp2 := postStream(t, context.Background(), ts.URL+"/stream", `{"sql":"select k from t where k < 3"}`)
	defer resp2.Body.Close()
	sc2 := bufio.NewScanner(resp2.Body)
	n := 0
	for sc2.Scan() {
		n++
	}
	if n != 5 { // header + 3 rows + trailer
		t.Fatalf("post-disconnect stream had %d lines, want 5", n)
	}
}

// newStreamHTTPService builds a service over t(k, v) with n rows (external
// test package variant of the internal helper).
func newStreamHTTPService(t *testing.T, n int) *server.Service {
	t.Helper()
	boot := engine.New(engine.SYS1, engine.ModeRewrite)
	if err := boot.ExecScript(`create table t (k int, v int);`); err != nil {
		t.Fatal(err)
	}
	rows := make([][]int64, n)
	for i := range rows {
		rows[i] = []int64{int64(i), int64(i % 53)}
	}
	boot.MustLoadInts("t", rows)
	return server.NewServiceFromEngine(boot, server.DefaultOptions())
}
