package server_test

// Observability-layer tests: the /metrics Prometheus exposition (parses, and
// agrees with /stats because both read the same live sources), the
// structured slow-query log with trace IDs, trace-ID propagation over HTTP,
// and EXPLAIN ANALYZE through /explain?analyze=1.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"udfdecorr/internal/engine"
	"udfdecorr/internal/server"
)

// scrapeMetrics GETs /metrics and parses every sample line into a
// series-name -> value map, failing the test on any unparsable line.
func scrapeMetrics(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("GET /metrics: Content-Type = %q", ct)
	}
	samples := map[string]float64{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, valStr, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("unparsable /metrics line: %q", line)
		}
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("bad value in /metrics line %q: %v", line, err)
		}
		samples[name] = val
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return samples
}

func getStats(t *testing.T, url string) server.Stats {
	t.Helper()
	resp, err := http.Get(url + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st server.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestMetricsAgreeWithStats drives concurrent query load (with /metrics
// scrapes racing it), then asserts the settled /metrics exposition reports
// exactly the numbers /stats reports — both surfaces read the same sources.
func TestMetricsAgreeWithStats(t *testing.T) {
	svc := newBenchService(t, server.DefaultOptions())
	ts := httptest.NewServer(server.NewHandler(svc))
	defer ts.Close()

	const workers, perWorker = 4, 10
	stopScrape := make(chan struct{})
	var scrapeWG sync.WaitGroup
	scrapeWG.Add(1)
	go func() { // concurrent scrapes must stay parseable mid-load
		defer scrapeWG.Done()
		for {
			select {
			case <-stopScrape:
				return
			default:
				resp, err := http.Get(ts.URL + "/metrics")
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := svc.CreateSession(engine.SYS1, engine.ModeRewrite)
			defer svc.CloseSession(sess.ID)
			for i := 0; i < perWorker; i++ {
				if _, err := svc.QueryContext(context.Background(), sess,
					"select custkey, lvl(custkey) from customer where custkey < 20"); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stopScrape)
	scrapeWG.Wait()

	st := getStats(t, ts.URL)
	m := scrapeMetrics(t, ts.URL)

	var queriesByMode float64
	for mode, n := range st.QueriesByMode {
		series := fmt.Sprintf(`udfd_queries_total{mode="%s"}`, mode)
		got, ok := m[series]
		if !ok {
			t.Errorf("missing %s in /metrics", series)
			continue
		}
		if got != float64(n) {
			t.Errorf("%s = %v, /stats says %d", series, got, n)
		}
		queriesByMode += got
	}
	if queriesByMode < workers*perWorker {
		t.Errorf("queries_total sums to %v, ran %d", queriesByMode, workers*perWorker)
	}
	for series, want := range map[string]float64{
		"udfd_query_errors_total":           float64(st.QueryErrors),
		"udfd_queries_cancelled_total":      float64(st.QueriesCancelled),
		"udfd_plan_cache_hits_total":        float64(st.Cache.Hits),
		"udfd_plan_cache_misses_total":      float64(st.Cache.Misses),
		"udfd_query_duration_seconds_count": float64(st.QueryLatency.Count),
		"udfd_slow_queries_total":           float64(st.SlowQueries),
		"udfd_catalog_version":              float64(st.CatalogVersion),
	} {
		if m[series] != want {
			t.Errorf("%s = %v, /stats says %v", series, m[series], want)
		}
	}
	if m["udfd_query_duration_seconds_count"] < float64(workers*perWorker) {
		t.Errorf("query duration histogram count = %v, ran %d queries",
			m["udfd_query_duration_seconds_count"], workers*perWorker)
	}
	if m[`udfd_query_duration_seconds_bucket{le="+Inf"}`] != m["udfd_query_duration_seconds_count"] {
		t.Errorf("+Inf bucket %v != _count %v",
			m[`udfd_query_duration_seconds_bucket{le="+Inf"}`], m["udfd_query_duration_seconds_count"])
	}
	if st.QueryLatency.P50Micro <= 0 || st.QueryLatency.P99Micro < st.QueryLatency.P50Micro {
		t.Errorf("implausible latency quantiles: %+v", st.QueryLatency)
	}
}

// TestSlowQueryLog sets a sub-microsecond threshold so every query is slow,
// and asserts the structured log line carries the trace ID, SQL and row
// count, and that the slow-query counter moved.
func TestSlowQueryLog(t *testing.T) {
	var buf bytes.Buffer
	opts := server.DefaultOptions()
	opts.SlowQueryThreshold = time.Nanosecond
	opts.Logger = slog.New(slog.NewTextHandler(&buf, nil))
	svc := newBenchService(t, opts)

	sess := svc.CreateSession(engine.SYS1, engine.ModeRewrite)
	ctx := server.WithTraceID(context.Background(), "test-trace-42")
	res, err := svc.QueryContext(ctx, sess, "select custkey from customer where custkey < 5")
	if err != nil {
		t.Fatal(err)
	}
	if res.TraceID != "test-trace-42" {
		t.Fatalf("TraceID = %q, want the caller's", res.TraceID)
	}
	out := buf.String()
	for _, want := range []string{"slow query", "trace_id=test-trace-42", "sql=", "rows=4", "elapsed="} {
		if !strings.Contains(out, want) {
			t.Errorf("slow-query log missing %q:\n%s", want, out)
		}
	}
	if st := svc.Stats(); st.SlowQueries < 1 {
		t.Errorf("SlowQueries = %d, want >= 1", st.SlowQueries)
	}
}

// TestSlowQueryThresholdOff asserts the default (0) threshold logs nothing.
func TestSlowQueryThresholdOff(t *testing.T) {
	var buf bytes.Buffer
	opts := server.DefaultOptions()
	opts.Logger = slog.New(slog.NewTextHandler(&buf, nil))
	svc := newBenchService(t, opts)
	sess := svc.CreateSession(engine.SYS1, engine.ModeRewrite)
	if _, err := svc.QueryContext(context.Background(), sess, "select custkey from customer where custkey < 5"); err != nil {
		t.Fatal(err)
	}
	if s := buf.String(); strings.Contains(s, "slow query") {
		t.Errorf("slow-query log emitted with threshold off:\n%s", s)
	}
	if st := svc.Stats(); st.SlowQueries != 0 {
		t.Errorf("SlowQueries = %d, want 0", st.SlowQueries)
	}
}

// TestHTTPTraceIDPropagation pins the header contract: a caller-supplied
// X-Trace-Id is adopted and echoed; without one the server generates an ID.
func TestHTTPTraceIDPropagation(t *testing.T) {
	svc := newBenchService(t, server.DefaultOptions())
	ts := httptest.NewServer(server.NewHandler(svc))
	defer ts.Close()

	post := func(path, body, traceID string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, ts.URL+path, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if traceID != "" {
			req.Header.Set("X-Trace-Id", traceID)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	body := `{"sql":"select custkey from customer where custkey < 3"}`
	resp := post("/query", body, "load-test-7")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Trace-Id"); got != "load-test-7" {
		t.Errorf("/query echoed X-Trace-Id %q, want load-test-7", got)
	}

	resp = post("/query", body, "")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Trace-Id"); got == "" {
		t.Error("/query without X-Trace-Id: no generated trace ID on response")
	}

	resp = post("/stream", body, "stream-trace-1")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Trace-Id"); got != "stream-trace-1" {
		t.Errorf("/stream echoed X-Trace-Id %q, want stream-trace-1", got)
	}
}

// TestHTTPExplainAnalyze asserts /explain?analyze=1 executes the query and
// returns the per-operator annotated tree, while plain /explain does not.
func TestHTTPExplainAnalyze(t *testing.T) {
	svc := newBenchService(t, server.DefaultOptions())
	ts := httptest.NewServer(server.NewHandler(svc))
	defer ts.Close()

	post := func(path string) string {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json",
			strings.NewReader(`{"sql":"select custkey, lvl(custkey) from customer where custkey < 10"}`))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			raw, _ := io.ReadAll(resp.Body)
			t.Fatalf("POST %s: status %d: %s", path, resp.StatusCode, raw)
		}
		var out struct {
			Explain string `json:"explain"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out.Explain
	}

	plain := post("/explain")
	if strings.Contains(plain, "rows=") {
		t.Errorf("plain /explain carries runtime stats:\n%s", plain)
	}
	analyzed := post("/explain?analyze=1")
	for _, want := range []string{"rows=", "time="} {
		if !strings.Contains(analyzed, want) {
			t.Errorf("/explain?analyze=1 missing %q:\n%s", want, analyzed)
		}
	}
}
