package server_test

// Service-level transaction and concurrent-write tests: session
// BEGIN/COMMIT/ROLLBACK semantics across requests, snapshot isolation
// between sessions, DDL rejection inside transactions, and the narrowed DDL
// gate (concurrent INSERT writers making progress alongside readers).

import (
	"fmt"
	"strconv"
	"sync"
	"testing"

	"udfdecorr/internal/engine"
	"udfdecorr/internal/server"
)

func mustExec(t *testing.T, svc *server.Service, sess *server.Session, script string) {
	t.Helper()
	if err := svc.Exec(sess, script); err != nil {
		t.Fatalf("exec %q: %v", script, err)
	}
}

func queryInt(t *testing.T, svc *server.Service, sess *server.Session, sql string) int64 {
	t.Helper()
	res, err := svc.Query(sess, sql)
	if err != nil {
		t.Fatalf("query %q: %v", sql, err)
	}
	if len(res.Rows) != 1 || len(res.Rows[0]) != 1 {
		t.Fatalf("query %q: unexpected shape %v", sql, res.Rows)
	}
	n, _ := res.Rows[0][0].AsInt()
	return n
}

func TestSessionTransactionAcrossRequests(t *testing.T) {
	svc := newBenchService(t, server.DefaultOptions())
	writer := svc.CreateSession(engine.SYS1, engine.ModeIterative)
	observer := svc.CreateSession(engine.SYS1, engine.ModeIterative)
	mustExec(t, svc, writer, "create table txacct (id int primary key, bal int);")

	// Statements of one transaction arrive as separate requests.
	mustExec(t, svc, writer, "begin;")
	mustExec(t, svc, writer, "insert into txacct values (1, 100);")
	mustExec(t, svc, writer, "insert into txacct values (2, 200);")

	if n := queryInt(t, svc, observer, "select count(*) from txacct"); n != 0 {
		t.Fatalf("observer sees %d uncommitted rows", n)
	}
	// The writer's own queries read through the transaction.
	if n := queryInt(t, svc, writer, "select count(*) from txacct"); n != 2 {
		t.Fatalf("writer sees %d of its own rows", n)
	}

	mustExec(t, svc, writer, "commit;")
	if n := queryInt(t, svc, observer, "select count(*) from txacct"); n != 2 {
		t.Fatalf("observer sees %d rows after commit", n)
	}
}

func TestSessionTransactionRollbackAndErrors(t *testing.T) {
	svc := newBenchService(t, server.DefaultOptions())
	sess := svc.CreateSession(engine.SYS1, engine.ModeIterative)
	mustExec(t, svc, sess, "create table txkv (k int primary key, v int);")

	mustExec(t, svc, sess, "begin; insert into txkv values (1, 1);")
	mustExec(t, svc, sess, "rollback;")
	if n := queryInt(t, svc, sess, "select count(*) from txkv"); n != 0 {
		t.Fatalf("rolled-back rows visible: %d", n)
	}

	if err := svc.Exec(sess, "commit;"); err == nil {
		t.Fatal("COMMIT without BEGIN must fail")
	}
	mustExec(t, svc, sess, "begin;")
	if err := svc.Exec(sess, "begin;"); err == nil {
		t.Fatal("nested BEGIN must fail")
	}
	// DDL inside a transaction is rejected, and the transaction survives.
	if err := svc.Exec(sess, "create table nope (x int primary key);"); err == nil {
		t.Fatal("DDL inside a transaction must fail")
	}
	mustExec(t, svc, sess, "insert into txkv values (9, 9);")
	mustExec(t, svc, sess, "commit;")
	if n := queryInt(t, svc, sess, "select count(*) from txkv"); n != 1 {
		t.Fatalf("rows after commit = %d", n)
	}
}

func TestCloseSessionRollsBackOpenTransaction(t *testing.T) {
	svc := newBenchService(t, server.DefaultOptions())
	sess := svc.CreateSession(engine.SYS1, engine.ModeIterative)
	mustExec(t, svc, sess, "create table txgone (k int primary key);")
	mustExec(t, svc, sess, "begin; insert into txgone values (1);")
	svc.CloseSession(sess.ID)

	other := svc.CreateSession(engine.SYS1, engine.ModeIterative)
	if n := queryInt(t, svc, other, "select count(*) from txgone"); n != 0 {
		t.Fatalf("closed session leaked %d uncommitted rows", n)
	}
}

// TestConcurrentWritersAndReaders exercises the narrowed DDL gate under
// -race: INSERT scripts run on the shared side, so writers proceed
// concurrently with readers, and every acknowledged row is visible at the
// end.
func TestConcurrentWritersAndReaders(t *testing.T) {
	svc := newBenchService(t, server.DefaultOptions())
	setup := svc.CreateSession(engine.SYS1, engine.ModeIterative)
	mustExec(t, svc, setup, "create table txload (k int primary key, v varchar);")

	const (
		writers = 4
		batches = 25
		rows    = 8
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := svc.CreateSession(engine.SYS1, engine.ModeIterative)
			defer svc.CloseSession(sess.ID)
			for b := 0; b < batches; b++ {
				var script string
				for i := 0; i < rows; i++ {
					k := w*1_000_000 + b*rows + i
					script += "insert into txload values (" + strconv.Itoa(k) + ", 'x');\n"
				}
				if err := svc.Exec(sess, script); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess := svc.CreateSession(engine.SYS1, engine.ModeIterative)
			defer svc.CloseSession(sess.ID)
			prev := int64(-1)
			for i := 0; i < 50; i++ {
				n := queryInt(t, svc, sess, "select count(*) from txload")
				if n < prev {
					t.Errorf("row count went backwards: %d -> %d", prev, n)
					return
				}
				prev = n
			}
		}()
	}
	wg.Wait()
	if n := queryInt(t, svc, setup, "select count(*) from txload"); n != writers*batches*rows {
		t.Fatalf("final rows = %d, want %d", n, writers*batches*rows)
	}
}

// TestConcurrentSessionTransactions: independent sessions committing
// transactions concurrently all land, atomically.
func TestConcurrentSessionTransactions(t *testing.T) {
	svc := newBenchService(t, server.DefaultOptions())
	setup := svc.CreateSession(engine.SYS1, engine.ModeIterative)
	mustExec(t, svc, setup, "create table txa (k int primary key);")
	mustExec(t, svc, setup, "create table txb (k int primary key);")

	const sessions = 6
	var wg sync.WaitGroup
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			sess := svc.CreateSession(engine.SYS1, engine.ModeIterative)
			defer svc.CloseSession(sess.ID)
			script := fmt.Sprintf("begin; insert into txa values (%d); insert into txb values (%d); commit;", s, s)
			if err := svc.Exec(sess, script); err != nil {
				t.Errorf("session %d: %v", s, err)
			}
		}(s)
	}
	wg.Wait()
	na := queryInt(t, svc, setup, "select count(*) from txa")
	nb := queryInt(t, svc, setup, "select count(*) from txb")
	if na != sessions || nb != sessions {
		t.Fatalf("committed rows a=%d b=%d, want %d each", na, nb, sessions)
	}
}
