package server_test

// Service-level durability: the query service over a durable engine must
// persist concurrent Exec mutations, expose wal_bytes/checkpoints/
// recovered_records in /stats, checkpoint through the HTTP API, and come
// back with identical data after a restart.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"udfdecorr/internal/engine"
	"udfdecorr/internal/server"
	"udfdecorr/internal/wal"
)

func openDurableService(t *testing.T, dir string) (*server.Service, *engine.Engine) {
	t.Helper()
	e, err := engine.OpenDurable(dir, engine.SYS1, engine.ModeRewrite,
		engine.DurabilityOptions{Sync: wal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	return server.NewServiceFromEngine(e, server.DefaultOptions()), e
}

func TestServiceDurableRestart(t *testing.T) {
	dir := t.TempDir()
	svc, e := openDurableService(t, dir)
	sess := svc.CreateSession(engine.SYS1, engine.ModeRewrite)
	if err := svc.Exec(sess, "create table kv (k int primary key, v varchar);"); err != nil {
		t.Fatal(err)
	}

	// Concurrent writers through the service: the DDL gate serializes them,
	// and every acknowledged script must survive the restart.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := svc.CreateSession(engine.SYS1, engine.ModeRewrite)
			for i := 0; i < 25; i++ {
				script := fmt.Sprintf("insert into kv values (%d, 'w%d-%d');", w*1000+i, w, i)
				if err := svc.Exec(s, script); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	st := svc.Stats()
	if st.Durability == nil {
		t.Fatal("stats missing durability block")
	}
	if st.Durability.WALBytes == 0 {
		t.Fatal("wal_bytes is zero after 100 inserts")
	}

	if err := svc.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := svc.Stats().Durability.Checkpoints; got != 1 {
		t.Fatalf("checkpoints = %d, want 1", got)
	}

	if err := e.Durable.Close(); err != nil {
		t.Fatal(err)
	}

	svc2, _ := openDurableService(t, dir)
	sess2 := svc2.CreateSession(engine.SYS1, engine.ModeRewrite)
	res, err := svc2.Query(sess2, "select count(*) from kv")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].Int(); got != 100 {
		t.Fatalf("recovered %d rows, want 100", got)
	}
	if got := svc2.Stats().Durability.RecoveredRecords; got == 0 {
		t.Fatal("recovered_records is zero after restart with data")
	}
}

func TestServiceVolatileCheckpointRejected(t *testing.T) {
	svc := server.NewServiceFromEngine(engine.New(engine.SYS1, engine.ModeRewrite), server.DefaultOptions())
	if err := svc.Checkpoint(); err == nil {
		t.Fatal("expected volatile checkpoint to fail")
	}
}

func TestHTTPCheckpointEndpoint(t *testing.T) {
	dir := t.TempDir()
	svc, _ := openDurableService(t, dir)
	ts := httptest.NewServer(server.NewHandler(svc))
	defer ts.Close()

	post := func(path, body string) (*http.Response, map[string]any) {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&out)
		return resp, out
	}

	if resp, _ := post("/exec", `{"script":"create table kv (k int primary key, v varchar); insert into kv values (1,'a');"}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("/exec status %d", resp.StatusCode)
	}
	resp, out := post("/checkpoint", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/checkpoint status %d: %v", resp.StatusCode, out)
	}
	if out["checkpoints"].(float64) != 1 {
		t.Fatalf("checkpoints = %v, want 1", out["checkpoints"])
	}

	// /stats must carry the durability block.
	sresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var st server.Stats
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Durability == nil || st.Durability.Checkpoints != 1 {
		t.Fatalf("stats durability block wrong: %+v", st.Durability)
	}
}
