package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"udfdecorr/internal/bench"
	"udfdecorr/internal/engine"
	"udfdecorr/internal/exec"
	"udfdecorr/internal/server"
	"udfdecorr/internal/sqltypes"
	"udfdecorr/internal/storage"
)

// newBenchService boots a service over the small bench dataset with the
// shared corpus UDFs installed.
func newBenchService(t testing.TB, opts server.Options) *server.Service {
	t.Helper()
	boot, err := bench.NewEngine(engine.SYS1, engine.ModeRewrite, bench.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := boot.ExecScript(bench.ExtraUDFs); err != nil {
		t.Fatal(err)
	}
	return server.NewServiceFromEngine(boot, opts)
}

func rowKeyCounts(rows []storage.Row) map[string]int {
	m := make(map[string]int, len(rows))
	for _, r := range rows {
		m[sqltypes.KeyOf(r...)]++
	}
	return m
}

func sameRowMultiset(a, b []storage.Row) bool {
	if len(a) != len(b) {
		return false
	}
	am := rowKeyCounts(a)
	for _, r := range b {
		am[sqltypes.KeyOf(r...)]--
	}
	for _, v := range am {
		if v != 0 {
			return false
		}
	}
	return true
}

// TestConcurrentDifferentialSmoke hammers one shared service from many
// goroutines — sessions spanning every mode × profile × executor combination
// — and asserts every result matches the serial iterative ground truth
// exactly. Run under -race this is the engine concurrency audit's
// regression test.
func TestConcurrentDifferentialSmoke(t *testing.T) {
	svc := newBenchService(t, server.DefaultOptions())

	// Serial ground truth: iterative row execution.
	truthSess := svc.CreateSession(engine.SYS1, engine.ModeIterative)
	truth := make(map[string][]storage.Row, len(bench.Corpus))
	for _, q := range bench.Corpus {
		res, err := svc.Query(truthSess, q.SQL)
		if err != nil {
			t.Fatalf("ground truth %s: %v", q.Name, err)
		}
		truth[q.Name] = res.Rows
	}

	type combo struct {
		profile    engine.Profile
		mode       engine.Mode
		vectorized bool
	}
	var combos []combo
	for _, p := range []engine.Profile{engine.SYS1, engine.SYS2} {
		for _, m := range []engine.Mode{engine.ModeIterative, engine.ModeRewrite, engine.ModeCostBased} {
			for _, v := range []bool{false, true} {
				combos = append(combos, combo{p, m, v})
			}
		}
	}
	// Two workers per combo so every cached plan is executed by at least two
	// goroutines CONCURRENTLY — sharing a compiled plan across executions is
	// exactly where per-plan scratch state turns into a race (the bug that
	// motivated the VecFactory split). ≥8 concurrent sessions per the
	// acceptance criteria.
	workers := 2 * len(combos)
	const rounds = 2 // second round exercises the cache-hit path

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		c := combos[w%len(combos)]
		wg.Add(1)
		go func(c combo) {
			defer wg.Done()
			profile := c.profile
			profile.Vectorized = c.vectorized
			sess := svc.CreateSession(profile, c.mode)
			for round := 0; round < rounds; round++ {
				for _, q := range bench.Corpus {
					res, err := svc.Query(sess, q.SQL)
					if err != nil {
						errs <- fmt.Errorf("%s/%s/vec=%v %s: %v", profile.Name, c.mode, c.vectorized, q.Name, err)
						return
					}
					if !sameRowMultiset(truth[q.Name], res.Rows) {
						errs <- fmt.Errorf("%s/%s/vec=%v %s: rows differ from serial ground truth", profile.Name, c.mode, c.vectorized, q.Name)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := svc.Stats()
	if st.Cache.Hits == 0 {
		t.Error("expected shared plan-cache hits across concurrent sessions, got none")
	}
	if st.Queries == 0 {
		t.Error("per-mode query counters did not record any queries")
	}
}

// TestSharedPlanConcurrentExecution is the focused regression test for
// shared-plan races: 8 goroutines with identical session settings execute
// the same cached vectorized plans simultaneously. Any evaluator or operator
// state captured per-plan (rather than per-execution) fails this under
// -race.
func TestSharedPlanConcurrentExecution(t *testing.T) {
	svc := newBenchService(t, server.DefaultOptions())
	profile := engine.SYS1
	profile.Vectorized = true

	warm := svc.CreateSession(profile, engine.ModeRewrite)
	expected := make(map[string][]storage.Row, len(bench.Corpus))
	for _, q := range bench.Corpus {
		res, err := svc.Query(warm, q.SQL)
		if err != nil {
			t.Fatalf("warmup %s: %v", q.Name, err)
		}
		expected[q.Name] = res.Rows
	}

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess := svc.CreateSession(profile, engine.ModeRewrite)
			for round := 0; round < 3; round++ {
				for _, q := range bench.Corpus {
					res, err := svc.Query(sess, q.SQL)
					if err != nil {
						errs <- fmt.Errorf("%s: %v", q.Name, err)
						return
					}
					if !res.CacheHit {
						errs <- fmt.Errorf("%s: expected cache hit on warmed plan", q.Name)
						return
					}
					if !sameRowMultiset(expected[q.Name], res.Rows) {
						errs <- fmt.Errorf("%s: shared plan produced wrong rows under concurrency", q.Name)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestSharedCacheAcrossSessions: two sessions with identical settings share
// one cached plan; a session with different settings does not.
func TestSharedCacheAcrossSessions(t *testing.T) {
	svc := newBenchService(t, server.DefaultOptions())
	q := "select custkey, service_level(custkey) from customer where custkey <= 20"

	s1 := svc.CreateSession(engine.SYS1, engine.ModeRewrite)
	s2 := svc.CreateSession(engine.SYS1, engine.ModeRewrite)
	s3 := svc.CreateSession(engine.SYS1, engine.ModeIterative)

	r1, err := svc.Query(s1, q)
	if err != nil {
		t.Fatal(err)
	}
	if r1.CacheHit {
		t.Error("first execution should be a cache miss")
	}
	r2, err := svc.Query(s2, "  SELECT custkey,    service_level(custkey)\n from customer where custkey <= 20;")
	if err != nil {
		t.Fatal(err)
	}
	if r2.CacheHit {
		// Normalization unifies whitespace but not keyword case.
		t.Log("note: differing keyword case is a distinct cache key by design")
	}
	r2b, err := svc.Query(s2, "select custkey,  service_level(custkey) from customer where custkey <= 20 ;")
	if err != nil {
		t.Fatal(err)
	}
	if !r2b.CacheHit {
		t.Error("whitespace/semicolon variants of the same query must share a cache key")
	}
	if !sameRowMultiset(r1.Rows, r2b.Rows) {
		t.Error("shared plan produced different rows across sessions")
	}
	r3, err := svc.Query(s3, q)
	if err != nil {
		t.Fatal(err)
	}
	if r3.CacheHit {
		t.Error("different mode must not share a cached plan")
	}
}

// TestCacheInvalidationOnDDL: DDL bumps the catalog version (new keys) and
// purges the cache; pure INSERT scripts leave cached plans valid.
func TestCacheInvalidationOnDDL(t *testing.T) {
	boot := engine.New(engine.SYS1, engine.ModeRewrite)
	if err := boot.ExecScript("create table t (k int primary key, v int);" +
		"insert into t values (1, 10); insert into t values (2, 20);"); err != nil {
		t.Fatal(err)
	}
	svc := server.NewServiceFromEngine(boot, server.DefaultOptions())
	sess := svc.CreateSession(engine.SYS1, engine.ModeRewrite)

	const q = "select k, v from t"
	if _, err := svc.Query(sess, q); err != nil {
		t.Fatal(err)
	}
	res, err := svc.Query(sess, q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.CacheHit {
		t.Fatal("repeat query should hit the cache")
	}

	// DML only: cache survives, and the cached plan sees the new row.
	if err := svc.Exec(sess, "insert into t values (3, 30);"); err != nil {
		t.Fatal(err)
	}
	res, err = svc.Query(sess, q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.CacheHit {
		t.Error("INSERT must not invalidate cached plans")
	}
	if len(res.Rows) != 3 {
		t.Errorf("cached plan returned %d rows after insert, want 3", len(res.Rows))
	}

	// DDL: version bump + purge; next query misses, then re-caches.
	vBefore := svc.Catalog().Version()
	if err := svc.Exec(sess, "create table u (k int primary key);"); err != nil {
		t.Fatal(err)
	}
	if svc.Catalog().Version() == vBefore {
		t.Fatal("CREATE TABLE did not bump the catalog version")
	}
	if size := svc.CacheStats().Size; size != 0 {
		t.Errorf("cache size after DDL = %d, want 0 (purged)", size)
	}
	res, err = svc.Query(sess, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHit {
		t.Error("query after DDL must re-plan (cache miss)")
	}
}

// TestPlanCacheLRU exercises eviction order and counters directly.
func TestPlanCacheLRU(t *testing.T) {
	c := server.NewPlanCache(2)
	key := func(sql string) server.CacheKey { return server.CacheKey{SQL: sql} }
	p1, p2, p3 := &engine.Prepared{}, &engine.Prepared{}, &engine.Prepared{}

	c.Put(key("q1"), p1)
	c.Put(key("q2"), p2)
	if _, ok := c.Get(key("q1")); !ok { // q1 becomes most recently used
		t.Fatal("q1 should be cached")
	}
	c.Put(key("q3"), p3) // evicts q2 (least recently used)
	if _, ok := c.Get(key("q2")); ok {
		t.Error("q2 should have been evicted as LRU")
	}
	if got, ok := c.Get(key("q1")); !ok || got != p1 {
		t.Error("q1 should survive eviction (it was recently used)")
	}
	if got, ok := c.Get(key("q3")); !ok || got != p3 {
		t.Error("q3 should be cached")
	}

	st := c.Stats()
	if st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
	if st.Size != 2 || st.Capacity != 2 {
		t.Errorf("size/capacity = %d/%d, want 2/2", st.Size, st.Capacity)
	}
	if st.Hits != 3 || st.Misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 3/1", st.Hits, st.Misses)
	}

	// Capacity <= 0 disables caching entirely.
	off := server.NewPlanCache(0)
	off.Put(key("q1"), p1)
	if _, ok := off.Get(key("q1")); ok {
		t.Error("zero-capacity cache must not store plans")
	}
}

func TestNormalizeSQL(t *testing.T) {
	cases := []struct{ in, want string }{
		{"select 1", "select 1"},
		{"  select\n\t1  ;  ", "select 1"},
		{"select 'a  b' from t", "select 'a  b' from t"},
		{"select 'it''s  ok',  x from t;", "select 'it''s  ok', x from t"},
		{"select\r\n*\nfrom   t", "select * from t"},
		// Comments strip exactly as the lexer skips them.
		{"select a --note\nfrom t", "select a from t"},
		{"select a --tail comment", "select a"},
		{"select /* block\ncomment */ a from t", "select a from t"},
		{"select '--not a comment' from t", "select '--not a comment' from t"},
		{"select '/*literal*/' from t", "select '/*literal*/' from t"},
	}
	for _, c := range cases {
		if got := server.NormalizeSQL(c.in); got != c.want {
			t.Errorf("NormalizeSQL(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	// Distinct literal contents must stay distinct keys.
	if server.NormalizeSQL("select 'a b'") == server.NormalizeSQL("select 'a  b'") {
		t.Error("whitespace inside string literals must be preserved")
	}
	// A -- comment runs to end of line: the same bytes with the newline
	// replaced by a space parse DIFFERENTLY, so the keys must differ.
	if server.NormalizeSQL("select a --x\nfrom t") == server.NormalizeSQL("select a --x from t") {
		t.Error("line-comment extent must be respected, not collapsed away")
	}
	// Unterminated constructs are lexer errors: they must never share a key
	// with the valid query (or a cached plan would mask the error).
	if server.NormalizeSQL("select k from t /* oops") == server.NormalizeSQL("select k from t") {
		t.Error("unterminated block comment must not collide with the valid query")
	}
	if server.NormalizeSQL("select 'oops from t") == server.NormalizeSQL("select 'oops from t'") {
		t.Error("unterminated string literal must not collide with the terminated one")
	}
}

// TestHTTPAPI drives the full JSON surface end to end.
func TestHTTPAPI(t *testing.T) {
	svc := newBenchService(t, server.DefaultOptions())
	ts := httptest.NewServer(server.NewHandler(svc))
	defer ts.Close()

	post := func(path string, body any) map[string]any {
		t.Helper()
		buf, _ := json.Marshal(body)
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST %s: status %d: %v", path, resp.StatusCode, out["error"])
		}
		return out
	}

	// Create a vectorized rewrite session.
	sess := post("/session", map[string]any{"mode": "rewrite", "profile": "sys1", "vectorized": true})
	id, _ := sess["session"].(string)
	if id == "" {
		t.Fatalf("no session id in %v", sess)
	}

	// Query through it, twice: second must be a cache hit.
	q := map[string]any{"session": id, "sql": "select custkey, service_level(custkey) from customer where custkey <= 10"}
	first := post("/query", q)
	if first["rewritten"] != true {
		t.Errorf("expected rewritten=true, got %v", first["rewritten"])
	}
	if n, _ := first["row_count"].(float64); n == 0 {
		t.Error("expected rows")
	}
	second := post("/query", q)
	if second["cache_hit"] != true {
		t.Errorf("repeat query should be a cache hit, got %v", second["cache_hit"])
	}

	// Explain shares the cache and reports the executor.
	exp := post("/explain", q)
	if s, _ := exp["explain"].(string); s == "" {
		t.Error("empty explain output")
	}

	// DDL + DML through /exec, then query the new table on the default session.
	post("/exec", map[string]any{"script": "create table kv (k int primary key, v varchar); insert into kv values (1, 'one');"})
	rows := post("/query", map[string]any{"sql": "select k, v from kv"})
	if n, _ := rows["row_count"].(float64); n != 1 {
		t.Errorf("kv row_count = %v, want 1", n)
	}

	// Stats reflects all of the above.
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st server.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Cache.Hits == 0 {
		t.Error("stats should report cache hits")
	}
	if st.Queries == 0 {
		t.Error("stats should report queries by mode")
	}
	if st.Sessions == 0 {
		t.Error("stats should report live sessions")
	}

	// Unknown session is a 404.
	buf, _ := json.Marshal(map[string]any{"session": "nope", "sql": "select 1"})
	resp2, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("unknown session: status %d, want 404", resp2.StatusCode)
	}
}

// TestSessionSettingsSwap: changing a session's settings affects subsequent
// queries only and routes them to a different cache key.
func TestSessionSettingsSwap(t *testing.T) {
	svc := newBenchService(t, server.DefaultOptions())
	sess := svc.CreateSession(engine.SYS1, engine.ModeIterative)
	q := "select orderkey, disc(totalprice) from orders where orderkey <= 20"

	r1, err := svc.Query(sess, q)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Rewritten {
		t.Error("iterative mode must not rewrite")
	}
	sess.SetMode(engine.ModeRewrite)
	sess.SetVectorized(true)
	r2, err := svc.Query(sess, q)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Rewritten {
		t.Error("rewrite mode should decorrelate this query")
	}
	if r2.CacheHit {
		t.Error("new settings must not reuse the iterative plan")
	}
	if !sameRowMultiset(r1.Rows, r2.Rows) {
		t.Error("settings change altered query results")
	}
	profile, mode := sess.Settings()
	if !profile.Vectorized || mode != engine.ModeRewrite {
		t.Errorf("settings = %+v/%v after swap", profile, mode)
	}
}

// BenchmarkPlanCache quantifies the repeat-query speedup the cache buys:
// Cold re-plans every iteration (cache disabled), Warm goes through the
// shared cache. The dataset is deliberately tiny so execution cost is small
// against the per-invocation planning work (parse + algebrize + decorrelate
// + normalize + physical planning) that the cache amortizes — the same
// overhead regime the paper's SYS1/SYS2 split models. The acceptance bar is
// Warm ≥3x faster than Cold.
func BenchmarkPlanCache(b *testing.B) {
	const q = "select custkey, service_level(custkey) from customer where custkey <= 5"
	tiny := bench.Config{Customers: 40, OrdersPerCustomer: 2, Parts: 40,
		LineitemsPerPart: 1, Categories: 8, Seed: 7}
	run := func(b *testing.B, opts server.Options) {
		boot, err := bench.NewEngine(engine.SYS1, engine.ModeRewrite, tiny)
		if err != nil {
			b.Fatal(err)
		}
		if err := boot.ExecScript(bench.ExtraUDFs); err != nil {
			b.Fatal(err)
		}
		svc := server.NewServiceFromEngine(boot, opts)
		sess := svc.CreateSession(engine.SYS1, engine.ModeRewrite)
		if _, err := svc.Query(sess, q); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := svc.Query(sess, q); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("Cold", func(b *testing.B) { run(b, server.Options{CacheSize: 0, MaxConcurrent: 32}) })
	b.Run("Warm", func(b *testing.B) { run(b, server.DefaultOptions()) })
}

// canonicalParallel renders a row with floats rounded to 9 significant
// digits: parallel aggregation may re-associate float additions across
// worker partials, so cross-executor comparisons tolerate the last bits.
func canonicalParallel(r storage.Row) string {
	parts := make([]string, len(r))
	for i, v := range r {
		if v.Kind() == sqltypes.KindFloat {
			f, _ := v.AsFloat()
			parts[i] = fmt.Sprintf("f:%.9g", f)
			continue
		}
		parts[i] = v.String()
	}
	return strings.Join(parts, "\x1f")
}

func sameRowMultisetApprox(a, b []storage.Row) bool {
	if len(a) != len(b) {
		return false
	}
	m := map[string]int{}
	for _, r := range a {
		m[canonicalParallel(r)]++
	}
	for _, r := range b {
		m[canonicalParallel(r)]--
	}
	for _, v := range m {
		if v != 0 {
			return false
		}
	}
	return true
}

// TestParallelSessionsConcurrent hammers the service with parallel
// vectorized sessions next to serial ones: every result must match the
// serial ground truth, the admission pool must budget query-local workers,
// and the parallel counters must move. Run under -race this is the
// intra-query parallelism concurrency audit.
func TestParallelSessionsConcurrent(t *testing.T) {
	defer func(old int) { exec.MorselRows = old }(exec.MorselRows)
	exec.MorselRows = 64 // fan small tables out across real workers

	// A deliberately small pool: 8 sessions × 4 workers oversubscribes it,
	// so admission must serialize without deadlocking.
	svc := newBenchService(t, server.Options{CacheSize: 256, MaxConcurrent: 8})

	truthSess := svc.CreateSession(engine.SYS1, engine.ModeIterative)
	truth := make(map[string][]storage.Row, len(bench.Corpus))
	for _, q := range bench.Corpus {
		res, err := svc.Query(truthSess, q.SQL)
		if err != nil {
			t.Fatalf("ground truth %s: %v", q.Name, err)
		}
		truth[q.Name] = res.Rows
	}

	const workers = 8
	const rounds = 2
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		mode := engine.ModeRewrite
		if w%2 == 1 {
			mode = engine.ModeIterative
		}
		profile := engine.SYS1
		profile.Vectorized = true
		profile.Parallelism = 4
		sess := svc.CreateSession(profile, mode)
		wg.Add(1)
		go func(w int, sess *server.Session) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				for _, q := range bench.Corpus {
					res, err := svc.Query(sess, q.SQL)
					if err != nil {
						errs <- fmt.Errorf("parallel client %d %s: %v", w, q.Name, err)
						return
					}
					if !sameRowMultisetApprox(truth[q.Name], res.Rows) {
						errs <- fmt.Errorf("parallel client %d %s: rows differ from serial ground truth", w, q.Name)
						return
					}
				}
			}
		}(w, sess)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := svc.Stats()
	if st.Parallel.ParallelQueries == 0 {
		t.Error("no parallel queries recorded")
	}
	if st.Parallel.WorkerLaunches == 0 {
		t.Error("no parallel worker launches recorded")
	}
	if st.Parallel.MorselsExecuted == 0 {
		t.Error("no morsels recorded")
	}
	if st.Parallel.AdmissionWaits == 0 {
		t.Error("oversubscribed pool should have recorded admission waits")
	}
	if st.Parallel.WorkersConfigured != 8 {
		t.Errorf("workers_configured = %d, want 8", st.Parallel.WorkersConfigured)
	}
}

// TestHTTPParallelSession drives a parallel session over the HTTP API and
// checks the per-query and /stats parallel counters.
func TestHTTPParallelSession(t *testing.T) {
	defer func(old int) { exec.MorselRows = old }(exec.MorselRows)
	exec.MorselRows = 64

	svc := newBenchService(t, server.DefaultOptions())
	ts := httptest.NewServer(server.NewHandler(svc))
	defer ts.Close()

	post := func(path string, body any) map[string]any {
		t.Helper()
		buf, _ := json.Marshal(body)
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST %s: status %d: %v", path, resp.StatusCode, out["error"])
		}
		return out
	}

	sess := post("/session", map[string]any{
		"mode": "rewrite", "profile": "sys1", "vectorized": true, "parallelism": 4})
	if p, _ := sess["parallelism"].(float64); p != 4 {
		t.Fatalf("session parallelism = %v, want 4", sess["parallelism"])
	}
	id, _ := sess["session"].(string)

	q := map[string]any{"session": id,
		"sql": "select custkey, count(*), sum(totalprice) from orders group by custkey"}
	res := post("/query", q)
	if n, _ := res["row_count"].(float64); n == 0 {
		t.Fatal("expected rows from the parallel grouped aggregation")
	}
	if w, _ := res["workers"].(float64); w == 0 {
		t.Errorf("query response workers = %v, want > 0", res["workers"])
	}
	if m, _ := res["morsels"].(float64); m == 0 {
		t.Errorf("query response morsels = %v, want > 0", res["morsels"])
	}

	exp := post("/explain", q)
	s, _ := exp["explain"].(string)
	if !strings.Contains(s, "parallelism: 4") || !strings.Contains(s, "degree=4") {
		t.Errorf("explain missing parallel degree:\n%s", s)
	}

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st server.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Parallel.ParallelQueries == 0 || st.Parallel.WorkerLaunches == 0 {
		t.Errorf("stats parallel counters did not move: %+v", st.Parallel)
	}
}
