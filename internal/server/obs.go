// Service observability: the metrics registry behind /metrics (sharing its
// sources with /stats so the two surfaces always agree), per-query trace
// IDs, and the structured slow-query log.
package server

import (
	"context"
	"fmt"
	"log/slog"
	"strings"
	"sync/atomic"
	"time"

	"udfdecorr/internal/engine"
	"udfdecorr/internal/obs"
	"udfdecorr/internal/storage"
	"udfdecorr/internal/wal"
)

// traceIDKey carries an explicit per-query trace ID through a context.
type traceIDKey struct{}

// WithTraceID returns a context carrying an explicit query trace ID. The
// HTTP layer sets it from the X-Trace-Id request header and the udfsql
// driver from the DSN's trace label; queries started without one get a
// service-generated ID.
func WithTraceID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, traceIDKey{}, id)
}

// TraceIDFrom extracts the trace ID from a context, if one was attached.
func TraceIDFrom(ctx context.Context) (string, bool) {
	id, ok := ctx.Value(traceIDKey{}).(string)
	return id, ok && id != ""
}

// serviceMetrics bundles the service's observability state: the registry
// serving /metrics, the latency histograms, the slow-query log settings and
// the trace-ID generator.
type serviceMetrics struct {
	reg    *obs.Registry
	logger *slog.Logger

	slowQuery   time.Duration
	slowQueries *obs.Counter

	traceBase string
	traceSeq  atomic.Int64

	queryDur      *obs.Histogram // plan lookup + execution, to stream close
	streamDur     *obs.Histogram // HTTP /stream request lifetime
	execDur       *obs.Histogram // DDL/DML script execution
	txnCommitDur  *obs.Histogram // COMMIT publish + WAL append
	walFsyncDur   *obs.Histogram // individual WAL fsyncs
	checkpointDur *obs.Histogram // checkpoint snapshot + truncate
	admissionWait *obs.Histogram // time blocked on a full worker pool
	ddlWait       *obs.Histogram // time blocked on the DDL gate (read side)
}

// initObservability builds the registry and wires every /stats source into
// it, so /metrics is a second view over the same live counters.
func (s *Service) initObservability(opts Options) {
	logger := opts.Logger
	if logger == nil {
		logger = slog.Default()
	}
	m := &serviceMetrics{
		reg:       obs.NewRegistry(),
		logger:    logger,
		slowQuery: opts.SlowQueryThreshold,
		traceBase: fmt.Sprintf("%08x", uint32(s.started.UnixNano())),
	}
	reg := m.reg

	for _, mode := range []string{"iterative", "rewrite", "cost-based"} {
		mode := mode
		reg.CounterFunc("udfd_queries_total", `mode="`+mode+`"`,
			"Queries completed successfully, by execution mode.", func() int64 {
				s.mu.Lock()
				defer s.mu.Unlock()
				return s.queriesByMode[mode]
			})
	}
	counter := func(name, help string, fn func() int64) { reg.CounterFunc(name, "", help, fn) }
	locked := func(fn func() int64) func() int64 {
		return func() int64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return fn()
		}
	}
	counter("udfd_query_errors_total", "Queries that failed with an error (cancellations excluded).",
		locked(func() int64 { return s.queryErrors }))
	counter("udfd_queries_cancelled_total", "Queries ended by context cancellation or statement timeout.",
		locked(func() int64 { return s.queriesCancelled }))
	counter("udfd_execs_total", "DDL/DML scripts executed.",
		locked(func() int64 { return s.execs }))
	counter("udfd_prepare_deduped_total", "Prepares served by joining another session's in-flight compilation.",
		locked(func() int64 { return s.prepareDeduped }))
	counter("udfd_parallel_queries_total", "Queries admitted with a worker budget > 1.",
		locked(func() int64 { return s.parallelQueries }))
	counter("udfd_morsels_total", "Scan morsels executed by parallel workers.",
		locked(func() int64 { return s.morsels }))
	counter("udfd_worker_launches_total", "Parallel workers launched by exchange/parallel-aggregation operators.",
		locked(func() int64 { return s.workerLaunches }))
	counter("udfd_admission_waits_total", "Admission acquisitions that blocked on a full worker pool.",
		s.admission.waitCount)

	reg.GaugeFunc("udfd_sessions", "", "Live sessions.",
		locked(func() int64 { return int64(len(s.sessions)) }))
	reg.GaugeFunc("udfd_catalog_version", "", "Catalog schema version.", s.cat.Version)
	reg.GaugeFunc("udfd_admission_pool_size", "", "Configured worker-pool size.",
		func() int64 { return int64(s.admission.size) })
	reg.GaugeFunc("udfd_admission_free_slots", "", "Currently unclaimed worker slots.",
		func() int64 { return int64(s.admission.freeSlots()) })
	counter("udfd_plan_cache_hits_total", "Plan cache hits.",
		func() int64 { return s.cache.Stats().Hits })
	counter("udfd_plan_cache_misses_total", "Plan cache misses.",
		func() int64 { return s.cache.Stats().Misses })
	counter("udfd_plan_cache_evictions_total", "Plan cache evictions.",
		func() int64 { return s.cache.Stats().Evictions })
	reg.GaugeFunc("udfd_plan_cache_entries", "", "Plans currently cached.",
		func() int64 { return int64(s.cache.Stats().Size) })
	reg.GaugeFloatFunc("udfd_uptime_seconds", "", "Seconds since the service started.",
		func() float64 { return time.Since(s.started).Seconds() })

	// Columnar storage shape and scan-path counters. The shape gauges walk
	// every table's published version per scrape (metered for polling, not
	// hot paths); the scan counters are process-wide atomics.
	reg.GaugeFunc("udfd_storage_tables", "", "Tables in the store.",
		func() int64 { return int64(s.store.StorageStats().Tables) })
	reg.GaugeFunc("udfd_storage_segments", "", "Published column segments across all tables.",
		func() int64 { return int64(s.store.StorageStats().Segments) })
	reg.GaugeFunc("udfd_storage_rows", "", "Published rows across all tables.",
		func() int64 { return s.store.StorageStats().Rows })
	reg.GaugeFunc("udfd_storage_column_bytes", "", "Estimated bytes held by published column segments.",
		func() int64 { return s.store.StorageStats().ColumnBytes })
	counter("udfd_zero_copy_scans_total", "Batch scans served zero-copy from column segments.",
		storage.ZeroCopyScans)
	counter("udfd_pivoted_scans_total", "Scans that materialized a row-major pivot of a table version.",
		storage.PivotedScans)

	m.slowQueries = reg.Counter("udfd_slow_queries_total", "",
		"Queries at or above the slow-query threshold.")

	m.queryDur = reg.Histogram("udfd_query_duration_seconds",
		"Query service time: plan lookup plus execution, to stream close.")
	m.streamDur = reg.Histogram("udfd_stream_duration_seconds",
		"HTTP /stream request lifetime (first byte to last row).")
	m.execDur = reg.Histogram("udfd_exec_duration_seconds",
		"DDL/DML script execution time.")
	m.txnCommitDur = reg.Histogram("udfd_txn_commit_duration_seconds",
		"Transaction COMMIT time (publish + WAL append).")
	m.walFsyncDur = reg.Histogram("udfd_wal_fsync_duration_seconds",
		"Individual WAL fsync latency.")
	m.checkpointDur = reg.Histogram("udfd_checkpoint_duration_seconds",
		"Checkpoint time (snapshot write + WAL truncate).")
	m.admissionWait = reg.Histogram("udfd_admission_wait_seconds",
		"Time queries spent blocked on a full worker pool (blocking acquisitions only).")
	m.ddlWait = reg.Histogram("udfd_ddl_wait_seconds",
		"Time statements spent blocked on the DDL gate.")

	s.metrics = m
	s.admission.observeWait = m.admissionWait.Observe
}

// registerDurableMetrics adds the WAL/checkpoint series (durable services
// only) and routes WAL fsync latencies into the histogram.
func (s *Service) registerDurableMetrics() {
	reg := s.metrics.reg
	stats := func(fn func(engine.DurabilityStats) int64) func() int64 {
		return func() int64 { return fn(s.durable.Stats()) }
	}
	reg.GaugeFunc("udfd_wal_bytes", "", "Live WAL segment bytes.",
		stats(func(d engine.DurabilityStats) int64 { return d.WALBytes }))
	reg.CounterFunc("udfd_wal_records_total", "", "WAL records appended since open.",
		stats(func(d engine.DurabilityStats) int64 { return d.WALRecords }))
	reg.CounterFunc("udfd_checkpoints_total", "", "Checkpoints taken since open.",
		stats(func(d engine.DurabilityStats) int64 { return d.Checkpoints }))
	reg.GaugeFunc("udfd_recovered_records", "", "Records replayed at open.",
		stats(func(d engine.DurabilityStats) int64 { return d.RecoveredRecords }))
	wal.SetFsyncObserver(s.metrics.walFsyncDur.Observe)
}

// Metrics returns the service's metrics registry (the /metrics source).
func (s *Service) Metrics() *obs.Registry { return s.metrics.reg }

// ObserveStreamDuration records one streaming request's lifetime (the HTTP
// layer calls it when a /stream response finishes).
func (s *Service) ObserveStreamDuration(d time.Duration) { s.metrics.streamDur.Observe(d) }

// Logger returns the service's structured logger.
func (s *Service) Logger() *slog.Logger { return s.metrics.logger }

// nextTraceID resolves a query's trace ID: the caller's (header / DSN /
// explicit WithTraceID) when present, else a generated "<base>-<seq>" where
// base is derived from the service start time — unique per process, cheap,
// and grep-able across the slow-query log and client-side records.
func (s *Service) nextTraceID(ctx context.Context) string {
	if ctx != nil {
		if id, ok := TraceIDFrom(ctx); ok {
			return id
		}
	}
	return fmt.Sprintf("%s-%d", s.metrics.traceBase, s.metrics.traceSeq.Add(1))
}

// maybeLogSlow emits the structured slow-query line when the query's
// service time meets the configured threshold (0 disables). wait is the
// admission + gate wait before execution started; elapsed is plan lookup +
// execution to stream close.
func (s *Service) maybeLogSlow(traceID string, sess *Session, eng *engine.Engine, sql string,
	prep *engine.Prepared, hit bool, wait, elapsed time.Duration, rowsReturned int64, qerr error) {
	m := s.metrics
	if m.slowQuery <= 0 || elapsed < m.slowQuery {
		return
	}
	m.slowQueries.Inc()
	attrs := []any{
		"trace_id", traceID,
		"session", sess.ID,
		"sql", truncateSQL(sql),
		"mode", eng.Mode.String(),
		"cache_hit", hit,
		"wait", wait.Round(time.Microsecond).String(),
		"elapsed", elapsed.Round(time.Microsecond).String(),
		"rows", rowsReturned,
	}
	if prep != nil {
		attrs = append(attrs,
			"rewritten", prep.Rewritten,
			"parallelism", prep.Parallelism,
			"vectorized", eng.Profile.Vectorized,
		)
	}
	if qerr != nil {
		attrs = append(attrs, "err", qerr.Error())
	}
	m.logger.Warn("slow query", attrs...)
}

// truncateSQL bounds logged statement text (slow-query lines should never
// dominate the log).
func truncateSQL(sql string) string {
	sql = strings.Join(strings.Fields(sql), " ")
	const max = 240
	if len(sql) > max {
		return sql[:max] + "…"
	}
	return sql
}

// LatencyStats summarizes a latency histogram for the /stats JSON snapshot
// (microsecond quantiles; the full distribution is on /metrics).
type LatencyStats struct {
	Count    int64 `json:"count"`
	P50Micro int64 `json:"p50_us"`
	P95Micro int64 `json:"p95_us"`
	P99Micro int64 `json:"p99_us"`
}

func latencyStats(h *obs.Histogram) LatencyStats {
	return LatencyStats{
		Count:    h.Count(),
		P50Micro: h.Quantile(0.50).Microseconds(),
		P95Micro: h.Quantile(0.95).Microseconds(),
		P99Micro: h.Quantile(0.99).Microseconds(),
	}
}
