package server

// Streaming/cancellation tests that need service internals: worker-budget
// slots must return to the admission pool when a stream is cancelled
// mid-flight, a waiter that gives up must abandon its FIFO ticket without
// wedging the line, and session statement timeouts must count as
// cancellations (not errors) in the stats.

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"udfdecorr/internal/engine"
	"udfdecorr/internal/exec"
)

// newStreamService builds a service over a single table t(k, v) with n rows.
func newStreamService(t *testing.T, n int, opts Options) *Service {
	t.Helper()
	boot := engine.New(engine.SYS1, engine.ModeRewrite)
	if err := boot.ExecScript(`create table t (k int, v int);`); err != nil {
		t.Fatal(err)
	}
	rows := make([][]int64, n)
	for i := range rows {
		rows[i] = []int64{int64(i), int64(i % 53)}
	}
	boot.MustLoadInts("t", rows)
	return NewServiceFromEngine(boot, opts)
}

func TestStreamCancelRestoresWorkerSlots(t *testing.T) {
	defer func(old int) { exec.MorselRows = old }(exec.MorselRows)
	exec.MorselRows = 64

	const pool = 4
	svc := newStreamService(t, 20_000, Options{CacheSize: 16, MaxConcurrent: pool})
	profile := engine.SYS1
	profile.Vectorized = true
	profile.Parallelism = 4
	sess := svc.CreateSession(profile, engine.ModeRewrite)

	baseline := runtime.NumGoroutine()
	for round := 0; round < 3; round++ {
		ctx, cancel := context.WithCancel(context.Background())
		st, err := svc.QueryStream(ctx, sess, "select k from t where v >= 0")
		if err != nil {
			cancel()
			t.Fatal(err)
		}
		if free := svc.admission.freeSlots(); free != 0 {
			t.Fatalf("round %d: parallel stream admitted but %d/%d slots still free", round, free, pool)
		}
		if !st.Rows.Next() {
			t.Fatalf("round %d: no first row: %v", round, st.Rows.Err())
		}
		cancel()
		for st.Rows.Next() {
		}
		if !errors.Is(st.Rows.Err(), context.Canceled) {
			t.Fatalf("round %d: Err() = %v, want context.Canceled", round, st.Rows.Err())
		}
		if err := st.Rows.Close(); err != nil {
			t.Fatal(err)
		}
		if free := svc.admission.freeSlots(); free != pool {
			t.Fatalf("round %d: cancelled stream left %d/%d slots free", round, free, pool)
		}
	}
	// Workers unwind asynchronously after the cursor closed.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d running, baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(5 * time.Millisecond)
	}
	stats := svc.Stats()
	if stats.QueriesCancelled != 3 {
		t.Fatalf("queries_cancelled = %d, want 3", stats.QueriesCancelled)
	}
	if stats.QueryErrors != 0 {
		t.Fatalf("cancellations were counted as errors: %d", stats.QueryErrors)
	}
}

func TestStreamAbandonedWithoutCloseDoesNotBlockDDLForever(t *testing.T) {
	// Not a leak test: this pins the documented contract that an exhausted
	// stream auto-releases (so only an *abandoned* cursor requires Close).
	svc := newStreamService(t, 100, Options{CacheSize: 16, MaxConcurrent: 2})
	sess := svc.CreateSession(engine.SYS1, engine.ModeRewrite)
	st, err := svc.QueryStream(context.Background(), sess, "select k from t")
	if err != nil {
		t.Fatal(err)
	}
	for st.Rows.Next() {
	}
	// No explicit Close: end of stream released the DDL hold already.
	done := make(chan error, 1)
	go func() { done <- svc.Exec(sess, `create table u (x int);`) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("DDL blocked behind an exhausted (auto-released) stream")
	}
}

func TestSessionStatementTimeout(t *testing.T) {
	svc := newStreamService(t, 1, Options{CacheSize: 16, MaxConcurrent: 2})
	sess := svc.CreateSession(engine.SYS1, engine.ModeIterative)
	if err := svc.Exec(sess, `
create function spin(int n) returns int as
begin
  int i = 0;
  while i < n
  begin
    i = i + 1;
  end
  return i;
end
`); err != nil {
		t.Fatal(err)
	}
	sess.SetTimeout(30 * time.Millisecond)
	_, err := svc.QueryContext(context.Background(), sess, "select spin(100000000) from t")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("timed-out query returned %v, want context.DeadlineExceeded", err)
	}
	if free := svc.admission.freeSlots(); free != 2 {
		t.Fatalf("timed-out query left %d/2 slots free", free)
	}
	stats := svc.Stats()
	if stats.QueriesCancelled != 1 || stats.QueryErrors != 0 {
		t.Fatalf("cancelled=%d errors=%d, want 1/0", stats.QueriesCancelled, stats.QueryErrors)
	}

	// The timeout is per statement, not cumulative per session: a fast
	// query right after still succeeds.
	if _, err := svc.QueryContext(context.Background(), sess, "select k from t"); err != nil {
		t.Fatalf("fast query after timeout: %v", err)
	}

	// DDL/DML scripts honor the timeout too: an INSERT whose value
	// expression invokes the runaway UDF cancels between/inside statements.
	err = svc.ExecContext(context.Background(), sess, "insert into t values (spin(100000000), 0);")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("timed-out exec returned %v, want context.DeadlineExceeded", err)
	}
	if free := svc.admission.freeSlots(); free != 2 {
		t.Fatalf("timed-out exec left %d/2 slots free", free)
	}
}

func TestAcquireCtxAbandonsTicket(t *testing.T) {
	a := newAdmission(1)
	a.acquire(1) // pool exhausted

	// A waiter whose context dies must leave the line...
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := a.acquireCtx(ctx, 1)
		errc <- err
	}()
	// Let the waiter enqueue, then abandon it.
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("abandoned waiter got %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled waiter never returned")
	}

	// ...and the line must advance past its ticket: a later waiter gets the
	// slot once it frees.
	got := make(chan int, 1)
	go func() {
		n, _ := a.acquireCtx(context.Background(), 1)
		got <- n
	}()
	time.Sleep(10 * time.Millisecond)
	a.release(1)
	select {
	case n := <-got:
		if n != 1 {
			t.Fatalf("later waiter granted %d slots, want 1", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("line wedged behind an abandoned ticket")
	}
	if free := a.freeSlots(); free != 0 {
		t.Fatalf("free = %d after grant, want 0", free)
	}
}

func TestAcquireCtxCancelledBeforeWaiting(t *testing.T) {
	a := newAdmission(2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// Slots are available, so the acquire succeeds without waiting even
	// under a dead context (matching sync semantics: cancellation gates
	// waiting, not fast-path success)... unless it must wait.
	if n, err := a.acquireCtx(ctx, 2); err != nil || n != 2 {
		t.Fatalf("fast-path acquire = (%d, %v), want (2, nil)", n, err)
	}
	if _, err := a.acquireCtx(ctx, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("waiting acquire under dead ctx = %v, want context.Canceled", err)
	}
	a.release(2)
	if free := a.freeSlots(); free != 2 {
		t.Fatalf("free = %d, want 2", free)
	}
}
