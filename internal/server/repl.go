// Replication role state: a Service is a leader (read-write) unless flipped
// into follower mode, where every state-changing entry point — Exec scripts
// with DDL/INSERT/txn control, CreateIndex — is rejected with a redirect
// hint while queries run normally over the replica's MVCC snapshots.
// Promotion flips the role back at failover.
package server

import (
	"errors"
	"fmt"

	"udfdecorr/internal/repl"
)

// Role names a service's replication role.
type Role string

const (
	RoleLeader   Role = "leader"
	RoleFollower Role = "follower"
)

// ErrReadOnly marks statements rejected because the service is a read-only
// replica.
var ErrReadOnly = errors.New("read-only replica")

// ReadOnlyError is the typed form of a follower's write rejection. The
// leader address travels in the Leader field (surfaced as the wire
// envelope's leader_hint) so clients redirect structurally instead of
// parsing it out of the message; Error() still names the leader for legacy
// v0 clients and human logs.
type ReadOnlyError struct {
	// Leader is the base URL of the leader this replica follows, or "" when
	// unknown (e.g. a follower that lost its leader and is awaiting
	// promotion).
	Leader string
}

// Error implements the error interface.
func (e *ReadOnlyError) Error() string {
	if e.Leader != "" {
		return fmt.Sprintf("%v: writes, DDL and transactions must go to the leader at %s", ErrReadOnly, e.Leader)
	}
	return fmt.Sprintf("%v: writes, DDL and transactions are rejected here", ErrReadOnly)
}

// Unwrap makes errors.Is(err, ErrReadOnly) keep working.
func (e *ReadOnlyError) Unwrap() error { return ErrReadOnly }

// Role returns the service's current replication role. Services that never
// touched replication are leaders.
func (s *Service) Role() Role {
	s.replMu.RLock()
	defer s.replMu.RUnlock()
	if s.role == "" {
		return RoleLeader
	}
	return s.role
}

// LeaderURL returns the leader this replica follows ("" on a leader).
func (s *Service) LeaderURL() string {
	s.replMu.RLock()
	defer s.replMu.RUnlock()
	return s.leaderURL
}

// SetFollower flips the service into read-only replica mode, fed by the
// follower whose progress status reports. Registers the replication gauges.
func (s *Service) SetFollower(leaderURL string, status func() repl.Status) {
	s.replMu.Lock()
	s.role = RoleFollower
	s.leaderURL = leaderURL
	s.replStatus = status
	s.replMu.Unlock()
	s.registerReplMetrics(status)
}

// Promote flips a follower to leader. It reports whether a flip happened
// (promoting a leader is a no-op). The caller must have stopped the tail
// and finished any catch-up first: after Promote, writes are accepted.
func (s *Service) Promote() bool {
	s.replMu.Lock()
	defer s.replMu.Unlock()
	if s.role != RoleFollower {
		return false
	}
	s.role = RoleLeader
	s.leaderURL = ""
	return true
}

// ReplStatus reports the feeding follower's replication progress; ok is
// false when the service never ran as a replica.
func (s *Service) ReplStatus() (repl.Status, bool) {
	s.replMu.RLock()
	status := s.replStatus
	s.replMu.RUnlock()
	if status == nil {
		return repl.Status{}, false
	}
	return status(), true
}

// rejectOnReplica returns the read-only error when the service is currently
// a follower, naming the leader so clients know where to send writes.
func (s *Service) rejectOnReplica() error {
	s.replMu.RLock()
	defer s.replMu.RUnlock()
	if s.role != RoleFollower {
		return nil
	}
	return &ReadOnlyError{Leader: s.leaderURL}
}

// ApplyExclusive runs fn under the exclusive side of the DDL gate and
// invalidates the plan cache if the schema version changed — the follower's
// apply path for replicated DDL, mirroring what ExecContext does for local
// DDL so replica readers never see a half-applied schema change (and never
// reuse plans compiled against the previous catalog version).
func (s *Service) ApplyExclusive(fn func() error) error {
	s.ddl.Lock()
	defer s.ddl.Unlock()
	before := s.cat.Version()
	err := fn()
	if s.cat.Version() != before {
		s.cache.Purge()
	}
	return err
}

// registerReplMetrics adds the replication series to /metrics. GaugeFunc
// closures are evaluated per scrape, so they always reflect live status.
func (s *Service) registerReplMetrics(status func() repl.Status) {
	reg := s.metrics.reg
	reg.GaugeFunc("udfd_repl_lag_records", "",
		"Replication lag behind the leader's durable WAL tip, in records (-1 before the first stream response).",
		func() int64 { return status().LagRecords })
	reg.CounterFunc("udfd_repl_applied_total", "",
		"WAL records applied by the replica since bootstrap (snapshot included).",
		func() int64 { return status().AppliedRecords })
}
