package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"udfdecorr/internal/engine"
	"udfdecorr/internal/repl"
	"udfdecorr/internal/wire"
)

// NewHandler builds the HTTP/JSON API over a service:
//
//	POST /session  {"mode","profile","vectorized","parallelism","timeout_ms"} -> {"session"}
//	POST /session/close {"session"}                 -> {"ok"}
//	POST /query    {"session","sql"}                -> rows + metadata
//	POST /stream   {"session","sql"}                -> NDJSON row stream
//	POST /exec     {"session","script"}             -> {"ok"}
//	POST /explain  {"session","sql"}                -> {"explain"}
//	POST /explain?analyze=1 {"session","sql"}       -> {"explain"} (executes, per-operator stats)
//	POST /checkpoint                                -> {"checkpoints","wal_bytes"}
//	GET  /stats                                     -> Stats
//	GET  /metrics                                   -> Prometheus text exposition
//	GET  /healthz                                   -> role, WAL position, replication lag
//	GET  /repl/snapshot                             -> latest checkpoint image (durable only)
//	GET  /repl/wal?segment=N&offset=K               -> framed WAL records (durable only)
//
// Every JSON endpoint speaks two wire versions (see internal/wire): the
// legacy v0 shapes above remain the default; requests carrying
// `Accept: application/vnd.udfd.v1+json` (or `X-Udfd-Wire: 1`) get the v1
// envelope — results under "result", failures as typed {code, message}
// errors with the node's role and, on a read-only follower, the leader's
// address in the structured leader_hint field instead of inside the error
// string.
//
// /query and /exec are aliases over one statement handler: /query expects
// a single SELECT and returns its rows, /exec runs a DDL/DML/txn script and
// returns {"ok":true}. Both accept the statement text under "sql" or
// "script".
//
// The empty session ID addresses a shared default session (SYS1, rewrite
// mode). Row values are rendered in SQL literal syntax (strings quoted,
// NULL bare) so clients can compare results unambiguously.
//
// /query and /stream honor an X-Trace-Id request header (the query's trace
// ID, grep-able in the slow-query log) and echo the effective ID — given or
// generated — back on the response.
//
// Both /query and /stream execute under the request context: a client that
// disconnects (or a session statement timeout that fires) cancels the query
// at the next row/batch boundary and releases its worker slots; the query
// counts as cancelled, not errored, in /stats.
//
// /stream wire format (Content-Type application/x-ndjson, one JSON object
// per line, flushed per row):
//
//	{"cols":["k","v"],"rewritten":true,"cache_hit":false}   header, first line
//	{"row":["1","'a'"]}                                     one line per row
//	{"done":true,"row_count":2,"elapsed_us":1234,...}       trailer on success
//	{"error":"...","code":"..."}                            trailer on failure
//
// A /stream request may set "shard_partial":true to execute in shard-local
// partial-aggregate mode (see Service.QueryStreamPartial) — the layout the
// shard router's scatter-merge gather consumes.
func NewHandler(svc *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/session", func(w http.ResponseWriter, r *http.Request) { handleSession(svc, w, r) })
	mux.HandleFunc("/session/close", func(w http.ResponseWriter, r *http.Request) { handleSessionClose(svc, w, r) })
	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) { handleStatement(svc, w, r, kindQuery) })
	mux.HandleFunc("/stream", func(w http.ResponseWriter, r *http.Request) { handleStream(svc, w, r) })
	mux.HandleFunc("/exec", func(w http.ResponseWriter, r *http.Request) { handleStatement(svc, w, r, kindExec) })
	mux.HandleFunc("/explain", func(w http.ResponseWriter, r *http.Request) { handleExplain(svc, w, r) })
	mux.HandleFunc("/checkpoint", func(w http.ResponseWriter, r *http.Request) { handleCheckpoint(svc, w, r) })
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) { handleStats(svc, w, r) })
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) { handleMetrics(svc, w, r) })
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) { handleHealthz(svc, w, r) })
	if svc.durable != nil {
		// A durable service is a valid replication source: its WAL stream and
		// checkpoint are served regardless of role, so chained topologies
		// (follower-of-follower) stay possible once a node is promoted.
		repl.NewLeaderHandlers(svc.durable.WAL(), svc.durable.Dir()).Register(mux)
	}
	return mux
}

// handleHealthz is the readiness probe: the node's replication role, its WAL
// position (the durable tip on a leader, the applied stream position on a
// follower), and replication lag. A follower whose tail loop died fatally
// reports 503 so load balancers stop routing reads to a stale replica.
func handleHealthz(svc *Service, w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		respondErrorf(svc, w, r, http.StatusMethodNotAllowed, wire.CodeBadRequest, "use GET")
		return
	}
	role := svc.Role()
	resp := map[string]any{"role": string(role)}
	healthy := true
	if st, ok := svc.ReplStatus(); ok {
		resp["repl"] = st
		if role == RoleFollower && st.Fatal {
			healthy = false
		}
	}
	if svc.durable != nil {
		tip := svc.durable.WAL().StreamTip()
		resp["wal"] = map[string]any{
			"segment": tip.Segment,
			"offset":  tip.Offset,
			"records": tip.Records,
		}
	}
	resp["healthy"] = healthy
	code := http.StatusOK
	if !healthy {
		code = http.StatusServiceUnavailable
	}
	respond(svc, w, r, code, resp)
}

// handleMetrics serves the Prometheus text exposition. It reads the same
// live sources as /stats, so the two surfaces always agree.
func handleMetrics(svc *Service, w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		respondErrorf(svc, w, r, http.StatusMethodNotAllowed, wire.CodeBadRequest, "use GET")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_ = svc.Metrics().WritePrometheus(w)
}

// traceContext attaches the X-Trace-Id request header (if any) to the
// request context so the service adopts it as the query's trace ID.
func traceContext(r *http.Request) context.Context {
	ctx := r.Context()
	if id := r.Header.Get("X-Trace-Id"); id != "" {
		ctx = WithTraceID(ctx, id)
	}
	return ctx
}

// handleCheckpoint forces a snapshot + log truncation on a durable service
// (operators and the durability CI use it to bound recovery time).
func handleCheckpoint(svc *Service, w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		respondErrorf(svc, w, r, http.StatusMethodNotAllowed, wire.CodeBadRequest, "POST only")
		return
	}
	if err := svc.Checkpoint(); err != nil {
		respondErrorf(svc, w, r, http.StatusConflict, wire.CodeInternal, "checkpoint: %v", err)
		return
	}
	st := svc.Stats()
	respond(svc, w, r, http.StatusOK, map[string]any{
		"checkpoints": st.Durability.Checkpoints,
		"wal_bytes":   st.Durability.WALBytes,
	})
}

type sessionRequest struct {
	Mode       string `json:"mode"`
	Profile    string `json:"profile"`
	Vectorized bool   `json:"vectorized"`
	// Parallelism is the intra-query worker degree (0 adopts the server's
	// default; effective on the vectorized executor).
	Parallelism int `json:"parallelism"`
	// TimeoutMS is the per-statement timeout in milliseconds (0 = none).
	TimeoutMS int64 `json:"timeout_ms"`
}

type sessionResponse struct {
	Session     string `json:"session"`
	Mode        string `json:"mode"`
	Profile     string `json:"profile"`
	Vectorized  bool   `json:"vectorized"`
	Parallelism int    `json:"parallelism"`
	TimeoutMS   int64  `json:"timeout_ms"`
}

// statementRequest is the shared /query + /stream + /exec request body. SQL
// and Script are aliases; /exec clients historically send "script".
type statementRequest struct {
	Session string `json:"session"`
	SQL     string `json:"sql"`
	Script  string `json:"script"`
	// ShardPartial selects shard-local partial-aggregate execution
	// (/stream only; the shard router sets it on scatter-merge legs).
	ShardPartial bool `json:"shard_partial"`
}

// text returns whichever of sql/script the client set.
func (q *statementRequest) text() string {
	if q.SQL != "" {
		return q.SQL
	}
	return q.Script
}

type queryResponse struct {
	Cols       []string   `json:"cols"`
	Rows       [][]string `json:"rows"`
	RowCount   int        `json:"row_count"`
	Rewritten  bool       `json:"rewritten"`
	CacheHit   bool       `json:"cache_hit"`
	ElapsedUS  int64      `json:"elapsed_us"`
	UDFCalls   int64      `json:"udf_calls"`
	PlanBuilds int64      `json:"plan_builds"`
	Morsels    int64      `json:"morsels"`
	Workers    int64      `json:"workers"`
}

type explainResponse struct {
	Explain string `json:"explain"`
}

type okResponse struct {
	OK bool `json:"ok"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// respond writes a success payload in the request's negotiated wire
// version: the bare legacy shape at v0, a wire envelope at v1.
func respond(svc *Service, w http.ResponseWriter, r *http.Request, status int, result any) {
	if wire.Version(r) != wire.V1 {
		writeJSON(w, status, result)
		return
	}
	env, err := wire.OK(result, string(svc.Role()), "", w.Header().Get("X-Trace-Id"))
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, status, env)
}

// respondError writes err in the negotiated wire version. v0 keeps the
// legacy {"error": string} body — including the leader address embedded in
// a follower rejection's message, exactly one release behind. v1 derives
// the typed code and the structured leader_hint from the error itself.
func respondError(svc *Service, w http.ResponseWriter, r *http.Request, status int, err error) {
	if wire.Version(r) != wire.V1 {
		writeJSON(w, status, errorResponse{Error: err.Error()})
		return
	}
	code, hint := classifyError(err, status)
	writeJSON(w, status, wire.Fail(code, err.Error(), string(svc.Role()), hint, w.Header().Get("X-Trace-Id")))
}

func respondErrorf(svc *Service, w http.ResponseWriter, r *http.Request, status int, code wire.Code, format string, args ...any) {
	if wire.Version(r) != wire.V1 {
		writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
		return
	}
	writeJSON(w, status, wire.Fail(code, fmt.Sprintf(format, args...), string(svc.Role()), "", w.Header().Get("X-Trace-Id")))
}

// classifyError maps a service error (plus the HTTP status the legacy
// handler chose) onto a typed wire code and optional leader hint.
func classifyError(err error, status int) (wire.Code, string) {
	var ro *ReadOnlyError
	if errors.As(err, &ro) {
		return wire.CodeReadOnly, ro.Leader
	}
	var re *wire.RemoteError
	if errors.As(err, &re) && re.Code != "" {
		// Forwarded errors (a router proxying a shard) keep their code.
		return re.Code, re.LeaderHint
	}
	switch status {
	case http.StatusBadRequest:
		return wire.CodeBadRequest, ""
	case http.StatusNotFound:
		return wire.CodeUnknownSession, ""
	default:
		return wire.CodeInternal, ""
	}
}

// decodePost rejects non-POST methods and parses the JSON body into v.
func decodePost(svc *Service, w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		respondErrorf(svc, w, r, http.StatusMethodNotAllowed, wire.CodeBadRequest, "use POST")
		return false
	}
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		respondErrorf(svc, w, r, http.StatusBadRequest, wire.CodeBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

func resolveSession(svc *Service, w http.ResponseWriter, r *http.Request, id string) (*Session, bool) {
	sess, ok := svc.Session(id)
	if !ok {
		respondErrorf(svc, w, r, http.StatusNotFound, wire.CodeUnknownSession, "unknown session %q", id)
		return nil, false
	}
	return sess, true
}

func handleSession(svc *Service, w http.ResponseWriter, r *http.Request) {
	var req sessionRequest
	if !decodePost(svc, w, r, &req) {
		return
	}
	profile := engine.SYS1
	if req.Profile != "" {
		p, err := ParseProfile(req.Profile)
		if err != nil {
			respondError(svc, w, r, http.StatusBadRequest, err)
			return
		}
		profile = p
	}
	mode := engine.ModeRewrite
	if req.Mode != "" {
		m, err := ParseMode(req.Mode)
		if err != nil {
			respondError(svc, w, r, http.StatusBadRequest, err)
			return
		}
		mode = m
	}
	profile.Vectorized = req.Vectorized
	profile.Parallelism = req.Parallelism
	if profile.Parallelism == 0 {
		profile.Parallelism = svc.DefaultParallelism()
	}
	sess := svc.CreateSession(profile, mode)
	if req.TimeoutMS > 0 {
		sess.SetTimeout(time.Duration(req.TimeoutMS) * time.Millisecond)
	}
	respond(svc, w, r, http.StatusOK, sessionResponse{
		Session:     sess.ID,
		Mode:        mode.String(),
		Profile:     profile.Name,
		Vectorized:  profile.Vectorized,
		Parallelism: profile.Parallelism,
		TimeoutMS:   req.TimeoutMS,
	})
}

func handleSessionClose(svc *Service, w http.ResponseWriter, r *http.Request) {
	var req statementRequest
	if !decodePost(svc, w, r, &req) {
		return
	}
	svc.CloseSession(req.Session)
	respond(svc, w, r, http.StatusOK, okResponse{OK: true})
}

// stmtKind parameterizes the one statement handler both /query and /exec
// alias: the decode / session-resolution / error paths are identical, only
// the service call and the success payload differ.
type stmtKind int

const (
	kindQuery stmtKind = iota // single SELECT, returns rows
	kindExec                  // DDL/DML/txn script, returns ok
)

func handleStatement(svc *Service, w http.ResponseWriter, r *http.Request, kind stmtKind) {
	var req statementRequest
	if !decodePost(svc, w, r, &req) {
		return
	}
	sess, ok := resolveSession(svc, w, r, req.Session)
	if !ok {
		return
	}
	switch kind {
	case kindQuery:
		res, err := svc.QueryContext(traceContext(r), sess, req.text())
		if err != nil {
			respondError(svc, w, r, http.StatusBadRequest, err)
			return
		}
		w.Header().Set("X-Trace-Id", res.TraceID)
		rows := make([][]string, len(res.Rows))
		for i, row := range res.Rows {
			out := make([]string, len(row))
			for j, v := range row {
				out[j] = v.String()
			}
			rows[i] = out
		}
		respond(svc, w, r, http.StatusOK, queryResponse{
			Cols:       res.Cols,
			Rows:       rows,
			RowCount:   len(rows),
			Rewritten:  res.Rewritten,
			CacheHit:   res.CacheHit,
			ElapsedUS:  res.Elapsed.Microseconds(),
			UDFCalls:   res.Counters.UDFCalls,
			PlanBuilds: res.Counters.PlanBuilds,
			Morsels:    res.Counters.Morsels,
			Workers:    res.Counters.Workers,
		})
	case kindExec:
		if err := svc.ExecContext(r.Context(), sess, req.text()); err != nil {
			respondError(svc, w, r, http.StatusBadRequest, err)
			return
		}
		respond(svc, w, r, http.StatusOK, okResponse{OK: true})
	}
}

// streamHeader is the first NDJSON line of a /stream response.
type streamHeader struct {
	Cols      []string `json:"cols"`
	Rewritten bool     `json:"rewritten"`
	CacheHit  bool     `json:"cache_hit"`
}

// streamRow is one result row line.
type streamRow struct {
	Row []string `json:"row"`
}

// streamTrailer terminates a /stream response: Done with summary metadata
// on success, Error otherwise (including "context canceled" when the
// session timeout fired — the client sees why its stream stopped short).
// Code and LeaderHint carry the typed wire classification of a failure;
// they are additive, so v0 clients that only look at Error keep working.
type streamTrailer struct {
	Done       bool   `json:"done,omitempty"`
	RowCount   int    `json:"row_count,omitempty"`
	ElapsedUS  int64  `json:"elapsed_us,omitempty"`
	UDFCalls   int64  `json:"udf_calls,omitempty"`
	Morsels    int64  `json:"morsels,omitempty"`
	Workers    int64  `json:"workers,omitempty"`
	Error      string `json:"error,omitempty"`
	Code       string `json:"code,omitempty"`
	LeaderHint string `json:"leader_hint,omitempty"`
}

func handleStream(svc *Service, w http.ResponseWriter, r *http.Request) {
	var req statementRequest
	if !decodePost(svc, w, r, &req) {
		return
	}
	sess, ok := resolveSession(svc, w, r, req.Session)
	if !ok {
		return
	}
	var st *Stream
	var err error
	if req.ShardPartial {
		st, err = svc.QueryStreamPartial(traceContext(r), sess, req.text())
	} else {
		st, err = svc.QueryStream(traceContext(r), sess, req.text())
	}
	if err != nil {
		respondError(svc, w, r, http.StatusBadRequest, err)
		return
	}
	defer st.Rows.Close()
	defer func(start time.Time) { svc.ObserveStreamDuration(time.Since(start)) }(time.Now())

	w.Header().Set("X-Trace-Id", st.TraceID)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	rc := http.NewResponseController(w)
	flush := func() { _ = rc.Flush() }

	if err := enc.Encode(streamHeader{Cols: st.Rows.Columns(), Rewritten: st.Rows.Rewritten(), CacheHit: st.CacheHit}); err != nil {
		return
	}
	flush()

	n := 0
	var line streamRow
	for st.Rows.Next() {
		row := st.Rows.Row()
		if cap(line.Row) < len(row) {
			line.Row = make([]string, len(row))
		}
		line.Row = line.Row[:len(row)]
		for i, v := range row {
			line.Row[i] = v.String()
		}
		if err := enc.Encode(line); err != nil {
			// Client went away mid-stream; the request context cancels the
			// query, Close (deferred) releases its slots.
			return
		}
		n++
		flush()
	}
	st.Rows.Close() // settle Err and absorb parallel counters
	if err := st.Rows.Err(); err != nil {
		code, hint := classifyError(err, http.StatusBadRequest)
		_ = enc.Encode(streamTrailer{Error: err.Error(), Code: string(code), LeaderHint: hint})
		flush()
		return
	}
	c := st.Rows.Counters()
	_ = enc.Encode(streamTrailer{
		Done:      true,
		RowCount:  n,
		ElapsedUS: time.Since(st.Started).Microseconds(),
		UDFCalls:  c.UDFCalls,
		Morsels:   c.Morsels,
		Workers:   c.Workers,
	})
	flush()
}

func handleExplain(svc *Service, w http.ResponseWriter, r *http.Request) {
	var req statementRequest
	if !decodePost(svc, w, r, &req) {
		return
	}
	sess, ok := resolveSession(svc, w, r, req.Session)
	if !ok {
		return
	}
	var out string
	var err error
	if v := r.URL.Query().Get("analyze"); v == "1" || v == "true" {
		out, err = svc.ExplainAnalyze(traceContext(r), sess, req.text())
	} else {
		out, err = svc.Explain(sess, req.text())
	}
	if err != nil {
		respondError(svc, w, r, http.StatusBadRequest, err)
		return
	}
	respond(svc, w, r, http.StatusOK, explainResponse{Explain: out})
}

func handleStats(svc *Service, w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		respondErrorf(svc, w, r, http.StatusMethodNotAllowed, wire.CodeBadRequest, "use GET")
		return
	}
	respond(svc, w, r, http.StatusOK, svc.Stats())
}
