package server_test

// Replication at the service layer: the read-only gate on follower roles
// (writes/DDL/txns rejected with a redirect hint, queries untouched), the
// /healthz readiness surface, the repl gauges on /metrics, and the leader's
// /repl endpoints mounted on a durable service's handler.

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"udfdecorr/internal/engine"
	"udfdecorr/internal/repl"
	"udfdecorr/internal/server"
)

// followerService builds an in-memory service flipped into follower mode
// with a fixed replication status.
func followerService(t *testing.T, st repl.Status) *server.Service {
	t.Helper()
	e := engine.New(engine.SYS1, engine.ModeRewrite)
	if err := e.ExecScript("create table kv (k int primary key, v varchar); insert into kv values (1, 'a');"); err != nil {
		t.Fatal(err)
	}
	svc := server.NewService(e.Cat, e.Store, server.DefaultOptions())
	svc.SetFollower("http://leader:8080", func() repl.Status { return st })
	return svc
}

func TestFollowerRejectsWritesServesReads(t *testing.T) {
	svc := followerService(t, repl.Status{LagRecords: 0})
	sess := svc.CreateSession(engine.SYS1, engine.ModeRewrite)

	// Reads work.
	res, err := svc.Query(sess, "select k from kv;")
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("replica read failed: %v", err)
	}
	// Writes, DDL, transactions and index DDL are rejected with the leader's
	// address in the error.
	for _, script := range []string{
		"insert into kv values (2, 'b');",
		"create table other (k int primary key);",
		"begin;",
	} {
		err := svc.Exec(sess, script)
		if !errors.Is(err, server.ErrReadOnly) {
			t.Fatalf("Exec(%q) on replica: err=%v, want ErrReadOnly", script, err)
		}
		if !strings.Contains(err.Error(), "http://leader:8080") {
			t.Fatalf("read-only error lacks redirect hint: %v", err)
		}
	}
	if err := svc.CreateIndex("kv", "v"); !errors.Is(err, server.ErrReadOnly) {
		t.Fatalf("CreateIndex on replica: err=%v, want ErrReadOnly", err)
	}
	if got := svc.Role(); got != server.RoleFollower {
		t.Fatalf("Role() = %q, want follower", got)
	}

	// Promotion flips the gate open.
	if !svc.Promote() {
		t.Fatal("Promote() reported no flip")
	}
	if svc.Promote() {
		t.Fatal("second Promote() reported a flip")
	}
	if err := svc.Exec(sess, "insert into kv values (2, 'b');"); err != nil {
		t.Fatalf("write after promotion: %v", err)
	}
	if got := svc.Role(); got != server.RoleLeader {
		t.Fatalf("Role() after promotion = %q, want leader", got)
	}
}

func TestHealthzReportsRoleAndLag(t *testing.T) {
	svc := followerService(t, repl.Status{
		Segment: 3, Offset: 128, AppliedRecords: 42, LagRecords: 7, LeaderURL: "http://leader:8080",
	})
	srv := httptest.NewServer(server.NewHandler(svc))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d, want 200", resp.StatusCode)
	}
	var hz struct {
		Role    string `json:"role"`
		Healthy bool   `json:"healthy"`
		Repl    struct {
			Segment        uint64 `json:"segment"`
			AppliedRecords int64  `json:"applied_records"`
			LagRecords     int64  `json:"lag_records"`
		} `json:"repl"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	if hz.Role != "follower" || !hz.Healthy {
		t.Fatalf("healthz = role %q healthy %v, want follower/true", hz.Role, hz.Healthy)
	}
	if hz.Repl.Segment != 3 || hz.Repl.AppliedRecords != 42 || hz.Repl.LagRecords != 7 {
		t.Fatalf("healthz repl = %+v", hz.Repl)
	}

	// The replication gauges are on /metrics.
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	body, _ := io.ReadAll(mresp.Body)
	text := string(body)
	if !strings.Contains(text, "udfd_repl_lag_records 7") {
		t.Fatalf("metrics missing lag gauge:\n%s", text)
	}
	if !strings.Contains(text, "udfd_repl_applied_total 42") {
		t.Fatalf("metrics missing applied counter:\n%s", text)
	}
}

func TestHealthzDeadTailIs503(t *testing.T) {
	svc := followerService(t, repl.Status{Fatal: true, LastError: "fell behind"})
	srv := httptest.NewServer(server.NewHandler(svc))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz with dead tail: status %d, want 503", resp.StatusCode)
	}
}

// TestDurableHandlerServesReplEndpoints: any durable service is a valid
// replication source — /repl/wal streams what the WAL holds and /healthz
// reports the leader role with its durable tip.
func TestDurableHandlerServesReplEndpoints(t *testing.T) {
	dir := t.TempDir()
	svc, _ := openDurableService(t, dir)
	sess := svc.CreateSession(engine.SYS1, engine.ModeRewrite)
	if err := svc.Exec(sess, "create table kv (k int primary key, v varchar); insert into kv values (1, 'a');"); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(server.NewHandler(svc))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/repl/wal?segment=1&offset=0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/repl/wal status %d, want 200", resp.StatusCode)
	}
	data, _ := io.ReadAll(resp.Body)
	if len(data) == 0 {
		t.Fatal("/repl/wal returned no frames for a log with records")
	}
	if resp.Header.Get("X-Repl-Tip-Records") == "" {
		t.Fatal("/repl/wal missing tip-records header")
	}

	hresp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var hz struct {
		Role string `json:"role"`
		WAL  struct {
			Records int64 `json:"records"`
		} `json:"wal"`
	}
	if err := json.NewDecoder(hresp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	if hz.Role != "leader" {
		t.Fatalf("durable service role = %q, want leader", hz.Role)
	}
	if hz.WAL.Records == 0 {
		t.Fatal("healthz WAL position shows no records after writes")
	}
}
