package server

import "strings"

// NormalizeSQL canonicalizes a query text for plan-cache keying: comments
// are stripped and runs of whitespace collapse to a single space (both only
// outside string literals, mirroring the lexer exactly), and leading and
// trailing whitespace plus one trailing semicolon are dropped. The
// normalization is strictly semantics-preserving — bytes inside
// single-quoted literals (including ” escapes) are kept verbatim, so two
// queries that differ only inside a literal never share a cache key, and
// identifier case is left untouched so result-column header casing is not
// unified across distinct spellings. Comment stripping matters for
// correctness, not just hit rate: a `--` comment runs to end of line, so
// collapsing the newline without removing the comment would merge queries
// that parse differently.
func NormalizeSQL(sql string) string {
	var b strings.Builder
	b.Grow(len(sql))
	inStr := false
	pendingSpace := false
	for i := 0; i < len(sql); i++ {
		c := sql[i]
		if inStr {
			b.WriteByte(c)
			if c == '\'' {
				if i+1 < len(sql) && sql[i+1] == '\'' {
					b.WriteByte('\'')
					i++
				} else {
					inStr = false
				}
			}
			continue
		}
		switch {
		case c == '-' && i+1 < len(sql) && sql[i+1] == '-':
			// Line comment: runs to end of line (or EOF), like the lexer.
			for i < len(sql) && sql[i] != '\n' {
				i++
			}
			i-- // the newline (if any) is handled as whitespace next round
			pendingSpace = true
		case c == '/' && i+1 < len(sql) && sql[i+1] == '*':
			end := strings.Index(sql[i+2:], "*/")
			if end < 0 {
				// Unterminated block comment: the lexer rejects this query,
				// so keep the raw text as its own key — stripping to EOF
				// would collide it with the valid query's key and serve
				// cached rows for text that must error.
				return strings.TrimSpace(sql)
			}
			i += 2 + end + 1 // loop increment steps past the trailing '/'
			pendingSpace = true
		case c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' || c == '\v':
			pendingSpace = true
		default:
			if pendingSpace && b.Len() > 0 {
				b.WriteByte(' ')
			}
			pendingSpace = false
			if c == '\'' {
				inStr = true
			}
			b.WriteByte(c)
		}
	}
	if inStr {
		// Unterminated string literal: invalid query, raw text as key (see
		// the unterminated-block-comment case).
		return strings.TrimSpace(sql)
	}
	return strings.TrimSpace(strings.TrimSuffix(b.String(), ";"))
}
