package server

// White-box tests for the admission semaphore and the prepare singleflight:
// these need access to the unexported internals (inflight map, admission
// pool) to make the concurrency deterministic.

import (
	"sync"
	"testing"
	"time"

	"udfdecorr/internal/engine"
)

func TestAdmissionWeightedAcquire(t *testing.T) {
	a := newAdmission(4)

	held := a.acquire(3)
	acquired := make(chan int, 1)
	go func() { acquired <- a.acquire(3) }()

	select {
	case <-acquired:
		t.Fatal("second 3-slot acquire succeeded with only 1 slot free")
	case <-time.After(50 * time.Millisecond):
	}
	a.release(held)
	select {
	case got := <-acquired:
		a.release(got)
	case <-time.After(2 * time.Second):
		t.Fatal("blocked acquire did not wake after release")
	}
	if w := a.waitCount(); w != 1 {
		t.Fatalf("admission waits = %d, want 1", w)
	}

	// Requests larger than the pool clamp instead of deadlocking.
	if got := a.acquire(100); got != 4 {
		t.Fatalf("oversized acquire granted %d slots, want the pool size 4", got)
	} else {
		a.release(got)
	}
}

// TestAdmissionNoPartialDeadlock is the regression test for the classic
// multi-slot semaphore deadlock: two queries each needing 3 of 4 slots must
// serialize, never each hold half and wait forever.
func TestAdmissionNoPartialDeadlock(t *testing.T) {
	a := newAdmission(4)
	done := make(chan struct{}, 2)
	for i := 0; i < 2; i++ {
		go func() {
			for j := 0; j < 200; j++ {
				a.release(a.acquire(3))
			}
			done <- struct{}{}
		}()
	}
	for i := 0; i < 2; i++ {
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("admission deadlocked under contending multi-slot acquires")
		}
	}
}

// TestAdmissionFIFONoStarvation: a multi-slot request at the head of the
// line must be served even while single-slot acquisitions keep arriving —
// the FIFO ticket makes later 1-slot requests queue behind it instead of
// leapfrogging it forever.
func TestAdmissionFIFONoStarvation(t *testing.T) {
	a := newAdmission(4)
	stop := make(chan struct{})
	var churners sync.WaitGroup
	for i := 0; i < 4; i++ {
		churners.Add(1)
		go func() {
			defer churners.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				a.release(a.acquire(1))
			}
		}()
	}
	got := make(chan int, 1)
	go func() { got <- a.acquire(4) }()
	select {
	case n := <-got:
		a.release(n)
	case <-time.After(10 * time.Second):
		t.Fatal("4-slot acquire starved by 1-slot churn")
	}
	close(stop)
	churners.Wait()
}

// TestPrepareSingleflight pins the dedupe protocol: a session that misses
// the cache while another session is compiling the same key must wait for
// that compilation and reuse its result instead of calling engine.Prepare.
func TestPrepareSingleflight(t *testing.T) {
	boot := engine.New(engine.SYS1, engine.ModeRewrite)
	if err := boot.ExecScript("create table t (a int, b int);"); err != nil {
		t.Fatal(err)
	}
	svc := NewServiceFromEngine(boot, DefaultOptions())
	eng := engine.NewShared(svc.cat, svc.store, engine.SYS1, engine.ModeRewrite)

	sql := "select a from t"
	key := CacheKey{
		SQL:            NormalizeSQL(sql),
		Mode:           eng.Mode,
		Profile:        eng.Profile.Name,
		Vectorized:     eng.Profile.Vectorized,
		Parallelism:    eng.Profile.Parallelism,
		CatalogVersion: svc.cat.Version(),
	}

	// Simulate a leader mid-compilation, then make a follower prepare the
	// same key: it must block until the leader publishes.
	leader := &prepCall{done: make(chan struct{})}
	svc.prepMu.Lock()
	svc.inflight[key] = leader
	svc.prepMu.Unlock()

	type result struct {
		prep *engine.Prepared
		hit  bool
		err  error
	}
	got := make(chan result, 1)
	go func() {
		prep, hit, err := svc.prepare(eng, sql, false)
		got <- result{prep, hit, err}
	}()
	select {
	case r := <-got:
		t.Fatalf("follower did not wait for the in-flight prepare (hit=%v err=%v)", r.hit, r.err)
	case <-time.After(50 * time.Millisecond):
	}

	sentinel := &engine.Prepared{Cols: []string{"sentinel"}}
	leader.prep = sentinel
	svc.prepMu.Lock()
	delete(svc.inflight, key)
	svc.prepMu.Unlock()
	close(leader.done)

	select {
	case r := <-got:
		if r.err != nil {
			t.Fatal(r.err)
		}
		if r.prep != sentinel {
			t.Fatal("follower compiled its own plan instead of adopting the leader's")
		}
		if !r.hit {
			t.Error("deduped prepare should report as a cache hit (no planning paid)")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("follower never woke after the leader published")
	}
	if st := svc.Stats(); st.PrepareDeduped != 1 {
		t.Fatalf("prepare_deduped = %d, want 1", st.PrepareDeduped)
	}

	// A leader error propagates to followers and is not cached.
	badSQL := "select a from no_such_table"
	if _, _, err := svc.prepare(eng, badSQL, false); err == nil {
		t.Fatal("expected prepare error for unknown table")
	}
	if _, ok := svc.cache.Get(CacheKey{SQL: NormalizeSQL(badSQL), Mode: eng.Mode,
		Profile: eng.Profile.Name, CatalogVersion: svc.cat.Version()}); ok {
		t.Fatal("failed prepare was cached")
	}
	svc.prepMu.Lock()
	n := len(svc.inflight)
	svc.prepMu.Unlock()
	if n != 0 {
		t.Fatalf("inflight map leaked %d entries", n)
	}
}
