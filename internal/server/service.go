// Package server is the concurrent query service: it wraps the engine in a
// session manager (per-session mode/profile/executor settings over one
// shared catalog+storage), a shared bounded LRU plan/rewrite cache keyed by
// normalized query text × mode × profile × executor × catalog version, a
// reader/writer DDL gate, and a worker-pool admission limit. This turns the
// paper's SYS1 "cached plans" behavior into a first-class subsystem: repeat
// queries skip parsing, algebrization, decorrelation and physical planning
// entirely, across any number of concurrent clients.
//
// Locking order (outermost first): admission slot → ddl gate → session lock
// → catalog/storage/cache internal locks. Queries, INSERTs and transaction
// control hold the ddl gate in read mode, so any number run concurrently —
// readers scan immutable published table versions (snapshot-consistent per
// statement), so writers never disturb them. Only actual DDL (CREATE
// TABLE / CREATE FUNCTION / CREATE INDEX) and checkpoints take the write
// side and exclude everything else.
package server

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"strings"
	"sync"
	"time"

	"udfdecorr/internal/ast"
	"udfdecorr/internal/catalog"
	"udfdecorr/internal/engine"
	"udfdecorr/internal/exec"
	"udfdecorr/internal/parser"
	"udfdecorr/internal/repl"
	"udfdecorr/internal/storage"
)

// Options configures a Service.
type Options struct {
	// CacheSize bounds the shared plan cache (entries). <=0 disables
	// caching; DefaultOptions uses 256.
	CacheSize int
	// MaxConcurrent bounds simultaneously executing workers (the admission
	// pool). A parallel query claims one slot per intra-query worker, so
	// udfserverd never oversubscribes cores no matter how sessions combine
	// concurrency and parallelism. <=0 means 32.
	MaxConcurrent int
	// DefaultParallelism is the intra-query degree applied to sessions that
	// do not choose one explicitly (0 leaves them serial).
	DefaultParallelism int
	// SlowQueryThreshold emits a structured slow-query log line for every
	// query whose service time (plan lookup + execution, to stream close)
	// meets it. 0 disables the log.
	SlowQueryThreshold time.Duration
	// Logger receives the service's structured logs (the slow-query log).
	// nil uses slog.Default().
	Logger *slog.Logger
}

// DefaultOptions returns the default service configuration.
func DefaultOptions() Options {
	return Options{CacheSize: 256, MaxConcurrent: 32}
}

// admission is the worker-pool semaphore. Unlike a channel semaphore it
// grants multi-slot requests atomically (all-or-nothing while waiting), so
// two parallel queries can never deadlock each other by each holding half
// of their worker budget — and grants are FIFO (ticketed), so a multi-slot
// request cannot be starved by a stream of single-slot ones: once it is at
// the head of the line, the pool drains to it.
type admission struct {
	mu    sync.Mutex
	cond  *sync.Cond
	free  int
	size  int
	waits int64 // acquisitions that had to block
	// observeWait, when set, receives the blocked duration of every
	// acquisition that had to wait (the admission-wait histogram).
	observeWait func(time.Duration)
	// FIFO tickets: an acquire proceeds only when it holds the serving
	// ticket AND enough slots are free. A waiter whose context is cancelled
	// before being served marks its ticket abandoned so the line advances
	// past it.
	nextTicket uint64
	serving    uint64
	abandoned  map[uint64]bool
}

func newAdmission(size int) *admission {
	a := &admission{free: size, size: size, abandoned: map[uint64]bool{}}
	a.cond = sync.NewCond(&a.mu)
	return a
}

// acquire claims n slots (clamped to the pool size so a degree larger than
// the pool still admits) and returns the granted count. Pair with release.
func (a *admission) acquire(n int) int {
	granted, _ := a.acquireCtx(context.Background(), n)
	return granted
}

// acquireCtx is acquire honoring cancellation: a waiter whose context is
// done leaves the line (abandoning its FIFO ticket) and returns ctx's error
// having claimed nothing, so a client that gives up on a saturated pool
// neither holds slots nor blocks the queries behind it.
func (a *admission) acquireCtx(ctx context.Context, n int) (int, error) {
	if n > a.size {
		n = a.size
	}
	if n < 1 {
		n = 1
	}
	if done := ctx.Done(); done != nil {
		// Wake the condition variable when the context fires. Taking the
		// lock before broadcasting pairs with the waiter's check-then-Wait
		// critical section, so the wakeup cannot be missed.
		defer context.AfterFunc(ctx, func() {
			a.mu.Lock()
			a.cond.Broadcast()
			a.mu.Unlock()
		})()
	}
	a.mu.Lock()
	ticket := a.nextTicket
	a.nextTicket++
	blocked := false
	var blockedAt time.Time
	for a.serving != ticket || a.free < n {
		if err := ctx.Err(); err != nil {
			if a.serving == ticket {
				a.advance()
			} else {
				a.abandoned[ticket] = true
			}
			a.mu.Unlock()
			a.cond.Broadcast()
			if blocked && a.observeWait != nil {
				a.observeWait(time.Since(blockedAt))
			}
			return 0, err
		}
		if !blocked {
			blocked = true
			blockedAt = time.Now()
			a.waits++
		}
		a.cond.Wait()
	}
	a.advance()
	a.free -= n
	a.mu.Unlock()
	a.cond.Broadcast() // hand the line to the next ticket holder
	if blocked && a.observeWait != nil {
		a.observeWait(time.Since(blockedAt))
	}
	return n, nil
}

// advance hands the line to the next still-waiting ticket holder (caller
// holds mu).
func (a *admission) advance() {
	a.serving++
	for a.abandoned[a.serving] {
		delete(a.abandoned, a.serving)
		a.serving++
	}
}

// freeSlots reports the currently unclaimed slots (tests assert the pool
// refills after cancelled streams).
func (a *admission) freeSlots() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.free
}

// release returns n slots to the pool.
func (a *admission) release(n int) {
	if n <= 0 {
		return
	}
	a.mu.Lock()
	a.free += n
	a.mu.Unlock()
	a.cond.Broadcast()
}

func (a *admission) waitCount() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.waits
}

// Service is the concurrent query service. See the package comment for the
// locking design.
type Service struct {
	cat   *catalog.Catalog
	store *storage.Store
	cache *PlanCache

	// ddl gates queries (read side) against DDL and data loads (write
	// side).
	ddl sync.RWMutex

	// admission is the worker-pool semaphore (one slot per query-local
	// worker).
	admission *admission

	// inflight dedupes concurrent plan-cache misses per key: the first
	// session to miss compiles, the rest wait for its result instead of
	// running engine.Prepare redundantly.
	prepMu   sync.Mutex
	inflight map[CacheKey]*prepCall

	// durable is the WAL/checkpoint state when the service runs over a
	// durable engine; nil for in-memory deployments. Log appends happen
	// inside Exec/CreateIndex, which already hold the DDL write gate, so
	// WAL record order always matches mutation commit order.
	durable *engine.Durability

	defaultParallelism int

	// Replication role state (repl.go). Services are leaders (read-write)
	// unless SetFollower flips them into a read-only replica; Promote flips
	// back at failover. replStatus reports the feeding follower's progress.
	replMu     sync.RWMutex
	role       Role
	leaderURL  string
	replStatus func() repl.Status

	mu       sync.Mutex // guards sessions, seq, and the stat counters below
	sessions map[string]*Session
	seq      int64

	queriesByMode    map[string]int64
	execs            int64
	queryErrors      int64
	queriesCancelled int64 // queries ended by cancellation or timeout
	prepareDeduped   int64 // prepares served from an in-flight compilation
	parallelQueries  int64 // queries admitted with a worker budget > 1
	morsels          int64 // morsels executed by parallel workers
	workerLaunches   int64 // parallel workers launched
	started          time.Time

	// metrics is the observability state: the /metrics registry, latency
	// histograms, trace-ID generator and slow-query log (see obs.go).
	metrics *serviceMetrics
}

// NewService builds a service over an existing catalog and store (usually
// taken from a bootstrap engine that loaded schema and data).
func NewService(cat *catalog.Catalog, store *storage.Store, opts Options) *Service {
	if opts.MaxConcurrent <= 0 {
		opts.MaxConcurrent = 32
	}
	s := &Service{
		cat:                cat,
		store:              store,
		cache:              NewPlanCache(opts.CacheSize),
		admission:          newAdmission(opts.MaxConcurrent),
		inflight:           map[CacheKey]*prepCall{},
		defaultParallelism: opts.DefaultParallelism,
		sessions:           map[string]*Session{},
		queriesByMode:      map[string]int64{},
		started:            time.Now(),
	}
	s.initObservability(opts)
	return s
}

// DefaultParallelism returns the degree applied to sessions that do not
// choose one explicitly.
func (s *Service) DefaultParallelism() int { return s.defaultParallelism }

// NewServiceFromEngine adopts a bootstrap engine's catalog and store, along
// with its durability layer when the engine was opened with OpenDurable.
func NewServiceFromEngine(e *engine.Engine, opts Options) *Service {
	s := NewService(e.Cat, e.Store, opts)
	s.durable = e.Durable
	if s.durable != nil {
		s.registerDurableMetrics()
	}
	return s
}

// Durable reports whether the service persists to a data directory.
func (s *Service) Durable() bool { return s.durable != nil }

// Checkpoint snapshots the shared catalog+store to disk and truncates the
// write-ahead log. It takes the exclusive side of the DDL gate, so it sees
// no in-flight queries or half-applied scripts — the snapshot is a
// consistent cut, at the cost of briefly stalling new statements (how
// briefly depends on data volume).
func (s *Service) Checkpoint() error {
	if s.durable == nil {
		return errors.New("service is volatile: no data directory configured")
	}
	held := s.admission.acquire(1)
	defer func() { s.admission.release(held) }()
	gateStart := time.Now()
	s.ddl.Lock()
	s.metrics.ddlWait.Observe(time.Since(gateStart))
	defer s.ddl.Unlock()
	start := time.Now()
	err := s.durable.Checkpoint()
	s.metrics.checkpointDur.Observe(time.Since(start))
	return err
}

// Catalog exposes the shared catalog (read-mostly; DDL goes through Exec).
func (s *Service) Catalog() *catalog.Catalog { return s.cat }

// Store exposes the shared storage (for tests and engine views over the
// same data; writes go through Exec).
func (s *Service) Store() *storage.Store { return s.store }

// Session is one client session: a named engine view with its own
// mode/profile/executor settings (and its own embedded-statement plan cache
// via the view's interpreter) over the service's shared data. Settings
// changes swap in a fresh engine view rather than mutating the old one, so
// in-flight queries on the previous view are unaffected.
type Session struct {
	ID string

	svc *Service

	mu      sync.Mutex
	eng     *engine.Engine
	queries int64
	created time.Time
	// timeout bounds each statement's execution (0 = none); it composes
	// with the caller's context (whichever fires first cancels the query).
	timeout time.Duration
	// txn is the session's open transaction (BEGIN without COMMIT yet), nil
	// otherwise. Queries on the session read the transaction's snapshot plus
	// its uncommitted rows while one is open.
	txn *engine.Txn
}

// CreateSession registers a new session with the given settings.
func (s *Service) CreateSession(profile engine.Profile, mode engine.Mode) *Session {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	sess := &Session{
		ID:      fmt.Sprintf("s%d", s.seq),
		svc:     s,
		eng:     engine.NewShared(s.cat, s.store, profile, mode),
		created: time.Now(),
	}
	s.sessions[sess.ID] = sess
	return sess
}

// Session looks a session up by ID. The empty ID resolves to a shared
// default session (created on first use with profile SYS1, mode rewrite).
func (s *Service) Session(id string) (*Session, bool) {
	if id == "" {
		return s.defaultSession(), true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	return sess, ok
}

const defaultSessionID = "default"

func (s *Service) defaultSession() *Session {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sess, ok := s.sessions[defaultSessionID]; ok {
		return sess
	}
	profile := engine.SYS1
	profile.Parallelism = s.defaultParallelism
	sess := &Session{
		ID:      defaultSessionID,
		svc:     s,
		eng:     engine.NewShared(s.cat, s.store, profile, engine.ModeRewrite),
		created: time.Now(),
	}
	s.sessions[defaultSessionID] = sess
	return sess
}

// CloseSession drops a session, rolling back any open transaction. Closing
// an unknown ID is a no-op.
func (s *Service) CloseSession(id string) {
	s.mu.Lock()
	sess := s.sessions[id]
	delete(s.sessions, id)
	s.mu.Unlock()
	if sess != nil {
		if txn := sess.takeTxn(); txn != nil {
			txn.Rollback()
		}
	}
}

// SessionCount returns the number of live sessions.
func (s *Service) SessionCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// Engine returns the session's current engine view.
func (sess *Session) Engine() *engine.Engine {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return sess.eng
}

// Txn returns the session's open transaction, or nil.
func (sess *Session) Txn() *engine.Txn {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return sess.txn
}

// beginTxn opens a transaction on the session (atomic check-and-set, so two
// racing BEGINs cannot both win).
func (sess *Session) beginTxn() error {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.txn != nil {
		return errors.New("BEGIN: transaction already in progress")
	}
	sess.txn = sess.eng.Begin()
	return nil
}

// takeTxn detaches and returns the open transaction (nil if none).
func (sess *Session) takeTxn() *engine.Txn {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	t := sess.txn
	sess.txn = nil
	return t
}

// Settings returns the session's current profile and mode.
func (sess *Session) Settings() (engine.Profile, engine.Mode) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return sess.eng.Profile, sess.eng.Mode
}

// swap installs a new engine view derived from the current settings via fn.
func (sess *Session) swap(fn func(profile engine.Profile, mode engine.Mode) (engine.Profile, engine.Mode)) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	profile, mode := fn(sess.eng.Profile, sess.eng.Mode)
	sess.eng = engine.NewShared(sess.svc.cat, sess.svc.store, profile, mode)
}

// SetMode switches the session's execution mode (subsequent queries only).
func (sess *Session) SetMode(m engine.Mode) {
	sess.swap(func(p engine.Profile, _ engine.Mode) (engine.Profile, engine.Mode) { return p, m })
}

// SetProfile switches the session's engine profile.
func (sess *Session) SetProfile(p engine.Profile) {
	sess.swap(func(old engine.Profile, m engine.Mode) (engine.Profile, engine.Mode) {
		p.Vectorized = old.Vectorized
		p.Parallelism = old.Parallelism
		return p, m
	})
}

// SetVectorized toggles the session's batch executor.
func (sess *Session) SetVectorized(on bool) {
	sess.swap(func(p engine.Profile, m engine.Mode) (engine.Profile, engine.Mode) {
		p.Vectorized = on
		return p, m
	})
}

// SetParallelism sets the session's intra-query worker degree (<= 1 serial;
// effective on the vectorized executor).
func (sess *Session) SetParallelism(n int) {
	sess.swap(func(p engine.Profile, m engine.Mode) (engine.Profile, engine.Mode) {
		p.Parallelism = n
		return p, m
	})
}

// SetTimeout sets the session's per-statement timeout (0 disables). It
// applies to queries started afterwards; in-flight statements keep their
// deadline.
func (sess *Session) SetTimeout(d time.Duration) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if d < 0 {
		d = 0
	}
	sess.timeout = d
}

// Timeout returns the session's per-statement timeout (0 = none).
func (sess *Session) Timeout() time.Duration {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return sess.timeout
}

// queryCtx derives the execution context for one statement: the caller's
// context plus the session statement timeout, if set. The returned cancel
// must be called when the statement finishes (stream close) to release the
// timer.
func (sess *Session) queryCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if ctx == nil {
		ctx = context.Background()
	}
	if d := sess.Timeout(); d > 0 {
		return context.WithTimeout(ctx, d)
	}
	return context.WithCancel(ctx)
}

// QueryCount returns the number of queries the session has run.
func (sess *Session) QueryCount() int64 {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return sess.queries
}

func (sess *Session) countQuery() {
	sess.mu.Lock()
	sess.queries++
	sess.mu.Unlock()
}

// QueryResult is an executed query with service-level metadata.
type QueryResult struct {
	*engine.Result
	// CacheHit reports whether the plan came from the shared cache.
	CacheHit bool
	// Elapsed is the end-to-end service time (plan lookup + execution).
	Elapsed time.Duration
	// TraceID identifies this query across the slow-query log and client
	// records (caller-supplied via WithTraceID, or service-generated).
	TraceID string
}

// workerBudget returns the admission slots a statement on this engine view
// may need: its intra-query workers on the vectorized parallel path, else 1.
func workerBudget(eng *engine.Engine) int {
	if eng.Profile.Vectorized && eng.Profile.Parallelism > 1 {
		return eng.Profile.Parallelism
	}
	return 1
}

// Query executes a SELECT through the session, materializing the full
// result. Equivalent to QueryContext with a background context.
func (s *Service) Query(sess *Session, sql string) (*QueryResult, error) {
	return s.QueryContext(context.Background(), sess, sql)
}

// QueryContext executes a SELECT to completion under ctx (plus the
// session's statement timeout). Cancellation mid-execution returns
// context.Canceled / DeadlineExceeded with the session's worker-budget
// slots returned to the pool.
func (s *Service) QueryContext(ctx context.Context, sess *Session, sql string) (*QueryResult, error) {
	st, err := s.QueryStream(ctx, sess, sql)
	if err != nil {
		return nil, err
	}
	res, err := st.Rows.Materialize()
	if err != nil {
		return nil, err
	}
	return &QueryResult{Result: res, CacheHit: st.CacheHit, Elapsed: time.Since(st.Started), TraceID: st.TraceID}, nil
}

// Stream is a streaming query result: a pull cursor plus service metadata.
// The cursor owns the session's worker-budget slots and a read hold on the
// DDL gate; both release when the stream ends (exhaustion, error, cancel)
// or when Close is called — callers that abandon a stream early MUST Close
// it, or DDL would block forever.
type Stream struct {
	Rows     *engine.Rows
	CacheHit bool
	Started  time.Time
	// TraceID identifies this query in the slow-query log (caller-supplied
	// via WithTraceID, or service-generated).
	TraceID string
}

// QueryStream starts a SELECT through the session and the shared plan
// cache, returning a streaming cursor: rows become visible as the plan
// produces them instead of after full materialization. A parallel session
// claims its worker degree from the admission pool up front (the degree is
// known before planning; acquiring after taking the ddl lock could deadlock
// against Exec, which acquires in the opposite order), then hands back the
// excess as soon as the compiled plan turns out serial — LIMIT/DISTINCT
// barriers, row-bridge shapes — so non-parallelizable workloads don't hold
// phantom workers during execution. Waiting for admission itself honors
// ctx, so a cancelled client leaves the queue without claiming slots.
func (s *Service) QueryStream(ctx context.Context, sess *Session, sql string) (*Stream, error) {
	return s.queryStream(ctx, sess, sql, false, false)
}

// QueryStreamPartial is QueryStream in shard-local partial-aggregate mode:
// the plan's root GROUP BY emits mergeable partial states (avg decomposed
// into sum+count) instead of final values, in the canonical
// keys-then-partials column layout the shard router's gather merges. Only
// plans whose root is a projection over an all-mergeable GROUP BY qualify;
// anything else fails at prepare time.
func (s *Service) QueryStreamPartial(ctx context.Context, sess *Session, sql string) (*Stream, error) {
	return s.queryStream(ctx, sess, sql, false, true)
}

// QueryStreamAnalyze is QueryStream with EXPLAIN ANALYZE instrumentation:
// once the stream ends, Stream.Rows.Analyze renders the per-operator plan
// tree. Rows are identical to an uninstrumented run.
func (s *Service) QueryStreamAnalyze(ctx context.Context, sess *Session, sql string) (*Stream, error) {
	return s.queryStream(ctx, sess, sql, true, false)
}

// ExplainAnalyze executes sql to completion with per-operator
// instrumentation and returns the annotated plan tree.
func (s *Service) ExplainAnalyze(ctx context.Context, sess *Session, sql string) (string, error) {
	st, err := s.QueryStreamAnalyze(ctx, sess, sql)
	if err != nil {
		return "", err
	}
	if _, err := st.Rows.Materialize(); err != nil {
		return "", err
	}
	return st.Rows.Analyze(), nil
}

func (s *Service) queryStream(ctx context.Context, sess *Session, sql string, analyze, partial bool) (*Stream, error) {
	traceID := s.nextTraceID(ctx)
	qctx, cancel := sess.queryCtx(ctx)
	eng := sess.Engine()
	waitStart := time.Now()
	held, err := s.admission.acquireCtx(qctx, workerBudget(eng))
	if err != nil {
		cancel()
		s.countQueryResult(eng.Mode, err, 1, nil)
		return nil, err
	}
	gateStart := time.Now()
	s.ddl.RLock()
	s.metrics.ddlWait.Observe(time.Since(gateStart))
	wait := time.Since(waitStart)

	start := time.Now()
	var prep *engine.Prepared
	var hit bool
	// finish runs exactly once per admitted query — on an error path here,
	// or through the cursor's OnClose hook once the stream is live.
	finish := func(qerr error, counters *exec.Counters, rowsReturned int64) {
		s.ddl.RUnlock()
		s.admission.release(held)
		cancel()
		s.countQueryResultCounters(eng.Mode, qerr, held, counters)
		elapsed := time.Since(start)
		s.metrics.queryDur.Observe(elapsed)
		s.maybeLogSlow(traceID, sess, eng, sql, prep, hit, wait, elapsed, rowsReturned, qerr)
	}

	prep, hit, err = s.prepare(eng, sql, partial)
	if err != nil {
		// Count with slots=1: the query never executed, so it must not
		// inflate the parallel_queries stat no matter the session's budget.
		s.ddl.RUnlock()
		s.admission.release(held)
		cancel()
		s.countQueryResultCounters(eng.Mode, err, 1, nil)
		return nil, err
	}
	if held > 1 && prep.Parallelism <= 1 {
		s.admission.release(held - 1)
		held = 1
	}
	// Inside an open session transaction, statements read the transaction's
	// pinned snapshot plus its own uncommitted rows; otherwise each statement
	// pins the store's current consistent cut (RunContextSnap with nil snap).
	var snap *storage.Snapshot
	var overlay map[*storage.Table][]storage.Row
	if txn := sess.Txn(); txn != nil {
		snap, overlay = txn.Snapshot(), txn.Overlay()
	}
	var rows *engine.Rows
	if analyze {
		rows, err = eng.RunContextAnalyze(qctx, prep, snap, overlay)
	} else {
		rows, err = eng.RunContextSnap(qctx, prep, snap, overlay)
	}
	if err != nil {
		finish(err, nil, 0)
		return nil, err
	}
	rows.OnClose(func(qerr error) {
		c := rows.Counters()
		finish(qerr, &c, rows.RowsReturned())
	})
	sess.countQuery()
	return &Stream{Rows: rows, CacheHit: hit, Started: start, TraceID: traceID}, nil
}

// Explain returns the plan description for a query, sharing the cache with
// Query (an EXPLAIN warms the cache for the later execution).
func (s *Service) Explain(sess *Session, sql string) (string, error) {
	held := s.admission.acquire(1)
	defer func() { s.admission.release(held) }()
	s.ddl.RLock()
	defer s.ddl.RUnlock()

	eng := sess.Engine()
	prep, _, err := s.prepare(eng, sql, false)
	if err != nil {
		return "", err
	}
	return prep.Describe(eng.Mode, eng.Profile.Vectorized), nil
}

// prepCall is one in-flight compilation; followers wait on done.
type prepCall struct {
	done chan struct{}
	prep *engine.Prepared
	err  error
}

// prepare fetches a plan from the shared cache or compiles and caches it.
// Concurrent misses on the same key are deduplicated: one session compiles
// while the rest wait for its Prepared (reported as a cache hit — they did
// not pay for planning). Callers hold the ddl read lock.
func (s *Service) prepare(eng *engine.Engine, sql string, partial bool) (*engine.Prepared, bool, error) {
	key := CacheKey{
		SQL:            NormalizeSQL(sql),
		Mode:           eng.Mode,
		Profile:        eng.Profile.Name,
		Vectorized:     eng.Profile.Vectorized,
		Parallelism:    eng.Profile.Parallelism,
		CatalogVersion: s.cat.Version(),
		Partial:        partial,
	}
	if prep, ok := s.cache.Get(key); ok {
		return prep, true, nil
	}
	s.prepMu.Lock()
	if c, ok := s.inflight[key]; ok {
		// Another session is compiling this exact plan: join it.
		s.prepMu.Unlock()
		<-c.done
		if c.err != nil {
			return nil, false, c.err
		}
		s.mu.Lock()
		s.prepareDeduped++
		s.mu.Unlock()
		return c.prep, true, nil
	}
	c := &prepCall{done: make(chan struct{})}
	s.inflight[key] = c
	s.prepMu.Unlock()

	if partial {
		c.prep, c.err = eng.PreparePartialAgg(sql)
	} else {
		c.prep, c.err = eng.Prepare(sql)
	}
	if c.err == nil {
		s.cache.Put(key, c.prep)
	}
	s.prepMu.Lock()
	delete(s.inflight, key)
	s.prepMu.Unlock()
	close(c.done)
	return c.prep, false, c.err
}

// Exec runs DDL, DML and transaction control (CREATE TABLE / CREATE
// FUNCTION / INSERT / BEGIN / COMMIT / ROLLBACK). Scripts containing DDL
// take the exclusive side of the DDL gate and invalidate the plan cache if
// the schema version changed; DML-only scripts run under the shared side,
// concurrently with queries (readers scan immutable snapshots, so appends
// cannot disturb them).
func (s *Service) Exec(sess *Session, script string) error {
	return s.ExecContext(context.Background(), sess, script)
}

// ExecContext is Exec honoring cancellation (and the session statement
// timeout): a cancelled script stops between statements, leaving the
// already-applied prefix in place — DDL is not transactional, exactly as a
// mid-script error behaves. Statements between BEGIN and COMMIT are the
// exception: they buffer in the session's transaction and publish
// atomically at COMMIT (or never).
func (s *Service) ExecContext(ctx context.Context, sess *Session, script string) error {
	parsed, err := parser.ParseScript(script)
	if err != nil {
		return err
	}
	if scriptMutates(parsed) {
		if err := s.rejectOnReplica(); err != nil {
			return err
		}
	}
	qctx, cancel := sess.queryCtx(ctx)
	defer cancel()
	held, err := s.admission.acquireCtx(qctx, 1)
	if err != nil {
		return err
	}
	defer func() { s.admission.release(held) }()
	defer func(start time.Time) {
		s.metrics.execDur.Observe(time.Since(start))
		s.mu.Lock()
		s.execs++
		s.mu.Unlock()
	}(time.Now())

	if !scriptHasDDL(parsed) {
		// DML and transaction control only: the shared side of the gate, so
		// writers run alongside readers (and alongside each other, which is
		// what lets the WAL group-commit batch their fsyncs).
		gateStart := time.Now()
		s.ddl.RLock()
		s.metrics.ddlWait.Observe(time.Since(gateStart))
		defer s.ddl.RUnlock()
		return s.execDML(qctx, sess, parsed)
	}

	if sess.Txn() != nil {
		return errors.New("cannot run DDL inside a transaction")
	}
	gateStart := time.Now()
	s.ddl.Lock()
	s.metrics.ddlWait.Observe(time.Since(gateStart))
	defer s.ddl.Unlock()
	before := s.cat.Version()
	err = sess.Engine().ExecParsedContext(qctx, parsed)
	if s.cat.Version() != before {
		// DDL happened (possibly partially, on error): drop stale plans.
		// Version-keying already makes them unreachable; purging frees them.
		s.cache.Purge()
	}
	return err
}

// scriptHasDDL reports whether the script contains schema statements.
func scriptHasDDL(script *ast.Script) bool {
	return len(script.Tables) > 0 || len(script.Functions) > 0
}

// scriptMutates reports whether the script would change state: DDL, INSERTs,
// or transaction control. Read-only replicas reject exactly these.
func scriptMutates(script *ast.Script) bool {
	if scriptHasDDL(script) {
		return true
	}
	for _, stmt := range script.Stmts {
		switch stmt.(type) {
		case *ast.InsertStmt, *ast.TxnStmt:
			return true
		}
	}
	return false
}

// execDML executes a DDL-free script's statements in order against the
// session, threading INSERTs through the session's open transaction when
// one is active. Caller holds the shared DDL gate.
func (s *Service) execDML(ctx context.Context, sess *Session, script *ast.Script) error {
	for _, stmt := range script.Stmts {
		if err := ctx.Err(); err != nil {
			return err
		}
		switch st := stmt.(type) {
		case *ast.InsertStmt:
			if txn := sess.Txn(); txn != nil {
				if err := txn.Insert(ctx, st); err != nil {
					return err
				}
			} else if err := sess.Engine().ExecInsert(ctx, st); err != nil {
				return err
			}
		case *ast.TxnStmt:
			switch st.Kind {
			case ast.TxnBegin:
				if err := sess.beginTxn(); err != nil {
					return err
				}
			case ast.TxnCommit:
				txn := sess.takeTxn()
				if txn == nil {
					return errors.New("COMMIT: no transaction in progress")
				}
				commitStart := time.Now()
				err := txn.Commit()
				s.metrics.txnCommitDur.Observe(time.Since(commitStart))
				if err != nil {
					return err
				}
			case ast.TxnRollback:
				txn := sess.takeTxn()
				if txn == nil {
					return errors.New("ROLLBACK: no transaction in progress")
				}
				txn.Rollback()
			}
		case *ast.SelectStmt:
			// Scripts ignore bare SELECTs, as ExecScript always has (queries
			// go through Query/QueryStream).
		}
	}
	return nil
}

// CreateIndex declares a secondary index (DDL: exclusive, invalidates).
func (s *Service) CreateIndex(table, col string) error {
	if err := s.rejectOnReplica(); err != nil {
		return err
	}
	held := s.admission.acquire(1)
	defer func() { s.admission.release(held) }()
	gateStart := time.Now()
	s.ddl.Lock()
	s.metrics.ddlWait.Observe(time.Since(gateStart))
	defer s.ddl.Unlock()
	before := s.cat.Version()
	if err := s.cat.AddIndex(table, col); err != nil {
		return err
	}
	if s.cat.Version() != before {
		s.cache.Purge()
	}
	return nil
}

func (s *Service) countQueryResult(mode engine.Mode, qerr error, slots int, res *engine.Result) {
	var c *exec.Counters
	if res != nil {
		c = &res.Counters
	}
	s.countQueryResultCounters(mode, qerr, slots, c)
}

// countQueryResultCounters records one finished (or failed) query.
// Cancellations and timeouts are their own outcome: they are expected under
// load shedding and client disconnects, so they must not pollute the error
// rate operators alert on.
func (s *Service) countQueryResultCounters(mode engine.Mode, qerr error, slots int, counters *exec.Counters) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if slots > 1 {
		s.parallelQueries++
	}
	if counters != nil {
		s.morsels += counters.Morsels
		s.workerLaunches += counters.Workers
	}
	switch {
	case qerr == nil:
		s.queriesByMode[mode.String()]++
	case errors.Is(qerr, context.Canceled) || errors.Is(qerr, context.DeadlineExceeded):
		s.queriesCancelled++
	default:
		s.queryErrors++
	}
}

// CacheStats snapshots the shared plan cache counters.
func (s *Service) CacheStats() CacheStats { return s.cache.Stats() }

// ParallelStats reports the intra-query parallel execution counters.
type ParallelStats struct {
	// WorkersConfigured is the admission pool size (the machine-wide worker
	// budget shared by concurrent statements and query-local workers).
	WorkersConfigured int `json:"workers_configured"`
	// ParallelQueries counts queries admitted with a worker budget > 1.
	ParallelQueries int64 `json:"parallel_queries"`
	// MorselsExecuted counts scan morsels processed by parallel workers.
	MorselsExecuted int64 `json:"morsels_executed"`
	// WorkerLaunches counts parallel workers spawned by exchange and
	// parallel-aggregation operators.
	WorkerLaunches int64 `json:"worker_launches"`
	// AdmissionWaits counts acquisitions that blocked on a full pool.
	AdmissionWaits int64 `json:"admission_waits"`
}

// Stats is the service-wide metrics snapshot served by /stats and udfsh's
// .stats command.
type Stats struct {
	Cache          CacheStats       `json:"cache"`
	Sessions       int              `json:"sessions"`
	CatalogVersion int64            `json:"catalog_version"`
	QueriesByMode  map[string]int64 `json:"queries_by_mode"`
	Queries        int64            `json:"queries"`
	Execs          int64            `json:"execs"`
	QueryErrors    int64            `json:"query_errors"`
	// QueriesCancelled counts queries ended by context cancellation or
	// statement timeout (client disconnects included); these are not errors.
	QueriesCancelled int64         `json:"queries_cancelled"`
	PrepareDeduped   int64         `json:"prepare_deduped"`
	Parallel         ParallelStats `json:"parallel"`
	// Durability reports WAL/checkpoint counters (wal_bytes, checkpoints,
	// recovered_records, ...); omitted for in-memory deployments.
	Durability *engine.DurabilityStats `json:"durability,omitempty"`
	// Storage reports the columnar store's physical shape (tables, published
	// segments, estimated column bytes) and the scan-path counters (zero-copy
	// versus pivoted row-major materializations).
	Storage       storage.StorageStats `json:"storage"`
	UptimeSeconds float64              `json:"uptime_seconds"`
	// QueryLatency summarizes the query-duration histogram (the full
	// distribution is on /metrics as udfd_query_duration_seconds).
	QueryLatency LatencyStats `json:"query_latency"`
	// SlowQueries counts queries at or above the slow-query threshold.
	SlowQueries int64 `json:"slow_queries"`
}

// Stats snapshots the service counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	byMode := make(map[string]int64, len(s.queriesByMode))
	var total int64
	for k, v := range s.queriesByMode {
		byMode[k] = v
		total += v
	}
	st := Stats{
		Sessions:         len(s.sessions),
		QueriesByMode:    byMode,
		Queries:          total,
		Execs:            s.execs,
		QueryErrors:      s.queryErrors,
		QueriesCancelled: s.queriesCancelled,
		PrepareDeduped:   s.prepareDeduped,
		Parallel: ParallelStats{
			WorkersConfigured: s.admission.size,
			ParallelQueries:   s.parallelQueries,
			MorselsExecuted:   s.morsels,
			WorkerLaunches:    s.workerLaunches,
		},
		UptimeSeconds: time.Since(s.started).Seconds(),
	}
	s.mu.Unlock()
	st.Parallel.AdmissionWaits = s.admission.waitCount()
	st.Cache = s.cache.Stats()
	st.CatalogVersion = s.cat.Version()
	st.QueryLatency = latencyStats(s.metrics.queryDur)
	st.SlowQueries = s.metrics.slowQueries.Value()
	if s.durable != nil {
		ds := s.durable.Stats()
		st.Durability = &ds
	}
	st.Storage = s.store.StorageStats()
	return st
}

// Format renders the stats as aligned text for the shell's .stats command.
func (st Stats) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan cache: %d/%d entries, %d hits, %d misses (%.1f%% hit rate), %d evictions, %d deduped prepares\n",
		st.Cache.Size, st.Cache.Capacity, st.Cache.Hits, st.Cache.Misses,
		100*st.Cache.HitRate(), st.Cache.Evictions, st.PrepareDeduped)
	fmt.Fprintf(&b, "catalog version: %d   sessions: %d   execs: %d   query errors: %d   cancelled: %d\n",
		st.CatalogVersion, st.Sessions, st.Execs, st.QueryErrors, st.QueriesCancelled)
	fmt.Fprintf(&b, "parallel: pool=%d workers, %d parallel queries, %d morsels, %d worker launches, %d admission waits\n",
		st.Parallel.WorkersConfigured, st.Parallel.ParallelQueries,
		st.Parallel.MorselsExecuted, st.Parallel.WorkerLaunches, st.Parallel.AdmissionWaits)
	fmt.Fprintf(&b, "latency: p50=%dµs p95=%dµs p99=%dµs over %d queries   slow queries: %d\n",
		st.QueryLatency.P50Micro, st.QueryLatency.P95Micro, st.QueryLatency.P99Micro,
		st.QueryLatency.Count, st.SlowQueries)
	if st.Durability != nil {
		fmt.Fprintf(&b, "durability: dir=%s wal=%d bytes (segs %d..%d), %d checkpoints, %d recovered records, fsync=%s\n",
			st.Durability.Dir, st.Durability.WALBytes, st.Durability.OldestSegment,
			st.Durability.NewestSegment, st.Durability.Checkpoints,
			st.Durability.RecoveredRecords, st.Durability.SyncPolicy)
	}
	fmt.Fprintf(&b, "storage: %d tables, %d segments, %d rows, %d column bytes, scans: %d zero-copy / %d pivoted\n",
		st.Storage.Tables, st.Storage.Segments, st.Storage.Rows, st.Storage.ColumnBytes,
		st.Storage.ZeroCopyScans, st.Storage.PivotedScans)
	modes := make([]string, 0, len(st.QueriesByMode))
	for m := range st.QueriesByMode {
		modes = append(modes, m)
	}
	sort.Strings(modes)
	fmt.Fprintf(&b, "queries: %d", st.Queries)
	for _, m := range modes {
		fmt.Fprintf(&b, "  %s=%d", m, st.QueriesByMode[m])
	}
	b.WriteString("\n")
	return b.String()
}

// ParseMode maps a mode name to an engine.Mode.
func ParseMode(name string) (engine.Mode, error) {
	switch strings.ToLower(name) {
	case "iterative":
		return engine.ModeIterative, nil
	case "rewrite":
		return engine.ModeRewrite, nil
	case "costbased", "cost-based":
		return engine.ModeCostBased, nil
	default:
		return 0, fmt.Errorf("unknown mode %q (want iterative|rewrite|costbased)", name)
	}
}

// ParseProfile maps a profile name to an engine.Profile.
func ParseProfile(name string) (engine.Profile, error) {
	switch strings.ToUpper(name) {
	case "SYS1":
		return engine.SYS1, nil
	case "SYS2":
		return engine.SYS2, nil
	default:
		return engine.Profile{}, fmt.Errorf("unknown profile %q (want sys1|sys2)", name)
	}
}
