package server

import (
	"container/list"
	"sync"

	"udfdecorr/internal/engine"
)

// CacheKey identifies one cached plan. Two sessions share a plan exactly
// when they agree on the normalized query text, the execution mode, the
// engine profile, the executor, and the catalog schema version; any DDL
// bumps the version, so stale plans become unreachable immediately (and the
// service additionally purges the cache to release the memory).
type CacheKey struct {
	SQL            string // normalized (see NormalizeSQL)
	Mode           engine.Mode
	Profile        string // profile name (SYS1/SYS2)
	Vectorized     bool
	Parallelism    int // intra-query degree (parallel plans differ structurally)
	CatalogVersion int64
	// Partial marks shard-local partial-aggregate plans (see
	// Service.QueryStreamPartial) — same SQL, structurally different plan,
	// so it must never collide with the final-aggregate entry.
	Partial bool
}

// CacheStats is a point-in-time snapshot of the cache counters.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Size      int   `json:"size"`
	Capacity  int   `json:"capacity"`
}

// HitRate returns hits/(hits+misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// PlanCache is a bounded, thread-safe LRU cache of prepared plans shared by
// all sessions of a Service. Cached engine.Prepared values are immutable
// (execution state flows through per-call contexts), so one entry may
// execute concurrently in many sessions.
type PlanCache struct {
	mu       sync.Mutex
	capacity int
	lru      *list.List // front = most recently used; values are *cacheEntry
	entries  map[CacheKey]*list.Element

	hits, misses, evictions int64
}

type cacheEntry struct {
	key  CacheKey
	plan *engine.Prepared
}

// NewPlanCache builds a cache holding at most capacity plans. A capacity
// <= 0 disables caching (every lookup misses, stores are dropped).
func NewPlanCache(capacity int) *PlanCache {
	return &PlanCache{
		capacity: capacity,
		lru:      list.New(),
		entries:  map[CacheKey]*list.Element{},
	}
}

// Get returns the cached plan for the key, marking it most recently used.
func (c *PlanCache) Get(key CacheKey) (*engine.Prepared, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).plan, true
}

// Put stores a plan, evicting the least recently used entry when full.
func (c *PlanCache) Put(key CacheKey, plan *engine.Prepared) {
	if c.capacity <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).plan = plan
		c.lru.MoveToFront(el)
		return
	}
	for c.lru.Len() >= c.capacity {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, plan: plan})
}

// Purge drops every entry (DDL invalidation); counters survive.
func (c *PlanCache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lru.Init()
	c.entries = map[CacheKey]*list.Element{}
}

// Stats snapshots the counters.
func (c *PlanCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Size:      c.lru.Len(),
		Capacity:  c.capacity,
	}
}
