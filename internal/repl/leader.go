// Package repl is the physical-replication subsystem: a leader ships its
// write-ahead log as an HTTP stream, and followers bootstrap from the
// leader's latest checkpoint, tail the stream, and apply records through
// the engine's recovery logic into their own catalog+store — MVCC read
// replicas whose visible state is always transaction-consistent.
//
// The wire protocol is deliberately dumb: /repl/snapshot is the raw bytes
// of checkpoint.snap (the follower parses it with the same code recovery
// uses), and /repl/wal?segment=N&offset=K is a run of whole CRC-framed
// records cut from the leader's durable prefix. Positions are (segment,
// byte offset) pairs in the leader's coordinate system; record-count
// headers let both sides compute replication lag in records exactly.
package repl

import (
	"errors"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"time"

	"udfdecorr/internal/wal"
)

// Wire protocol headers on /repl/wal responses.
const (
	// hdrSealed is "1" when the response's bytes reach the end of a sealed
	// segment: the reader advances to (segment+1, 0) after applying them.
	hdrSealed = "X-Repl-Sealed"
	// hdrTipSegment/hdrTipOffset name the leader's durable tip when the
	// response was cut.
	hdrTipSegment = "X-Repl-Tip-Segment"
	hdrTipOffset  = "X-Repl-Tip-Offset"
	// hdrTipRecords is the cumulative record count at the durable tip, and
	// hdrSegRecords the count at the requested segment's first byte; the
	// difference minus the frames a follower has applied inside the segment
	// is its lag, in records.
	hdrTipRecords = "X-Repl-Tip-Records"
	hdrSegRecords = "X-Repl-Segment-Records"
)

// maxWait caps a /repl/wal long-poll; followers re-poll immediately, so the
// cap only bounds how long a dead follower's request can pin a connection.
const maxWait = 30 * time.Second

// defaultChunk bounds one /repl/wal response body.
const defaultChunk = 1 << 20

// LeaderHandlers serves a leader's replication endpoints over its live WAL.
type LeaderHandlers struct {
	log *wal.Log
	dir string
}

// NewLeaderHandlers builds the handler set for a durable service's log and
// data directory.
func NewLeaderHandlers(log *wal.Log, dir string) *LeaderHandlers {
	return &LeaderHandlers{log: log, dir: dir}
}

// Register mounts the replication endpoints on a mux.
func (h *LeaderHandlers) Register(mux *http.ServeMux) {
	mux.HandleFunc("/repl/snapshot", h.serveSnapshot)
	mux.HandleFunc("/repl/wal", h.serveWAL)
}

// serveSnapshot streams the latest checkpoint image. 404 means the leader
// has never checkpointed: the follower starts empty at segment 1.
func (h *LeaderHandlers) serveSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "use GET", http.StatusMethodNotAllowed)
		return
	}
	// The snapshot file is replaced atomically by rename; reading it through
	// one open descriptor sees exactly one complete image.
	buf, err := os.ReadFile(wal.SnapshotPath(h.dir))
	if errors.Is(err, os.ErrNotExist) {
		http.Error(w, "no checkpoint yet", http.StatusNotFound)
		return
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(buf)))
	_, _ = w.Write(buf)
}

// serveWAL returns framed records from (segment, offset), long-polling at
// the durable tip for up to wait_ms. 410 Gone means the segment was
// checkpointed past the retention window and the follower must re-bootstrap.
func (h *LeaderHandlers) serveWAL(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "use GET", http.StatusMethodNotAllowed)
		return
	}
	q := r.URL.Query()
	seg, err := strconv.ParseUint(q.Get("segment"), 10, 64)
	if err != nil || seg == 0 {
		http.Error(w, "bad segment", http.StatusBadRequest)
		return
	}
	off, err := strconv.ParseInt(q.Get("offset"), 10, 64)
	if err != nil || off < 0 {
		http.Error(w, "bad offset", http.StatusBadRequest)
		return
	}
	maxBytes := defaultChunk
	if s := q.Get("max_bytes"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 && n <= 16<<20 {
			maxBytes = n
		}
	}
	var wait time.Duration
	if s := q.Get("wait_ms"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			wait = time.Duration(n) * time.Millisecond
			if wait > maxWait {
				wait = maxWait
			}
		}
	}
	deadline := time.Now().Add(wait)

	for {
		// Grab the watch channel BEFORE reading: a tip advance between the
		// read and the wait then fires the channel rather than being missed.
		watch := h.log.TipWatch()
		data, sealed, rerr := h.log.ReadSegment(seg, off, maxBytes)
		if rerr != nil {
			if errors.Is(rerr, wal.ErrSegmentGone) {
				http.Error(w, fmt.Sprintf("segment %d: %v", seg, rerr), http.StatusGone)
				return
			}
			http.Error(w, rerr.Error(), http.StatusBadRequest)
			return
		}
		if len(data) > 0 || sealed || wait == 0 || time.Now().After(deadline) {
			tip := h.log.StreamTip()
			hd := w.Header()
			hd.Set("Content-Type", "application/octet-stream")
			if sealed {
				hd.Set(hdrSealed, "1")
			} else {
				hd.Set(hdrSealed, "0")
			}
			hd.Set(hdrTipSegment, strconv.FormatUint(tip.Segment, 10))
			hd.Set(hdrTipOffset, strconv.FormatInt(tip.Offset, 10))
			hd.Set(hdrTipRecords, strconv.FormatInt(tip.Records, 10))
			if n, ok := h.log.SegmentStartRecords(seg); ok {
				hd.Set(hdrSegRecords, strconv.FormatInt(n, 10))
			}
			hd.Set("Content-Length", strconv.Itoa(len(data)))
			_, _ = w.Write(data)
			return
		}
		remain := time.Until(deadline)
		timer := time.NewTimer(remain)
		select {
		case <-watch:
			timer.Stop()
		case <-timer.C:
		case <-r.Context().Done():
			timer.Stop()
			return
		}
	}
}
