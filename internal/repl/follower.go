package repl

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"udfdecorr/internal/catalog"
	"udfdecorr/internal/engine"
	"udfdecorr/internal/storage"
	"udfdecorr/internal/wal"
)

// ErrFellBehind is the fatal tail error when the leader checkpointed past the
// follower's position (HTTP 410 / wal.ErrSegmentGone): the replica's state can
// no longer be completed from the stream and it must re-bootstrap from a fresh
// snapshot. Raise the leader's -wal-retain if this happens under normal load.
var ErrFellBehind = errors.New("repl: fell behind the leader's WAL retention window; restart the follower to re-bootstrap")

// Status is a point-in-time picture of a follower's replication progress,
// served on /healthz and exported as gauges on /metrics.
type Status struct {
	LeaderURL string `json:"leader_url"`
	// Segment/Offset is the next stream position to fetch (all bytes before
	// it have been applied).
	Segment uint64 `json:"segment"`
	Offset  int64  `json:"offset"`
	// AppliedRecords counts WAL records applied since bootstrap, including
	// those replayed from the snapshot image.
	AppliedRecords int64 `json:"applied_records"`
	// LagRecords is the leader's durable tip minus the applied position, in
	// records, as of the last stream response (-1 before the first response).
	LagRecords int64 `json:"lag_records"`
	// PendingTxns counts transactions with buffered-but-uncommitted inserts;
	// their rows are invisible until a commit record arrives.
	PendingTxns int `json:"pending_txns"`
	// LastError is the most recent transient stream error ("" when healthy);
	// Fatal marks an unrecoverable one (tail loop has exited).
	LastError string `json:"last_error,omitempty"`
	Fatal     bool   `json:"fatal,omitempty"`
}

// Follower bootstraps replica state from a leader's checkpoint and keeps it
// current by tailing the leader's WAL stream. All records flow through the
// same txid-buffered apply logic recovery uses, so uncommitted transaction
// suffixes are never visible on the replica.
type Follower struct {
	base   string // leader URL, no trailing slash
	client *http.Client
	cat    *catalog.Catalog
	store  *storage.Store
	rp     *engine.Replayer

	// gate serializes a DDL apply against in-flight replica reads (the
	// server's DDL write-lock); nil applies directly.
	gate func(func() error) error

	mu        sync.Mutex
	seg       uint64
	off       int64
	segBase   int64 // cumulative records at byte 0 of seg (from hdrSegRecords)
	segFrames int64 // frames applied within seg
	applied   int64
	lag       int64
	lastErr   string
	fatal     bool
}

// NewFollower prepares an empty replica fed from leaderURL. The catalog and
// store are fresh; hand them to engine.NewShared for the serving engine.
func NewFollower(leaderURL string, gate func(func() error) error) *Follower {
	cat := catalog.New()
	store := storage.NewStore()
	return &Follower{
		base:   strings.TrimRight(leaderURL, "/"),
		client: &http.Client{}, // long-poll responses: no client-wide timeout
		cat:    cat,
		store:  store,
		rp:     engine.NewReplayer(cat, store),
		gate:   gate,
		seg:    1,
		lag:    -1,
	}
}

// Catalog returns the replica's catalog (shared with the serving engine).
func (f *Follower) Catalog() *catalog.Catalog { return f.cat }

// Store returns the replica's storage (shared with the serving engine).
func (f *Follower) Store() *storage.Store { return f.store }

// Status reports the follower's current replication position and health.
func (f *Follower) Status() Status {
	f.mu.Lock()
	defer f.mu.Unlock()
	return Status{
		LeaderURL:      f.base,
		Segment:        f.seg,
		Offset:         f.off,
		AppliedRecords: f.applied,
		LagRecords:     f.lag,
		PendingTxns:    f.rp.PendingTxns(),
		LastError:      f.lastErr,
		Fatal:          f.fatal,
	}
}

// applyRecord routes one WAL record through the replayer, taking the DDL
// gate for schema changes so replica readers never observe a half-applied
// catalog mutation.
func (f *Follower) applyRecord(rec wal.Record) error {
	if f.gate != nil && engine.IsDDL(rec) {
		return f.gate(func() error { return f.rp.Apply(rec) })
	}
	return f.rp.Apply(rec)
}

// Bootstrap fetches the leader's latest checkpoint and replays it into the
// replica, leaving the follower positioned at the snapshot's first segment.
// A leader that has never checkpointed (404) starts the replica empty at
// segment 1 — the stream carries its whole history.
func (f *Follower) Bootstrap(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.base+"/repl/snapshot", nil)
	if err != nil {
		return err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return fmt.Errorf("repl: fetch snapshot from %s: %w", f.base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil // no checkpoint yet: start from the beginning of the log
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("repl: snapshot: leader returned %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("repl: snapshot: %w", err)
	}
	// Count records as they apply (not after), so a partial snapshot apply is
	// visible to the caller — retrying over it would duplicate rows.
	apply := func(rec wal.Record) error {
		if err := f.applyRecord(rec); err != nil {
			return err
		}
		f.mu.Lock()
		f.applied++
		f.mu.Unlock()
		return nil
	}
	_, firstSeg, err := wal.ParseSnapshot(buf, apply)
	if err != nil {
		return fmt.Errorf("repl: snapshot: %w", err)
	}
	f.mu.Lock()
	f.seg = firstSeg
	f.off = 0
	// The leader's record coordinates restart at the snapshot boundary
	// (snapshot contents are not part of the live log lineage), so the
	// stream position starts at record 0 of firstSeg.
	f.segBase = 0
	f.segFrames = 0
	f.mu.Unlock()
	return nil
}

// Run tails the leader's WAL stream until ctx is cancelled, applying each
// chunk as it arrives. Transient errors (leader restarting, network blips)
// are retried with backoff and surfaced in Status; ErrFellBehind and corrupt
// or mis-framed chunks are fatal and end the loop.
func (f *Follower) Run(ctx context.Context) error {
	backoff := 100 * time.Millisecond
	for {
		if err := ctx.Err(); err != nil {
			return nil
		}
		err := f.fetchOnce(ctx)
		if err == nil {
			backoff = 100 * time.Millisecond
			continue
		}
		if ctx.Err() != nil {
			return nil
		}
		if isFatal(err) {
			f.mu.Lock()
			f.lastErr = err.Error()
			f.fatal = true
			f.mu.Unlock()
			return err
		}
		f.mu.Lock()
		f.lastErr = err.Error()
		f.mu.Unlock()
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(backoff):
		}
		if backoff < 2*time.Second {
			backoff *= 2
		}
	}
}

func isFatal(err error) bool {
	return errors.Is(err, ErrFellBehind) || errors.Is(err, wal.ErrCorrupt) || errors.Is(err, errBadStream)
}

// errBadStream marks a protocol violation: the leader returned bytes that do
// not decode as whole frames. Retrying would re-apply a prefix, so it's fatal.
var errBadStream = errors.New("repl: leader sent a malformed WAL chunk")

// fetchOnce performs one long-poll round trip and applies whatever arrives.
func (f *Follower) fetchOnce(ctx context.Context) error {
	f.mu.Lock()
	seg, off := f.seg, f.off
	f.mu.Unlock()

	u := fmt.Sprintf("%s/repl/wal?segment=%d&offset=%d&wait_ms=%d", f.base, seg, off, 10_000)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return fmt.Errorf("repl: stream from %s: %w", f.base, err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		return fmt.Errorf("%w (leader dropped segment %d)", ErrFellBehind, seg)
	default:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("repl: stream: leader returned %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("repl: stream read: %w", err)
	}
	sealed := resp.Header.Get(hdrSealed) == "1"

	n, consumed, err := wal.ScanFrames(data, f.applyRecord)
	if err != nil {
		// A CRC failure or apply error after n applied frames: the position
		// advances past what WAS applied so a retry never double-applies.
		f.advance(n, consumed, false, resp.Header)
		return err
	}
	if consumed != int64(len(data)) {
		// The leader promises whole frames; a trailing partial means the
		// stream is broken (or not a WAL endpoint at all).
		f.advance(n, consumed, false, resp.Header)
		return fmt.Errorf("%w: %d trailing bytes do not frame", errBadStream, int64(len(data))-consumed)
	}
	f.advance(n, consumed, sealed, resp.Header)
	return nil
}

// advance moves the stream position by one applied chunk and recomputes lag
// from the response's tip headers (tip, segment base, and frames applied are
// all in the same record coordinate system).
func (f *Follower) advance(frames, bytes int64, sealed bool, hd http.Header) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.off += bytes
	f.segFrames += frames
	f.applied += frames
	if v := hd.Get(hdrSegRecords); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			f.segBase = n
		}
	}
	if v := hd.Get(hdrTipRecords); v != "" {
		if tip, err := strconv.ParseInt(v, 10, 64); err == nil {
			lag := tip - (f.segBase + f.segFrames)
			if lag < 0 {
				lag = 0
			}
			f.lag = lag
		}
	}
	f.lastErr = ""
	if sealed {
		f.seg++
		f.off = 0
		f.segBase += f.segFrames
		f.segFrames = 0
	}
}

// CatchupFromDir drains the tail of a dead leader's WAL straight from its
// data directory — the zero-loss half of promotion. It takes the directory's
// flock first: if the leader still runs, the lock fails loudly (with the
// holder hint) and promotion is refused rather than forking the timeline.
// Every fsynced — i.e. possibly acknowledged — record beyond the follower's
// streamed position is applied; a torn final frame (the leader died
// mid-write, so it was never acknowledged) is tolerated in the last segment
// only. Uncommitted transaction suffixes stay buffered and are never
// published. Returns the number of records recovered.
func (f *Follower) CatchupFromDir(dir string) (int64, error) {
	lock, err := wal.LockDir(dir)
	if err != nil {
		return 0, fmt.Errorf("repl: catch-up refused: %w", err)
	}
	defer lock.Close()

	segs, err := wal.SegmentFiles(dir)
	if err != nil {
		return 0, fmt.Errorf("repl: catch-up: %w", err)
	}
	f.mu.Lock()
	seg, off := f.seg, f.off
	f.mu.Unlock()

	var recovered int64
	for i, seq := range segs {
		if seq < seg {
			continue
		}
		if seq > seg {
			return recovered, fmt.Errorf("repl: catch-up: segment %d missing from %s (follower at %d)", seg, dir, seg)
		}
		buf, err := os.ReadFile(wal.SegmentFilePath(dir, seq))
		if err != nil {
			return recovered, fmt.Errorf("repl: catch-up: %w", err)
		}
		if off > int64(len(buf)) {
			return recovered, fmt.Errorf("repl: catch-up: follower offset %d beyond segment %d (%d bytes)", off, seq, len(buf))
		}
		n, consumed, err := wal.ScanFrames(buf[off:], f.applyRecord)
		recovered += n
		if err != nil {
			return recovered, fmt.Errorf("repl: catch-up: segment %d: %w", seq, err)
		}
		if off+consumed != int64(len(buf)) && i != len(segs)-1 {
			return recovered, fmt.Errorf("repl: catch-up: torn record inside non-final segment %d", seq)
		}
		off += consumed
		if i != len(segs)-1 {
			seg, off = seq+1, 0
		}
	}

	f.mu.Lock()
	f.seg = seg
	f.off = off
	f.applied += recovered
	f.lag = 0
	f.mu.Unlock()
	return recovered, nil
}
