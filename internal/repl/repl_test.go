// End-to-end replication tests: a leader's live WAL served over HTTP, a
// follower bootstrapping from its checkpoint, tailing the stream into its
// own catalog+store, and draining a dead leader's directory at promotion.
package repl_test

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"udfdecorr/internal/repl"
	"udfdecorr/internal/sqltypes"
	"udfdecorr/internal/wal"
)

func openLog(t *testing.T, dir string, opts wal.Options) *wal.Log {
	t.Helper()
	l, _, err := wal.Open(dir, opts, func(wal.Record) error { return nil })
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	return l
}

func serveLeader(t *testing.T, l *wal.Log, dir string) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	repl.NewLeaderHandlers(l, dir).Register(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func kvRow(k int64, v string) []sqltypes.Value {
	return []sqltypes.Value{sqltypes.NewInt(k), sqltypes.NewString(v)}
}

// waitApplied polls the follower until it has applied n records.
func waitApplied(t *testing.T, f *repl.Follower, n int64) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		st := f.Status()
		if st.AppliedRecords >= n {
			if st.AppliedRecords > n {
				t.Fatalf("follower applied %d records, want %d", st.AppliedRecords, n)
			}
			return
		}
		if st.Fatal {
			t.Fatalf("follower tail died: %s", st.LastError)
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower stalled at %d/%d applied records (err=%q)", st.AppliedRecords, n, st.LastError)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func followerRows(t *testing.T, f *repl.Follower, table string) int {
	t.Helper()
	tb, ok := f.Store().Table(table)
	if !ok {
		t.Fatalf("follower has no table %q", table)
	}
	return tb.RowCount()
}

// TestFollowerTailsLiveLeader: bootstrap from an empty leader (no checkpoint
// yet → 404 → start at the log's beginning), then tail DDL, plain inserts, a
// committed transaction, and an uncommitted suffix across segment rotations.
// The uncommitted transaction must never surface in the replica's store.
func TestFollowerTailsLiveLeader(t *testing.T) {
	dir := t.TempDir()
	l := openLog(t, dir, wal.Options{Sync: wal.SyncAlways, SegmentBytes: 512, RetainSegments: 8})
	defer l.Close()
	srv := serveLeader(t, l, dir)

	f := repl.NewFollower(srv.URL, nil)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := f.Bootstrap(ctx); err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- f.Run(ctx) }()

	records := []wal.Record{
		wal.DDLRecord("create table kv (k int primary key, v varchar);"),
		wal.InsertRecord("kv", [][]sqltypes.Value{kvRow(1, "a"), kvRow(2, "b")}),
		wal.BeginRecord(7),
		wal.TxnInsertRecord(7, "kv", [][]sqltypes.Value{kvRow(3, "c")}),
		wal.TxnInsertRecord(7, "kv", [][]sqltypes.Value{kvRow(4, "d")}),
		wal.CommitRecord(7),
		wal.BeginRecord(8),
		wal.TxnInsertRecord(8, "kv", [][]sqltypes.Value{kvRow(99, "never-committed")}),
	}
	for _, rec := range records {
		if err := l.AppendAll(rec); err != nil {
			t.Fatal(err)
		}
	}
	waitApplied(t, f, int64(len(records)))

	if got := followerRows(t, f, "kv"); got != 4 {
		t.Fatalf("replica kv has %d rows, want 4 (2 plain + 2 committed)", got)
	}
	st := f.Status()
	if st.PendingTxns != 1 {
		t.Fatalf("pending txns = %d, want 1 (the uncommitted suffix)", st.PendingTxns)
	}
	if st.LagRecords != 0 {
		t.Fatalf("lag = %d records, want 0 at the tip", st.LagRecords)
	}
	if _, ok := f.Catalog().Table("kv"); !ok {
		t.Fatal("replica catalog missing table kv")
	}

	cancel()
	if err := <-done; err != nil {
		t.Fatalf("Run returned %v after cancel", err)
	}
}

// TestFollowerBootstrapsFromCheckpoint: state checkpointed before the
// follower ever connects arrives via /repl/snapshot; the stream then only
// carries the post-checkpoint suffix.
func TestFollowerBootstrapsFromCheckpoint(t *testing.T) {
	dir := t.TempDir()
	l := openLog(t, dir, wal.Options{Sync: wal.SyncAlways, RetainSegments: 8})
	defer l.Close()
	srv := serveLeader(t, l, dir)

	if err := l.AppendAll(
		wal.DDLRecord("create table kv (k int primary key, v varchar);"),
		wal.InsertRecord("kv", [][]sqltypes.Value{kvRow(1, "a")}),
	); err != nil {
		t.Fatal(err)
	}
	// Checkpoint re-emits the logical state the log's records built (the
	// engine does exactly this from its catalog+store).
	err := l.Checkpoint(func(write func(wal.Record) error) error {
		if err := write(wal.DDLRecord("create table kv (k int primary key, v varchar);")); err != nil {
			return err
		}
		return write(wal.InsertRecord("kv", [][]sqltypes.Value{kvRow(1, "a")}))
	})
	if err != nil {
		t.Fatal(err)
	}

	f := repl.NewFollower(srv.URL, nil)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := f.Bootstrap(ctx); err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	if got := followerRows(t, f, "kv"); got != 1 {
		t.Fatalf("post-bootstrap replica has %d rows, want 1", got)
	}
	go f.Run(ctx)

	if err := l.AppendAll(wal.InsertRecord("kv", [][]sqltypes.Value{kvRow(2, "b")})); err != nil {
		t.Fatal(err)
	}
	// 2 snapshot records + 1 streamed.
	waitApplied(t, f, 3)
	if got := followerRows(t, f, "kv"); got != 2 {
		t.Fatalf("replica has %d rows, want 2", got)
	}
}

// TestPromotionCatchupFromDeadLeaderDir: the follower saw a prefix of the
// stream when the leader died. Catch-up takes the dead directory's flock,
// drains every complete fsynced frame beyond the follower's position —
// including a torn final write, which is truncated, and an uncommitted txn
// suffix, which stays invisible — and leaves the replica at zero loss.
func TestPromotionCatchupFromDeadLeaderDir(t *testing.T) {
	dir := t.TempDir()
	l := openLog(t, dir, wal.Options{Sync: wal.SyncAlways, SegmentBytes: 512, RetainSegments: 8})
	srv := serveLeader(t, l, dir)

	prefix := []wal.Record{
		wal.DDLRecord("create table kv (k int primary key, v varchar);"),
		wal.InsertRecord("kv", [][]sqltypes.Value{kvRow(1, "a")}),
	}
	for _, rec := range prefix {
		if err := l.AppendAll(rec); err != nil {
			t.Fatal(err)
		}
	}

	f := repl.NewFollower(srv.URL, nil)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := f.Bootstrap(ctx); err != nil {
		t.Fatal(err)
	}
	tailCtx, stopTail := context.WithCancel(ctx)
	done := make(chan error, 1)
	go func() { done <- f.Run(tailCtx) }()
	waitApplied(t, f, int64(len(prefix)))
	stopTail()
	<-done

	// The leader accepts (and fsyncs = acks) more writes the follower never
	// streams, including an uncommitted transaction, then dies.
	suffix := []wal.Record{
		wal.InsertRecord("kv", [][]sqltypes.Value{kvRow(2, "b"), kvRow(3, "c")}),
		wal.BeginRecord(5),
		wal.TxnInsertRecord(5, "kv", [][]sqltypes.Value{kvRow(4, "d")}),
		wal.CommitRecord(5),
		wal.BeginRecord(6),
		wal.TxnInsertRecord(6, "kv", [][]sqltypes.Value{kvRow(99, "uncommitted")}),
	}
	for _, rec := range suffix {
		if err := l.AppendAll(rec); err != nil {
			t.Fatal(err)
		}
	}
	// While the "leader" is alive, catch-up must refuse loudly.
	if _, err := f.CatchupFromDir(dir); err == nil {
		t.Fatal("CatchupFromDir succeeded while the leader holds the flock")
	}
	l.Close() // kill -9: flock released, files as fsynced
	// A torn final write: the leader died mid-append of a frame that was
	// never acknowledged.
	segs, err := wal.SegmentFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	last := wal.SegmentFilePath(dir, segs[len(segs)-1])
	lf, err := os.OpenFile(last, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// A frame header claiming a 42-byte body, with only 5 body bytes present.
	if _, err := lf.Write([]byte{0, 0, 0, 42, 0xde, 0xad, 0xbe, 0xef, 1, 2, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	lf.Close()

	recovered, err := f.CatchupFromDir(dir)
	if err != nil {
		t.Fatalf("CatchupFromDir: %v", err)
	}
	if recovered != int64(len(suffix)) {
		t.Fatalf("recovered %d records, want %d", recovered, len(suffix))
	}
	if got := followerRows(t, f, "kv"); got != 4 {
		t.Fatalf("promoted replica has %d rows, want 4 (uncommitted txn invisible)", got)
	}
	if st := f.Status(); st.PendingTxns != 1 || st.LagRecords != 0 {
		t.Fatalf("status after catch-up: pending=%d lag=%d, want 1/0", st.PendingTxns, st.LagRecords)
	}
}

// TestFollowerFellBehindIsFatal: a leader that checkpointed past the
// follower's position serves 410; the tail loop must die with ErrFellBehind
// rather than retrying forever against a hole in history.
func TestFollowerFellBehindIsFatal(t *testing.T) {
	dir := t.TempDir()
	l := openLog(t, dir, wal.Options{Sync: wal.SyncAlways, SegmentBytes: 256})
	defer l.Close()
	srv := serveLeader(t, l, dir)

	f := repl.NewFollower(srv.URL, nil)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := f.Bootstrap(ctx); err != nil {
		t.Fatal(err)
	}
	// The leader moves on without the follower: many appends, then a
	// retention-free checkpoint deletes everything below the new segment.
	for i := 0; i < 30; i++ {
		if err := l.AppendAll(wal.DDLRecord(fmt.Sprintf("create table t%d (k int); -- padding padding", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Checkpoint(func(write func(wal.Record) error) error { return nil }); err != nil {
		t.Fatal(err)
	}

	err := f.Run(ctx)
	if !errors.Is(err, repl.ErrFellBehind) {
		t.Fatalf("Run returned %v, want ErrFellBehind", err)
	}
	if st := f.Status(); !st.Fatal {
		t.Fatal("status does not mark the fell-behind tail as fatal")
	}
}
