package core

import (
	"strings"
	"testing"

	"udfdecorr/internal/algebra"
	"udfdecorr/internal/catalog"
	"udfdecorr/internal/sqltypes"
)

func testRewriter() *Rewriter { return NewRewriter(catalog.New()) }

func scanT(alias string, cols ...string) *algebra.Scan {
	s := &algebra.Scan{Table: "t_" + alias, Alias: alias}
	for _, c := range cols {
		s.Cols = append(s.Cols, algebra.Column{Qual: alias, Name: c, Type: sqltypes.KindInt})
	}
	return s
}

func col(qual, name string) *algebra.ColRef { return &algebra.ColRef{Qual: qual, Name: name} }

func intC(v int64) *algebra.Const { return &algebra.Const{Val: sqltypes.NewInt(v)} }

func eq(l, r algebra.Expr) *algebra.Cmp { return &algebra.Cmp{Op: sqltypes.CmpEQ, L: l, R: r} }

// ---------------------------------------------------------------------------
// Table II rules
// ---------------------------------------------------------------------------

func TestRuleR1(t *testing.T) {
	r := scanT("r", "a")
	if out, ok := ruleR1ApplySingle(testRewriter(), &algebra.Apply{Kind: algebra.CrossJoin, L: r, R: &algebra.Single{}}); !ok || out != algebra.Rel(r) {
		t.Error("r A× S should be r")
	}
	if out, ok := ruleR1ApplySingle(testRewriter(), &algebra.Apply{Kind: algebra.CrossJoin, L: &algebra.Single{}, R: r}); !ok || out != algebra.Rel(r) {
		t.Error("S A× r should be r")
	}
	// Not for semijoin.
	if _, ok := ruleR1ApplySingle(testRewriter(), &algebra.Apply{Kind: algebra.SemiJoin, L: r, R: &algebra.Single{}}); ok {
		t.Error("R1 must not fire for semijoin")
	}
	// Not with binds pending.
	a := &algebra.Apply{Kind: algebra.CrossJoin, L: r, R: &algebra.Single{},
		Binds: []algebra.Bind{{Param: "p", Arg: col("r", "a")}}}
	if _, ok := ruleR1ApplySingle(testRewriter(), a); ok {
		t.Error("R1 must not fire while binds remain")
	}
}

func TestRuleR2(t *testing.T) {
	// r AM Π_{a+1 as a}(S)  →  Π_{(a+1) as a, b}(r)
	r := scanUnqual("a", "b")
	am := &algebra.ApplyMerge{
		Assigns: []algebra.MergeAssign{{Target: "a", Source: "a"}},
		L:       r,
		R: &algebra.Project{Cols: []algebra.ProjCol{{
			E: &algebra.Arith{Op: sqltypes.OpAdd, L: col("", "a"), R: intC(1)}, As: "a"}},
			In: &algebra.Single{}},
	}
	out, ok := ruleR2MergeProjectSingle(testRewriter(), am)
	if !ok {
		t.Fatal("R2 should fire")
	}
	p, ok := out.(*algebra.Project)
	if !ok || len(p.Cols) != 2 {
		t.Fatalf("R2 result: %s", algebra.Print(out))
	}
	if _, isArith := p.Cols[0].E.(*algebra.Arith); !isArith {
		t.Errorf("assigned column should carry the expression, got %s", p.Cols[0].E)
	}
	if ref, isRef := p.Cols[1].E.(*algebra.ColRef); !isRef || ref.Name != "b" {
		t.Errorf("unassigned column should pass through, got %s", p.Cols[1].E)
	}
}

// scanUnqual builds a relation with unqualified columns (variable chains).
func scanUnqual(cols ...string) algebra.Rel {
	pc := make([]algebra.ProjCol, len(cols))
	for i, c := range cols {
		pc[i] = algebra.ProjCol{E: intC(int64(i)), As: c}
	}
	return &algebra.Project{Cols: pc, In: &algebra.Single{}}
}

func TestRuleR3(t *testing.T) {
	inner := &algebra.Project{Cols: []algebra.ProjCol{
		{E: &algebra.Arith{Op: sqltypes.OpMul, L: col("r", "a"), R: intC(2)}, As: "x"},
	}, In: scanT("r", "a")}
	outer := &algebra.Project{Cols: []algebra.ProjCol{
		{E: &algebra.Arith{Op: sqltypes.OpAdd, L: col("", "x"), R: intC(1)}, As: "y"},
	}, In: inner}
	out, ok := ruleR3ProjectCompose(testRewriter(), outer)
	if !ok {
		t.Fatal("R3 should fire")
	}
	p := out.(*algebra.Project)
	if p.Cols[0].E.String() != "((r.a * 2) + 1)" {
		t.Errorf("composed expr = %s", p.Cols[0].E)
	}
	if _, isScan := p.In.(*algebra.Scan); !isScan {
		t.Errorf("inner projection should be gone")
	}
}

func TestRuleR4(t *testing.T) {
	// General AM over a non-Single right child becomes Π(r A× rename(e)).
	r := scanUnqual("v", "w")
	rhs := &algebra.GroupBy{Aggs: []algebra.AggCall{{Func: "sum", Args: []algebra.Expr{col("s", "x")}, As: "v"}},
		In: scanT("s", "x")}
	am := &algebra.ApplyMerge{L: r, R: rhs} // default assigns: common name "v"
	out, ok := ruleR4MergeRemoval(testRewriter(), am)
	if !ok {
		t.Fatal("R4 should fire")
	}
	p, isProj := out.(*algebra.Project)
	if !isProj {
		t.Fatalf("R4 result should be a projection:\n%s", algebra.Print(out))
	}
	if len(p.Cols) != 2 || p.Cols[0].As != "v" || p.Cols[1].As != "w" {
		t.Errorf("projection must preserve left schema order: %s", p.Describe())
	}
	apply, isApply := p.In.(*algebra.Apply)
	if !isApply || apply.Kind != algebra.LeftOuterJoin {
		t.Fatalf("R4 should produce a left-outer Apply (NULL-assigning AM semantics)")
	}
	// The inner outputs must be renamed to avoid capture.
	innerProj := apply.R.(*algebra.Project)
	if innerProj.Cols[0].As == "v" {
		t.Error("inner output should be alpha-renamed")
	}
}

func TestRuleR6Structure(t *testing.T) {
	// AMC whose predicate tests a variable the branches do not assign.
	in := scanUnqual("x", "y")
	pred := &algebra.Cmp{Op: sqltypes.CmpGT, L: col("", "y"), R: intC(0)}
	thenRel := &algebra.Project{Cols: []algebra.ProjCol{{E: intC(1), As: "x"}}, In: &algebra.Single{}}
	elseRel := &algebra.Project{Cols: []algebra.ProjCol{{E: intC(2), As: "x"}}, In: &algebra.Single{}}
	amc := &algebra.CondApplyMerge{Pred: pred, Then: thenRel, Else: elseRel, In: in}

	out, ok := ruleR6CondMergeUnion(testRewriter(), amc)
	if !ok {
		t.Fatal("R6 should fire")
	}
	am, isAM := out.(*algebra.ApplyMerge)
	if !isAM {
		t.Fatalf("R6 result should be ApplyMerge:\n%s", algebra.Print(out))
	}
	if _, isUnion := am.R.(*algebra.UnionAll); !isUnion {
		t.Fatalf("R6 inner should be a union")
	}
	if len(am.Assigns) != 1 || am.Assigns[0].Target != "x" {
		t.Errorf("assignments = %+v", am.Assigns)
	}
	// The branch outputs are alpha-renamed so the selections cannot
	// capture them.
	if am.Assigns[0].Source == "x" {
		t.Error("branch output should be renamed")
	}
}

func TestRuleR6BailsOnCapture(t *testing.T) {
	// Predicate references the assigned variable: σ above the branch would
	// see the new value; the rule must decline.
	in := scanUnqual("x")
	pred := &algebra.Cmp{Op: sqltypes.CmpGT, L: col("", "x"), R: intC(0)}
	thenRel := &algebra.Project{Cols: []algebra.ProjCol{{E: intC(1), As: "x"}}, In: &algebra.Single{}}
	amc := &algebra.CondApplyMerge{Pred: pred, Then: thenRel, In: in}
	if _, ok := ruleR6CondMergeUnion(testRewriter(), amc); ok {
		t.Error("R6 must bail when the predicate references a branch-bound name")
	}
}

func TestRuleR7(t *testing.T) {
	// Canonical R7 input: Π_{e1 as a}(σ_{p}(r)) ∪ Π_{e2 as a}(σ_{¬p}(r)).
	pred := &algebra.Cmp{Op: sqltypes.CmpGT, L: col("", "y"), R: intC(0)}
	mk := func(v int64, p algebra.Expr) *algebra.Project {
		return &algebra.Project{
			Cols: []algebra.ProjCol{{E: intC(v), As: "a"}},
			In:   &algebra.Select{Pred: p, In: &algebra.Single{}},
		}
	}
	union := &algebra.UnionAll{L: mk(1, pred), R: mk(2, &algebra.Not{E: pred})}
	out, ok := ruleR7UnionToCase(testRewriter(), union)
	if !ok {
		t.Fatal("R7 should fire on complementary selections")
	}
	proj := out.(*algebra.Project)
	if _, isCase := proj.Cols[0].E.(*algebra.Case); !isCase {
		t.Errorf("R7 should produce a conditional projection, got %s", proj.Cols[0].E)
	}
	// Non-complementary predicates must not fire.
	bad := &algebra.UnionAll{L: mk(1, pred), R: mk(2, pred)}
	if _, ok := ruleR7UnionToCase(testRewriter(), bad); ok {
		t.Error("R7 must require mutually exclusive predicates")
	}
}

func TestRuleR8(t *testing.T) {
	in := scanUnqual("level", "total")
	pred := &algebra.Cmp{Op: sqltypes.CmpGT, L: col("", "total"), R: intC(100)}
	thenRel := &algebra.Project{Cols: []algebra.ProjCol{{E: &algebra.Const{Val: sqltypes.NewString("Gold")}, As: "level"}}, In: &algebra.Single{}}
	amc := &algebra.CondApplyMerge{Pred: pred, Then: thenRel, In: in} // no else: keep value
	out, ok := ruleR8CondMergeScalar(testRewriter(), amc)
	if !ok {
		t.Fatal("R8 should fire")
	}
	p := out.(*algebra.Project)
	cse, isCase := p.Cols[0].E.(*algebra.Case)
	if !isCase {
		t.Fatalf("level should become CASE, got %s", p.Cols[0].E)
	}
	// Missing else branch keeps the existing value.
	if ref, isRef := cse.Else.(*algebra.ColRef); !isRef || ref.Name != "level" {
		t.Errorf("else arm should reference the old value, got %s", cse.Else)
	}
	if ref, isRef := p.Cols[1].E.(*algebra.ColRef); !isRef || ref.Name != "total" {
		t.Errorf("unassigned column should pass through, got %s", p.Cols[1].E)
	}
}

func TestRuleR9(t *testing.T) {
	r := scanT("r", "a")
	inner := &algebra.Select{
		Pred: eq(col("s", "x"), &algebra.ParamRef{Name: "p"}),
		In:   scanT("s", "x"),
	}
	a := &algebra.Apply{Kind: algebra.CrossJoin,
		Binds: []algebra.Bind{{Param: "p", Arg: col("r", "a")}}, L: r, R: inner}
	out, ok := ruleR9BindRemoval(testRewriter(), a)
	if !ok {
		t.Fatal("R9 should fire")
	}
	na := out.(*algebra.Apply)
	if len(na.Binds) != 0 {
		t.Error("binds should be gone")
	}
	if algebra.HasFreeParams(na.R) {
		t.Error("params should be substituted")
	}
	free := algebra.FreeRefs(na.R)
	if !free[algebra.Ref{Qual: "r", Name: "a"}] {
		t.Errorf("inner should now reference r.a: %v", free.Sorted())
	}
}

func TestRuleR5(t *testing.T) {
	// (Π_{a, a*2 as d}(r)) A× e where e uses only pass-through column a.
	r := scanT("r", "a")
	lproj := &algebra.Project{Cols: []algebra.ProjCol{
		{E: col("r", "a"), As: "a"},
		{E: &algebra.Arith{Op: sqltypes.OpMul, L: col("r", "a"), R: intC(2)}, As: "d"},
	}, In: r}
	inner := &algebra.Select{Pred: eq(col("s", "x"), col("", "a")), In: scanT("s", "x")}
	a := &algebra.Apply{Kind: algebra.CrossJoin, L: lproj, R: inner}
	out, ok := ruleR5ProjectPastApply(testRewriter(), a)
	if !ok {
		t.Fatal("R5 should fire")
	}
	p := out.(*algebra.Project)
	if _, isApply := p.In.(*algebra.Apply); !isApply {
		t.Fatalf("R5 should move the projection above the apply:\n%s", algebra.Print(out))
	}
	// e referencing the computed column d blocks the rule.
	innerBad := &algebra.Select{Pred: eq(col("s", "x"), col("", "d")), In: scanT("s", "x")}
	if _, ok := ruleR5ProjectPastApply(testRewriter(), &algebra.Apply{Kind: algebra.CrossJoin, L: lproj, R: innerBad}); ok {
		t.Error("R5 must not fire when e uses a computed attribute")
	}
}

// ---------------------------------------------------------------------------
// Table I rules
// ---------------------------------------------------------------------------

func TestRuleK1(t *testing.T) {
	r := scanT("r", "a")
	e := scanT("s", "x") // uncorrelated
	out, ok := ruleK1K2ApplyToJoin(testRewriter(), &algebra.Apply{Kind: algebra.LeftOuterJoin, L: r, R: e})
	if !ok {
		t.Fatal("K1 should fire")
	}
	j := out.(*algebra.Join)
	if j.Kind != algebra.LeftOuterJoin || j.Cond != nil {
		t.Errorf("K1 result: %s", j.Describe())
	}
}

func TestRuleK2(t *testing.T) {
	r := scanT("r", "a")
	inner := &algebra.Select{Pred: eq(col("s", "x"), col("r", "a")), In: scanT("s", "x")}
	out, ok := ruleK1K2ApplyToJoin(testRewriter(), &algebra.Apply{Kind: algebra.CrossJoin, L: r, R: inner})
	if !ok {
		t.Fatal("K2 should fire")
	}
	j := out.(*algebra.Join)
	if j.Kind != algebra.InnerJoin || j.Cond == nil {
		t.Errorf("K2 result: %s", j.Describe())
	}
	// Correlated below the selection blocks both K1 and K2.
	deepCorr := &algebra.Select{Pred: eq(col("s2", "y"), intC(1)),
		In: &algebra.Select{Pred: eq(col("s", "x"), col("r", "a")), In: scanT("s", "x")}}
	if _, ok := ruleK1K2ApplyToJoin(testRewriter(), &algebra.Apply{Kind: algebra.CrossJoin, L: r, R: deepCorr}); ok {
		t.Error("K2 must not fire when the selection input is correlated")
	}
}

func TestRuleK3K4(t *testing.T) {
	r := scanT("r", "a")
	sel := &algebra.Select{Pred: eq(col("s", "x"), col("r", "a")), In: scanT("s", "x")}
	out, ok := ruleK3SelectPullup(testRewriter(), &algebra.Apply{Kind: algebra.CrossJoin, L: r, R: sel})
	if !ok {
		t.Fatal("K3 should fire")
	}
	if _, isSel := out.(*algebra.Select); !isSel {
		t.Errorf("K3 should hoist the selection:\n%s", algebra.Print(out))
	}

	proj := &algebra.Project{Cols: []algebra.ProjCol{{E: col("s", "x"), As: "x2"}}, In: scanT("s", "x")}
	out4, ok := ruleK4ProjectPullup(testRewriter(), &algebra.Apply{Kind: algebra.CrossJoin, L: r, R: proj})
	if !ok {
		t.Fatal("K4 should fire")
	}
	p := out4.(*algebra.Project)
	if len(p.Cols) != 2 { // r.a passthrough + x2
		t.Errorf("K4 should merge schemas: %s", p.Describe())
	}
}

func TestScalarAggDecorrelation(t *testing.T) {
	// r A× G_{sum(x) as v}(σ_{s.k = r.a}(s))  →  Π(r ⟕ (k G sum))
	r := scanT("r", "a")
	gb := &algebra.GroupBy{
		Aggs: []algebra.AggCall{{Func: "sum", Args: []algebra.Expr{col("s", "x")}, As: "v"}},
		In: &algebra.Select{Pred: eq(col("s", "k"), col("r", "a")),
			In: scanT("s", "k", "x")},
	}
	out, ok := ruleScalarAggDecorrelate(testRewriter(), &algebra.Apply{Kind: algebra.CrossJoin, L: r, R: gb})
	if !ok {
		t.Fatal("scalar-agg decorrelation should fire")
	}
	s := algebra.Print(out)
	for _, want := range []string{"Join(leftouter)", "GroupBy[s.k]", "sum(s.x) AS v"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in:\n%s", want, s)
		}
	}
}

func TestScalarAggDecorrelationCountBug(t *testing.T) {
	r := scanT("r", "a")
	gb := &algebra.GroupBy{
		Aggs: []algebra.AggCall{{Func: "count", As: "c"}},
		In: &algebra.Select{Pred: eq(col("s", "k"), col("r", "a")),
			In: scanT("s", "k")},
	}
	out, ok := ruleScalarAggDecorrelate(testRewriter(), &algebra.Apply{Kind: algebra.CrossJoin, L: r, R: gb})
	if !ok {
		t.Fatal("rule should fire")
	}
	if !strings.Contains(algebra.Print(out), "coalesce") {
		t.Errorf("COUNT must be wrapped in coalesce to avoid the count bug:\n%s", algebra.Print(out))
	}
}

func TestScalarAggDecorrelationEquivalenceSubstitution(t *testing.T) {
	// The aggregate argument references the outer column; substitution via
	// the equality pair must make the inner side self-contained.
	r := scanT("r", "a")
	gb := &algebra.GroupBy{
		Aggs: []algebra.AggCall{{Func: "sum", Args: []algebra.Expr{
			&algebra.Arith{Op: sqltypes.OpMul, L: col("s", "x"), R: col("r", "a")},
		}, As: "v"}},
		In: &algebra.Select{Pred: eq(col("s", "k"), col("r", "a")),
			In: scanT("s", "k", "x")},
	}
	out, ok := ruleScalarAggDecorrelate(testRewriter(), &algebra.Apply{Kind: algebra.CrossJoin, L: r, R: gb})
	if !ok {
		t.Fatal("rule should fire with substitutable correlation")
	}
	if strings.Contains(algebra.Print(out), "sum((s.x * r.a))") {
		t.Errorf("outer reference should have been substituted:\n%s", algebra.Print(out))
	}
	if !strings.Contains(algebra.Print(out), "sum((s.x * s.k))") {
		t.Errorf("expected substituted aggregate argument:\n%s", algebra.Print(out))
	}
}

func TestScalarAggDecorrelationBailsOnNonEquality(t *testing.T) {
	r := scanT("r", "a")
	gb := &algebra.GroupBy{
		Aggs: []algebra.AggCall{{Func: "sum", Args: []algebra.Expr{col("s", "x")}, As: "v"}},
		In: &algebra.Select{Pred: &algebra.Cmp{Op: sqltypes.CmpGT, L: col("s", "k"), R: col("r", "a")},
			In: scanT("s", "k", "x")},
	}
	if _, ok := ruleScalarAggDecorrelate(testRewriter(), &algebra.Apply{Kind: algebra.CrossJoin, L: r, R: gb}); ok {
		t.Error("non-equality correlation must not decorrelate")
	}
}

func TestExistsToApply(t *testing.T) {
	r := scanT("r", "a")
	inner := &algebra.Select{Pred: eq(col("s", "x"), col("r", "a")), In: scanT("s", "x")}
	sel := &algebra.Select{Pred: &algebra.Exists{Rel: inner}, In: r}
	out, ok := ruleExistsToApply(testRewriter(), sel)
	if !ok {
		t.Fatal("exists-to-apply should fire")
	}
	a := out.(*algebra.Apply)
	if a.Kind != algebra.SemiJoin {
		t.Errorf("EXISTS should become semijoin apply, got %s", a.Kind)
	}
	selNeg := &algebra.Select{Pred: &algebra.Exists{Neg: true, Rel: inner}, In: r}
	outNeg, _ := ruleExistsToApply(testRewriter(), selNeg)
	if outNeg.(*algebra.Apply).Kind != algebra.AntiJoin {
		t.Error("NOT EXISTS should become antijoin apply")
	}
}

func TestFixpointTerminates(t *testing.T) {
	// A chain of nested applies and merges must reach a fixpoint within the
	// pass budget.
	r := scanT("r", "a")
	var rel algebra.Rel = r
	for i := 0; i < 10; i++ {
		rel = &algebra.Apply{Kind: algebra.CrossJoin, L: rel,
			R: &algebra.Project{Cols: []algebra.ProjCol{{E: intC(int64(i)), As: "x" + string(rune('a'+i))}}, In: &algebra.Single{}}}
	}
	rw := testRewriter()
	out := rw.Rewrite(rel)
	if algebra.HasApply(out) {
		t.Errorf("chain should fully simplify:\n%s", algebra.Print(out))
	}
}

func TestHoistCorrelatedSelect(t *testing.T) {
	corr := &algebra.Select{Pred: eq(col("c", "k"), col("outer", "k")), In: scanT("c", "k")}
	j := &algebra.Join{Kind: algebra.CrossJoin, L: corr, R: scanT("d", "m")}
	out, ok := ruleHoistCorrelatedSelect(testRewriter(), j)
	if !ok {
		t.Fatal("hoist should fire")
	}
	sel, isSel := out.(*algebra.Select)
	if !isSel {
		t.Fatalf("expected hoisted selection:\n%s", algebra.Print(out))
	}
	if !strings.Contains(sel.Pred.String(), "outer.k") {
		t.Errorf("hoisted predicate = %s", sel.Pred)
	}
}

func TestPushdownIntoJoinChildren(t *testing.T) {
	j := &algebra.Join{Kind: algebra.InnerJoin,
		Cond: algebra.AndAll([]algebra.Expr{
			eq(col("a", "x"), col("b", "y")), // cross-side: stays
			eq(col("a", "x"), intC(5)),       // left-only: pushes
		}),
		L: scanT("a", "x"), R: scanT("b", "y")}
	out, ok := rulePushdownIntoJoinChildren(testRewriter(), j)
	if !ok {
		t.Fatal("pushdown should fire")
	}
	nj := out.(*algebra.Join)
	if _, isSel := nj.L.(*algebra.Select); !isSel {
		t.Errorf("left-only conjunct should be pushed:\n%s", algebra.Print(out))
	}
	if nj.Cond == nil || !strings.Contains(nj.Cond.String(), "b.y") {
		t.Errorf("join conjunct should remain: %v", nj.Cond)
	}
}
