package core

import (
	"errors"
	"fmt"

	"udfdecorr/internal/algebra"
	"udfdecorr/internal/catalog"
)

// Result is the outcome of the rewrite pipeline.
type Result struct {
	// Rel is the rewritten tree (equal to the input when nothing fired).
	Rel algebra.Rel
	// Decorrelated reports whether no Apply operators remain.
	Decorrelated bool
	// InlinedUDFs names the UDF invocations that were merged.
	InlinedUDFs []string
	// NewAggs are auxiliary aggregates that must be registered before the
	// rewritten query runs.
	NewAggs []*catalog.Aggregate
	// Trace is the sequence of rule firings.
	Trace []string
}

// Decorrelator is the end-to-end rewrite pipeline of Figure 9: it merges
// UDF expression trees into the calling query (Section V) and removes the
// Apply operators with the rules of Section VI.
type Decorrelator struct {
	Cat *catalog.Catalog
}

// NewDecorrelator builds a pipeline over a catalog.
func NewDecorrelator(cat *catalog.Catalog) *Decorrelator {
	return &Decorrelator{Cat: cat}
}

// Rewrite merges every algebraizable UDF invocation in the tree and applies
// the transformation rules to a fixpoint.
func (d *Decorrelator) Rewrite(rel algebra.Rel) (*Result, error) {
	rw := NewRewriter(d.Cat)
	builder := NewUDFBuilder(d.Cat, rw)
	res := &Result{}

	// Step 1+2: replace UDF invocations by their algebraic form under an
	// Apply with the bind extension (Figure 6), repeating until no more
	// invocations can be merged (innermost-first so arguments are simple).
	for pass := 0; pass < maxRewritePasses; pass++ {
		merged, name, err := d.mergeOneCall(rw, builder, rel)
		if err != nil {
			return nil, err
		}
		if name == "" {
			break
		}
		res.InlinedUDFs = append(res.InlinedUDFs, name)
		rel = merged
	}

	// Step 3: remove the Apply operators.
	rel = rw.Rewrite(rel)

	res.Rel = rel
	res.Decorrelated = Decorrelated(rel)
	res.NewAggs = builder.NewAggs
	res.Trace = rw.Trace
	return res, nil
}

// scalarUDFCall matches a Call expression that refers to a scalar UDF whose
// arguments contain no further UDF calls (innermost-first extraction).
func (d *Decorrelator) scalarUDFCall(e algebra.Expr) *algebra.Call {
	var found *algebra.Call
	algebra.VisitExpr(e, func(x algebra.Expr) {
		if found != nil {
			return
		}
		call, ok := x.(*algebra.Call)
		if !ok {
			return
		}
		fn, ok := d.Cat.Function(call.Name)
		if !ok || fn.IsTableValued() {
			return
		}
		for _, a := range call.Args {
			if d.scalarUDFCall(a) != nil {
				return // extract the inner one first
			}
		}
		found = call
	}, nil)
	return found
}

// mergeOneCall finds one UDF invocation (scalar call in a projection or
// selection, or a table-function reference) and merges its expression tree.
// It returns the new tree and the merged function's name, or "" when
// nothing was merged.
func (d *Decorrelator) mergeOneCall(rw *Rewriter, b *UDFBuilder, rel algebra.Rel) (algebra.Rel, string, error) {
	var mergedName string
	var buildErr error
	out := algebra.Transform(rel, func(n algebra.Rel) algebra.Rel {
		if mergedName != "" || buildErr != nil {
			return n
		}
		switch node := n.(type) {
		case *algebra.Project:
			for i, c := range node.Cols {
				call := d.scalarUDFCall(c.E)
				if call == nil {
					continue
				}
				repl, rv, err := d.applyForCall(rw, b, node.In, call)
				if err != nil {
					if errors.Is(err, ErrUnsupported) {
						return n // leave iterative
					}
					buildErr = err
					return n
				}
				cols := make([]algebra.ProjCol, len(node.Cols))
				copy(cols, node.Cols)
				cols[i] = algebra.ProjCol{
					E:    replaceExprNode(c.E, call, &algebra.ColRef{Name: rv}),
					Qual: c.Qual,
					As:   c.As,
				}
				mergedName = call.Name
				return &algebra.Project{Cols: cols, Dedup: node.Dedup, In: repl}
			}
		case *algebra.Select:
			call := d.scalarUDFCall(node.Pred)
			if call == nil {
				return n
			}
			inSchema := node.In.Schema()
			repl, rv, err := d.applyForCall(rw, b, node.In, call)
			if err != nil {
				if errors.Is(err, ErrUnsupported) {
					return n
				}
				buildErr = err
				return n
			}
			mergedName = call.Name
			pred := replaceExprNode(node.Pred, call, &algebra.ColRef{Name: rv})
			return &algebra.Project{
				Cols: passthroughCols(inSchema),
				In:   &algebra.Select{Pred: pred, In: repl},
			}
		case *algebra.TableFunc:
			repl, err := d.expandTableFunc(rw, b, node)
			if err != nil {
				if errors.Is(err, ErrUnsupported) {
					return n
				}
				buildErr = err
				return n
			}
			mergedName = node.Name
			return repl
		}
		return n
	})
	if buildErr != nil {
		return nil, "", buildErr
	}
	if mergedName == "" {
		return rel, "", nil
	}
	return out, mergedName, nil
}

// applyForCall builds the Apply-with-bind form of Figure 6 for a scalar UDF
// invocation over the given input relation: the result is
// In A×(bind: fp_i = arg_i) Π_{retval as rv}(E_udf), with the UDF's local
// names alpha-renamed to avoid capture, and rv a fresh result column.
func (d *Decorrelator) applyForCall(rw *Rewriter, b *UDFBuilder, in algebra.Rel, call *algebra.Call) (algebra.Rel, string, error) {
	fn, ok := d.Cat.Function(call.Name)
	if !ok {
		return nil, "", fmt.Errorf("unknown function %q", call.Name)
	}
	if len(call.Args) != len(fn.Def.Params) {
		return nil, "", fmt.Errorf("function %q expects %d args, got %d", call.Name, len(fn.Def.Params), len(call.Args))
	}
	eudf, err := b.BuildScalar(fn)
	if err != nil {
		return nil, "", err
	}
	// Alpha-rename the UDF's internal (unqualified) columns and its formal
	// parameters so multiple invocations cannot capture each other.
	eudf, paramMap := d.alphaRename(rw, eudf, fn)
	rv := rw.FreshName("rv")
	renamed := &algebra.Project{
		Cols: []algebra.ProjCol{{E: &algebra.ColRef{Name: mustGet(paramMap, "retval")}, As: rv}},
		In:   eudf,
	}
	binds := make([]algebra.Bind, len(call.Args))
	for i, p := range fn.Def.Params {
		binds[i] = algebra.Bind{Param: mustGet(paramMap, "$param$"+p.Name), Arg: call.Args[i]}
	}
	return &algebra.Apply{Kind: algebra.CrossJoin, Binds: binds, L: in, R: renamed}, rv, nil
}

func mustGet(m map[string]string, k string) string {
	v, ok := m[k]
	if !ok {
		panic("core: missing alpha-rename entry for " + k)
	}
	return v
}

// alphaRename renames every unqualified output column, every table alias
// (qualifier), and every formal parameter of a UDF expression tree to fresh
// names, so that merging the tree into a calling query can never capture
// the caller's names — in particular when the UDF queries the same table as
// the outer query under the same default alias. It returns the renamed tree
// plus the mapping (parameters are keyed as "$param$<name>").
func (d *Decorrelator) alphaRename(rw *Rewriter, eudf algebra.Rel, fn *catalog.Function) (algebra.Rel, map[string]string) {
	names := map[string]bool{}
	quals := map[string]bool{}
	algebra.Visit(eudf, func(n algebra.Rel) {
		switch x := n.(type) {
		case *algebra.Project:
			for _, c := range x.Cols {
				if c.Qual == "" {
					names[c.As] = true
				} else {
					quals[c.Qual] = true
				}
			}
		case *algebra.GroupBy:
			for _, a := range x.Aggs {
				names[a.As] = true
			}
		case *algebra.Scan:
			quals[x.Alias] = true
		case *algebra.TableFunc:
			for _, c := range x.Cols {
				if c.Qual != "" {
					quals[c.Qual] = true
				}
			}
		}
	})
	colMap := map[string]string{}
	out := map[string]string{}
	for name := range names {
		f := rw.FreshName(name)
		colMap[name] = f
		out[name] = f
	}
	renamed := algebra.RenameColumns(eudf, colMap)

	qualMap := map[string]string{}
	for q := range quals {
		if q == "" {
			continue
		}
		qualMap[q] = rw.FreshName(q)
	}
	renamed = renameQualifiers(renamed, qualMap)

	paramSubst := map[string]algebra.Expr{}
	for _, p := range fn.Def.Params {
		f := rw.FreshName(p.Name)
		out["$param$"+p.Name] = f
		paramSubst[p.Name] = &algebra.ParamRef{Name: f}
	}
	renamed = algebra.SubstituteParams(renamed, paramSubst)
	return renamed, out
}

// renameQualifiers rewrites table aliases throughout a tree: scan aliases,
// qualified column references, and qualified projection outputs.
func renameQualifiers(rel algebra.Rel, m map[string]string) algebra.Rel {
	if len(m) == 0 {
		return rel
	}
	rel = algebra.MapExprsDeep(rel, func(e algebra.Expr) algebra.Expr {
		if c, ok := e.(*algebra.ColRef); ok && c.Qual != "" {
			if to, hit := m[c.Qual]; hit {
				return &algebra.ColRef{Qual: to, Name: c.Name}
			}
		}
		return e
	})
	return algebra.Transform(rel, func(n algebra.Rel) algebra.Rel {
		switch x := n.(type) {
		case *algebra.Scan:
			to, hit := m[x.Alias]
			if !hit {
				return n
			}
			cols := make([]algebra.Column, len(x.Cols))
			for i, c := range x.Cols {
				cols[i] = algebra.Column{Qual: to, Name: c.Name, Type: c.Type}
			}
			return &algebra.Scan{Table: x.Table, Alias: to, Cols: cols}
		case *algebra.Project:
			changed := false
			cols := make([]algebra.ProjCol, len(x.Cols))
			for i, c := range x.Cols {
				cols[i] = c
				if to, hit := m[c.Qual]; hit && c.Qual != "" {
					cols[i].Qual = to
					changed = true
				}
			}
			if changed {
				return &algebra.Project{Cols: cols, Dedup: x.Dedup, In: x.In}
			}
		case *algebra.TableFunc:
			changed := false
			cols := make([]algebra.Column, len(x.Cols))
			for i, c := range x.Cols {
				cols[i] = c
				if to, hit := m[c.Qual]; hit && c.Qual != "" {
					cols[i].Qual = to
					changed = true
				}
			}
			if changed {
				return &algebra.TableFunc{Name: x.Name, Args: x.Args, Cols: cols}
			}
		}
		return n
	})
}

// expandTableFunc replaces a table-valued UDF reference in a FROM clause by
// its algebraized body with arguments substituted (Section VII-B), wrapped
// in a projection that re-qualifies the outputs under the use-site alias.
func (d *Decorrelator) expandTableFunc(rw *Rewriter, b *UDFBuilder, tf *algebra.TableFunc) (algebra.Rel, error) {
	fn, ok := d.Cat.Function(tf.Name)
	if !ok || !fn.IsTableValued() {
		return nil, fmt.Errorf("unknown table function %q", tf.Name)
	}
	if len(tf.Args) != len(fn.Def.Params) {
		return nil, fmt.Errorf("function %q expects %d args, got %d", tf.Name, len(fn.Def.Params), len(tf.Args))
	}
	body, err := b.BuildTable(fn)
	if err != nil {
		return nil, err
	}
	body, paramMap := d.alphaRename(rw, body, fn)
	subst := map[string]algebra.Expr{}
	for i, p := range fn.Def.Params {
		subst[mustGet(paramMap, "$param$"+p.Name)] = tf.Args[i]
	}
	body = algebra.SubstituteParams(body, subst)
	inner := body.Schema()
	if len(inner) != len(tf.Cols) {
		return nil, fmt.Errorf("function %q: body arity %d, declared %d", tf.Name, len(inner), len(tf.Cols))
	}
	cols := make([]algebra.ProjCol, len(inner))
	for i, c := range inner {
		cols[i] = algebra.ProjCol{
			E:    &algebra.ColRef{Qual: c.Qual, Name: c.Name},
			Qual: tf.Cols[i].Qual,
			As:   tf.Cols[i].Name,
		}
	}
	return &algebra.Project{Cols: cols, In: body}, nil
}
