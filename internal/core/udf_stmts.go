package core

import (
	"crypto/sha256"
	"fmt"
	"sort"

	"udfdecorr/internal/algebra"
	"udfdecorr/internal/ast"
	"udfdecorr/internal/catalog"
	"udfdecorr/internal/ddg"
)

// synthAggName derives a content-addressed name for a synthesized auxiliary
// aggregate. Deterministic naming makes aggregate registration idempotent:
// two concurrent rewrites of the same UDF produce the same name for the same
// definition, so the catalog's EnsureAggregate can de-duplicate them without
// any risk of one query's plan resolving another query's aggregate body
// (which sequence-numbered fresh names raced on).
func synthAggName(def *catalog.Aggregate) string {
	sum := sha256.Sum256([]byte(def.Fingerprint()))
	return fmt.Sprintf("aux_agg_%x", sum[:4])
}

// stmts processes a top-level statement list over relation e (initially the
// Single relation), returning the extended relation and the RETURN
// expression when the list ends in a RETURN.
func (b *UDFBuilder) stmts(e algebra.Rel, list []ast.Stmt, st *bodyState) (algebra.Rel, algebra.Expr, error) {
	return b.stmtsOver(e, nil, list, st, st)
}

// stmtsOver is the general walker: e is the relation being extended, outer
// (optional) is an enclosing row context whose columns are visible to
// expressions (used when algebraizing loop bodies over the cursor relation,
// where the prologue chain is the enclosing context).
func (b *UDFBuilder) stmtsOver(e algebra.Rel, outer algebra.Rel, list []ast.Stmt, st *bodyState, topSt *bodyState) (algebra.Rel, algebra.Expr, error) {
	for i := 0; i < len(list); i++ {
		s := list[i]
		sc := b.scopeFor(e, outer)
		switch n := s.(type) {
		case *ast.DeclareStmt:
			if algebra.HasRef(e.Schema(), "", n.Name) {
				return nil, nil, unsupportedf("redeclaration of %s", n.Name)
			}
			var init algebra.Expr = algebra.NullConst() // ⊥
			if n.Init != nil {
				var err error
				init, err = b.procExpr(n.Init, sc, st, e.Schema())
				if err != nil {
					return nil, nil, err
				}
			}
			e = b.addVar(e, n.Name, init)
			b.recordDef(st, n.Name, init)

		case *ast.AssignStmt:
			rhs, err := b.procExpr(n.Expr, sc, st, e.Schema())
			if err != nil {
				return nil, nil, err
			}
			if algebra.HasRef(e.Schema(), "", n.Name) {
				e = b.assignVar(e, n.Name, rhs)
			} else {
				// Assignment to a variable of an enclosing scope (inside a
				// branch) or an undeclared variable: introduce the column.
				e = b.addVar(e, n.Name, rhs)
			}
			b.recordDef(st, n.Name, rhs)

		case *ast.SelectIntoStmt:
			qrel, err := b.query(n.Select, b.mergedContext(e, outer), st)
			if err != nil {
				return nil, nil, err
			}
			outs := qrel.Schema()
			targets := n.Select.Into
			if len(outs) < len(targets) {
				return nil, nil, unsupportedf("SELECT INTO: %d columns for %d targets", len(outs), len(targets))
			}
			var assigns []algebra.MergeAssign
			for j, t := range targets {
				if !algebra.HasRef(e.Schema(), "", t) {
					e = b.addVar(e, t, algebra.NullConst())
				}
				assigns = append(assigns, algebra.MergeAssign{Target: t, Source: outs[j].Name})
				delete(st.constInit, t)
				delete(st.symdefs, t)
			}
			e = &algebra.ApplyMerge{Assigns: assigns, L: e, R: qrel}

		case *ast.IfStmt:
			pred, err := b.procExpr(n.Cond, sc, st, e.Schema())
			if err != nil {
				return nil, nil, err
			}
			// Every variable assigned in either branch must exist as a
			// column of the current chain so the Conditional Apply-Merge
			// has a target to merge into. Variables of an enclosing scope
			// are seeded with their current value (a free reference);
			// branch-local temporaries start as ⊥.
			_, ifWrites := ddg.ReadsWrites(n)
			for _, w := range ifWrites.Sorted() {
				if algebra.HasRef(e.Schema(), "", w) {
					continue
				}
				var init algebra.Expr = algebra.NullConst()
				if outer != nil {
					if c, ok := algebra.ResolveRef(outer.Schema(), "", w); ok {
						init = &algebra.ColRef{Qual: c.Qual, Name: c.Name}
					}
				}
				e = b.addVar(e, w, init)
			}
			thenRel, ret, err := b.stmtsOver(&algebra.Single{}, b.mergedContext(e, outer), n.Then, newBodyState(), topSt)
			if err != nil {
				return nil, nil, err
			}
			if ret != nil {
				return nil, nil, unsupportedf("RETURN inside a conditional branch")
			}
			var elseRel algebra.Rel
			if len(n.Else) > 0 {
				elseRel, ret, err = b.stmtsOver(&algebra.Single{}, b.mergedContext(e, outer), n.Else, newBodyState(), topSt)
				if err != nil {
					return nil, nil, err
				}
				if ret != nil {
					return nil, nil, unsupportedf("RETURN inside a conditional branch")
				}
			}
			// Invalidate statically-tracked values of assigned variables.
			_, writes := ddg.ReadsWrites(n)
			for w := range writes {
				delete(st.constInit, w)
				delete(st.symdefs, w)
			}
			e = &algebra.CondApplyMerge{Pred: pred, Then: thenRel, Else: elseRel, In: e}

		case *ast.DeclareCursorStmt:
			if st.cursor != nil {
				return nil, nil, unsupportedf("multiple cursors")
			}
			st.cursor = n

		case *ast.OpenStmt, *ast.CloseStmt, *ast.DeallocateStmt:
			// No algebraic contribution.

		case *ast.FetchStmt:
			if st.cursor == nil || n.Cursor != st.cursor.Name {
				return nil, nil, unsupportedf("FETCH from unknown cursor %q", n.Cursor)
			}
			if len(st.fetchVars) > 0 {
				return nil, nil, unsupportedf("FETCH outside the loop after the priming fetch")
			}
			st.fetchVars = n.Into

		case *ast.WhileStmt:
			ne, err := b.scalarLoop(e, n, st, list[i+1:])
			if err != nil {
				return nil, nil, err
			}
			e = ne

		case *ast.ReturnStmt:
			if n.Table != "" {
				return nil, nil, unsupportedf("table RETURN in scalar context")
			}
			if i != len(list)-1 {
				return nil, nil, unsupportedf("statements after RETURN")
			}
			retE, err := b.procExpr(n.Expr, sc, st, e.Schema())
			if err != nil {
				return nil, nil, err
			}
			return e, retE, nil

		case *ast.InsertStmt:
			return nil, nil, unsupportedf("INSERT outside a table-valued cursor loop")

		default:
			return nil, nil, unsupportedf("statement %T", s)
		}
	}
	return e, nil, nil
}

// scopeFor builds the name-resolution scope: local relation first, then the
// enclosing context.
func (b *UDFBuilder) scopeFor(e algebra.Rel, outer algebra.Rel) *scope {
	sc := &scope{schema: e.Schema()}
	if outer != nil {
		sc.outer = &scope{schema: outer.Schema()}
	}
	return sc
}

// mergedContext returns the row context visible to nested constructs: the
// current chain, with the enclosing context's columns appended.
func (b *UDFBuilder) mergedContext(e algebra.Rel, outer algebra.Rel) algebra.Rel {
	if outer == nil {
		return e
	}
	return &contextRel{cols: append(append([]algebra.Column{}, e.Schema()...), outer.Schema()...)}
}

// contextRel is a schema-only pseudo-relation used for name resolution of
// nested scopes; it never reaches planning.
type contextRel struct{ cols []algebra.Column }

// Schema implements algebra.Rel.
func (c *contextRel) Schema() []algebra.Column { return c.cols }

// Children implements algebra.Rel.
func (c *contextRel) Children() []algebra.Rel { return nil }

// WithChildren implements algebra.Rel.
func (c *contextRel) WithChildren(ch []algebra.Rel) algebra.Rel { return c }

// Describe implements algebra.Rel.
func (c *contextRel) Describe() string { return "Context" }

// addVar extends the chain with a new variable column via Apply-cross of a
// projection over Single (the paper's algebraization of declarations).
func (b *UDFBuilder) addVar(e algebra.Rel, name string, init algebra.Expr) algebra.Rel {
	proj := &algebra.Project{
		Cols: []algebra.ProjCol{{E: init, As: name}},
		In:   &algebra.Single{},
	}
	return &algebra.Apply{Kind: algebra.CrossJoin, L: e, R: proj}
}

// assignVar models an assignment to an existing variable with Apply-Merge
// over a projection on Single.
func (b *UDFBuilder) assignVar(e algebra.Rel, name string, rhs algebra.Expr) algebra.Rel {
	proj := &algebra.Project{
		Cols: []algebra.ProjCol{{E: rhs, As: name}},
		In:   &algebra.Single{},
	}
	return &algebra.ApplyMerge{
		Assigns: []algebra.MergeAssign{{Target: name, Source: name}},
		L:       e,
		R:       proj,
	}
}

// recordDef tracks statically-known values and inlinable definitions.
func (b *UDFBuilder) recordDef(st *bodyState, name string, e algebra.Expr) {
	delete(st.constInit, name)
	delete(st.symdefs, name)
	if c, ok := e.(*algebra.Const); ok {
		st.constInit[name] = c.Val
	}
	if inlinable(e) {
		st.symdefs[name] = e
	}
}

// inlinable reports whether an expression is a pure scalar computation that
// may be duplicated into loop bodies (no embedded relational parts).
func inlinable(e algebra.Expr) bool {
	pure := true
	algebra.VisitExpr(e, func(x algebra.Expr) {
		switch x.(type) {
		case *algebra.Subquery, *algebra.Exists:
			pure = false
		}
	}, func(algebra.Rel) { pure = false })
	return pure
}

// procExpr algebrizes a procedural-scope expression: bare names resolve to
// variable columns through the scope chain, :refs matching local columns
// become column references, and references to enclosing-context variables
// with inlinable definitions are substituted (so prologue values flow into
// loop bodies).
func (b *UDFBuilder) procExpr(expr ast.Expr, sc *scope, st *bodyState, localSchema []algebra.Column) (algebra.Expr, error) {
	e, err := b.Alg.expr(expr, sc)
	if err != nil {
		return nil, err
	}
	e = b.bindLocals(e, sc)
	// Inline enclosing-context definitions for refs outside the local
	// schema.
	subst := map[algebra.Ref]algebra.Expr{}
	algebra.VisitExpr(e, func(x algebra.Expr) {
		if c, ok := x.(*algebra.ColRef); ok && c.Qual == "" {
			if !algebra.HasRef(localSchema, "", c.Name) {
				if def, ok := st.symdefs[c.Name]; ok {
					subst[algebra.Ref{Name: c.Name}] = def
				}
			}
		}
	}, nil)
	if len(subst) > 0 {
		e = substituteCols(e, subst)
	}
	return e, nil
}

// bindLocals rewrites parameter references whose names match scope columns
// into column references (":totalbusiness" written where totalbusiness is a
// local variable).
func (b *UDFBuilder) bindLocals(e algebra.Expr, sc *scope) algebra.Expr {
	m := map[string]algebra.Expr{}
	algebra.VisitExpr(e, func(x algebra.Expr) {
		if p, ok := x.(*algebra.ParamRef); ok {
			if c, found := sc.resolve("", p.Name); found {
				m[p.Name] = &algebra.ColRef{Qual: c.Qual, Name: c.Name}
			}
		}
	}, nil)
	if len(m) == 0 {
		return e
	}
	return algebra.SubstituteParamsExpr(e, m)
}

// query algebrizes an embedded query against the given row context: bare
// names fall back to context columns, and :refs matching context columns
// become column references (correlation); remaining :refs stay parameters
// (the UDF's formal parameters).
func (b *UDFBuilder) query(sel *ast.SelectStmt, context algebra.Rel, st *bodyState) (algebra.Rel, error) {
	var sc *scope
	if context != nil {
		sc = &scope{schema: context.Schema()}
	}
	qrel, err := b.Alg.query(sel, sc)
	if err != nil {
		return nil, err
	}
	if context == nil {
		return qrel, nil
	}
	m := map[string]algebra.Expr{}
	for ref := range algebra.FreeRefs(qrel) {
		if !ref.IsParam {
			continue
		}
		if c, ok := algebra.ResolveRef(context.Schema(), "", ref.Name); ok {
			m[ref.Name] = &algebra.ColRef{Qual: c.Qual, Name: c.Name}
		}
	}
	return algebra.SubstituteParams(qrel, m), nil
}

// scalarLoop algebraizes a cursor loop in a scalar UDF (Section VII-A):
// the acyclic prefix becomes per-row computation over the cursor relation;
// the cyclic suffix becomes an auxiliary user-defined aggregate.
func (b *UDFBuilder) scalarLoop(e algebra.Rel, loop *ast.WhileStmt, st *bodyState, rest []ast.Stmt) (algebra.Rel, error) {
	body, err := b.loopBody(loop, st)
	if err != nil {
		return nil, err
	}
	g := ddg.Build(body)
	fc := g.FirstCyclic()
	if fc < 0 {
		return nil, unsupportedf("cursor loop without cyclic dependence has last-row semantics")
	}
	pre, suffix := body[:fc], body[fc:]

	// The aggregate body must be purely imperative.
	for _, s := range suffix {
		switch s.(type) {
		case *ast.DeclareStmt, *ast.AssignStmt, *ast.IfStmt:
		default:
			return nil, unsupportedf("statement %T in cyclic loop suffix", s)
		}
	}

	ein, err := b.perRow(e, pre, st)
	if err != nil {
		return nil, err
	}
	einSchema := ein.Schema()

	reads, writes := ddg.VarSet{}, ddg.VarSet{}
	for _, s := range suffix {
		r, w := ddg.ReadsWrites(s)
		reads.Union(r)
		writes.Union(w)
	}
	delete(writes, "@@fetch_status")

	// Condition 1 (Section VII): initial values of all written variables
	// must be statically determinable.
	var state []catalog.AggStateVar
	for _, w := range writes.Sorted() {
		init, ok := st.constInit[w]
		if !ok {
			if algebra.HasRef(einSchema, "", w) {
				continue // loop-local temporary recomputed per row
			}
			return nil, unsupportedf("initial value of %s is not statically determinable", w)
		}
		state = append(state, catalog.AggStateVar{Name: w, Init: init})
	}
	stateNames := ddg.VarSet{}
	for _, sv := range state {
		stateNames.Add(sv.Name)
	}

	// Parameters: per-row values read but not part of the aggregate state.
	var params []string
	for _, r := range reads.Sorted() {
		if stateNames[r] {
			continue
		}
		if algebra.HasRef(einSchema, "", r) {
			params = append(params, r)
			continue
		}
		return nil, unsupportedf("loop suffix reads %s, which is neither state nor a per-row value", r)
	}

	// Live state variables after the loop become the aggregate results.
	liveAfter := ddg.VarSet{}
	for _, s := range rest {
		r, _ := ddg.ReadsWrites(s)
		liveAfter.Union(r)
	}
	var results []string
	for _, sv := range state {
		if liveAfter[sv.Name] {
			results = append(results, sv.Name)
		}
	}
	if len(results) == 0 {
		return e, nil // dead loop: contributes nothing
	}
	sort.Strings(results)

	// One auxiliary aggregate per live result (a tuple-valued aggregate
	// split into per-component aggregates; they share the same body).
	args := make([]algebra.Expr, len(params))
	for j, pn := range params {
		args[j] = &algebra.ColRef{Name: pn}
	}
	var calls []algebra.AggCall
	var assigns []algebra.MergeAssign
	for _, res := range results {
		def := &catalog.Aggregate{
			State:  state,
			Params: params,
			Body:   suffix,
			Result: res,
		}
		def.Name = synthAggName(def)
		b.NewAggs = append(b.NewAggs, def)
		b.rw.RegisterAux(def)
		alias := b.rw.FreshName("agg")
		calls = append(calls, algebra.AggCall{Func: def.Name, Args: args, As: alias})
		assigns = append(assigns, algebra.MergeAssign{Target: res, Source: alias})
		delete(st.constInit, res)
		delete(st.symdefs, res)
	}
	loopRel := &algebra.GroupBy{Aggs: calls, In: ein}
	return &algebra.ApplyMerge{Assigns: assigns, L: e, R: loopRel}, nil
}
