// Package core implements the paper's contribution: an algebraic
// representation for queries and imperative UDF bodies (Section IV),
// expression-tree merging (Section V), the transformation rules K1–K6 and
// R1–R9 that remove Apply operators (Section VI, Tables I and II), and the
// cursor-loop and table-valued-UDF handling of Section VII including
// auxiliary user-defined aggregate synthesis.
package core

import (
	"fmt"
	"strings"

	"udfdecorr/internal/algebra"
	"udfdecorr/internal/ast"
	"udfdecorr/internal/catalog"
	"udfdecorr/internal/sqltypes"
)

// Algebrizer translates parsed SQL into the logical algebra.
type Algebrizer struct {
	Cat *catalog.Catalog
	// aggSeq numbers synthesized aggregate output columns; it is shared
	// across all queries this instance algebrizes so that two embedded
	// queries in one UDF body cannot produce colliding aliases.
	aggSeq int
}

// NewAlgebrizer builds an algebrizer over a catalog.
func NewAlgebrizer(cat *catalog.Catalog) *Algebrizer {
	return &Algebrizer{Cat: cat}
}

// scope is a name-resolution scope: the schema of the current FROM clause,
// with a link to the enclosing (outer) scope for correlated subqueries.
type scope struct {
	schema []algebra.Column
	outer  *scope
}

func (s *scope) resolve(qual, name string) (algebra.Column, bool) {
	for sc := s; sc != nil; sc = sc.outer {
		if c, ok := algebra.ResolveRef(sc.schema, qual, name); ok {
			return c, true
		}
	}
	return algebra.Column{}, false
}

// Query algebrizes a SELECT statement into a relational tree.
func (a *Algebrizer) Query(sel *ast.SelectStmt) (algebra.Rel, error) {
	return a.query(sel, nil)
}

func (a *Algebrizer) query(sel *ast.SelectStmt, outer *scope) (algebra.Rel, error) {
	// FROM clause.
	var rel algebra.Rel = &algebra.Single{}
	for i, tr := range sel.From {
		r, err := a.tableRef(tr, outer)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			rel = r
		} else {
			rel = &algebra.Join{Kind: algebra.CrossJoin, L: rel, R: r}
		}
	}
	sc := &scope{schema: rel.Schema(), outer: outer}

	// WHERE clause.
	if sel.Where != nil {
		pred, err := a.expr(sel.Where, sc)
		if err != nil {
			return nil, err
		}
		rel = &algebra.Select{Pred: pred, In: rel}
	}

	// Collect aggregates from the select list and HAVING.
	agg := &aggCollector{alg: a, sc: sc}
	var items []ast.SelectItem
	for _, it := range sel.Items {
		if it.Star {
			for _, c := range sc.schema {
				items = append(items, ast.SelectItem{
					Expr:  &ast.ColName{Qual: c.Qual, Name: c.Name},
					Alias: c.Name,
				})
			}
			continue
		}
		items = append(items, it)
	}
	type projItem struct {
		e     algebra.Expr
		alias string
	}
	projItems := make([]projItem, len(items))
	for i, it := range items {
		e, err := agg.rewrite(it.Expr)
		if err != nil {
			return nil, err
		}
		alias := it.Alias
		if alias == "" {
			alias = defaultAlias(it.Expr, i)
		}
		projItems[i] = projItem{e: e, alias: alias}
	}
	var havingPred algebra.Expr
	if sel.Having != nil {
		var err error
		havingPred, err = agg.rewrite(sel.Having)
		if err != nil {
			return nil, err
		}
	}

	grouped := len(sel.GroupBy) > 0 || len(agg.aggs) > 0
	if grouped {
		var keys []*algebra.ColRef
		for _, g := range sel.GroupBy {
			ge, err := a.expr(g, sc)
			if err != nil {
				return nil, err
			}
			cr, ok := ge.(*algebra.ColRef)
			if !ok {
				return nil, fmt.Errorf("GROUP BY supports plain columns, got %s", ge)
			}
			keys = append(keys, cr)
		}
		rel = &algebra.GroupBy{Keys: keys, Aggs: agg.aggs, In: rel}
		sc = &scope{schema: rel.Schema(), outer: outer}
	}
	if havingPred != nil {
		rel = &algebra.Select{Pred: havingPred, In: rel}
	}

	// Projection.
	cols := make([]algebra.ProjCol, len(projItems))
	for i, it := range projItems {
		cols[i] = algebra.ProjCol{E: it.e, As: it.alias}
	}
	preProj := rel
	rel = &algebra.Project{Cols: cols, Dedup: sel.Distinct, In: rel}

	// ORDER BY resolves against the projected schema first, then the
	// pre-projection scope. Keys referencing non-projected columns are
	// carried through hidden projection columns and stripped afterwards.
	if len(sel.OrderBy) > 0 {
		outSchema := rel.Schema()
		outSc := &scope{schema: outSchema, outer: sc}
		keys := make([]algebra.SortKey, len(sel.OrderBy))
		hidden := false
		extCols := append([]algebra.ProjCol{}, cols...)
		for i, o := range sel.OrderBy {
			e, err := a.expr(o.Expr, outSc)
			if err != nil {
				return nil, err
			}
			if algebra.ExprUsesRefsOf(e, outSchema) || !algebra.ExprUsesRefsOf(e, preProj.Schema()) {
				keys[i] = algebra.SortKey{E: e, Desc: o.Desc}
				continue
			}
			if sel.Distinct {
				return nil, fmt.Errorf("ORDER BY key %s is not in the DISTINCT select list", o.Expr.SQL())
			}
			hidden = true
			name := fmt.Sprintf("sortkey_%d", i+1)
			extCols = append(extCols, algebra.ProjCol{E: e, As: name})
			keys[i] = algebra.SortKey{E: &algebra.ColRef{Name: name}, Desc: o.Desc}
		}
		if hidden {
			sorted := &algebra.Sort{Keys: keys, In: &algebra.Project{Cols: extCols, In: preProj}}
			visible := make([]algebra.ProjCol, len(cols))
			for i, c := range cols {
				visible[i] = algebra.ProjCol{E: &algebra.ColRef{Name: c.As}, As: c.As}
			}
			rel = &algebra.Project{Cols: visible, In: sorted}
		} else {
			rel = &algebra.Sort{Keys: keys, In: rel}
		}
	}

	// TOP / LIMIT.
	if sel.Top != nil {
		lit, ok := sel.Top.(*ast.Lit)
		if !ok {
			return nil, fmt.Errorf("TOP requires a literal count")
		}
		n, ok2 := lit.Val.AsInt()
		if !ok2 || n < 0 {
			return nil, fmt.Errorf("TOP requires a non-negative integer")
		}
		rel = &algebra.Limit{N: n, In: rel}
	}
	return rel, nil
}

func defaultAlias(e ast.Expr, i int) string {
	switch x := e.(type) {
	case *ast.ColName:
		return x.Name
	case *ast.FuncCall:
		return strings.ToLower(x.Name)
	default:
		return fmt.Sprintf("col_%d", i+1)
	}
}

func (a *Algebrizer) tableRef(tr ast.TableRef, outer *scope) (algebra.Rel, error) {
	switch t := tr.(type) {
	case *ast.TableName:
		meta, ok := a.Cat.Table(t.Name)
		if !ok {
			return nil, fmt.Errorf("unknown table %q", t.Name)
		}
		alias := t.Alias
		if alias == "" {
			alias = strings.ToLower(t.Name)
		}
		cols := make([]algebra.Column, len(meta.Cols))
		for i, c := range meta.Cols {
			cols[i] = algebra.Column{Qual: alias, Name: c.Name, Type: c.Type}
		}
		return &algebra.Scan{Table: strings.ToLower(t.Name), Alias: alias, Cols: cols}, nil

	case *ast.JoinRef:
		l, err := a.tableRef(t.L, outer)
		if err != nil {
			return nil, err
		}
		r, err := a.tableRef(t.R, outer)
		if err != nil {
			return nil, err
		}
		kind := algebra.InnerJoin
		switch t.Kind {
		case ast.JoinLeftOuter:
			kind = algebra.LeftOuterJoin
		case ast.JoinCross:
			kind = algebra.CrossJoin
		}
		j := &algebra.Join{Kind: kind, L: l, R: r}
		if t.On != nil {
			sc := &scope{schema: j.Schema(), outer: outer}
			cond, err := a.expr(t.On, sc)
			if err != nil {
				return nil, err
			}
			j.Cond = cond
		}
		return j, nil

	case *ast.SubqueryRef:
		sub, err := a.query(t.Select, outer)
		if err != nil {
			return nil, err
		}
		// Re-qualify the derived table's outputs under its alias.
		inner := sub.Schema()
		cols := make([]algebra.ProjCol, len(inner))
		for i, c := range inner {
			cols[i] = algebra.ProjCol{
				E:    &algebra.ColRef{Qual: c.Qual, Name: c.Name},
				Qual: t.Alias,
				As:   c.Name,
			}
		}
		return &algebra.Project{Cols: cols, In: sub}, nil

	case *ast.FuncRef:
		fn, ok := a.Cat.Function(t.Name)
		if !ok || !fn.IsTableValued() {
			return nil, fmt.Errorf("unknown table function %q", t.Name)
		}
		alias := t.Alias
		if alias == "" {
			alias = strings.ToLower(t.Name)
		}
		args := make([]algebra.Expr, len(t.Args))
		for i, arg := range t.Args {
			e, err := a.expr(arg, outer)
			if err != nil {
				return nil, err
			}
			args[i] = e
		}
		cols := make([]algebra.Column, len(fn.Def.TableCols))
		for i, c := range fn.Def.TableCols {
			cols[i] = algebra.Column{Qual: alias, Name: c.Name, Type: c.Type}
		}
		return &algebra.TableFunc{Name: strings.ToLower(t.Name), Args: args, Cols: cols}, nil
	}
	return nil, fmt.Errorf("unsupported table reference %T", tr)
}

// expr algebrizes a scalar expression. Unqualified names that resolve in no
// scope become parameters (UDF local variables or host variables);
// qualified names that fail to resolve stay as column references so that
// correlation analysis can see them.
func (a *Algebrizer) expr(e ast.Expr, sc *scope) (algebra.Expr, error) {
	switch x := e.(type) {
	case *ast.Lit:
		return &algebra.Const{Val: x.Val}, nil

	case *ast.ParamRef:
		return &algebra.ParamRef{Name: x.Name}, nil

	case *ast.ColName:
		if sc != nil {
			if c, ok := sc.resolve(x.Qual, x.Name); ok {
				return &algebra.ColRef{Qual: c.Qual, Name: c.Name}, nil
			}
		}
		if x.Qual != "" {
			return &algebra.ColRef{Qual: x.Qual, Name: x.Name}, nil
		}
		// Unresolved bare name: a procedural variable.
		return &algebra.ParamRef{Name: x.Name}, nil

	case *ast.BinExpr:
		l, err := a.expr(x.L, sc)
		if err != nil {
			return nil, err
		}
		r, err := a.expr(x.R, sc)
		if err != nil {
			return nil, err
		}
		switch {
		case x.Op == ast.BinAnd:
			return &algebra.Logic{Op: algebra.LogicAnd, L: l, R: r}, nil
		case x.Op == ast.BinOr:
			return &algebra.Logic{Op: algebra.LogicOr, L: l, R: r}, nil
		case x.Op == ast.BinConcat:
			return &algebra.Call{Name: "concat", Args: []algebra.Expr{l, r}}, nil
		case x.Op.IsComparison():
			return &algebra.Cmp{Op: astCmp(x.Op), L: l, R: r}, nil
		default:
			return &algebra.Arith{Op: astArith(x.Op), L: l, R: r}, nil
		}

	case *ast.UnaryExpr:
		inner, err := a.expr(x.E, sc)
		if err != nil {
			return nil, err
		}
		if x.Op == "NOT" {
			return &algebra.Not{E: inner}, nil
		}
		return &algebra.Arith{Op: sqltypes.OpSub,
			L: &algebra.Const{Val: sqltypes.NewInt(0)}, R: inner}, nil

	case *ast.IsNullExpr:
		inner, err := a.expr(x.E, sc)
		if err != nil {
			return nil, err
		}
		return &algebra.IsNull{Neg: x.Neg, E: inner}, nil

	case *ast.CaseExpr:
		out := &algebra.Case{}
		for _, w := range x.Whens {
			c, err := a.expr(w.Cond, sc)
			if err != nil {
				return nil, err
			}
			t, err := a.expr(w.Then, sc)
			if err != nil {
				return nil, err
			}
			out.Whens = append(out.Whens, algebra.CaseWhen{Cond: c, Then: t})
		}
		if x.Else != nil {
			el, err := a.expr(x.Else, sc)
			if err != nil {
				return nil, err
			}
			out.Else = el
		}
		return out, nil

	case *ast.FuncCall:
		name := strings.ToLower(x.Name)
		if a.Cat.IsAggregate(name) {
			return nil, fmt.Errorf("aggregate %s not allowed here", name)
		}
		args := make([]algebra.Expr, len(x.Args))
		for i, arg := range x.Args {
			e, err := a.expr(arg, sc)
			if err != nil {
				return nil, err
			}
			args[i] = e
		}
		return &algebra.Call{Name: name, Args: args}, nil

	case *ast.SubqueryExpr:
		sub, err := a.query(x.Select, sc)
		if err != nil {
			return nil, err
		}
		if len(sub.Schema()) != 1 {
			return nil, fmt.Errorf("scalar subquery must produce one column")
		}
		return &algebra.Subquery{Rel: sub}, nil

	case *ast.ExistsExpr:
		sub, err := a.query(x.Select, sc)
		if err != nil {
			return nil, err
		}
		return &algebra.Exists{Neg: x.Neg, Rel: sub}, nil

	case *ast.InExpr:
		lhs, err := a.expr(x.E, sc)
		if err != nil {
			return nil, err
		}
		if x.Select != nil {
			sub, err := a.query(x.Select, sc)
			if err != nil {
				return nil, err
			}
			cols := sub.Schema()
			if len(cols) != 1 {
				return nil, fmt.Errorf("IN subquery must produce one column")
			}
			// x IN (q) ≡ EXISTS(σ_{x = col}(q)); NOT IN likewise negated.
			// This keeps IN inside the Apply framework (semijoin/antijoin).
			pred := &algebra.Cmp{Op: sqltypes.CmpEQ, L: lhs,
				R: &algebra.ColRef{Qual: cols[0].Qual, Name: cols[0].Name}}
			return &algebra.Exists{Neg: x.Neg, Rel: &algebra.Select{Pred: pred, In: sub}}, nil
		}
		var out algebra.Expr
		for _, le := range x.List {
			item, err := a.expr(le, sc)
			if err != nil {
				return nil, err
			}
			eq := &algebra.Cmp{Op: sqltypes.CmpEQ, L: lhs, R: item}
			if out == nil {
				out = eq
			} else {
				out = &algebra.Logic{Op: algebra.LogicOr, L: out, R: eq}
			}
		}
		if out == nil {
			return &algebra.Const{Val: sqltypes.NewBool(false)}, nil
		}
		if x.Neg {
			out = &algebra.Not{E: out}
		}
		return out, nil
	}
	return nil, fmt.Errorf("unsupported expression %T", e)
}

// aggCollector extracts aggregate calls from select items and HAVING,
// replacing them with references to synthesized group-by output columns.
type aggCollector struct {
	alg  *Algebrizer
	sc   *scope
	aggs []algebra.AggCall
}

func (c *aggCollector) rewrite(e ast.Expr) (algebra.Expr, error) {
	switch x := e.(type) {
	case *ast.FuncCall:
		name := strings.ToLower(x.Name)
		if c.alg.Cat.IsAggregate(name) {
			var args []algebra.Expr
			if !x.Star {
				for _, arg := range x.Args {
					ae, err := c.alg.expr(arg, c.sc)
					if err != nil {
						return nil, err
					}
					args = append(args, ae)
				}
			}
			call := algebra.AggCall{Func: name, Args: args, Distinct: x.Distinct}
			// Reuse an identical aggregate if already collected.
			for _, prev := range c.aggs {
				if prev.Func == call.Func && prev.Distinct == call.Distinct && len(prev.Args) == len(call.Args) {
					same := true
					for i := range prev.Args {
						if !algebra.EqualExpr(prev.Args[i], call.Args[i]) {
							same = false
							break
						}
					}
					if same {
						return &algebra.ColRef{Name: prev.As}, nil
					}
				}
			}
			c.alg.aggSeq++
			call.As = fmt.Sprintf("agg_%d", c.alg.aggSeq)
			c.aggs = append(c.aggs, call)
			return &algebra.ColRef{Name: call.As}, nil
		}
		// Non-aggregate call: rewrite arguments (they may contain aggregates).
		args := make([]algebra.Expr, len(x.Args))
		for i, arg := range x.Args {
			ae, err := c.rewrite(arg)
			if err != nil {
				return nil, err
			}
			args[i] = ae
		}
		return &algebra.Call{Name: name, Args: args}, nil

	case *ast.BinExpr:
		l, err := c.rewrite(x.L)
		if err != nil {
			return nil, err
		}
		r, err := c.rewrite(x.R)
		if err != nil {
			return nil, err
		}
		switch {
		case x.Op == ast.BinAnd:
			return &algebra.Logic{Op: algebra.LogicAnd, L: l, R: r}, nil
		case x.Op == ast.BinOr:
			return &algebra.Logic{Op: algebra.LogicOr, L: l, R: r}, nil
		case x.Op == ast.BinConcat:
			return &algebra.Call{Name: "concat", Args: []algebra.Expr{l, r}}, nil
		case x.Op.IsComparison():
			return &algebra.Cmp{Op: astCmp(x.Op), L: l, R: r}, nil
		default:
			return &algebra.Arith{Op: astArith(x.Op), L: l, R: r}, nil
		}

	case *ast.UnaryExpr:
		inner, err := c.rewrite(x.E)
		if err != nil {
			return nil, err
		}
		if x.Op == "NOT" {
			return &algebra.Not{E: inner}, nil
		}
		return &algebra.Arith{Op: sqltypes.OpSub,
			L: &algebra.Const{Val: sqltypes.NewInt(0)}, R: inner}, nil

	case *ast.CaseExpr:
		out := &algebra.Case{}
		for _, w := range x.Whens {
			cond, err := c.rewrite(w.Cond)
			if err != nil {
				return nil, err
			}
			then, err := c.rewrite(w.Then)
			if err != nil {
				return nil, err
			}
			out.Whens = append(out.Whens, algebra.CaseWhen{Cond: cond, Then: then})
		}
		if x.Else != nil {
			el, err := c.rewrite(x.Else)
			if err != nil {
				return nil, err
			}
			out.Else = el
		}
		return out, nil

	case *ast.IsNullExpr:
		inner, err := c.rewrite(x.E)
		if err != nil {
			return nil, err
		}
		return &algebra.IsNull{Neg: x.Neg, E: inner}, nil

	default:
		return c.alg.expr(e, c.sc)
	}
}

func astCmp(op ast.BinOp) sqltypes.CmpOp {
	switch op {
	case ast.BinEQ:
		return sqltypes.CmpEQ
	case ast.BinNE:
		return sqltypes.CmpNE
	case ast.BinLT:
		return sqltypes.CmpLT
	case ast.BinLE:
		return sqltypes.CmpLE
	case ast.BinGT:
		return sqltypes.CmpGT
	default:
		return sqltypes.CmpGE
	}
}

func astArith(op ast.BinOp) sqltypes.ArithOp {
	switch op {
	case ast.BinAdd:
		return sqltypes.OpAdd
	case ast.BinSub:
		return sqltypes.OpSub
	case ast.BinMul:
		return sqltypes.OpMul
	case ast.BinDiv:
		return sqltypes.OpDiv
	default:
		return sqltypes.OpMod
	}
}
