package core

import (
	"errors"
	"strings"
	"testing"

	"udfdecorr/internal/algebra"
	"udfdecorr/internal/catalog"
	"udfdecorr/internal/parser"
	"udfdecorr/internal/sqltypes"
)

// buildCatalog parses DDL and returns the catalog.
func buildCatalog(t *testing.T, ddl string) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	script, err := parser.ParseScript(ddl)
	if err != nil {
		t.Fatal(err)
	}
	for _, tb := range script.Tables {
		if _, err := cat.AddTableFromAST(tb); err != nil {
			t.Fatal(err)
		}
	}
	for _, f := range script.Functions {
		if _, err := cat.AddFunction(f); err != nil {
			t.Fatal(err)
		}
	}
	return cat
}

const udfTestSchema = `
create table orders (orderkey int primary key, custkey int, totalprice float);
create table lineitem (lineitemkey int primary key, partkey int, price float, qty int, disc float);
`

// buildScalarUDF builds the expression tree for a named scalar UDF.
func buildScalarUDF(t *testing.T, ddl, name string) (algebra.Rel, *UDFBuilder, error) {
	t.Helper()
	cat := buildCatalog(t, ddl)
	rw := NewRewriter(cat)
	b := NewUDFBuilder(cat, rw)
	fn, ok := cat.Function(name)
	if !ok {
		t.Fatalf("function %q missing", name)
	}
	rel, err := b.BuildScalar(fn)
	return rel, b, err
}

func TestBuildScalarSimpleExpression(t *testing.T) {
	// Paper Example 3: the tree of Figure 2 — a projection of retval over
	// an Apply chain rooted at Single.
	rel, _, err := buildScalarUDF(t, udfTestSchema+`
create function disc(float amount) returns float as
begin
  return amount * 0.15;
end`, "disc")
	if err != nil {
		t.Fatal(err)
	}
	top, ok := rel.(*algebra.Project)
	if !ok || len(top.Cols) != 1 || top.Cols[0].As != "retval" {
		t.Fatalf("top of the UDF tree must project retval:\n%s", algebra.Print(rel))
	}
	if !algebra.HasApply(rel) {
		t.Error("pre-simplification tree should contain Apply operators (Figure 2)")
	}
	// Parameterized by the formal parameter.
	if !algebra.HasFreeParams(rel) {
		t.Error("tree must be parameterized by :amount")
	}
}

func TestBuildScalarBranchingUsesCondApplyMerge(t *testing.T) {
	rel, _, err := buildScalarUDF(t, udfTestSchema+`
create function lvl(int k) returns varchar as
begin
  float tb; string level;
  select sum(totalprice) into :tb from orders where custkey = :k;
  if (tb > 100) level = 'Big'; else level = 'Small';
  return level;
end`, "lvl")
	if err != nil {
		t.Fatal(err)
	}
	amcs := algebra.Count(rel, func(n algebra.Rel) bool {
		_, ok := n.(*algebra.CondApplyMerge)
		return ok
	})
	if amcs != 1 {
		t.Errorf("conditional blocks should algebraize to AMC, found %d:\n%s", amcs, algebra.Print(rel))
	}
	ams := algebra.Count(rel, func(n algebra.Rel) bool {
		_, ok := n.(*algebra.ApplyMerge)
		return ok
	})
	if ams < 1 {
		t.Errorf("SELECT INTO should algebraize to Apply-Merge:\n%s", algebra.Print(rel))
	}
}

func TestBuildScalarCursorLoopSynthesizesAggregate(t *testing.T) {
	rel, b, err := buildScalarUDF(t, udfTestSchema+`
create function tl(int pkey) returns int as
begin
  int total = 0;
  declare c cursor for select price, qty from lineitem where partkey = :pkey;
  open c;
  fetch next from c into @p, @q;
  while @@FETCH_STATUS = 0
  begin
    if (@p > 10) total = total + @q;
    fetch next from c into @p, @q;
  end
  close c; deallocate c;
  return total;
end`, "tl")
	if err != nil {
		t.Fatal(err)
	}
	if len(b.NewAggs) != 1 {
		t.Fatalf("aux aggregates = %d", len(b.NewAggs))
	}
	agg := b.NewAggs[0]
	if agg.Result != "total" {
		t.Errorf("result var = %s", agg.Result)
	}
	if len(agg.State) != 1 || !sqltypes.Equal(agg.State[0].Init, sqltypes.NewInt(0)) {
		t.Errorf("state = %+v", agg.State)
	}
	if !strings.Contains(algebra.Print(rel), agg.Name) {
		t.Error("tree should invoke the auxiliary aggregate")
	}
}

func TestBuildScalarUnsupportedCases(t *testing.T) {
	cases := map[string]string{
		"return-in-branch": `
create function f(int k) returns int as
begin
  if (k > 0) return 1;
  return 2;
end`,
		"arbitrary-while": `
create function f(int k) returns int as
begin
  int i = 0;
  while (i < k)
  begin
    i = i + 1;
  end
  return i;
end`,
		"non-const-agg-init": `
create function f(int k) returns int as
begin
  int acc;
  select sum(totalprice) into :acc from orders where custkey = :k;
  declare c cursor for select price from lineitem;
  open c;
  fetch next from c into @p;
  while @@FETCH_STATUS = 0
  begin
    acc = acc + @p;
    fetch next from c into @p;
  end
  close c;
  return acc;
end`,
		"multiple-cursors": `
create function f(int k) returns int as
begin
  declare c cursor for select price from lineitem;
  declare d cursor for select qty from lineitem;
  open c;
  return 1;
end`,
		"redeclaration": `
create function f(int k) returns int as
begin
  int x = 1;
  int x = 2;
  return x;
end`,
		"no-return": `
create function f(int k) returns int as
begin
  int x = 1;
end`,
	}
	for name, ddl := range cases {
		t.Run(name, func(t *testing.T) {
			_, _, err := buildScalarUDF(t, udfTestSchema+ddl, "f")
			if !errors.Is(err, ErrUnsupported) {
				t.Errorf("want ErrUnsupported, got %v", err)
			}
		})
	}
}

func TestBuildScalarRecursionRejected(t *testing.T) {
	cat := buildCatalog(t, udfTestSchema+`
create function r(int k) returns int as
begin
  return r(k);
end`)
	rw := NewRewriter(cat)
	b := NewUDFBuilder(cat, rw)
	fn, _ := cat.Function("r")
	// Building succeeds (the recursive call stays an uninterpreted Call);
	// but merging it via the decorrelator must not loop forever.
	rel, err := b.BuildScalar(fn)
	if err != nil {
		t.Fatalf("building with an uninterpreted self-call should work: %v", err)
	}
	_ = rel
	alg := NewAlgebrizer(cat)
	q, err := parser.ParseQuery("select custkey, r(custkey) from orders")
	if err != nil {
		t.Fatal(err)
	}
	qrel, err := alg.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewDecorrelator(cat).Rewrite(qrel)
	if err != nil {
		t.Fatal(err)
	}
	// The merge loop is bounded; the result may retain the recursive call
	// but must terminate.
	_ = res
}

func TestBuildTableValidations(t *testing.T) {
	cases := map[string]string{
		"insert-outside-loop": `
create function f() returns table tt (a int) as
begin
  insert into tt values (1);
  return tt;
end`,
		"no-loop": `
create function f() returns table tt (a int) as
begin
  return tt;
end`,
		"cyclic-dependence": `
create function f() returns table tt (a int) as
begin
  int acc = 0;
  declare c cursor for select price from lineitem;
  open c;
  fetch next from c into @p;
  while @@FETCH_STATUS = 0
  begin
    acc = acc + @p;
    insert into tt values (acc);
    fetch next from c into @p;
  end
  close c;
  return tt;
end`,
		"arity-mismatch": `
create function f() returns table tt (a int, b int) as
begin
  declare c cursor for select price from lineitem;
  open c;
  fetch next from c into @p;
  while @@FETCH_STATUS = 0
  begin
    insert into tt values (@p);
    fetch next from c into @p;
  end
  close c;
  return tt;
end`,
	}
	for name, ddl := range cases {
		t.Run(name, func(t *testing.T) {
			cat := buildCatalog(t, udfTestSchema+ddl)
			rw := NewRewriter(cat)
			b := NewUDFBuilder(cat, rw)
			fn, _ := cat.Function("f")
			if _, err := b.BuildTable(fn); !errors.Is(err, ErrUnsupported) {
				t.Errorf("want ErrUnsupported, got %v", err)
			}
		})
	}
}

func TestBuildTableWellFormed(t *testing.T) {
	cat := buildCatalog(t, udfTestSchema+`
create function f(minq int) returns table tt (pk int, rev float) as
begin
  declare c cursor for select partkey, price, qty from lineitem;
  open c;
  fetch next from c into @pk, @pr, @q;
  while @@FETCH_STATUS = 0
  begin
    if (@q > minq)
      insert into tt values (@pk, @pr * @q);
    fetch next from c into @pk, @pr, @q;
  end
  close c; deallocate c;
  return tt;
end`)
	rw := NewRewriter(cat)
	b := NewUDFBuilder(cat, rw)
	fn, _ := cat.Function("f")
	rel, err := b.BuildTable(fn)
	if err != nil {
		t.Fatal(err)
	}
	schema := rel.Schema()
	if len(schema) != 2 || schema[0].Name != "pk" || schema[1].Name != "rev" {
		t.Errorf("schema = %v", schema)
	}
	// The guard becomes a selection.
	if algebra.Count(rel, func(n algebra.Rel) bool { _, ok := n.(*algebra.Select); return ok }) == 0 {
		t.Errorf("conditional insert should contribute a selection:\n%s", algebra.Print(rel))
	}
	if !algebra.HasFreeParams(rel) {
		t.Error("tree must be parameterized by :minq")
	}
}
