package core

import (
	"errors"
	"fmt"

	"udfdecorr/internal/algebra"
	"udfdecorr/internal/ast"
	"udfdecorr/internal/catalog"
	"udfdecorr/internal/ddg"
	"udfdecorr/internal/sqltypes"
)

// ErrUnsupported marks UDFs the algebrizer cannot represent; callers fall
// back to iterative invocation, mirroring the paper's tool which "does not
// transform the query" when Apply operators cannot be removed.
var ErrUnsupported = errors.New("udf not algebraizable")

func unsupportedf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrUnsupported, fmt.Sprintf(format, args...))
}

// UDFBuilder constructs parameterized expression trees for UDF bodies
// (Section IV), including cursor loops via auxiliary aggregates and
// table-valued UDFs (Section VII).
type UDFBuilder struct {
	Cat *catalog.Catalog
	Alg *Algebrizer
	rw  *Rewriter

	// NewAggs collects auxiliary aggregate functions synthesized while
	// algebraizing cursor loops; callers must register them before
	// executing rewritten queries.
	NewAggs []*catalog.Aggregate

	building map[string]bool
}

// NewUDFBuilder creates a builder sharing the rewriter's fresh-name state.
func NewUDFBuilder(cat *catalog.Catalog, rw *Rewriter) *UDFBuilder {
	return &UDFBuilder{Cat: cat, Alg: NewAlgebrizer(cat), rw: rw, building: map[string]bool{}}
}

// bodyState tracks what the statement walker knows about local variables.
type bodyState struct {
	// constInit maps variables to their statically-known current value
	// (needed to initialize auxiliary aggregate state, Section VII cond 1).
	constInit map[string]sqltypes.Value
	// symdefs maps variables to inlinable pure definitions (scalar
	// expressions without embedded queries), enabling prologue values such
	// as "cost = getCost(pkey)" to flow into loop-body expressions.
	symdefs map[string]algebra.Expr

	cursor    *ast.DeclareCursorStmt
	fetchVars []string
}

func newBodyState() *bodyState {
	return &bodyState{constInit: map[string]sqltypes.Value{}, symdefs: map[string]algebra.Expr{}}
}

// BuildScalar constructs the parameterized expression tree of a scalar UDF:
// a relation with a single column named "retval", parameterized by the
// function's formal parameters (as algebra.ParamRef).
func (b *UDFBuilder) BuildScalar(fn *catalog.Function) (algebra.Rel, error) {
	if fn.IsTableValued() {
		return nil, unsupportedf("%s is table-valued", fn.Def.Name)
	}
	if b.building[fn.Def.Name] {
		return nil, unsupportedf("recursive UDF %s", fn.Def.Name)
	}
	b.building[fn.Def.Name] = true
	defer delete(b.building, fn.Def.Name)

	st := newBodyState()
	e, retE, err := b.stmts(&algebra.Single{}, fn.Def.Body, st)
	if err != nil {
		return nil, err
	}
	if retE == nil {
		return nil, unsupportedf("%s has no terminal RETURN", fn.Def.Name)
	}
	retProj := &algebra.Project{
		Cols: []algebra.ProjCol{{E: retE, As: "retval"}},
		In:   &algebra.Single{},
	}
	e = &algebra.Apply{Kind: algebra.CrossJoin, L: e, R: retProj}
	return &algebra.Project{
		Cols: []algebra.ProjCol{{E: &algebra.ColRef{Name: "retval"}, As: "retval"}},
		In:   e,
	}, nil
}

// BuildTable constructs the expression tree of a table-valued UDF with an
// insert-only cursor loop (Section VII-B). The result schema matches the
// declared table columns (unqualified).
func (b *UDFBuilder) BuildTable(fn *catalog.Function) (algebra.Rel, error) {
	if !fn.IsTableValued() {
		return nil, unsupportedf("%s is scalar", fn.Def.Name)
	}
	if b.building[fn.Def.Name] {
		return nil, unsupportedf("recursive UDF %s", fn.Def.Name)
	}
	b.building[fn.Def.Name] = true
	defer delete(b.building, fn.Def.Name)

	st := newBodyState()
	var e algebra.Rel = &algebra.Single{}
	var result algebra.Rel
	for i, s := range fn.Def.Body {
		switch n := s.(type) {
		case *ast.WhileStmt:
			if result != nil {
				return nil, unsupportedf("%s: multiple loops", fn.Def.Name)
			}
			rel, err := b.tableLoop(e, n, st, fn)
			if err != nil {
				return nil, err
			}
			result = rel
		case *ast.ReturnStmt:
			if returnedTable(n) != fn.Def.TableName {
				return nil, unsupportedf("%s: RETURN of unexpected table", fn.Def.Name)
			}
			if i != len(fn.Def.Body)-1 {
				return nil, unsupportedf("%s: RETURN not last", fn.Def.Name)
			}
		case *ast.InsertStmt:
			// Constraint (iii): no inserts outside the loop.
			return nil, unsupportedf("%s: INSERT outside the cursor loop", fn.Def.Name)
		default:
			ne, ret, err := b.stmts(e, []ast.Stmt{s}, st)
			if err != nil {
				return nil, err
			}
			if ret != nil {
				return nil, unsupportedf("%s: scalar RETURN in table function", fn.Def.Name)
			}
			e = ne
		}
	}
	if result == nil {
		return nil, unsupportedf("%s: no cursor loop", fn.Def.Name)
	}
	return result, nil
}

// tableLoop algebraizes the insert-only cursor loop of a table-valued UDF.
func (b *UDFBuilder) tableLoop(outer algebra.Rel, loop *ast.WhileStmt, st *bodyState, fn *catalog.Function) (algebra.Rel, error) {
	body, err := b.loopBody(loop, st)
	if err != nil {
		return nil, err
	}
	// Locate the single INSERT, which may be guarded by a condition
	// ("IF (p) INSERT ..." algebraizes as a selection over the cursor rows).
	insertIdx := -1
	var insert *ast.InsertStmt
	var guard ast.Expr
	for i, s := range body {
		switch ins := s.(type) {
		case *ast.InsertStmt:
			if insert != nil {
				return nil, unsupportedf("%s: multiple INSERTs in loop", fn.Def.Name)
			}
			insert, insertIdx = ins, i
		case *ast.IfStmt:
			if len(ins.Then) == 1 && len(ins.Else) == 0 {
				if inner, ok := ins.Then[0].(*ast.InsertStmt); ok {
					if insert != nil {
						return nil, unsupportedf("%s: multiple INSERTs in loop", fn.Def.Name)
					}
					insert, insertIdx, guard = inner, i, ins.Cond
				}
			}
		}
	}
	if insert == nil {
		return nil, unsupportedf("%s: loop without INSERT", fn.Def.Name)
	}
	if insert.Table != fn.Def.TableName {
		return nil, unsupportedf("%s: INSERT into %q", fn.Def.Name, insert.Table)
	}
	if len(insert.Values) != len(fn.Def.TableCols) {
		return nil, unsupportedf("%s: INSERT arity %d, want %d", fn.Def.Name, len(insert.Values), len(fn.Def.TableCols))
	}
	rest := append(append([]ast.Stmt{}, body[:insertIdx]...), body[insertIdx+1:]...)
	// Condition (i): no cyclic data dependences.
	if g := ddg.Build(rest); g.FirstCyclic() >= 0 {
		return nil, unsupportedf("%s: cyclic dependence in table-valued loop", fn.Def.Name)
	}
	// Per-row computation over the cursor rows. Statements after the INSERT
	// only set up the next iteration (the fetch was already stripped); any
	// other trailing work would be unsupported, so require value reads to
	// come from the prefix.
	ein, err := b.perRow(outer, rest, st)
	if err != nil {
		return nil, err
	}
	loopSc := &scope{schema: ein.Schema(), outer: &scope{schema: outer.Schema()}}
	if guard != nil {
		pred, err := b.procExpr(guard, loopSc, st, ein.Schema())
		if err != nil {
			return nil, err
		}
		ein = &algebra.Select{Pred: pred, In: ein}
	}
	cols := make([]algebra.ProjCol, len(insert.Values))
	for i, v := range insert.Values {
		e, err := b.procExpr(v, loopSc, st, ein.Schema())
		if err != nil {
			return nil, err
		}
		cols[i] = algebra.ProjCol{E: e, As: fn.Def.TableCols[i].Name}
	}
	return &algebra.Project{Cols: cols, In: ein}, nil
}

// loopBody validates the cursor-loop shape and returns the body without the
// trailing re-fetch: the loop must be WHILE @@FETCH_STATUS = 0 over the
// declared cursor, with a FETCH as its final statement.
func (b *UDFBuilder) loopBody(loop *ast.WhileStmt, st *bodyState) ([]ast.Stmt, error) {
	if st.cursor == nil || len(st.fetchVars) == 0 {
		return nil, unsupportedf("loop without a preceding cursor and fetch")
	}
	if !isFetchStatusCond(loop.Cond) {
		return nil, unsupportedf("loop condition is not @@FETCH_STATUS = 0")
	}
	if len(loop.Body) == 0 {
		return nil, unsupportedf("empty loop body")
	}
	last, ok := loop.Body[len(loop.Body)-1].(*ast.FetchStmt)
	if !ok || last.Cursor != st.cursor.Name {
		return nil, unsupportedf("loop body must end with FETCH from %s", st.cursor.Name)
	}
	if len(last.Into) != len(st.fetchVars) {
		return nil, unsupportedf("inconsistent FETCH INTO lists")
	}
	return loop.Body[:len(loop.Body)-1], nil
}

// returnedTable extracts the table name of a RETURN statement in a
// table-valued UDF ("RETURN tt" parses as a bare column reference).
func returnedTable(n *ast.ReturnStmt) string {
	if n.Table != "" {
		return n.Table
	}
	if cn, ok := n.Expr.(*ast.ColName); ok && cn.Qual == "" {
		return cn.Name
	}
	return ""
}

func isFetchStatusCond(e ast.Expr) bool {
	cmp, ok := e.(*ast.BinExpr)
	if !ok || cmp.Op != ast.BinEQ {
		return false
	}
	ref, ok := cmp.L.(*ast.ParamRef)
	if !ok {
		ref, ok = cmp.R.(*ast.ParamRef)
	}
	if !ok || ref.Name != "@@fetch_status" {
		return false
	}
	lit, ok := cmp.R.(*ast.Lit)
	if !ok {
		lit, ok = cmp.L.(*ast.Lit)
	}
	if !ok {
		return false
	}
	v, vok := lit.Val.AsInt()
	return vok && v == 0
}

// perRow builds E_in: the relation of per-iteration values — the cursor
// query with its outputs renamed to the fetch variables, extended by the
// given (acyclic) statements.
func (b *UDFBuilder) perRow(outer algebra.Rel, stmts []ast.Stmt, st *bodyState) (algebra.Rel, error) {
	curRel, err := b.query(st.cursor.Select, outer, st)
	if err != nil {
		return nil, err
	}
	outs := curRel.Schema()
	if len(outs) < len(st.fetchVars) {
		return nil, unsupportedf("cursor produces %d columns for %d fetch targets", len(outs), len(st.fetchVars))
	}
	cols := make([]algebra.ProjCol, len(st.fetchVars))
	for i, v := range st.fetchVars {
		cols[i] = algebra.ProjCol{E: &algebra.ColRef{Qual: outs[i].Qual, Name: outs[i].Name}, As: v}
	}
	var ein algebra.Rel = &algebra.Project{Cols: cols, In: curRel}

	// Extend with the per-row statements using the Section IV machinery,
	// with the cursor relation (not Single) as the base.
	loopState := newBodyState()
	for k, v := range st.symdefs {
		loopState.symdefs[k] = v
	}
	ein, ret, err := b.stmtsOver(ein, outer, stmts, loopState, st)
	if err != nil {
		return nil, err
	}
	if ret != nil {
		return nil, unsupportedf("RETURN inside a cursor loop")
	}
	return ein, nil
}
