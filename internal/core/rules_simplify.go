package core

import (
	"udfdecorr/internal/algebra"
	"udfdecorr/internal/sqltypes"
)

// This file holds normalization rules that keep rewritten trees tidy and
// surface the shapes the decorrelation rules of rules.go match on, plus the
// subquery-decorrelation entry points (scalar subqueries and EXISTS become
// Apply operators, the starting point of Section II).

// ---------------------------------------------------------------------------
// Simplifications
// ---------------------------------------------------------------------------

// ruleSelectMerge combines adjacent selections:
// σ_{p1}(σ_{p2}(e)) = σ_{p1 ∧ p2}(e).
func ruleSelectMerge(rw *Rewriter, n algebra.Rel) (algebra.Rel, bool) {
	s, ok := n.(*algebra.Select)
	if !ok {
		return nil, false
	}
	inner, ok := s.In.(*algebra.Select)
	if !ok {
		return nil, false
	}
	return &algebra.Select{
		Pred: &algebra.Logic{Op: algebra.LogicAnd, L: inner.Pred, R: s.Pred},
		In:   inner.In,
	}, true
}

// ruleSelectTrue removes trivially-true selections.
func ruleSelectTrue(rw *Rewriter, n algebra.Rel) (algebra.Rel, bool) {
	s, ok := n.(*algebra.Select)
	if !ok {
		return nil, false
	}
	c, ok := s.Pred.(*algebra.Const)
	if !ok || sqltypes.TriOf(c.Val) != sqltypes.True {
		return nil, false
	}
	return s.In, true
}

// ruleJoinSingle removes cross/inner joins against the Single relation.
func ruleJoinSingle(rw *Rewriter, n algebra.Rel) (algebra.Rel, bool) {
	j, ok := n.(*algebra.Join)
	if !ok {
		return nil, false
	}
	if j.Kind != algebra.CrossJoin && j.Kind != algebra.InnerJoin {
		return nil, false
	}
	reduce := func(keep algebra.Rel) (algebra.Rel, bool) {
		if j.Cond == nil {
			return keep, true
		}
		return &algebra.Select{Pred: j.Cond, In: keep}, true
	}
	if isSingle(j.L) {
		return reduce(j.R)
	}
	if isSingle(j.R) {
		return reduce(j.L)
	}
	return nil, false
}

// rulePushSelectThroughProject commutes a selection below a projection:
// σ_p(Π_A(e)) = Π_A(σ_p'(e)), rewriting references to pass-through columns.
// It fires only when every projection output referenced by the predicate is
// a plain column reference, and connects R6's output to R7's input shape.
func rulePushSelectThroughProject(rw *Rewriter, n algebra.Rel) (algebra.Rel, bool) {
	s, ok := n.(*algebra.Select)
	if !ok {
		return nil, false
	}
	p, ok := s.In.(*algebra.Project)
	if !ok || p.Dedup {
		return nil, false
	}
	outDefs := map[algebra.Ref]algebra.Expr{}
	for _, c := range p.Cols {
		outDefs[algebra.Ref{Qual: c.Qual, Name: c.As}] = c.E
	}
	// Collect predicate references that resolve to projection outputs; all
	// must be pass-through column references (or constants would also be
	// fine, but keep it simple).
	subst := map[algebra.Ref]algebra.Expr{}
	okToPush := true
	algebra.VisitExpr(s.Pred, func(x algebra.Expr) {
		c, isRef := x.(*algebra.ColRef)
		if !isRef {
			return
		}
		def, isOut := outDefs[algebra.Ref{Qual: c.Qual, Name: c.Name}]
		if !isOut {
			return
		}
		switch def.(type) {
		case *algebra.ColRef, *algebra.Const:
			subst[algebra.Ref{Qual: c.Qual, Name: c.Name}] = def
		default:
			okToPush = false
		}
	}, nil)
	if !okToPush {
		return nil, false
	}
	pred := substituteCols(s.Pred, subst)
	return &algebra.Project{Cols: p.Cols, In: &algebra.Select{Pred: pred, In: p.In}}, true
}

// rulePruneUnusedApply removes a pure, exactly-one-row cross Apply whose
// outputs the projection above never references (dead branch computations
// left behind by conditional merging). Cross product with one row preserves
// multiplicity, so dropping the inner side is safe.
func rulePruneUnusedApply(rw *Rewriter, n algebra.Rel) (algebra.Rel, bool) {
	p, ok := n.(*algebra.Project)
	if !ok {
		return nil, false
	}
	a, ok := p.In.(*algebra.Apply)
	if !ok || len(a.Binds) > 0 {
		return nil, false
	}
	if a.Kind != algebra.CrossJoin && a.Kind != algebra.InnerJoin {
		return nil, false
	}
	if !exactlyOneRow(a.R) {
		return nil, false
	}
	rSchema := a.R.Schema()
	for _, c := range p.Cols {
		if algebra.ExprUsesRefsOf(c.E, rSchema) {
			return nil, false
		}
	}
	return &algebra.Project{Cols: p.Cols, Dedup: p.Dedup, In: a.L}, true
}

// ruleR3ProjectCompose implements rule R3 (function composition for
// generalized projection): Π_{f(B)}(Π_{g(A) as B}(r)) = Π_{f(g(A))}(r).
func ruleR3ProjectCompose(rw *Rewriter, n algebra.Rel) (algebra.Rel, bool) {
	outer, ok := n.(*algebra.Project)
	if !ok {
		return nil, false
	}
	inner, ok := outer.In.(*algebra.Project)
	if !ok || inner.Dedup {
		return nil, false
	}
	defs := map[algebra.Ref]algebra.Expr{}
	for _, c := range inner.Cols {
		defs[algebra.Ref{Qual: c.Qual, Name: c.As}] = c.E
	}
	cols := make([]algebra.ProjCol, len(outer.Cols))
	for i, c := range outer.Cols {
		cols[i] = algebra.ProjCol{E: substituteCols(c.E, defs), Qual: c.Qual, As: c.As}
	}
	return &algebra.Project{Cols: cols, Dedup: outer.Dedup, In: inner.In}, true
}

// exprCorrelatedOutside reports whether the expression references columns
// not provided by the given schema (i.e. it is correlated with an enclosing
// scope). Free parameters are scope-independent and do not count.
func exprCorrelatedOutside(e algebra.Expr, schema []algebra.Column) bool {
	probe := &algebra.Select{Pred: e, In: &algebra.Single{}}
	for ref := range algebra.FreeRefs(probe) {
		if ref.IsParam {
			continue
		}
		if !algebra.HasRef(schema, ref.Qual, ref.Name) {
			return true
		}
	}
	return false
}

// rulePushSelectIntoJoin merges the non-correlated conjuncts of a selection
// into an inner/cross join condition so that equi-join detection (and
// subsequent predicate pushdown) sees them. Correlated conjuncts stay above
// the join, where rule K2 can turn an enclosing Apply into a join.
func rulePushSelectIntoJoin(rw *Rewriter, n algebra.Rel) (algebra.Rel, bool) {
	s, ok := n.(*algebra.Select)
	if !ok {
		return nil, false
	}
	j, ok := s.In.(*algebra.Join)
	if !ok {
		return nil, false
	}
	if j.Kind != algebra.CrossJoin && j.Kind != algebra.InnerJoin {
		return nil, false
	}
	jSchema := j.Schema()
	var merge, keep []algebra.Expr
	for _, c := range algebra.SplitConjuncts(s.Pred) {
		if exprCorrelatedOutside(c, jSchema) {
			keep = append(keep, c)
		} else {
			merge = append(merge, c)
		}
	}
	if len(merge) == 0 {
		return nil, false
	}
	cond := algebra.AndAll(merge)
	if j.Cond != nil {
		cond = &algebra.Logic{Op: algebra.LogicAnd, L: j.Cond, R: cond}
	}
	out := &algebra.Join{Kind: algebra.InnerJoin, Cond: cond, L: j.L, R: j.R}
	if pred := algebra.AndAll(keep); pred != nil {
		return &algebra.Select{Pred: pred, In: out}, true
	}
	return out, true
}

// refsOnlySchema reports whether every column reference of the expression
// is satisfied by the schema and the expression has no free parameters that
// would make its placement ambiguous.
func refsOnlySchema(e algebra.Expr, schema []algebra.Column) bool {
	probe := &algebra.Select{Pred: e, In: &algebra.Single{}}
	for ref := range algebra.FreeRefs(probe) {
		if ref.IsParam {
			continue // parameters are scope-independent
		}
		if !algebra.HasRef(schema, ref.Qual, ref.Name) {
			return false
		}
	}
	return true
}

// rulePushdownIntoJoinChildren pushes inner-join condition conjuncts that
// reference a single side down into that side, so deeper joins become
// equi-joins the planner can hash (standard predicate pushdown).
func rulePushdownIntoJoinChildren(rw *Rewriter, n algebra.Rel) (algebra.Rel, bool) {
	j, ok := n.(*algebra.Join)
	if !ok || j.Cond == nil || j.Kind != algebra.InnerJoin {
		return nil, false
	}
	lSchema, rSchema := j.L.Schema(), j.R.Schema()
	var toL, toR, keep []algebra.Expr
	for _, c := range algebra.SplitConjuncts(j.Cond) {
		switch {
		case refsOnlySchema(c, lSchema):
			toL = append(toL, c)
		case refsOnlySchema(c, rSchema):
			toR = append(toR, c)
		default:
			keep = append(keep, c)
		}
	}
	if len(toL) == 0 && len(toR) == 0 {
		return nil, false
	}
	l, r := j.L, j.R
	if p := algebra.AndAll(toL); p != nil {
		l = &algebra.Select{Pred: p, In: l}
	}
	if p := algebra.AndAll(toR); p != nil {
		r = &algebra.Select{Pred: p, In: r}
	}
	kind := j.Kind
	cond := algebra.AndAll(keep)
	if cond == nil {
		kind = algebra.CrossJoin
	}
	return &algebra.Join{Kind: kind, Cond: cond, L: l, R: r}, true
}

// ruleHoistCorrelatedSelect pulls correlated selection conjuncts out of a
// join's children above the join, so that an enclosing Apply can see them
// (the generalization of K3 to predicates buried under joins).
func ruleHoistCorrelatedSelect(rw *Rewriter, n algebra.Rel) (algebra.Rel, bool) {
	j, ok := n.(*algebra.Join)
	if !ok {
		return nil, false
	}
	if j.Kind != algebra.CrossJoin && j.Kind != algebra.InnerJoin && j.Kind != algebra.LeftOuterJoin {
		return nil, false
	}
	jSchema := j.Schema()
	hoistFrom := func(child algebra.Rel) (algebra.Rel, []algebra.Expr) {
		sel, ok := child.(*algebra.Select)
		if !ok {
			return child, nil
		}
		var hoisted, kept []algebra.Expr
		for _, c := range algebra.SplitConjuncts(sel.Pred) {
			if exprCorrelatedOutside(c, jSchema) {
				hoisted = append(hoisted, c)
			} else {
				kept = append(kept, c)
			}
		}
		if len(hoisted) == 0 {
			return child, nil
		}
		if pred := algebra.AndAll(kept); pred != nil {
			return &algebra.Select{Pred: pred, In: sel.In}, hoisted
		}
		return sel.In, hoisted
	}
	newL, hoistedL := hoistFrom(j.L)
	var newR algebra.Rel = j.R
	var hoistedR []algebra.Expr
	if j.Kind != algebra.LeftOuterJoin {
		// Hoisting from the null-extended side of an outer join would
		// change semantics.
		newR, hoistedR = hoistFrom(j.R)
	}
	all := append(hoistedL, hoistedR...)
	if len(all) == 0 {
		return nil, false
	}
	return &algebra.Select{
		Pred: algebra.AndAll(all),
		In:   &algebra.Join{Kind: j.Kind, Cond: j.Cond, L: newL, R: newR},
	}, true
}

// ---------------------------------------------------------------------------
// Subquery decorrelation entry points
// ---------------------------------------------------------------------------

// findSubquery locates the first scalar Subquery node in an expression.
func findSubquery(e algebra.Expr) *algebra.Subquery {
	var found *algebra.Subquery
	algebra.VisitExpr(e, func(x algebra.Expr) {
		if found != nil {
			return
		}
		if sq, ok := x.(*algebra.Subquery); ok {
			found = sq
		}
	}, nil)
	return found
}

// replaceExprNode replaces occurrences of the target expression (compared
// structurally, since tree rewriting rebuilds interior nodes).
func replaceExprNode(e algebra.Expr, target, repl algebra.Expr) algebra.Expr {
	if algebra.EqualExpr(e, target) {
		return repl
	}
	return algebra.MapExpr(e, func(x algebra.Expr) algebra.Expr {
		if algebra.EqualExpr(x, target) {
			return repl
		}
		return x
	}, nil)
}

// ruleSubqueryToApply lifts a scalar subquery out of a selection or
// projection into an Apply (left outer, so an empty subquery yields NULL —
// matching iterative evaluation). It fires only when the subquery provably
// produces at most one row, so decorrelation cannot change cardinality.
func ruleSubqueryToApply(rw *Rewriter, n algebra.Rel) (algebra.Rel, bool) {
	switch node := n.(type) {
	case *algebra.Select:
		sq := findSubquery(node.Pred)
		if sq == nil || !maxOneRow(sq.Rel) {
			return nil, false
		}
		inSchema := node.In.Schema()
		col := rw.FreshName("sq")
		inner := sq.Rel.Schema()
		rn := &algebra.Project{Cols: []algebra.ProjCol{{
			E:  &algebra.ColRef{Qual: inner[0].Qual, Name: inner[0].Name},
			As: col,
		}}, In: sq.Rel}
		apply := &algebra.Apply{Kind: algebra.LeftOuterJoin, L: node.In, R: rn}
		pred := replaceExprNode(node.Pred, sq, &algebra.ColRef{Name: col})
		filtered := &algebra.Select{Pred: pred, In: apply}
		return &algebra.Project{Cols: passthroughCols(inSchema), In: filtered}, true

	case *algebra.Project:
		for i, c := range node.Cols {
			sq := findSubquery(c.E)
			if sq == nil {
				continue
			}
			if !maxOneRow(sq.Rel) {
				return nil, false
			}
			col := rw.FreshName("sq")
			inner := sq.Rel.Schema()
			rn := &algebra.Project{Cols: []algebra.ProjCol{{
				E:  &algebra.ColRef{Qual: inner[0].Qual, Name: inner[0].Name},
				As: col,
			}}, In: sq.Rel}
			apply := &algebra.Apply{Kind: algebra.LeftOuterJoin, L: node.In, R: rn}
			cols := make([]algebra.ProjCol, len(node.Cols))
			copy(cols, node.Cols)
			cols[i] = algebra.ProjCol{
				E:    replaceExprNode(c.E, sq, &algebra.ColRef{Name: col}),
				Qual: c.Qual,
				As:   c.As,
			}
			return &algebra.Project{Cols: cols, Dedup: node.Dedup, In: apply}, true
		}
		return nil, false
	}
	return nil, false
}

// ruleExistsToApply rewrites a top-level [NOT] EXISTS conjunct of a
// selection into a semijoin (antijoin) Apply.
func ruleExistsToApply(rw *Rewriter, n algebra.Rel) (algebra.Rel, bool) {
	s, ok := n.(*algebra.Select)
	if !ok {
		return nil, false
	}
	conjuncts := algebra.SplitConjuncts(s.Pred)
	for i, c := range conjuncts {
		ex, ok := c.(*algebra.Exists)
		if !ok {
			continue
		}
		kind := algebra.SemiJoin
		if ex.Neg {
			kind = algebra.AntiJoin
		}
		apply := &algebra.Apply{Kind: kind, L: s.In, R: ex.Rel}
		rest := append(append([]algebra.Expr{}, conjuncts[:i]...), conjuncts[i+1:]...)
		if pred := algebra.AndAll(rest); pred != nil {
			return &algebra.Select{Pred: pred, In: apply}, true
		}
		return apply, true
	}
	return nil, false
}
