package core

import (
	"udfdecorr/internal/algebra"
	"udfdecorr/internal/sqltypes"
)

// This file implements the equivalence rules of Table I (K1–K6, known rules
// from Galindo-Legaria & Joshi) and Table II (R1–R9, the paper's new rules),
// plus the scalar-aggregate decorrelation the paper invokes as "the
// transformations proposed in [5]".

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

func isSingle(r algebra.Rel) bool {
	_, ok := r.(*algebra.Single)
	return ok
}

// projectOverSingle matches Π_A(S): a non-deduplicating projection whose
// input is the Single relation.
func projectOverSingle(r algebra.Rel) (*algebra.Project, bool) {
	p, ok := r.(*algebra.Project)
	if !ok || p.Dedup {
		return nil, false
	}
	if !isSingle(p.In) {
		return nil, false
	}
	return p, true
}

// substituteCols replaces column references by expressions throughout an
// expression tree (including nested subqueries).
func substituteCols(e algebra.Expr, m map[algebra.Ref]algebra.Expr) algebra.Expr {
	if len(m) == 0 || e == nil {
		return e
	}
	return algebra.MapExpr(e, func(x algebra.Expr) algebra.Expr {
		if c, ok := x.(*algebra.ColRef); ok {
			if repl, ok := m[algebra.Ref{Qual: c.Qual, Name: c.Name}]; ok {
				return repl
			}
		}
		return x
	}, func(sub algebra.Rel) algebra.Rel {
		return algebra.MapExprsDeep(sub, func(x algebra.Expr) algebra.Expr {
			if c, ok := x.(*algebra.ColRef); ok {
				if repl, ok := m[algebra.Ref{Qual: c.Qual, Name: c.Name}]; ok {
					return repl
				}
			}
			return x
		})
	})
}

// namesCollide reports whether any projected output name would be ambiguous
// against the given schema.
func namesCollide(cols []algebra.ProjCol, schema []algebra.Column) bool {
	for _, c := range cols {
		if algebra.HasRef(schema, c.Qual, c.As) {
			return true
		}
	}
	return false
}

// passthroughCols builds identity projection columns for a schema.
func passthroughCols(schema []algebra.Column) []algebra.ProjCol {
	return algebra.IdentityProjCols(schema)
}

// maxOneRow reports whether a relational expression is statically known to
// produce at most one row (scalar aggregation, Single, LIMIT 1, or
// row-preserving operators above those).
func maxOneRow(r algebra.Rel) bool {
	switch n := r.(type) {
	case *algebra.Single:
		return true
	case *algebra.GroupBy:
		return len(n.Keys) == 0
	case *algebra.Limit:
		return n.N <= 1 || maxOneRow(n.In)
	case *algebra.Project:
		return maxOneRow(n.In)
	case *algebra.Select:
		return maxOneRow(n.In)
	case *algebra.Sort:
		return maxOneRow(n.In)
	case *algebra.ApplyMerge:
		return maxOneRow(n.L)
	case *algebra.CondApplyMerge:
		return maxOneRow(n.In)
	case *algebra.Apply:
		if n.Kind == algebra.CrossJoin || n.Kind == algebra.InnerJoin || n.Kind == algebra.LeftOuterJoin {
			return maxOneRow(n.L) && maxOneRow(n.R)
		}
		return maxOneRow(n.L)
	case *algebra.Join:
		if n.Kind == algebra.SemiJoin || n.Kind == algebra.AntiJoin {
			return maxOneRow(n.L)
		}
		return false
	default:
		return false
	}
}

// exactlyOneRow reports whether a relational expression produces exactly
// one row for every parameter binding (scalar aggregation and
// row-preserving operators above it).
func exactlyOneRow(r algebra.Rel) bool {
	switch n := r.(type) {
	case *algebra.Single:
		return true
	case *algebra.GroupBy:
		return len(n.Keys) == 0
	case *algebra.Project:
		return exactlyOneRow(n.In)
	case *algebra.Sort:
		return exactlyOneRow(n.In)
	case *algebra.ApplyMerge:
		return exactlyOneRow(n.L)
	case *algebra.CondApplyMerge:
		return exactlyOneRow(n.In)
	case *algebra.Apply:
		if n.Kind == algebra.CrossJoin || n.Kind == algebra.InnerJoin || n.Kind == algebra.LeftOuterJoin {
			return exactlyOneRow(n.L) && exactlyOneRow(n.R)
		}
		return false
	default:
		return false
	}
}

// ruleLeftOuterToCross turns a left-outer Apply into a cross Apply when the
// inner expression always produces exactly one row, so the null-extension
// case cannot arise. This normalizes the applies introduced for scalar
// subqueries into the shape rules K3/K4 and the aggregate decorrelation
// match on.
func ruleLeftOuterToCross(rw *Rewriter, n algebra.Rel) (algebra.Rel, bool) {
	a, ok := n.(*algebra.Apply)
	if !ok || a.Kind != algebra.LeftOuterJoin {
		return nil, false
	}
	if !exactlyOneRow(a.R) {
		return nil, false
	}
	return &algebra.Apply{Kind: algebra.CrossJoin, Binds: a.Binds, L: a.L, R: a.R}, true
}

// ---------------------------------------------------------------------------
// R9: bind removal
// ---------------------------------------------------------------------------

// ruleR9BindRemoval implements rule R9: an Apply with bind extension is
// replaced by substituting the actual arguments for the formal parameters in
// the inner expression.
func ruleR9BindRemoval(rw *Rewriter, n algebra.Rel) (algebra.Rel, bool) {
	a, ok := n.(*algebra.Apply)
	if !ok || len(a.Binds) == 0 {
		return nil, false
	}
	m := make(map[string]algebra.Expr, len(a.Binds))
	for _, b := range a.Binds {
		m[b.Param] = b.Arg
	}
	return &algebra.Apply{Kind: a.Kind, L: a.L, R: algebra.SubstituteParams(a.R, m)}, true
}

// ---------------------------------------------------------------------------
// R1: Apply-cross with Single child
// ---------------------------------------------------------------------------

// ruleR1ApplySingle implements rule R1: r A× S = S A× r = r.
func ruleR1ApplySingle(rw *Rewriter, n algebra.Rel) (algebra.Rel, bool) {
	a, ok := n.(*algebra.Apply)
	if !ok || len(a.Binds) > 0 {
		return nil, false
	}
	if a.Kind != algebra.CrossJoin && a.Kind != algebra.InnerJoin {
		return nil, false
	}
	if isSingle(a.L) {
		return a.R, true
	}
	if isSingle(a.R) {
		return a.L, true
	}
	return nil, false
}

// ---------------------------------------------------------------------------
// R2: Apply-merge with projection over Single
// ---------------------------------------------------------------------------

// mergeTargets resolves the assignment list of an ApplyMerge: explicit
// assignments, or (by default) all attributes common to both sides.
// The result maps left-column name -> source expression.
func mergeTargets(am *algebra.ApplyMerge, rCols []algebra.ProjCol) (map[string]algebra.Expr, bool) {
	bySource := map[string]algebra.Expr{}
	for _, c := range rCols {
		bySource[c.As] = c.E
	}
	out := map[string]algebra.Expr{}
	if len(am.Assigns) > 0 {
		for _, as := range am.Assigns {
			src, ok := bySource[as.Source]
			if !ok {
				return nil, false
			}
			out[as.Target] = src
		}
		return out, true
	}
	for _, c := range am.L.Schema() {
		if e, ok := bySource[c.Name]; ok {
			out[c.Name] = e
		}
	}
	return out, true
}

// ruleR2MergeProjectSingle implements rule R2:
// r AM (Π_A(S)) = Πd_{B,A}(r).
func ruleR2MergeProjectSingle(rw *Rewriter, n algebra.Rel) (algebra.Rel, bool) {
	am, ok := n.(*algebra.ApplyMerge)
	if !ok {
		return nil, false
	}
	proj, ok := projectOverSingle(am.R)
	if !ok {
		return nil, false
	}
	targets, ok := mergeTargets(am, proj.Cols)
	if !ok {
		return nil, false
	}
	lSchema := am.L.Schema()
	cols := make([]algebra.ProjCol, len(lSchema))
	for i, c := range lSchema {
		if e, assigned := targets[c.Name]; assigned && c.Qual == "" {
			cols[i] = algebra.ProjCol{E: e, As: c.Name}
			continue
		}
		cols[i] = algebra.ProjCol{E: &algebra.ColRef{Qual: c.Qual, Name: c.Name}, Qual: c.Qual, As: c.Name}
	}
	return &algebra.Project{Cols: cols, In: am.L}, true
}

// ---------------------------------------------------------------------------
// R4: general Apply-merge removal
// ---------------------------------------------------------------------------

// ruleR4MergeRemoval implements rule R4: r AM(L) e(r) = Π_X(r A× e(r)),
// renaming the inner outputs first so the projection cannot capture
// same-named outer columns.
//
// Deviation from the paper's literal statement: the Apply is left-outer
// rather than cross, because our AM semantics assign NULL when e(r) is
// empty (SELECT INTO over a missing row — see DESIGN.md). When e(r) is
// provably exactly one row the left-outer Apply immediately normalizes
// back to a cross Apply.
func ruleR4MergeRemoval(rw *Rewriter, n algebra.Rel) (algebra.Rel, bool) {
	am, ok := n.(*algebra.ApplyMerge)
	if !ok {
		return nil, false
	}
	rSchema := am.R.Schema()
	// Rename every inner output to a fresh name.
	renCols := make([]algebra.ProjCol, len(rSchema))
	fresh := map[string]string{} // original inner name -> fresh name
	for i, c := range rSchema {
		f := rw.FreshName("m")
		fresh[c.Name] = f
		renCols[i] = algebra.ProjCol{E: &algebra.ColRef{Qual: c.Qual, Name: c.Name}, As: f}
	}
	renamed := &algebra.Project{Cols: renCols, In: am.R}

	// Determine target mapping: left column -> fresh inner column name.
	assignOf := map[string]string{}
	if len(am.Assigns) > 0 {
		for _, as := range am.Assigns {
			f, ok := fresh[as.Source]
			if !ok {
				return nil, false
			}
			assignOf[as.Target] = f
		}
	} else {
		lSchema := am.L.Schema()
		for _, c := range lSchema {
			if f, ok := fresh[c.Name]; ok {
				assignOf[c.Name] = f
			}
		}
	}
	lSchema := am.L.Schema()
	cols := make([]algebra.ProjCol, len(lSchema))
	for i, c := range lSchema {
		if f, assigned := assignOf[c.Name]; assigned && c.Qual == "" {
			cols[i] = algebra.ProjCol{E: &algebra.ColRef{Name: f}, As: c.Name}
			continue
		}
		cols[i] = algebra.ProjCol{E: &algebra.ColRef{Qual: c.Qual, Name: c.Name}, Qual: c.Qual, As: c.Name}
	}
	apply := &algebra.Apply{Kind: algebra.LeftOuterJoin, L: am.L, R: renamed}
	return &algebra.Project{Cols: cols, In: apply}, true
}

// ---------------------------------------------------------------------------
// R6: Conditional Apply-Merge to Apply-Merge over a union
// ---------------------------------------------------------------------------

// branchProject normalizes an AMC branch to a projection producing exactly
// the target columns under fresh output names (missing targets become
// pass-through references to the outer tuple, i.e. "no assignment"). Fresh
// names prevent the selection placed above the branch from capturing the
// branch's new values: the paper's σ_p(r)(et(r)) evaluates p against r.
func branchProject(br algebra.Rel, targets []algebra.Column, fresh []string) algebra.Rel {
	produced := map[string]algebra.Expr{}
	if br != nil {
		for _, c := range br.Schema() {
			produced[c.Name] = &algebra.ColRef{Qual: c.Qual, Name: c.Name}
		}
	}
	cols := make([]algebra.ProjCol, len(targets))
	for i, t := range targets {
		if e, ok := produced[t.Name]; ok {
			cols[i] = algebra.ProjCol{E: e, As: fresh[i]}
		} else {
			// Keep the existing value: reference the outer column (free).
			cols[i] = algebra.ProjCol{E: &algebra.ColRef{Qual: t.Qual, Name: t.Name}, As: fresh[i]}
		}
	}
	var in algebra.Rel = &algebra.Single{}
	if br != nil {
		in = br
	}
	return &algebra.Project{Cols: cols, In: in}
}

// ruleCondMergeEager generalizes R8 to branches that are not simple
// projections over Single (e.g. branches containing embedded queries):
// both branches are pure single-tuple expressions, so they can be evaluated
// unconditionally per outer row (cross Applies) and merged per column with
// a conditional expression:
//
//	r AMC(p, et, ef) = Π_{r.*, (p ? et.c : ef.c) ...}((r A× et') A× ef')
//
// The branch outputs are alpha-renamed first, so the predicate (evaluated
// against r's pre-assignment values) cannot capture them.
func ruleCondMergeEager(rw *Rewriter, n algebra.Rel) (algebra.Rel, bool) {
	amc, ok := n.(*algebra.CondApplyMerge)
	if !ok {
		return nil, false
	}
	if !exactlyOneRow(amc.Then) {
		return nil, false
	}
	if amc.Else != nil && !exactlyOneRow(amc.Else) {
		return nil, false
	}
	inSchema := amc.In.Schema()

	// Alpha-rename a branch's outputs; returns the renamed relation and a
	// map from assigned In-column name to the fresh output name.
	renameBranch := func(br algebra.Rel) (algebra.Rel, map[string]string) {
		if br == nil {
			return nil, nil
		}
		outs := br.Schema()
		cols := make([]algebra.ProjCol, 0, len(outs))
		m := map[string]string{}
		for _, c := range outs {
			if _, isTarget := algebra.ResolveRef(inSchema, "", c.Name); !isTarget {
				continue // branch-local temporary; drop
			}
			f := rw.FreshName(c.Name)
			m[c.Name] = f
			cols = append(cols, algebra.ProjCol{
				E: &algebra.ColRef{Qual: c.Qual, Name: c.Name}, As: f,
			})
		}
		if len(cols) == 0 {
			return nil, nil
		}
		return &algebra.Project{Cols: cols, In: br}, m
	}

	thenRel, thenM := renameBranch(amc.Then)
	elseRel, elseM := renameBranch(amc.Else)
	if thenRel == nil && elseRel == nil {
		return amc.In, true // conditional with no visible effect
	}
	var rel algebra.Rel = amc.In
	if thenRel != nil {
		rel = &algebra.Apply{Kind: algebra.CrossJoin, L: rel, R: thenRel}
	}
	if elseRel != nil {
		rel = &algebra.Apply{Kind: algebra.CrossJoin, L: rel, R: elseRel}
	}
	cols := make([]algebra.ProjCol, len(inSchema))
	for i, c := range inSchema {
		self := &algebra.ColRef{Qual: c.Qual, Name: c.Name}
		tf, tok := thenM[c.Name]
		ef, eok := elseM[c.Name]
		if c.Qual != "" || (!tok && !eok) {
			cols[i] = algebra.ProjCol{E: self, Qual: c.Qual, As: c.Name}
			continue
		}
		var te algebra.Expr = self
		if tok {
			te = &algebra.ColRef{Name: tf}
		}
		var ee algebra.Expr = self
		if eok {
			ee = &algebra.ColRef{Name: ef}
		}
		cols[i] = algebra.ProjCol{
			E: &algebra.Case{
				Whens: []algebra.CaseWhen{{Cond: amc.Pred, Then: te}},
				Else:  ee,
			},
			As: c.Name,
		}
	}
	return &algebra.Project{Cols: cols, In: rel}, true
}

// ruleR6CondMergeUnion implements rule R6:
// r AMC(p, et, ef) = r AM (σ_p(et) ∪ σ_¬p(ef)).
// It fires only when R8 (the direct scalar form) does not apply.
func ruleR6CondMergeUnion(rw *Rewriter, n algebra.Rel) (algebra.Rel, bool) {
	amc, ok := n.(*algebra.CondApplyMerge)
	if !ok {
		return nil, false
	}
	inSchema := amc.In.Schema()
	// Targets: columns of In assigned by either branch.
	var targets []algebra.Column
	seen := map[string]bool{}
	for _, br := range []algebra.Rel{amc.Then, amc.Else} {
		if br == nil {
			continue
		}
		for _, c := range br.Schema() {
			if seen[c.Name] {
				continue
			}
			if tc, ok := algebra.ResolveRef(inSchema, "", c.Name); ok {
				targets = append(targets, tc)
				seen[c.Name] = true
			}
		}
	}
	if len(targets) == 0 {
		return amc.In, true // no-op conditional
	}
	// Capture check: σ_p(et) evaluates p against the outer tuple, but in
	// our algebra the selection sees et's output first. If p references a
	// name either branch binds internally, the placement would capture the
	// new value; bail out (R8 handles the common scalar shapes).
	bound := map[string]bool{}
	for _, br := range []algebra.Rel{amc.Then, amc.Else} {
		if br == nil {
			continue
		}
		algebra.Visit(br, func(n algebra.Rel) {
			switch x := n.(type) {
			case *algebra.Project:
				for _, c := range x.Cols {
					if c.Qual == "" {
						bound[c.As] = true
					}
				}
			case *algebra.GroupBy:
				for _, a := range x.Aggs {
					bound[a.As] = true
				}
			}
		})
	}
	captured := false
	algebra.VisitExpr(amc.Pred, func(x algebra.Expr) {
		if c, ok := x.(*algebra.ColRef); ok && c.Qual == "" && bound[c.Name] {
			captured = true
		}
	}, nil)
	if captured {
		return nil, false
	}
	fresh := make([]string, len(targets))
	assigns := make([]algebra.MergeAssign, len(targets))
	for i, t := range targets {
		fresh[i] = rw.FreshName(t.Name)
		assigns[i] = algebra.MergeAssign{Target: t.Name, Source: fresh[i]}
	}
	union := &algebra.UnionAll{
		L: &algebra.Select{Pred: amc.Pred, In: branchProject(amc.Then, targets, fresh)},
		R: &algebra.Select{Pred: &algebra.Not{E: amc.Pred}, In: branchProject(amc.Else, targets, fresh)},
	}
	return &algebra.ApplyMerge{Assigns: assigns, L: amc.In, R: union}, true
}

// ---------------------------------------------------------------------------
// R7: union with exclusive predicates to conditional projection
// ---------------------------------------------------------------------------

// complementary reports whether p2 is syntactically the negation of p1.
func complementary(p1, p2 algebra.Expr) bool {
	if n, ok := p2.(*algebra.Not); ok && algebra.EqualExpr(n.E, p1) {
		return true
	}
	if n, ok := p1.(*algebra.Not); ok && algebra.EqualExpr(n.E, p2) {
		return true
	}
	if c1, ok := p1.(*algebra.Cmp); ok {
		if c2, ok := p2.(*algebra.Cmp); ok {
			if algebra.EqualExpr(c1.L, c2.L) && algebra.EqualExpr(c1.R, c2.R) && c2.Op == c1.Op.Negate() {
				return true
			}
		}
	}
	return false
}

// sameRel is a conservative structural equality check on relational trees.
func sameRel(a, b algebra.Rel) bool {
	return algebra.Print(a) == algebra.Print(b)
}

// ruleR7UnionToCase implements rule R7:
// Π_{e1 as a}(σ_{p1}(r)) ∪ Π_{e2 as a}(σ_{p2}(r)) = Π_{(p1?e1:e2) as a}(r)
// when p1 ∧ p2 = false (here: p2 ≡ ¬p1), generalized to multiple columns.
func ruleR7UnionToCase(rw *Rewriter, n algebra.Rel) (algebra.Rel, bool) {
	u, ok := n.(*algebra.UnionAll)
	if !ok {
		return nil, false
	}
	lp, ok := u.L.(*algebra.Project)
	if !ok || lp.Dedup {
		return nil, false
	}
	rp, ok := u.R.(*algebra.Project)
	if !ok || rp.Dedup {
		return nil, false
	}
	ls, ok := lp.In.(*algebra.Select)
	if !ok {
		return nil, false
	}
	rs, ok := rp.In.(*algebra.Select)
	if !ok {
		return nil, false
	}
	if !complementary(ls.Pred, rs.Pred) || !sameRel(ls.In, rs.In) {
		return nil, false
	}
	if len(lp.Cols) != len(rp.Cols) {
		return nil, false
	}
	cols := make([]algebra.ProjCol, len(lp.Cols))
	for i := range lp.Cols {
		if lp.Cols[i].As != rp.Cols[i].As {
			return nil, false
		}
		if algebra.EqualExpr(lp.Cols[i].E, rp.Cols[i].E) {
			cols[i] = lp.Cols[i]
			continue
		}
		cols[i] = algebra.ProjCol{
			E: &algebra.Case{
				Whens: []algebra.CaseWhen{{Cond: ls.Pred, Then: lp.Cols[i].E}},
				Else:  rp.Cols[i].E,
			},
			As: lp.Cols[i].As,
		}
	}
	return &algebra.Project{Cols: cols, In: ls.In}, true
}

// ---------------------------------------------------------------------------
// R8: Conditional Apply-Merge with scalar branches
// ---------------------------------------------------------------------------

// ruleR8CondMergeScalar implements rule R8:
// r AMC(p, et, ef) = Π_{r.*, (p?et:ef)}(r) when both branches are scalar
// valued (projections over Single).
func ruleR8CondMergeScalar(rw *Rewriter, n algebra.Rel) (algebra.Rel, bool) {
	amc, ok := n.(*algebra.CondApplyMerge)
	if !ok {
		return nil, false
	}
	thenProj, ok := projectOverSingle(amc.Then)
	if !ok {
		return nil, false
	}
	var elseProj *algebra.Project
	if amc.Else != nil {
		elseProj, ok = projectOverSingle(amc.Else)
		if !ok {
			return nil, false
		}
	}
	thenBy := map[string]algebra.Expr{}
	for _, c := range thenProj.Cols {
		thenBy[c.As] = c.E
	}
	elseBy := map[string]algebra.Expr{}
	if elseProj != nil {
		for _, c := range elseProj.Cols {
			elseBy[c.As] = c.E
		}
	}
	inSchema := amc.In.Schema()
	cols := make([]algebra.ProjCol, len(inSchema))
	for i, c := range inSchema {
		self := &algebra.ColRef{Qual: c.Qual, Name: c.Name}
		te, tok := thenBy[c.Name]
		ee, eok := elseBy[c.Name]
		if c.Qual != "" || (!tok && !eok) {
			cols[i] = algebra.ProjCol{E: self, Qual: c.Qual, As: c.Name}
			continue
		}
		if !tok {
			te = self
		}
		if !eok {
			ee = self
		}
		cols[i] = algebra.ProjCol{
			E: &algebra.Case{
				Whens: []algebra.CaseWhen{{Cond: amc.Pred, Then: te}},
				Else:  ee,
			},
			As: c.Name,
		}
	}
	return &algebra.Project{Cols: cols, In: amc.In}, true
}

// ---------------------------------------------------------------------------
// R5: move a projection past an Apply
// ---------------------------------------------------------------------------

// ruleR5ProjectPastApply implements rule R5:
// (Πd_A(r)) A⊗ e = Πd_{A, e.*}(r A⊗ e), provided e uses none of the
// computed attributes of the projection. References to pass-through columns
// are rewritten to the underlying columns.
func ruleR5ProjectPastApply(rw *Rewriter, n algebra.Rel) (algebra.Rel, bool) {
	a, ok := n.(*algebra.Apply)
	if !ok || len(a.Binds) > 0 {
		return nil, false
	}
	lp, ok := a.L.(*algebra.Project)
	if !ok || lp.Dedup {
		return nil, false
	}
	// Map projection outputs to their defining expressions.
	outExpr := map[algebra.Ref]algebra.Expr{}
	for _, c := range lp.Cols {
		outExpr[algebra.Ref{Qual: c.Qual, Name: c.As}] = c.E
	}
	// Every free ref of e that resolves against the projection must be a
	// pass-through column; build the rewrite map.
	lSchema := lp.Schema()
	subst := map[algebra.Ref]algebra.Expr{}
	for ref := range algebra.FreeRefs(a.R) {
		if ref.IsParam {
			continue
		}
		c, ok := algebra.ResolveRef(lSchema, ref.Qual, ref.Name)
		if !ok {
			continue
		}
		def := outExpr[algebra.Ref{Qual: c.Qual, Name: c.Name}]
		cr, isCol := def.(*algebra.ColRef)
		if !isCol {
			return nil, false // e uses a computed attribute
		}
		subst[ref] = cr
	}
	r := a.R
	if len(subst) > 0 {
		r = algebra.MapExprsDeep(r, func(e algebra.Expr) algebra.Expr {
			if c, ok := e.(*algebra.ColRef); ok {
				if repl, ok := subst[algebra.Ref{Qual: c.Qual, Name: c.Name}]; ok {
					return repl
				}
			}
			return e
		})
	}
	inner := &algebra.Apply{Kind: a.Kind, L: lp.In, R: r}
	switch a.Kind {
	case algebra.SemiJoin, algebra.AntiJoin:
		return &algebra.Project{Cols: lp.Cols, In: inner}, true
	default:
		rSchema := a.R.Schema()
		if namesCollide(lp.Cols, rSchema) {
			return nil, false
		}
		cols := append(append([]algebra.ProjCol{}, lp.Cols...), passthroughCols(rSchema)...)
		return &algebra.Project{Cols: cols, In: inner}, true
	}
}

// ---------------------------------------------------------------------------
// K4: pull a projection above an Apply-cross
// ---------------------------------------------------------------------------

// ruleK4ProjectPullup implements rule K4:
// r A× (Π_v(e)) = Π_{v ∪ schema(r)}(r A× e).
// For a left-outer Apply the pull-up is valid only when every projected
// expression is a plain column reference: on unmatched rows a computed
// expression (e.g. a constant) would otherwise replace the NULL extension.
func ruleK4ProjectPullup(rw *Rewriter, n algebra.Rel) (algebra.Rel, bool) {
	a, ok := n.(*algebra.Apply)
	if !ok || len(a.Binds) > 0 {
		return nil, false
	}
	outer := a.Kind == algebra.LeftOuterJoin
	if a.Kind != algebra.CrossJoin && a.Kind != algebra.InnerJoin && !outer {
		return nil, false
	}
	rp, ok := a.R.(*algebra.Project)
	if !ok || rp.Dedup {
		return nil, false
	}
	if outer {
		for _, c := range rp.Cols {
			if _, isRef := c.E.(*algebra.ColRef); !isRef {
				return nil, false
			}
		}
	}
	lSchema := a.L.Schema()
	if namesCollide(rp.Cols, lSchema) {
		return nil, false
	}
	cols := append(passthroughCols(lSchema), rp.Cols...)
	return &algebra.Project{
		Cols: cols,
		In:   &algebra.Apply{Kind: a.Kind, L: a.L, R: rp.In},
	}, true
}

// ruleSemiProjectDrop removes projections and sorts under a semijoin or
// antijoin Apply: only emptiness of the inner expression matters.
func ruleSemiProjectDrop(rw *Rewriter, n algebra.Rel) (algebra.Rel, bool) {
	a, ok := n.(*algebra.Apply)
	if !ok || len(a.Binds) > 0 {
		return nil, false
	}
	if a.Kind != algebra.SemiJoin && a.Kind != algebra.AntiJoin {
		return nil, false
	}
	switch r := a.R.(type) {
	case *algebra.Project:
		// Emptiness-preserving regardless of Dedup.
		return &algebra.Apply{Kind: a.Kind, L: a.L, R: r.In}, true
	case *algebra.Sort:
		return &algebra.Apply{Kind: a.Kind, L: a.L, R: r.In}, true
	}
	return nil, false
}

// ---------------------------------------------------------------------------
// K3: pull a selection above an Apply-cross
// ---------------------------------------------------------------------------

// ruleK3SelectPullup implements rule K3: r A×(σ_p(e)) = σ_p(r A× e).
func ruleK3SelectPullup(rw *Rewriter, n algebra.Rel) (algebra.Rel, bool) {
	a, ok := n.(*algebra.Apply)
	if !ok || len(a.Binds) > 0 {
		return nil, false
	}
	if a.Kind != algebra.CrossJoin && a.Kind != algebra.InnerJoin {
		return nil, false
	}
	rs, ok := a.R.(*algebra.Select)
	if !ok {
		return nil, false
	}
	return &algebra.Select{
		Pred: rs.Pred,
		In:   &algebra.Apply{Kind: a.Kind, L: a.L, R: rs.In},
	}, true
}

// ---------------------------------------------------------------------------
// K1/K2: Apply to join when the inner expression is uncorrelated
// ---------------------------------------------------------------------------

// closed reports whether a relational expression has no free references at
// all: neither correlation columns (of this or any enclosing scope) nor
// unbound parameters. Converting an Apply over a non-closed inner side to a
// join would bury correlation under the join, where the decorrelation rules
// can no longer reach it.
func closed(r algebra.Rel) bool { return len(algebra.FreeRefs(r)) == 0 }

// ruleK1K2ApplyToJoin implements rules K1 and K2:
// r A⊗ e        = r ⊗_true e  when e uses no parameters from r (K1)
// r A⊗ (σ_p(e)) = r ⊗_p e     when e uses no parameters from r (K2).
func ruleK1K2ApplyToJoin(rw *Rewriter, n algebra.Rel) (algebra.Rel, bool) {
	a, ok := n.(*algebra.Apply)
	if !ok || len(a.Binds) > 0 {
		return nil, false
	}
	// K2: the selection predicate may be correlated with r — but only with
	// r. A predicate referencing an enclosing scope would make the join
	// condition itself correlated, hiding it from the rules; wait for
	// apply-assoc to widen the outer side first.
	if rs, ok := a.R.(*algebra.Select); ok && closed(rs.In) {
		joined := append(append([]algebra.Column{}, a.L.Schema()...), rs.In.Schema()...)
		if !exprCorrelatedOutside(rs.Pred, joined) {
			kind := a.Kind
			if kind == algebra.CrossJoin {
				kind = algebra.InnerJoin
			}
			return &algebra.Join{Kind: kind, Cond: rs.Pred, L: a.L, R: rs.In}, true
		}
	}
	// K1.
	if !closed(a.R) {
		return nil, false
	}
	return &algebra.Join{Kind: a.Kind, L: a.L, R: a.R}, true
}

// ruleApplyJoinPushdown pushes a cross Apply into the left branch of an
// inner join it is applied over, when the join's right branch is closed:
//
//	r A× (s ⊗ t) = (r A× s) ⊗ t    (t closed, ⊗ any join type)
//
// Per outer row both sides join s(r) with the same t; concatenating with r
// before or after the join is equivalent. This surfaces applies that an
// earlier (legal) K2 conversion buried under a join.
func ruleApplyJoinPushdown(rw *Rewriter, n algebra.Rel) (algebra.Rel, bool) {
	a, ok := n.(*algebra.Apply)
	if !ok || len(a.Binds) > 0 {
		return nil, false
	}
	if a.Kind != algebra.CrossJoin && a.Kind != algebra.InnerJoin {
		return nil, false
	}
	j, ok := a.R.(*algebra.Join)
	if !ok || !closed(j.R) {
		return nil, false
	}
	// Only rewrite when something correlated actually sits in the left
	// branch; otherwise K1 handles the whole thing.
	if closed(j.L) && (j.Cond == nil || !exprCorrelatedOutside(j.Cond, a.R.Schema())) {
		return nil, false
	}
	return &algebra.Join{
		Kind: j.Kind,
		Cond: j.Cond,
		L:    &algebra.Apply{Kind: algebra.CrossJoin, L: a.L, R: j.L},
		R:    j.R,
	}, true
}

// ruleApplyUnionDistribute distributes a cross Apply over a union:
// r A× (s ∪ t) = (r A× s) ∪ (r A× t).
// This is how conditional embedded queries (R6's union form) decorrelate:
// each branch becomes its own Apply, which the aggregate rules then remove.
func ruleApplyUnionDistribute(rw *Rewriter, n algebra.Rel) (algebra.Rel, bool) {
	a, ok := n.(*algebra.Apply)
	if !ok || len(a.Binds) > 0 {
		return nil, false
	}
	if a.Kind != algebra.CrossJoin && a.Kind != algebra.InnerJoin {
		return nil, false
	}
	u, ok := a.R.(*algebra.UnionAll)
	if !ok {
		return nil, false
	}
	return &algebra.UnionAll{
		L: &algebra.Apply{Kind: a.Kind, L: a.L, R: u.L},
		R: &algebra.Apply{Kind: a.Kind, L: a.L, R: u.R},
	}, true
}

// ruleApplyAssoc reassociates nested applies whose outer is a cross:
// r A× (s A⊗ t) = (r A× s) A⊗ t for any join type ⊗.
// Both sides evaluate t once per combined (r, s) tuple and combine with ⊗
// semantics per pair. The left-deep form exposes each correlated inner
// expression directly under an Apply whose outer side carries the full
// outer schema, which is what the decorrelation rules match on.
func ruleApplyAssoc(rw *Rewriter, n algebra.Rel) (algebra.Rel, bool) {
	a, ok := n.(*algebra.Apply)
	if !ok || len(a.Binds) > 0 {
		return nil, false
	}
	if a.Kind != algebra.CrossJoin && a.Kind != algebra.InnerJoin {
		return nil, false
	}
	inner, ok := a.R.(*algebra.Apply)
	if !ok || len(inner.Binds) > 0 {
		return nil, false
	}
	return &algebra.Apply{
		Kind: inner.Kind,
		L:    &algebra.Apply{Kind: algebra.CrossJoin, L: a.L, R: inner.L},
		R:    inner.R,
	}, true
}

// ---------------------------------------------------------------------------
// GL scalar-aggregate decorrelation
// ---------------------------------------------------------------------------

// stripCorrEqualities removes correlated equality conjuncts (outer-expr =
// inner-col) from selections inside rel. It returns the stripped tree, the
// (outer expr, inner col) pairs, and ok=false when an extracted inner column
// is not visible in rel's output schema.
// shallowTransform rewrites the relational tree bottom-up without
// descending into scalar subqueries (unlike algebra.Transform): predicates
// inside subqueries belong to their own scope and must not be stripped.
func shallowTransform(r algebra.Rel, f func(algebra.Rel) algebra.Rel) algebra.Rel {
	ch := r.Children()
	if len(ch) > 0 {
		nch := make([]algebra.Rel, len(ch))
		changed := false
		for i, c := range ch {
			nch[i] = shallowTransform(c, f)
			if nch[i] != c {
				changed = true
			}
		}
		if changed {
			r = r.WithChildren(nch)
		}
	}
	return f(r)
}

func stripCorrEqualities(rel algebra.Rel, outer []algebra.Column) (algebra.Rel, []equiCorr, bool) {
	var pairs []equiCorr
	out := shallowTransform(rel, func(n algebra.Rel) algebra.Rel {
		sel, is := n.(*algebra.Select)
		if !is {
			return n
		}
		childSchema := sel.In.Schema()
		var rest []algebra.Expr
		for _, c := range algebra.SplitConjuncts(sel.Pred) {
			oe, ic, matched := matchCorrEquality(c, outer, childSchema)
			if !matched {
				rest = append(rest, c)
				continue
			}
			pairs = append(pairs, equiCorr{outer: oe, inner: ic})
		}
		if pred := algebra.AndAll(rest); pred != nil {
			return &algebra.Select{Pred: pred, In: sel.In}
		}
		return sel.In
	})
	// Each extracted inner column becomes a grouping key, so it must
	// survive to the top of the subtree; widen intermediate projections to
	// pass it through (the cursor-loop trees of Section VII project only
	// the fetch variables).
	for _, pr := range pairs {
		widened, ok := widenForCol(out, pr.inner)
		if !ok {
			return rel, nil, false
		}
		out = widened
	}
	return out, pairs, true
}

// widenForCol ensures the referenced column is visible in the subtree's
// output schema, extending pass-through projections as needed.
func widenForCol(rel algebra.Rel, ref *algebra.ColRef) (algebra.Rel, bool) {
	if algebra.HasRef(rel.Schema(), ref.Qual, ref.Name) {
		return rel, true
	}
	switch n := rel.(type) {
	case *algebra.Project:
		if n.Dedup {
			return nil, false // widening DISTINCT changes semantics
		}
		child, ok := widenForCol(n.In, ref)
		if !ok {
			return nil, false
		}
		cols := append(append([]algebra.ProjCol{}, n.Cols...), algebra.ProjCol{
			E:    &algebra.ColRef{Qual: ref.Qual, Name: ref.Name},
			Qual: ref.Qual,
			As:   ref.Name,
		})
		return &algebra.Project{Cols: cols, In: child}, true
	case *algebra.Select:
		child, ok := widenForCol(n.In, ref)
		if !ok {
			return nil, false
		}
		return &algebra.Select{Pred: n.Pred, In: child}, true
	case *algebra.Sort:
		child, ok := widenForCol(n.In, ref)
		if !ok {
			return nil, false
		}
		return &algebra.Sort{Keys: n.Keys, In: child}, true
	default:
		return nil, false
	}
}

// equiCorr is one correlated equality: outer expression = inner column.
type equiCorr struct {
	outer algebra.Expr
	inner *algebra.ColRef
}

// matchCorrEquality matches a conjunct of the form outerRef = innerCol
// (either orientation) where outerRef resolves in the outer schema but not
// the inner one, and innerCol resolves in the inner schema.
func matchCorrEquality(c algebra.Expr, outer, inner []algebra.Column) (algebra.Expr, *algebra.ColRef, bool) {
	cmp, ok := c.(*algebra.Cmp)
	if !ok || cmp.Op != sqltypes.CmpEQ {
		return nil, nil, false
	}
	try := func(a, b algebra.Expr) (algebra.Expr, *algebra.ColRef, bool) {
		ar, aok := a.(*algebra.ColRef)
		br, bok := b.(*algebra.ColRef)
		if !aok || !bok {
			return nil, nil, false
		}
		aOuter := algebra.HasRef(outer, ar.Qual, ar.Name) && !algebra.HasRef(inner, ar.Qual, ar.Name)
		bInner := algebra.HasRef(inner, br.Qual, br.Name)
		if aOuter && bInner {
			return ar, br, true
		}
		return nil, nil, false
	}
	if oe, ic, ok := try(cmp.L, cmp.R); ok {
		return oe, ic, true
	}
	return try(cmp.R, cmp.L)
}

// ruleScalarAggDecorrelate implements the decorrelation of a correlated
// scalar aggregate (the transformation the paper credits to [5]):
//
//	r A⊗ G_{F}(σ_{c = r.a}(e))  →  Π_{r.*, aggs}(r ⟕_{r.a = c} (c G_F (e)))
//
// for ⊗ ∈ {×, ⟕}. COUNT columns are wrapped in COALESCE(·, 0) to preserve
// the count-over-empty-group semantics across the outer join (the classic
// count bug).
func ruleScalarAggDecorrelate(rw *Rewriter, n algebra.Rel) (algebra.Rel, bool) {
	a, ok := n.(*algebra.Apply)
	if !ok || len(a.Binds) > 0 {
		return nil, false
	}
	if a.Kind != algebra.CrossJoin && a.Kind != algebra.InnerJoin && a.Kind != algebra.LeftOuterJoin {
		return nil, false
	}
	gb, ok := a.R.(*algebra.GroupBy)
	if !ok || len(gb.Keys) != 0 {
		return nil, false
	}
	lSchema := a.L.Schema()
	// Aggregate output names must not collide with outer columns (the
	// final projection references them unqualified).
	for _, ag := range gb.Aggs {
		if algebra.HasRef(lSchema, "", ag.As) {
			return nil, false
		}
	}
	inner, pairs, ok := stripCorrEqualities(gb.In, lSchema)
	if !ok || len(pairs) == 0 {
		return nil, false
	}
	// Within matching rows, each extracted equality makes the outer
	// reference equal to an inner column; substitute remaining occurrences
	// (e.g. getCost(pkey) in an aggregate argument becomes
	// getCost(lineitem.partkey)) so the grouped side is self-contained.
	equiv := map[algebra.Ref]algebra.Expr{}
	for _, pr := range pairs {
		if oc, isCol := pr.outer.(*algebra.ColRef); isCol {
			equiv[algebra.Ref{Qual: oc.Qual, Name: oc.Name}] = pr.inner
		}
	}
	substCol := func(e algebra.Expr) algebra.Expr {
		if c, isCol := e.(*algebra.ColRef); isCol {
			if repl, hit := equiv[algebra.Ref{Qual: c.Qual, Name: c.Name}]; hit {
				return repl
			}
		}
		return e
	}
	inner = algebra.MapExprsDeep(inner, substCol)
	aggs := make([]algebra.AggCall, len(gb.Aggs))
	for i, ag := range gb.Aggs {
		args := make([]algebra.Expr, len(ag.Args))
		for j, arg := range ag.Args {
			args[j] = substituteCols(arg, equiv)
		}
		aggs[i] = algebra.AggCall{Func: ag.Func, Args: args, Distinct: ag.Distinct, As: ag.As}
	}
	// Any residual correlation (non-equality, non-substitutable) blocks
	// the rewrite.
	if algebra.UsesRefsOf(inner, lSchema) {
		return nil, false
	}
	for _, ag := range aggs {
		for _, arg := range ag.Args {
			if algebra.ExprUsesRefsOf(arg, lSchema) {
				return nil, false
			}
		}
	}
	// Dedup key columns.
	var keys []*algebra.ColRef
	var conds []algebra.Expr
	seen := map[algebra.Ref]bool{}
	for _, pr := range pairs {
		ref := algebra.Ref{Qual: pr.inner.Qual, Name: pr.inner.Name}
		if !seen[ref] {
			seen[ref] = true
			keys = append(keys, pr.inner)
		}
		conds = append(conds, &algebra.Cmp{Op: sqltypes.CmpEQ, L: pr.outer, R: pr.inner})
	}
	grouped := &algebra.GroupBy{Keys: keys, Aggs: aggs, In: inner}
	join := &algebra.Join{Kind: algebra.LeftOuterJoin, Cond: algebra.AndAll(conds), L: a.L, R: grouped}
	// Restore the original apply schema: outer columns then aggregate
	// outputs (dropping the grouping keys).
	cols := passthroughCols(lSchema)
	for _, ag := range gb.Aggs {
		var e algebra.Expr = &algebra.ColRef{Name: ag.As}
		// Patch the empty-group semantics across the outer join: COUNT of
		// an empty group is 0, and an auxiliary aggregate of an empty
		// group is its initial state (the loop body never ran).
		if ag.Func == "count" {
			e = &algebra.Call{Name: "coalesce", Args: []algebra.Expr{e, &algebra.Const{Val: sqltypes.NewInt(0)}}}
		} else if init, ok := rw.auxInit(ag.Func); ok && !init.IsNull() {
			e = &algebra.Call{Name: "coalesce", Args: []algebra.Expr{e, &algebra.Const{Val: init}}}
		}
		cols = append(cols, algebra.ProjCol{E: e, As: ag.As})
	}
	return &algebra.Project{Cols: cols, In: join}, true
}
