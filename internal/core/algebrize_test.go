package core

import (
	"strings"
	"testing"

	"udfdecorr/internal/algebra"
	"udfdecorr/internal/parser"
)

const algSchema = `
create table customer (custkey int primary key, name varchar, category int);
create table orders (orderkey int primary key, custkey int, totalprice float);
`

func algebrizeQ(t *testing.T, sql string) algebra.Rel {
	t.Helper()
	cat := buildCatalog(t, algSchema)
	q, err := parser.ParseQuery(sql)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := NewAlgebrizer(cat).Query(q)
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

func TestAlgebrizeSimpleSelect(t *testing.T) {
	rel := algebrizeQ(t, "select custkey, name from customer where custkey > 5")
	s := algebra.Print(rel)
	for _, want := range []string{"Project[customer.custkey AS custkey, customer.name AS name]",
		"Select[(customer.custkey > 5)]", "Scan(customer)"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in:\n%s", want, s)
		}
	}
	schema := rel.Schema()
	if len(schema) != 2 || schema[0].Name != "custkey" {
		t.Errorf("schema = %v", schema)
	}
}

func TestAlgebrizeStarExpansion(t *testing.T) {
	rel := algebrizeQ(t, "select * from customer")
	if len(rel.Schema()) != 3 {
		t.Errorf("star should expand to all columns: %v", rel.Schema())
	}
}

func TestAlgebrizeGroupByWithHaving(t *testing.T) {
	rel := algebrizeQ(t, `select custkey, sum(totalprice) as tot from orders
	                      group by custkey having sum(totalprice) > 10 order by tot desc`)
	s := algebra.Print(rel)
	for _, want := range []string{"GroupBy[orders.custkey]", "sum(orders.totalprice)", "Sort[", "Select["} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in:\n%s", want, s)
		}
	}
	// HAVING must reuse the same aggregate, not compute a second one.
	gb := findGroupBy(rel)
	if gb == nil || len(gb.Aggs) != 1 {
		t.Errorf("identical aggregates should be shared:\n%s", s)
	}
}

func findGroupBy(rel algebra.Rel) *algebra.GroupBy {
	var out *algebra.GroupBy
	algebra.Visit(rel, func(n algebra.Rel) {
		if g, ok := n.(*algebra.GroupBy); ok {
			out = g
		}
	})
	return out
}

func TestAlgebrizeCountStar(t *testing.T) {
	rel := algebrizeQ(t, "select count(*) from orders")
	gb := findGroupBy(rel)
	if gb == nil || len(gb.Aggs) != 1 || gb.Aggs[0].Func != "count" || len(gb.Aggs[0].Args) != 0 {
		t.Fatalf("count(*) algebrization:\n%s", algebra.Print(rel))
	}
	if len(gb.Keys) != 0 {
		t.Error("scalar aggregation must have no keys")
	}
}

func TestAlgebrizeJoinKinds(t *testing.T) {
	rel := algebrizeQ(t, `select c.name from customer c
	                      left outer join orders o on c.custkey = o.custkey`)
	s := algebra.Print(rel)
	if !strings.Contains(s, "Join(leftouter)") {
		t.Errorf("left outer join missing:\n%s", s)
	}
	rel2 := algebrizeQ(t, "select c.name from customer c, orders o where c.custkey = o.custkey")
	if !strings.Contains(algebra.Print(rel2), "Join(cross)") {
		t.Errorf("comma join should be a cross join pre-normalization:\n%s", algebra.Print(rel2))
	}
}

func TestAlgebrizeDerivedTable(t *testing.T) {
	rel := algebrizeQ(t, `select d.tot from (select custkey, sum(totalprice) as tot
	                      from orders group by custkey) d where d.tot > 5`)
	schema := rel.Schema()
	if len(schema) != 1 || schema[0].Name != "tot" {
		t.Errorf("schema = %v", schema)
	}
}

func TestAlgebrizeUnresolvedBareNameBecomesParam(t *testing.T) {
	// "ckey" resolves nowhere: it is a procedural variable reference.
	rel := algebrizeQ(t, "select custkey from orders where custkey = ckey")
	free := algebra.FreeRefs(rel)
	if !free[algebra.Ref{IsParam: true, Name: "ckey"}] {
		t.Errorf("bare unresolved name should become a parameter: %v", free.Sorted())
	}
}

func TestAlgebrizeCorrelatedSubquery(t *testing.T) {
	rel := algebrizeQ(t, `select custkey from customer c
	  where 100 < (select sum(totalprice) from orders o where o.custkey = c.custkey)`)
	// Correlation to c must be visible from the top (free within the
	// subquery, bound overall).
	if len(algebra.FreeRefs(rel)) != 0 {
		t.Errorf("query should be closed: %v", algebra.FreeRefs(rel).Sorted())
	}
	s := algebra.Print(rel)
	if !strings.Contains(s, "(subquery)") {
		t.Errorf("subquery expected:\n%s", s)
	}
}

func TestAlgebrizeInSubqueryBecomesExists(t *testing.T) {
	rel := algebrizeQ(t, "select name from customer where custkey in (select custkey from orders)")
	found := false
	algebra.Visit(rel, func(n algebra.Rel) {
		if sel, ok := n.(*algebra.Select); ok {
			algebra.VisitExpr(sel.Pred, func(e algebra.Expr) {
				if _, ok := e.(*algebra.Exists); ok {
					found = true
				}
			}, nil)
		}
	})
	if !found {
		t.Errorf("IN (subquery) should algebraize via EXISTS:\n%s", algebra.Print(rel))
	}
}

func TestAlgebrizeErrors(t *testing.T) {
	cat := buildCatalog(t, algSchema)
	for _, sql := range []string{
		"select x from nosuchtable",
		"select sum(totalprice) from orders group by totalprice + 1", // non-column group key
		"select top totalprice custkey from orders",                  // non-literal TOP
	} {
		q, err := parser.ParseQuery(sql)
		if err != nil {
			continue // parser-level rejection also fine
		}
		if _, err := NewAlgebrizer(cat).Query(q); err == nil {
			t.Errorf("algebrize(%q) should fail", sql)
		}
	}
}

func TestAlgebrizeHiddenSortColumn(t *testing.T) {
	// ORDER BY references a base column not in the select list.
	rel := algebrizeQ(t, "select name from customer order by custkey desc")
	if len(rel.Schema()) != 1 || rel.Schema()[0].Name != "name" {
		t.Fatalf("hidden sort key must not leak into the schema: %v", rel.Schema())
	}
	if algebra.Count(rel, func(n algebra.Rel) bool { _, ok := n.(*algebra.Sort); return ok }) != 1 {
		t.Errorf("sort missing:\n%s", algebra.Print(rel))
	}
}
