package core

import (
	"fmt"

	"udfdecorr/internal/algebra"
	"udfdecorr/internal/catalog"
	"udfdecorr/internal/sqltypes"
)

// maxRewritePasses bounds the fixpoint iteration of the rule engine.
const maxRewritePasses = 64

// Rule is one algebraic transformation: it returns a replacement tree and
// true when it fires on the given node.
type Rule struct {
	Name  string
	Apply func(rw *Rewriter, n algebra.Rel) (algebra.Rel, bool)
}

// Rewriter drives rule application to a fixpoint and carries the state the
// rules need: the catalog (for aggregate resolution), fresh-name generation,
// and a trace of fired rules for tests and EXPLAIN output.
type Rewriter struct {
	Cat   *catalog.Catalog
	Trace []string

	// auxAggs holds auxiliary aggregates synthesized during this rewrite
	// (not yet registered in the catalog); the scalar-aggregate
	// decorrelation needs their initial state to patch up empty groups
	// across the outer join.
	auxAggs map[string]*catalog.Aggregate

	nameSeq int
	rules   []Rule
}

// RegisterAux records a synthesized auxiliary aggregate.
func (rw *Rewriter) RegisterAux(a *catalog.Aggregate) { rw.auxAggs[a.Name] = a }

// auxInit returns the initial value of an auxiliary aggregate's result
// variable: the value an empty group must produce.
func (rw *Rewriter) auxInit(name string) (sqltypes.Value, bool) {
	a, ok := rw.auxAggs[name]
	if !ok {
		return sqltypes.Null, false
	}
	for _, sv := range a.State {
		if sv.Name == a.Result {
			return sv.Init, true
		}
	}
	return sqltypes.Null, false
}

// NewRewriter builds a rewriter with the full rule set of Tables I and II
// plus the decorrelation transformations of Galindo-Legaria & Joshi used by
// the paper's examples.
func NewRewriter(cat *catalog.Catalog) *Rewriter {
	rw := &Rewriter{Cat: cat, auxAggs: map[string]*catalog.Aggregate{}}
	rw.rules = []Rule{
		{"R9-bind-removal", ruleR9BindRemoval},
		{"leftouter-to-cross", ruleLeftOuterToCross},
		{"R1-apply-single", ruleR1ApplySingle},
		{"R2-merge-project-single", ruleR2MergeProjectSingle},
		{"R8-cond-merge-scalar", ruleR8CondMergeScalar},
		{"R8-cond-merge-eager", ruleCondMergeEager},
		{"R6-cond-merge-union", ruleR6CondMergeUnion},
		{"R4-merge-removal", ruleR4MergeRemoval},
		{"simplify-select-through-project", rulePushSelectThroughProject},
		{"simplify-prune-unused-apply", rulePruneUnusedApply},
		{"R7-union-to-case", ruleR7UnionToCase},
		{"R5-project-past-apply", ruleR5ProjectPastApply},
		{"K4-project-pullup", ruleK4ProjectPullup},
		{"semi-project-drop", ruleSemiProjectDrop},
		{"K3-select-pullup", ruleK3SelectPullup},
		{"hoist-correlated-select", ruleHoistCorrelatedSelect},
		{"K1K2-apply-to-join", ruleK1K2ApplyToJoin},
		{"apply-assoc", ruleApplyAssoc},
		{"apply-union-distribute", ruleApplyUnionDistribute},
		{"apply-join-pushdown", ruleApplyJoinPushdown},
		{"GL-scalar-agg-decorrelation", ruleScalarAggDecorrelate},
		{"subquery-to-apply", ruleSubqueryToApply},
		{"exists-to-apply", ruleExistsToApply},
		{"simplify-select-merge", ruleSelectMerge},
		{"simplify-select-true", ruleSelectTrue},
		{"simplify-join-single", ruleJoinSingle},
		{"simplify-select-into-join", rulePushSelectIntoJoin},
		{"simplify-join-pushdown", rulePushdownIntoJoinChildren},
		{"R3-project-compose", ruleR3ProjectCompose},
	}
	return rw
}

// FreshName produces a unique column/parameter name with the given prefix.
func (rw *Rewriter) FreshName(prefix string) string {
	rw.nameSeq++
	return fmt.Sprintf("%s_%d", prefix, rw.nameSeq)
}

// Rewrite applies the rule set bottom-up to a fixpoint.
func (rw *Rewriter) Rewrite(rel algebra.Rel) algebra.Rel {
	for pass := 0; pass < maxRewritePasses; pass++ {
		changed := false
		rel = algebra.Transform(rel, func(n algebra.Rel) algebra.Rel {
			for {
				fired := false
				for _, rule := range rw.rules {
					if out, ok := rule.Apply(rw, n); ok {
						rw.Trace = append(rw.Trace, rule.Name)
						n = out
						fired = true
						changed = true
						break
					}
				}
				if !fired {
					return n
				}
			}
		})
		if !changed {
			break
		}
	}
	return rel
}

// Decorrelated reports whether the tree is fully decorrelated: no Apply
// family operators remain.
func Decorrelated(rel algebra.Rel) bool { return !algebra.HasApply(rel) }

// Normalize applies only the semantics-preserving simplification rules
// (predicate pushdown, selection/projection normalization) without touching
// UDF invocations or introducing Apply operators. Both execution paths use
// it before planning, so the iterative baseline gets the ordinary
// single-query optimizations a commercial system would perform.
func Normalize(cat *catalog.Catalog, rel algebra.Rel) algebra.Rel {
	rw := &Rewriter{Cat: cat, auxAggs: map[string]*catalog.Aggregate{}}
	rw.rules = []Rule{
		{"simplify-select-merge", ruleSelectMerge},
		{"simplify-select-true", ruleSelectTrue},
		{"simplify-join-single", ruleJoinSingle},
		{"simplify-select-into-join", rulePushSelectIntoJoin},
		{"simplify-join-pushdown", rulePushdownIntoJoinChildren},
		{"R3-project-compose", ruleR3ProjectCompose},
	}
	return rw.Rewrite(rel)
}
