// HTTP-surface test of the router handler: the versioned wire API (v0
// legacy shapes, v1 envelope), /query-/exec aliasing and the NDJSON stream
// with typed trailer errors.
package shard_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"udfdecorr/internal/shard"
	"udfdecorr/internal/wire"
)

func postRaw(t *testing.T, url string, v1 bool, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if v1 {
		req.Header.Set("Accept", wire.V1Accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func TestRouterHTTP(t *testing.T) {
	c := startCluster(t, 2)
	ts := httptest.NewServer(shard.NewHandler(c.router))
	defer ts.Close()

	// v1 session create: enveloped with the router role.
	resp, raw := postRaw(t, ts.URL+"/session", true, map[string]any{"mode": "rewrite"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("session: status %d: %s", resp.StatusCode, raw)
	}
	var env wire.Envelope
	if err := json.Unmarshal(raw, &env); err != nil || env.V != wire.V1 || env.Role != "router" {
		t.Fatalf("session v1 envelope = %s (err %v)", raw, err)
	}
	var sess struct {
		Session string `json:"session"`
		Shards  int    `json:"shards"`
	}
	if err := json.Unmarshal(env.Result, &sess); err != nil || sess.Session == "" || sess.Shards != 2 {
		t.Fatalf("session result = %s", env.Result)
	}

	// /exec and /query are aliases: DDL + insert through /query, select
	// through /exec, both legacy-shaped without the Accept header.
	resp, raw = postRaw(t, ts.URL+"/query", false, map[string]any{
		"session": sess.Session,
		"script":  "create table pts (k int primary key, v int) shard key (k); insert into pts values (1, 10); insert into pts values (2, 20); insert into pts values (3, 30);",
	})
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(raw), `"ok":true`) {
		t.Fatalf("exec via /query: status %d: %s", resp.StatusCode, raw)
	}
	resp, raw = postRaw(t, ts.URL+"/exec", false, map[string]any{
		"session": sess.Session, "sql": "select k, v from pts where k = 2",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query via /exec: status %d: %s", resp.StatusCode, raw)
	}
	var q struct {
		Rows     [][]string `json:"rows"`
		RowCount int        `json:"row_count"`
	}
	if err := json.Unmarshal(raw, &q); err != nil || q.RowCount != 1 || len(q.Rows) != 1 || q.Rows[0][1] != "20" {
		t.Fatalf("query via /exec = %s", raw)
	}

	// Unshardable SELECT over v1: typed UNSHARDABLE envelope naming the shape.
	resp, raw = postRaw(t, ts.URL+"/query", true, map[string]any{
		"session": sess.Session, "sql": "select k from pts order by v",
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unshardable: status %d: %s", resp.StatusCode, raw)
	}
	env = wire.Envelope{}
	if err := json.Unmarshal(raw, &env); err != nil || env.Error == nil || env.Error.Code != wire.CodeUnshardable {
		t.Fatalf("unshardable envelope = %s", raw)
	}
	if !strings.Contains(env.Error.Message, "ORDER BY") {
		t.Fatalf("unshardable message %q does not name the shape", env.Error.Message)
	}

	// Streaming: header, scattered rows, done trailer.
	resp, raw = postRaw(t, ts.URL+"/stream", false, map[string]any{
		"session": sess.Session, "sql": "select k, v from pts",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream: status %d: %s", resp.StatusCode, raw)
	}
	sc := bufio.NewScanner(bytes.NewReader(raw))
	var rows int
	var sawHeader, sawDone bool
	for sc.Scan() {
		var line struct {
			Cols []string `json:"cols"`
			Row  []string `json:"row"`
			Done bool     `json:"done"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		switch {
		case !sawHeader:
			sawHeader = true
			if len(line.Cols) != 2 {
				t.Fatalf("stream header cols = %v", line.Cols)
			}
		case line.Done:
			sawDone = true
		default:
			rows++
		}
	}
	if !sawHeader || !sawDone || rows != 3 {
		t.Fatalf("stream shape: header=%v done=%v rows=%d", sawHeader, sawDone, rows)
	}

	// /stats reports the routing counters.
	statsResp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var snap shard.StatsSnapshot
	if err := json.NewDecoder(statsResp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	statsResp.Body.Close()
	if snap.Shards != 2 || snap.InsertsRouted != 3 || snap.DDLBroadcast != 1 {
		t.Fatalf("stats = %+v", snap)
	}
}
