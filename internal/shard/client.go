// HTTP client for one shard. The router always speaks wire v1 to its
// shards, so every shard-side failure arrives as a typed *wire.RemoteError
// the gather layer can compose; transport-level failures (shard process
// down) are wrapped as SHARD_UNAVAILABLE.
package shard

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"udfdecorr/internal/wire"
)

// shardClient talks to one udfserverd.
type shardClient struct {
	base string
	hc   *http.Client
}

func newShardClient(base string) *shardClient {
	return &shardClient{base: base, hc: &http.Client{Timeout: 5 * time.Minute}}
}

// unavailable wraps a transport error as a typed SHARD_UNAVAILABLE.
func (c *shardClient) unavailable(err error) *wire.RemoteError {
	return &wire.RemoteError{
		Code:    wire.CodeShardUnavailable,
		Message: fmt.Sprintf("shard %s: %v", c.base, err),
	}
}

// post sends a v1 request and decodes the enveloped response into out.
func (c *shardClient) post(ctx context.Context, path string, body, out any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(buf))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", wire.V1Accept)
	resp, err := c.hc.Do(req)
	if err != nil {
		return c.unavailable(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return c.unavailable(err)
	}
	return wire.Decode(raw, resp.StatusCode, out)
}

// shardStream is one shard's open /stream cursor.
type shardStream struct {
	client *shardClient
	cols   []string
	rewrit bool
	cancel context.CancelFunc
	body   io.ReadCloser
	sc     *bufio.Scanner
	done   bool
}

// streamLine is the union of the three NDJSON line shapes.
type streamLine struct {
	Cols       []string `json:"cols"`
	Rewritten  bool     `json:"rewritten"`
	Row        []string `json:"row"`
	Done       bool     `json:"done"`
	Error      string   `json:"error"`
	Code       string   `json:"code"`
	LeaderHint string   `json:"leader_hint"`
}

// stream opens a /stream cursor on the shard. partial selects shard-local
// partial-aggregate execution (the scatter-merge leg).
func (c *shardClient) stream(ctx context.Context, session, sql string, partial bool) (*shardStream, error) {
	body, err := json.Marshal(map[string]any{
		"session": session, "sql": sql, "shard_partial": partial,
	})
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(ctx)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/stream", bytes.NewReader(body))
	if err != nil {
		cancel()
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", wire.V1Accept)
	resp, err := c.hc.Do(req)
	if err != nil {
		cancel()
		return nil, c.unavailable(err)
	}
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		cancel()
		return nil, wire.Decode(raw, resp.StatusCode, nil)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	st := &shardStream{client: c, cancel: cancel, body: resp.Body, sc: sc}
	header, err := st.scan()
	if err != nil {
		st.close()
		return nil, err
	}
	st.cols, st.rewrit = header.Cols, header.Rewritten
	return st, nil
}

// scan reads the next NDJSON line.
func (s *shardStream) scan() (*streamLine, error) {
	if !s.sc.Scan() {
		if err := s.sc.Err(); err != nil {
			return nil, s.client.unavailable(err)
		}
		return nil, s.client.unavailable(fmt.Errorf("stream ended without trailer (shard died mid-stream?)"))
	}
	var line streamLine
	if err := json.Unmarshal(s.sc.Bytes(), &line); err != nil {
		return nil, fmt.Errorf("shard %s: bad stream line %q: %w", s.client.base, s.sc.Text(), err)
	}
	return &line, nil
}

// next returns the next row, or (nil, nil) once the shard's trailer arrives.
// A shard-reported mid-stream error comes back as its typed *wire.RemoteError.
func (s *shardStream) next() ([]string, error) {
	if s.done {
		return nil, nil
	}
	line, err := s.scan()
	if err != nil {
		return nil, err
	}
	switch {
	case line.Error != "":
		code := wire.Code(line.Code)
		if code == "" {
			code = wire.CodeInternal
		}
		return nil, &wire.RemoteError{Code: code, Message: line.Error, LeaderHint: line.LeaderHint}
	case line.Done:
		s.done = true
		return nil, nil
	default:
		return line.Row, nil
	}
}

// close releases the cursor (cancelling the request if still streaming).
func (s *shardStream) close() {
	s.cancel()
	s.body.Close()
}
