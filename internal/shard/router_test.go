// End-to-end differential test of the sharded tier: the same deterministic
// dataset loaded into a 3-shard cluster (through the router: DDL broadcast,
// hash-routed INSERTs) and into one single-node engine (rows straight into
// storage), then the partitionable corpus executed through both — the
// router's gathered results must equal the single node's, on both executors.
package shard_test

import (
	"context"
	"strings"
	"testing"

	"net/http/httptest"

	"udfdecorr/internal/bench"
	"udfdecorr/internal/engine"
	"udfdecorr/internal/plan"
	"udfdecorr/internal/server"
	"udfdecorr/internal/shard"
	"udfdecorr/internal/sqltypes"
	"udfdecorr/internal/storage"
	"udfdecorr/internal/wire"
)

// testConfig is small enough for -race but still spreads rows over every
// shard and leaves some customers orderless and some parts lineitem-less.
var testConfig = bench.Config{
	Customers: 120, OrdersPerCustomer: 4,
	Parts: 150, LineitemsPerPart: 3,
	Categories: 12, Seed: 7,
}

// extraQueries exercise merge shapes the corpus lacks (avg reweighting,
// count forms, min/max, pinned point routes).
var extraQueries = []struct {
	name, sql string
	kind      plan.ShardKind
}{
	{"grouped avg/min/count", "select custkey, avg(totalprice), min(totalprice), count(*) from orders where custkey <= 60 group by custkey", plan.ShardScatterMerge},
	{"scalar avg/max", "select avg(totalprice), max(totalprice) from orders", plan.ShardScatterMerge},
	{"count star vs count col", "select count(totalprice), count(*) from orders", plan.ShardScatterMerge},
	{"pinned point query", "select orderkey, totalprice from orders where custkey = 7", plan.ShardSingle},
	{"sharded join probe", "select o.orderkey, c.name from orders o join customer c on o.custkey = c.custkey where o.orderkey <= 80", plan.ShardScatterConcat},
}

type cluster struct {
	router  *shard.Router
	servers []*httptest.Server
}

func (c *cluster) stop() {
	for _, ts := range c.servers {
		ts.Close()
	}
}

func startCluster(t *testing.T, n int) *cluster {
	t.Helper()
	c := &cluster{}
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		eng := engine.New(engine.SYS1, engine.ModeRewrite)
		svc := server.NewServiceFromEngine(eng, server.DefaultOptions())
		ts := httptest.NewServer(server.NewHandler(svc))
		c.servers = append(c.servers, ts)
		urls[i] = ts.URL
	}
	r, err := shard.New(urls)
	if err != nil {
		t.Fatal(err)
	}
	c.router = r
	t.Cleanup(c.stop)
	return c
}

func insertSQL(b *strings.Builder, table string, row storage.Row) {
	b.WriteString("insert into ")
	b.WriteString(table)
	b.WriteString(" values (")
	for i, v := range row {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteString(");\n")
}

// loadCluster pushes schema, UDFs and the generated dataset through the
// router, batched like the real load client.
func loadCluster(t *testing.T, c *cluster, sess *shard.Session) {
	t.Helper()
	ctx := context.Background()
	schema, err := bench.ShardedSchema()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.router.Exec(ctx, sess, schema+bench.UDFs+bench.ExtraUDFs); err != nil {
		t.Fatalf("loading schema through router: %v", err)
	}
	for _, td := range bench.Generate(testConfig) {
		var b strings.Builder
		n := 0
		flush := func() {
			if n == 0 {
				return
			}
			if err := c.router.Exec(ctx, sess, b.String()); err != nil {
				t.Fatalf("loading %s through router: %v", td.Name, err)
			}
			b.Reset()
			n = 0
		}
		for _, row := range td.Rows {
			insertSQL(&b, td.Name, row)
			if n++; n == 256 {
				flush()
			}
		}
		flush()
	}
}

// newBaseline builds the single-node twin of the cluster's dataset.
func newBaseline(t *testing.T) *server.Service {
	t.Helper()
	eng := engine.New(engine.SYS1, engine.ModeRewrite)
	if err := eng.ExecScript(bench.Schema + bench.UDFs + bench.ExtraUDFs); err != nil {
		t.Fatal(err)
	}
	for _, td := range bench.Generate(testConfig) {
		if err := eng.Load(td.Name, td.Rows); err != nil {
			t.Fatal(err)
		}
	}
	return server.NewServiceFromEngine(eng, server.DefaultOptions())
}

// baselineRows runs sql on the single node and formats cells like the HTTP
// stream does.
func baselineRows(t *testing.T, svc *server.Service, sess *server.Session, sql string) [][]string {
	t.Helper()
	st, err := svc.QueryStream(context.Background(), sess, sql)
	if err != nil {
		t.Fatalf("baseline %q: %v", sql, err)
	}
	defer st.Rows.Close()
	var out [][]string
	for st.Rows.Next() {
		row := st.Rows.Row()
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = v.String()
		}
		out = append(out, cells)
	}
	if err := st.Rows.Err(); err != nil {
		t.Fatalf("baseline %q: %v", sql, err)
	}
	return out
}

func routerRows(t *testing.T, c *cluster, sess *shard.Session, sql string) ([][]string, error) {
	t.Helper()
	rows, _, err := c.router.Query(context.Background(), sess, sql)
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	var out [][]string
	for {
		row, err := rows.Next()
		if err != nil {
			return nil, err
		}
		if row == nil {
			return out, nil
		}
		out = append(out, row)
	}
}

func TestRouterDifferential(t *testing.T) {
	c := startCluster(t, 3)
	ctx := context.Background()
	loadSess, err := c.router.CreateSession(ctx, map[string]any{"mode": "iterative"})
	if err != nil {
		t.Fatal(err)
	}
	loadCluster(t, c, loadSess)
	baseline := newBaseline(t)

	combos := []struct {
		mode       string
		vectorized bool
	}{
		{"rewrite", false},
		{"iterative", false},
		{"rewrite", true},
	}
	for _, combo := range combos {
		mode, err := server.ParseMode(combo.mode)
		if err != nil {
			t.Fatal(err)
		}
		profile := engine.SYS1
		profile.Vectorized = combo.vectorized
		baseSess := baseline.CreateSession(profile, mode)
		routerSess, err := c.router.CreateSession(ctx, map[string]any{
			"mode": combo.mode, "vectorized": combo.vectorized,
		})
		if err != nil {
			t.Fatal(err)
		}
		type namedQuery struct {
			name, sql string
			kind      plan.ShardKind
		}
		var queries []namedQuery
		for _, q := range bench.Corpus {
			class, ok := bench.ShardClass[q.Name]
			if !ok {
				t.Fatalf("corpus query %q has no expected shard class", q.Name)
			}
			kind := plan.ShardScatterConcat
			switch class {
			case "rejected":
				kind = plan.ShardRejected
			case "single-shard":
				kind = plan.ShardSingle
			case "scatter-merge":
				kind = plan.ShardScatterMerge
			}
			queries = append(queries, namedQuery{q.Name, q.SQL, kind})
		}
		for _, q := range extraQueries {
			queries = append(queries, namedQuery{q.name, q.sql, q.kind})
		}
		for _, q := range queries {
			got, err := routerRows(t, c, routerSess, q.sql)
			if q.kind == plan.ShardRejected {
				re, ok := err.(*wire.RemoteError)
				if !ok || re.Code != wire.CodeUnshardable {
					t.Errorf("[%s/%v] %s: want typed UNSHARDABLE rejection, got %v", combo.mode, combo.vectorized, q.name, err)
				} else if re.Message == "" {
					t.Errorf("[%s/%v] %s: rejection has no reason", combo.mode, combo.vectorized, q.name)
				}
				continue
			}
			if err != nil {
				t.Errorf("[%s/%v] %s: %v", combo.mode, combo.vectorized, q.name, err)
				continue
			}
			want := baselineRows(t, baseline, baseSess, q.sql)
			if bench.CanonicalRows(got) != bench.CanonicalRows(want) {
				t.Errorf("[%s/%v] %s: router result differs from single node\nrouter (%d rows): %.300v\nsingle (%d rows): %.300v",
					combo.mode, combo.vectorized, q.name, len(got), got, len(want), want)
			}
		}
		_ = c.router.CloseSession(ctx, routerSess.ID)
		baseline.CloseSession(baseSess.ID)
	}

	snap := c.router.Snapshot()
	if snap.SingleShard == 0 || snap.ScatterConcat == 0 || snap.ScatterMerge == 0 || snap.Rejected == 0 {
		t.Errorf("stats did not count every route class: %+v", snap)
	}
	if snap.InsertsRouted == 0 || snap.InsertsBroadcast == 0 || snap.DDLBroadcast == 0 {
		t.Errorf("stats did not count load routing: %+v", snap)
	}
}

// TestRouterShardDown checks typed failure when a shard dies: scatters fail
// with a typed error naming the leg, single-shard routes to live shards
// keep working, and routed writes to the dead shard fail typed while writes
// to live shards still ack.
func TestRouterShardDown(t *testing.T) {
	c := startCluster(t, 3)
	ctx := context.Background()
	sess, err := c.router.CreateSession(ctx, map[string]any{"mode": "rewrite"})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.router.Exec(ctx, sess, "create table kv (k int primary key, v float) shard key (k);"); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for k := 1; k <= 60; k++ {
		insertSQL(&b, "kv", storage.Row{sqltypes.NewInt(int64(k)), sqltypes.NewFloat(float64(k) / 2)})
	}
	if err := c.router.Exec(ctx, sess, b.String()); err != nil {
		t.Fatal(err)
	}

	// Find one key per shard so we can aim writes at live and dead shards.
	keyOn := map[int]int64{}
	for k := int64(1); k <= 60 && len(keyOn) < 3; k++ {
		s := shard.Hash(sqltypes.NewInt(k), 3)
		if _, ok := keyOn[s]; !ok {
			keyOn[s] = k
		}
	}
	const dead = 1
	c.servers[dead].Close()

	// Scatter: typed failure naming the dead leg, no partial result set.
	_, err = routerRows(t, c, sess, "select k, v from kv")
	re, ok := err.(*wire.RemoteError)
	if !ok || (re.Code != wire.CodeShardUnavailable && re.Code != wire.CodePartialFailure) {
		t.Fatalf("scatter over dead shard: want SHARD_UNAVAILABLE or PARTIAL_FAILURE, got %v", err)
	}
	// Merge scatter too.
	_, err = routerRows(t, c, sess, "select count(*) from kv")
	if re, ok := err.(*wire.RemoteError); !ok || (re.Code != wire.CodeShardUnavailable && re.Code != wire.CodePartialFailure) {
		t.Fatalf("merge over dead shard: want typed shard failure, got %v", err)
	}

	// Pinned single-shard query to a live shard still answers.
	live := (dead + 1) % 3
	rows, err := routerRows(t, c, sess, "select v from kv where k = "+sqltypes.NewInt(keyOn[live]).String())
	if err != nil || len(rows) != 1 {
		t.Fatalf("pinned query to live shard: rows=%v err=%v", rows, err)
	}

	// Routed write to the dead shard fails typed; to a live shard it acks.
	deadKey := keyOn[dead] + 300 // same residue class not guaranteed; route explicitly below
	_ = deadKey
	failWrite := func(k int64) error {
		var b strings.Builder
		insertSQL(&b, "kv", storage.Row{sqltypes.NewInt(k), sqltypes.NewFloat(1)})
		return c.router.Exec(ctx, sess, b.String())
	}
	var deadK, liveK int64
	for k := int64(1000); deadK == 0 || liveK == 0; k++ {
		switch shard.Hash(sqltypes.NewInt(k), 3) {
		case dead:
			if deadK == 0 {
				deadK = k
			}
		case live:
			if liveK == 0 {
				liveK = k
			}
		}
	}
	if err := failWrite(liveK); err != nil {
		t.Fatalf("write to live shard: %v", err)
	}
	err = failWrite(deadK)
	if re, ok := err.(*wire.RemoteError); !ok || re.Code != wire.CodeShardUnavailable {
		t.Fatalf("write to dead shard: want SHARD_UNAVAILABLE, got %v", err)
	}
}

// TestRouterExecRejections pins the typed errors for statements the router
// cannot distribute.
func TestRouterExecRejections(t *testing.T) {
	c := startCluster(t, 2)
	ctx := context.Background()
	sess, err := c.router.CreateSession(ctx, map[string]any{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.router.Exec(ctx, sess, "create table st (k int primary key, v int) shard key (k);"); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name, script string
		code         wire.Code
		mentions     string
	}{
		{"transaction", "begin transaction; insert into st values (1, 2); commit;", wire.CodeUnshardable, "transactions"},
		{"non-literal shard key", "insert into st values (1 + 2, 3);", wire.CodeUnshardable, "literal"},
		{"unknown table", "insert into nosuch values (1);", wire.CodeBadRequest, "nosuch"},
	}
	for _, tc := range cases {
		err := c.router.Exec(ctx, sess, tc.script)
		re, ok := err.(*wire.RemoteError)
		if !ok || re.Code != tc.code {
			t.Errorf("%s: want %s, got %v", tc.name, tc.code, err)
			continue
		}
		if !strings.Contains(re.Message, tc.mentions) {
			t.Errorf("%s: message %q does not mention %q", tc.name, re.Message, tc.mentions)
		}
	}
}
