// The router's HTTP surface: the same versioned wire API the shards serve
// (v0 legacy shapes by default, the v1 envelope behind the Accept knob),
// over the same endpoints, so single-node clients point at a router
// unchanged. /query and /exec are aliases of one statement handler, like
// the single-node server.
package shard

import (
	"encoding/json"
	"fmt"
	"net/http"

	"udfdecorr/internal/parser"
	"udfdecorr/internal/wire"
)

// NewHandler builds the router's HTTP mux.
func NewHandler(r *Router) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/session", func(w http.ResponseWriter, req *http.Request) { handleSession(r, w, req) })
	mux.HandleFunc("/session/close", func(w http.ResponseWriter, req *http.Request) { handleSessionClose(r, w, req) })
	mux.HandleFunc("/query", func(w http.ResponseWriter, req *http.Request) { handleStatement(r, w, req) })
	mux.HandleFunc("/exec", func(w http.ResponseWriter, req *http.Request) { handleStatement(r, w, req) })
	mux.HandleFunc("/stream", func(w http.ResponseWriter, req *http.Request) { handleStream(r, w, req) })
	mux.HandleFunc("/explain", func(w http.ResponseWriter, req *http.Request) { handleExplain(r, w, req) })
	mux.HandleFunc("/stats", func(w http.ResponseWriter, req *http.Request) {
		respond(w, req, http.StatusOK, r.Snapshot())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		respond(w, req, http.StatusOK, map[string]any{"ok": true, "shards": r.NumShards()})
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// respond writes a success payload in the request's negotiated wire version.
func respond(w http.ResponseWriter, r *http.Request, status int, result any) {
	if wire.Version(r) == wire.V1 {
		env, err := wire.OK(result, "router", "", r.Header.Get("X-Trace-Id"))
		if err != nil {
			writeJSON(w, http.StatusInternalServerError, wire.Fail(wire.CodeInternal, err.Error(), "router", "", ""))
			return
		}
		writeJSON(w, status, env)
		return
	}
	writeJSON(w, status, result)
}

// classify maps a router error to its wire code and HTTP status.
func classify(err error) (wire.Code, string, int) {
	if re, ok := err.(*wire.RemoteError); ok {
		status := http.StatusInternalServerError
		switch re.Code {
		case wire.CodeBadRequest, wire.CodeUnshardable:
			status = http.StatusBadRequest
		case wire.CodeUnknownSession:
			status = http.StatusNotFound
		case wire.CodeReadOnly:
			status = http.StatusConflict
		case wire.CodeShardUnavailable, wire.CodePartialFailure:
			status = http.StatusBadGateway
		}
		return re.Code, re.LeaderHint, status
	}
	return wire.CodeInternal, "", http.StatusInternalServerError
}

// respondError writes a failure in the negotiated wire version: a typed
// envelope on v1, the legacy {"error": ...} shape on v0 (where the code
// still prefixes the message, via RemoteError.Error).
func respondError(w http.ResponseWriter, r *http.Request, err error) {
	code, hint, status := classify(err)
	if wire.Version(r) == wire.V1 {
		msg := err.Error()
		if re, ok := err.(*wire.RemoteError); ok {
			msg = re.Message
		}
		writeJSON(w, status, wire.Fail(code, msg, "router", hint, r.Header.Get("X-Trace-Id")))
		return
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func respondErrorf(w http.ResponseWriter, r *http.Request, code wire.Code, format string, args ...any) {
	respondError(w, r, &wire.RemoteError{Code: code, Message: fmt.Sprintf(format, args...)})
}

// statementRequest is the shared /query, /exec, /stream and /explain body.
type statementRequest struct {
	Session string `json:"session"`
	SQL     string `json:"sql"`
	Script  string `json:"script"`
}

func (q *statementRequest) text() string {
	if q.SQL != "" {
		return q.SQL
	}
	return q.Script
}

func decodeStatement(r *Router, w http.ResponseWriter, req *http.Request) (*Session, *statementRequest, bool) {
	if req.Method != http.MethodPost {
		respondErrorf(w, req, wire.CodeBadRequest, "POST only")
		return nil, nil, false
	}
	var body statementRequest
	if err := json.NewDecoder(req.Body).Decode(&body); err != nil {
		respondErrorf(w, req, wire.CodeBadRequest, "bad request body: %v", err)
		return nil, nil, false
	}
	sess, err := r.Session(body.Session)
	if err != nil {
		respondError(w, req, err)
		return nil, nil, false
	}
	return sess, &body, true
}

func handleSession(r *Router, w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		respondErrorf(w, req, wire.CodeBadRequest, "POST only")
		return
	}
	settings := map[string]any{}
	if req.Body != nil {
		// An empty body means default settings, like the single-node server.
		_ = json.NewDecoder(req.Body).Decode(&settings)
	}
	sess, err := r.CreateSession(req.Context(), settings)
	if err != nil {
		respondError(w, req, err)
		return
	}
	out := map[string]any{"session": sess.ID, "shards": r.NumShards()}
	for k, v := range settings {
		out[k] = v
	}
	respond(w, req, http.StatusOK, out)
}

func handleSessionClose(r *Router, w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		respondErrorf(w, req, wire.CodeBadRequest, "POST only")
		return
	}
	var body struct {
		Session string `json:"session"`
	}
	if err := json.NewDecoder(req.Body).Decode(&body); err != nil {
		respondErrorf(w, req, wire.CodeBadRequest, "bad request body: %v", err)
		return
	}
	if err := r.CloseSession(req.Context(), body.Session); err != nil {
		respondError(w, req, err)
		return
	}
	respond(w, req, http.StatusOK, map[string]bool{"ok": true})
}

// handleStatement serves /query and /exec: a body that parses as a SELECT
// routes through the query planner (classification + scatter/gather), any
// other script routes through Exec (DDL broadcast + INSERT hash-routing).
func handleStatement(r *Router, w http.ResponseWriter, req *http.Request) {
	sess, body, ok := decodeStatement(r, w, req)
	if !ok {
		return
	}
	text := body.text()
	if _, err := parser.ParseQuery(text); err == nil {
		rows, _, err := r.Query(req.Context(), sess, text)
		if err != nil {
			respondError(w, req, err)
			return
		}
		defer rows.Close()
		var out [][]string
		for {
			row, err := rows.Next()
			if err != nil {
				respondError(w, req, err)
				return
			}
			if row == nil {
				break
			}
			out = append(out, row)
		}
		respond(w, req, http.StatusOK, map[string]any{
			"cols": rows.Cols(), "rows": out, "row_count": len(out),
		})
		return
	}
	if err := r.Exec(req.Context(), sess, text); err != nil {
		respondError(w, req, err)
		return
	}
	respond(w, req, http.StatusOK, map[string]bool{"ok": true})
}

// handleStream serves the NDJSON cursor: header, rows as they are gathered
// from the shards, trailer. Mid-scatter failures arrive in the trailer with
// their typed code, like a shard's own stream.
func handleStream(r *Router, w http.ResponseWriter, req *http.Request) {
	sess, body, ok := decodeStatement(r, w, req)
	if !ok {
		return
	}
	rows, _, err := r.Query(req.Context(), sess, body.text())
	if err != nil {
		respondError(w, req, err)
		return
	}
	defer rows.Close()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	_ = enc.Encode(map[string]any{"cols": rows.Cols()})
	if flusher != nil {
		flusher.Flush()
	}
	n := 0
	for {
		row, err := rows.Next()
		if err != nil {
			code, hint, _ := classify(err)
			msg := err.Error()
			if re, ok := err.(*wire.RemoteError); ok {
				msg = re.Message
			}
			_ = enc.Encode(map[string]any{"error": msg, "code": string(code), "leader_hint": hint})
			return
		}
		if row == nil {
			break
		}
		n++
		_ = enc.Encode(map[string]any{"row": row})
		if flusher != nil && n%64 == 0 {
			flusher.Flush()
		}
	}
	_ = enc.Encode(map[string]any{"done": true, "row_count": n})
}

func handleExplain(r *Router, w http.ResponseWriter, req *http.Request) {
	sess, body, ok := decodeStatement(r, w, req)
	if !ok {
		return
	}
	out, err := r.Explain(req.Context(), sess, body.text())
	if err != nil {
		respondError(w, req, err)
		return
	}
	respond(w, req, http.StatusOK, map[string]string{"explain": out})
}
