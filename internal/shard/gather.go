// Gather: turning N shard cursors back into one result stream.
package shard

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"udfdecorr/internal/exec"
	"udfdecorr/internal/plan"
	"udfdecorr/internal/sqltypes"
	"udfdecorr/internal/wire"
)

// Rows is the router's result cursor, mirroring the shape of a shard's
// /stream: a column header, then rows of formatted cells.
type Rows interface {
	Cols() []string
	// Next returns the next row, or (nil, nil) at end of stream.
	Next() ([]string, error)
	Close()
}

// concatRows drains shard streams in shard order. Partitions are disjoint
// and replicated tables complete everywhere, so the concatenation is the
// single-node result multiset; draining in order keeps output
// deterministic while all shards execute concurrently (their cursors were
// opened before the first row is pulled). Also used (with one stream) to
// relay a single-shard route.
type concatRows struct {
	streams []*shardStream
	cur     int
	emitted int64
}

func (c *concatRows) Cols() []string { return c.streams[0].cols }

func (c *concatRows) Next() ([]string, error) {
	for c.cur < len(c.streams) {
		row, err := c.streams[c.cur].next()
		if err != nil {
			if len(c.streams) > 1 {
				if re, ok := err.(*wire.RemoteError); ok {
					return nil, &wire.RemoteError{
						Code:    wire.CodePartialFailure,
						Message: fmt.Sprintf("scatter leg %d failed after %d gathered rows: %s", c.cur, c.emitted, re.Message),
					}
				}
				return nil, scatterError(c.cur, err)
			}
			return nil, err
		}
		if row == nil {
			c.cur++
			continue
		}
		c.emitted++
		return row, nil
	}
	return nil, nil
}

func (c *concatRows) Close() {
	for _, st := range c.streams {
		st.close()
	}
}

// sliceRows serves a materialized result (the merge gather's output).
type sliceRows struct {
	cols []string
	rows [][]string
	pos  int
}

func (s *sliceRows) Cols() []string { return s.cols }

func (s *sliceRows) Next() ([]string, error) {
	if s.pos >= len(s.rows) {
		return nil, nil
	}
	r := s.rows[s.pos]
	s.pos++
	return r, nil
}

func (s *sliceRows) Close() {}

// gatherMerge drains every shard's partial-aggregate stream and merges the
// per-group partials: each shard row is NumKeys group-key cells followed by
// the partial cells of each aggregate (avg ships sum and count). Merging
// must see every shard, so the result is materialized; groups come out
// sorted by key for determinism (single-node GROUP BY order is hash-driven
// and comparisons canonicalize anyway).
func gatherMerge(streams []*shardStream, spec *plan.MergeSpec) (Rows, error) {
	defer func() {
		for _, st := range streams {
			st.close()
		}
	}()
	specs := make([]exec.PartialAggSpec, len(spec.Aggs))
	for i, a := range spec.Aggs {
		specs[i] = exec.PartialAggSpec{Func: a.Func, Star: a.Star}
	}
	type group struct {
		keyCells []string
		pm       *exec.PartialMerge
	}
	groups := map[string]*group{}
	for i, st := range streams {
		for {
			row, err := st.next()
			if err != nil {
				return nil, scatterError(i, err)
			}
			if row == nil {
				break
			}
			if len(row) < spec.NumKeys {
				return nil, fmt.Errorf("scatter leg %d: partial row has %d cells, want at least %d keys", i, len(row), spec.NumKeys)
			}
			keyCells := row[:spec.NumKeys]
			k := strings.Join(keyCells, "\x1f")
			g, ok := groups[k]
			if !ok {
				pm, err := exec.NewPartialMerge(specs)
				if err != nil {
					return nil, err
				}
				g = &group{keyCells: keyCells, pm: pm}
				groups[k] = g
			}
			partials := make([]sqltypes.Value, 0, len(row)-spec.NumKeys)
			for _, cell := range row[spec.NumKeys:] {
				v, err := parseCell(cell)
				if err != nil {
					return nil, fmt.Errorf("scatter leg %d: %w", i, err)
				}
				partials = append(partials, v)
			}
			if err := g.pm.Absorb(partials); err != nil {
				return nil, fmt.Errorf("scatter leg %d: %w", i, err)
			}
		}
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([][]string, 0, len(groups))
	for _, k := range keys {
		g := groups[k]
		merged, err := g.pm.Results()
		if err != nil {
			return nil, err
		}
		row := make([]string, len(spec.Output))
		for i, oc := range spec.Output {
			if oc.IsAgg {
				row[i] = merged[oc.Index].String()
			} else {
				row[i] = g.keyCells[oc.Index]
			}
		}
		out = append(out, row)
	}
	return &sliceRows{cols: spec.Cols, rows: out}, nil
}

// parseCell parses one formatted stream cell back into a value. Cells are
// rendered by sqltypes.Value.String(), whose float form is the shortest
// round-tripping representation, so the parse is lossless.
func parseCell(s string) (sqltypes.Value, error) {
	switch {
	case s == "NULL":
		return sqltypes.Null, nil
	case s == "TRUE":
		return sqltypes.NewBool(true), nil
	case s == "FALSE":
		return sqltypes.NewBool(false), nil
	case strings.HasPrefix(s, "'"):
		if len(s) < 2 || !strings.HasSuffix(s, "'") {
			return sqltypes.Null, fmt.Errorf("bad string cell %q", s)
		}
		return sqltypes.NewString(strings.ReplaceAll(s[1:len(s)-1], "''", "'")), nil
	default:
		if i, err := strconv.ParseInt(s, 10, 64); err == nil {
			return sqltypes.NewInt(i), nil
		}
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return sqltypes.Null, fmt.Errorf("bad numeric cell %q", s)
		}
		return sqltypes.NewFloat(f), nil
	}
}
