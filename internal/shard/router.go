package shard

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"udfdecorr/internal/ast"
	"udfdecorr/internal/catalog"
	"udfdecorr/internal/core"
	"udfdecorr/internal/parser"
	"udfdecorr/internal/plan"
	"udfdecorr/internal/sqltypes"
	"udfdecorr/internal/wire"
)

// Router fronts a fixed set of shards. It is stateless apart from its
// catalog (rebuilt from the DDL that flows through it) and its session
// table (a router session is one session per shard).
type Router struct {
	shards []*shardClient
	cat    *catalog.Catalog

	mu       sync.Mutex
	sessions map[string]*Session
	seq      int64

	rr    atomic.Uint64 // round-robin for replicated-only single-shard routes
	stats Stats
}

// Stats counts what the router did, by route class.
type Stats struct {
	Sessions         atomic.Int64
	SingleShard      atomic.Int64
	ScatterConcat    atomic.Int64
	ScatterMerge     atomic.Int64
	Rejected         atomic.Int64
	InsertsRouted    atomic.Int64 // hash-routed to one shard
	InsertsBroadcast atomic.Int64 // replicated-table inserts, per statement
	DDLBroadcast     atomic.Int64
}

// StatsSnapshot is the JSON form served by /stats.
type StatsSnapshot struct {
	Shards           int      `json:"shards"`
	ShardURLs        []string `json:"shard_urls"`
	Sessions         int64    `json:"sessions"`
	SingleShard      int64    `json:"single_shard"`
	ScatterConcat    int64    `json:"scatter_concat"`
	ScatterMerge     int64    `json:"scatter_merge"`
	Rejected         int64    `json:"rejected"`
	InsertsRouted    int64    `json:"inserts_routed"`
	InsertsBroadcast int64    `json:"inserts_broadcast"`
	DDLBroadcast     int64    `json:"ddl_broadcast"`
	ShardedTables    []string `json:"sharded_tables"`
}

// Session is one router session: one session ID per shard, created eagerly
// with identical settings so any shard can serve any leg of a scatter.
type Session struct {
	ID       string
	shardIDs []string
}

// New builds a router over the given shard base URLs.
func New(shardURLs []string) (*Router, error) {
	if len(shardURLs) == 0 {
		return nil, fmt.Errorf("shard router needs at least one shard URL")
	}
	r := &Router{cat: catalog.New(), sessions: map[string]*Session{}}
	for _, u := range shardURLs {
		r.shards = append(r.shards, newShardClient(strings.TrimRight(u, "/")))
	}
	return r, nil
}

// NumShards returns the cluster width.
func (r *Router) NumShards() int { return len(r.shards) }

// Snapshot captures the router's counters.
func (r *Router) Snapshot() StatsSnapshot {
	urls := make([]string, len(r.shards))
	for i, s := range r.shards {
		urls[i] = s.base
	}
	var sharded []string
	for _, t := range r.cat.Tables() {
		if t.ShardKey != "" {
			sharded = append(sharded, fmt.Sprintf("%s(%s)", t.Name, t.ShardKey))
		}
	}
	r.mu.Lock()
	nsess := int64(len(r.sessions))
	r.mu.Unlock()
	return StatsSnapshot{
		Shards:           len(r.shards),
		ShardURLs:        urls,
		Sessions:         nsess,
		SingleShard:      r.stats.SingleShard.Load(),
		ScatterConcat:    r.stats.ScatterConcat.Load(),
		ScatterMerge:     r.stats.ScatterMerge.Load(),
		Rejected:         r.stats.Rejected.Load(),
		InsertsRouted:    r.stats.InsertsRouted.Load(),
		InsertsBroadcast: r.stats.InsertsBroadcast.Load(),
		DDLBroadcast:     r.stats.DDLBroadcast.Load(),
		ShardedTables:    sharded,
	}
}

// sessionResponse is the shard's /session result (v1 payload).
type sessionResponse struct {
	Session string `json:"session"`
}

// CreateSession opens one session per shard with the given settings
// (forwarded verbatim: mode, profile, vectorized, parallelism, timeout_ms).
// All shards must answer — a scatter cannot run on a partial cluster.
func (r *Router) CreateSession(ctx context.Context, settings map[string]any) (*Session, error) {
	ids := make([]string, len(r.shards))
	errs := make([]error, len(r.shards))
	var wg sync.WaitGroup
	for i, sc := range r.shards {
		wg.Add(1)
		go func(i int, sc *shardClient) {
			defer wg.Done()
			var resp sessionResponse
			if err := sc.post(ctx, "/session", settings, &resp); err != nil {
				errs[i] = err
				return
			}
			ids[i] = resp.Session
		}(i, sc)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			// Best-effort close of the sessions that did open.
			for j, id := range ids {
				if id != "" {
					_ = r.shards[j].post(ctx, "/session/close", map[string]any{"session": id}, nil)
				}
			}
			return nil, fmt.Errorf("opening session on shard %d: %w", i, err)
		}
	}
	r.mu.Lock()
	r.seq++
	s := &Session{ID: fmt.Sprintf("rs-%d", r.seq), shardIDs: ids}
	r.sessions[s.ID] = s
	r.mu.Unlock()
	r.stats.Sessions.Add(1)
	return s, nil
}

// CloseSession closes the per-shard sessions (best effort) and forgets the
// router session.
func (r *Router) CloseSession(ctx context.Context, id string) error {
	r.mu.Lock()
	s, ok := r.sessions[id]
	delete(r.sessions, id)
	r.mu.Unlock()
	if !ok {
		return &wire.RemoteError{Code: wire.CodeUnknownSession, Message: fmt.Sprintf("unknown session %q", id)}
	}
	for i, sid := range s.shardIDs {
		_ = r.shards[i].post(ctx, "/session/close", map[string]any{"session": sid}, nil)
	}
	return nil
}

// Session resolves a router session ID.
func (r *Router) Session(id string) (*Session, error) {
	r.mu.Lock()
	s, ok := r.sessions[id]
	r.mu.Unlock()
	if !ok {
		return nil, &wire.RemoteError{Code: wire.CodeUnknownSession, Message: fmt.Sprintf("unknown session %q", id)}
	}
	return s, nil
}

// Classify runs the shard-feasibility pass on one SELECT against the
// router's catalog. Classification is mode-independent: it works on the
// normalized (not decorrelated) plan, whose root aggregate shape is the
// same under every executor the shards might run.
func (r *Router) Classify(sql string) (plan.ShardInfo, error) {
	sel, err := parser.ParseQuery(sql)
	if err != nil {
		return plan.ShardInfo{}, &wire.RemoteError{Code: wire.CodeBadRequest, Message: err.Error()}
	}
	rel, err := core.NewAlgebrizer(r.cat).Query(sel)
	if err != nil {
		return plan.ShardInfo{}, &wire.RemoteError{Code: wire.CodeBadRequest, Message: err.Error()}
	}
	rel = core.Normalize(r.cat, rel)
	return plan.ClassifyShard(rel, r.cat), nil
}

// pick chooses the shard for a single-shard route: the hash of the pinned
// key value, or round-robin across the cluster when the statement reads
// only replicated tables (any shard has all of them).
func (r *Router) pick(info plan.ShardInfo) int {
	if info.KeyValue != nil {
		return Hash(*info.KeyValue, len(r.shards))
	}
	return int(r.rr.Add(1) % uint64(len(r.shards)))
}

// Query classifies and executes one SELECT, returning a result iterator.
// The returned ShardInfo says how it routed (for /stats and EXPLAIN).
func (r *Router) Query(ctx context.Context, sess *Session, sql string) (Rows, plan.ShardInfo, error) {
	info, err := r.Classify(sql)
	if err != nil {
		return nil, info, err
	}
	switch info.Kind {
	case plan.ShardRejected:
		r.stats.Rejected.Add(1)
		return nil, info, &wire.RemoteError{Code: wire.CodeUnshardable, Message: info.Reason}
	case plan.ShardSingle:
		r.stats.SingleShard.Add(1)
		i := r.pick(info)
		st, err := r.shards[i].stream(ctx, sess.shardIDs[i], sql, false)
		if err != nil {
			return nil, info, err
		}
		return &concatRows{streams: []*shardStream{st}}, info, nil
	case plan.ShardScatterConcat:
		r.stats.ScatterConcat.Add(1)
		streams, err := r.scatter(ctx, sess, sql, false)
		if err != nil {
			return nil, info, err
		}
		return &concatRows{streams: streams}, info, nil
	default: // plan.ShardScatterMerge
		r.stats.ScatterMerge.Add(1)
		streams, err := r.scatter(ctx, sess, sql, true)
		if err != nil {
			return nil, info, err
		}
		rows, err := gatherMerge(streams, info.Merge)
		if err != nil {
			return nil, info, err
		}
		return rows, info, nil
	}
}

// scatter opens the query's cursor on every shard concurrently.
func (r *Router) scatter(ctx context.Context, sess *Session, sql string, partial bool) ([]*shardStream, error) {
	streams := make([]*shardStream, len(r.shards))
	errs := make([]error, len(r.shards))
	var wg sync.WaitGroup
	for i, sc := range r.shards {
		wg.Add(1)
		go func(i int, sc *shardClient) {
			defer wg.Done()
			streams[i], errs[i] = sc.stream(ctx, sess.shardIDs[i], sql, partial)
		}(i, sc)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			for _, st := range streams {
				if st != nil {
					st.close()
				}
			}
			return nil, scatterError(i, err)
		}
	}
	return streams, nil
}

// scatterError attributes a shard's failure inside a scatter. Typed shard
// errors keep their code (a down shard stays SHARD_UNAVAILABLE); anything
// else becomes PARTIAL_FAILURE, because the other shards were already
// committed to the scatter.
func scatterError(shardIdx int, err error) error {
	if re, ok := err.(*wire.RemoteError); ok {
		return &wire.RemoteError{
			Code:       re.Code,
			Message:    fmt.Sprintf("scatter leg %d: %s", shardIdx, re.Message),
			LeaderHint: re.LeaderHint,
		}
	}
	return &wire.RemoteError{
		Code:    wire.CodePartialFailure,
		Message: fmt.Sprintf("scatter leg %d: %v", shardIdx, err),
	}
}

// Explain returns the router's routing decision plus the shard-local plan
// (from the shard the statement would start on).
func (r *Router) Explain(ctx context.Context, sess *Session, sql string) (string, error) {
	info, err := r.Classify(sql)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "route: %s", info.Kind)
	if info.Table != "" {
		fmt.Fprintf(&b, " (sharded table %s)", info.Table)
	}
	if info.KeyValue != nil {
		fmt.Fprintf(&b, " pinned to shard %d by key %s", Hash(*info.KeyValue, len(r.shards)), info.KeyValue.String())
	}
	b.WriteString("\n")
	if info.Kind == plan.ShardRejected {
		fmt.Fprintf(&b, "rejected: %s\n", info.Reason)
		return b.String(), nil
	}
	i := 0
	if info.Kind == plan.ShardSingle {
		i = r.pick(info)
	}
	var resp struct {
		Explain string `json:"explain"`
	}
	if err := r.shards[i].post(ctx, "/explain", map[string]any{"session": sess.shardIDs[i], "sql": sql}, &resp); err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "shard %d plan:\n%s", i, resp.Explain)
	return b.String(), nil
}

// Exec routes a DDL/DML script: CREATE TABLE and CREATE FUNCTION broadcast
// to every shard (and update the router's catalog), INSERTs into sharded
// tables hash-route to one shard, INSERTs into replicated tables broadcast.
// Per-shard statement order follows script order; everything ships in one
// batch per shard, after the whole script has routed.
func (r *Router) Exec(ctx context.Context, sess *Session, script string) error {
	s, err := parser.ParseScript(script)
	if err != nil {
		return &wire.RemoteError{Code: wire.CodeBadRequest, Message: err.Error()}
	}
	pending := make([][]string, len(r.shards))
	broadcast := func(sql string) {
		for i := range pending {
			pending[i] = append(pending[i], sql)
		}
	}
	for _, st := range s.Stmts {
		switch st := st.(type) {
		case *ast.CreateTableStmt:
			if _, err := r.cat.AddTableFromAST(st); err != nil {
				return &wire.RemoteError{Code: wire.CodeBadRequest, Message: err.Error()}
			}
			broadcast(st.SQL())
			r.stats.DDLBroadcast.Add(1)
		case *ast.CreateFunctionStmt:
			if _, err := r.cat.AddFunction(st); err != nil {
				return &wire.RemoteError{Code: wire.CodeBadRequest, Message: err.Error()}
			}
			broadcast(st.SQL())
			r.stats.DDLBroadcast.Add(1)
		case *ast.InsertStmt:
			t, ok := r.cat.Table(st.Table)
			if !ok {
				return &wire.RemoteError{Code: wire.CodeBadRequest, Message: fmt.Sprintf("unknown table %s", st.Table)}
			}
			if t.ShardKey == "" {
				broadcast(st.SQL())
				r.stats.InsertsBroadcast.Add(1)
				continue
			}
			idx := t.ColIndex(t.ShardKey)
			if idx < 0 || idx >= len(st.Values) {
				return &wire.RemoteError{Code: wire.CodeBadRequest,
					Message: fmt.Sprintf("INSERT INTO %s: %d values, shard key %s is column %d", st.Table, len(st.Values), t.ShardKey, idx)}
			}
			v, ok := litValue(st.Values[idx])
			if !ok {
				return &wire.RemoteError{Code: wire.CodeUnshardable,
					Message: fmt.Sprintf("INSERT INTO %s: shard key %s must be a literal to route the row", st.Table, t.ShardKey)}
			}
			i := Hash(v, len(r.shards))
			pending[i] = append(pending[i], st.SQL())
			r.stats.InsertsRouted.Add(1)
		case *ast.TxnStmt:
			return &wire.RemoteError{Code: wire.CodeUnshardable,
				Message: "transactions cannot run through the shard router (no distributed commit protocol)"}
		default:
			return &wire.RemoteError{Code: wire.CodeUnshardable,
				Message: fmt.Sprintf("%T statement cannot run through the shard router (only CREATE TABLE, CREATE FUNCTION and INSERT)", st)}
		}
	}
	return r.flush(ctx, sess, pending)
}

// flush ships each shard's routed statements as one /exec batch. When only
// one shard is involved its error passes through typed and untouched (a
// point INSERT into a down shard is SHARD_UNAVAILABLE, nothing partial
// about it); when several shards were involved and only some failed, the
// result is PARTIAL_FAILURE naming the losers — the acked shards keep
// their rows, the failed statements were never applied anywhere.
func (r *Router) flush(ctx context.Context, sess *Session, pending [][]string) error {
	errs := make([]error, len(r.shards))
	involved := 0
	var wg sync.WaitGroup
	for i, stmts := range pending {
		if len(stmts) == 0 {
			continue
		}
		involved++
		wg.Add(1)
		go func(i int, script string) {
			defer wg.Done()
			errs[i] = r.shards[i].post(ctx, "/exec", map[string]any{
				"session": sess.shardIDs[i], "script": script,
			}, nil)
		}(i, strings.Join(stmts, "\n"))
	}
	wg.Wait()
	var failed []string
	var firstErr error
	for i, err := range errs {
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			failed = append(failed, fmt.Sprintf("shard %d: %v", i, err))
		}
	}
	if firstErr == nil {
		return nil
	}
	if involved == 1 || len(failed) == involved {
		return firstErr
	}
	return &wire.RemoteError{
		Code:    wire.CodePartialFailure,
		Message: fmt.Sprintf("%d of %d shards failed: %s", len(failed), involved, strings.Join(failed, "; ")),
	}
}

// litValue extracts the constant of a literal INSERT value (allowing a
// leading unary minus), which routing needs at plan-free speed.
func litValue(e ast.Expr) (sqltypes.Value, bool) {
	switch e := e.(type) {
	case *ast.Lit:
		return e.Val, true
	case *ast.UnaryExpr:
		if e.Op != "-" {
			return sqltypes.Null, false
		}
		v, ok := litValue(e.E)
		if !ok {
			return sqltypes.Null, false
		}
		neg, err := sqltypes.Arith(sqltypes.OpMul, v, sqltypes.NewInt(-1))
		if err != nil {
			return sqltypes.Null, false
		}
		return neg, true
	default:
		return sqltypes.Null, false
	}
}
