// Package shard implements the sharded query tier: a stateless router that
// fronts N independent udfserverd processes and presents the same HTTP API
// (session, /query, /exec, /stream) over a hash-partitioned cluster.
//
// Placement is declared in DDL: a table created WITH `SHARD KEY (col)` is
// hash-partitioned across the shards by that column (FNV-1a over the
// sqltypes key encoding, modulo the shard count); a table created without
// one is replicated — its DDL and every INSERT are broadcast to all shards,
// so reference tables are complete everywhere. The router keeps its own
// catalog, rebuilt from the DDL that flows through it, and owns no data.
//
// Statements route by the planner's shard-feasibility pass
// (plan.ClassifyShard over the normalized logical plan):
//
//   - single-shard: relay verbatim to one shard (hash of the pinned shard
//     key equality, or round-robin when only replicated tables are read).
//   - scatter-concat: fan out over every shard's /stream cursor and
//     concatenate the result streams (disjoint partitions, so the
//     concatenation is the single-node multiset).
//   - scatter-merge: fan out with shard_partial set, so shards suppress
//     aggregate finalization, then merge per-group partials with the same
//     exec merge states the parallel group-by uses, and re-apply the
//     query's projection from the MergeSpec.
//   - rejected: fail with a typed UNSHARDABLE wire error naming the
//     unsupported shape; a wrong merged answer is worse than no answer.
//
// Shard failures surface as typed wire errors too: SHARD_UNAVAILABLE when a
// shard cannot be reached, PARTIAL_FAILURE when a scatter dies after some
// shards contributed. The router never returns a partial result set.
package shard

import (
	"hash/fnv"

	"udfdecorr/internal/sqltypes"
)

// Hash maps a shard-key value to a shard ordinal in [0, n). It is the one
// placement function: INSERT routing and shard-key-equality query pinning
// must agree, so both call this. The sqltypes key encoding already
// canonicalizes numerics (1 and 1.0 hash alike, matching CmpEQ semantics).
func Hash(v sqltypes.Value, n int) int {
	h := fnv.New64a()
	h.Write(sqltypes.EncodeKey(nil, v))
	return int(h.Sum64() % uint64(n))
}
