package algebra

import "sort"

// Ref identifies a free reference: either a parameter or a column reference
// not satisfied within a subtree.
type Ref struct {
	IsParam bool
	Qual    string
	Name    string
}

// String renders the reference.
func (r Ref) String() string {
	if r.IsParam {
		return ":" + r.Name
	}
	if r.Qual != "" {
		return r.Qual + "." + r.Name
	}
	return r.Name
}

// RefSet is a set of free references.
type RefSet map[Ref]bool

// Add inserts a reference.
func (s RefSet) Add(r Ref) { s[r] = true }

// AddAll unions another set into this one.
func (s RefSet) AddAll(o RefSet) {
	for r := range o {
		s[r] = true
	}
}

// Sorted returns the references in a deterministic order.
func (s RefSet) Sorted() []Ref {
	out := make([]Ref, 0, len(s))
	for r := range s {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].IsParam != out[j].IsParam {
			return out[i].IsParam
		}
		if out[i].Qual != out[j].Qual {
			return out[i].Qual < out[j].Qual
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// exprRefs collects parameter references and column references in an
// expression that are not bound by the given schema. Subquery relations are
// analysed recursively: their free refs (minus the schema) count too.
func exprRefs(e Expr, schema []Column, out RefSet) {
	VisitExpr(e, func(x Expr) {
		switch n := x.(type) {
		case *ParamRef:
			out.Add(Ref{IsParam: true, Name: n.Name})
		case *ColRef:
			if !HasRef(schema, n.Qual, n.Name) {
				out.Add(Ref{Qual: n.Qual, Name: n.Name})
			}
		}
	}, func(sub Rel) {
		for r := range FreeRefs(sub) {
			if !r.IsParam && HasRef(schema, r.Qual, r.Name) {
				continue
			}
			out.Add(r)
		}
	})
}

// FreeRefs computes the free references of a relational expression: the
// parameters and column references it uses that are not produced within the
// expression itself. A correlated subexpression has a non-empty result.
func FreeRefs(r Rel) RefSet {
	out := RefSet{}
	switch n := r.(type) {
	case *Scan, *Single:
		return out

	case *Apply:
		out.AddAll(FreeRefs(n.L))
		lSchema := n.L.Schema()
		// Bind arguments are evaluated against the outer row.
		for _, b := range n.Binds {
			exprRefs(b.Arg, lSchema, out)
		}
		// The right child may use outer columns and bound params freely.
		inner := FreeRefs(n.R)
		bound := map[string]bool{}
		for _, b := range n.Binds {
			bound[b.Param] = true
		}
		for ref := range inner {
			if ref.IsParam && bound[ref.Name] {
				continue
			}
			if !ref.IsParam && HasRef(lSchema, ref.Qual, ref.Name) {
				continue
			}
			out.Add(ref)
		}
		return out

	case *ApplyMerge:
		out.AddAll(FreeRefs(n.L))
		lSchema := n.L.Schema()
		for ref := range FreeRefs(n.R) {
			if !ref.IsParam && HasRef(lSchema, ref.Qual, ref.Name) {
				continue
			}
			out.Add(ref)
		}
		return out

	case *CondApplyMerge:
		out.AddAll(FreeRefs(n.In))
		inSchema := n.In.Schema()
		exprRefs(n.Pred, inSchema, out)
		for _, br := range []Rel{n.Then, n.Else} {
			if br == nil {
				continue
			}
			for ref := range FreeRefs(br) {
				if !ref.IsParam && HasRef(inSchema, ref.Qual, ref.Name) {
					continue
				}
				out.Add(ref)
			}
		}
		return out

	default:
		// Standard operators: a node's own expressions see the union of its
		// children's schemas; free refs of children propagate.
		var schema []Column
		for _, c := range r.Children() {
			out.AddAll(FreeRefs(c))
			schema = append(schema, c.Schema()...)
		}
		for _, e := range nodeExprs(r) {
			exprRefs(e, schema, out)
		}
		return out
	}
}

// UsesRefsOf reports whether rel has free references satisfied by the given
// schema (i.e. rel is correlated with a relation having that schema).
func UsesRefsOf(rel Rel, schema []Column) bool {
	for ref := range FreeRefs(rel) {
		if ref.IsParam {
			continue
		}
		if HasRef(schema, ref.Qual, ref.Name) {
			return true
		}
	}
	return false
}

// ExprUsesRefsOf reports whether the expression references columns of the
// given schema (treating all column refs as free) or any parameter.
func ExprUsesRefsOf(e Expr, schema []Column) bool {
	if e == nil {
		return false
	}
	set := RefSet{}
	exprRefs(e, nil, set)
	for ref := range set {
		if !ref.IsParam && HasRef(schema, ref.Qual, ref.Name) {
			return true
		}
	}
	return false
}

// HasFreeParams reports whether the relation still references unbound
// parameters.
func HasFreeParams(r Rel) bool {
	for ref := range FreeRefs(r) {
		if ref.IsParam {
			return true
		}
	}
	return false
}

// SubstituteParams replaces parameter references by the mapped expressions
// throughout the tree, including inside subqueries (rule R9's mechanics).
func SubstituteParams(r Rel, m map[string]Expr) Rel {
	if len(m) == 0 {
		return r
	}
	return MapExprsDeep(r, func(e Expr) Expr {
		if p, ok := e.(*ParamRef); ok {
			if repl, ok := m[p.Name]; ok {
				return repl
			}
		}
		return e
	})
}

// SubstituteParamsExpr replaces parameter references inside a scalar
// expression (including nested subqueries).
func SubstituteParamsExpr(e Expr, m map[string]Expr) Expr {
	if len(m) == 0 || e == nil {
		return e
	}
	return MapExpr(e, func(x Expr) Expr {
		if p, ok := x.(*ParamRef); ok {
			if repl, ok := m[p.Name]; ok {
				return repl
			}
		}
		return x
	}, func(sub Rel) Rel {
		return SubstituteParams(sub, m)
	})
}

// RenameColumns renames columns throughout a tree: every ColRef and
// projection output whose unqualified name appears in the mapping is
// renamed. Used by the merger to alpha-rename UDF-local variables that
// collide with outer query columns. Only unqualified ("" Qual) names are
// touched, since UDF variables are unqualified by construction.
func RenameColumns(r Rel, m map[string]string) Rel {
	if len(m) == 0 {
		return r
	}
	mapped := MapExprsDeep(r, func(e Expr) Expr {
		if c, ok := e.(*ColRef); ok && c.Qual == "" {
			if to, ok := m[c.Name]; ok {
				return &ColRef{Name: to}
			}
		}
		return e
	})
	// Also rename projection aliases, group-by agg aliases, merge targets.
	return Transform(mapped, func(n Rel) Rel {
		switch x := n.(type) {
		case *Project:
			cols := make([]ProjCol, len(x.Cols))
			changed := false
			for i, c := range x.Cols {
				cols[i] = c
				if c.Qual == "" {
					if to, ok := m[c.As]; ok {
						cols[i].As = to
						changed = true
					}
				}
			}
			if changed {
				return &Project{Cols: cols, Dedup: x.Dedup, In: x.In}
			}
		case *GroupBy:
			aggs := make([]AggCall, len(x.Aggs))
			changed := false
			for i, a := range x.Aggs {
				aggs[i] = a
				if to, ok := m[a.As]; ok {
					aggs[i].As = to
					changed = true
				}
			}
			if changed {
				return &GroupBy{Keys: x.Keys, Aggs: aggs, In: x.In}
			}
		case *ApplyMerge:
			assigns := make([]MergeAssign, len(x.Assigns))
			changed := false
			for i, a := range x.Assigns {
				assigns[i] = a
				if to, ok := m[a.Target]; ok {
					assigns[i].Target = to
					changed = true
				}
				if to, ok := m[a.Source]; ok {
					assigns[i].Source = to
					changed = true
				}
			}
			if changed {
				return &ApplyMerge{Assigns: assigns, L: x.L, R: x.R}
			}
		}
		return n
	})
}
