package algebra

import (
	"fmt"
	"strings"

	"udfdecorr/internal/sqltypes"
)

// Column is one column of a relation's schema.
type Column struct {
	Qual string // table alias or "" for computed/variable columns
	Name string
	Type sqltypes.Kind
}

// String renders the column as qual.name.
func (c Column) String() string {
	if c.Qual != "" {
		return c.Qual + "." + c.Name
	}
	return c.Name
}

// Matches reports whether a reference (qual may be empty) resolves to this
// column.
func (c Column) Matches(qual, name string) bool {
	return c.Name == name && (qual == "" || qual == c.Qual)
}

// JoinKind enumerates join and apply flavours: cross product, inner join,
// left outer join, left semijoin and left antijoin (Section II).
type JoinKind uint8

// Join kinds.
const (
	CrossJoin JoinKind = iota
	InnerJoin
	LeftOuterJoin
	SemiJoin
	AntiJoin
)

// String names the join kind.
func (k JoinKind) String() string {
	switch k {
	case CrossJoin:
		return "cross"
	case InnerJoin:
		return "inner"
	case LeftOuterJoin:
		return "leftouter"
	case SemiJoin:
		return "semi"
	case AntiJoin:
		return "anti"
	default:
		return "?"
	}
}

// Rel is a logical relational operator tree node.
type Rel interface {
	// Schema returns the output columns.
	Schema() []Column
	// Children returns the relational children in a stable order.
	Children() []Rel
	// WithChildren returns a copy of the node with the children replaced;
	// len(ch) must equal len(Children()).
	WithChildren(ch []Rel) Rel
	// Describe returns a one-line description for tree printing.
	Describe() string
}

// ---------------------------------------------------------------------------
// Standard operators
// ---------------------------------------------------------------------------

// Scan reads a base table under an alias.
type Scan struct {
	Table string
	Alias string // qualifier for output columns (defaults to table name)
	Cols  []Column
}

// Single is the relation S with a single empty tuple and no attributes
// (Section III).
type Single struct{}

// Select filters rows by a predicate (σ).
type Select struct {
	Pred Expr
	In   Rel
}

// ProjCol is one output column of a projection: an expression with a result
// name (generalized projection, Section III).
type ProjCol struct {
	E    Expr
	Qual string // optional output qualifier
	As   string
}

// Project is generalized projection (Π / Πd).
type Project struct {
	Cols  []ProjCol
	Dedup bool // true for Π with duplicate elimination
	In    Rel
}

// Join combines two relations (⋈, ⟕, ⋉, ⋉̄, ×).
type Join struct {
	Kind JoinKind
	Cond Expr // nil for cross
	L, R Rel
}

// AggCall is one aggregate computation of a group-by.
type AggCall struct {
	Func     string // sum, count, min, max, avg, or a user-defined aggregate
	Args     []Expr // empty for count(*)
	Distinct bool
	As       string
}

// String renders the aggregate call.
func (a AggCall) String() string {
	parts := make([]string, len(a.Args))
	for i, e := range a.Args {
		parts[i] = e.String()
	}
	inner := strings.Join(parts, ", ")
	if len(a.Args) == 0 {
		inner = "*"
	}
	if a.Distinct {
		inner = "DISTINCT " + inner
	}
	return fmt.Sprintf("%s(%s) AS %s", a.Func, inner, a.As)
}

// GroupBy groups by key columns and computes aggregates (the G operator).
// An empty Keys list is scalar aggregation producing exactly one row.
type GroupBy struct {
	Keys []*ColRef
	Aggs []AggCall
	In   Rel
}

// UnionAll concatenates two relations with identical arity.
type UnionAll struct {
	L, R Rel
}

// Limit returns the first N rows (TOP n).
type Limit struct {
	N  int64
	In Rel
}

// SortKey is one ORDER BY key.
type SortKey struct {
	E    Expr
	Desc bool
}

// Sort orders rows.
type Sort struct {
	Keys []SortKey
	In   Rel
}

// ---------------------------------------------------------------------------
// Apply and its extensions
// ---------------------------------------------------------------------------

// Bind is one parameter mapping of the bind extension (Section III):
// formal parameter Param is assigned the value of Arg (an expression over
// the outer relation) before the inner expression is evaluated.
type Bind struct {
	Param string
	Arg   Expr
}

// Apply evaluates the parameterized right child once per tuple of the left
// child and combines results according to Kind. Binds is the optional
// bind-extension parameter mapping.
type Apply struct {
	Kind  JoinKind
	Binds []Bind
	L, R  Rel
}

// MergeAssign is one assignment of an Apply-Merge: left-child column Target
// receives right-child column Source.
type MergeAssign struct {
	Target string
	Source string
}

// ApplyMerge (AM) evaluates the single-tuple right child per left tuple and
// merges the listed columns into the left tuple (Section III). An empty
// Assigns list means "assign all common attributes". When the right child
// produces no row the targets become NULL (see DESIGN.md on ⊥/empty
// semantics); more than one row is a runtime error.
type ApplyMerge struct {
	Assigns []MergeAssign
	L, R    Rel
}

// CondApplyMerge (AMC) models assignments inside if-then-else blocks: per
// left tuple, if Pred holds Then is evaluated, otherwise Else, and the
// resulting single tuple is merged by column name. Else may be nil,
// meaning "no assignment" (the existing values are retained).
type CondApplyMerge struct {
	Pred Expr
	Then Rel
	Else Rel // may be nil
	In   Rel
}

// ---------------------------------------------------------------------------
// Schema inference
// ---------------------------------------------------------------------------

// Schema implements Rel.
func (s *Scan) Schema() []Column { return s.Cols }

// Schema implements Rel.
func (s *Single) Schema() []Column { return nil }

// Schema implements Rel.
func (s *Select) Schema() []Column { return s.In.Schema() }

// Schema implements Rel.
func (p *Project) Schema() []Column {
	in := p.In.Schema()
	out := make([]Column, len(p.Cols))
	for i, c := range p.Cols {
		out[i] = Column{Qual: c.Qual, Name: c.As, Type: TypeOf(c.E, in)}
	}
	return out
}

// Schema implements Rel.
func (j *Join) Schema() []Column {
	switch j.Kind {
	case SemiJoin, AntiJoin:
		return j.L.Schema()
	default:
		return append(append([]Column{}, j.L.Schema()...), j.R.Schema()...)
	}
}

// Schema implements Rel.
func (g *GroupBy) Schema() []Column {
	in := g.In.Schema()
	var out []Column
	for _, k := range g.Keys {
		if c, ok := ResolveRef(in, k.Qual, k.Name); ok {
			out = append(out, c)
		} else {
			out = append(out, Column{Qual: k.Qual, Name: k.Name})
		}
	}
	for _, a := range g.Aggs {
		out = append(out, Column{Name: a.As, Type: aggType(a, in)})
	}
	return out
}

func aggType(a AggCall, in []Column) sqltypes.Kind {
	switch a.Func {
	case "count":
		return sqltypes.KindInt
	case "avg":
		return sqltypes.KindFloat
	case "sum", "min", "max":
		if len(a.Args) == 1 {
			return TypeOf(a.Args[0], in)
		}
		return sqltypes.KindNull
	default:
		return sqltypes.KindNull // user-defined: unknown statically
	}
}

// Schema implements Rel.
func (u *UnionAll) Schema() []Column { return u.L.Schema() }

// Schema implements Rel.
func (l *Limit) Schema() []Column { return l.In.Schema() }

// Schema implements Rel.
func (s *Sort) Schema() []Column { return s.In.Schema() }

// Schema implements Rel.
func (a *Apply) Schema() []Column {
	switch a.Kind {
	case SemiJoin, AntiJoin:
		return a.L.Schema()
	default:
		return append(append([]Column{}, a.L.Schema()...), a.R.Schema()...)
	}
}

// Schema implements Rel.
func (a *ApplyMerge) Schema() []Column { return a.L.Schema() }

// Schema implements Rel.
func (a *CondApplyMerge) Schema() []Column { return a.In.Schema() }

// ---------------------------------------------------------------------------
// Children / WithChildren
// ---------------------------------------------------------------------------

// Children implements Rel.
func (s *Scan) Children() []Rel { return nil }

// WithChildren implements Rel.
func (s *Scan) WithChildren(ch []Rel) Rel { return s }

// Children implements Rel.
func (s *Single) Children() []Rel { return nil }

// WithChildren implements Rel.
func (s *Single) WithChildren(ch []Rel) Rel { return s }

// Children implements Rel.
func (s *Select) Children() []Rel { return []Rel{s.In} }

// WithChildren implements Rel.
func (s *Select) WithChildren(ch []Rel) Rel { return &Select{Pred: s.Pred, In: ch[0]} }

// Children implements Rel.
func (p *Project) Children() []Rel { return []Rel{p.In} }

// WithChildren implements Rel.
func (p *Project) WithChildren(ch []Rel) Rel {
	return &Project{Cols: p.Cols, Dedup: p.Dedup, In: ch[0]}
}

// Children implements Rel.
func (j *Join) Children() []Rel { return []Rel{j.L, j.R} }

// WithChildren implements Rel.
func (j *Join) WithChildren(ch []Rel) Rel {
	return &Join{Kind: j.Kind, Cond: j.Cond, L: ch[0], R: ch[1]}
}

// Children implements Rel.
func (g *GroupBy) Children() []Rel { return []Rel{g.In} }

// WithChildren implements Rel.
func (g *GroupBy) WithChildren(ch []Rel) Rel {
	return &GroupBy{Keys: g.Keys, Aggs: g.Aggs, In: ch[0]}
}

// Children implements Rel.
func (u *UnionAll) Children() []Rel { return []Rel{u.L, u.R} }

// WithChildren implements Rel.
func (u *UnionAll) WithChildren(ch []Rel) Rel { return &UnionAll{L: ch[0], R: ch[1]} }

// Children implements Rel.
func (l *Limit) Children() []Rel { return []Rel{l.In} }

// WithChildren implements Rel.
func (l *Limit) WithChildren(ch []Rel) Rel { return &Limit{N: l.N, In: ch[0]} }

// Children implements Rel.
func (s *Sort) Children() []Rel { return []Rel{s.In} }

// WithChildren implements Rel.
func (s *Sort) WithChildren(ch []Rel) Rel { return &Sort{Keys: s.Keys, In: ch[0]} }

// Children implements Rel.
func (a *Apply) Children() []Rel { return []Rel{a.L, a.R} }

// WithChildren implements Rel.
func (a *Apply) WithChildren(ch []Rel) Rel {
	return &Apply{Kind: a.Kind, Binds: a.Binds, L: ch[0], R: ch[1]}
}

// Children implements Rel.
func (a *ApplyMerge) Children() []Rel { return []Rel{a.L, a.R} }

// WithChildren implements Rel.
func (a *ApplyMerge) WithChildren(ch []Rel) Rel {
	return &ApplyMerge{Assigns: a.Assigns, L: ch[0], R: ch[1]}
}

// Children implements Rel.
func (a *CondApplyMerge) Children() []Rel {
	ch := []Rel{a.In, a.Then}
	if a.Else != nil {
		ch = append(ch, a.Else)
	}
	return ch
}

// WithChildren implements Rel.
func (a *CondApplyMerge) WithChildren(ch []Rel) Rel {
	n := &CondApplyMerge{Pred: a.Pred, In: ch[0], Then: ch[1]}
	if len(ch) > 2 {
		n.Else = ch[2]
	}
	return n
}

// ---------------------------------------------------------------------------
// Describe
// ---------------------------------------------------------------------------

// Describe implements Rel.
func (s *Scan) Describe() string {
	if s.Alias != "" && s.Alias != s.Table {
		return "Scan(" + s.Table + " AS " + s.Alias + ")"
	}
	return "Scan(" + s.Table + ")"
}

// Describe implements Rel.
func (s *Single) Describe() string { return "Single" }

// Describe implements Rel.
func (s *Select) Describe() string { return "Select[" + s.Pred.String() + "]" }

// Describe implements Rel.
func (p *Project) Describe() string {
	parts := make([]string, len(p.Cols))
	for i, c := range p.Cols {
		parts[i] = c.E.String() + " AS " + c.As
	}
	name := "Project"
	if p.Dedup {
		name = "ProjectDistinct"
	}
	return name + "[" + strings.Join(parts, ", ") + "]"
}

// Describe implements Rel.
func (j *Join) Describe() string {
	s := "Join(" + j.Kind.String() + ")"
	if j.Cond != nil {
		s += "[" + j.Cond.String() + "]"
	}
	return s
}

// Describe implements Rel.
func (g *GroupBy) Describe() string {
	var keys []string
	for _, k := range g.Keys {
		keys = append(keys, k.String())
	}
	var aggs []string
	for _, a := range g.Aggs {
		aggs = append(aggs, a.String())
	}
	return "GroupBy[" + strings.Join(keys, ", ") + "][" + strings.Join(aggs, ", ") + "]"
}

// Describe implements Rel.
func (u *UnionAll) Describe() string { return "UnionAll" }

// Describe implements Rel.
func (l *Limit) Describe() string { return fmt.Sprintf("Limit(%d)", l.N) }

// Describe implements Rel.
func (s *Sort) Describe() string {
	parts := make([]string, len(s.Keys))
	for i, k := range s.Keys {
		parts[i] = k.E.String()
		if k.Desc {
			parts[i] += " DESC"
		}
	}
	return "Sort[" + strings.Join(parts, ", ") + "]"
}

// Describe implements Rel.
func (a *Apply) Describe() string {
	s := "Apply(" + a.Kind.String() + ")"
	if len(a.Binds) > 0 {
		parts := make([]string, len(a.Binds))
		for i, b := range a.Binds {
			parts[i] = b.Param + "=" + b.Arg.String()
		}
		s += "{bind: " + strings.Join(parts, ", ") + "}"
	}
	return s
}

// Describe implements Rel.
func (a *ApplyMerge) Describe() string {
	if len(a.Assigns) == 0 {
		return "ApplyMerge"
	}
	parts := make([]string, len(a.Assigns))
	for i, as := range a.Assigns {
		parts[i] = as.Target + "=" + as.Source
	}
	return "ApplyMerge{" + strings.Join(parts, ", ") + "}"
}

// Describe implements Rel.
func (a *CondApplyMerge) Describe() string {
	return "CondApplyMerge[" + a.Pred.String() + "]"
}

// Print renders the operator tree with indentation for debugging and
// golden tests.
func Print(r Rel) string {
	var b strings.Builder
	printRel(&b, r, 0)
	return b.String()
}

func printRel(b *strings.Builder, r Rel, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(r.Describe())
	b.WriteString("\n")
	for _, c := range r.Children() {
		printRel(b, c, depth+1)
	}
	// Also show relations nested inside scalar subqueries.
	for _, e := range nodeExprs(r) {
		VisitExpr(e, func(Expr) {}, func(sub Rel) {
			b.WriteString(strings.Repeat("  ", depth+1))
			b.WriteString("(subquery)\n")
			printRel(b, sub, depth+2)
		})
	}
}
