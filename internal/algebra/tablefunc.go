package algebra

import "strings"

// TableFunc is a table-valued UDF invocation in a FROM clause. The rewriter
// of Section VII-B replaces it with the algebraized body when possible;
// otherwise the engine materializes it through the interpreter.
type TableFunc struct {
	Name string
	Args []Expr
	// Cols is the declared result schema, qualified by the use-site alias.
	Cols []Column
}

// Schema implements Rel.
func (t *TableFunc) Schema() []Column { return t.Cols }

// Children implements Rel.
func (t *TableFunc) Children() []Rel { return nil }

// WithChildren implements Rel.
func (t *TableFunc) WithChildren(ch []Rel) Rel { return t }

// Describe implements Rel.
func (t *TableFunc) Describe() string {
	parts := make([]string, len(t.Args))
	for i, a := range t.Args {
		parts[i] = a.String()
	}
	return "TableFunc(" + t.Name + "(" + strings.Join(parts, ", ") + "))"
}
