// Package algebra defines the logical relational algebra used by the
// rewriter: standard operators (selection, projection, joins, grouping)
// plus the paper's extended Apply operators — Apply with the bind extension,
// Apply-Merge (AM) and Conditional Apply-Merge (AMC) — together with schema
// inference, free-variable (correlation) analysis, and deep tree rewriting.
package algebra

import (
	"fmt"
	"strings"

	"udfdecorr/internal/sqltypes"
)

// Expr is a scalar expression over columns of a relation and free
// parameters.
type Expr interface {
	fmt.Stringer
	exprNode()
}

// ColRef references a column, optionally qualified.
type ColRef struct {
	Qual string
	Name string
}

// ParamRef references a free parameter (a UDF formal parameter or a
// correlation variable not yet bound).
type ParamRef struct {
	Name string
}

// Const is a literal value.
type Const struct {
	Val sqltypes.Value
}

// Arith is a binary arithmetic expression.
type Arith struct {
	Op   sqltypes.ArithOp
	L, R Expr
}

// Cmp is a binary comparison.
type Cmp struct {
	Op   sqltypes.CmpOp
	L, R Expr
}

// LogicOp is AND or OR.
type LogicOp uint8

// Logical operators.
const (
	LogicAnd LogicOp = iota
	LogicOr
)

// String returns the SQL spelling.
func (op LogicOp) String() string {
	if op == LogicAnd {
		return "AND"
	}
	return "OR"
}

// Logic is a binary logical expression.
type Logic struct {
	Op   LogicOp
	L, R Expr
}

// Not is logical negation.
type Not struct {
	E Expr
}

// IsNull is e IS [NOT] NULL.
type IsNull struct {
	Neg bool
	E   Expr
}

// CaseWhen is one arm of a conditional expression.
type CaseWhen struct {
	Cond Expr
	Then Expr
}

// Case is the conditional expression (p1?e1 : p2?e2 : ... : en) of
// Section III; it renders as a SQL CASE.
type Case struct {
	Whens []CaseWhen
	Else  Expr // nil renders as NULL
}

// Call invokes a scalar function: a builtin, or a UDF invocation left
// un-algebraized (the paper leaves such calls as function invocations).
type Call struct {
	Name string
	Args []Expr
}

// Subquery is a scalar subquery: a relational expression expected to yield
// at most one row and one column.
type Subquery struct {
	Rel Rel
}

// Exists is [NOT] EXISTS over a relational expression.
type Exists struct {
	Neg bool
	Rel Rel
}

func (*ColRef) exprNode()   {}
func (*ParamRef) exprNode() {}
func (*Const) exprNode()    {}
func (*Arith) exprNode()    {}
func (*Cmp) exprNode()      {}
func (*Logic) exprNode()    {}
func (*Not) exprNode()      {}
func (*IsNull) exprNode()   {}
func (*Case) exprNode()     {}
func (*Call) exprNode()     {}
func (*Subquery) exprNode() {}
func (*Exists) exprNode()   {}

// String implements fmt.Stringer.
func (e *ColRef) String() string {
	if e.Qual != "" {
		return e.Qual + "." + e.Name
	}
	return e.Name
}

// String implements fmt.Stringer.
func (e *ParamRef) String() string { return ":" + e.Name }

// String implements fmt.Stringer.
func (e *Const) String() string { return e.Val.String() }

// String implements fmt.Stringer.
func (e *Arith) String() string {
	return "(" + e.L.String() + " " + e.Op.String() + " " + e.R.String() + ")"
}

// String implements fmt.Stringer.
func (e *Cmp) String() string {
	return "(" + e.L.String() + " " + e.Op.String() + " " + e.R.String() + ")"
}

// String implements fmt.Stringer.
func (e *Logic) String() string {
	return "(" + e.L.String() + " " + e.Op.String() + " " + e.R.String() + ")"
}

// String implements fmt.Stringer.
func (e *Not) String() string { return "(NOT " + e.E.String() + ")" }

// String implements fmt.Stringer.
func (e *IsNull) String() string {
	if e.Neg {
		return "(" + e.E.String() + " IS NOT NULL)"
	}
	return "(" + e.E.String() + " IS NULL)"
}

// String implements fmt.Stringer.
func (e *Case) String() string {
	var b strings.Builder
	b.WriteString("CASE")
	for _, w := range e.Whens {
		b.WriteString(" WHEN " + w.Cond.String() + " THEN " + w.Then.String())
	}
	if e.Else != nil {
		b.WriteString(" ELSE " + e.Else.String())
	}
	b.WriteString(" END")
	return b.String()
}

// String implements fmt.Stringer.
func (e *Call) String() string {
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = a.String()
	}
	return e.Name + "(" + strings.Join(parts, ", ") + ")"
}

// String implements fmt.Stringer.
func (e *Subquery) String() string { return "(subquery)" }

// String implements fmt.Stringer.
func (e *Exists) String() string {
	if e.Neg {
		return "NOT EXISTS(...)"
	}
	return "EXISTS(...)"
}

// NullConst is a reusable NULL literal (the paper's ⊥).
func NullConst() *Const { return &Const{Val: sqltypes.Null} }

// TrueConst is a reusable TRUE literal.
func TrueConst() *Const { return &Const{Val: sqltypes.NewBool(true)} }

// AndAll conjoins a list of predicates (nil for an empty list).
func AndAll(preds []Expr) Expr {
	var out Expr
	for _, p := range preds {
		if p == nil {
			continue
		}
		if out == nil {
			out = p
		} else {
			out = &Logic{Op: LogicAnd, L: out, R: p}
		}
	}
	return out
}

// SplitConjuncts flattens a conjunction into its conjuncts.
func SplitConjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if l, ok := e.(*Logic); ok && l.Op == LogicAnd {
		return append(SplitConjuncts(l.L), SplitConjuncts(l.R)...)
	}
	return []Expr{e}
}

// EqualExpr reports structural equality of two expressions. Subqueries
// compare by pointer identity of their relations.
func EqualExpr(a, b Expr) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	switch x := a.(type) {
	case *ColRef:
		y, ok := b.(*ColRef)
		return ok && x.Qual == y.Qual && x.Name == y.Name
	case *ParamRef:
		y, ok := b.(*ParamRef)
		return ok && x.Name == y.Name
	case *Const:
		y, ok := b.(*Const)
		if !ok {
			return false
		}
		if x.Val.IsNull() || y.Val.IsNull() {
			return x.Val.IsNull() && y.Val.IsNull()
		}
		return sqltypes.TotalCompare(x.Val, y.Val) == 0 && x.Val.Kind() == y.Val.Kind()
	case *Arith:
		y, ok := b.(*Arith)
		return ok && x.Op == y.Op && EqualExpr(x.L, y.L) && EqualExpr(x.R, y.R)
	case *Cmp:
		y, ok := b.(*Cmp)
		return ok && x.Op == y.Op && EqualExpr(x.L, y.L) && EqualExpr(x.R, y.R)
	case *Logic:
		y, ok := b.(*Logic)
		return ok && x.Op == y.Op && EqualExpr(x.L, y.L) && EqualExpr(x.R, y.R)
	case *Not:
		y, ok := b.(*Not)
		return ok && EqualExpr(x.E, y.E)
	case *IsNull:
		y, ok := b.(*IsNull)
		return ok && x.Neg == y.Neg && EqualExpr(x.E, y.E)
	case *Case:
		y, ok := b.(*Case)
		if !ok || len(x.Whens) != len(y.Whens) || !EqualExpr(x.Else, y.Else) {
			return false
		}
		for i := range x.Whens {
			if !EqualExpr(x.Whens[i].Cond, y.Whens[i].Cond) || !EqualExpr(x.Whens[i].Then, y.Whens[i].Then) {
				return false
			}
		}
		return true
	case *Call:
		y, ok := b.(*Call)
		if !ok || x.Name != y.Name || len(x.Args) != len(y.Args) {
			return false
		}
		for i := range x.Args {
			if !EqualExpr(x.Args[i], y.Args[i]) {
				return false
			}
		}
		return true
	case *Subquery:
		y, ok := b.(*Subquery)
		return ok && x.Rel == y.Rel
	case *Exists:
		y, ok := b.(*Exists)
		return ok && x.Neg == y.Neg && x.Rel == y.Rel
	}
	return false
}

// MapExpr rewrites an expression bottom-up: children are mapped first, then
// f is applied to the (possibly rebuilt) node. Relations nested in Subquery
// and Exists are rewritten with relF when non-nil.
func MapExpr(e Expr, f func(Expr) Expr, relF func(Rel) Rel) Expr {
	if e == nil {
		return nil
	}
	switch x := e.(type) {
	case *ColRef, *ParamRef, *Const:
		return f(e)
	case *Arith:
		return f(&Arith{Op: x.Op, L: MapExpr(x.L, f, relF), R: MapExpr(x.R, f, relF)})
	case *Cmp:
		return f(&Cmp{Op: x.Op, L: MapExpr(x.L, f, relF), R: MapExpr(x.R, f, relF)})
	case *Logic:
		return f(&Logic{Op: x.Op, L: MapExpr(x.L, f, relF), R: MapExpr(x.R, f, relF)})
	case *Not:
		return f(&Not{E: MapExpr(x.E, f, relF)})
	case *IsNull:
		return f(&IsNull{Neg: x.Neg, E: MapExpr(x.E, f, relF)})
	case *Case:
		n := &Case{Whens: make([]CaseWhen, len(x.Whens)), Else: MapExpr(x.Else, f, relF)}
		for i, w := range x.Whens {
			n.Whens[i] = CaseWhen{Cond: MapExpr(w.Cond, f, relF), Then: MapExpr(w.Then, f, relF)}
		}
		return f(n)
	case *Call:
		n := &Call{Name: x.Name, Args: make([]Expr, len(x.Args))}
		for i, a := range x.Args {
			n.Args[i] = MapExpr(a, f, relF)
		}
		return f(n)
	case *Subquery:
		rel := x.Rel
		if relF != nil {
			rel = relF(rel)
		}
		return f(&Subquery{Rel: rel})
	case *Exists:
		rel := x.Rel
		if relF != nil {
			rel = relF(rel)
		}
		return f(&Exists{Neg: x.Neg, Rel: rel})
	}
	return f(e)
}

// VisitExpr walks an expression tree top-down, calling f on every node and,
// via relV when non-nil, every nested relation.
func VisitExpr(e Expr, f func(Expr), relV func(Rel)) {
	if e == nil {
		return
	}
	f(e)
	switch x := e.(type) {
	case *Arith:
		VisitExpr(x.L, f, relV)
		VisitExpr(x.R, f, relV)
	case *Cmp:
		VisitExpr(x.L, f, relV)
		VisitExpr(x.R, f, relV)
	case *Logic:
		VisitExpr(x.L, f, relV)
		VisitExpr(x.R, f, relV)
	case *Not:
		VisitExpr(x.E, f, relV)
	case *IsNull:
		VisitExpr(x.E, f, relV)
	case *Case:
		for _, w := range x.Whens {
			VisitExpr(w.Cond, f, relV)
			VisitExpr(w.Then, f, relV)
		}
		VisitExpr(x.Else, f, relV)
	case *Call:
		for _, a := range x.Args {
			VisitExpr(a, f, relV)
		}
	case *Subquery:
		if relV != nil {
			relV(x.Rel)
		}
	case *Exists:
		if relV != nil {
			relV(x.Rel)
		}
	}
}
