package algebra

import (
	"strings"
	"testing"

	"udfdecorr/internal/sqltypes"
)

func TestMapExprsDeepReachesSubqueries(t *testing.T) {
	sub := &Select{Pred: &Cmp{Op: sqltypes.CmpEQ,
		L: &ColRef{Name: "x"}, R: &ParamRef{Name: "p"}}, In: scanOrders()}
	rel := &Project{Cols: []ProjCol{{E: &Subquery{Rel: sub}, As: "v"}}, In: &Single{}}
	got := MapExprsDeep(rel, func(e Expr) Expr {
		if pr, ok := e.(*ParamRef); ok && pr.Name == "p" {
			return &Const{Val: sqltypes.NewInt(42)}
		}
		return e
	})
	if HasFreeParams(got) {
		t.Errorf("param inside subquery should be replaced:\n%s", Print(got))
	}
	// Original untouched.
	if !HasFreeParams(rel) {
		t.Error("input tree mutated")
	}
}

func TestVisitCountsSubqueryNodes(t *testing.T) {
	sub := &Select{Pred: TrueConst(), In: scanOrders()}
	rel := &Project{Cols: []ProjCol{{E: &Exists{Rel: sub}, As: "v"}}, In: scanCustomer()}
	scans := Count(rel, func(n Rel) bool { _, ok := n.(*Scan); return ok })
	if scans != 2 {
		t.Errorf("Visit should reach subquery scans: %d", scans)
	}
}

func TestTypeOf(t *testing.T) {
	schema := []Column{
		{Name: "i", Type: sqltypes.KindInt},
		{Name: "f", Type: sqltypes.KindFloat},
		{Name: "s", Type: sqltypes.KindString},
	}
	cases := []struct {
		e    Expr
		want sqltypes.Kind
	}{
		{&ColRef{Name: "i"}, sqltypes.KindInt},
		{&ColRef{Name: "nosuch"}, sqltypes.KindNull},
		{&Const{Val: sqltypes.NewString("x")}, sqltypes.KindString},
		{&Arith{Op: sqltypes.OpAdd, L: &ColRef{Name: "i"}, R: &ColRef{Name: "i"}}, sqltypes.KindInt},
		{&Arith{Op: sqltypes.OpMul, L: &ColRef{Name: "i"}, R: &ColRef{Name: "f"}}, sqltypes.KindFloat},
		{&Cmp{Op: sqltypes.CmpLT, L: &ColRef{Name: "i"}, R: &ColRef{Name: "f"}}, sqltypes.KindBool},
		{&Not{E: TrueConst()}, sqltypes.KindBool},
		{&IsNull{E: &ColRef{Name: "s"}}, sqltypes.KindBool},
		{&Case{Whens: []CaseWhen{{Cond: TrueConst(), Then: &ColRef{Name: "s"}}}}, sqltypes.KindString},
		{&Call{Name: "upper", Args: []Expr{&ColRef{Name: "s"}}}, sqltypes.KindString},
		{&Call{Name: "length", Args: []Expr{&ColRef{Name: "s"}}}, sqltypes.KindInt},
	}
	for _, c := range cases {
		if got := TypeOf(c.e, schema); got != c.want {
			t.Errorf("TypeOf(%s) = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestExprStrings(t *testing.T) {
	exprs := map[Expr]string{
		&Arith{Op: sqltypes.OpAdd, L: &ColRef{Qual: "t", Name: "a"}, R: &Const{Val: sqltypes.NewInt(1)}}: "(t.a + 1)",
		&Logic{Op: LogicOr, L: TrueConst(), R: TrueConst()}:                                              "(TRUE OR TRUE)",
		&Not{E: TrueConst()}:                      "(NOT TRUE)",
		&IsNull{E: &ColRef{Name: "x"}, Neg: true}: "(x IS NOT NULL)",
		&ParamRef{Name: "p"}:                      ":p",
		&Call{Name: "coalesce", Args: []Expr{&ColRef{Name: "x"}, &Const{Val: sqltypes.NewInt(0)}}}: "coalesce(x, 0)",
	}
	for e, want := range exprs {
		if got := e.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
	c := &Case{Whens: []CaseWhen{{Cond: TrueConst(), Then: &Const{Val: sqltypes.NewInt(1)}}},
		Else: &Const{Val: sqltypes.NewInt(2)}}
	if !strings.Contains(c.String(), "WHEN TRUE THEN 1 ELSE 2") {
		t.Errorf("case string = %q", c.String())
	}
}

func TestDescribeStrings(t *testing.T) {
	nodes := []Rel{
		&Scan{Table: "t", Alias: "a"},
		&Single{},
		&Limit{N: 3, In: &Single{}},
		&Sort{Keys: []SortKey{{E: &ColRef{Name: "x"}, Desc: true}}, In: &Single{}},
		&UnionAll{L: &Single{}, R: &Single{}},
		&TableFunc{Name: "f", Args: []Expr{&Const{Val: sqltypes.NewInt(1)}}},
		&ApplyMerge{Assigns: []MergeAssign{{Target: "a", Source: "b"}}, L: &Single{}, R: &Single{}},
		&CondApplyMerge{Pred: TrueConst(), In: &Single{}, Then: &Single{}},
	}
	for _, n := range nodes {
		if n.Describe() == "" {
			t.Errorf("%T has empty Describe", n)
		}
	}
}

func TestWithChildrenRoundTrip(t *testing.T) {
	orders := scanOrders()
	nodes := []Rel{
		&Select{Pred: TrueConst(), In: orders},
		&Project{Cols: IdentityProjCols(orders.Schema()), In: orders},
		&Join{Kind: InnerJoin, L: orders, R: scanCustomer()},
		&GroupBy{Aggs: []AggCall{{Func: "count", As: "c"}}, In: orders},
		&UnionAll{L: orders, R: orders},
		&Limit{N: 1, In: orders},
		&Sort{In: orders},
		&Apply{Kind: CrossJoin, L: orders, R: orders},
		&ApplyMerge{L: orders, R: orders},
		&CondApplyMerge{Pred: TrueConst(), In: orders, Then: orders, Else: orders},
	}
	for _, n := range nodes {
		ch := n.Children()
		rebuilt := n.WithChildren(ch)
		if len(rebuilt.Children()) != len(ch) {
			t.Errorf("%T: WithChildren changed arity", n)
		}
		if len(rebuilt.Schema()) != len(n.Schema()) {
			t.Errorf("%T: WithChildren changed schema", n)
		}
	}
	// Leaves return themselves.
	if orders.WithChildren(nil) != Rel(orders) {
		t.Error("scan WithChildren should be identity")
	}
}

func TestCondApplyMergeOptionalElse(t *testing.T) {
	amc := &CondApplyMerge{Pred: TrueConst(), In: scanOrders(), Then: &Single{}}
	if len(amc.Children()) != 2 {
		t.Errorf("children without else = %d", len(amc.Children()))
	}
	withElse := &CondApplyMerge{Pred: TrueConst(), In: scanOrders(), Then: &Single{}, Else: &Single{}}
	if len(withElse.Children()) != 3 {
		t.Errorf("children with else = %d", len(withElse.Children()))
	}
	rebuilt := withElse.WithChildren(withElse.Children()).(*CondApplyMerge)
	if rebuilt.Else == nil {
		t.Error("else lost in WithChildren")
	}
}
