package algebra

// nodeExprs returns the scalar expressions attached directly to a node
// (not those of its children).
func nodeExprs(r Rel) []Expr {
	switch n := r.(type) {
	case *Select:
		return []Expr{n.Pred}
	case *Project:
		out := make([]Expr, len(n.Cols))
		for i, c := range n.Cols {
			out[i] = c.E
		}
		return out
	case *Join:
		if n.Cond != nil {
			return []Expr{n.Cond}
		}
	case *GroupBy:
		var out []Expr
		for _, k := range n.Keys {
			out = append(out, k)
		}
		for _, a := range n.Aggs {
			out = append(out, a.Args...)
		}
		return out
	case *Sort:
		out := make([]Expr, len(n.Keys))
		for i, k := range n.Keys {
			out[i] = k.E
		}
		return out
	case *Apply:
		out := make([]Expr, len(n.Binds))
		for i, b := range n.Binds {
			out[i] = b.Arg
		}
		return out
	case *CondApplyMerge:
		return []Expr{n.Pred}
	case *TableFunc:
		return n.Args
	}
	return nil
}

// mapNodeExprs returns a copy of the node with its own expressions rewritten
// by f (children untouched). f must not return nil for non-nil input.
func mapNodeExprs(r Rel, f func(Expr) Expr) Rel {
	switch n := r.(type) {
	case *Select:
		return &Select{Pred: f(n.Pred), In: n.In}
	case *Project:
		cols := make([]ProjCol, len(n.Cols))
		for i, c := range n.Cols {
			cols[i] = ProjCol{E: f(c.E), Qual: c.Qual, As: c.As}
		}
		return &Project{Cols: cols, Dedup: n.Dedup, In: n.In}
	case *Join:
		j := &Join{Kind: n.Kind, L: n.L, R: n.R}
		if n.Cond != nil {
			j.Cond = f(n.Cond)
		}
		return j
	case *GroupBy:
		keys := make([]*ColRef, len(n.Keys))
		for i, k := range n.Keys {
			nk := f(k)
			if cr, ok := nk.(*ColRef); ok {
				keys[i] = cr
			} else {
				keys[i] = k
			}
		}
		aggs := make([]AggCall, len(n.Aggs))
		for i, a := range n.Aggs {
			args := make([]Expr, len(a.Args))
			for j, arg := range a.Args {
				args[j] = f(arg)
			}
			aggs[i] = AggCall{Func: a.Func, Args: args, Distinct: a.Distinct, As: a.As}
		}
		return &GroupBy{Keys: keys, Aggs: aggs, In: n.In}
	case *Sort:
		keys := make([]SortKey, len(n.Keys))
		for i, k := range n.Keys {
			keys[i] = SortKey{E: f(k.E), Desc: k.Desc}
		}
		return &Sort{Keys: keys, In: n.In}
	case *Apply:
		binds := make([]Bind, len(n.Binds))
		for i, b := range n.Binds {
			binds[i] = Bind{Param: b.Param, Arg: f(b.Arg)}
		}
		return &Apply{Kind: n.Kind, Binds: binds, L: n.L, R: n.R}
	case *CondApplyMerge:
		return &CondApplyMerge{Pred: f(n.Pred), Then: n.Then, Else: n.Else, In: n.In}
	case *TableFunc:
		args := make([]Expr, len(n.Args))
		for i, a := range n.Args {
			args[i] = f(a)
		}
		return &TableFunc{Name: n.Name, Args: args, Cols: n.Cols}
	}
	return r
}

// Transform applies f bottom-up over the relational tree: children first,
// then f on the rebuilt node. Relations nested inside scalar subqueries are
// transformed too.
func Transform(r Rel, f func(Rel) Rel) Rel {
	ch := r.Children()
	if len(ch) > 0 {
		nch := make([]Rel, len(ch))
		changed := false
		for i, c := range ch {
			nch[i] = Transform(c, f)
			if nch[i] != c {
				changed = true
			}
		}
		if changed {
			r = r.WithChildren(nch)
		}
	}
	// Descend into subqueries in this node's expressions.
	r = mapNodeExprs(r, func(e Expr) Expr {
		return MapExpr(e, func(x Expr) Expr { return x }, func(sub Rel) Rel {
			return Transform(sub, f)
		})
	})
	return f(r)
}

// Visit walks the tree top-down (including subquery relations), calling f on
// every node.
func Visit(r Rel, f func(Rel)) {
	f(r)
	for _, c := range r.Children() {
		Visit(c, f)
	}
	for _, e := range nodeExprs(r) {
		VisitExpr(e, func(Expr) {}, func(sub Rel) { Visit(sub, f) })
	}
}

// MapExprsDeep rewrites every scalar expression in the tree (including
// inside subqueries) with f, bottom-up per expression.
func MapExprsDeep(r Rel, f func(Expr) Expr) Rel {
	return Transform(r, func(n Rel) Rel {
		return mapNodeExprs(n, func(e Expr) Expr {
			return MapExpr(e, f, nil) // subquery rels already transformed
		})
	})
}

// Count returns the number of nodes in the tree satisfying pred.
func Count(r Rel, pred func(Rel) bool) int {
	n := 0
	Visit(r, func(x Rel) {
		if pred(x) {
			n++
		}
	})
	return n
}

// HasApply reports whether any Apply-family operator remains in the tree.
func HasApply(r Rel) bool {
	return Count(r, func(x Rel) bool {
		switch x.(type) {
		case *Apply, *ApplyMerge, *CondApplyMerge:
			return true
		}
		return false
	}) > 0
}
