package algebra

import (
	"strings"
	"testing"

	"udfdecorr/internal/sqltypes"
)

func scanOrders() *Scan {
	return &Scan{Table: "orders", Alias: "orders", Cols: []Column{
		{Qual: "orders", Name: "orderkey", Type: sqltypes.KindInt},
		{Qual: "orders", Name: "custkey", Type: sqltypes.KindInt},
		{Qual: "orders", Name: "totalprice", Type: sqltypes.KindFloat},
	}}
}

func scanCustomer() *Scan {
	return &Scan{Table: "customer", Alias: "c", Cols: []Column{
		{Qual: "c", Name: "custkey", Type: sqltypes.KindInt},
		{Qual: "c", Name: "name", Type: sqltypes.KindString},
	}}
}

func TestSchemaInference(t *testing.T) {
	orders := scanOrders()
	sel := &Select{Pred: &Cmp{Op: sqltypes.CmpGT,
		L: &ColRef{Name: "totalprice"}, R: &Const{Val: sqltypes.NewInt(100)}}, In: orders}
	if len(sel.Schema()) != 3 {
		t.Fatalf("select schema = %v", sel.Schema())
	}
	proj := &Project{Cols: []ProjCol{
		{E: &ColRef{Name: "orderkey"}, As: "k"},
		{E: &Arith{Op: sqltypes.OpMul, L: &ColRef{Name: "totalprice"},
			R: &Const{Val: sqltypes.NewFloat(0.15)}}, As: "d"},
	}, In: sel}
	sc := proj.Schema()
	if sc[0].Name != "k" || sc[0].Type != sqltypes.KindInt {
		t.Errorf("proj col 0 = %+v", sc[0])
	}
	if sc[1].Name != "d" || sc[1].Type != sqltypes.KindFloat {
		t.Errorf("proj col 1 = %+v", sc[1])
	}
	gb := &GroupBy{
		Keys: []*ColRef{{Qual: "orders", Name: "custkey"}},
		Aggs: []AggCall{
			{Func: "sum", Args: []Expr{&ColRef{Name: "totalprice"}}, As: "total"},
			{Func: "count", As: "n"},
		},
		In: orders,
	}
	gsc := gb.Schema()
	if len(gsc) != 3 || gsc[1].Type != sqltypes.KindFloat || gsc[2].Type != sqltypes.KindInt {
		t.Errorf("group-by schema = %v", gsc)
	}
	j := &Join{Kind: SemiJoin, L: orders, R: scanCustomer()}
	if len(j.Schema()) != 3 {
		t.Errorf("semijoin schema should be left only: %v", j.Schema())
	}
	j2 := &Join{Kind: LeftOuterJoin, L: orders, R: scanCustomer()}
	if len(j2.Schema()) != 5 {
		t.Errorf("left outer join schema: %v", j2.Schema())
	}
}

func TestResolveRef(t *testing.T) {
	schema := scanOrders().Schema()
	if _, ok := ResolveRef(schema, "orders", "custkey"); !ok {
		t.Error("qualified resolve failed")
	}
	if _, ok := ResolveRef(schema, "", "custkey"); !ok {
		t.Error("unqualified resolve failed")
	}
	if _, ok := ResolveRef(schema, "lineitem", "custkey"); ok {
		t.Error("wrong qualifier should not resolve")
	}
	if _, ok := ResolveRef(schema, "", "nosuch"); ok {
		t.Error("missing column should not resolve")
	}
}

// Build the paper's correlated min-cost-supplier inner expression:
//
//	G_{min(supplycost) as c}(σ_{partkey = p1.partkey}(partsupp))
func corrInner() Rel {
	ps := &Scan{Table: "partsupp", Alias: "p2", Cols: []Column{
		{Qual: "p2", Name: "partkey", Type: sqltypes.KindInt},
		{Qual: "p2", Name: "supplycost", Type: sqltypes.KindFloat},
	}}
	sel := &Select{Pred: &Cmp{Op: sqltypes.CmpEQ,
		L: &ColRef{Qual: "p2", Name: "partkey"},
		R: &ColRef{Qual: "p1", Name: "partkey"}}, In: ps}
	return &GroupBy{Aggs: []AggCall{{Func: "min",
		Args: []Expr{&ColRef{Qual: "p2", Name: "supplycost"}}, As: "c"}}, In: sel}
}

func TestFreeRefsCorrelated(t *testing.T) {
	inner := corrInner()
	free := FreeRefs(inner)
	if len(free) != 1 {
		t.Fatalf("free refs = %v", free.Sorted())
	}
	want := Ref{Qual: "p1", Name: "partkey"}
	if !free[want] {
		t.Errorf("missing %v in %v", want, free.Sorted())
	}

	outer := &Scan{Table: "partsupp", Alias: "p1", Cols: []Column{
		{Qual: "p1", Name: "partkey", Type: sqltypes.KindInt},
		{Qual: "p1", Name: "supplycost", Type: sqltypes.KindFloat},
	}}
	if !UsesRefsOf(inner, outer.Schema()) {
		t.Error("inner should be correlated with outer")
	}
	apply := &Apply{Kind: CrossJoin, L: outer, R: inner}
	if got := FreeRefs(apply); len(got) != 0 {
		t.Errorf("apply should close the correlation: %v", got.Sorted())
	}
}

func TestFreeRefsParamsAndBind(t *testing.T) {
	orders := scanOrders()
	inner := &Select{Pred: &Cmp{Op: sqltypes.CmpEQ,
		L: &ColRef{Name: "custkey"}, R: &ParamRef{Name: "ckey"}}, In: orders}
	free := FreeRefs(inner)
	if !free[Ref{IsParam: true, Name: "ckey"}] {
		t.Fatalf("param ckey should be free: %v", free.Sorted())
	}
	if !HasFreeParams(inner) {
		t.Error("HasFreeParams")
	}
	cust := scanCustomer()
	apply := &Apply{Kind: CrossJoin,
		Binds: []Bind{{Param: "ckey", Arg: &ColRef{Qual: "c", Name: "custkey"}}},
		L:     cust, R: inner}
	if got := FreeRefs(apply); len(got) != 0 {
		t.Errorf("bind should close the param: %v", got.Sorted())
	}
}

func TestFreeRefsSubquery(t *testing.T) {
	// Project over Single computing a scalar subquery correlated to "x".
	sub := &Select{Pred: &Cmp{Op: sqltypes.CmpEQ,
		L: &ColRef{Name: "custkey"}, R: &ColRef{Qual: "t", Name: "x"}}, In: scanOrders()}
	proj := &Project{Cols: []ProjCol{{E: &Subquery{Rel: sub}, As: "v"}}, In: &Single{}}
	free := FreeRefs(proj)
	if !free[Ref{Qual: "t", Name: "x"}] {
		t.Errorf("subquery correlation should surface: %v", free.Sorted())
	}
}

func TestSubstituteParams(t *testing.T) {
	orders := scanOrders()
	inner := &Select{Pred: &Cmp{Op: sqltypes.CmpEQ,
		L: &ColRef{Name: "custkey"}, R: &ParamRef{Name: "ckey"}}, In: orders}
	got := SubstituteParams(inner, map[string]Expr{
		"ckey": &ColRef{Qual: "c", Name: "custkey"},
	})
	if HasFreeParams(got) {
		t.Error("params should be gone")
	}
	free := FreeRefs(got)
	if !free[Ref{Qual: "c", Name: "custkey"}] {
		t.Errorf("substituted column should now be free: %v", free.Sorted())
	}
	// Original must be untouched (persistent rewriting).
	if !HasFreeParams(inner) {
		t.Error("substitution must not mutate the input tree")
	}
}

func TestTransformBottomUp(t *testing.T) {
	orders := scanOrders()
	sel := &Select{Pred: TrueConst(), In: orders}
	proj := &Project{Cols: IdentityProjCols(sel.Schema()), In: sel}
	// Replace Select[TRUE] by its child.
	got := Transform(proj, func(n Rel) Rel {
		if s, ok := n.(*Select); ok {
			if c, ok := s.Pred.(*Const); ok && sqltypes.TriOf(c.Val) == sqltypes.True {
				return s.In
			}
		}
		return n
	})
	if Count(got, func(n Rel) bool { _, ok := n.(*Select); return ok }) != 0 {
		t.Errorf("select should be eliminated:\n%s", Print(got))
	}
	if len(got.Schema()) != 3 {
		t.Errorf("schema preserved")
	}
}

func TestRenameColumns(t *testing.T) {
	proj := &Project{Cols: []ProjCol{
		{E: &Const{Val: sqltypes.NewInt(0)}, As: "level"},
		{E: &ColRef{Name: "level"}, As: "retval"},
	}, In: &Single{}}
	got := RenameColumns(proj, map[string]string{"level": "level_1"}).(*Project)
	if got.Cols[0].As != "level_1" {
		t.Errorf("alias not renamed: %+v", got.Cols[0])
	}
	ref, ok := got.Cols[1].E.(*ColRef)
	if !ok || ref.Name != "level_1" {
		t.Errorf("ref not renamed: %+v", got.Cols[1].E)
	}
	if got.Cols[1].As != "retval" {
		t.Errorf("unrelated alias changed: %+v", got.Cols[1])
	}
}

func TestSplitAndAll(t *testing.T) {
	a := &Cmp{Op: sqltypes.CmpEQ, L: &ColRef{Name: "a"}, R: &Const{Val: sqltypes.NewInt(1)}}
	b := &Cmp{Op: sqltypes.CmpGT, L: &ColRef{Name: "b"}, R: &Const{Val: sqltypes.NewInt(2)}}
	c := &Cmp{Op: sqltypes.CmpLT, L: &ColRef{Name: "c"}, R: &Const{Val: sqltypes.NewInt(3)}}
	conj := AndAll([]Expr{a, b, c})
	parts := SplitConjuncts(conj)
	if len(parts) != 3 {
		t.Fatalf("conjuncts = %d", len(parts))
	}
	if !EqualExpr(parts[0], a) || !EqualExpr(parts[2], c) {
		t.Error("conjunct order/content")
	}
	if AndAll(nil) != nil {
		t.Error("empty AndAll should be nil")
	}
}

func TestEqualExpr(t *testing.T) {
	a := &Arith{Op: sqltypes.OpMul, L: &ColRef{Name: "x"}, R: &Const{Val: sqltypes.NewFloat(0.15)}}
	b := &Arith{Op: sqltypes.OpMul, L: &ColRef{Name: "x"}, R: &Const{Val: sqltypes.NewFloat(0.15)}}
	if !EqualExpr(a, b) {
		t.Error("structurally equal expressions")
	}
	c := &Arith{Op: sqltypes.OpMul, L: &ColRef{Name: "y"}, R: &Const{Val: sqltypes.NewFloat(0.15)}}
	if EqualExpr(a, c) {
		t.Error("different expressions compare equal")
	}
	if !EqualExpr(nil, nil) || EqualExpr(a, nil) {
		t.Error("nil handling")
	}
}

func TestPrintShowsApplyAndBind(t *testing.T) {
	cust := scanCustomer()
	inner := &Select{Pred: &Cmp{Op: sqltypes.CmpEQ,
		L: &ColRef{Name: "custkey"}, R: &ParamRef{Name: "ckey"}}, In: scanOrders()}
	apply := &Apply{Kind: LeftOuterJoin,
		Binds: []Bind{{Param: "ckey", Arg: &ColRef{Qual: "c", Name: "custkey"}}},
		L:     cust, R: inner}
	out := Print(apply)
	for _, want := range []string{"Apply(leftouter)", "bind: ckey=c.custkey", "Scan(customer AS c)", "Scan(orders)"} {
		if !strings.Contains(out, want) {
			t.Errorf("Print missing %q:\n%s", want, out)
		}
	}
}

func TestHasApply(t *testing.T) {
	if HasApply(scanOrders()) {
		t.Error("plain scan has no apply")
	}
	am := &ApplyMerge{L: &Single{}, R: &Single{}}
	if !HasApply(am) {
		t.Error("ApplyMerge is an apply")
	}
	amc := &CondApplyMerge{Pred: TrueConst(), In: &Single{}, Then: &Single{}}
	if !HasApply(amc) {
		t.Error("CondApplyMerge is an apply")
	}
}
