package algebra

import "udfdecorr/internal/sqltypes"

// ResolveRef finds the column a (qual, name) reference resolves to in a
// schema. Unqualified references match any qualifier; the first match wins
// (the algebrizer guarantees unambiguous references).
func ResolveRef(schema []Column, qual, name string) (Column, bool) {
	for _, c := range schema {
		if c.Matches(qual, name) {
			return c, true
		}
	}
	return Column{}, false
}

// HasRef reports whether the schema provides the referenced column.
func HasRef(schema []Column, qual, name string) bool {
	_, ok := ResolveRef(schema, qual, name)
	return ok
}

// TypeOf infers the static type of an expression against a schema. It is
// best effort: unknown types come back as KindNull (the engine is
// dynamically typed at runtime).
func TypeOf(e Expr, schema []Column) sqltypes.Kind {
	switch x := e.(type) {
	case *ColRef:
		if c, ok := ResolveRef(schema, x.Qual, x.Name); ok {
			return c.Type
		}
		return sqltypes.KindNull
	case *Const:
		return x.Val.Kind()
	case *Arith:
		lt, rt := TypeOf(x.L, schema), TypeOf(x.R, schema)
		if lt == sqltypes.KindFloat || rt == sqltypes.KindFloat {
			return sqltypes.KindFloat
		}
		if lt == sqltypes.KindInt && rt == sqltypes.KindInt {
			return sqltypes.KindInt
		}
		return sqltypes.KindNull
	case *Cmp, *Logic, *Not, *IsNull, *Exists:
		return sqltypes.KindBool
	case *Case:
		for _, w := range x.Whens {
			if t := TypeOf(w.Then, schema); t != sqltypes.KindNull {
				return t
			}
		}
		if x.Else != nil {
			return TypeOf(x.Else, schema)
		}
		return sqltypes.KindNull
	case *Subquery:
		cols := x.Rel.Schema()
		if len(cols) == 1 {
			return cols[0].Type
		}
		return sqltypes.KindNull
	case *Call:
		switch x.Name {
		case "abs", "length":
			return sqltypes.KindInt
		case "upper", "lower", "concat", "substr":
			return sqltypes.KindString
		}
		return sqltypes.KindNull
	}
	return sqltypes.KindNull
}

// ColRefsTo returns ColRef expressions for every column of a schema,
// preserving qualifiers.
func ColRefsTo(schema []Column) []Expr {
	out := make([]Expr, len(schema))
	for i, c := range schema {
		out[i] = &ColRef{Qual: c.Qual, Name: c.Name}
	}
	return out
}

// IdentityProjCols builds pass-through projection columns for a schema.
func IdentityProjCols(schema []Column) []ProjCol {
	out := make([]ProjCol, len(schema))
	for i, c := range schema {
		out[i] = ProjCol{E: &ColRef{Qual: c.Qual, Name: c.Name}, Qual: c.Qual, As: c.Name}
	}
	return out
}
