// Shard feasibility: the planner pass behind the sharded query tier. Given
// a normalized logical plan and a catalog whose tables declare shard keys
// (CREATE TABLE ... SHARD KEY (col); keyless tables are replicated to every
// shard), ClassifyShard decides how the router may execute the statement:
//
//   - single-shard: the statement reads no hash-partitioned data (every
//     table it touches — including through UDF bodies — is replicated), or
//     it pins the one sharded table it scans to a single partition with a
//     shard-key equality predicate. Route to one shard, relay verbatim.
//   - scatter-concat: a per-row pipeline (scan/filter/project/join/apply)
//     over exactly one sharded scan. Shard partitions are disjoint and
//     replicated tables are complete everywhere, so concatenating the
//     shard streams reproduces the single-node result multiset.
//   - scatter-merge: a projection over a GROUP BY of mergeable builtin
//     aggregates above a concat-safe input. Shards run the partial-
//     aggregate plan (engine.PreparePartialAgg) and the router merges
//     per-shard partials with exec.PartialMerge, then applies the original
//     projection order from the MergeSpec.
//   - rejected: everything whose distributed execution would be wrong —
//     the Reason names the unsupported shape and becomes the message of a
//     typed UNSHARDABLE wire error, because a wrong merged result is worse
//     than no result.
package plan

import (
	"fmt"
	"strings"

	"udfdecorr/internal/algebra"
	"udfdecorr/internal/ast"
	"udfdecorr/internal/catalog"
	"udfdecorr/internal/sqltypes"
)

// ShardKind classifies how a statement may execute across shards.
type ShardKind int

// Shard execution classes.
const (
	ShardRejected ShardKind = iota
	ShardSingle
	ShardScatterConcat
	ShardScatterMerge
)

// String names the class (for /stats and error messages).
func (k ShardKind) String() string {
	switch k {
	case ShardSingle:
		return "single-shard"
	case ShardScatterConcat:
		return "scatter-concat"
	case ShardScatterMerge:
		return "scatter-merge"
	default:
		return "rejected"
	}
}

// MergeAgg is one aggregate of a scatter-merge plan, in GROUP BY order.
type MergeAgg struct {
	Func string // lower-case builtin: sum, count, min, max, avg
	Star bool   // count(*)
}

// OutputCol maps one final output column to its merged source.
type OutputCol struct {
	IsAgg bool
	Index int // key ordinal, or agg ordinal when IsAgg
}

// MergeSpec tells the router's gather how to merge scatter-merge partials:
// shards return rows of NumKeys group-key cells followed by the partial
// cells of each agg (avg ships two: sum and count); after merging, the
// final row is assembled in Output order under the Cols names.
type MergeSpec struct {
	NumKeys int
	Aggs    []MergeAgg
	Output  []OutputCol
	Cols    []string
}

// ShardInfo is the classification result.
type ShardInfo struct {
	Kind ShardKind
	// Reason names the unsupported shape when Kind == ShardRejected.
	Reason string
	// Table is the sharded table a scatter reads (or a key-equality route
	// pins); empty when the statement touches only replicated tables.
	Table string
	// KeyValue is the shard-key equality constant of a pinned single-shard
	// route; nil for replicated-only statements (run anywhere).
	KeyValue *sqltypes.Value
	// Merge is set for ShardScatterMerge.
	Merge *MergeSpec
}

func rejected(format string, args ...any) ShardInfo {
	return ShardInfo{Kind: ShardRejected, Reason: fmt.Sprintf(format, args...)}
}

// ClassifyShard classifies a normalized logical plan for distributed
// execution. cat must be the catalog the plan was algebrized against, with
// ShardKey declarations on the partitioned tables.
func ClassifyShard(rel algebra.Rel, cat *catalog.Catalog) ShardInfo {
	sharded := shardedTables(cat)
	if len(sharded) == 0 {
		return ShardInfo{Kind: ShardSingle}
	}

	// Pass 1 — collect every read of a sharded table, by provenance:
	// top-level pipeline scans can scatter; reads buried in scalar
	// subqueries or UDF/TVF bodies execute per row against what must be a
	// complete table, so they pin the statement to rejection.
	c := &shardCollector{cat: cat, sharded: sharded, funcReads: map[string]map[string]bool{}}
	c.walkRel(rel, false)
	if c.err != "" {
		return rejected("%s", c.err)
	}
	for _, sub := range c.subScans {
		return rejected("subquery reads sharded table %s (per-row evaluation needs the whole table on one node)", sub)
	}

	switch len(c.scans) {
	case 0:
		// Replicated tables are complete on every shard: any single shard
		// answers exactly like a single node.
		return ShardInfo{Kind: ShardSingle}
	case 1:
		// fall through
	default:
		names := make([]string, len(c.scans))
		distinct := map[string]bool{}
		for i, s := range c.scans {
			names[i] = s.Table
			distinct[strings.ToLower(s.Table)] = true
		}
		if len(distinct) > 1 {
			return rejected("statement reads two sharded tables (%s): co-partitioned joins are not supported", strings.Join(names, ", "))
		}
		return rejected("sharded table %s is read twice (self-join over disjoint partitions)", names[0])
	}

	scan := c.scans[0]
	key := sharded[strings.ToLower(scan.Table)]

	// Shard-key equality directly over the scan pins every qualifying row
	// to hash(key): the whole statement — any shape — runs on that shard
	// against its complete partition plus fully replicated tables.
	if v, ok := keyEquality(rel, scan, key); ok {
		return ShardInfo{Kind: ShardSingle, Table: scan.Table, KeyValue: &v}
	}

	// Scatter-merge: projection over an all-mergeable GROUP BY.
	if proj, ok := rel.(*algebra.Project); ok && !proj.Dedup {
		if gb, ok := proj.In.(*algebra.GroupBy); ok {
			return classifyMerge(proj, gb, scan, sharded)
		}
	}

	// Scatter-concat: the spine holding the sharded scan must be per-row.
	if reason := concatSafe(rel, sharded); reason != "" {
		return rejected("%s", reason)
	}
	return ShardInfo{Kind: ShardScatterConcat, Table: scan.Table}
}

// shardedTables maps lower-cased table name -> shard key column.
func shardedTables(cat *catalog.Catalog) map[string]string {
	out := map[string]string{}
	for _, t := range cat.Tables() {
		if t.ShardKey != "" {
			out[strings.ToLower(t.Name)] = strings.ToLower(t.ShardKey)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Read collection (algebra + UDF bodies)
// ---------------------------------------------------------------------------

type shardCollector struct {
	cat     *catalog.Catalog
	sharded map[string]string
	// scans are top-level pipeline scans of sharded tables; subScans the
	// sharded tables read inside scalar subqueries.
	scans    []*algebra.Scan
	subScans []string
	// funcReads memoizes table reads per UDF (cycle-safe).
	funcReads map[string]map[string]bool
	err       string
}

func (c *shardCollector) walkRel(r algebra.Rel, inSub bool) {
	if c.err != "" {
		return
	}
	if s, ok := r.(*algebra.Scan); ok {
		if _, isSharded := c.sharded[strings.ToLower(s.Table)]; isSharded {
			if inSub {
				c.subScans = append(c.subScans, s.Table)
			} else {
				c.scans = append(c.scans, s)
			}
		}
	}
	if tf, ok := r.(*algebra.TableFunc); ok {
		c.checkFunc(tf.Name)
	}
	for _, ch := range r.Children() {
		c.walkRel(ch, inSub)
	}
	for _, e := range nodeShardExprs(r) {
		c.walkExpr(e)
	}
}

// nodeShardExprs mirrors the walk package's per-node expression list using
// only exported accessors.
func nodeShardExprs(r algebra.Rel) []algebra.Expr {
	switch n := r.(type) {
	case *algebra.Select:
		return []algebra.Expr{n.Pred}
	case *algebra.Project:
		out := make([]algebra.Expr, len(n.Cols))
		for i, cl := range n.Cols {
			out[i] = cl.E
		}
		return out
	case *algebra.Join:
		if n.Cond != nil {
			return []algebra.Expr{n.Cond}
		}
	case *algebra.GroupBy:
		var out []algebra.Expr
		for _, k := range n.Keys {
			out = append(out, k)
		}
		for _, a := range n.Aggs {
			out = append(out, a.Args...)
		}
		return out
	case *algebra.Sort:
		out := make([]algebra.Expr, len(n.Keys))
		for i, k := range n.Keys {
			out[i] = k.E
		}
		return out
	case *algebra.Apply:
		out := make([]algebra.Expr, len(n.Binds))
		for i, b := range n.Binds {
			out[i] = b.Arg
		}
		return out
	case *algebra.CondApplyMerge:
		return []algebra.Expr{n.Pred}
	case *algebra.TableFunc:
		return n.Args
	}
	return nil
}

func (c *shardCollector) walkExpr(e algebra.Expr) {
	algebra.VisitExpr(e, func(x algebra.Expr) {
		if call, ok := x.(*algebra.Call); ok {
			c.checkFunc(call.Name)
		}
	}, func(sub algebra.Rel) {
		c.walkRel(sub, true)
	})
}

// checkFunc rejects UDFs whose bodies (transitively) read sharded tables:
// the body executes per invocation against what must be the complete table.
func (c *shardCollector) checkFunc(name string) {
	if c.err != "" {
		return
	}
	if _, ok := c.cat.Function(name); !ok {
		return // builtin (abs, ...) — reads nothing
	}
	for t := range c.readsOf(name) {
		if _, isSharded := c.sharded[t]; isSharded {
			c.err = fmt.Sprintf("UDF %s reads sharded table %s (per-invocation body needs the whole table on one node)", name, t)
			return
		}
	}
}

// readsOf returns the lower-cased base tables a UDF's body reads,
// transitively through nested UDF calls. Cycles terminate via the memo's
// placeholder entry.
func (c *shardCollector) readsOf(name string) map[string]bool {
	key := strings.ToLower(name)
	if m, ok := c.funcReads[key]; ok {
		return m
	}
	m := map[string]bool{}
	c.funcReads[key] = m // placeholder breaks recursion cycles
	fn, ok := c.cat.Function(name)
	if !ok {
		return m
	}
	for _, st := range fn.Def.Body {
		c.stmtReads(st, m)
	}
	return m
}

func (c *shardCollector) stmtReads(st ast.Stmt, m map[string]bool) {
	switch s := st.(type) {
	case *ast.DeclareStmt:
		c.astExprReads(s.Init, m)
	case *ast.AssignStmt:
		c.astExprReads(s.Expr, m)
	case *ast.IfStmt:
		c.astExprReads(s.Cond, m)
		for _, t := range s.Then {
			c.stmtReads(t, m)
		}
		for _, t := range s.Else {
			c.stmtReads(t, m)
		}
	case *ast.ReturnStmt:
		c.astExprReads(s.Expr, m)
	case *ast.SelectIntoStmt:
		c.selectReads(s.Select, m)
	case *ast.DeclareCursorStmt:
		c.selectReads(s.Select, m)
	case *ast.WhileStmt:
		c.astExprReads(s.Cond, m)
		for _, t := range s.Body {
			c.stmtReads(t, m)
		}
	case *ast.InsertStmt:
		for _, e := range s.Values {
			c.astExprReads(e, m)
		}
	}
}

func (c *shardCollector) selectReads(sel *ast.SelectStmt, m map[string]bool) {
	if sel == nil {
		return
	}
	for _, ref := range sel.From {
		c.tableRefReads(ref, m)
	}
	c.astExprReads(sel.Top, m)
	for _, it := range sel.Items {
		c.astExprReads(it.Expr, m)
	}
	c.astExprReads(sel.Where, m)
	for _, g := range sel.GroupBy {
		c.astExprReads(g, m)
	}
	c.astExprReads(sel.Having, m)
	for _, o := range sel.OrderBy {
		c.astExprReads(o.Expr, m)
	}
}

func (c *shardCollector) tableRefReads(ref ast.TableRef, m map[string]bool) {
	switch t := ref.(type) {
	case *ast.TableName:
		if _, ok := c.cat.Table(t.Name); ok {
			m[strings.ToLower(t.Name)] = true
		}
		// Not in the catalog: a table variable of a TVF body — reads nothing.
	case *ast.JoinRef:
		c.tableRefReads(t.L, m)
		c.tableRefReads(t.R, m)
		c.astExprReads(t.On, m)
	case *ast.SubqueryRef:
		c.selectReads(t.Select, m)
	case *ast.FuncRef:
		for t2 := range c.readsOf(t.Name) {
			m[t2] = true
		}
		for _, a := range t.Args {
			c.astExprReads(a, m)
		}
	}
}

func (c *shardCollector) astExprReads(e ast.Expr, m map[string]bool) {
	switch x := e.(type) {
	case nil:
	case *ast.BinExpr:
		c.astExprReads(x.L, m)
		c.astExprReads(x.R, m)
	case *ast.UnaryExpr:
		c.astExprReads(x.E, m)
	case *ast.IsNullExpr:
		c.astExprReads(x.E, m)
	case *ast.CaseExpr:
		for _, w := range x.Whens {
			c.astExprReads(w.Cond, m)
			c.astExprReads(w.Then, m)
		}
		c.astExprReads(x.Else, m)
	case *ast.FuncCall:
		for t := range c.readsOf(x.Name) {
			m[t] = true
		}
		for _, a := range x.Args {
			c.astExprReads(a, m)
		}
	case *ast.SubqueryExpr:
		c.selectReads(x.Select, m)
	case *ast.ExistsExpr:
		c.selectReads(x.Select, m)
	case *ast.InExpr:
		c.astExprReads(x.E, m)
		c.selectReads(x.Select, m)
		for _, l := range x.List {
			c.astExprReads(l, m)
		}
	}
}

// ---------------------------------------------------------------------------
// Shape checks
// ---------------------------------------------------------------------------

// readsSharded reports whether any scan in the subtree (subqueries
// included) touches a sharded table. Subtrees that do not are computed
// entirely from replicated tables — identical on every shard — and are
// concat-safe regardless of shape.
func readsSharded(r algebra.Rel, sharded map[string]string) bool {
	found := false
	algebra.Visit(r, func(n algebra.Rel) {
		if s, ok := n.(*algebra.Scan); ok {
			if _, isSharded := sharded[strings.ToLower(s.Table)]; isSharded {
				found = true
			}
		}
	})
	return found
}

// concatSafe checks that the spine from the root to the sharded scan is a
// per-row pipeline; it returns the rejection reason, or "" when safe.
func concatSafe(r algebra.Rel, sharded map[string]string) string {
	if !readsSharded(r, sharded) {
		return ""
	}
	switch n := r.(type) {
	case *algebra.Scan:
		return ""
	case *algebra.Select:
		return concatSafe(n.In, sharded)
	case *algebra.Project:
		if n.Dedup {
			return "DISTINCT over a sharded scan needs a global duplicate-eliminating merge"
		}
		return concatSafe(n.In, sharded)
	case *algebra.Join:
		lSharded := readsSharded(n.L, sharded)
		switch n.Kind {
		case algebra.InnerJoin, algebra.CrossJoin:
			// Either side may be partitioned: partition ⋈ complete unions
			// back to complete ⋈ complete.
		case algebra.LeftOuterJoin, algebra.SemiJoin, algebra.AntiJoin:
			// The probe (left) side may be partitioned; a partitioned
			// lookup side would drop or duplicate preserved rows.
			if !lSharded {
				return fmt.Sprintf("%s join probes a partitioned inner side", n.Kind)
			}
		}
		if lSharded {
			return concatSafe(n.L, sharded)
		}
		return concatSafe(n.R, sharded)
	case *algebra.Apply:
		if !readsSharded(n.L, sharded) {
			return "correlated apply evaluates its outer side per row over a sharded subplan"
		}
		return concatSafe(n.L, sharded)
	case *algebra.ApplyMerge:
		if !readsSharded(n.L, sharded) {
			return "apply-merge evaluates a sharded subplan per outer row"
		}
		return concatSafe(n.L, sharded)
	case *algebra.CondApplyMerge:
		return concatSafe(n.In, sharded)
	case *algebra.GroupBy:
		return "aggregation over a sharded table below the plan root cannot be merged (only a root GROUP BY of mergeable aggregates scatters)"
	case *algebra.Sort:
		return "ORDER BY over a sharded table cannot be merged from concatenated shard streams"
	case *algebra.Limit:
		return "LIMIT/TOP without ORDER BY is nondeterministic across shards"
	case *algebra.UnionAll:
		return "UNION ALL mixing sharded and replicated branches would duplicate replicated rows per shard"
	default:
		return fmt.Sprintf("operator %s over a sharded table is not distributable", r.Describe())
	}
}

// classifyMerge validates the Project-over-GroupBy shape and builds the
// MergeSpec.
func classifyMerge(proj *algebra.Project, gb *algebra.GroupBy, scan *algebra.Scan, sharded map[string]string) ShardInfo {
	if reason := concatSafe(gb.In, sharded); reason != "" {
		return rejected("%s", reason)
	}
	spec := &MergeSpec{NumKeys: len(gb.Keys)}
	for _, a := range gb.Aggs {
		fn := strings.ToLower(a.Func)
		if a.Distinct {
			return rejected("DISTINCT aggregate %s cannot be merged across shards (a value may occur on several shards)", a.String())
		}
		switch fn {
		case "sum", "count", "min", "max", "avg":
			spec.Aggs = append(spec.Aggs, MergeAgg{Func: fn, Star: len(a.Args) == 0})
		default:
			return rejected("aggregate %s has no shard merge function", a.String())
		}
	}
	// Map the final projection onto the GROUP BY output: plain column
	// references only — an expression over merged aggregates would need a
	// post-merge evaluator the router does not have.
	gbSchema := gb.Schema()
	for _, pc := range proj.Cols {
		cr, ok := pc.E.(*algebra.ColRef)
		if !ok {
			return rejected("projection %s computes over aggregate results; only plain key/aggregate columns merge across shards", pc.E.String())
		}
		idx := -1
		for i, col := range gbSchema {
			if !strings.EqualFold(col.Name, cr.Name) {
				continue
			}
			if cr.Qual != "" && col.Qual != "" && !strings.EqualFold(col.Qual, cr.Qual) {
				continue
			}
			idx = i
			break
		}
		if idx < 0 {
			return rejected("projection column %s does not name a GROUP BY output", cr.String())
		}
		if idx < spec.NumKeys {
			spec.Output = append(spec.Output, OutputCol{Index: idx})
		} else {
			spec.Output = append(spec.Output, OutputCol{IsAgg: true, Index: idx - spec.NumKeys})
		}
	}
	for _, col := range proj.Schema() {
		spec.Cols = append(spec.Cols, col.Name)
	}
	return ShardInfo{Kind: ShardScatterMerge, Table: scan.Table, Merge: spec}
}

// ---------------------------------------------------------------------------
// Single-shard key pinning
// ---------------------------------------------------------------------------

// keyEquality looks for a `scanAlias.shardKey = const` conjunct in a Select
// chain directly above the sharded scan (where normalization pushes it).
// Such a predicate confines every qualifying row to hash(const)'s shard.
func keyEquality(rel algebra.Rel, scan *algebra.Scan, key string) (sqltypes.Value, bool) {
	var found *sqltypes.Value
	algebra.Visit(rel, func(n algebra.Rel) {
		sel, ok := n.(*algebra.Select)
		if !ok || found != nil {
			return
		}
		// The Select must sit on the scan (through more Selects only).
		in := sel.In
		for {
			if inner, ok := in.(*algebra.Select); ok {
				in = inner.In
				continue
			}
			break
		}
		if in != algebra.Rel(scan) {
			return
		}
		alias := scan.Alias
		if alias == "" {
			alias = scan.Table
		}
		for _, conj := range conjuncts(sel.Pred) {
			cmp, ok := conj.(*algebra.Cmp)
			if !ok || cmp.Op != sqltypes.CmpEQ {
				continue
			}
			if v, ok := keyEqSides(cmp.L, cmp.R, alias, key); ok {
				found = &v
				return
			}
			if v, ok := keyEqSides(cmp.R, cmp.L, alias, key); ok {
				found = &v
				return
			}
		}
	})
	if found == nil {
		return sqltypes.Value{}, false
	}
	return *found, true
}

func keyEqSides(colSide, constSide algebra.Expr, alias, key string) (sqltypes.Value, bool) {
	cr, ok := colSide.(*algebra.ColRef)
	if !ok || !strings.EqualFold(cr.Name, key) {
		return sqltypes.Value{}, false
	}
	if cr.Qual != "" && !strings.EqualFold(cr.Qual, alias) {
		return sqltypes.Value{}, false
	}
	c, ok := constSide.(*algebra.Const)
	if !ok {
		return sqltypes.Value{}, false
	}
	return c.Val, true
}

func conjuncts(e algebra.Expr) []algebra.Expr {
	if l, ok := e.(*algebra.Logic); ok && l.Op == algebra.LogicAnd {
		return append(conjuncts(l.L), conjuncts(l.R)...)
	}
	return []algebra.Expr{e}
}
