// Package plan translates logical algebra trees into physical exec plans.
// It performs the cost-based physical choices the paper relies on: index
// nested-loop join vs. hash join vs. plain nested loops (the plan switches
// observed in Experiment 2), index lookups for parameterized equality
// predicates inside UDF bodies, and correlated Apply execution for queries
// that could not be decorrelated.
package plan

import (
	"fmt"

	"udfdecorr/internal/algebra"
	"udfdecorr/internal/catalog"
	"udfdecorr/internal/exec"
	"udfdecorr/internal/sqltypes"
	"udfdecorr/internal/storage"
)

// Costs parameterizes the cost model. The two engine profiles (SYS1/SYS2)
// share these defaults; they are exported for ablation benchmarks.
type Costs struct {
	// SeqRow is the cost of streaming one row.
	SeqRow float64
	// ProbeCost is the cost of one hash-index probe.
	ProbeCost float64
	// HashBuildRow is the per-row cost of building a hash table.
	HashBuildRow float64
	// ApplyOverhead is the per-outer-row overhead of correlated execution.
	ApplyOverhead float64
}

// DefaultCosts returns the default cost model.
func DefaultCosts() Costs {
	return Costs{SeqRow: 1, ProbeCost: 4, HashBuildRow: 2, ApplyOverhead: 8}
}

// Planner builds physical plans.
//
// A Planner is safe for concurrent Build/BuildExplain calls: each call runs
// on a private fork carrying the per-build scratch state (the choice log and
// the correlation-parameter sequence), while the shared fields (catalog,
// store, interpreter, cost model, Vectorized) are read-only after
// construction. Do not mutate Cost or Vectorized while queries are in
// flight; the query service builds a fresh engine view per settings change
// instead.
type Planner struct {
	Cat    *catalog.Catalog
	Store  *storage.Store
	Interp *exec.Interp
	Cost   Costs
	// Vectorized selects the batch execution path for the hot operators
	// (scan, filter, project, limit, hash join, aggregation); row operators
	// bridge to batch children through adapters, so any plan shape remains
	// executable.
	Vectorized bool
	// Parallelism is the intra-query degree for top-level vectorized plans:
	// when > 1, pipeline segments become morsel-driven Exchange operators
	// and aggregations get per-worker partial states where the operators
	// support it (EXPLAIN notes each parallel operator). Embedded statements
	// and Apply subplans always plan serially — they execute once per UDF
	// invocation or outer row, where worker fan-out would only add overhead.
	Parallelism int

	// Per-build scratch state; only ever touched on a fork (see fork).
	// choices collects physical operator choices for EXPLAIN; corrSeq
	// numbers correlation parameters uniquely within one build (the Apply
	// operator scopes them in a fresh frame, so cross-plan reuse of the
	// same parameter name is harmless).
	choices []string
	corrSeq int
}

// New builds a planner.
func New(cat *catalog.Catalog, store *storage.Store, interp *exec.Interp) *Planner {
	return &Planner{Cat: cat, Store: store, Interp: interp, Cost: DefaultCosts()}
}

// fork returns a shallow copy with cleared per-build state, so concurrent
// builds on the same planner never share mutable fields.
func (p *Planner) fork() *Planner {
	cp := *p
	cp.choices = nil
	cp.corrSeq = 0
	return &cp
}

// Build compiles a logical tree into an executable plan, applying
// intra-query parallelism at the root when configured.
func (p *Planner) Build(rel algebra.Rel) (exec.Node, error) {
	f := p.fork()
	n, err := f.build(rel)
	if err != nil {
		return nil, err
	}
	n, _ = f.finalize(n)
	return n, nil
}

// BuildSerial compiles without the parallel rewrite (embedded statements
// inside UDF bodies, which run once per invocation).
func (p *Planner) BuildSerial(rel algebra.Rel) (exec.Node, error) {
	return p.fork().build(rel)
}

// BuildExplain compiles and also returns the physical choice log plus the
// plan's effective intra-query degree (1 when the plan stayed serial —
// including when parallelism was configured but no operator had a
// parallel-safe decomposition).
func (p *Planner) BuildExplain(rel algebra.Rel) (exec.Node, []string, int, error) {
	f := p.fork()
	n, err := f.build(rel)
	if err != nil {
		return nil, f.choices, 1, err
	}
	n, degree := f.finalize(n)
	return n, f.choices, degree, nil
}

// finalize applies the parallel rewrite to a built top-level plan, logs
// every parallel operator introduced for EXPLAIN, and reports the plan's
// effective degree.
func (p *Planner) finalize(n exec.Node) (exec.Node, int) {
	if !p.Vectorized || p.Parallelism <= 1 {
		return n, 1
	}
	pn, notes, ok := exec.Parallelize(n, p.Parallelism)
	if !ok {
		return n, 1
	}
	for _, note := range notes {
		p.note("%s", note)
	}
	return pn, p.Parallelism
}

func (p *Planner) note(format string, args ...any) {
	p.choices = append(p.choices, fmt.Sprintf(format, args...))
}

// ---------------------------------------------------------------------------
// CallResolver
// ---------------------------------------------------------------------------

// ResolveScalarCall implements exec.CallResolver: scalar UDF invocations go
// through the interpreter (the paper's iterative baseline).
func (p *Planner) ResolveScalarCall(name string, argc int) (func(ctx *exec.Ctx, args []sqltypes.Value) (sqltypes.Value, error), bool) {
	fn, ok := p.Cat.Function(name)
	if !ok || fn.IsTableValued() || len(fn.Def.Params) != argc {
		return nil, false
	}
	interp := p.Interp
	return func(ctx *exec.Ctx, args []sqltypes.Value) (sqltypes.Value, error) {
		if ctx.Interp != nil {
			return ctx.Interp.CallScalar(ctx, name, args)
		}
		if interp == nil {
			return sqltypes.Null, exec.Errorf("no interpreter for UDF %q", name)
		}
		return interp.CallScalar(ctx, name, args)
	}, true
}

// BuildSubplan implements exec.CallResolver: it decouples the subquery from
// its outer schema by rewriting outer column references into parameters and
// returns the bindings the evaluator must publish per row.
func (p *Planner) BuildSubplan(rel algebra.Rel, outer []algebra.Column) (exec.Node, []exec.CorrBinding, error) {
	sub, corr := p.substituteCorr(rel, outer)
	n, err := p.build(sub)
	if err != nil {
		return nil, nil, err
	}
	return n, corr, nil
}

// substituteCorr rewrites free column references of rel that resolve in the
// outer schema into parameter references, returning the rewritten tree and
// the bindings (parameter name -> outer column ordinal).
func (p *Planner) substituteCorr(rel algebra.Rel, outer []algebra.Column) (algebra.Rel, []exec.CorrBinding) {
	free := algebra.FreeRefs(rel)
	repl := map[algebra.Ref]string{}
	var corr []exec.CorrBinding
	for ref := range free {
		if ref.IsParam {
			continue
		}
		for i, c := range outer {
			if c.Matches(ref.Qual, ref.Name) {
				p.corrSeq++
				param := fmt.Sprintf("corr$%d$%s", p.corrSeq, ref.Name)
				repl[ref] = param
				corr = append(corr, exec.CorrBinding{Param: param, Col: i})
				break
			}
		}
	}
	if len(repl) == 0 {
		return rel, nil
	}
	out := algebra.MapExprsDeep(rel, func(e algebra.Expr) algebra.Expr {
		if c, ok := e.(*algebra.ColRef); ok {
			if param, ok := repl[algebra.Ref{Qual: c.Qual, Name: c.Name}]; ok {
				return &algebra.ParamRef{Name: param}
			}
		}
		return e
	})
	return out, corr
}

// ---------------------------------------------------------------------------
// Cardinality and cost estimation
// ---------------------------------------------------------------------------

// Estimate returns the estimated output row count of a logical tree.
func (p *Planner) Estimate(rel algebra.Rel) float64 { return p.estimate(rel) }

// CostOf returns a crude total cost estimate for executing a logical tree:
// the sum of estimated row counts flowing through every operator (a
// streaming-cost lower bound; joins add the product-free hash-join cost).
// The engine's cost-based mode uses it to arbitrate between the iterative
// and rewritten forms, mirroring "correlated evaluation remains as an
// alternative for the optimizer to consider".
func (p *Planner) CostOf(rel algebra.Rel) float64 {
	cost := p.estimate(rel)
	switch n := rel.(type) {
	case *algebra.Join:
		// Hash-join style: build the right side, stream the left.
		cost += p.CostOf(n.L) + p.Cost.HashBuildRow*p.CostOf(n.R)
	case *algebra.Apply:
		// Correlated evaluation: the inner side runs once per outer row.
		lRows := p.estimate(n.L)
		cost += p.CostOf(n.L) + lRows*(p.Cost.ApplyOverhead+p.CostOf(n.R))
	default:
		for _, c := range rel.Children() {
			cost += p.CostOf(c)
		}
	}
	return cost
}

func (p *Planner) estimate(rel algebra.Rel) float64 {
	switch n := rel.(type) {
	case *algebra.Scan:
		if t, ok := p.Store.Table(n.Table); ok {
			return float64(t.RowCount())
		}
		return 1000
	case *algebra.Single:
		return 1
	case *algebra.Select:
		return p.estimate(n.In) * p.selectivity(n.Pred, n.In)
	case *algebra.Project:
		in := p.estimate(n.In)
		if n.Dedup {
			return in * 0.8
		}
		return in
	case *algebra.Join:
		l, r := p.estimate(n.L), p.estimate(n.R)
		switch n.Kind {
		case algebra.SemiJoin:
			return l * 0.5
		case algebra.AntiJoin:
			return l * 0.5
		case algebra.LeftOuterJoin:
			est := p.joinEstimate(n, l, r)
			if est < l {
				est = l
			}
			return est
		case algebra.CrossJoin:
			if n.Cond == nil {
				return l * r
			}
			return p.joinEstimate(n, l, r)
		default:
			return p.joinEstimate(n, l, r)
		}
	case *algebra.GroupBy:
		in := p.estimate(n.In)
		if len(n.Keys) == 0 {
			return 1
		}
		est := in / 10
		if est < 1 {
			est = 1
		}
		return est
	case *algebra.UnionAll:
		return p.estimate(n.L) + p.estimate(n.R)
	case *algebra.Limit:
		in := p.estimate(n.In)
		if float64(n.N) < in {
			return float64(n.N)
		}
		return in
	case *algebra.Sort:
		return p.estimate(n.In)
	case *algebra.Apply:
		return p.estimate(n.L) * p.estimate(n.R)
	case *algebra.ApplyMerge:
		return p.estimate(n.L)
	case *algebra.CondApplyMerge:
		return p.estimate(n.In)
	case *algebra.TableFunc:
		return 100
	default:
		return 1000
	}
}

// selectivity estimates the fraction of rows passing a predicate.
func (p *Planner) selectivity(pred algebra.Expr, in algebra.Rel) float64 {
	sel := 1.0
	for _, c := range algebra.SplitConjuncts(pred) {
		sel *= p.conjunctSelectivity(c, in)
	}
	if sel < 1e-9 {
		sel = 1e-9
	}
	return sel
}

func (p *Planner) conjunctSelectivity(c algebra.Expr, in algebra.Rel) float64 {
	cmp, ok := c.(*algebra.Cmp)
	if !ok {
		return 0.5
	}
	op := cmp.Op
	col, colOK := cmp.L.(*algebra.ColRef)
	other := cmp.R
	if !colOK {
		col, colOK = cmp.R.(*algebra.ColRef)
		other = cmp.L
		// Normalize to "col OP literal" by mirroring the comparison.
		switch op {
		case sqltypes.CmpLT:
			op = sqltypes.CmpGT
		case sqltypes.CmpLE:
			op = sqltypes.CmpGE
		case sqltypes.CmpGT:
			op = sqltypes.CmpLT
		case sqltypes.CmpGE:
			op = sqltypes.CmpLE
		}
	}
	if !colOK {
		return 0.33
	}
	stats, n := p.columnStats(in, col)
	_ = n
	switch op {
	case sqltypes.CmpEQ:
		if stats != nil && stats.DistinctCount > 0 {
			return 1 / float64(stats.DistinctCount)
		}
		return 0.01
	case sqltypes.CmpNE:
		return 0.9
	default:
		// Range predicate: interpolate against min/max when the bound is a
		// literal (this mirrors histogram-based estimation and is what lets
		// the planner see that "custkey <= K" selects K/N of the table).
		lit, isLit := other.(*algebra.Const)
		if stats == nil || !isLit || stats.Min.IsNull() || stats.Max.IsNull() {
			return 0.33
		}
		lo, lok := stats.Min.AsFloat()
		hi, hok := stats.Max.AsFloat()
		v, vok := lit.Val.AsFloat()
		if !lok || !hok || !vok || hi <= lo {
			return 0.33
		}
		frac := (v - lo) / (hi - lo)
		if op == sqltypes.CmpGT || op == sqltypes.CmpGE {
			frac = 1 - frac
		}
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		return frac
	}
}

// columnStats locates storage statistics for a column referenced through a
// (possibly nested) logical tree, following simple pass-through operators.
func (p *Planner) columnStats(rel algebra.Rel, ref *algebra.ColRef) (*storage.ColStats, float64) {
	switch n := rel.(type) {
	case *algebra.Scan:
		if !algebra.HasRef(n.Cols, ref.Qual, ref.Name) {
			return nil, 0
		}
		t, ok := p.Store.Table(n.Table)
		if !ok {
			return nil, 0
		}
		st, err := t.Stats(ref.Name)
		if err != nil {
			return nil, 0
		}
		return &st, float64(t.RowCount())
	case *algebra.Select:
		return p.columnStats(n.In, ref)
	case *algebra.Join:
		// Resolve by qualifier first: an unqualified name (or an ambiguous
		// one) may exist on both sides, and a left-first probe would return
		// the wrong table's stats for a reference that names the right side.
		if ref.Qual != "" {
			inL := algebra.HasRef(n.L.Schema(), ref.Qual, ref.Name)
			inR := algebra.HasRef(n.R.Schema(), ref.Qual, ref.Name)
			switch {
			case inL && !inR:
				return p.columnStats(n.L, ref)
			case inR && !inL:
				return p.columnStats(n.R, ref)
			}
		}
		if st, c := p.columnStats(n.L, ref); st != nil {
			return st, c
		}
		return p.columnStats(n.R, ref)
	case *algebra.Project:
		// Follow the projection column whose output matches the reference; a
		// plain column rename passes the underlying stats through, anything
		// computed has none.
		for _, c := range n.Cols {
			if !(algebra.Column{Qual: c.Qual, Name: c.As}).Matches(ref.Qual, ref.Name) {
				continue
			}
			if cr, ok := c.E.(*algebra.ColRef); ok {
				return p.columnStats(n.In, cr)
			}
			return nil, 0
		}
		return nil, 0
	case *algebra.ApplyMerge:
		// The schema is the left child's; columns assigned by the merge take
		// values from the right side, so their base stats no longer apply.
		if applyMergeAssigns(n, ref) {
			return nil, 0
		}
		return p.columnStats(n.L, ref)
	case *algebra.Sort:
		return p.columnStats(n.In, ref)
	case *algebra.Limit:
		return p.columnStats(n.In, ref)
	}
	return nil, 0
}

// applyMergeAssigns reports whether the ApplyMerge overwrites the referenced
// column. An empty Assigns list assigns every attribute common to both
// children.
func applyMergeAssigns(n *algebra.ApplyMerge, ref *algebra.ColRef) bool {
	if len(n.Assigns) > 0 {
		for _, a := range n.Assigns {
			if a.Target == ref.Name {
				return true
			}
		}
		return false
	}
	return algebra.HasRef(n.R.Schema(), "", ref.Name)
}
