package plan

import (
	"strings"
	"testing"

	"udfdecorr/internal/algebra"
	"udfdecorr/internal/catalog"
	"udfdecorr/internal/exec"
	"udfdecorr/internal/sqltypes"
	"udfdecorr/internal/storage"
)

// testDB builds a planner over two tables: big (indexed key, 10000 rows)
// and small (100 rows).
func testDB(t *testing.T) (*Planner, *catalog.Catalog) {
	t.Helper()
	cat := catalog.New()
	store := storage.NewStore()
	mk := func(name string, rows int, indexed bool) {
		meta := &catalog.Table{Name: name, Cols: []catalog.Column{
			{Name: "k", Type: sqltypes.KindInt},
			{Name: "v", Type: sqltypes.KindInt},
		}}
		if indexed {
			meta.PKCols = []string{"k"}
		}
		if err := cat.AddTable(meta); err != nil {
			t.Fatal(err)
		}
		tab, err := store.CreateTable(meta)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < rows; i++ {
			tab.Append(storage.Row{sqltypes.NewInt(int64(i)), sqltypes.NewInt(int64(i * 2))})
		}
	}
	mk("big", 10000, true)
	mk("small", 100, false)
	interp := exec.NewInterp(cat, nil, true)
	return New(cat, store, interp), cat
}

func scanOf(cat *catalog.Catalog, name, alias string) *algebra.Scan {
	meta, _ := cat.Table(name)
	s := &algebra.Scan{Table: name, Alias: alias}
	for _, c := range meta.Cols {
		s.Cols = append(s.Cols, algebra.Column{Qual: alias, Name: c.Name, Type: c.Type})
	}
	return s
}

func TestIndexLookupSelection(t *testing.T) {
	p, cat := testDB(t)
	sel := &algebra.Select{
		Pred: &algebra.Cmp{Op: sqltypes.CmpEQ,
			L: &algebra.ColRef{Qual: "b", Name: "k"},
			R: &algebra.Const{Val: sqltypes.NewInt(7)}},
		In: scanOf(cat, "big", "b"),
	}
	node, choices, _, err := p.BuildExplain(sel)
	if err != nil {
		t.Fatal(err)
	}
	if len(choices) == 0 || !strings.Contains(choices[0], "IndexLookup(big.k)") {
		t.Errorf("expected index lookup, got %v", choices)
	}
	rows, err := exec.Drain(node, exec.NewCtx(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Errorf("rows = %d", len(rows))
	}
	if v, _ := rows[0][1].AsInt(); v != 14 {
		t.Errorf("v = %v", rows[0][1])
	}
}

func TestSelectionWithParamUsesIndex(t *testing.T) {
	p, cat := testDB(t)
	sel := &algebra.Select{
		Pred: &algebra.Cmp{Op: sqltypes.CmpEQ,
			L: &algebra.ColRef{Qual: "b", Name: "k"},
			R: &algebra.ParamRef{Name: "key"}},
		In: scanOf(cat, "big", "b"),
	}
	node, choices, _, err := p.BuildExplain(sel)
	if err != nil {
		t.Fatal(err)
	}
	if len(choices) == 0 || !strings.Contains(choices[0], "IndexLookup") {
		t.Fatalf("parameterized equality should probe the index: %v", choices)
	}
	ctx := exec.NewCtx(nil)
	ctx.Set("key", sqltypes.NewInt(42))
	rows, err := exec.Drain(node, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Errorf("rows = %d", len(rows))
	}
}

func TestJoinChoosesIndexNLJoin(t *testing.T) {
	p, cat := testDB(t)
	// small ⋈ big on k: the right side is large and indexed, the left tiny:
	// index nested loops should win.
	j := &algebra.Join{Kind: algebra.InnerJoin,
		Cond: &algebra.Cmp{Op: sqltypes.CmpEQ,
			L: &algebra.ColRef{Qual: "s", Name: "k"},
			R: &algebra.ColRef{Qual: "b", Name: "k"}},
		L: scanOf(cat, "small", "s"),
		R: scanOf(cat, "big", "b"),
	}
	node, choices, _, err := p.BuildExplain(j)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(choices, ";")
	if !strings.Contains(joined, "IndexNLJoin") {
		t.Errorf("expected index nested loops, got %v", choices)
	}
	rows, err := exec.Drain(node, exec.NewCtx(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 100 {
		t.Errorf("rows = %d", len(rows))
	}
}

func TestJoinChoosesHashJoinWithoutIndex(t *testing.T) {
	p, cat := testDB(t)
	// big ⋈ small on small's un-indexed side.
	j := &algebra.Join{Kind: algebra.InnerJoin,
		Cond: &algebra.Cmp{Op: sqltypes.CmpEQ,
			L: &algebra.ColRef{Qual: "b", Name: "k"},
			R: &algebra.ColRef{Qual: "s", Name: "k"}},
		L: scanOf(cat, "big", "b"),
		R: scanOf(cat, "small", "s"),
	}
	_, choices, _, err := p.BuildExplain(j)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(choices, ";")
	if !strings.Contains(joined, "HashJoin") {
		t.Errorf("expected hash join, got %v", choices)
	}
}

func TestJoinWithoutEquiUsesNLJoin(t *testing.T) {
	p, cat := testDB(t)
	j := &algebra.Join{Kind: algebra.InnerJoin,
		Cond: &algebra.Cmp{Op: sqltypes.CmpLT,
			L: &algebra.ColRef{Qual: "s", Name: "k"},
			R: &algebra.ColRef{Qual: "s2", Name: "k"}},
		L: scanOf(cat, "small", "s"),
		R: scanOf(cat, "small", "s2"),
	}
	_, choices, _, err := p.BuildExplain(j)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.Join(choices, ";"), "NLJoin") {
		t.Errorf("expected nested loops, got %v", choices)
	}
}

func TestRangeSelectivityEstimate(t *testing.T) {
	p, cat := testDB(t)
	// k <= 999 over big (keys 0..9999): expect roughly 10% estimate.
	sel := &algebra.Select{
		Pred: &algebra.Cmp{Op: sqltypes.CmpLE,
			L: &algebra.ColRef{Qual: "b", Name: "k"},
			R: &algebra.Const{Val: sqltypes.NewInt(999)}},
		In: scanOf(cat, "big", "b"),
	}
	est := p.Estimate(sel)
	if est < 500 || est > 2000 {
		t.Errorf("range estimate = %.0f, want ~1000", est)
	}
	// Reversed literal-first orientation must estimate the same way.
	rev := &algebra.Select{
		Pred: &algebra.Cmp{Op: sqltypes.CmpGE,
			L: &algebra.Const{Val: sqltypes.NewInt(999)},
			R: &algebra.ColRef{Qual: "b", Name: "k"}},
		In: scanOf(cat, "big", "b"),
	}
	estRev := p.Estimate(rev)
	if estRev < 500 || estRev > 2000 {
		t.Errorf("reversed range estimate = %.0f, want ~1000", estRev)
	}
}

func TestEqualityEstimateUsesDistinct(t *testing.T) {
	p, cat := testDB(t)
	sel := &algebra.Select{
		Pred: &algebra.Cmp{Op: sqltypes.CmpEQ,
			L: &algebra.ColRef{Qual: "b", Name: "k"},
			R: &algebra.Const{Val: sqltypes.NewInt(5)}},
		In: scanOf(cat, "big", "b"),
	}
	est := p.Estimate(sel)
	if est > 5 {
		t.Errorf("equality on unique key should estimate ~1 row, got %.1f", est)
	}
}

func TestApplyPlanExecutesCorrelated(t *testing.T) {
	p, cat := testDB(t)
	// small A× σ_{big.k = small.k}(big): correlated evaluation.
	inner := &algebra.Select{
		Pred: &algebra.Cmp{Op: sqltypes.CmpEQ,
			L: &algebra.ColRef{Qual: "b", Name: "k"},
			R: &algebra.ColRef{Qual: "s", Name: "k"}},
		In: scanOf(cat, "big", "b"),
	}
	a := &algebra.Apply{Kind: algebra.CrossJoin, L: scanOf(cat, "small", "s"), R: inner}
	node, err := p.Build(a)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := exec.Drain(node, exec.NewCtx(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 100 {
		t.Errorf("rows = %d", len(rows))
	}
}

func TestApplyMergeRejected(t *testing.T) {
	p, _ := testDB(t)
	am := &algebra.ApplyMerge{L: &algebra.Single{}, R: &algebra.Single{}}
	if _, err := p.Build(am); err == nil {
		t.Fatal("ApplyMerge must be rejected by the planner")
	}
}
