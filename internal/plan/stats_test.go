package plan

// Cardinality-estimation regression tests: columnStats must follow column
// references through Project (renames) and ApplyMerge (pass-through of
// unassigned columns), and must resolve qualified references to the correct
// join side — each of these used to silently drop to the 0.33/0.01 default
// selectivities and mis-cost index-vs-scan choices.

import (
	"testing"

	"udfdecorr/internal/algebra"
	"udfdecorr/internal/sqltypes"
)

func TestColumnStatsThroughProjectRename(t *testing.T) {
	p, cat := testDB(t)
	proj := &algebra.Project{
		Cols: []algebra.ProjCol{
			{E: &algebra.ColRef{Qual: "b", Name: "k"}, Qual: "", As: "key"},
			{E: &algebra.Arith{Op: sqltypes.OpAdd,
				L: &algebra.ColRef{Qual: "b", Name: "v"},
				R: &algebra.Const{Val: sqltypes.NewInt(1)}}, As: "vplus"},
		},
		In: scanOf(cat, "big", "b"),
	}

	st, n := p.columnStats(proj, &algebra.ColRef{Name: "key"})
	if st == nil {
		t.Fatal("stats lost above the projection rename")
	}
	if n != 10000 || st.DistinctCount != 10000 {
		t.Fatalf("renamed column: rows=%v distinct=%d, want 10000/10000", n, st.DistinctCount)
	}
	if mx, _ := st.Max.AsInt(); mx != 9999 {
		t.Fatalf("max = %v", st.Max)
	}

	// A computed column has no underlying storage stats.
	if st, _ := p.columnStats(proj, &algebra.ColRef{Name: "vplus"}); st != nil {
		t.Fatal("computed column must not inherit base-column stats")
	}
	// An unknown name resolves to nothing.
	if st, _ := p.columnStats(proj, &algebra.ColRef{Name: "nosuch"}); st != nil {
		t.Fatal("unknown column must not resolve")
	}
}

// TestProjectSelectivityPinned pins the end-to-end estimate: equality on a
// renamed unique column must use 1/distinct, not the 0.01 unknown-column
// default (a 100x cardinality error above every projection).
func TestProjectSelectivityPinned(t *testing.T) {
	p, cat := testDB(t)
	proj := &algebra.Project{
		Cols: []algebra.ProjCol{{E: &algebra.ColRef{Qual: "b", Name: "k"}, As: "key"}},
		In:   scanOf(cat, "big", "b"),
	}
	pred := &algebra.Cmp{Op: sqltypes.CmpEQ,
		L: &algebra.ColRef{Name: "key"},
		R: &algebra.Const{Val: sqltypes.NewInt(7)}}
	if got, want := p.selectivity(pred, proj), 1.0/10000; got != want {
		t.Fatalf("selectivity = %v, want %v", got, want)
	}
	// Range predicate interpolates against the renamed column's min/max.
	rng := &algebra.Cmp{Op: sqltypes.CmpLE,
		L: &algebra.ColRef{Name: "key"},
		R: &algebra.Const{Val: sqltypes.NewInt(999)}}
	got := p.selectivity(rng, proj)
	if got < 0.09 || got > 0.11 {
		t.Fatalf("range selectivity = %v, want ~0.1", got)
	}
}

// TestColumnStatsJoinQualifier: when both join sides expose the same column
// name, a qualified reference must resolve to its own side — the left
// subtree must not win by position.
func TestColumnStatsJoinQualifier(t *testing.T) {
	p, cat := testDB(t)
	j := &algebra.Join{Kind: algebra.InnerJoin,
		Cond: &algebra.Cmp{Op: sqltypes.CmpEQ,
			L: &algebra.ColRef{Qual: "b", Name: "k"},
			R: &algebra.ColRef{Qual: "s", Name: "k"}},
		L: scanOf(cat, "big", "b"),
		R: scanOf(cat, "small", "s"),
	}

	st, n := p.columnStats(j, &algebra.ColRef{Qual: "s", Name: "k"})
	if st == nil {
		t.Fatal("right-side stats not found")
	}
	if n != 100 || st.DistinctCount != 100 {
		t.Fatalf("s.k resolved to rows=%v distinct=%d (left side won?), want 100/100", n, st.DistinctCount)
	}
	st, n = p.columnStats(j, &algebra.ColRef{Qual: "b", Name: "k"})
	if st == nil || n != 10000 {
		t.Fatalf("b.k: st=%v rows=%v, want big's 10000", st, n)
	}
	// Unqualified stays positional (legacy behavior for unambiguous refs).
	if st, _ := p.columnStats(j, &algebra.ColRef{Name: "k"}); st == nil {
		t.Fatal("unqualified k should still resolve")
	}
}

func TestColumnStatsApplyMerge(t *testing.T) {
	p, cat := testDB(t)
	am := &algebra.ApplyMerge{
		Assigns: []algebra.MergeAssign{{Target: "v", Source: "vv"}},
		L:       scanOf(cat, "big", "b"),
		R:       scanOf(cat, "small", "s"),
	}
	// v is overwritten by the merge: its base stats no longer describe it.
	if st, _ := p.columnStats(am, &algebra.ColRef{Qual: "b", Name: "v"}); st != nil {
		t.Fatal("assigned column must not keep base stats")
	}
	// k passes through untouched.
	st, n := p.columnStats(am, &algebra.ColRef{Qual: "b", Name: "k"})
	if st == nil || n != 10000 {
		t.Fatalf("k through ApplyMerge: st=%v rows=%v", st, n)
	}

	// Empty Assigns means "assign all common attributes": every column of
	// the right schema is tainted.
	amAll := &algebra.ApplyMerge{L: scanOf(cat, "big", "b"), R: scanOf(cat, "small", "s")}
	if st, _ := p.columnStats(amAll, &algebra.ColRef{Qual: "b", Name: "k"}); st != nil {
		t.Fatal("common attribute under assign-all must not keep base stats")
	}
}
