package plan_test

import (
	"strings"
	"testing"

	"udfdecorr/internal/bench"
	"udfdecorr/internal/catalog"
	"udfdecorr/internal/core"
	"udfdecorr/internal/parser"
	"udfdecorr/internal/plan"
)

// shardCatalog builds the bench catalog with orders and lineitem sharded.
func shardCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	schema, err := bench.ShardedSchema()
	if err != nil {
		t.Fatal(err)
	}
	script, err := parser.ParseScript(schema + bench.UDFs + bench.ExtraUDFs)
	if err != nil {
		t.Fatal(err)
	}
	for _, ct := range script.Tables {
		if _, err := cat.AddTableFromAST(ct); err != nil {
			t.Fatal(err)
		}
	}
	for _, cf := range script.Functions {
		if _, err := cat.AddFunction(cf); err != nil {
			t.Fatal(err)
		}
	}
	return cat
}

func classify(t *testing.T, cat *catalog.Catalog, sql string) plan.ShardInfo {
	t.Helper()
	sel, err := parser.ParseQuery(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	rel, err := core.NewAlgebrizer(cat).Query(sel)
	if err != nil {
		t.Fatalf("algebrize %q: %v", sql, err)
	}
	rel = core.Normalize(cat, rel)
	return plan.ClassifyShard(rel, cat)
}

// TestClassifyCorpus pins the expected route class of every corpus query
// under the bench sharding (orders by custkey, lineitem by partkey).
func TestClassifyCorpus(t *testing.T) {
	cat := shardCatalog(t)
	for _, q := range bench.Corpus {
		wantKind, ok := bench.ShardClass[q.Name]
		if !ok {
			t.Errorf("corpus query %q has no expected shard class in bench.ShardClass; add one", q.Name)
			continue
		}
		info := classify(t, cat, q.SQL)
		if info.Kind.String() != wantKind {
			t.Errorf("%s: classified %s, want %s (reason: %s)", q.Name, info.Kind, wantKind, info.Reason)
		}
		if info.Kind == plan.ShardRejected && info.Reason == "" {
			t.Errorf("%s: rejected without a reason", q.Name)
		}
	}
}

func TestClassifyShapes(t *testing.T) {
	cat := shardCatalog(t)
	cases := []struct {
		name, sql  string
		want       plan.ShardKind
		wantReason string // substring of the rejection reason
	}{
		{"pinned point query", "select orderkey, totalprice from orders where custkey = 7", plan.ShardSingle, ""},
		{"pinned with extra conjunct", "select orderkey from orders where custkey = 7 and totalprice > 10", plan.ShardSingle, ""},
		{"range over shard key scatters", "select orderkey from orders where custkey < 7", plan.ShardScatterConcat, ""},
		{"replicated join to sharded probe", "select o.orderkey, c.name from orders o join customer c on o.custkey = c.custkey", plan.ShardScatterConcat, ""},
		{"grouped avg", "select custkey, avg(totalprice) from orders group by custkey", plan.ShardScatterMerge, ""},
		{"scalar avg and count", "select avg(totalprice), count(*), count(totalprice) from orders", plan.ShardScatterMerge, ""},
		{"distinct aggregate", "select count(distinct custkey) from orders", plan.ShardRejected, "DISTINCT aggregate"},
		{"top without order", "select top 5 orderkey from orders", plan.ShardRejected, "LIMIT/TOP without ORDER BY"},
		{"order by over shards", "select orderkey from orders order by totalprice", plan.ShardRejected, "ORDER BY"},
		{"distinct projection", "select distinct custkey from orders", plan.ShardRejected, ""},
		{"two sharded tables", "select o.orderkey from orders o join lineitem l on o.orderkey = l.partkey", plan.ShardRejected, "two sharded tables"},
		{"sharded subquery", "select c.custkey from customer c where c.custkey = (select min(custkey) from orders)", plan.ShardRejected, "subquery reads sharded table"},
		{"replicated only", "select custkey, name from customer where custkey <= 10", plan.ShardSingle, ""},
		{"having rejected", "select custkey, count(*) from orders group by custkey having count(*) > 1", plan.ShardRejected, ""},
	}
	for _, tc := range cases {
		info := classify(t, cat, tc.sql)
		if info.Kind != tc.want {
			t.Errorf("%s: classified %s, want %s (reason: %q)", tc.name, info.Kind, tc.want, info.Reason)
			continue
		}
		if tc.wantReason != "" && !strings.Contains(info.Reason, tc.wantReason) {
			t.Errorf("%s: reason %q does not mention %q", tc.name, info.Reason, tc.wantReason)
		}
	}
}

// TestClassifyPinnedKeyValue checks the pinned route exposes the key value
// (the router hashes it to pick the shard).
func TestClassifyPinnedKeyValue(t *testing.T) {
	cat := shardCatalog(t)
	info := classify(t, cat, "select orderkey from orders where custkey = 42")
	if info.Kind != plan.ShardSingle || info.KeyValue == nil {
		t.Fatalf("want pinned single-shard with key value, got %s (key %v)", info.Kind, info.KeyValue)
	}
	if got, _ := info.KeyValue.AsInt(); got != 42 {
		t.Fatalf("pinned key = %v, want 42", info.KeyValue)
	}
	if info.Table != "orders" {
		t.Fatalf("pinned table = %q, want orders", info.Table)
	}
}

// TestMergeSpecLayout pins the gather contract: keys first, then one
// partial column per aggregate with avg contributing two, and Output
// mapping back to the query's projection order.
func TestMergeSpecLayout(t *testing.T) {
	cat := shardCatalog(t)
	info := classify(t, cat, "select custkey, avg(totalprice), count(*) from orders group by custkey")
	if info.Kind != plan.ShardScatterMerge {
		t.Fatalf("classified %s (%s), want scatter-merge", info.Kind, info.Reason)
	}
	spec := info.Merge
	if spec.NumKeys != 1 {
		t.Fatalf("NumKeys = %d, want 1", spec.NumKeys)
	}
	if len(spec.Aggs) != 2 || spec.Aggs[0].Func != "avg" || spec.Aggs[1].Func != "count" || !spec.Aggs[1].Star {
		t.Fatalf("Aggs = %+v, want [avg count(*)]", spec.Aggs)
	}
	if len(spec.Output) != 3 || spec.Output[0].IsAgg || spec.Output[1].Index != 0 || !spec.Output[2].IsAgg {
		t.Fatalf("Output = %+v, want [key0 agg0 agg1]", spec.Output)
	}
	if len(spec.Cols) != 3 {
		t.Fatalf("Cols = %v, want 3 names", spec.Cols)
	}
}
