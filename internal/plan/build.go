package plan

import (
	"fmt"

	"udfdecorr/internal/algebra"
	"udfdecorr/internal/exec"
	"udfdecorr/internal/sqltypes"
)

// joinEstimate estimates inner-join cardinality: product scaled by the
// larger distinct count of the equi keys (the textbook formula).
func (p *Planner) joinEstimate(j *algebra.Join, l, r float64) float64 {
	equi, _ := splitEqui(j.Cond, j.L.Schema(), j.R.Schema())
	if len(equi) == 0 {
		if j.Cond == nil {
			return l * r
		}
		return l * r * 0.1
	}
	d := 10.0
	if st, _ := p.columnStats(j.L, equi[0].l); st != nil && st.DistinctCount > 0 {
		d = float64(st.DistinctCount)
	}
	if st, _ := p.columnStats(j.R, equi[0].r); st != nil && float64(st.DistinctCount) > d {
		d = float64(st.DistinctCount)
	}
	est := l * r / d
	if est < 1 {
		est = 1
	}
	return est
}

// equiPair is one equi-join conjunct col_L = col_R.
type equiPair struct {
	l, r *algebra.ColRef
}

// splitEqui separates a join condition into equi pairs (left col = right
// col) and a residual predicate.
func splitEqui(cond algebra.Expr, lSchema, rSchema []algebra.Column) ([]equiPair, algebra.Expr) {
	var pairs []equiPair
	var residual []algebra.Expr
	for _, c := range algebra.SplitConjuncts(cond) {
		cmp, ok := c.(*algebra.Cmp)
		if ok && cmp.Op == sqltypes.CmpEQ {
			lc, lok := cmp.L.(*algebra.ColRef)
			rc, rok := cmp.R.(*algebra.ColRef)
			if lok && rok {
				switch {
				case algebra.HasRef(lSchema, lc.Qual, lc.Name) && algebra.HasRef(rSchema, rc.Qual, rc.Name):
					pairs = append(pairs, equiPair{l: lc, r: rc})
					continue
				case algebra.HasRef(lSchema, rc.Qual, rc.Name) && algebra.HasRef(rSchema, lc.Qual, lc.Name):
					pairs = append(pairs, equiPair{l: rc, r: lc})
					continue
				}
			}
		}
		residual = append(residual, c)
	}
	return pairs, algebra.AndAll(residual)
}

func (p *Planner) build(rel algebra.Rel) (exec.Node, error) {
	switch n := rel.(type) {
	case *algebra.Scan:
		return p.buildScan(n)

	case *algebra.Single:
		return &exec.Single{}, nil

	case *algebra.Select:
		return p.buildSelect(n)

	case *algebra.Project:
		child, err := p.build(n.In)
		if err != nil {
			return nil, err
		}
		exprs := make([]algebra.Expr, len(n.Cols))
		for i, c := range n.Cols {
			exprs[i] = c.E
		}
		if p.Vectorized {
			evals, err := exec.CompileVecAll(exprs, child.Schema(), p)
			if err != nil {
				return nil, err
			}
			return exec.NewBatchProject(evals, n.Dedup, child, n.Schema()), nil
		}
		evals, err := exec.CompileAll(exprs, child.Schema(), p)
		if err != nil {
			return nil, err
		}
		return exec.NewProject(evals, n.Dedup, child, n.Schema()), nil

	case *algebra.Join:
		return p.buildJoin(n)

	case *algebra.GroupBy:
		return p.buildGroupBy(n)

	case *algebra.UnionAll:
		l, err := p.build(n.L)
		if err != nil {
			return nil, err
		}
		r, err := p.build(n.R)
		if err != nil {
			return nil, err
		}
		return &exec.UnionAll{L: l, R: r}, nil

	case *algebra.Limit:
		child, err := p.build(n.In)
		if err != nil {
			return nil, err
		}
		if p.Vectorized {
			return &exec.BatchLimit{N: n.N, Child: child}, nil
		}
		return &exec.Limit{N: n.N, Child: child}, nil

	case *algebra.Sort:
		child, err := p.build(n.In)
		if err != nil {
			return nil, err
		}
		keys := make([]exec.SortSpec, len(n.Keys))
		for i, k := range n.Keys {
			ev, err := exec.Compile(k.E, child.Schema(), p)
			if err != nil {
				return nil, err
			}
			keys[i] = exec.SortSpec{Key: ev, Desc: k.Desc}
		}
		return &exec.Sort{Keys: keys, Child: child}, nil

	case *algebra.Apply:
		return p.buildApply(n)

	case *algebra.TableFunc:
		args := make([]exec.Evaluator, len(n.Args))
		for i, a := range n.Args {
			ev, err := exec.Compile(a, nil, p)
			if err != nil {
				return nil, err
			}
			args[i] = ev
		}
		return exec.NewFuncTable(n.Name, args, n.Cols), nil

	case *algebra.ApplyMerge, *algebra.CondApplyMerge:
		return nil, fmt.Errorf("plan: %s must be removed by the rewriter before execution", rel.Describe())
	}
	return nil, fmt.Errorf("plan: unsupported logical operator %T", rel)
}

func (p *Planner) buildScan(n *algebra.Scan) (exec.Node, error) {
	t, ok := p.Store.Table(n.Table)
	if !ok {
		return nil, fmt.Errorf("plan: no storage for table %q", n.Table)
	}
	if p.Vectorized {
		return exec.NewBatchScan(t, n.Cols), nil
	}
	return exec.NewTableScan(t, n.Cols), nil
}

// buildSelect plans a selection, preferring an index equality probe when
// the input is a base table with an indexed column compared to a
// row-independent expression (constant or parameter) — the access path that
// makes iterative UDF invocation viable at all.
func (p *Planner) buildSelect(n *algebra.Select) (exec.Node, error) {
	if scan, ok := n.In.(*algebra.Scan); ok {
		t, tok := p.Store.Table(scan.Table)
		if tok {
			conjuncts := algebra.SplitConjuncts(n.Pred)
			for i, c := range conjuncts {
				cmp, ok := c.(*algebra.Cmp)
				if !ok || cmp.Op != sqltypes.CmpEQ {
					continue
				}
				col, key := matchIndexablePair(cmp, scan.Cols)
				if col == nil || !t.HasIndexableCol(col.Name) {
					continue
				}
				keyEval, err := exec.Compile(key, nil, p)
				if err != nil {
					continue // key references columns; not a probe
				}
				p.note("IndexLookup(%s.%s)", scan.Table, col.Name)
				var node exec.Node = exec.NewIndexLookup(t, col.Name, keyEval, scan.Cols)
				rest := append(append([]algebra.Expr{}, conjuncts[:i]...), conjuncts[i+1:]...)
				if residual := algebra.AndAll(rest); residual != nil {
					ev, err := exec.Compile(residual, scan.Cols, p)
					if err != nil {
						return nil, err
					}
					node = &exec.Filter{Pred: ev, Child: node}
				}
				return node, nil
			}
		}
	}
	child, err := p.build(n.In)
	if err != nil {
		return nil, err
	}
	if p.Vectorized {
		ev, err := exec.CompilePred(n.Pred, child.Schema(), p)
		if err != nil {
			return nil, err
		}
		return &exec.BatchFilter{Pred: ev, Child: child}, nil
	}
	ev, err := exec.Compile(n.Pred, child.Schema(), p)
	if err != nil {
		return nil, err
	}
	return &exec.Filter{Pred: ev, Child: child}, nil
}

// matchIndexablePair returns (column of the scan, key expression) when the
// comparison is col = key with key independent of the scanned row.
func matchIndexablePair(cmp *algebra.Cmp, scanCols []algebra.Column) (*algebra.Column, algebra.Expr) {
	try := func(colE, keyE algebra.Expr) (*algebra.Column, algebra.Expr) {
		ref, ok := colE.(*algebra.ColRef)
		if !ok {
			return nil, nil
		}
		c, ok := algebra.ResolveRef(scanCols, ref.Qual, ref.Name)
		if !ok {
			return nil, nil
		}
		if algebra.ExprUsesRefsOf(keyE, scanCols) {
			return nil, nil
		}
		return &c, keyE
	}
	if c, k := try(cmp.L, cmp.R); c != nil {
		return c, k
	}
	return try(cmp.R, cmp.L)
}

// buildJoin chooses among index nested-loop join (as a correlated Apply over
// an index probe), hash join, and plain nested loops by estimated cost.
func (p *Planner) buildJoin(n *algebra.Join) (exec.Node, error) {
	lRows, rRows := p.estimate(n.L), p.estimate(n.R)
	equi, residual := splitEqui(n.Cond, n.L.Schema(), n.R.Schema())

	costNL := lRows * rRows
	costHash := lRows + p.Cost.HashBuildRow*rRows
	idxCol, idxTab, idxOK := p.indexableRight(n, equi)
	costIdx := lRows * p.Cost.ProbeCost
	if !idxOK {
		costIdx = costNL + costHash + 1 // never chosen
	}
	if len(equi) == 0 {
		costHash = costNL + 1
	}

	switch {
	case idxOK && costIdx <= costHash && costIdx <= costNL:
		p.note("IndexNLJoin(%s.%s) [l=%.0f r=%.0f]", idxTab, idxCol, lRows, rRows)
		return p.buildIndexJoin(n, equi, residual)
	case len(equi) > 0 && costHash <= costNL:
		p.note("HashJoin(%s) [l=%.0f r=%.0f]", n.Kind, lRows, rRows)
		return p.buildHashJoin(n, equi, residual)
	default:
		p.note("NLJoin(%s) [l=%.0f r=%.0f]", n.Kind, lRows, rRows)
		return p.buildNLJoin(n)
	}
}

// indexableRight reports whether the join's right side is a base-table scan
// (possibly under a selection) with an index on the right equi column.
func (p *Planner) indexableRight(n *algebra.Join, equi []equiPair) (string, string, bool) {
	if len(equi) == 0 {
		return "", "", false
	}
	inner := n.R
	if sel, ok := inner.(*algebra.Select); ok {
		inner = sel.In
	}
	scan, ok := inner.(*algebra.Scan)
	if !ok {
		return "", "", false
	}
	t, ok := p.Store.Table(scan.Table)
	if !ok {
		return "", "", false
	}
	ref := equi[0].r
	c, ok := algebra.ResolveRef(scan.Cols, ref.Qual, ref.Name)
	if !ok || !t.HasIndexableCol(c.Name) {
		return "", "", false
	}
	return c.Name, scan.Table, true
}

// buildIndexJoin lowers the join to a correlated Apply whose right side is
// an index probe keyed on the outer row: the classic index nested-loop join.
func (p *Planner) buildIndexJoin(n *algebra.Join, equi []equiPair, residual algebra.Expr) (exec.Node, error) {
	l, err := p.build(n.L)
	if err != nil {
		return nil, err
	}
	lSchema := n.L.Schema()

	// Rebuild the right side as selection over the scan with the equi
	// conditions (minus the probe pair) plus residual folded in; then
	// substitute left references with correlation params.
	probe := equi[0]
	var rightPreds []algebra.Expr
	for _, pr := range equi[1:] {
		rightPreds = append(rightPreds, &algebra.Cmp{Op: sqltypes.CmpEQ, L: pr.l, R: pr.r})
	}
	if residual != nil {
		rightPreds = append(rightPreds, residual)
	}
	var rightRel algebra.Rel = n.R
	if pred := algebra.AndAll(rightPreds); pred != nil {
		rightRel = &algebra.Select{Pred: pred, In: rightRel}
	}
	rightRel, corr := p.substituteCorr(rightRel, lSchema)

	// Plan the right side replacing its scan with an index probe.
	probeParam := fmt.Sprintf("inlj$%d", p.nextCorr())
	rightNode, err := p.buildProbeSide(rightRel, probe.r, probeParam)
	if err != nil {
		return nil, err
	}
	keyEval, err := exec.Compile(probe.l, lSchema, p)
	if err != nil {
		return nil, err
	}
	kind := n.Kind
	if kind == algebra.CrossJoin {
		kind = algebra.InnerJoin
	}
	return exec.NewApply(kind, corr,
		[]exec.ApplyBind{{Param: probeParam, Arg: keyEval}}, l, rightNode), nil
}

func (p *Planner) nextCorr() int {
	p.corrSeq++
	return p.corrSeq
}

// buildProbeSide plans the right side of an index join, replacing its base
// scan with an IndexLookup on probeCol keyed by the probe parameter.
func (p *Planner) buildProbeSide(rel algebra.Rel, probeCol *algebra.ColRef, probeParam string) (exec.Node, error) {
	switch n := rel.(type) {
	case *algebra.Scan:
		t, ok := p.Store.Table(n.Table)
		if !ok {
			return nil, fmt.Errorf("plan: no storage for table %q", n.Table)
		}
		c, ok := algebra.ResolveRef(n.Cols, probeCol.Qual, probeCol.Name)
		if !ok {
			return nil, fmt.Errorf("plan: probe column %s missing from %s", probeCol, n.Table)
		}
		keyEval, err := exec.Compile(&algebra.ParamRef{Name: probeParam}, nil, p)
		if err != nil {
			return nil, err
		}
		return exec.NewIndexLookup(t, c.Name, keyEval, n.Cols), nil
	case *algebra.Select:
		child, err := p.buildProbeSide(n.In, probeCol, probeParam)
		if err != nil {
			return nil, err
		}
		ev, err := exec.Compile(n.Pred, child.Schema(), p)
		if err != nil {
			return nil, err
		}
		return &exec.Filter{Pred: ev, Child: child}, nil
	default:
		return nil, fmt.Errorf("plan: unsupported probe side %T", rel)
	}
}

func (p *Planner) buildHashJoin(n *algebra.Join, equi []equiPair, residual algebra.Expr) (exec.Node, error) {
	l, err := p.build(n.L)
	if err != nil {
		return nil, err
	}
	r, err := p.build(n.R)
	if err != nil {
		return nil, err
	}
	var residualEval exec.Evaluator
	if residual != nil {
		joined := append(append([]algebra.Column{}, l.Schema()...), r.Schema()...)
		residualEval, err = exec.Compile(residual, joined, p)
		if err != nil {
			return nil, err
		}
	}
	kind := n.Kind
	if kind == algebra.CrossJoin {
		kind = algebra.InnerJoin
	}
	if p.Vectorized {
		lkeys := make([]exec.VecFactory, len(equi))
		rkeys := make([]exec.VecFactory, len(equi))
		for i, pr := range equi {
			le, err := exec.CompileVec(pr.l, l.Schema(), p)
			if err != nil {
				return nil, err
			}
			re, err := exec.CompileVec(pr.r, r.Schema(), p)
			if err != nil {
				return nil, err
			}
			lkeys[i], rkeys[i] = le, re
		}
		return exec.NewBatchHashJoin(kind, lkeys, rkeys, residualEval, l, r), nil
	}
	lkeys := make([]exec.Evaluator, len(equi))
	rkeys := make([]exec.Evaluator, len(equi))
	for i, pr := range equi {
		le, err := exec.Compile(pr.l, l.Schema(), p)
		if err != nil {
			return nil, err
		}
		re, err := exec.Compile(pr.r, r.Schema(), p)
		if err != nil {
			return nil, err
		}
		lkeys[i], rkeys[i] = le, re
	}
	return exec.NewHashJoin(kind, lkeys, rkeys, residualEval, l, r), nil
}

func (p *Planner) buildNLJoin(n *algebra.Join) (exec.Node, error) {
	l, err := p.build(n.L)
	if err != nil {
		return nil, err
	}
	r, err := p.build(n.R)
	if err != nil {
		return nil, err
	}
	var cond exec.Evaluator
	if n.Cond != nil {
		joined := append(append([]algebra.Column{}, l.Schema()...), r.Schema()...)
		cond, err = exec.Compile(n.Cond, joined, p)
		if err != nil {
			return nil, err
		}
	}
	return exec.NewNLJoin(n.Kind, cond, l, r, false), nil
}

func (p *Planner) buildGroupBy(n *algebra.GroupBy) (exec.Node, error) {
	child, err := p.build(n.In)
	if err != nil {
		return nil, err
	}
	if p.Vectorized && len(n.Keys) == 0 {
		if node, ok, err := p.buildBatchScalarAgg(n, child); err != nil {
			return nil, err
		} else if ok {
			return node, nil
		}
	}
	if p.Vectorized && len(n.Keys) > 0 {
		return p.buildBatchGroupBy(n, child)
	}
	keys := make([]exec.Evaluator, len(n.Keys))
	for i, k := range n.Keys {
		ev, err := exec.Compile(k, child.Schema(), p)
		if err != nil {
			return nil, err
		}
		keys[i] = ev
	}
	aggs := make([]*exec.AggSpec, len(n.Aggs))
	for i, a := range n.Aggs {
		spec := &exec.AggSpec{Func: a.Func, Distinct: a.Distinct}
		if ud, ok := p.Cat.Aggregate(a.Func); ok {
			spec.UserDef = ud
		}
		for _, arg := range a.Args {
			ev, err := exec.Compile(arg, child.Schema(), p)
			if err != nil {
				return nil, err
			}
			spec.Args = append(spec.Args, ev)
		}
		aggs[i] = spec
	}
	return exec.NewHashAgg(keys, aggs, child, n.Schema()), nil
}

// buildBatchGroupBy lowers a keyed GROUP BY onto the vectorized grouped
// aggregation operator: keys and aggregate arguments evaluate
// batch-at-a-time and feed the same states as the row HashAgg, so every
// aggregate kind (builtin, DISTINCT, user-defined) is supported and grouped
// queries — the shape the decorrelated UDF rewrites produce — no longer
// bridge to the row engine.
func (p *Planner) buildBatchGroupBy(n *algebra.GroupBy, child exec.Node) (exec.Node, error) {
	keys := make([]exec.VecFactory, len(n.Keys))
	for i, k := range n.Keys {
		ev, err := exec.CompileVec(k, child.Schema(), p)
		if err != nil {
			return nil, err
		}
		keys[i] = ev
	}
	aggs := make([]*exec.AggSpec, len(n.Aggs))
	args := make([][]exec.VecFactory, len(n.Aggs))
	for i, a := range n.Aggs {
		spec := &exec.AggSpec{Func: a.Func, Distinct: a.Distinct,
			Args: make([]exec.Evaluator, len(a.Args))}
		if ud, ok := p.Cat.Aggregate(a.Func); ok {
			spec.UserDef = ud
		}
		vecs := make([]exec.VecFactory, len(a.Args))
		for j, arg := range a.Args {
			ev, err := exec.CompileVec(arg, child.Schema(), p)
			if err != nil {
				return nil, err
			}
			vecs[j] = ev
		}
		aggs[i], args[i] = spec, vecs
	}
	return exec.NewBatchGroupBy(keys, aggs, args, child, n.Schema()), nil
}

// buildBatchScalarAgg lowers a key-less GROUP BY with builtin non-DISTINCT
// aggregates onto the vectorized scalar-aggregation operator. DISTINCT and
// user-defined aggregates keep the row operator (ok=false).
func (p *Planner) buildBatchScalarAgg(n *algebra.GroupBy, child exec.Node) (exec.Node, bool, error) {
	aggs := make([]*exec.AggSpec, len(n.Aggs))
	args := make([][]exec.VecFactory, len(n.Aggs))
	for i, a := range n.Aggs {
		if a.Distinct {
			return nil, false, nil
		}
		if _, userDef := p.Cat.Aggregate(a.Func); userDef {
			return nil, false, nil
		}
		// The spec's Args carry only the arity (count(expr) vs count(*))
		// for state construction; BatchScalarAgg evaluates arguments
		// exclusively through the batched evaluators.
		spec := &exec.AggSpec{Func: a.Func, Args: make([]exec.Evaluator, len(a.Args))}
		vecs := make([]exec.VecFactory, len(a.Args))
		for j, arg := range a.Args {
			ev, err := exec.CompileVec(arg, child.Schema(), p)
			if err != nil {
				return nil, false, err
			}
			vecs[j] = ev
		}
		aggs[i], args[i] = spec, vecs
	}
	return exec.NewBatchScalarAgg(aggs, args, child, n.Schema()), true, nil
}

// buildApply plans a correlated Apply operator: the right side is executed
// per left row with correlation values published as parameters.
func (p *Planner) buildApply(n *algebra.Apply) (exec.Node, error) {
	l, err := p.build(n.L)
	if err != nil {
		return nil, err
	}
	lSchema := n.L.Schema()
	right, corr := p.substituteCorr(n.R, lSchema)
	rNode, err := p.build(right)
	if err != nil {
		return nil, err
	}
	binds := make([]exec.ApplyBind, len(n.Binds))
	for i, b := range n.Binds {
		ev, err := exec.Compile(b.Arg, lSchema, p)
		if err != nil {
			return nil, err
		}
		binds[i] = exec.ApplyBind{Param: b.Param, Arg: ev}
	}
	kind := n.Kind
	if kind == algebra.CrossJoin {
		kind = algebra.InnerJoin
	}
	p.note("Apply(%s) correlated", n.Kind)
	return exec.NewApply(kind, corr, binds, l, rNode), nil
}
