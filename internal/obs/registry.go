package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
)

// metricKind distinguishes exposition rendering.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// metric is one registered series: a family name, optional fixed labels
// ({mode="rewrite"}), and either a value source or a histogram.
type metric struct {
	name    string // family name, e.g. udfd_queries_total
	labels  string // rendered label set without braces, e.g. `mode="rewrite"`; "" for none
	help    string
	kind    metricKind
	intFn   func() int64   // counter/gauge source
	floatFn func() float64 // alternative float source (e.g. uptime)
	hist    *Histogram
}

// Registry is an ordered collection of metrics rendered to the Prometheus
// text format. Registration is cheap and infrequent; reads walk the list.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

func (r *Registry) add(m *metric) {
	r.mu.Lock()
	r.metrics = append(r.metrics, m)
	r.mu.Unlock()
}

// Counter registers and returns a new owned counter series.
func (r *Registry) Counter(name, labels, help string) *Counter {
	c := &Counter{}
	r.CounterFunc(name, labels, help, c.Value)
	return c
}

// CounterFunc registers a counter series backed by fn — the way to expose
// counters that already live elsewhere (e.g. the service's /stats fields)
// so both surfaces report identical numbers.
func (r *Registry) CounterFunc(name, labels, help string, fn func() int64) {
	r.add(&metric{name: name, labels: labels, help: help, kind: kindCounter, intFn: fn})
}

// Gauge registers and returns a new owned gauge series.
func (r *Registry) Gauge(name, labels, help string) *Gauge {
	g := &Gauge{}
	r.GaugeFunc(name, labels, help, g.Value)
	return g
}

// GaugeFunc registers a gauge series backed by fn.
func (r *Registry) GaugeFunc(name, labels, help string, fn func() int64) {
	r.add(&metric{name: name, labels: labels, help: help, kind: kindGauge, intFn: fn})
}

// GaugeFloatFunc registers a float-valued gauge series backed by fn.
func (r *Registry) GaugeFloatFunc(name, labels, help string, fn func() float64) {
	r.add(&metric{name: name, labels: labels, help: help, kind: kindGauge, floatFn: fn})
}

// Histogram registers and returns a new histogram series.
func (r *Registry) Histogram(name, help string) *Histogram {
	h := NewHistogram()
	r.add(&metric{name: name, help: help, kind: kindHistogram, hist: h})
	return h
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format 0.0.4. Families (same name, different labels) are
// grouped under one # HELP/# TYPE header; histogram buckets are cumulative
// with second-valued le bounds and a +Inf terminal bucket.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	metrics := make([]*metric, len(r.metrics))
	copy(metrics, r.metrics)
	r.mu.Unlock()

	// Group into families preserving first-seen order, so multi-label
	// families (queries_total by mode) emit one header.
	order := []string{}
	families := map[string][]*metric{}
	for _, m := range metrics {
		if _, ok := families[m.name]; !ok {
			order = append(order, m.name)
		}
		families[m.name] = append(families[m.name], m)
	}
	var b strings.Builder
	for _, name := range order {
		fam := families[name]
		first := fam[0]
		if first.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", name, first.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", name, typeName(first.kind))
		for _, m := range fam {
			switch m.kind {
			case kindCounter, kindGauge:
				if m.floatFn != nil {
					fmt.Fprintf(&b, "%s %s\n", seriesName(m.name, m.labels), formatFloat(m.floatFn()))
				} else {
					fmt.Fprintf(&b, "%s %d\n", seriesName(m.name, m.labels), m.intFn())
				}
			case kindHistogram:
				writeHistogram(&b, m)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func typeName(k metricKind) string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

func seriesName(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// writeHistogram emits the cumulative bucket series plus _sum and _count.
// Empty buckets between populated ones still appear (cumulative counts are
// nondecreasing by construction), but to keep the output small only bucket
// bounds up to the first one covering every observation are listed before
// +Inf.
func writeHistogram(b *strings.Builder, m *metric) {
	s := m.hist.Snapshot()
	// Highest populated bucket decides how many explicit bounds to print.
	top := 0
	for i, n := range s.Buckets {
		if n > 0 {
			top = i
		}
	}
	cum := int64(0)
	for i := 0; i <= top && i < NumHistBuckets-1; i++ {
		cum += s.Buckets[i]
		le := formatFloat(HistBucketBound(i).Seconds())
		fmt.Fprintf(b, "%s_bucket{le=%q} %d\n", m.name, le, cum)
	}
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", m.name, s.Count)
	fmt.Fprintf(b, "%s_sum %s\n", m.name, formatFloat(float64(s.SumNS)/1e9))
	fmt.Fprintf(b, "%s_count %d\n", m.name, s.Count)
}
