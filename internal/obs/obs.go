// Package obs is a small, dependency-free metrics layer: lock-free atomic
// counters and gauges plus log-bucketed latency histograms, collected in a
// Registry that renders the Prometheus text exposition format (version
// 0.0.4). It exists so the query service, the WAL, and the load clients
// share one latency-distribution type instead of ad-hoc sorted slices, and
// so /stats (JSON) and /metrics (Prometheus) report from the same sources.
//
// Everything on the update path is a single atomic add — histograms bucket
// by the position of the highest set bit (powers of two from 1µs), so
// Observe is branch-light and allocation-free and safe for any number of
// concurrent writers.
package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 to keep the counter monotone).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// NumHistBuckets is the number of histogram buckets: bucket i holds
// observations <= 2^i microseconds, so the range spans 1µs to ~36min
// (2^31µs); anything slower lands in the last bucket, which Prometheus
// exposition reports as +Inf.
const NumHistBuckets = 32

// Histogram is a fixed-layout latency histogram with power-of-two bucket
// bounds. All methods are safe for concurrent use; Observe is two atomic
// adds and an atomic increment.
type Histogram struct {
	count   atomic.Int64
	sumNS   atomic.Int64
	buckets [NumHistBuckets]atomic.Int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// HistBucketBound returns bucket i's inclusive upper bound.
func HistBucketBound(i int) time.Duration {
	return time.Duration(uint64(1)<<uint(i)) * time.Microsecond
}

// histBucketOf maps a duration to its bucket index: the smallest i with
// d <= 2^i µs, clamped to the top bucket.
func histBucketOf(d time.Duration) int {
	// Round up to whole microseconds so bucket upper bounds stay inclusive
	// at nanosecond precision (1µs+1ns belongs to the 2µs bucket).
	us := int64((d + time.Microsecond - 1) / time.Microsecond)
	if us <= 1 {
		return 0
	}
	i := bits.Len64(uint64(us - 1))
	if i >= NumHistBuckets {
		i = NumHistBuckets - 1
	}
	return i
}

// Observe records one duration (negative observations clamp to zero).
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.buckets[histBucketOf(d)].Add(1)
	h.sumNS.Add(int64(d))
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total observed time.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sumNS.Load()) }

// Merge folds o's observations into h (o keeps its contents).
func (h *Histogram) Merge(o *Histogram) {
	for i := range o.buckets {
		if n := o.buckets[i].Load(); n != 0 {
			h.buckets[i].Add(n)
		}
	}
	h.sumNS.Add(o.sumNS.Load())
	h.count.Add(o.count.Load())
}

// Snapshot captures a point-in-time copy of the bucket counts. Buckets are
// read individually (not under a lock), so a snapshot taken during
// concurrent writes may be off by in-flight observations — fine for
// monitoring, which is the only consumer.
type Snapshot struct {
	Buckets [NumHistBuckets]int64
	Count   int64
	SumNS   int64
}

// Snapshot returns the current contents.
func (h *Histogram) Snapshot() Snapshot {
	var s Snapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.SumNS = h.sumNS.Load()
	return s
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear interpolation
// within the containing bucket, returning 0 for an empty histogram. With
// power-of-two buckets the estimate is within 2× of the true value, which
// is what a latency report needs.
func (h *Histogram) Quantile(q float64) time.Duration {
	s := h.Snapshot()
	return s.Quantile(q)
}

// Quantile estimates the q-quantile of a snapshot.
func (s Snapshot) Quantile(q float64) time.Duration {
	total := int64(0)
	for _, n := range s.Buckets {
		total += n
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q*float64(total-1)) + 1 // 1-based rank of the target observation
	cum := int64(0)
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			lo := time.Duration(0)
			if i > 0 {
				lo = HistBucketBound(i - 1)
			}
			hi := HistBucketBound(i)
			// Position of the target within this bucket, in (0, 1].
			frac := float64(rank-cum) / float64(n)
			return lo + time.Duration(float64(hi-lo)*frac)
		}
		cum += n
	}
	return HistBucketBound(NumHistBuckets - 1)
}
