package obs

import (
	"bufio"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketing(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{500 * time.Nanosecond, 0},
		{time.Microsecond, 0},
		{time.Microsecond + 1, 1},
		{2 * time.Microsecond, 1},
		{3 * time.Microsecond, 2},
		{4 * time.Microsecond, 2},
		{5 * time.Microsecond, 3},
		{time.Millisecond, 10},          // 1000µs ≤ 1024µs = 2^10
		{time.Second, 20},               // 1e6µs ≤ 2^20µs
		{time.Hour, NumHistBuckets - 1}, // beyond range clamps to top
	}
	for _, c := range cases {
		if got := histBucketOf(c.d); got != c.want {
			t.Errorf("histBucketOf(%v) = %d, want %d", c.d, got, c.want)
		}
	}
	// Every bucket's bound must itself map into that bucket (inclusive upper
	// bounds), and one past it into the next.
	for i := 0; i < NumHistBuckets-1; i++ {
		if got := histBucketOf(HistBucketBound(i)); got != i {
			t.Errorf("bound of bucket %d maps to %d", i, got)
		}
		if got := histBucketOf(HistBucketBound(i) + time.Microsecond); got != i+1 {
			t.Errorf("bound of bucket %d +1µs maps to %d, want %d", i, got, i+1)
		}
	}
}

func TestHistogramObserveAndSum(t *testing.T) {
	h := NewHistogram()
	h.Observe(time.Millisecond)
	h.Observe(2 * time.Millisecond)
	h.Observe(-time.Second) // clamps to 0
	if got := h.Count(); got != 3 {
		t.Fatalf("Count = %d, want 3", got)
	}
	if got := h.Sum(); got != 3*time.Millisecond {
		t.Fatalf("Sum = %v, want 3ms", got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram()
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
	// 100 observations at ~1ms, 10 at ~1s: p50 must report the fast bucket,
	// p99 the slow one (within the 2× bucket resolution).
	for i := 0; i < 100; i++ {
		h.Observe(time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(time.Second)
	}
	p50 := h.Quantile(0.5)
	if p50 < 512*time.Microsecond || p50 > 2*time.Millisecond {
		t.Errorf("p50 = %v, want ~1ms", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 500*time.Millisecond || p99 > 2*time.Second {
		t.Errorf("p99 = %v, want ~1s", p99)
	}
	if min, max := h.Quantile(0), h.Quantile(1); min > max {
		t.Errorf("q0 %v > q1 %v", min, max)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := 0; i < 10; i++ {
		a.Observe(time.Millisecond)
		b.Observe(time.Second)
	}
	a.Merge(b)
	if got := a.Count(); got != 20 {
		t.Fatalf("merged Count = %d, want 20", got)
	}
	if got := a.Sum(); got != 10*time.Millisecond+10*time.Second {
		t.Fatalf("merged Sum = %v", got)
	}
	if got := b.Count(); got != 10 {
		t.Fatalf("Merge mutated source: Count = %d, want 10", got)
	}
	s := a.Snapshot()
	var total int64
	for _, n := range s.Buckets {
		total += n
	}
	if total != 20 {
		t.Fatalf("bucket total = %d, want 20", total)
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines; run
// under -race this is the data-race check, and the final count/sum must be
// exact regardless.
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(w*i) * time.Microsecond)
				_ = h.Quantile(0.5) // concurrent reads must be safe too
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != workers*per {
		t.Fatalf("Count = %d, want %d", got, workers*per)
	}
}

func TestCounterGaugeConcurrent(t *testing.T) {
	var c Counter
	var g Gauge
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if g.Value() != 0 {
		t.Fatalf("gauge = %d, want 0", g.Value())
	}
}

// TestWritePrometheus validates the exposition output structurally: header
// lines per family, parsable sample lines, cumulative nondecreasing
// histogram buckets ending at +Inf == _count.
func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "", "ops")
	c.Add(7)
	r.CounterFunc("test_by_mode_total", `mode="a"`, "per-mode", func() int64 { return 3 })
	r.CounterFunc("test_by_mode_total", `mode="b"`, "per-mode", func() int64 { return 4 })
	g := r.Gauge("test_depth", "", "depth")
	g.Set(-2)
	r.GaugeFloatFunc("test_uptime_seconds", "", "uptime", func() float64 { return 1.5 })
	h := r.Histogram("test_latency_seconds", "latency")
	h.Observe(time.Millisecond)
	h.Observe(time.Second)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	samples := map[string]float64{}
	var bucketCums []float64
	types := map[string]string{}
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("bad TYPE line: %q", line)
			}
			types[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		name, valStr, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("unparsable sample line: %q", line)
		}
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		samples[name] = val
		if strings.HasPrefix(name, "test_latency_seconds_bucket") {
			bucketCums = append(bucketCums, val)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	for name, want := range map[string]string{
		"test_ops_total":       "counter",
		"test_by_mode_total":   "counter",
		"test_depth":           "gauge",
		"test_latency_seconds": "histogram",
	} {
		if types[name] != want {
			t.Errorf("TYPE of %s = %q, want %q", name, types[name], want)
		}
	}
	if samples["test_ops_total"] != 7 {
		t.Errorf("test_ops_total = %v", samples["test_ops_total"])
	}
	if samples[`test_by_mode_total{mode="a"}`] != 3 || samples[`test_by_mode_total{mode="b"}`] != 4 {
		t.Errorf("per-mode samples wrong: %v", samples)
	}
	if samples["test_depth"] != -2 {
		t.Errorf("test_depth = %v", samples["test_depth"])
	}
	if samples["test_uptime_seconds"] != 1.5 {
		t.Errorf("test_uptime_seconds = %v", samples["test_uptime_seconds"])
	}
	if samples["test_latency_seconds_count"] != 2 {
		t.Errorf("histogram _count = %v", samples["test_latency_seconds_count"])
	}
	wantSum := (time.Millisecond + time.Second).Seconds()
	if got := samples["test_latency_seconds_sum"]; got < wantSum*0.999 || got > wantSum*1.001 {
		t.Errorf("histogram _sum = %v, want ~%v", got, wantSum)
	}
	if len(bucketCums) < 2 {
		t.Fatalf("expected multiple bucket lines, got %d", len(bucketCums))
	}
	for i := 1; i < len(bucketCums); i++ {
		if bucketCums[i] < bucketCums[i-1] {
			t.Fatalf("bucket counts not cumulative: %v", bucketCums)
		}
	}
	if last := bucketCums[len(bucketCums)-1]; last != 2 {
		t.Errorf("+Inf bucket = %v, want 2 (== _count)", last)
	}
	if !strings.Contains(out, `test_latency_seconds_bucket{le="+Inf"} 2`) {
		t.Errorf("missing +Inf bucket line in:\n%s", out)
	}
}

func TestHistogramQuantileBoundsClamp(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	lo, hi := h.Quantile(-1), h.Quantile(2)
	if lo <= 0 || hi < lo {
		t.Fatalf("clamped quantiles out of order: q(-1)=%v q(2)=%v", lo, hi)
	}
}
